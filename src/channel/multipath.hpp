// Tapped-delay-line multipath with an exponential power-delay profile —
// the standard indoor wideband model. Applied to the ambient carrier
// path, it creates frequency selectivity the OFDM source then exhibits.
#pragma once

#include <vector>

#include "dsp/fir.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace fdb::channel {

struct MultipathProfile {
  std::size_t num_taps = 4;
  double delay_spread_samples = 2.0;  // exponential decay constant
};

/// Draws a unit-total-power complex tap vector from the profile.
std::vector<cf32> draw_multipath_taps(const MultipathProfile& profile,
                                      Rng& rng);

/// Streaming multipath channel: FIR with redrawable taps (block fading
/// at the impulse-response level).
class MultipathChannel {
 public:
  MultipathChannel(MultipathProfile profile, Rng& rng);

  cf32 process(cf32 x) { return fir_.process(x); }
  void process(std::span<const cf32> in, std::span<cf32> out) {
    fir_.process(in, out);
  }

  /// Redraws the impulse response (new coherence block).
  void redraw(Rng& rng);

  const std::vector<cf32>& taps() const { return taps_; }

 private:
  MultipathProfile profile_;
  std::vector<cf32> taps_;
  dsp::FirFilterCC fir_;
};

}  // namespace fdb::channel
