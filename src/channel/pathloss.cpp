#include "channel/pathloss.hpp"

#include <cassert>
#include <cmath>
#include <numbers>

#include "util/db.hpp"

namespace fdb::channel {

double friis_amplitude_gain(double distance_m, double wavelength_m) {
  assert(distance_m > 0.0 && wavelength_m > 0.0);
  return wavelength_m / (4.0 * std::numbers::pi * distance_m);
}

double LogDistanceModel::power_gain(double distance_m, Rng* rng) const {
  assert(distance_m > 0.0);
  const double d = std::max(distance_m, reference_distance_m);
  double loss_db = reference_loss_db +
                   10.0 * exponent * std::log10(d / reference_distance_m);
  if (rng != nullptr && shadowing_sigma_db > 0.0) {
    loss_db += rng->normal(0.0, shadowing_sigma_db);
  }
  return db_to_lin(-loss_db);
}

double LogDistanceModel::amplitude_gain(double distance_m, Rng* rng) const {
  return std::sqrt(power_gain(distance_m, rng));
}

double wavelength_m(double carrier_hz) {
  assert(carrier_hz > 0.0);
  return 299'792'458.0 / carrier_hz;
}

}  // namespace fdb::channel
