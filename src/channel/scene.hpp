// Link geometry: device positions plus a propagation model give the
// one-way field gains the simulators compose into backscatter links
// (ambient->tag, tag->receiver, ambient->receiver direct leakage).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "channel/pathloss.hpp"
#include "util/rng.hpp"

namespace fdb::channel {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;
};

double distance_m(const Vec2& a, const Vec2& b);

enum class DeviceKind { kAmbientTx, kTag, kReceiver };

struct Device {
  std::string name;
  DeviceKind kind = DeviceKind::kTag;
  Vec2 position;
};

/// Container for devices + the shared propagation model.
class Scene {
 public:
  explicit Scene(LogDistanceModel pathloss_model = {});

  /// Adds a device; returns its index.
  std::size_t add_device(Device device);

  const Device& device(std::size_t i) const { return devices_.at(i); }
  std::size_t num_devices() const { return devices_.size(); }

  /// One-way field (amplitude) gain between devices a and b. Shadowing,
  /// if enabled in the model, is drawn from `rng` per call — callers
  /// that need a consistent draw should cache the result per coherence
  /// block.
  double amplitude_gain(std::size_t a, std::size_t b,
                        Rng* rng = nullptr) const;

  /// One-way power gain.
  double power_gain(std::size_t a, std::size_t b, Rng* rng = nullptr) const;

  const LogDistanceModel& pathloss_model() const { return pathloss_; }

  /// First device of the given kind; SIZE_MAX if absent.
  std::size_t find_first(DeviceKind kind) const;

 private:
  LogDistanceModel pathloss_;
  std::vector<Device> devices_;
};

}  // namespace fdb::channel
