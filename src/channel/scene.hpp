// Link geometry: device positions plus a propagation model give the
// one-way field gains the simulators compose into backscatter links
// (ambient->tag, tag->receiver, ambient->receiver direct leakage).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "channel/pathloss.hpp"

namespace fdb::channel {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;
};

double distance_m(const Vec2& a, const Vec2& b);

enum class DeviceKind { kAmbientTx, kTag, kReceiver };

struct Device {
  std::string name;
  DeviceKind kind = DeviceKind::kTag;
  Vec2 position;
};

/// Container for devices + the shared propagation model.
///
/// Shadowing (when the model enables it) is drawn from a counter-based
/// substream keyed on (shadowing seed, coherence block, unordered device
/// pair), never from caller RNG state. That makes every link gain
///  * reciprocal  — gain(a, b) == gain(b, a) within a coherence block,
///  * repeatable  — the same (scene, block) always yields the same draw,
///    no matter how many gains were queried before it or from which
///    thread,
/// which is the contract the pure-per-trial network simulator needs.
class Scene {
 public:
  explicit Scene(LogDistanceModel pathloss_model = {},
                 std::uint64_t shadowing_seed = 0);

  /// Adds a device; returns its index.
  std::size_t add_device(Device device);

  const Device& device(std::size_t i) const { return devices_.at(i); }
  std::size_t num_devices() const { return devices_.size(); }

  /// One-way field (amplitude) gain between devices a and b for the
  /// given coherence block. The shadowing realisation (if enabled in the
  /// model) redraws per block and is symmetric in (a, b).
  double amplitude_gain(std::size_t a, std::size_t b,
                        std::uint64_t coherence_block = 0) const;

  /// One-way power gain.
  double power_gain(std::size_t a, std::size_t b,
                    std::uint64_t coherence_block = 0) const;

  /// The lognormal shadowing term (dB) applied to the (a, b) link in
  /// `coherence_block`; 0 when the model disables shadowing. Exposed so
  /// tests can pin reciprocity and per-block redraw directly.
  double shadowing_db(std::size_t a, std::size_t b,
                      std::uint64_t coherence_block) const;

  const LogDistanceModel& pathloss_model() const { return pathloss_; }
  std::uint64_t shadowing_seed() const { return shadowing_seed_; }

  /// First device of the given kind; SIZE_MAX if absent.
  std::size_t find_first(DeviceKind kind) const;

  /// All devices of the given kind, in insertion order — e.g. every
  /// receive gateway of a diversity deployment.
  std::vector<std::size_t> find_all(DeviceKind kind) const;

 private:
  LogDistanceModel pathloss_;
  std::uint64_t shadowing_seed_;
  std::vector<Device> devices_;
};

}  // namespace fdb::channel
