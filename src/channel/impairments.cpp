#include "channel/impairments.hpp"

#include <cassert>
#include <cmath>
#include <numbers>

#include "util/db.hpp"

namespace fdb::channel {

double thermal_noise_power(double bandwidth_hz, double noise_figure_db) {
  assert(bandwidth_hz > 0.0);
  constexpr double kBoltzmann = 1.380649e-23;
  constexpr double kTemperatureK = 290.0;
  return kBoltzmann * kTemperatureK * bandwidth_hz *
         db_to_lin(noise_figure_db);
}

AwgnChannel::AwgnChannel(double noise_power, Rng rng)
    : noise_power_(noise_power), rng_(rng) {
  assert(noise_power >= 0.0);
}

cf32 AwgnChannel::process(cf32 x) {
  if (noise_power_ <= 0.0) return x;
  return x + rng_.cn(noise_power_);
}

void AwgnChannel::process(std::span<const cf32> in, std::span<cf32> out) {
  assert(in.size() == out.size());
  for (std::size_t i = 0; i < in.size(); ++i) out[i] = process(in[i]);
}

CfoRotator::CfoRotator(double offset_hz, double sample_rate_hz)
    : step_rad_(2.0 * std::numbers::pi * offset_hz / sample_rate_hz) {
  assert(sample_rate_hz > 0.0);
}

cf32 CfoRotator::process(cf32 x) {
  const cf32 rot(static_cast<float>(std::cos(phase_)),
                 static_cast<float>(std::sin(phase_)));
  phase_ += step_rad_;
  if (phase_ > 2.0 * std::numbers::pi) phase_ -= 2.0 * std::numbers::pi;
  if (phase_ < -2.0 * std::numbers::pi) phase_ += 2.0 * std::numbers::pi;
  return x * rot;
}

void CfoRotator::process(std::span<const cf32> in, std::span<cf32> out) {
  assert(in.size() == out.size());
  for (std::size_t i = 0; i < in.size(); ++i) out[i] = process(in[i]);
}

void CfoRotator::reset() { phase_ = 0.0; }

DelayLine::DelayLine(std::size_t delay_samples) : buffer_(delay_samples) {}

cf32 DelayLine::process(cf32 x) {
  if (buffer_.empty()) return x;  // zero-delay passthrough
  const cf32 out = buffer_[pos_];
  buffer_[pos_] = x;
  pos_ = (pos_ + 1) % buffer_.size();
  return out;
}

}  // namespace fdb::channel
