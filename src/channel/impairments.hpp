// Additive noise and oscillator impairments — the non-geometric part of
// the channel. AWGN sets the noise floor that the link budget's kTB*NF
// computation predicts, and the CFO rotator models the residual between
// the ambient transmitter's carrier and the receiver's sampling clock
// (the tags themselves have no oscillator to be wrong). Both matter to
// the paper's receivers because envelope detection folds any rotation
// into amplitude statistics that the slicer must then track.
#pragma once

#include <span>
#include <vector>

#include "util/rng.hpp"
#include "util/types.hpp"

namespace fdb::channel {

/// Thermal noise power (watts) in `bandwidth_hz` at 290 K plus a
/// receiver noise figure in dB: kTB * NF.
double thermal_noise_power(double bandwidth_hz, double noise_figure_db = 6.0);

/// Adds complex AWGN of total power `noise_power` to the stream.
class AwgnChannel {
 public:
  AwgnChannel(double noise_power, Rng rng);

  cf32 process(cf32 x);
  void process(std::span<const cf32> in, std::span<cf32> out);

  double noise_power() const { return noise_power_; }
  void set_noise_power(double p) { noise_power_ = p; }

 private:
  double noise_power_;
  Rng rng_;
};

/// Carrier-frequency-offset rotator: multiplies by e^{j 2π f_off n / fs}.
/// Backscatter tags have no oscillator, but the *ambient transmitter*
/// and the receiver's sampling clock differ; this models that residual.
class CfoRotator {
 public:
  CfoRotator(double offset_hz, double sample_rate_hz);

  cf32 process(cf32 x);
  void process(std::span<const cf32> in, std::span<cf32> out);
  void reset();

 private:
  double step_rad_;
  double phase_ = 0.0;
};

/// Integer-sample delay line (propagation/processing latency).
class DelayLine {
 public:
  explicit DelayLine(std::size_t delay_samples);

  cf32 process(cf32 x);

 private:
  std::vector<cf32> buffer_;
  std::size_t pos_ = 0;
};

}  // namespace fdb::channel
