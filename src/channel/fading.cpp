#include "channel/fading.hpp"

#include <cassert>
#include <cmath>

namespace fdb::channel {

RicianFading::RicianFading(double k_factor, Rng& rng) : k_(k_factor) {
  assert(k_factor >= 0.0);
  next_block(rng);
}

void RicianFading::next_block(Rng& rng) {
  // LOS component carries K/(K+1) of the power, scattered 1/(K+1).
  const double los = std::sqrt(k_ / (k_ + 1.0));
  const cf32 scattered = rng.cn(1.0 / (k_ + 1.0));
  gain_ = cf32{static_cast<float>(los), 0.0f} + scattered;
}

std::unique_ptr<FadingProcess> make_fading(const std::string& kind, Rng& rng,
                                           double rician_k) {
  if (kind == "rayleigh") return std::make_unique<RayleighFading>(rng);
  if (kind == "rician") return std::make_unique<RicianFading>(rician_k, rng);
  return std::make_unique<StaticFading>();
}

}  // namespace fdb::channel
