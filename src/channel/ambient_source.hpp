// Ambient RF carriers. The HotNets'13 system piggybacks on signals that
// already exist (TV broadcast); the repo substitutes synthetic sources
// with the same envelope statistics (see DESIGN.md substitution table):
//
//  * CwSource     — unmodulated constant-envelope carrier. The easy case:
//                   the envelope is flat, so backscatter bits are directly
//                   visible. Used as an ablation arm in E7.
//  * OfdmTvSource — wideband OFDM with random QPSK subcarriers and cyclic
//                   prefix, DVB-like. Its envelope fluctuates on a
//                   per-sample basis, which is precisely why ambient
//                   backscatter receivers must average over many samples
//                   per bit. This is the realistic arm.
//
// Sources emit unit-average-power complex baseband; the scene scales by
// transmit power and path gain.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "util/rng.hpp"
#include "util/types.hpp"

namespace fdb::channel {

class AmbientSource {
 public:
  virtual ~AmbientSource() = default;

  /// Fills `out` with the next out.size() baseband samples (unit
  /// average power). Batch-first primary so callers can stream into
  /// arena scratch without allocation.
  virtual void generate(std::span<cf32> out) = 0;

  /// Convenience: resizes `out` to n and fills it.
  void generate(std::size_t n, std::vector<cf32>& out) {
    out.resize(n);
    generate(std::span<cf32>(out));
  }

  /// Restarts the source deterministically.
  virtual void reset() = 0;

  virtual const char* name() const = 0;
};

/// Constant-envelope carrier with optional slow phase drift, modelling a
/// CW illuminator (e.g. a dedicated reader transmitting a tone).
class CwSource final : public AmbientSource {
 public:
  /// `phase_drift_rad_per_sample` models oscillator drift; 0 = ideal.
  explicit CwSource(double phase_drift_rad_per_sample = 0.0);

  using AmbientSource::generate;
  void generate(std::span<cf32> out) override;
  void reset() override;
  const char* name() const override { return "cw"; }

 private:
  double drift_;
  double phase_ = 0.0;
};

/// Parameters of the synthetic TV-style OFDM carrier.
struct OfdmParams {
  std::size_t fft_size = 256;      // subcarriers per symbol
  std::size_t cp_len = 32;         // cyclic prefix samples
  double occupancy = 0.8;          // fraction of subcarriers active
  std::uint64_t seed = 1;          // payload randomness
};

class OfdmTvSource final : public AmbientSource {
 public:
  explicit OfdmTvSource(OfdmParams params);

  using AmbientSource::generate;
  void generate(std::span<cf32> out) override;
  void reset() override;
  const char* name() const override { return "ofdm_tv"; }

  const OfdmParams& params() const { return params_; }

 private:
  void make_symbol();

  OfdmParams params_;
  Rng rng_;
  std::vector<bool> active_;      // subcarrier occupancy mask
  std::vector<cf32> symbol_;      // current time-domain symbol incl. CP
  std::size_t pos_ = 0;
  float norm_ = 1.0f;
};

/// Factory used by benches to select the carrier arm by name
/// ("cw" | "ofdm_tv").
std::unique_ptr<AmbientSource> make_ambient_source(const std::string& kind,
                                                   std::uint64_t seed);

}  // namespace fdb::channel
