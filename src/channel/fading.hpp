// Small-scale fading. Block fading matches the paper's setting: channel
// coefficients hold for a coherence block (many bits at backscatter
// rates) and redraw independently between blocks.
#pragma once

#include <memory>
#include <string>

#include "util/rng.hpp"
#include "util/types.hpp"

namespace fdb::channel {

class FadingProcess {
 public:
  virtual ~FadingProcess() = default;

  /// Complex gain for the current coherence block (unit mean square).
  virtual cf32 gain() const = 0;

  /// Advances to the next coherence block.
  virtual void next_block(Rng& rng) = 0;

  virtual const char* name() const = 0;
};

/// No fading: gain fixed at 1 (static/line-of-sight lab bench).
class StaticFading final : public FadingProcess {
 public:
  cf32 gain() const override { return {1.0f, 0.0f}; }
  void next_block(Rng&) override {}
  const char* name() const override { return "static"; }
};

/// Rayleigh block fading: gain ~ CN(0, 1) per block.
class RayleighFading final : public FadingProcess {
 public:
  explicit RayleighFading(Rng& rng) { next_block(rng); }

  cf32 gain() const override { return gain_; }
  void next_block(Rng& rng) override { gain_ = rng.cn(1.0); }
  const char* name() const override { return "rayleigh"; }

 private:
  cf32 gain_{1.0f, 0.0f};
};

/// Rician block fading with K-factor (LOS + scattered), unit mean square.
class RicianFading final : public FadingProcess {
 public:
  RicianFading(double k_factor, Rng& rng);

  cf32 gain() const override { return gain_; }
  void next_block(Rng& rng) override;
  const char* name() const override { return "rician"; }

 private:
  double k_;
  cf32 gain_{1.0f, 0.0f};
};

/// Factory keyed by name ("static" | "rayleigh" | "rician").
std::unique_ptr<FadingProcess> make_fading(const std::string& kind, Rng& rng,
                                           double rician_k = 6.0);

}  // namespace fdb::channel
