#include "channel/ambient_source.hpp"

#include <cassert>
#include <cmath>
#include <string>

#include "dsp/fft.hpp"

namespace fdb::channel {

CwSource::CwSource(double phase_drift_rad_per_sample)
    : drift_(phase_drift_rad_per_sample) {}

void CwSource::generate(std::span<cf32> out) {
  for (auto& sample : out) {
    sample = {static_cast<float>(std::cos(phase_)),
              static_cast<float>(std::sin(phase_))};
    phase_ += drift_;
  }
}

void CwSource::reset() { phase_ = 0.0; }

OfdmTvSource::OfdmTvSource(OfdmParams params)
    : params_(params), rng_(params.seed) {
  assert(dsp::is_pow2(params_.fft_size));
  assert(params_.cp_len < params_.fft_size);
  assert(params_.occupancy > 0.0 && params_.occupancy <= 1.0);
  reset();
}

void OfdmTvSource::reset() {
  rng_ = Rng(params_.seed);
  // Fixed occupancy mask per reset: a broadcast multiplex occupies a
  // static set of subcarriers (guard bands stay empty).
  active_.assign(params_.fft_size, false);
  for (std::size_t k = 0; k < params_.fft_size; ++k) {
    active_[k] = rng_.chance(params_.occupancy);
  }
  // Average time-domain power of one symbol is (#active)/fft_size when
  // subcarriers carry unit-power QPSK; normalise to unit power.
  std::size_t count = 0;
  for (const bool a : active_) count += a ? 1 : 0;
  if (count == 0) {
    active_[params_.fft_size / 4] = true;
    count = 1;
  }
  norm_ = 1.0f / std::sqrt(static_cast<float>(count) /
                           static_cast<float>(params_.fft_size));
  symbol_.clear();
  pos_ = 0;
}

void OfdmTvSource::make_symbol() {
  std::vector<cf32> freq(params_.fft_size, cf32{});
  const float scale = 1.0f / std::sqrt(2.0f);
  for (std::size_t k = 0; k < params_.fft_size; ++k) {
    if (!active_[k]) continue;
    const float re = rng_.chance(0.5) ? scale : -scale;
    const float im = rng_.chance(0.5) ? scale : -scale;
    freq[k] = {re, im};
  }
  dsp::ifft(freq);
  // ifft applies 1/N; restore sqrt(N) so time-domain has the intended
  // per-sample power, then apply occupancy normalisation.
  const float restore =
      std::sqrt(static_cast<float>(params_.fft_size)) * norm_;
  for (auto& x : freq) x *= restore;

  symbol_.clear();
  symbol_.reserve(params_.cp_len + params_.fft_size);
  // Cyclic prefix: tail of the symbol repeated in front.
  symbol_.insert(symbol_.end(), freq.end() - static_cast<long>(params_.cp_len),
                 freq.end());
  symbol_.insert(symbol_.end(), freq.begin(), freq.end());
  pos_ = 0;
}

void OfdmTvSource::generate(std::span<cf32> out) {
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (pos_ >= symbol_.size()) make_symbol();
    out[i] = symbol_[pos_++];
  }
}

std::unique_ptr<AmbientSource> make_ambient_source(const std::string& kind,
                                                   std::uint64_t seed) {
  if (kind == "cw") return std::make_unique<CwSource>();
  OfdmParams params;
  params.seed = seed;
  return std::make_unique<OfdmTvSource>(params);
}

}  // namespace fdb::channel
