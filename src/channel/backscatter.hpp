// The backscatter antenna model. A tag communicates by switching its
// antenna load between two impedances; the antenna then reflects a
// state-dependent fraction of the incident wave. No oscillator, no DAC:
// the "transmitter" is a single RF switch, which is what makes the
// full-duplex trick nearly free on the feedback side.
#pragma once

#include <cstdint>
#include <span>

#include "util/types.hpp"

namespace fdb::channel {

/// Complex reflection coefficients of the two switch states.
struct ReflectionStates {
  cf32 gamma_absorb{0.0f, 0.0f};   // state 0: matched load, absorb
  cf32 gamma_reflect{0.8f, 0.0f};  // state 1: mismatched, reflect

  /// On-off keying states: absorb (Γ=0) vs reflect with field magnitude
  /// sqrt(rho), i.e. a fraction rho of incident *power* is reflected.
  static ReflectionStates ook(double rho);

  /// BPSK states: ±sqrt(rho) (equal magnitude, 180° phase shift).
  static ReflectionStates bpsk(double rho);

  /// Field-level difference |Γ1 - Γ0| — proportional to the detectable
  /// signal swing at the receiver.
  float differential_amplitude() const;
};

/// Stateless reflection: out = Γ(state) * incident.
class BackscatterModulator {
 public:
  explicit BackscatterModulator(ReflectionStates states);

  cf32 reflect(cf32 incident, bool state) const;

  /// Applies reflection over a block with a per-sample state stream.
  void reflect(std::span<const cf32> incident,
               std::span<const std::uint8_t> states,
               std::span<cf32> out) const;

  /// Fraction of incident power available to the harvester in `state`
  /// (before harvester efficiency): 1 - |Γ|^2.
  double harvest_fraction(bool state) const;

  const ReflectionStates& states() const { return states_; }

 private:
  ReflectionStates states_;
};

}  // namespace fdb::channel
