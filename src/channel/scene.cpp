#include "channel/scene.hpp"

#include <algorithm>
#include <cmath>

#include "util/db.hpp"
#include "util/rng.hpp"

namespace fdb::channel {

double distance_m(const Vec2& a, const Vec2& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

Scene::Scene(LogDistanceModel pathloss_model, std::uint64_t shadowing_seed)
    : pathloss_(pathloss_model), shadowing_seed_(shadowing_seed) {}

std::size_t Scene::add_device(Device device) {
  devices_.push_back(std::move(device));
  return devices_.size() - 1;
}

double Scene::shadowing_db(std::size_t a, std::size_t b,
                           std::uint64_t coherence_block) const {
  if (pathloss_.shadowing_sigma_db <= 0.0) return 0.0;
  // Order-independent pair key: the draw is a pure function of
  // (seed, block, {a, b}), so gain(a, b) == gain(b, a) and no shared RNG
  // state is consumed. Device indices are vector positions, comfortably
  // below 2^32, so packing min/max into one 64-bit stream id is exact.
  const std::uint64_t lo = std::min(a, b);
  const std::uint64_t hi = std::max(a, b);
  const std::uint64_t pair_key = (lo << 32) | (hi & 0xffffffffULL);
  // Fold the block into the seed half so (seed, block) pairs never alias
  // the (seed) of a neighbouring block.
  const std::uint64_t block_seed =
      shadowing_seed_ + coherence_block * 0x9e3779b97f4a7c15ULL;
  Rng pair_rng = Rng::substream(block_seed, pair_key);
  return pair_rng.normal(0.0, pathloss_.shadowing_sigma_db);
}

double Scene::power_gain(std::size_t a, std::size_t b,
                         std::uint64_t coherence_block) const {
  const double d = distance_m(devices_.at(a).position, devices_.at(b).position);
  double gain = pathloss_.power_gain(std::max(d, 0.01));
  if (pathloss_.shadowing_sigma_db > 0.0) {
    gain *= db_to_lin(-shadowing_db(a, b, coherence_block));
  }
  return gain;
}

double Scene::amplitude_gain(std::size_t a, std::size_t b,
                             std::uint64_t coherence_block) const {
  return std::sqrt(power_gain(a, b, coherence_block));
}

std::size_t Scene::find_first(DeviceKind kind) const {
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    if (devices_[i].kind == kind) return i;
  }
  return SIZE_MAX;
}

std::vector<std::size_t> Scene::find_all(DeviceKind kind) const {
  std::vector<std::size_t> found;
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    if (devices_[i].kind == kind) found.push_back(i);
  }
  return found;
}

}  // namespace fdb::channel
