#include "channel/scene.hpp"

#include <cmath>

namespace fdb::channel {

double distance_m(const Vec2& a, const Vec2& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

Scene::Scene(LogDistanceModel pathloss_model) : pathloss_(pathloss_model) {}

std::size_t Scene::add_device(Device device) {
  devices_.push_back(std::move(device));
  return devices_.size() - 1;
}

double Scene::amplitude_gain(std::size_t a, std::size_t b, Rng* rng) const {
  const double d = distance_m(devices_.at(a).position, devices_.at(b).position);
  return pathloss_.amplitude_gain(std::max(d, 0.01), rng);
}

double Scene::power_gain(std::size_t a, std::size_t b, Rng* rng) const {
  const double gain = amplitude_gain(a, b, rng);
  return gain * gain;
}

std::size_t Scene::find_first(DeviceKind kind) const {
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    if (devices_[i].kind == kind) return i;
  }
  return SIZE_MAX;
}

}  // namespace fdb::channel
