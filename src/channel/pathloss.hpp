// Large-scale propagation models. Backscatter links see path loss twice
// (illuminator->tag and tag->receiver), which is why ranges are short;
// the scene composes these one-way gains.
#pragma once

#include "util/rng.hpp"

namespace fdb::channel {

/// Free-space amplitude gain at `distance_m` for carrier wavelength
/// `wavelength_m` (Friis with unity antenna gains). Returns the *field*
/// gain; square it for power.
double friis_amplitude_gain(double distance_m, double wavelength_m);

/// Log-distance path-loss model.
struct LogDistanceModel {
  double reference_distance_m = 1.0;
  double reference_loss_db = 30.0;   // loss at the reference distance
  double exponent = 2.5;             // indoor-ish
  double shadowing_sigma_db = 0.0;   // lognormal shadowing std dev

  /// Power gain (<= 1) at `distance_m`; when shadowing_sigma_db > 0 a
  /// shadowing realisation is drawn from `rng`.
  double power_gain(double distance_m, Rng* rng = nullptr) const;

  /// Field gain: sqrt(power_gain).
  double amplitude_gain(double distance_m, Rng* rng = nullptr) const;
};

/// UHF TV-band wavelength helper (c / f).
double wavelength_m(double carrier_hz);

}  // namespace fdb::channel
