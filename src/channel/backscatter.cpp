#include "channel/backscatter.hpp"

#include <cassert>
#include <cmath>

namespace fdb::channel {

ReflectionStates ReflectionStates::ook(double rho) {
  assert(rho > 0.0 && rho <= 1.0);
  ReflectionStates s;
  s.gamma_absorb = {0.0f, 0.0f};
  s.gamma_reflect = {static_cast<float>(std::sqrt(rho)), 0.0f};
  return s;
}

ReflectionStates ReflectionStates::bpsk(double rho) {
  assert(rho > 0.0 && rho <= 1.0);
  ReflectionStates s;
  const float mag = static_cast<float>(std::sqrt(rho));
  s.gamma_absorb = {-mag, 0.0f};
  s.gamma_reflect = {mag, 0.0f};
  return s;
}

float ReflectionStates::differential_amplitude() const {
  return std::abs(gamma_reflect - gamma_absorb);
}

BackscatterModulator::BackscatterModulator(ReflectionStates states)
    : states_(states) {}

cf32 BackscatterModulator::reflect(cf32 incident, bool state) const {
  return incident * (state ? states_.gamma_reflect : states_.gamma_absorb);
}

void BackscatterModulator::reflect(std::span<const cf32> incident,
                                   std::span<const std::uint8_t> states,
                                   std::span<cf32> out) const {
  assert(incident.size() == states.size() && incident.size() == out.size());
  for (std::size_t i = 0; i < incident.size(); ++i) {
    out[i] = reflect(incident[i], states[i] != 0);
  }
}

double BackscatterModulator::harvest_fraction(bool state) const {
  const cf32 gamma = state ? states_.gamma_reflect : states_.gamma_absorb;
  const double reflected = std::norm(gamma);
  return std::max(0.0, 1.0 - reflected);
}

}  // namespace fdb::channel
