#include "channel/multipath.hpp"

#include <cassert>
#include <cmath>

namespace fdb::channel {

std::vector<cf32> draw_multipath_taps(const MultipathProfile& profile,
                                      Rng& rng) {
  assert(profile.num_taps >= 1);
  assert(profile.delay_spread_samples > 0.0);
  std::vector<cf32> taps(profile.num_taps);
  double total = 0.0;
  std::vector<double> weights(profile.num_taps);
  for (std::size_t k = 0; k < profile.num_taps; ++k) {
    weights[k] =
        std::exp(-static_cast<double>(k) / profile.delay_spread_samples);
    total += weights[k];
  }
  for (std::size_t k = 0; k < profile.num_taps; ++k) {
    taps[k] = rng.cn(weights[k] / total);
  }
  return taps;
}

MultipathChannel::MultipathChannel(MultipathProfile profile, Rng& rng)
    : profile_(profile),
      taps_(draw_multipath_taps(profile, rng)),
      fir_(taps_) {}

void MultipathChannel::redraw(Rng& rng) {
  taps_ = draw_multipath_taps(profile_, rng);
  fir_ = dsp::FirFilterCC(taps_);
}

}  // namespace fdb::channel
