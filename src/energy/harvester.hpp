// RF energy harvester model. Substitutes for the hardware measurements
// the paper's platform implies (see DESIGN.md): a piecewise-linear
// efficiency curve with a sensitivity floor and a saturation ceiling,
// which is how practical rectifiers behave.
#pragma once

namespace fdb::energy {

struct HarvesterParams {
  double sensitivity_dbm = -24.0;  // below this, nothing rectifies
  double saturation_dbm = -4.0;    // above this, output stops growing
  double peak_efficiency = 0.35;   // at and above saturation input
  /// Efficiency ramps linearly in dB-input between sensitivity (0) and
  /// saturation (peak). Crude but matches rectifier curves to first
  /// order.
};

class Harvester {
 public:
  explicit Harvester(HarvesterParams params = {});

  /// Conversion efficiency at the given RF input power.
  double efficiency(double input_power_w) const;

  /// Harvested power (W) at the given RF input power.
  double harvested_power(double input_power_w) const;

  /// Energy (J) harvested over `seconds` at constant input power.
  double harvest(double input_power_w, double seconds) const;

  const HarvesterParams& params() const { return params_; }

 private:
  HarvesterParams params_;
};

}  // namespace fdb::energy
