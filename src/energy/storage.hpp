// Storage capacitor with leakage. Models the "small storage" regime in
// which a tag browns out if instantaneous harvest cannot cover load —
// the condition tracked by the energy-outage metric.
#pragma once

#include <cstdint>

namespace fdb::energy {

struct StorageParams {
  double capacity_j = 1.0e-4;     // usable energy at full charge
  double initial_j = 5.0e-5;
  double leakage_w = 1.0e-8;      // constant self-discharge
};

class Storage {
 public:
  explicit Storage(StorageParams params = {});

  /// Adds harvested energy (clamped at capacity).
  void charge(double joules);

  /// Attempts to draw `joules`; returns false (and drains to zero) when
  /// the store cannot cover it — an energy outage.
  bool draw(double joules);

  /// Applies leakage over an interval.
  void tick(double seconds);

  double level_j() const { return level_; }
  double capacity_j() const { return params_.capacity_j; }
  bool depleted() const { return level_ <= 0.0; }
  std::uint64_t outages() const { return outages_; }

  void reset();

 private:
  StorageParams params_;
  double level_;
  std::uint64_t outages_ = 0;
};

}  // namespace fdb::energy
