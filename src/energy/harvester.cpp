#include "energy/harvester.hpp"

#include <algorithm>
#include <cassert>

#include "util/db.hpp"

namespace fdb::energy {

Harvester::Harvester(HarvesterParams params) : params_(params) {
  assert(params.saturation_dbm > params.sensitivity_dbm);
  assert(params.peak_efficiency > 0.0 && params.peak_efficiency <= 1.0);
}

double Harvester::efficiency(double input_power_w) const {
  if (input_power_w <= 0.0) return 0.0;
  const double dbm = watt_to_dbm(input_power_w);
  if (dbm < params_.sensitivity_dbm) return 0.0;
  if (dbm >= params_.saturation_dbm) return params_.peak_efficiency;
  const double frac = (dbm - params_.sensitivity_dbm) /
                      (params_.saturation_dbm - params_.sensitivity_dbm);
  return params_.peak_efficiency * frac;
}

double Harvester::harvested_power(double input_power_w) const {
  return efficiency(input_power_w) * std::max(input_power_w, 0.0);
}

double Harvester::harvest(double input_power_w, double seconds) const {
  assert(seconds >= 0.0);
  return harvested_power(input_power_w) * seconds;
}

}  // namespace fdb::energy
