#include "energy/storage.hpp"

#include <algorithm>
#include <cassert>

namespace fdb::energy {

Storage::Storage(StorageParams params)
    : params_(params), level_(params.initial_j) {
  assert(params.capacity_j > 0.0);
  assert(params.initial_j >= 0.0 && params.initial_j <= params.capacity_j);
  assert(params.leakage_w >= 0.0);
}

void Storage::charge(double joules) {
  assert(joules >= 0.0);
  level_ = std::min(level_ + joules, params_.capacity_j);
}

bool Storage::draw(double joules) {
  assert(joules >= 0.0);
  if (joules > level_) {
    level_ = 0.0;
    ++outages_;
    return false;
  }
  level_ -= joules;
  return true;
}

void Storage::tick(double seconds) {
  assert(seconds >= 0.0);
  level_ = std::max(0.0, level_ - params_.leakage_w * seconds);
}

void Storage::reset() {
  level_ = params_.initial_j;
  outages_ = 0;
}

}  // namespace fdb::energy
