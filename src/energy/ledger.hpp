// Per-state energy accounting for a tag. Costs are parameters, not
// measurements (DESIGN.md substitution): what the experiments compare is
// *relative* energy per delivered bit across protocols, which survives
// any consistent choice of constants.
#pragma once

#include <array>
#include <cstdint>

namespace fdb::energy {

enum class TagState : std::uint8_t {
  kIdle = 0,       // leakage only, clock gated
  kListening,      // envelope detector + comparator active
  kBackscattering, // switch toggling (adds switching losses)
  kDecoding,       // digital block active
  kCount
};

struct PowerProfile {
  // Representative micropower-tag numbers (order-of-magnitude realistic;
  // see e.g. published ambient-backscatter prototypes drawing ~µW).
  double idle_w = 0.1e-6;
  double listening_w = 0.6e-6;
  double backscattering_w = 0.9e-6;  // listening + switch drive
  double decoding_w = 1.5e-6;

  double power(TagState state) const;
};

class EnergyLedger {
 public:
  explicit EnergyLedger(PowerProfile profile = {});

  /// Accumulates `seconds` spent in `state`.
  void spend(TagState state, double seconds);

  double total_energy_j() const;
  double energy_in_state_j(TagState state) const;
  double time_in_state_s(TagState state) const;
  double total_time_s() const;

  /// Energy per delivered payload bit given a delivery count.
  double energy_per_bit_j(std::uint64_t delivered_bits) const;

  void reset();

 private:
  PowerProfile profile_;
  std::array<double, static_cast<std::size_t>(TagState::kCount)> seconds_{};
};

}  // namespace fdb::energy
