#include "energy/ledger.hpp"

#include <cassert>
#include <limits>

namespace fdb::energy {

double PowerProfile::power(TagState state) const {
  switch (state) {
    case TagState::kIdle: return idle_w;
    case TagState::kListening: return listening_w;
    case TagState::kBackscattering: return backscattering_w;
    case TagState::kDecoding: return decoding_w;
    case TagState::kCount: break;
  }
  return 0.0;
}

EnergyLedger::EnergyLedger(PowerProfile profile) : profile_(profile) {}

void EnergyLedger::spend(TagState state, double seconds) {
  assert(seconds >= 0.0);
  assert(state != TagState::kCount);
  seconds_[static_cast<std::size_t>(state)] += seconds;
}

double EnergyLedger::total_energy_j() const {
  double total = 0.0;
  for (std::size_t s = 0; s < seconds_.size(); ++s) {
    total += seconds_[s] * profile_.power(static_cast<TagState>(s));
  }
  return total;
}

double EnergyLedger::energy_in_state_j(TagState state) const {
  return time_in_state_s(state) * profile_.power(state);
}

double EnergyLedger::time_in_state_s(TagState state) const {
  assert(state != TagState::kCount);
  return seconds_[static_cast<std::size_t>(state)];
}

double EnergyLedger::total_time_s() const {
  double total = 0.0;
  for (const double s : seconds_) total += s;
  return total;
}

double EnergyLedger::energy_per_bit_j(std::uint64_t delivered_bits) const {
  if (delivered_bits == 0) return std::numeric_limits<double>::infinity();
  return total_energy_j() / static_cast<double>(delivered_bits);
}

void EnergyLedger::reset() { seconds_.fill(0.0); }

}  // namespace fdb::energy
