// Rate adaptation driven by instantaneous feedback — the application
// the full-duplex design unlocks. With per-block verdicts arriving
// *during* the frame, the transmitter observes the channel at block
// granularity and can walk a chip-length ladder (longer chips = more
// averaging = lower rate but lower BER) within a frame or two, instead
// of waiting out whole-frame ACK timescales.
//
// The controller is deliberately simple — a dwell-limited ladder with
// hysteresis — because a tag has no spare compute for anything fancier.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fdb::core {

struct RateAdaptConfig {
  /// Chip lengths (samples per chip), slowest-rate last. Must be
  /// non-empty and strictly increasing.
  std::vector<std::size_t> chip_ladder = {6, 12, 24, 48, 96};
  /// Block-loss rate below which the controller tries the next faster
  /// rung (more bits per second).
  double upshift_below = 0.02;
  /// Block-loss rate above which it retreats to the next slower rung.
  double downshift_above = 0.20;
  /// Verdicts averaged per decision.
  std::size_t window_blocks = 32;
  /// Minimum verdicts between rate changes (prevents hunting).
  std::size_t min_dwell_blocks = 64;
  /// Starting rung index.
  std::size_t initial_rung = 2;
};

class RateController {
 public:
  explicit RateController(RateAdaptConfig config = {});

  /// Feeds one block verdict (true = delivered clean). Returns true if
  /// the rate changed as a result.
  bool on_block_verdict(bool ok);

  /// Current chip length to transmit with.
  std::size_t samples_per_chip() const;

  std::size_t rung() const { return rung_; }
  std::size_t num_rungs() const { return config_.chip_ladder.size(); }

  /// Loss rate over the current window (0 while warming up).
  double window_loss_rate() const;

  std::uint64_t upshifts() const { return upshifts_; }
  std::uint64_t downshifts() const { return downshifts_; }

  void reset();

  const RateAdaptConfig& config() const { return config_; }

 private:
  RateAdaptConfig config_;
  std::size_t rung_;
  std::vector<std::uint8_t> window_;  // 1 = block failed
  std::size_t window_pos_ = 0;
  std::size_t window_filled_ = 0;
  std::size_t since_change_ = 0;
  std::uint64_t upshifts_ = 0;
  std::uint64_t downshifts_ = 0;
};

}  // namespace fdb::core
