// The full-duplex backscatter modem: composition of the one-way PHY,
// the self-interference normaliser, and the rate-separated feedback
// channel. Three roles:
//
//   FdDataTransmitter  (device A)  payload -> per-sample antenna states
//   FdDataReceiver     (device B)  envelope + own feedback states ->
//                                  per-block verdicts + payload
//   FdFeedbackReceiver (device A)  envelope + own data states ->
//                                  feedback bits
//
// Device B *simultaneously* runs FdDataReceiver and FeedbackEncoder;
// device A simultaneously runs FdDataTransmitter and FdFeedbackReceiver.
// That concurrency — receive-while-transmit on both ends of a passive
// link — is the paper's contribution.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/feedback.hpp"
#include "core/frame_schedule.hpp"
#include "core/self_interference.hpp"
#include "phy/modem.hpp"

namespace fdb::core {

struct FdModemConfig {
  phy::ModemConfig data;            // data-plane modem (rates inside)
  FeedbackConfig feedback;          // feedback-plane coding/averaging
  NormalizerConfig normalizer;      // self-interference handling at B
  ScheduleConfig schedule;          // block <-> slot timing
  std::size_t block_size_bytes = 8; // instant-NACK protocol unit

  /// Block payload bits + CRC8 trailer, as sent on the data stream.
  std::size_t block_bits() const { return block_size_bytes * 8 + 8; }

  /// A consistent config keys the rate asymmetry to the block length so
  /// one block maps to one feedback slot (see FrameSchedule).
  bool consistent() const {
    return data.rates.valid() && data.rates.asymmetry == block_bits();
  }

  /// Builds a config where the asymmetry matches `block_size_bytes`.
  static FdModemConfig make(std::size_t block_size_bytes = 8,
                            std::size_t samples_per_chip = 20);
};

class FdDataTransmitter {
 public:
  explicit FdDataTransmitter(FdModemConfig config);

  /// Preamble + blocked payload as per-sample antenna states.
  std::vector<std::uint8_t> modulate(
      std::span<const std::uint8_t> payload) const;

  /// States for a retransmission burst of the given blocks only (each
  /// block re-sent with its CRC; no preamble — the receiver is already
  /// synchronised within the frame).
  std::vector<std::uint8_t> modulate_blocks_raw(
      std::span<const std::uint8_t> payload, std::size_t block_size,
      std::span<const std::size_t> block_indices) const;

  std::size_t preamble_samples() const;
  std::size_t burst_samples(std::size_t payload_bytes) const;
  std::size_t num_blocks(std::size_t payload_bytes) const;

  const FdModemConfig& config() const { return config_; }

 private:
  FdModemConfig config_;
  phy::BackscatterTx tx_;
};

struct FdRxResult {
  Status status = Status::kSyncNotFound;
  phy::BlockDecodeResult blocks;
  phy::RxDiagnostics diag;
  /// Envelope after self-interference normalisation (diagnostics).
  std::vector<float> normalized;
};

class FdDataReceiver {
 public:
  explicit FdDataReceiver(FdModemConfig config);

  /// Decodes a blocked frame while the device transmits feedback.
  /// `own_states` is this device's *own* antenna state per sample
  /// (empty => device is silent, degenerates to half-duplex receive).
  FdRxResult demodulate(std::span<const float> envelope,
                        std::span<const std::uint8_t> own_states,
                        std::size_t payload_bytes) const;

  const FdModemConfig& config() const { return config_; }

 private:
  FdModemConfig config_;
  phy::BackscatterRx rx_;
};

class FdFeedbackReceiver {
 public:
  explicit FdFeedbackReceiver(FdModemConfig config);

  /// Decodes `num_bits` feedback bits from the transmitter's received
  /// envelope. `data_start_sample` is where the data section began in
  /// this capture (the transmitter knows: it set the timing);
  /// `own_states` is the transmitter's own antenna state per sample of
  /// the same capture.
  FeedbackDecodeResult decode(std::span<const float> envelope,
                              std::span<const std::uint8_t> own_states,
                              std::size_t data_start_sample,
                              std::size_t num_bits) const;

  const FdModemConfig& config() const { return config_; }

 private:
  FdModemConfig config_;
  FeedbackDecoder decoder_;
};

}  // namespace fdb::core
