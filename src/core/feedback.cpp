#include "core/feedback.hpp"

#include <algorithm>
#include <cassert>

namespace fdb::core {

FeedbackEncoder::FeedbackEncoder(phy::RateConfig rates, FeedbackConfig config)
    : rates_(rates), config_(config) {
  assert(rates.valid());
}

std::size_t FeedbackEncoder::preamble_slots() const {
  return config_.coding == FeedbackCoding::kNrz ? config_.preamble_slots
                                                : config_.pilot_slots;
}

std::vector<std::uint8_t> FeedbackEncoder::encode(
    std::span<const std::uint8_t> bits) const {
  const std::size_t w = rates_.samples_per_feedback_bit();
  std::vector<std::uint8_t> states;
  states.reserve(samples_for_bits(bits.size()));

  if (config_.coding == FeedbackCoding::kNrz) {
    // Alternating calibration slots teach the decoder both levels.
    for (std::size_t i = 0; i < config_.preamble_slots; ++i) {
      states.insert(states.end(), w, static_cast<std::uint8_t>(i % 2));
    }
    for (const std::uint8_t bit : bits) {
      states.insert(states.end(), w, bit ? 1 : 0);
    }
    return states;
  }

  // Manchester at the slow scale: '1' = high then low, '0' = low then
  // high. Each half occupies w/2 samples (w is even: it is a multiple
  // of the FM0 bit which is two chips). Known '1' pilots lead so the
  // decoder can resolve swing polarity.
  const std::size_t half = w / 2;
  auto emit = [&](std::uint8_t bit) {
    const std::uint8_t first = bit ? 1 : 0;
    states.insert(states.end(), half, first);
    states.insert(states.end(), w - half, first ^ 1u);
  };
  for (std::size_t p = 0; p < config_.pilot_slots; ++p) emit(1);
  for (const std::uint8_t bit : bits) emit(bit);
  return states;
}

std::size_t FeedbackEncoder::samples_for_bits(std::size_t n) const {
  return (n + preamble_slots()) * rates_.samples_per_feedback_bit();
}

FeedbackDecoder::FeedbackDecoder(phy::RateConfig rates, FeedbackConfig config)
    : rates_(rates), config_(config) {
  assert(rates.valid());
}

double FeedbackDecoder::window_statistic(
    std::span<const float> envelope, std::span<const std::uint8_t> own_states,
    std::size_t first, std::size_t len) const {
  const bool gated = config_.average == FeedbackAverage::kSelfGated &&
                     own_states.size() >= first + len;
  double sum = 0.0;
  std::size_t count = 0;
  for (std::size_t i = first; i < first + len && i < envelope.size(); ++i) {
    if (gated && own_states[i] != 0) continue;
    sum += envelope[i];
    ++count;
  }
  if (count == 0) {
    // Own transmission covered the whole window (can happen only with
    // non-FM0 data); fall back to the ungated mean.
    for (std::size_t i = first; i < first + len && i < envelope.size(); ++i) {
      sum += envelope[i];
      ++count;
    }
  }
  return count ? sum / static_cast<double>(count) : 0.0;
}

FeedbackDecodeResult FeedbackDecoder::decode(
    std::span<const float> envelope, std::span<const std::uint8_t> own_states,
    std::size_t num_bits) const {
  FeedbackDecodeResult result;
  const std::size_t w = rates_.samples_per_feedback_bit();

  if (config_.coding == FeedbackCoding::kManchester) {
    // Per-window self-thresholding: compare the two half-window means.
    // The leading pilot slots carry a known '1'; their decoded polarity
    // calibrates the sign of every payload decision.
    const std::size_t half = w / 2;
    double pilot_sign = 0.0;
    const std::size_t total_slots = num_bits + config_.pilot_slots;
    for (std::size_t b = 0; b < total_slots; ++b) {
      const std::size_t start = b * w;
      if (start + w > envelope.size()) break;
      const double first = window_statistic(envelope, own_states, start, half);
      const double second =
          window_statistic(envelope, own_states, start + half, w - half);
      const double diff = first - second;
      ++result.slots_processed;
      if (b < config_.pilot_slots) {
        pilot_sign += diff;  // expected positive for an upright channel
        continue;
      }
      const bool inverted = pilot_sign < 0.0;
      const double oriented = inverted ? -diff : diff;
      result.bits.push_back(oriented >= 0.0 ? 1 : 0);
      const double denom = std::max(first + second, 1e-30);
      result.soft.push_back(static_cast<float>(oriented / denom));
    }
    return result;
  }

  // NRZ: adaptive min/max threshold over a sliding slot history, primed
  // by the encoder's alternating calibration slots (0,1,0,1,...). The
  // calibration slots also resolve polarity: slot 1 should read above
  // slot 0 on an upright channel.
  const std::size_t total_slots =
      std::min(num_bits + config_.preamble_slots, envelope.size() / w);
  std::vector<double> history;
  double calib_sign = 0.0;
  for (std::size_t slot = 0; slot < total_slots; ++slot) {
    const double stat =
        window_statistic(envelope, own_states, slot * w, w);
    history.push_back(stat);
    if (history.size() > config_.slicer_window_slots) {
      history.erase(history.begin());
    }
    ++result.slots_processed;
    if (slot < config_.preamble_slots) {
      // Odd calibration slots carry '1' (reflect), even carry '0'.
      calib_sign += (slot % 2 == 1) ? stat : -stat;
      continue;
    }
    const bool inverted =
        config_.preamble_slots >= 2 && calib_sign < 0.0;
    const auto [lo_it, hi_it] =
        std::minmax_element(history.begin(), history.end());
    const double threshold = 0.5 * (*lo_it + *hi_it);
    const double swing = std::max(*hi_it - *lo_it, 1e-30);
    const bool above = stat >= threshold;
    result.bits.push_back((above != inverted) ? 1 : 0);
    const double soft = (stat - threshold) / swing;
    result.soft.push_back(static_cast<float>(inverted ? -soft : soft));
  }
  return result;
}

}  // namespace fdb::core
