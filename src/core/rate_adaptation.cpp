#include "core/rate_adaptation.hpp"

#include <algorithm>
#include <cassert>

namespace fdb::core {

RateController::RateController(RateAdaptConfig config)
    : config_(std::move(config)),
      rung_(std::min(config_.initial_rung,
                     config_.chip_ladder.empty()
                         ? 0
                         : config_.chip_ladder.size() - 1)),
      window_(config_.window_blocks, 0) {
  assert(!config_.chip_ladder.empty());
  assert(std::is_sorted(config_.chip_ladder.begin(),
                        config_.chip_ladder.end()));
  assert(config_.upshift_below < config_.downshift_above);
  assert(config_.window_blocks > 0);
}

bool RateController::on_block_verdict(bool ok) {
  window_[window_pos_] = ok ? 0 : 1;
  window_pos_ = (window_pos_ + 1) % window_.size();
  window_filled_ = std::min(window_filled_ + 1, window_.size());
  ++since_change_;

  if (window_filled_ < window_.size() ||
      since_change_ < config_.min_dwell_blocks) {
    return false;
  }
  const double loss = window_loss_rate();
  // Ladder convention: rung 0 = shortest chips = fastest. A downshift
  // (worse channel) moves to a LARGER chip, i.e. rung+1.
  if (loss > config_.downshift_above &&
      rung_ + 1 < config_.chip_ladder.size()) {
    ++rung_;
    ++downshifts_;
    since_change_ = 0;
    window_filled_ = 0;  // old-rate verdicts say nothing about the new
    return true;
  }
  if (loss < config_.upshift_below && rung_ > 0) {
    --rung_;
    ++upshifts_;
    since_change_ = 0;
    window_filled_ = 0;
    return true;
  }
  return false;
}

std::size_t RateController::samples_per_chip() const {
  return config_.chip_ladder[rung_];
}

double RateController::window_loss_rate() const {
  if (window_filled_ == 0) return 0.0;
  std::size_t losses = 0;
  for (std::size_t i = 0; i < window_filled_; ++i) {
    losses += window_[i];
  }
  return static_cast<double>(losses) / static_cast<double>(window_filled_);
}

void RateController::reset() {
  rung_ = std::min(config_.initial_rung, config_.chip_ladder.size() - 1);
  std::fill(window_.begin(), window_.end(), 0);
  window_pos_ = 0;
  window_filled_ = 0;
  since_change_ = 0;
  upshifts_ = 0;
  downshifts_ = 0;
}

}  // namespace fdb::core
