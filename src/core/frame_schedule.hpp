// Timing contract between the fast data stream and the slow feedback
// stream. Protocol blocks are sized so one block occupies exactly one
// feedback slot (asymmetry = block bits); the verdict for block i then
// arrives in slot i + 1 + decode_delay_slots, giving the transmitter a
// deterministic place to look — no feedback framing needed.
#pragma once

#include <cstddef>

#include "phy/rate_config.hpp"

namespace fdb::core {

struct ScheduleConfig {
  /// Extra slots between a block ending and its verdict appearing,
  /// modelling the receiver's decode latency (>= 1 in any causal
  /// implementation).
  std::size_t decode_delay_slots = 1;
};

class FrameSchedule {
 public:
  FrameSchedule(phy::RateConfig rates, ScheduleConfig config = {});

  /// Bits of data stream covered by one feedback slot.
  std::size_t bits_per_slot() const { return rates_.asymmetry; }

  /// Slot index whose feedback bit carries the verdict of `block`.
  std::size_t verdict_slot(std::size_t block) const;

  /// First data-bit index of `slot` (slots count from the start of the
  /// data section, i.e. after the preamble).
  std::size_t slot_start_bit(std::size_t slot) const;

  /// First sample index of `slot` relative to the data start.
  std::size_t slot_start_sample(std::size_t slot) const;

  /// Number of feedback slots needed to cover `num_blocks` verdicts.
  std::size_t slots_for_blocks(std::size_t num_blocks) const;

  const phy::RateConfig& rates() const { return rates_; }
  const ScheduleConfig& config() const { return config_; }

 private:
  phy::RateConfig rates_;
  ScheduleConfig config_;
};

}  // namespace fdb::core
