#include "core/theory.hpp"

#include <cassert>
#include <cmath>
#include <limits>

namespace fdb::core {

double qfunc(double x) { return 0.5 * std::erfc(x / std::sqrt(2.0)); }

double ook_envelope_ber(double delta_amp, double noise_sigma,
                        std::size_t n_avg) {
  assert(delta_amp >= 0.0 && noise_sigma > 0.0 && n_avg > 0);
  const double effective_sigma =
      noise_sigma / std::sqrt(static_cast<double>(n_avg));
  return qfunc(delta_amp / 2.0 / effective_sigma);
}

double feedback_ber(double delta_amp, double noise_sigma,
                    std::size_t window_samples, bool manchester) {
  assert(window_samples > 0);
  if (!manchester) {
    return ook_envelope_ber(delta_amp, noise_sigma, window_samples);
  }
  // Manchester decision: difference of two half-window means. The
  // difference statistic has distance delta and variance 2*sigma^2/(W/2)
  // -> argument sqrt(W)/2 * delta / (2 sigma) equivalent form below.
  const double half = static_cast<double>(window_samples) / 2.0;
  const double sigma_diff = noise_sigma * std::sqrt(2.0 / half);
  return qfunc(delta_amp / sigma_diff);
}

double block_error_rate(double ber, std::size_t block_bits) {
  assert(ber >= 0.0 && ber <= 1.0);
  return 1.0 - std::pow(1.0 - ber, static_cast<double>(block_bits));
}

double qfunc_inv(double p) {
  assert(p > 0.0 && p < 1.0);
  // Bisection on the monotone-decreasing qfunc. [-40, 40] covers every
  // double-representable tail probability; ~120 halvings reach the
  // precision floor of erfc itself.
  double lo = -40.0;
  double hi = 40.0;
  for (int i = 0; i < 120; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (qfunc(mid) > p) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

double envelope_sinr(double delta_env, double interferer_env_sum,
                     double noise_sigma, std::size_t n_avg) {
  assert(interferer_env_sum >= 0.0 && noise_sigma >= 0.0 && n_avg > 0);
  if (!(delta_env > 0.0)) return 0.0;
  const double half_i = interferer_env_sum / 2.0;
  const double denom = half_i * half_i +
                       noise_sigma * noise_sigma /
                           static_cast<double>(n_avg);
  if (!(denom > 0.0)) return std::numeric_limits<double>::infinity();
  const double half_d = delta_env / 2.0;
  return half_d * half_d / denom;
}

double ook_required_sinr(double target_ber) {
  assert(target_ber > 0.0 && target_ber < 0.5);
  const double x = qfunc_inv(target_ber);
  return x * x;
}

double sinr_db(double signal_w, double interference_w, double noise_w) {
  assert(interference_w >= 0.0 && noise_w >= 0.0);
  if (!(signal_w > 0.0)) return -std::numeric_limits<double>::infinity();
  const double denom = interference_w + noise_w;
  if (!(denom > 0.0)) return std::numeric_limits<double>::infinity();
  return 10.0 * std::log10(signal_w / denom);
}

namespace {

/// Frame error rate over payload + overhead bits.
double frame_error_rate(double ber, std::size_t bits) {
  return block_error_rate(ber, bits);
}

}  // namespace

double stop_and_wait_goodput(double ber, const ArqModelParams& params) {
  const std::size_t frame_bits = params.payload_bits +
                                 params.frame_overhead_bits +
                                 params.preamble_bits;
  const double fer = frame_error_rate(
      ber, params.payload_bits + params.frame_overhead_bits);
  if (fer >= 1.0) return 0.0;
  // Expected transmissions = 1/(1-FER); each costs frame + turnaround.
  const double cost_per_attempt =
      static_cast<double>(frame_bits + params.ack_turnaround_bits);
  const double expected_cost = cost_per_attempt / (1.0 - fer);
  return static_cast<double>(params.payload_bits) / expected_cost;
}

double selective_repeat_goodput(double ber, const ArqModelParams& params) {
  // Frame-granularity SR with pipelining: turnaround amortised away but
  // every corrupted frame still costs a full frame slot.
  const std::size_t frame_bits = params.payload_bits +
                                 params.frame_overhead_bits +
                                 params.preamble_bits;
  const double fer = frame_error_rate(
      ber, params.payload_bits + params.frame_overhead_bits);
  if (fer >= 1.0) return 0.0;
  const double expected_cost = static_cast<double>(frame_bits) / (1.0 - fer);
  return static_cast<double>(params.payload_bits) / expected_cost;
}

double fd_arq_goodput(double ber, double feedback_ber,
                      const ArqModelParams& params) {
  const std::size_t block_on_air =
      params.block_bits + params.block_overhead_bits;
  const double bler = block_error_rate(ber, block_on_air);
  if (bler >= 1.0) return 0.0;

  // A block needs 1/(1-bler) attempts on average. Feedback errors:
  //  * false NACK (verdict bit flipped on a good block): one wasted
  //    retransmission -> inflate attempts by (1 + feedback_ber).
  //  * false ACK (flipped on a bad block): caught by the frame-level
  //    CRC pass, costing one extra block slot at the end.
  const double attempts = (1.0 + feedback_ber) / (1.0 - bler);
  const double num_blocks =
      std::ceil(static_cast<double>(params.payload_bits) /
                static_cast<double>(params.block_bits));
  const double false_ack_penalty =
      num_blocks * bler * feedback_ber * static_cast<double>(block_on_air);

  const double cost = num_blocks * attempts * static_cast<double>(block_on_air) +
                      static_cast<double>(params.preamble_bits) +
                      static_cast<double>(params.frame_overhead_bits) +
                      false_ack_penalty;
  return static_cast<double>(params.payload_bits) / cost;
}

double stop_and_wait_energy_per_bit(double ber,
                                    const ArqModelParams& params) {
  const double goodput = stop_and_wait_goodput(ber, params);
  if (goodput <= 0.0) return std::numeric_limits<double>::infinity();
  // Energy model: active-listening/transmitting cost is proportional to
  // airtime, so energy per delivered bit is 1/goodput bit-time units.
  return 1.0 / goodput;
}

double fd_arq_energy_per_bit(double ber, double feedback_ber,
                             const ArqModelParams& params) {
  const double goodput = fd_arq_goodput(ber, feedback_ber, params);
  if (goodput <= 0.0) return std::numeric_limits<double>::infinity();
  return 1.0 / goodput;
}

}  // namespace fdb::core
