// Self-interference handling — half of the full-duplex trick.
//
// A backscatter device that is transmitting feedback multiplies the
// field at its own antenna by a *known* state-dependent factor: it is
// the one driving the switch. Unlike active full-duplex radios it needs
// no cancellation circuitry — it can simply renormalise its received
// envelope by the per-state gain. The gains are not known a priori
// (they depend on antenna geometry and the ambient field), so they are
// estimated online by conditioning an envelope average on the device's
// own switch state.
#pragma once

#include <cstdint>
#include <span>

namespace fdb::core {

struct NormalizerConfig {
  /// EMA time constant in samples for the per-state envelope means.
  /// Should span several data bits but stay well under the fading
  /// coherence block.
  double ema_samples = 2048;
  /// Means are trusted only after this many samples of each state.
  std::size_t warmup_samples = 64;
};

/// Streams envelope samples with the device's own antenna state and
/// rescales state-1 samples so both states share the state-0 mean —
/// removing the device's own (known) modulation from the stream the
/// *data* decoder sees.
class SelfInterferenceNormalizer {
 public:
  explicit SelfInterferenceNormalizer(NormalizerConfig config = {});

  /// Normalises one sample given the device's own current state.
  float process(float envelope, bool own_state);

  /// Block form; all spans the same length.
  void process(std::span<const float> envelope,
               std::span<const std::uint8_t> own_states,
               std::span<float> out);

  /// Estimated per-state envelope means (diagnostics / tests).
  double mean_state0() const { return mean_[0]; }
  double mean_state1() const { return mean_[1]; }

  /// Current correction gain applied to state-1 samples.
  double gain() const;

  void reset();

  /// Two-pass batch variant for burst decode: estimates the per-state
  /// means over the whole capture first, then rescales state-1 samples
  /// with the final gain. Avoids the warm-up transient the streaming
  /// form pays at the start of a burst (a real tag would burn a short
  /// calibration prefix instead). Returns the applied gain.
  static double normalize_batch(std::span<const float> envelope,
                                std::span<const std::uint8_t> own_states,
                                std::span<float> out);

 private:
  NormalizerConfig config_;
  double alpha_;
  double mean_[2] = {0.0, 0.0};
  std::size_t seen_[2] = {0, 0};
};

}  // namespace fdb::core
