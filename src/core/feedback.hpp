// The feedback channel — the other half of the full-duplex trick.
//
// While device B decodes A's fast data stream, it simultaneously keys
// its own antenna at 1/k of the data rate. Device A recovers those slow
// bits *through* its own transmission without any cancellation
// hardware, exploiting two structural facts:
//
//  1. FM0 data is DC-balanced over every bit, so averaging the envelope
//     over a feedback-bit window (a whole number of data bits) yields a
//     statistic that is independent of the data pattern A sent.
//  2. A knows its own switch state at every sample, so it can restrict
//     the average to samples where it was absorbing (kSelfGated mode),
//     removing even the constant own-reflection offset.
//
// The feedback waveform itself is Manchester-coded at the slow scale by
// default: each feedback bit becomes a half-window high / half-window
// low pair, which keeps the slow stream DC-balanced too and lets the
// decoder threshold per-window instead of tracking a global level.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "phy/rate_config.hpp"

namespace fdb::core {

enum class FeedbackCoding : std::uint8_t {
  kNrz,         // hold state for the whole feedback bit
  kManchester,  // high/low halves: self-thresholding, DC balanced
};

enum class FeedbackAverage : std::uint8_t {
  kWindow,     // plain mean over the window (relies on FM0 balance)
  kSelfGated,  // mean over own-absorb samples only (knows own signal)
};

struct FeedbackConfig {
  FeedbackCoding coding = FeedbackCoding::kManchester;
  FeedbackAverage average = FeedbackAverage::kSelfGated;
  /// Slots of alternating calibration bits prepended by the encoder in
  /// NRZ mode (Manchester needs none for level calibration).
  std::size_t preamble_slots = 4;
  /// Known '1' pilot slots prepended in Manchester mode. A fading draw
  /// can invert the backscatter swing at the receiver; decoding the
  /// known pilot reveals the polarity and the decoder flips the rest.
  /// (NRZ resolves polarity from its alternating calibration slots.)
  std::size_t pilot_slots = 1;
  /// Adaptive threshold history, in feedback slots (NRZ mode).
  std::size_t slicer_window_slots = 8;
};

/// Encodes feedback bits to per-sample antenna states.
class FeedbackEncoder {
 public:
  FeedbackEncoder(phy::RateConfig rates, FeedbackConfig config);

  /// Expands bits to per-sample 0/1 states (including the calibration
  /// preamble when the coding needs one).
  std::vector<std::uint8_t> encode(std::span<const std::uint8_t> bits) const;

  /// Samples occupied by n feedback bits (preamble included).
  std::size_t samples_for_bits(std::size_t n) const;

  /// Slots the decoder must skip before payload bits appear.
  std::size_t preamble_slots() const;

  const FeedbackConfig& config() const { return config_; }

 private:
  phy::RateConfig rates_;
  FeedbackConfig config_;
};

struct FeedbackDecodeResult {
  std::vector<std::uint8_t> bits;
  std::vector<float> soft;       // per-bit statistic (diagnostics)
  std::size_t slots_processed = 0;
};

/// Decodes the slow feedback stream from an envelope capture aligned to
/// the feedback slot grid.
class FeedbackDecoder {
 public:
  FeedbackDecoder(phy::RateConfig rates, FeedbackConfig config);

  /// `envelope` and `own_states` start at a slot boundary and cover the
  /// slots to decode; own_states is A's own transmitted antenna state
  /// per sample (used by kSelfGated; may be empty for kWindow).
  FeedbackDecodeResult decode(std::span<const float> envelope,
                              std::span<const std::uint8_t> own_states,
                              std::size_t num_bits) const;

  const FeedbackConfig& config() const { return config_; }

 private:
  /// Mean of `envelope[first, first+len)` — gated on own_state==0 when
  /// configured and own-state data is available.
  double window_statistic(std::span<const float> envelope,
                          std::span<const std::uint8_t> own_states,
                          std::size_t first, std::size_t len) const;

  phy::RateConfig rates_;
  FeedbackConfig config_;
};

}  // namespace fdb::core
