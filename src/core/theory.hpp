// Closed-form reference models. The benches print these next to the
// Monte-Carlo columns so shape claims can be checked against analysis,
// and the property tests use them as envelopes (simulation must land
// within a calibrated factor of theory in the AWGN/CW regime).
#pragma once

#include <cstddef>

namespace fdb::core {

/// Gaussian tail Q(x) = P(N(0,1) > x).
double qfunc(double x);

/// BER of OOK with envelope detection and integrate&dump over `n_avg`
/// samples: the two levels are separated by `delta_amp` (field units)
/// and per-sample noise on the envelope has std dev `noise_sigma`.
/// Approximation: Gaussian post-integration statistics, optimum midpoint
/// threshold -> Q( sqrt(n_avg) * delta/2 / sigma ).
double ook_envelope_ber(double delta_amp, double noise_sigma,
                        std::size_t n_avg);

/// BER of the slow feedback bit: same statistic but averaged over a
/// whole feedback window (`n_avg` = samples per feedback bit or the
/// gated subset). Manchester halves the window per level but doubles
/// the effective distance measurement — net equal, so the same formula
/// applies with n_avg = window/2 per half and delta unchanged.
double feedback_ber(double delta_amp, double noise_sigma,
                    std::size_t window_samples, bool manchester);

/// Block error rate for `block_bits` i.i.d. bit errors at rate `ber`.
double block_error_rate(double ber, std::size_t block_bits);

// ---------------------------------------------------------------------
// Interference-aware envelope SINR — the closed forms behind the
// hybrid-fidelity fleet engine's analytic fast path (sim/fleet.hpp).
// ---------------------------------------------------------------------

/// Inverse Gaussian tail: the x with qfunc(x) == p, for p in (0, 1).
/// qfunc_inv(0.5) == 0; p < 0.5 gives positive x.
double qfunc_inv(double p);

/// Post-integration SINR (linear) of one OOK backscatter link at an
/// envelope detector: the wanted tag separates its two levels by
/// `delta_env` (field units), up to `interferer_env_sum` of concurrent
/// tags' swing may land coherently on the decision statistic (worst
/// case — interference does not integrate down), and per-sample envelope
/// noise of std dev `noise_sigma` averages over `n_avg` samples:
///
///   SINR = (delta/2)^2 / ((i_sum/2)^2 + sigma^2 / n_avg)
///
/// With i_sum == 0 this is exactly the statistic inside
/// ook_envelope_ber: ber == qfunc(sqrt(envelope_sinr(delta, 0, ...))).
double envelope_sinr(double delta_env, double interferer_env_sum,
                     double noise_sigma, std::size_t n_avg);

/// SINR (linear) an OOK envelope link needs to reach `target_ber`:
/// ber = Q(sqrt(SINR)) inverted, i.e. qfunc_inv(target_ber)^2.
/// Precondition: target_ber in (0, 0.5).
double ook_required_sinr(double target_ber);

/// Power-domain SINR in decibels; -inf when signal_w <= 0.
double sinr_db(double signal_w, double interference_w, double noise_w);

// ---------------------------------------------------------------------
// ARQ throughput models (normalised goodput in [0,1]: useful payload
// bits delivered per data-stream bit-time spent).
// ---------------------------------------------------------------------

struct ArqModelParams {
  std::size_t payload_bits = 8 * 256;  // frame payload
  std::size_t block_bits = 64;         // FD-ARQ block payload bits
  std::size_t block_overhead_bits = 8; // per-block CRC
  std::size_t frame_overhead_bits = 32;// header + frame CRC
  std::size_t preamble_bits = 21;      // sync cost per *transmission*
  /// Turnaround cost of a half-duplex feedback exchange, in bit-times:
  /// the link must stop, the receiver must send an ACK frame, and the
  /// transmitter must re-acquire — none of which full-duplex pays.
  std::size_t ack_turnaround_bits = 64;
};

/// Stop-and-wait: whole frame retransmitted until its CRC passes.
double stop_and_wait_goodput(double ber, const ArqModelParams& params);

/// Selective repeat at frame granularity with a window large enough to
/// hide the turnaround (optimistic baseline).
double selective_repeat_goodput(double ber, const ArqModelParams& params);

/// Full-duplex instant-NACK: only corrupted blocks are retransmitted,
/// in-frame, with no turnaround. `feedback_ber` models verdict errors:
/// a false-NACK wastes one block, a false-ACK forces a frame-level
/// recovery pass.
double fd_arq_goodput(double ber, double feedback_ber,
                      const ArqModelParams& params);

/// Energy per delivered payload bit, in units of the energy to keep the
/// link active for one bit-time, for each scheme (same conventions).
double stop_and_wait_energy_per_bit(double ber, const ArqModelParams& params);
double fd_arq_energy_per_bit(double ber, double feedback_ber,
                             const ArqModelParams& params);

}  // namespace fdb::core
