#include "core/fd_modem.hpp"

#include <cassert>

namespace fdb::core {

FdModemConfig FdModemConfig::make(std::size_t block_size_bytes,
                                  std::size_t samples_per_chip) {
  FdModemConfig config;
  config.block_size_bytes = block_size_bytes;
  config.data.rates.samples_per_chip = samples_per_chip;
  config.data.rates.asymmetry = config.block_bits();
  return config;
}

FdDataTransmitter::FdDataTransmitter(FdModemConfig config)
    : config_(config), tx_(config.data) {
  assert(config_.consistent());
}

std::vector<std::uint8_t> FdDataTransmitter::modulate(
    std::span<const std::uint8_t> payload) const {
  const auto bits =
      phy::blocks_to_bits(payload, config_.block_size_bytes);
  return tx_.modulate_bits(bits);
}

std::vector<std::uint8_t> FdDataTransmitter::modulate_blocks_raw(
    std::span<const std::uint8_t> payload, std::size_t block_size,
    std::span<const std::size_t> block_indices) const {
  std::vector<std::uint8_t> bits;
  for (const std::size_t b : block_indices) {
    const std::size_t start = b * block_size;
    if (start >= payload.size()) continue;
    const std::size_t n = std::min(block_size, payload.size() - start);
    const auto block_bits =
        phy::blocks_to_bits(payload.subspan(start, n), block_size);
    bits.insert(bits.end(), block_bits.begin(), block_bits.end());
  }
  const auto chips = phy::encode(config_.data.line_code, bits);
  return tx_.chips_to_states(chips);
}

std::size_t FdDataTransmitter::preamble_samples() const {
  return phy::default_preamble_length() *
         config_.data.rates.samples_per_chip;
}

std::size_t FdDataTransmitter::burst_samples(
    std::size_t payload_bytes) const {
  const std::size_t bits =
      phy::block_bits_for_payload(payload_bytes, config_.block_size_bytes);
  return preamble_samples() + bits * config_.data.rates.samples_per_bit();
}

std::size_t FdDataTransmitter::num_blocks(std::size_t payload_bytes) const {
  return (payload_bytes + config_.block_size_bytes - 1) /
         config_.block_size_bytes;
}

FdDataReceiver::FdDataReceiver(FdModemConfig config)
    : config_(config), rx_(config.data) {
  assert(config_.consistent());
}

FdRxResult FdDataReceiver::demodulate(
    std::span<const float> envelope, std::span<const std::uint8_t> own_states,
    std::size_t payload_bytes) const {
  FdRxResult result;

  // Self-interference normalisation: rescale samples taken while this
  // device was reflecting so the data decoder sees one consistent level.
  std::span<const float> stream = envelope;
  if (!own_states.empty()) {
    assert(own_states.size() == envelope.size());
    result.normalized.resize(envelope.size());
    // Burst decode gets the whole capture, so the two-pass batch form
    // applies: no warm-up transient at the head of the frame.
    SelfInterferenceNormalizer::normalize_batch(
        envelope, own_states, std::span<float>(result.normalized));
    stream = result.normalized;
  }

  const std::size_t num_bits =
      phy::block_bits_for_payload(payload_bytes, config_.block_size_bytes);
  auto bits = rx_.demodulate_bits(stream, num_bits, &result.diag);
  if (!bits.has_value()) {
    result.status = Status::kSyncNotFound;
    return result;
  }
  result.blocks =
      phy::decode_blocks(*bits, payload_bytes, config_.block_size_bytes);
  result.status = result.blocks.blocks_failed == 0 ? Status::kOk
                                                   : Status::kCrcMismatch;
  return result;
}

FdFeedbackReceiver::FdFeedbackReceiver(FdModemConfig config)
    : config_(config), decoder_(config.data.rates, config.feedback) {
  assert(config_.consistent());
}

FeedbackDecodeResult FdFeedbackReceiver::decode(
    std::span<const float> envelope, std::span<const std::uint8_t> own_states,
    std::size_t data_start_sample, std::size_t num_bits) const {
  assert(data_start_sample <= envelope.size());
  const auto tail = envelope.subspan(data_start_sample);
  std::span<const std::uint8_t> own_tail;
  if (!own_states.empty()) {
    assert(own_states.size() == envelope.size());
    own_tail = own_states.subspan(data_start_sample);
  }
  return decoder_.decode(tail, own_tail, num_bits);
}

}  // namespace fdb::core
