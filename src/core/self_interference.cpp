#include "core/self_interference.hpp"

#include <cassert>

namespace fdb::core {

SelfInterferenceNormalizer::SelfInterferenceNormalizer(
    NormalizerConfig config)
    : config_(config), alpha_(1.0 / config.ema_samples) {
  assert(config.ema_samples >= 1.0);
}

float SelfInterferenceNormalizer::process(float envelope, bool own_state) {
  const int s = own_state ? 1 : 0;
  if (seen_[s] == 0) {
    mean_[s] = envelope;
  } else {
    mean_[s] += alpha_ * (envelope - mean_[s]);
  }
  ++seen_[s];

  if (s == 0) return envelope;
  const double g = gain();
  return static_cast<float>(envelope * g);
}

double SelfInterferenceNormalizer::gain() const {
  if (seen_[0] < config_.warmup_samples || seen_[1] < config_.warmup_samples ||
      mean_[1] <= 1e-30) {
    return 1.0;
  }
  return mean_[0] / mean_[1];
}

void SelfInterferenceNormalizer::process(
    std::span<const float> envelope, std::span<const std::uint8_t> own_states,
    std::span<float> out) {
  assert(envelope.size() == own_states.size() &&
         envelope.size() == out.size());
  for (std::size_t i = 0; i < envelope.size(); ++i) {
    out[i] = process(envelope[i], own_states[i] != 0);
  }
}

void SelfInterferenceNormalizer::reset() {
  mean_[0] = mean_[1] = 0.0;
  seen_[0] = seen_[1] = 0;
}

double SelfInterferenceNormalizer::normalize_batch(
    std::span<const float> envelope, std::span<const std::uint8_t> own_states,
    std::span<float> out) {
  assert(envelope.size() == own_states.size() &&
         envelope.size() == out.size());
  double sum[2] = {0.0, 0.0};
  std::size_t count[2] = {0, 0};
  for (std::size_t i = 0; i < envelope.size(); ++i) {
    const int s = own_states[i] ? 1 : 0;
    sum[s] += envelope[i];
    ++count[s];
  }
  double gain = 1.0;
  if (count[0] > 0 && count[1] > 0 && sum[1] > 1e-30) {
    // FM0 data is DC-balanced, so both conditional means carry the same
    // data mix; their ratio isolates the own-reflection scale factor.
    gain = (sum[0] / static_cast<double>(count[0])) /
           (sum[1] / static_cast<double>(count[1]));
  }
  for (std::size_t i = 0; i < envelope.size(); ++i) {
    out[i] = own_states[i] ? static_cast<float>(envelope[i] * gain)
                           : envelope[i];
  }
  return gain;
}

}  // namespace fdb::core
