#include "core/frame_schedule.hpp"

#include <cassert>

namespace fdb::core {

FrameSchedule::FrameSchedule(phy::RateConfig rates, ScheduleConfig config)
    : rates_(rates), config_(config) {
  assert(rates.valid());
  assert(config.decode_delay_slots >= 1 &&
         "verdicts cannot be delivered in the slot they are computed");
}

std::size_t FrameSchedule::verdict_slot(std::size_t block) const {
  // Block i occupies slot i on the data stream; its verdict rides
  // decode_delay_slots later on the feedback stream.
  return block + config_.decode_delay_slots;
}

std::size_t FrameSchedule::slot_start_bit(std::size_t slot) const {
  return slot * rates_.asymmetry;
}

std::size_t FrameSchedule::slot_start_sample(std::size_t slot) const {
  return slot_start_bit(slot) * rates_.samples_per_bit();
}

std::size_t FrameSchedule::slots_for_blocks(std::size_t num_blocks) const {
  if (num_blocks == 0) return 0;
  return verdict_slot(num_blocks - 1) + 1;
}

}  // namespace fdb::core
