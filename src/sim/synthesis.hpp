// Shared waveform-synthesis engine. Both Monte-Carlo simulators — the
// two-device LinkSimulator and the N-tag NetworkSimulator — used to
// hand-roll the same receive-chain physics; this layer owns it once:
//
//   ambient carrier -> per-tag antenna-state reflection -> per-link
//   gain -> AWGN -> RC envelope
//
// as batch-first kernels over caller-provided scratch. The simulators
// are thin orchestration shells: they decide *who* reflects *when* and
// with which gains, the synthesizer turns that into the sample streams
// every receiver actually sees.
//
// Memory discipline: all per-trial buffers come from a SynthArena the
// caller owns. The arena is monotonic — allocations are bump-pointer
// carves, reset() rewinds without freeing — so after a warm-up trial
// the synthesis hot path performs zero heap allocation, which is what
// lets one simulator instance stream millions of trials without
// allocator traffic. Trial purity is preserved: the arena holds scratch
// only, never results, and a fresh arena yields bit-identical output.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "channel/backscatter.hpp"
#include "channel/impairments.hpp"
#include "channel/multipath.hpp"
#include "dsp/envelope.hpp"
#include "phy/rate_config.hpp"
#include "util/types.hpp"

namespace fdb::sim {

/// Monotonic bump arena for synthesis scratch. alloc() carves aligned,
/// *uninitialised* spans out of a chunk list; reset() rewinds to empty
/// and — if the previous cycle overflowed into extra chunks — coalesces
/// them into one big chunk while nothing is live. Capacity therefore
/// grows only during warm-up and is stable afterwards (the no-allocation
/// property the synthesis tests pin via capacity_bytes()).
///
/// Spans stay valid until the next reset(): allocation never moves or
/// frees existing chunks mid-cycle.
class SynthArena {
 public:
  SynthArena() = default;
  SynthArena(const SynthArena&) = delete;
  SynthArena& operator=(const SynthArena&) = delete;
  SynthArena(SynthArena&&) = default;
  SynthArena& operator=(SynthArena&&) = default;

  /// Uninitialised span of n objects. T must be trivially destructible
  /// (the arena never runs destructors); callers either fully overwrite
  /// the span or placement-construct into it (std::construct_at).
  template <typename T>
  std::span<T> alloc(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "SynthArena never runs destructors");
    static_assert(alignof(T) <= 64,
                  "SynthArena carves are cache-line aligned; chunk bases "
                  "cannot honor stricter alignment");
    return {reinterpret_cast<T*>(alloc_bytes(n * sizeof(T), alignof(T))), n};
  }

  /// Zero-filled span — for envelope histories whose unwritten regions
  /// must read as silence, matching a freshly value-initialised vector.
  template <typename T>
  std::span<T> alloc_zeroed(std::size_t n) {
    static_assert(std::is_trivial_v<T>);
    auto s = alloc<T>(n);
    std::memset(s.data(), 0, s.size_bytes());
    return s;
  }

  /// Rewinds to empty. All previously returned spans become invalid.
  void reset();

  /// Total bytes owned across chunks. Stable once warm.
  std::size_t capacity_bytes() const;
  /// Aligned bytes carved since the last reset().
  std::size_t used_bytes() const { return used_total_; }

 private:
  std::byte* alloc_bytes(std::size_t bytes, std::size_t align);

  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::byte* base = nullptr;  ///< data.get() rounded up to 64 bytes
    std::size_t size = 0;       ///< usable bytes from base
  };
  static Chunk make_chunk(std::size_t size);
  std::vector<Chunk> chunks_;
  std::size_t active_ = 0;      ///< chunk currently being carved
  std::size_t used_ = 0;        ///< bytes carved from the active chunk
  std::size_t used_total_ = 0;  ///< bytes carved since reset (all chunks)
};

/// Inputs for one full-trial, two-device link synthesis (the
/// LinkSimulator shape): device A drives `states_a` with the data frame,
/// device B drives `states_b` with concurrent feedback, an optional
/// third reflector C (`states_c` non-empty) regenerates co-channel
/// interference. Gains follow the link-sim signal model documented in
/// sim/link_sim.hpp. Pointer members are per-trial stochastic processes
/// owned by the caller; null disables the impairment.
struct LinkSynthSpec {
  std::span<const cf32> ambient;           ///< trial-length carrier
  std::span<const std::uint8_t> states_a;  ///< per-sample antenna states
  std::span<const std::uint8_t> states_b;
  const channel::BackscatterModulator* modulator = nullptr;
  cf32 h_sa{};         ///< ambient -> A (includes tx amplitude)
  cf32 h_sb{};         ///< ambient -> B
  cf32 h_ab{};         ///< A <-> B inter-device coupling
  float self_coupling = 0.0f;  ///< own reflection into own receiver
  channel::CfoRotator* cfo = nullptr;             ///< null = no offset
  channel::MultipathChannel* multipath_a = nullptr;  ///< null = flat
  channel::MultipathChannel* multipath_b = nullptr;
  channel::AwgnChannel* noise_a = nullptr;  ///< required
  channel::AwgnChannel* noise_b = nullptr;  ///< required
  std::span<const std::uint8_t> states_c{};  ///< empty = no interferer
  float interferer_coupling = 0.0f;          ///< C -> A and C -> B field
  cf32 h_sc{};                               ///< ambient -> C
};

/// Arena-backed outputs of synthesize_link. Spans are valid until the
/// arena resets.
struct LinkSynthResult {
  std::span<float> envelope_a;  ///< what A's diode+RC front end sees
  std::span<float> envelope_b;
  /// Pre-reflection incident field at B, for energy accounting (the
  /// harvester taps the antenna before the switch).
  std::span<const cf32> incident_b;
};

/// The shared synthesis engine. Construction captures the timing grid
/// and the RC front-end cutoff (a few times the chip rate, capped below
/// Nyquist); the instance is immutable and safe to share across threads.
class WaveformSynthesizer {
 public:
  WaveformSynthesizer(const phy::RateConfig& rates,
                      double envelope_cutoff_mult);

  double envelope_cutoff_hz() const { return cutoff_hz_; }
  double sample_rate_hz() const { return sample_rate_hz_; }

  /// Fresh RC envelope detector in its quiescent state. Receivers that
  /// persist across slots (network gateways) keep their own copy.
  dsp::EnvelopeDetector make_envelope() const;

  // ---- batch kernels -----------------------------------------------
  // All kernels are allocation-free elementwise passes over caller
  // spans, written to match the scalar per-sample arithmetic the
  // simulators used to inline (same op order => bit-identical results).

  /// out[i] = gain * in[i]
  static void apply_gain(std::span<const cf32> in, cf32 gain,
                         std::span<cf32> out);

  /// out[i] = base[i] + gain * in[i]
  static void sum_with_scaled(std::span<const cf32> base,
                              std::span<const cf32> in, cf32 gain,
                              std::span<cf32> out);

  /// acc[i] += gain * in[i]  (field-level real coupling)
  static void add_scaled(std::span<const cf32> in, float gain,
                         std::span<cf32> acc);

  /// The network-shaped reflection fold: for each sample,
  ///   acc[i] += (state ? c_on : c_off) * carrier[i]
  /// where state = states[state_offset + i], out-of-range => off. c_on
  /// and c_off are the composed ambient->tag->receiver couplings of the
  /// two switch positions; a tag whose frame ended mid-slot keeps
  /// absorbing (off) for the remainder.
  static void add_keyed_reflection(std::span<const cf32> carrier,
                                   std::span<const std::uint8_t> states,
                                   std::size_t state_offset, cf32 c_on,
                                   cf32 c_off, std::span<cf32> acc);

  /// Fused cross-entity slot synthesis for one gateway: for each sample,
  ///   out[i] = (leak + sum_e (masks[e][i] ? c_on[e] : c_off[e]))
  ///            * carrier[i]
  /// masks[e] points at entity e's per-sample antenna states for this
  /// slot (already resolved: the caller zero-pads modulated frames to
  /// whole slots, so a 0 byte means absorb past the burst end). The
  /// coupling coefficients are summed FIRST — one branch-free select+add
  /// pass per entity over `coeff_scratch` — and the carrier is
  /// multiplied in once, instead of once per entity as the per-link
  /// add_keyed_reflection fold does. The two orderings are numerically
  /// different at the ulp level (complex multiplication does not
  /// distribute bit-exactly over float sums) — a sanctioned departure
  /// from the historical per-link receive mix. The network golden suite
  /// pins decode-verdict counts and energy tallies, none of which moved
  /// when this kernel replaced the per-link fold.
  /// `coeff_scratch` must hold at least carrier.size() samples and may
  /// alias nothing else; out may alias carrier.
  static void synthesize_slot_gateway(std::span<const cf32> carrier,
                                      cf32 leak,
                                      std::span<const std::uint8_t* const>
                                          masks,
                                      std::span<const cf32> c_on,
                                      std::span<const cf32> c_off,
                                      std::span<cf32> coeff_scratch,
                                      std::span<cf32> out);

  /// Per-sample scalar reference of the same fold — the determinism
  /// reference tests/dsp/batch_equivalence pins the batched kernel
  /// against (this TU is compiled with -ffp-contract=off so both paths
  /// round identically on any build ISA).
  static void synthesize_slot_gateway_reference(
      std::span<const cf32> carrier, cf32 leak,
      std::span<const std::uint8_t* const> masks, std::span<const cf32> c_on,
      std::span<const cf32> c_off, std::span<cf32> out);

  // ---- orchestration -----------------------------------------------

  /// Runs the full two-device link chain over arena scratch and returns
  /// the envelope streams both receivers decode from. Batch passes
  /// mirror the historical per-sample loop op-for-op, so results are
  /// bit-identical to the pre-refactor simulator.
  LinkSynthResult synthesize_link(const LinkSynthSpec& spec,
                                  SynthArena& arena) const;

 private:
  double sample_rate_hz_;
  double cutoff_hz_;
};

}  // namespace fdb::sim
