#include "sim/scenarios.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace fdb::sim {
namespace {

/// Places `n` tags evenly on a circle around `center`.
std::vector<NetworkTagConfig> ring(channel::Vec2 center, double radius_m,
                                   std::size_t n, double rho) {
  std::vector<NetworkTagConfig> tags(n);
  for (std::size_t k = 0; k < n; ++k) {
    const double angle =
        2.0 * std::numbers::pi * static_cast<double>(k) /
        static_cast<double>(n);
    tags[k].position = {center.x + radius_m * std::cos(angle),
                        center.y + radius_m * std::sin(angle)};
    tags[k].reflection_rho = rho;
  }
  return tags;
}

/// Places `n` tags evenly on the segment from `from` to `to` (both ends
/// inset by half a step so no tag sits on top of a gateway).
std::vector<NetworkTagConfig> line(channel::Vec2 from, channel::Vec2 to,
                                   std::size_t n, double rho) {
  std::vector<NetworkTagConfig> tags(n);
  for (std::size_t k = 0; k < n; ++k) {
    const double t = (static_cast<double>(k) + 0.5) / static_cast<double>(n);
    tags[k].position = {from.x + t * (to.x - from.x),
                        from.y + t * (to.y - from.y)};
    tags[k].reflection_rho = rho;
  }
  return tags;
}

NetworkSimConfig base_config(std::size_t num_tags, std::uint64_t seed) {
  NetworkSimConfig config;
  config.seed = seed;
  config.tags.resize(num_tags);
  return config;
}

}  // namespace

const std::vector<std::string>& scenario_names() {
  static const std::vector<std::string> kNames = {
      "dense-deployment", "near-far",           "energy-starved",
      "fading-sweep",     "multi-gateway-dense", "gateway-handoff-line"};
  return kNames;
}

NetworkScenario make_scenario(const std::string& name, std::size_t num_tags,
                              std::uint64_t seed) {
  const std::size_t n = num_tags == 0 ? 8 : num_tags;
  NetworkScenario scenario;
  scenario.name = name;
  NetworkSimConfig config = base_config(n, seed);

  if (name == "dense-deployment") {
    scenario.summary =
        "contention-dominated: " + std::to_string(n) +
        " saturated tags on a 1.5 m ring around the receiver";
    config.ambient_position = {0.0, 0.0};
    config.receiver_position = {6.0, 0.0};
    config.tags = ring(config.receiver_position, 1.5, n, 0.4);
  } else if (name == "near-far") {
    scenario.summary =
        "power asymmetry: alternating 0.8 m / 3.5 m tags, capture effect";
    config.ambient_position = {0.0, 0.0};
    config.receiver_position = {5.0, 0.0};
    config.tags = ring(config.receiver_position, 0.8, n, 0.4);
    for (std::size_t k = 1; k < n; k += 2) {
      // Push every other tag out to 3.5 m along the same bearing.
      const double angle = 2.0 * std::numbers::pi * static_cast<double>(k) /
                           static_cast<double>(n);
      config.tags[k].position = {
          config.receiver_position.x + 3.5 * std::cos(angle),
          config.receiver_position.y + 3.5 * std::sin(angle)};
    }
  } else if (name == "energy-starved") {
    scenario.summary =
        "harvesting-limited: illuminator at the edge of rectifier range,"
        " tiny storage, transmissions energy-gated";
    config.ambient_position = {0.0, 0.0};
    config.receiver_position = {8.0, 0.0};
    config.tags = ring(config.receiver_position, 1.2, n, 0.4);
    config.energy_gating = true;
    // A store worth only a handful of frames: gating and brownouts are
    // the point of this scenario.
    config.storage = {.capacity_j = 2.0e-8,
                      .initial_j = 8.0e-9,
                      .leakage_w = 1.0e-8};
  } else if (name == "fading-sweep") {
    scenario.summary =
        "Rayleigh block fading + 4 dB lognormal shadowing on every link";
    config.ambient_position = {0.0, 0.0};
    config.receiver_position = {6.0, 0.0};
    config.tags = ring(config.receiver_position, 2.0, n, 0.4);
    config.fading = "rayleigh";
    config.pathloss.shadowing_sigma_db = 4.0;
  } else if (name == "multi-gateway-dense") {
    scenario.summary =
        "receive diversity: tag ring between two gateways under weak"
        " illumination + Rayleigh/shadowing; any-gateway combining"
        " rescues frames one receiver loses to fades";
    config.ambient_position = {0.0, 0.0};
    // The ring is centred between the gateways (radius < the 2.5 m
    // centre->gateway offset, so no tag sits on a gateway). Weak
    // illumination puts clean-frame decodes near the fading margin:
    // each tag is solid at one gateway and marginal at the other, and
    // the independent per-link fades/shadowing draws are what the
    // second receive chain rescues.
    config.receiver_position = {3.5, 0.0};
    config.extra_gateways = {{8.5, 0.0}};
    config.combining = GatewayCombining::kAnyGateway;
    config.tags = ring({6.0, 0.0}, 2.0, n, 0.4);
    config.tx_power_w = 1e-4;
    config.fading = "rayleigh";
    config.pathloss.shadowing_sigma_db = 3.0;
    config.notify_slots_per_m = 0.25;
  } else if (name == "gateway-handoff-line") {
    scenario.summary =
        "corridor of tags between two gateways, best-gateway selection:"
        " the serving gateway hands off along the line";
    config.ambient_position = {6.0, 4.0};  // overhead illuminator
    config.receiver_position = {2.0, 0.0};
    config.extra_gateways = {{10.0, 0.0}};
    config.combining = GatewayCombining::kBestGateway;
    config.tags = line({2.0, 0.0}, {10.0, 0.0}, n, 0.4);
    config.notify_slots_per_m = 0.25;
  } else {
    throw std::invalid_argument("unknown network scenario: " + name);
  }

  scenario.config = std::move(config);
  return scenario;
}

}  // namespace fdb::sim
