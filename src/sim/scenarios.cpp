#include "sim/scenarios.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>
#include <utility>

namespace fdb::sim {
namespace {

/// Places `n` tags evenly on a circle around `center`.
std::vector<NetworkTagConfig> ring(channel::Vec2 center, double radius_m,
                                   std::size_t n, double rho) {
  std::vector<NetworkTagConfig> tags(n);
  for (std::size_t k = 0; k < n; ++k) {
    const double angle =
        2.0 * std::numbers::pi * static_cast<double>(k) /
        static_cast<double>(n);
    tags[k].position = {center.x + radius_m * std::cos(angle),
                        center.y + radius_m * std::sin(angle)};
    tags[k].reflection_rho = rho;
  }
  return tags;
}

/// Places `n` tags evenly on the segment from `from` to `to` (both ends
/// inset by half a step so no tag sits on top of a gateway).
std::vector<NetworkTagConfig> line(channel::Vec2 from, channel::Vec2 to,
                                   std::size_t n, double rho) {
  std::vector<NetworkTagConfig> tags(n);
  for (std::size_t k = 0; k < n; ++k) {
    const double t = (static_cast<double>(k) + 0.5) / static_cast<double>(n);
    tags[k].position = {from.x + t * (to.x - from.x),
                        from.y + t * (to.y - from.y)};
    tags[k].reflection_rho = rho;
  }
  return tags;
}

NetworkSimConfig base_config(std::size_t num_tags, std::uint64_t seed) {
  NetworkSimConfig config;
  config.seed = seed;
  config.tags.resize(num_tags);
  return config;
}

/// Places `n` tags on a near-square grid filling the rectangle
/// [x0, x0+w] x [y0, y0+h], row-major with half-cell insets — the
/// closed-form warehouse floor layout (no RNG, per the scenario
/// purity contract).
std::vector<NetworkTagConfig> grid(double x0, double y0, double w, double h,
                                   std::size_t n, double rho) {
  std::vector<NetworkTagConfig> tags(n);
  const auto cols = static_cast<std::size_t>(std::ceil(
      std::sqrt(static_cast<double>(n) * w / h)));
  const std::size_t rows = (n + cols - 1) / cols;
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t c = k % cols;
    const std::size_t r = k / cols;
    tags[k].position = {
        x0 + (static_cast<double>(c) + 0.5) * w / static_cast<double>(cols),
        y0 + (static_cast<double>(r) + 0.5) * h / static_cast<double>(rows)};
    tags[k].reflection_rho = rho;
  }
  return tags;
}

/// Distributes `n` tags along a list of street segments proportionally
/// to length, each segment populated by the `line` helper.
std::vector<NetworkTagConfig> streets(
    const std::vector<std::pair<channel::Vec2, channel::Vec2>>& segments,
    std::size_t n, double rho) {
  double total_len = 0.0;
  for (const auto& [a, b] : segments) total_len += channel::distance_m(a, b);
  std::vector<NetworkTagConfig> tags;
  tags.reserve(n);
  std::size_t placed = 0;
  for (std::size_t s = 0; s < segments.size(); ++s) {
    const auto& [a, b] = segments[s];
    // Last segment takes the rounding remainder so exactly n tags land.
    const std::size_t want =
        s + 1 == segments.size()
            ? n - placed
            : static_cast<std::size_t>(std::round(
                  static_cast<double>(n) * channel::distance_m(a, b) /
                  total_len));
    const auto seg = line(a, b, want, rho);
    tags.insert(tags.end(), seg.begin(), seg.end());
    placed += want;
    if (placed >= n) break;
  }
  tags.resize(n);
  return tags;
}

}  // namespace

const std::vector<std::string>& scenario_names() {
  static const std::vector<std::string> kNames = {
      "dense-deployment", "near-far",           "energy-starved",
      "fading-sweep",     "multi-gateway-dense", "gateway-handoff-line",
      "warehouse-10k",    "city-block"};
  return kNames;
}

const std::vector<std::string>& mesh_scenario_names() {
  static const std::vector<std::string> kNames = {"corridor-multihop",
                                                  "warehouse-mesh"};
  return kNames;
}

NetworkScenario make_scenario(const std::string& name, std::size_t num_tags,
                              std::uint64_t seed) {
  const std::size_t n = num_tags == 0 ? 8 : num_tags;
  NetworkScenario scenario;
  scenario.name = name;
  NetworkSimConfig config = base_config(n, seed);

  if (name == "dense-deployment") {
    scenario.summary =
        "contention-dominated: " + std::to_string(n) +
        " saturated tags on a 1.5 m ring around the receiver";
    config.ambient_position = {0.0, 0.0};
    config.receiver_position = {6.0, 0.0};
    config.tags = ring(config.receiver_position, 1.5, n, 0.4);
  } else if (name == "near-far") {
    scenario.summary =
        "power asymmetry: alternating 0.8 m / 3.5 m tags, capture effect";
    config.ambient_position = {0.0, 0.0};
    config.receiver_position = {5.0, 0.0};
    config.tags = ring(config.receiver_position, 0.8, n, 0.4);
    for (std::size_t k = 1; k < n; k += 2) {
      // Push every other tag out to 3.5 m along the same bearing.
      const double angle = 2.0 * std::numbers::pi * static_cast<double>(k) /
                           static_cast<double>(n);
      config.tags[k].position = {
          config.receiver_position.x + 3.5 * std::cos(angle),
          config.receiver_position.y + 3.5 * std::sin(angle)};
    }
  } else if (name == "energy-starved") {
    scenario.summary =
        "harvesting-limited: illuminator at the edge of rectifier range,"
        " tiny storage, transmissions energy-gated";
    config.ambient_position = {0.0, 0.0};
    config.receiver_position = {8.0, 0.0};
    config.tags = ring(config.receiver_position, 1.2, n, 0.4);
    config.energy_gating = true;
    // A store worth only a handful of frames: gating and brownouts are
    // the point of this scenario.
    config.storage = {.capacity_j = 2.0e-8,
                      .initial_j = 8.0e-9,
                      .leakage_w = 1.0e-8};
  } else if (name == "fading-sweep") {
    scenario.summary =
        "Rayleigh block fading + 4 dB lognormal shadowing on every link";
    config.ambient_position = {0.0, 0.0};
    config.receiver_position = {6.0, 0.0};
    config.tags = ring(config.receiver_position, 2.0, n, 0.4);
    config.fading = "rayleigh";
    config.pathloss.shadowing_sigma_db = 4.0;
  } else if (name == "multi-gateway-dense") {
    scenario.summary =
        "receive diversity: tag ring between two gateways under weak"
        " illumination + Rayleigh/shadowing; any-gateway combining"
        " rescues frames one receiver loses to fades";
    config.ambient_position = {0.0, 0.0};
    // The ring is centred between the gateways (radius < the 2.5 m
    // centre->gateway offset, so no tag sits on a gateway). Weak
    // illumination puts clean-frame decodes near the fading margin:
    // each tag is solid at one gateway and marginal at the other, and
    // the independent per-link fades/shadowing draws are what the
    // second receive chain rescues.
    config.receiver_position = {3.5, 0.0};
    config.extra_gateways = {{8.5, 0.0}};
    config.combining = GatewayCombining::kAnyGateway;
    config.tags = ring({6.0, 0.0}, 2.0, n, 0.4);
    config.tx_power_w = 1e-4;
    config.fading = "rayleigh";
    config.pathloss.shadowing_sigma_db = 3.0;
    config.notify_slots_per_m = 0.25;
  } else if (name == "gateway-handoff-line") {
    scenario.summary =
        "corridor of tags between two gateways, best-gateway selection:"
        " the serving gateway hands off along the line";
    config.ambient_position = {6.0, 4.0};  // overhead illuminator
    config.receiver_position = {2.0, 0.0};
    config.extra_gateways = {{10.0, 0.0}};
    config.combining = GatewayCombining::kBestGateway;
    config.tags = line({2.0, 0.0}, {10.0, 0.0}, n, 0.4);
    config.notify_slots_per_m = 0.25;
  } else if (name == "warehouse-10k") {
    scenario.summary =
        "fleet scale: tag grid across a 120x50 m hall, 4 gateways"
        " clustered in the left half, distant-tower illumination; sized"
        " for the hybrid engine (pass num_tags up to 10000)";
    // A far-away broadcast tower (the paper's ambient regime)
    // illuminates the whole hall near-uniformly, so decode range is a
    // clean function of tag->gateway distance — which is what makes a
    // geometric cull radius consistent with the link budget. At this
    // noise floor the static margin crosses +6 dB (clear-deliver) near
    // 10 m of a gateway and -5 dB (clear-fail) near 28 m, so beyond the
    // 30 m cull radius every link is statically clear-fail: culled tags
    // are tags the waveform path also loses, and the right half of the
    // hall is a genuine dead zone the culling index removes for free.
    config.ambient_position = {-300.0, 25.0};
    config.tx_power_w = 1000.0;  // tower EIRP
    config.receiver_position = {20.0, 12.5};
    config.extra_gateways = {{40.0, 12.5}, {20.0, 37.5}, {40.0, 37.5}};
    config.combining = GatewayCombining::kAnyGateway;
    config.tags = grid(0.0, 0.0, 120.0, 50.0, n, 0.4);
    config.noise_power_override_w = 2.5e-13;
    config.payload_bytes = 16;  // short frames keep slot occupancy low
    config.notify_slots_per_m = 0.1;
    // Wide contention windows: at 100 tags a handful of frames start
    // per 96-slot trial (mostly clear), at 10k the scene saturates into
    // the collision storm the notification MAC is built for.
    config.backoff_min_slots = 4096;
    config.backoff_max_exponent = 6;
    config.slots_per_trial = 96;
    config.fleet.cull_radius_m = 30.0;
    config.fleet.grid_cell_m = 6.0;
  } else if (name == "city-block") {
    scenario.summary =
        "urban canyon: tags along a 100x100 m street grid, 5 corner/"
        "centre gateways, Rayleigh + shadowing; dead zones between"
        " gateways exercise the culling index";
    config.ambient_position = {-500.0, 50.0};
    config.tx_power_w = 2000.0;
    config.receiver_position = {50.0, 50.0};
    config.extra_gateways = {{50.0, 0.0}, {0.0, 50.0}, {100.0, 50.0},
                             {50.0, 100.0}};
    config.combining = GatewayCombining::kAnyGateway;
    config.tags = streets({{{0.0, 0.0}, {100.0, 0.0}},
                           {{0.0, 50.0}, {100.0, 50.0}},
                           {{0.0, 100.0}, {100.0, 100.0}},
                           {{0.0, 0.0}, {0.0, 100.0}},
                           {{50.0, 0.0}, {50.0, 100.0}},
                           {{100.0, 0.0}, {100.0, 100.0}}},
                          n, 0.4);
    // Noise floor chosen so street tags near a gateway clear +6 dB on
    // an average fade while mid-block tags live in the contested band —
    // fading is what the hybrid escalation path earns its keep on here.
    config.noise_power_override_w = 4.0e-13;
    config.payload_bytes = 16;
    config.fading = "rayleigh";
    config.pathloss.shadowing_sigma_db = 3.0;
    config.notify_slots_per_m = 0.1;
    config.backoff_min_slots = 2048;
    config.backoff_max_exponent = 6;
    config.slots_per_trial = 96;
    // Cull generously past the static clear-fail edge: Rayleigh +
    // shadowing upswings must not make an out-of-range link contested.
    config.fleet.cull_radius_m = 35.0;
    config.fleet.grid_cell_m = 8.0;
  } else if (name == "corridor-multihop") {
    scenario.summary =
        "multi-hop corridor: one gateway at the end of a 50 m tag line"
        " under distant-tower illumination; tags past the 30 m cull"
        " radius reach it only by relaying through nearer tags"
        " (scheduled MAC, 2-3 hops)";
    // Same link budget as warehouse-10k: near-uniform tower
    // illumination, clear-deliver inside ~10 m of the gateway,
    // statically clear-fail past ~28 m. The line extends well beyond
    // the 30 m cull radius, so without relaying the far tags deliver
    // nothing; the 14 m hop range spans the default 6 m tag spacing
    // with slack for other num_tags choices.
    config.ambient_position = {-300.0, 0.0};
    config.tx_power_w = 1000.0;
    config.receiver_position = {0.0, 0.0};
    config.tags = line({2.0, 0.0}, {50.0, 0.0}, n, 0.4);
    config.noise_power_override_w = 2.5e-13;
    config.payload_bytes = 16;
    config.notify_slots_per_m = 0.1;
    // Several slotframes per trial: an out-of-range frame needs one
    // owned cell per hop, possibly a slotframe apart each.
    config.slots_per_trial = 160;
    config.mac_kind = mac::MacKind::kScheduled;
    config.fleet.fidelity = FidelityMode::kHybrid;
    config.fleet.cull_radius_m = 30.0;
    config.fleet.grid_cell_m = 6.0;
    config.relay.enabled = true;
    config.relay.range_m = 14.0;
  } else if (name == "warehouse-mesh") {
    scenario.summary =
        "mesh hall: tag grid across a 100x24 m hall with both gateways"
        " against the left wall; the right half is a dead zone that"
        " drains through scheduled tag-to-tag relays (pass num_tags >="
        " ~24 so grid neighbours land inside hop range)";
    config.ambient_position = {-300.0, 12.0};
    config.tx_power_w = 1000.0;
    config.receiver_position = {12.0, 6.0};
    config.extra_gateways = {{12.0, 18.0}};
    config.combining = GatewayCombining::kAnyGateway;
    config.tags = grid(0.0, 0.0, 100.0, 24.0, n, 0.4);
    config.noise_power_override_w = 2.5e-13;
    config.payload_bytes = 16;
    config.notify_slots_per_m = 0.1;
    // The slotframe grows with num_tags (one dedicated cell each), and
    // a 3-hop traversal can span three slotframes: budget generously.
    config.slots_per_trial = 512;
    config.mac_kind = mac::MacKind::kScheduled;
    config.fleet.fidelity = FidelityMode::kHybrid;
    config.fleet.cull_radius_m = 30.0;
    config.fleet.grid_cell_m = 8.0;
    config.relay.enabled = true;
    // 14 m reaches the diagonal grid neighbours (10 m pitch, 8 m row
    // gap -> 12.8 m), so every relayed tag has at least two candidate
    // parents and ETX re-parenting has somewhere to go.
    config.relay.range_m = 14.0;
  } else {
    std::string valid;
    for (const auto& s : scenario_names()) valid += s + ", ";
    for (const auto& s : mesh_scenario_names()) valid += s + ", ";
    valid.resize(valid.size() - 2);
    throw std::invalid_argument("unknown network scenario \"" + name +
                                "\" (valid: " + valid + ")");
  }

  scenario.config = std::move(config);
  return scenario;
}

}  // namespace fdb::sim
