// Named network scenarios: curated NetworkSimConfig presets covering
// the deployment regimes the paper's claims live or die in. Each
// scenario is a pure function of (name, num_tags, seed) — geometry is
// generated from closed-form ring/line layouts, never from an RNG — so
// two processes asking for the same scenario always simulate the same
// network.
//
//   dense-deployment  N tags packed on a tight ring around the
//                     receiver: contention-dominated, where instant
//                     collision notification should beat ACK timeouts.
//   near-far          alternating close/far tags: capture effect and
//                     fairness under power asymmetry.
//   energy-starved    the illuminator is barely in harvesting range and
//                     storage is tiny: transmissions gate on energy and
//                     tags brown out.
//   fading-sweep      Rayleigh block fading + lognormal shadowing on
//                     every link: clean frames are still lost to fades,
//                     exercising the reciprocal pair-keyed shadowing.
//   multi-gateway-dense  a tag ring centred between two gateways under
//                     Rayleigh + shadowing, any-gateway combining: the
//                     receive-diversity scenario behind e12.
//   gateway-handoff-line tags along a corridor between two gateways,
//                     best-gateway selection: the serving gateway hands
//                     off with position.
//   warehouse-10k     tag grid across a 120x50 m hall under a distant
//                     broadcast tower, 4 gateways clustered in the left
//                     half, finite cull radius: the fleet-scale
//                     scenario behind e13 (pass num_tags up to 10000).
//   city-block        tags along a 100x100 m street grid with corner/
//                     centre gateways, Rayleigh + shadowing: urban dead
//                     zones exercise the culling index.
//
// Mesh scenarios (separate registry — they pin the scheduled MAC and
// enable relaying, so benches that sweep MAC kinds must not iterate
// them):
//
//   corridor-multihop one gateway at the end of a 50 m tag line; tags
//                     beyond the cull radius deliver only via 2-3
//                     scheduled relay hops.
//   warehouse-mesh    tag grid across a 100x24 m hall, both gateways on
//                     the left wall: the dead right half drains through
//                     the relay fabric (best with num_tags >= ~24).
#pragma once

#include <string>
#include <vector>

#include "sim/network_sim.hpp"

namespace fdb::sim {

struct NetworkScenario {
  std::string name;
  std::string summary;  // one-line description for reports/--help
  NetworkSimConfig config;
};

/// Registry order (stable; benches iterate this). Contains only the
/// contention scenarios — every entry accepts any MacKind.
const std::vector<std::string>& scenario_names();

/// The relay-enabled mesh scenarios (stable order). Kept out of
/// scenario_names(): they require the scheduled MAC, so MAC-sweeping
/// benches cannot iterate them.
const std::vector<std::string>& mesh_scenario_names();

/// Builds a named scenario. `num_tags` == 0 keeps the scenario default
/// (8); `seed` keys all trial randomness. Throws std::invalid_argument
/// for unknown names.
NetworkScenario make_scenario(const std::string& name,
                              std::size_t num_tags = 0,
                              std::uint64_t seed = 1);

}  // namespace fdb::sim
