// Deterministic fault injection for the network/fleet engine: the
// breakage half of the "simulate a day of a million-tag deployment and
// tell me where it breaks" north star. Real ambient-backscatter
// deployments run on scavenged infrastructure — gateways lose power,
// the ambient illuminator sags, licensed users key up in-band, and tag
// hardware glitches — so degradation must be a first-class,
// reproducible input, not an afterthought.
//
// The design splits policy from realisation:
//
//   FaultConfig   — the experiment-level dial: a master `intensity` in
//                   [0, 1] scaling generated fault load, per-class
//                   shape knobs (rates at intensity 1, mean durations,
//                   magnitudes), plus an explicit scripted event list
//                   applied to every trial.
//   FaultInjector — construction-time compilation of the config
//                   against one deployment (gateway/tag counts, slot
//                   grid, noise floor).
//   FaultPlan     — the per-trial realisation: dense slot-domain
//                   tables (per-gateway receive attenuation, ambient
//                   carrier scale, burst-interferer envelope) plus
//                   sparse per-tag hardware faults, built by
//                   FaultInjector::plan(trial).
//
// Determinism contract: every generated event derives from
// Rng::substream(sim_seed ^ seed_salt, trial) — a side substream, so
// enabling faults never perturbs the main trial randomness (channel
// draws, noise, MAC backoffs stay bit-identical to a fault-free run),
// and plan(trial) is pure: the same (config, deployment, trial) yields
// the same schedule on any thread at any --jobs.
//
// Intensity coupling: the generator always draws the full
// intensity-1.0 event set and then *thins* it — event e survives iff
// its private uniform draw is below `intensity`. Fault sets are
// therefore nested across intensities (every fault present at 0.1 is
// still present at 0.4 on the same trial), which is what makes
// delivery degrade monotonically with intensity under common random
// numbers instead of bouncing between unrelated fault realisations.
//
// Everything is expressed in the slot domain so the waveform
// synthesizer and the analytic FleetResolver consume the *same*
// schedule: the synthesis path scales/augments sample streams, the
// analytic path scales envelope swings and interference sums by the
// identical per-slot factors, and cross-fidelity agreement survives
// fault injection (tests/sim/cross_fidelity_test.cpp pins it).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "util/rng.hpp"
#include "util/types.hpp"

namespace fdb::sim {

/// Taxonomy of injectable faults. Slot-granular windows throughout.
enum class FaultClass : std::uint8_t {
  kGatewayOutage,    ///< a gateway's receive stream dies or attenuates
  kCarrierSag,       ///< the ambient illuminator's amplitude droops
  kBurstInterferer,  ///< an in-band tone burst lands at one gateway
  kTagStuck,         ///< a tag's reflection switch jams in one state
  kTagDrift,         ///< a tag's oscillator drifts off nominal (ppm)
};
constexpr std::size_t kNumFaultClasses = 5;

/// Stable lowercase name for reports and error messages.
const char* fault_class_name(FaultClass c);

/// One scripted fault event, applied to every trial. `magnitude` is
/// class-specific:
///   kGatewayOutage   residual amplitude gain in [0, 1] (0 = dead)
///   kCarrierSag      residual carrier amplitude scale in [0, 1)
///   kBurstInterferer tone envelope amplitude in units of the receive
///                    noise sigma (>= 0)
///   kTagStuck        stuck switch position: 0 = absorb, 1 = reflect
///   kTagDrift        oscillator offset in ppm (|ppm| <= 1e5)
struct FaultEvent {
  FaultClass kind = FaultClass::kGatewayOutage;
  std::int64_t start_slot = 0;
  std::int64_t duration_slots = 1;
  /// Gateway index (outage / interferer) or tag index (tag faults);
  /// ignored for carrier sag (the illuminator is global).
  std::uint32_t target = 0;
  double magnitude = 0.0;
};

/// Fault-injection policy, carried inside NetworkSimConfig. The
/// defaults describe a plausible unreliable deployment at intensity
/// 1.0; `intensity = 0` with no scripted events disables injection
/// entirely (and is bit-identical to a build without this subsystem).
struct FaultConfig {
  /// Master dial in [0, 1]: the survival probability of each generated
  /// intensity-1.0 event (see the thinning note in the file header).
  double intensity = 0.0;
  /// Salt XORed into the simulation seed for the fault substream, so
  /// fault randomness never collides with trial randomness.
  std::uint64_t seed_salt = 0xfa0175eedULL;

  // --- generated gateway outages (per gateway) -----------------------
  double gateway_outages_per_kslot = 6.0;  ///< events per 1000 slots
  double gateway_outage_mean_slots = 24.0;  ///< exponential mean length
  double gateway_outage_atten = 0.0;  ///< residual amplitude gain [0,1]

  // --- generated ambient-carrier sags (global) -----------------------
  double carrier_sags_per_kslot = 8.0;
  double carrier_sag_mean_slots = 12.0;
  /// Sag scale is drawn uniformly in [floor, 1).
  double carrier_sag_floor = 0.3;

  // --- generated burst interferers (per gateway) ---------------------
  double interferer_bursts_per_kslot = 10.0;
  double interferer_burst_mean_slots = 6.0;
  /// Burst tone envelope amplitude, in units of the per-dimension
  /// receive noise sigma (so the knob is scenario-independent).
  double interferer_env_sigma = 40.0;

  // --- generated per-tag hardware faults (at most one per tag/trial) -
  /// Fraction of tags faulted per trial at intensity 1.0.
  double tag_fault_fraction = 0.15;
  /// Of the faulted tags, this share jams stuck; the rest drift.
  double tag_stuck_share = 0.5;
  /// Drift magnitude is drawn uniformly in (0, max]; sign alternates.
  double tag_drift_max_ppm = 400.0;

  /// Scripted events, applied verbatim to every trial on top of the
  /// generated load (they do not thin with intensity). Overlapping
  /// windows are legal — the plan normalizes them (outage/sag windows
  /// combine by worst-case scale, interferer bursts superpose, the
  /// earliest tag fault wins per tag).
  std::vector<FaultEvent> events;

  /// True when any injection can happen (intensity > 0 or scripted
  /// events exist). The simulator skips every fault code path — and
  /// stays bit-identical to the pre-fault engine — when false.
  bool enabled() const { return intensity > 0.0 || !events.empty(); }

  /// Rejects out-of-range knobs and malformed scripted events
  /// (negative/zero durations, negative start slots, magnitudes outside
  /// the class range, intensity outside [0, 1]). Mirrors
  /// NetworkSimConfig::validate(): throws std::invalid_argument naming
  /// the offending field.
  void validate() const;
};

/// One tag's hardware fault this trial (at most one per tag).
struct TagFault {
  std::uint32_t tag = 0;
  std::int64_t start_slot = 0;
  std::int64_t end_slot = 0;  ///< exclusive
  bool stuck = false;         ///< false = oscillator drift
  std::uint8_t stuck_state = 0;
  double drift_ppm = 0.0;
};

/// The per-trial fault realisation in the slot domain. Dense tables
/// are only materialised when at least one event of that class
/// survived thinning, so a fault-free trial costs three empty vectors.
class FaultPlan {
 public:
  /// True when this trial carries at least one fault of any class.
  bool any() const { return any_; }

  // --- per-slot scale queries (1.0 = healthy) ------------------------
  /// Amplitude gain of gateway g's receive stream in `slot`.
  float gateway_atten(std::size_t g, std::size_t slot) const {
    return gw_atten_.empty() ? 1.0f : gw_atten_[g * slots_ + slot];
  }
  /// Whether gateway g can receive (and notify) at all in `slot`.
  bool gateway_alive(std::size_t g, std::size_t slot) const {
    return gateway_atten(g, slot) > 0.0f;
  }
  /// Ambient carrier amplitude scale in `slot`.
  float carrier_scale(std::size_t slot) const {
    return carrier_scale_.empty() ? 1.0f : carrier_scale_[slot];
  }
  /// Combined backscatter-signal amplitude scale at gateway g: the
  /// carrier sag and the gateway attenuation both multiply every
  /// ambient-derived component of the receive stream.
  float signal_scale(std::size_t g, std::size_t slot) const {
    return gateway_atten(g, slot) * carrier_scale(slot);
  }
  /// Worst-case envelope perturbation of the active burst interferers
  /// at gateway g in `slot` (sum of tone amplitudes, pre-attenuation).
  float interferer_env(std::size_t g, std::size_t slot) const {
    return interf_env_.empty() ? 0.0f : interf_env_[g * slots_ + slot];
  }

  // --- per-frame window reductions (slots [lo, hi)) ------------------
  float min_signal_scale(std::size_t g, std::size_t lo, std::size_t hi) const;
  float max_signal_scale(std::size_t g, std::size_t lo, std::size_t hi) const;
  /// Max of interferer_env over the window (pre-attenuation).
  float max_interferer_env(std::size_t g, std::size_t lo,
                           std::size_t hi) const;
  bool window_has_outage(std::size_t g, std::size_t lo, std::size_t hi) const;
  bool window_has_sag(std::size_t lo, std::size_t hi) const;
  bool window_has_interference(std::size_t g, std::size_t lo,
                               std::size_t hi) const;

  // --- waveform-path injection ---------------------------------------
  /// Adds every burst-interferer tone active at (g, slot) into `acc`
  /// (slot_samples samples whose first sample has absolute in-trial
  /// index slot * slot_samples). Tone phase is keyed to the absolute
  /// sample index, so any chunking/escalation order reproduces the
  /// same samples.
  void add_interferers(std::size_t g, std::size_t slot,
                       std::span<cf32> acc) const;

  // --- per-tag hardware faults ---------------------------------------
  /// The tag's fault this trial, or nullptr. Pointer valid while the
  /// plan lives.
  const TagFault* tag_fault(std::uint32_t tag) const;
  /// Whether `tag` is stuck during any slot of [lo, hi).
  bool stuck_in_window(std::uint32_t tag, std::int64_t lo,
                       std::int64_t hi) const;
  /// Accumulated clock-skew of a drifting tag at `frame_start_slot`,
  /// in samples (0 when healthy or stuck): |ppm| * 1e-6 * elapsed
  /// samples since the fault began, the constant start-phase error the
  /// receiver's sync search absorbs until the frame overruns its
  /// decode window. Sign is folded into the magnitude (a late or an
  /// early clock both shift the burst inside its slot window).
  std::size_t drift_shift_samples(std::uint32_t tag,
                                  std::int64_t frame_start_slot) const;

  std::size_t slots() const { return slots_; }

 private:
  friend class FaultInjector;

  struct Tone {
    std::uint32_t gateway = 0;
    std::int64_t start_slot = 0;
    std::int64_t end_slot = 0;
    double amp = 0.0;    ///< envelope amplitude (absolute units)
    double omega = 0.0;  ///< angular frequency, rad/sample
    double phase = 0.0;
  };

  bool any_ = false;
  std::size_t slots_ = 0;
  std::size_t slot_samples_ = 0;
  std::vector<float> gw_atten_;       ///< [g * slots + slot], empty = 1
  std::vector<float> carrier_scale_;  ///< [slot], empty = 1
  std::vector<float> interf_env_;     ///< [g * slots + slot], empty = 0
  std::vector<Tone> tones_;
  std::vector<TagFault> tag_faults_;  ///< sorted by tag, at most one each
};

/// Compiles a FaultConfig against one deployment and realises per-trial
/// FaultPlans. Immutable after construction; plan() is const and
/// thread-safe (the trial-purity contract of NetworkSimulator extends
/// through it).
class FaultInjector {
 public:
  /// Disabled injector: enabled() is false, plan() returns empty plans.
  FaultInjector() = default;

  /// `noise_sigma` is the per-dimension receive noise standard
  /// deviation (converts interferer_env_sigma to absolute amplitude);
  /// `samples_per_chip` anchors burst-tone frequencies inside the
  /// envelope band the slicer actually sees.
  FaultInjector(const FaultConfig& config, std::uint64_t sim_seed,
                std::size_t n_gateways, std::size_t n_tags,
                std::size_t slots_per_trial, std::size_t slot_samples,
                std::size_t samples_per_chip, double noise_sigma);

  bool enabled() const { return enabled_; }

  /// Builds the trial's fault realisation. Pure in (this, trial).
  FaultPlan plan(std::uint64_t trial) const;

 private:
  FaultConfig config_;
  std::uint64_t sim_seed_ = 0;
  std::size_t n_gateways_ = 0;
  std::size_t n_tags_ = 0;
  std::size_t slots_ = 0;
  std::size_t slot_samples_ = 0;
  std::size_t samples_per_chip_ = 1;
  double noise_sigma_ = 0.0;
  bool enabled_ = false;
};

}  // namespace fdb::sim
