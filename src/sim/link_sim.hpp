// Sample-level Monte-Carlo simulator of one full-duplex backscatter
// link. This is the substitute for the paper's SDR testbed: every PHY
// mechanism under study (envelope detection, adaptive slicing, FM0
// balance, self-interference normalisation, rate-separated feedback)
// runs on the same sample streams it would see from hardware.
//
// Signal model (first-order reflections; higher-order terms are ~60 dB
// down at these geometries and are deliberately truncated):
//
//   inc_A[n] = h_SA * s[n]                      ambient field at A
//   inc_B[n] = h_SB * s[n]
//   y_A[n] = inc_A[n] + h_AB * Γ_B[n] * inc_B[n]
//                     + c_self * Γ_A[n] * inc_A[n] + w_A[n]
//   y_B[n] = inc_B[n] + h_AB * Γ_A[n] * inc_A[n]
//                     + c_self * Γ_B[n] * inc_B[n] + w_B[n]
//
// A is the data transmitter (drives Γ_A with the frame), B the data
// receiver that concurrently drives Γ_B with feedback. Both devices
// envelope-detect their antenna signal and run the core decoders.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "channel/backscatter.hpp"
#include "channel/impairments.hpp"
#include "channel/multipath.hpp"
#include "channel/pathloss.hpp"
#include "core/fd_modem.hpp"
#include "energy/harvester.hpp"
#include "sim/synthesis.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace fdb::sim {

struct LinkSimConfig {
  core::FdModemConfig modem = core::FdModemConfig::make();

  // Geometry (metres) and power.
  double ambient_to_a_m = 5.0;
  double ambient_to_b_m = 5.0;
  double a_to_b_m = 1.0;
  double tx_power_w = 1.0;  // ambient transmitter EIRP
  channel::LogDistanceModel pathloss{.reference_distance_m = 1.0,
                                     .reference_loss_db = 30.0,
                                     .exponent = 2.2,
                                     .shadowing_sigma_db = 0.0};

  // Impairments.
  double noise_figure_db = 6.0;
  double noise_power_override_w = -1.0;  // >=0 replaces thermal estimate
  double cfo_hz = 0.0;
  double self_coupling = 0.3;  // own reflection into own receiver (field)

  /// Frequency-selective ambient path: when enabled, independent
  /// tapped-delay-line channels (redrawn per frame) carry the carrier to
  /// each device instead of a flat gain.
  bool multipath = false;
  channel::MultipathProfile multipath_profile{};

  /// Optional co-channel interferer: a third backscatter device at this
  /// distance from both A and B, toggling its reflector randomly.
  /// 0 disables it. Its reflections of the same ambient carrier land in
  /// both receivers — the regenerated-interference problem unique to
  /// backscatter networks.
  double interferer_distance_m = 0.0;
  std::size_t interferer_dwell_samples = 64;  // mean toggle interval

  // Arms.
  std::string carrier = "cw";        // "cw" | "ofdm_tv"
  std::string fading = "static";     // "static" | "rayleigh" | "rician"
  double reflection_rho = 0.4;       // fraction of power reflected
  bool feedback_active = true;       // B transmits while receiving
  double envelope_cutoff_mult = 4.0;  // RC cutoff as multiple of chip rate

  std::uint64_t seed = 1;

  double noise_power_w() const;
};

/// Outcome of one frame-sized Monte-Carlo trial.
struct TrialResult {
  bool sync_ok = false;
  std::size_t data_bits = 0;
  std::size_t data_bit_errors = 0;
  std::size_t feedback_bits = 0;
  std::size_t feedback_bit_errors = 0;
  std::vector<bool> block_ok;       // per-block CRC verdicts at B
  double harvested_j = 0.0;         // energy harvested at B this frame
  double incident_power_w = 0.0;    // mean RF power at B (diagnostics)
  std::size_t sync_sample = 0;      // where B locked (diagnostics)
  float sync_corr = 0.0f;
  /// Ground truth only a simulator can know: whether the lock landed at
  /// the true frame timing (within one chip). False syncs are counted
  /// separately so acquisition failures and bit decisions can be
  /// reported as the distinct phenomena they are.
  bool sync_correct = false;
};

/// Aggregate over many trials. Mergeable so a parallel runner can
/// combine per-worker partial summaries (see sim/runner.hpp).
struct LinkSimSummary {
  ErrorRateCounter data;
  /// Bit errors conditioned on correct acquisition — the quantity the
  /// closed-form BER models predict.
  ErrorRateCounter data_aligned;
  ErrorRateCounter feedback;
  std::uint64_t sync_failures = 0;
  std::uint64_t false_syncs = 0;
  std::uint64_t trials = 0;
  RunningStats harvested_per_frame_j;

  /// Folds one trial outcome into the aggregate.
  void add(const TrialResult& trial);

  /// Combines with another summary. Counters add exactly; the Welford
  /// moments merge stably, and the result is independent of how trials
  /// were grouped as long as the merge order is fixed.
  void merge(const LinkSimSummary& other);

  double data_ber() const { return data.rate(); }
  double aligned_data_ber() const { return data_aligned.rate(); }
  double feedback_ber() const { return feedback.rate(); }
  double sync_failure_rate() const {
    return trials ? static_cast<double>(sync_failures) /
                        static_cast<double>(trials)
                  : 0.0;
  }
};

class LinkSimulator {
 public:
  explicit LinkSimulator(LinkSimConfig config);

  /// Runs one frame exchange with a random payload and random feedback
  /// bits; sync failures count all data bits as errored (the frame is
  /// lost) so BER is honest about acquisition.
  ///
  /// Pure with respect to the simulator: all randomness (payload,
  /// feedback bits, channel draws, noise) derives from
  /// Rng::substream(config.seed, trial_index) inside the call, and no
  /// member state is touched. Trial i therefore produces the same result
  /// no matter which thread runs it or in what order — the contract the
  /// parallel ExperimentRunner (sim/runner.hpp) is built on. Safe to
  /// call concurrently from many threads on one simulator.
  ///
  /// This overload reuses a per-thread SynthArena for the synthesis
  /// scratch, so steady-state trials perform no heap allocation in the
  /// sample-domain hot path.
  TrialResult run_trial(std::uint64_t trial_index) const;

  /// As above with caller-provided synthesis scratch: the arena is
  /// reset on entry and only grows during warm-up. One arena per
  /// concurrent caller — the arena itself is not thread-safe.
  TrialResult run_trial(std::uint64_t trial_index, SynthArena& arena) const;

  /// Runs trials [0, n) serially and aggregates. Equivalent trial-set
  /// to ExperimentRunner::run at any job count.
  LinkSimSummary run(std::size_t n) const;

  /// Per-trial payload size (bytes) — smaller is faster for BER sweeps.
  void set_payload_bytes(std::size_t n) { payload_bytes_ = n; }
  std::size_t payload_bytes() const { return payload_bytes_; }

  const LinkSimConfig& config() const { return config_; }

 private:
  LinkSimConfig config_;
  std::size_t payload_bytes_ = 16;
  core::FdDataTransmitter tx_;
  core::FdDataReceiver rx_;
  core::FdFeedbackReceiver fb_rx_;
  core::FeedbackEncoder fb_tx_;
  channel::BackscatterModulator modulator_;
  energy::Harvester harvester_;
  WaveformSynthesizer synth_;
};

}  // namespace fdb::sim
