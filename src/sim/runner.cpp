#include "sim/runner.hpp"

#include <algorithm>
#include <memory>
#include <mutex>

namespace fdb::sim {
namespace {

std::size_t resolve_jobs(std::size_t jobs) {
  if (jobs != 0) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw ? hw : 1;
}

}  // namespace

ExperimentRunner::ExperimentRunner(std::size_t jobs)
    : jobs_(resolve_jobs(jobs)) {}

void ExperimentRunner::dispatch(
    std::size_t n_items,
    const std::function<void(std::size_t)>& item_fn) const {
  if (n_items == 0) return;
  const std::size_t workers = std::min(jobs_, n_items);
  if (workers <= 1) {
    for (std::size_t i = 0; i < n_items; ++i) item_fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n_items) return;
      try {
        item_fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        // Drain the queue so peers stop picking up new items.
        next.store(n_items, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  try {
    for (std::size_t w = 1; w < workers; ++w) pool.emplace_back(worker);
  } catch (...) {
    // Thread-resource exhaustion mid-spawn: drain the queue and join
    // what did start, so unwinding never destroys a joinable thread
    // (which would std::terminate). Then let the error propagate.
    next.store(n_items, std::memory_order_relaxed);
    for (auto& t : pool) t.join();
    throw;
  }
  worker();  // calling thread is worker 0
  for (auto& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

LinkSimSummary ExperimentRunner::run(const LinkSimConfig& config,
                                     std::size_t trials,
                                     std::size_t payload_bytes) const {
  return run_batch({Scenario{config, trials, payload_bytes}}).front();
}

std::vector<LinkSimSummary> ExperimentRunner::run_batch(
    const std::vector<Scenario>& scenarios) const {
  // One shared simulator per scenario: run_trial(i) is const and
  // thread-safe, so workers on the same scenario need no copies.
  std::vector<std::unique_ptr<LinkSimulator>> sims;
  sims.reserve(scenarios.size());
  for (const Scenario& s : scenarios) {
    sims.push_back(std::make_unique<LinkSimulator>(s.config));
    sims.back()->set_payload_bytes(s.payload_bytes);
  }

  // Flatten every scenario's fixed-size chunks into one work queue.
  struct WorkItem {
    std::size_t scenario;
    std::uint64_t lo;
    std::uint64_t hi;
    std::size_t slot;  // index into that scenario's chunk summaries
  };
  std::vector<WorkItem> items;
  std::vector<std::vector<LinkSimSummary>> chunk_summaries(scenarios.size());
  for (std::size_t s = 0; s < scenarios.size(); ++s) {
    const std::size_t trials = scenarios[s].trials;
    const std::size_t n_chunks =
        (trials + kTrialsPerChunk - 1) / kTrialsPerChunk;
    chunk_summaries[s].resize(n_chunks);
    for (std::size_t c = 0; c < n_chunks; ++c) {
      const std::uint64_t lo = c * kTrialsPerChunk;
      const std::uint64_t hi =
          std::min<std::uint64_t>(trials, lo + kTrialsPerChunk);
      items.push_back({s, lo, hi, c});
    }
  }

  dispatch(items.size(), [&](std::size_t i) {
    const WorkItem& item = items[i];
    LinkSimSummary acc;
    for (std::uint64_t t = item.lo; t < item.hi; ++t) {
      acc.add(sims[item.scenario]->run_trial(t));
    }
    chunk_summaries[item.scenario][item.slot] = acc;
  });

  // Merge per scenario in chunk order — the reduction tree is fixed by
  // the partition, not by which worker finished first.
  std::vector<LinkSimSummary> merged(scenarios.size());
  for (std::size_t s = 0; s < scenarios.size(); ++s) {
    for (const LinkSimSummary& chunk : chunk_summaries[s]) {
      merged[s].merge(chunk);
    }
  }
  return merged;
}

}  // namespace fdb::sim
