// Parallel Monte-Carlo experiment engine. Every bench used to run
// `LinkSimulator::run(trials)` serially, one sweep point at a time;
// this runner shards trials across a pool of workers instead, with a
// determinism contract the whole layer is designed around:
//
//   the merged result is bit-identical for any job count.
//
// Two mechanisms uphold it. First, LinkSimulator::run_trial(i) derives
// all of trial i's randomness from Rng::substream(seed, i), so a trial
// computes the same outcome on any thread. Second, trials are
// partitioned into fixed-size chunks independent of the job count; each
// chunk accumulates serially into its own summary, and the per-chunk
// summaries merge in chunk order on the calling thread. Scheduling
// decides only *when* a chunk runs, never what it computes or the shape
// of the floating-point reduction tree.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <thread>
#include <type_traits>
#include <vector>

#include "sim/link_sim.hpp"

namespace fdb::sim {

/// One grid cell of an experiment: a link configuration plus how many
/// trials to spend on it and the per-trial payload size.
struct Scenario {
  LinkSimConfig config;
  std::size_t trials = 0;
  std::size_t payload_bytes = 16;
};

class ExperimentRunner {
 public:
  /// Trials per work unit. Fixed (never derived from the job count) so
  /// the chunk partition — and therefore the merge tree — is identical
  /// at any parallelism.
  static constexpr std::size_t kTrialsPerChunk = 16;

  /// `jobs` = 0 selects the hardware concurrency.
  explicit ExperimentRunner(std::size_t jobs = 0);

  std::size_t jobs() const { return jobs_; }

  /// Runs `trials` trials of one configuration, sharded across the
  /// pool; merged summary is bit-identical regardless of jobs().
  LinkSimSummary run(const LinkSimConfig& config, std::size_t trials,
                     std::size_t payload_bytes = 16) const;

  /// Runs a whole experiment grid as one flattened work queue (every
  /// scenario's chunks compete for the same workers, so a sweep with
  /// small per-point trial counts still saturates the pool). Returns
  /// merged summaries in scenario order, each with the same determinism
  /// guarantee as run().
  std::vector<LinkSimSummary> run_batch(
      const std::vector<Scenario>& scenarios) const;

  /// Grid API: maps each axis value to a Scenario and runs the batch.
  /// `make_scenario` must be pure — it is called once per value, in
  /// order, on the calling thread.
  template <typename T>
  std::vector<LinkSimSummary> run_sweep(
      const std::vector<T>& axis,
      const std::function<Scenario(const T&)>& make_scenario) const {
    std::vector<Scenario> scenarios;
    scenarios.reserve(axis.size());
    for (const T& value : axis) scenarios.push_back(make_scenario(value));
    return run_batch(scenarios);
  }

  /// Generic chunked accumulation for experiments that are not link
  /// sims (ARQ walks, collision sims, micro-bench reps): runs
  /// `fn(acc, i)` for every i in [0, trials), accumulating into one Acc
  /// per fixed-size chunk and merging in chunk order. Acc needs a
  /// default constructor and merge(const Acc&). Same bit-identical
  /// contract as run(), provided fn(acc, i) depends only on i.
  template <typename Acc, typename TrialFn>
  Acc run_chunked(std::size_t trials, const TrialFn& fn) const {
    const std::size_t n_chunks =
        (trials + kTrialsPerChunk - 1) / kTrialsPerChunk;
    std::vector<Acc> per_chunk(n_chunks);
    dispatch(n_chunks, [&](std::size_t c) {
      Acc acc;
      const std::size_t lo = c * kTrialsPerChunk;
      const std::size_t hi = std::min(trials, lo + kTrialsPerChunk);
      for (std::size_t i = lo; i < hi; ++i) fn(acc, i);
      per_chunk[c] = std::move(acc);
    });
    Acc merged;
    for (const Acc& acc : per_chunk) merged.merge(acc);
    return merged;
  }

  /// Index-ordered parallel map: runs `fn(i)` for i in [0, n) across
  /// the pool and returns the results in index order. For coarse-grain
  /// fan-out where each cell is its own self-contained computation.
  template <typename Fn>
  auto map(std::size_t n, const Fn& fn) const
      -> std::vector<std::invoke_result_t<Fn, std::size_t>> {
    std::vector<std::invoke_result_t<Fn, std::size_t>> results(n);
    dispatch(n, [&](std::size_t i) { results[i] = fn(i); });
    return results;
  }

 private:
  /// Runs item_fn(i) for every i in [0, n_items) on up to jobs_
  /// workers pulling from a shared atomic counter. Rethrows the first
  /// worker exception on the calling thread.
  void dispatch(std::size_t n_items,
                const std::function<void(std::size_t)>& item_fn) const;

  std::size_t jobs_;
};

}  // namespace fdb::sim
