#include "sim/faults.hpp"

#include <algorithm>
#include <cmath>
#include <complex>
#include <numbers>
#include <stdexcept>
#include <string>

namespace fdb::sim {

namespace {

constexpr double kTwoPi = 2.0 * std::numbers::pi;
// Hard cap on |drift| so shifted frames stay inside sane sample counts.
constexpr double kMaxDriftPpm = 1e5;

void require(bool ok, const std::string& message) {
  if (!ok) throw std::invalid_argument("FaultConfig: " + message);
}

bool finite_in(double v, double lo, double hi) {
  return std::isfinite(v) && v >= lo && v <= hi;
}

}  // namespace

const char* fault_class_name(FaultClass c) {
  switch (c) {
    case FaultClass::kGatewayOutage: return "gateway_outage";
    case FaultClass::kCarrierSag: return "carrier_sag";
    case FaultClass::kBurstInterferer: return "burst_interferer";
    case FaultClass::kTagStuck: return "tag_stuck";
    case FaultClass::kTagDrift: return "tag_drift";
  }
  return "unknown";
}

void FaultConfig::validate() const {
  require(finite_in(intensity, 0.0, 1.0), "intensity must be in [0, 1]");
  require(finite_in(gateway_outages_per_kslot, 0.0, 1e6),
          "gateway_outages_per_kslot must be finite and non-negative");
  require(std::isfinite(gateway_outage_mean_slots) &&
              gateway_outage_mean_slots > 0.0,
          "gateway_outage_mean_slots must be positive");
  require(finite_in(gateway_outage_atten, 0.0, 1.0),
          "gateway_outage_atten must be in [0, 1]");
  require(finite_in(carrier_sags_per_kslot, 0.0, 1e6),
          "carrier_sags_per_kslot must be finite and non-negative");
  require(std::isfinite(carrier_sag_mean_slots) && carrier_sag_mean_slots > 0.0,
          "carrier_sag_mean_slots must be positive");
  require(std::isfinite(carrier_sag_floor) && carrier_sag_floor >= 0.0 &&
              carrier_sag_floor < 1.0,
          "carrier_sag_floor must be in [0, 1)");
  require(finite_in(interferer_bursts_per_kslot, 0.0, 1e6),
          "interferer_bursts_per_kslot must be finite and non-negative");
  require(std::isfinite(interferer_burst_mean_slots) &&
              interferer_burst_mean_slots > 0.0,
          "interferer_burst_mean_slots must be positive");
  require(std::isfinite(interferer_env_sigma) && interferer_env_sigma >= 0.0,
          "interferer_env_sigma must be finite and non-negative");
  require(finite_in(tag_fault_fraction, 0.0, 1.0),
          "tag_fault_fraction must be in [0, 1]");
  require(finite_in(tag_stuck_share, 0.0, 1.0),
          "tag_stuck_share must be in [0, 1]");
  require(finite_in(tag_drift_max_ppm, 0.0, kMaxDriftPpm),
          "tag_drift_max_ppm must be in [0, 1e5]");

  for (std::size_t i = 0; i < events.size(); ++i) {
    const FaultEvent& ev = events[i];
    const std::string at = "events[" + std::to_string(i) + "]";
    require(ev.start_slot >= 0, at + ".start_slot must be non-negative");
    require(ev.duration_slots > 0, at + ".duration_slots must be positive");
    switch (ev.kind) {
      case FaultClass::kGatewayOutage:
        require(finite_in(ev.magnitude, 0.0, 1.0),
                at + ".magnitude (outage residual gain) must be in [0, 1]");
        break;
      case FaultClass::kCarrierSag:
        require(std::isfinite(ev.magnitude) && ev.magnitude >= 0.0 &&
                    ev.magnitude < 1.0,
                at + ".magnitude (sag scale) must be in [0, 1)");
        break;
      case FaultClass::kBurstInterferer:
        require(std::isfinite(ev.magnitude) && ev.magnitude >= 0.0,
                at + ".magnitude (interferer envelope) must be non-negative");
        break;
      case FaultClass::kTagStuck:
        require(ev.magnitude == 0.0 || ev.magnitude == 1.0,
                at + ".magnitude (stuck state) must be 0 or 1");
        break;
      case FaultClass::kTagDrift:
        require(std::isfinite(ev.magnitude) &&
                    std::abs(ev.magnitude) <= kMaxDriftPpm,
                at + ".magnitude (drift ppm) must have |ppm| <= 1e5");
        break;
    }
  }
}

// ---------------------------------------------------------------------------
// FaultPlan queries
// ---------------------------------------------------------------------------

float FaultPlan::min_signal_scale(std::size_t g, std::size_t lo,
                                  std::size_t hi) const {
  if (gw_atten_.empty() && carrier_scale_.empty()) return 1.0f;
  hi = std::min(hi, slots_);
  float m = 1.0f;
  for (std::size_t s = lo; s < hi; ++s) m = std::min(m, signal_scale(g, s));
  return m;
}

float FaultPlan::max_signal_scale(std::size_t g, std::size_t lo,
                                  std::size_t hi) const {
  if (gw_atten_.empty() && carrier_scale_.empty()) return 1.0f;
  hi = std::min(hi, slots_);
  if (lo >= hi) return 1.0f;
  float m = 0.0f;
  for (std::size_t s = lo; s < hi; ++s) m = std::max(m, signal_scale(g, s));
  return m;
}

float FaultPlan::max_interferer_env(std::size_t g, std::size_t lo,
                                    std::size_t hi) const {
  if (interf_env_.empty()) return 0.0f;
  hi = std::min(hi, slots_);
  float m = 0.0f;
  for (std::size_t s = lo; s < hi; ++s) m = std::max(m, interferer_env(g, s));
  return m;
}

bool FaultPlan::window_has_outage(std::size_t g, std::size_t lo,
                                  std::size_t hi) const {
  if (gw_atten_.empty()) return false;
  hi = std::min(hi, slots_);
  for (std::size_t s = lo; s < hi; ++s)
    if (gw_atten_[g * slots_ + s] < 1.0f) return true;
  return false;
}

bool FaultPlan::window_has_sag(std::size_t lo, std::size_t hi) const {
  if (carrier_scale_.empty()) return false;
  hi = std::min(hi, slots_);
  for (std::size_t s = lo; s < hi; ++s)
    if (carrier_scale_[s] < 1.0f) return true;
  return false;
}

bool FaultPlan::window_has_interference(std::size_t g, std::size_t lo,
                                        std::size_t hi) const {
  return max_interferer_env(g, lo, hi) > 0.0f;
}

void FaultPlan::add_interferers(std::size_t g, std::size_t slot,
                                std::span<cf32> acc) const {
  if (tones_.empty()) return;
  const auto s = static_cast<std::int64_t>(slot);
  for (const Tone& tone : tones_) {
    if (tone.gateway != g || s < tone.start_slot || s >= tone.end_slot)
      continue;
    // Phase is anchored to the absolute in-trial sample index, so the
    // same slot synthesized from phase B, an escalation cache, or a
    // replay produces bit-identical samples.
    const double abs0 = static_cast<double>(slot) *
                        static_cast<double>(slot_samples_);
    const double start_phase = std::fmod(tone.omega * abs0 + tone.phase,
                                         kTwoPi);
    std::complex<double> cur = std::polar(tone.amp, start_phase);
    const std::complex<double> rot = std::polar(1.0, tone.omega);
    for (std::size_t n = 0; n < acc.size(); ++n) {
      acc[n] += cf32(static_cast<float>(cur.real()),
                     static_cast<float>(cur.imag()));
      cur *= rot;
    }
  }
}

const TagFault* FaultPlan::tag_fault(std::uint32_t tag) const {
  auto it = std::lower_bound(
      tag_faults_.begin(), tag_faults_.end(), tag,
      [](const TagFault& f, std::uint32_t t) { return f.tag < t; });
  if (it == tag_faults_.end() || it->tag != tag) return nullptr;
  return &*it;
}

bool FaultPlan::stuck_in_window(std::uint32_t tag, std::int64_t lo,
                                std::int64_t hi) const {
  const TagFault* f = tag_fault(tag);
  return f != nullptr && f->stuck && f->start_slot < hi && f->end_slot > lo;
}

std::size_t FaultPlan::drift_shift_samples(std::uint32_t tag,
                                           std::int64_t frame_start_slot) const {
  const TagFault* f = tag_fault(tag);
  if (f == nullptr || f->stuck || frame_start_slot < f->start_slot) return 0;
  const std::int64_t elapsed_slots =
      std::min(frame_start_slot, f->end_slot) - f->start_slot;
  const double elapsed_samples =
      static_cast<double>(elapsed_slots) * static_cast<double>(slot_samples_);
  return static_cast<std::size_t>(
      std::llround(std::abs(f->drift_ppm) * 1e-6 * elapsed_samples));
}

// ---------------------------------------------------------------------------
// FaultInjector
// ---------------------------------------------------------------------------

FaultInjector::FaultInjector(const FaultConfig& config, std::uint64_t sim_seed,
                             std::size_t n_gateways, std::size_t n_tags,
                             std::size_t slots_per_trial,
                             std::size_t slot_samples,
                             std::size_t samples_per_chip, double noise_sigma)
    : config_(config),
      sim_seed_(sim_seed),
      n_gateways_(n_gateways),
      n_tags_(n_tags),
      slots_(slots_per_trial),
      slot_samples_(slot_samples),
      samples_per_chip_(std::max<std::size_t>(samples_per_chip, 1)),
      noise_sigma_(noise_sigma),
      enabled_(config.enabled() && slots_per_trial > 0) {}

FaultPlan FaultInjector::plan(std::uint64_t trial) const {
  FaultPlan p;
  p.slots_ = slots_;
  p.slot_samples_ = slot_samples_;
  if (!enabled_) return p;

  // The fault substream is salted away from the main trial stream:
  // enabling faults must not perturb any fault-free randomness, and the
  // same (seed, trial) yields the same plan on any thread.
  Rng rng = Rng::substream(sim_seed_ ^ config_.seed_salt, trial);
  const auto slots64 = static_cast<std::int64_t>(slots_);
  const double slots_d = static_cast<double>(slots_);
  const double intensity = config_.intensity;

  const auto clamp_window = [&](std::int64_t start, std::int64_t dur,
                                std::int64_t* lo, std::int64_t* hi) {
    *lo = std::clamp<std::int64_t>(start, 0, slots64);
    *hi = std::clamp<std::int64_t>(start + dur, 0, slots64);
    return *lo < *hi;
  };

  const auto ensure_gw_atten = [&] {
    if (p.gw_atten_.empty()) p.gw_atten_.assign(n_gateways_ * slots_, 1.0f);
  };
  const auto ensure_carrier = [&] {
    if (p.carrier_scale_.empty()) p.carrier_scale_.assign(slots_, 1.0f);
  };
  const auto ensure_interf_env = [&] {
    if (p.interf_env_.empty()) p.interf_env_.assign(n_gateways_ * slots_, 0.0f);
  };

  // Overlapping scale windows normalize by worst case (min of the
  // per-event residual scales); coincident interferer tones superpose.
  const auto apply_outage = [&](std::uint32_t g, std::int64_t start,
                                std::int64_t dur, double atten) {
    std::int64_t lo = 0, hi = 0;
    if (g >= n_gateways_ || !clamp_window(start, dur, &lo, &hi)) return;
    ensure_gw_atten();
    const auto a = static_cast<float>(atten);
    float* row = p.gw_atten_.data() + g * slots_;
    for (std::int64_t s = lo; s < hi; ++s)
      row[s] = std::min(row[s], a);
    p.any_ = true;
  };
  const auto apply_sag = [&](std::int64_t start, std::int64_t dur,
                             double scale) {
    std::int64_t lo = 0, hi = 0;
    if (!clamp_window(start, dur, &lo, &hi)) return;
    ensure_carrier();
    const auto c = static_cast<float>(scale);
    for (std::int64_t s = lo; s < hi; ++s)
      p.carrier_scale_[s] = std::min(p.carrier_scale_[s], c);
    p.any_ = true;
  };
  const auto apply_tone = [&](std::uint32_t g, std::int64_t start,
                              std::int64_t dur, double env_sigma, double omega,
                              double phase) {
    std::int64_t lo = 0, hi = 0;
    if (g >= n_gateways_ || !clamp_window(start, dur, &lo, &hi)) return;
    const double amp = env_sigma * noise_sigma_;
    if (amp <= 0.0) return;
    ensure_interf_env();
    p.tones_.push_back({g, lo, hi, amp, omega, phase});
    float* row = p.interf_env_.data() + g * slots_;
    for (std::int64_t s = lo; s < hi; ++s)
      row[s] += static_cast<float>(amp);
    p.any_ = true;
  };

  // --- generated load ------------------------------------------------
  // Every draw below happens unconditionally; `intensity` only decides
  // which drawn events *survive* (thinning). The intensity-1.0 event
  // list is therefore fixed per trial and fault sets nest across
  // intensities — the mechanism behind monotone degradation under
  // common random numbers.
  const double chip_omega =
      std::numbers::pi / static_cast<double>(samples_per_chip_);

  if (config_.gateway_outages_per_kslot > 0.0) {
    const double gap_mean = 1000.0 / config_.gateway_outages_per_kslot;
    for (std::size_t g = 0; g < n_gateways_; ++g) {
      double pos = rng.exponential(gap_mean);
      while (pos < slots_d) {
        const auto dur = static_cast<std::int64_t>(
            1.0 + std::floor(rng.exponential(config_.gateway_outage_mean_slots)));
        const double u = rng.uniform();
        if (u < intensity)
          apply_outage(static_cast<std::uint32_t>(g),
                       static_cast<std::int64_t>(pos), dur,
                       config_.gateway_outage_atten);
        pos += static_cast<double>(dur) + rng.exponential(gap_mean);
      }
    }
  }

  if (config_.carrier_sags_per_kslot > 0.0) {
    const double gap_mean = 1000.0 / config_.carrier_sags_per_kslot;
    double pos = rng.exponential(gap_mean);
    while (pos < slots_d) {
      const auto dur = static_cast<std::int64_t>(
          1.0 + std::floor(rng.exponential(config_.carrier_sag_mean_slots)));
      const double scale = rng.uniform(config_.carrier_sag_floor, 1.0);
      const double u = rng.uniform();
      if (u < intensity)
        apply_sag(static_cast<std::int64_t>(pos), dur, scale);
      pos += static_cast<double>(dur) + rng.exponential(gap_mean);
    }
  }

  if (config_.interferer_bursts_per_kslot > 0.0) {
    const double gap_mean = 1000.0 / config_.interferer_bursts_per_kslot;
    for (std::size_t g = 0; g < n_gateways_; ++g) {
      double pos = rng.exponential(gap_mean);
      while (pos < slots_d) {
        const auto dur = static_cast<std::int64_t>(
            1.0 +
            std::floor(rng.exponential(config_.interferer_burst_mean_slots)));
        // Tone frequency sits inside the chip-rate band the envelope
        // slicer integrates over, so the burst perturbs decisions
        // instead of averaging out.
        const double omega = (0.1 + 0.9 * rng.uniform()) * chip_omega;
        const double phase = rng.uniform() * kTwoPi;
        const double u = rng.uniform();
        if (u < intensity)
          apply_tone(static_cast<std::uint32_t>(g),
                     static_cast<std::int64_t>(pos), dur,
                     config_.interferer_env_sigma, omega, phase);
        pos += static_cast<double>(dur) + rng.exponential(gap_mean);
      }
    }
  }

  // Per-tag hardware faults: at most one per tag per trial, persistent
  // from onset to the end of the trial (a jammed switch or a drifted
  // oscillator does not self-heal on slot boundaries).
  for (std::size_t k = 0; k < n_tags_; ++k) {
    const double u = rng.uniform();
    const auto start = static_cast<std::int64_t>(rng.uniform_int(slots_));
    const bool stuck = rng.uniform() < config_.tag_stuck_share;
    const bool state = rng.chance(0.5);
    const double ppm_frac = 1.0 - rng.uniform();  // (0, 1]
    const bool positive = rng.chance(0.5);
    if (u < intensity * config_.tag_fault_fraction) {
      TagFault f;
      f.tag = static_cast<std::uint32_t>(k);
      f.start_slot = start;
      f.end_slot = slots64;
      f.stuck = stuck;
      f.stuck_state = state ? 1 : 0;
      f.drift_ppm = stuck ? 0.0
                          : (positive ? 1.0 : -1.0) * ppm_frac *
                                config_.tag_drift_max_ppm;
      if (f.stuck || f.drift_ppm != 0.0) {
        p.tag_faults_.push_back(f);
        p.any_ = true;
      }
    }
  }

  // --- scripted events (every trial, no thinning) --------------------
  for (const FaultEvent& ev : config_.events) {
    switch (ev.kind) {
      case FaultClass::kGatewayOutage:
        apply_outage(ev.target, ev.start_slot, ev.duration_slots,
                     ev.magnitude);
        break;
      case FaultClass::kCarrierSag:
        apply_sag(ev.start_slot, ev.duration_slots, ev.magnitude);
        break;
      case FaultClass::kBurstInterferer:
        // Scripted bursts use a fixed mid-band tone so the event is
        // fully specified by (target, window, magnitude).
        apply_tone(ev.target, ev.start_slot, ev.duration_slots, ev.magnitude,
                   0.5 * chip_omega, 0.0);
        break;
      case FaultClass::kTagStuck:
      case FaultClass::kTagDrift: {
        if (ev.target >= n_tags_) break;
        std::int64_t lo = 0, hi = 0;
        if (!clamp_window(ev.start_slot, ev.duration_slots, &lo, &hi)) break;
        TagFault f;
        f.tag = ev.target;
        f.start_slot = lo;
        f.end_slot = hi;
        f.stuck = ev.kind == FaultClass::kTagStuck;
        f.stuck_state = f.stuck && ev.magnitude != 0.0 ? 1 : 0;
        f.drift_ppm = f.stuck ? 0.0 : ev.magnitude;
        if (f.stuck || f.drift_ppm != 0.0) {
          p.tag_faults_.push_back(f);
          p.any_ = true;
        }
        break;
      }
    }
  }

  // Normalize tag faults: sorted by tag, earliest onset wins per tag.
  std::stable_sort(p.tag_faults_.begin(), p.tag_faults_.end(),
                   [](const TagFault& a, const TagFault& b) {
                     return a.tag != b.tag ? a.tag < b.tag
                                           : a.start_slot < b.start_slot;
                   });
  p.tag_faults_.erase(
      std::unique(p.tag_faults_.begin(), p.tag_faults_.end(),
                  [](const TagFault& a, const TagFault& b) {
                    return a.tag == b.tag;
                  }),
      p.tag_faults_.end());

  return p;
}

}  // namespace fdb::sim
