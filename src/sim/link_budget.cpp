#include "sim/link_budget.hpp"

#include <cmath>
#include <complex>
#include <limits>

#include "channel/backscatter.hpp"
#include "energy/harvester.hpp"

namespace fdb::sim {

LinkBudget compute_link_budget(const LinkSimConfig& config) {
  LinkBudget budget;
  const auto& rates = config.modem.data.rates;

  const double amp_tx = std::sqrt(config.tx_power_w);
  const double h_sa =
      amp_tx * config.pathloss.amplitude_gain(config.ambient_to_a_m);
  const double h_sb =
      amp_tx * config.pathloss.amplitude_gain(config.ambient_to_b_m);
  const double h_ab = config.pathloss.amplitude_gain(config.a_to_b_m);

  budget.incident_at_a_w = h_sa * h_sa;
  budget.incident_at_b_w = h_sb * h_sb;

  // With a CW carrier of |s|=1 and constructive (static) phases, the
  // envelope at B toggles between |h_sb| and |h_sb + h_ab*sqrt(rho)*h_sa|
  // as A switches its reflector.
  const double gamma = std::sqrt(config.reflection_rho);
  budget.delta_env_at_b = h_ab * gamma * h_sa;
  budget.delta_env_at_a = h_ab * gamma * h_sb;

  // Complex AWGN of power N -> envelope perturbation std dev ~ sqrt(N/2)
  // in the high-carrier regime (noise projects onto the carrier phase).
  budget.noise_sigma = std::sqrt(config.noise_power_w() / 2.0);

  budget.predicted_data_ber = core::ook_envelope_ber(
      budget.delta_env_at_b, budget.noise_sigma, rates.samples_per_chip);

  const bool manchester =
      config.modem.feedback.coding == core::FeedbackCoding::kManchester;
  // Self-gated averaging keeps roughly half the window samples (A's FM0
  // stream is DC-balanced), so the effective window halves.
  const std::size_t window = rates.samples_per_feedback_bit() / 2;
  budget.predicted_feedback_ber = core::feedback_ber(
      budget.delta_env_at_a, budget.noise_sigma, window, manchester);

  const energy::Harvester harvester;
  const channel::BackscatterModulator modulator(
      channel::ReflectionStates::ook(config.reflection_rho));
  // Time-average harvest fraction: B reflects ~half the time when
  // feedback is active.
  const double fraction =
      config.feedback_active
          ? 0.5 * (modulator.harvest_fraction(false) +
                   modulator.harvest_fraction(true))
          : modulator.harvest_fraction(false);
  budget.harvested_per_second_j =
      harvester.harvested_power(budget.incident_at_b_w * fraction);
  return budget;
}

double envelope_swing(cf32 base, cf32 c_on, cf32 c_off) {
  const double on = std::abs(std::complex<double>(base) +
                             std::complex<double>(c_on));
  const double off = std::abs(std::complex<double>(base) +
                              std::complex<double>(c_off));
  return std::abs(on - off);
}

double analytic_margin_db(double delta_env, double interferer_env_sum,
                          double noise_sigma, std::size_t n_avg,
                          double target_ber) {
  if (!(delta_env > 0.0)) {
    return -std::numeric_limits<double>::infinity();
  }
  const double sinr = core::envelope_sinr(delta_env, interferer_env_sum,
                                          noise_sigma, n_avg);
  const double required = core::ook_required_sinr(target_ber);
  return 10.0 * std::log10(sinr / required);
}

}  // namespace fdb::sim
