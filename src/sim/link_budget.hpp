// Analytic link budget for a LinkSimConfig: predicts the envelope swing
// the backscatter signal produces at each receiver and maps it through
// core/theory.hpp to expected BERs. The benches print these columns next
// to Monte-Carlo results; property tests require agreement in the
// CW/static regime.
#pragma once

#include "core/theory.hpp"
#include "sim/link_sim.hpp"

namespace fdb::sim {

struct LinkBudget {
  double incident_at_b_w = 0.0;     // ambient power arriving at B
  double incident_at_a_w = 0.0;
  double delta_env_at_b = 0.0;      // envelope swing of A's data at B
  double delta_env_at_a = 0.0;      // envelope swing of B's feedback at A
  double noise_sigma = 0.0;         // per-sample envelope noise std dev
  double predicted_data_ber = 0.0;
  double predicted_feedback_ber = 0.0;
  double harvested_per_second_j = 0.0;
};

/// Computes the budget for the static-fading, CW-carrier regime (where
/// closed forms are exact up to the envelope detector's smoothing).
LinkBudget compute_link_budget(const LinkSimConfig& config);

// ---------------------------------------------------------------------
// Per-link analytic helpers for the hybrid-fidelity fleet engine
// (sim/fleet.hpp). These consume the *complex* per-trial couplings the
// waveform synthesizer folds in — fading and shadowing included — so
// the analytic verdict and the synthesized one see the same channel.
// ---------------------------------------------------------------------

/// Exact noiseless envelope swing one OOK tag produces at a receiver
/// whose static field is `base` (direct ambient leakage): the envelope
/// toggles between |base + c_on| and |base + c_off| as the tag's switch
/// flips between the composed ambient->tag->receiver couplings of its
/// two reflection states. Exact for a unit CW carrier in a
/// block-static channel; phase projection (a reflection in quadrature
/// to the carrier barely moves the envelope) emerges from the complex
/// arithmetic instead of being modeled.
double envelope_swing(cf32 base, cf32 c_on, cf32 c_off);

/// Margin (dB) of an OOK link over the SINR that `target_ber` demands,
/// under `interferer_env_sum` of concurrent swing (worst-case coherent;
/// see core::envelope_sinr). Positive margins clear the threshold;
/// -inf when the link has no swing at all.
double analytic_margin_db(double delta_env, double interferer_env_sum,
                          double noise_sigma, std::size_t n_avg,
                          double target_ber);

}  // namespace fdb::sim
