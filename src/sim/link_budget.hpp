// Analytic link budget for a LinkSimConfig: predicts the envelope swing
// the backscatter signal produces at each receiver and maps it through
// core/theory.hpp to expected BERs. The benches print these columns next
// to Monte-Carlo results; property tests require agreement in the
// CW/static regime.
#pragma once

#include "core/theory.hpp"
#include "sim/link_sim.hpp"

namespace fdb::sim {

struct LinkBudget {
  double incident_at_b_w = 0.0;     // ambient power arriving at B
  double incident_at_a_w = 0.0;
  double delta_env_at_b = 0.0;      // envelope swing of A's data at B
  double delta_env_at_a = 0.0;      // envelope swing of B's feedback at A
  double noise_sigma = 0.0;         // per-sample envelope noise std dev
  double predicted_data_ber = 0.0;
  double predicted_feedback_ber = 0.0;
  double harvested_per_second_j = 0.0;
};

/// Computes the budget for the static-fading, CW-carrier regime (where
/// closed forms are exact up to the envelope detector's smoothing).
LinkBudget compute_link_budget(const LinkSimConfig& config);

}  // namespace fdb::sim
