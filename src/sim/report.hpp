// Experiment reporting: every bench emits its results through a Report,
// which renders the familiar aligned text table and, on request,
// machine-readable CSV or JSON — so sweep outputs can feed plotting and
// perf-trajectory tooling instead of dying in a terminal scrollback.
//
// The companion CliOptions/parse_cli give all bench binaries the same
// three flags:
//
//   --trials N              trial count per sweep point (bench default if absent)
//   --jobs N                worker threads (0 = all hardware threads)
//   --format table|csv|json output format (default table)
//   --output PATH           also write the chosen format to a file
//   --stages REGEX          run only matching stages (benches that
//                           declare named stages, e.g. e8; others
//                           ignore it)
//
// JSON schema (one object per run):
//
//   {
//     "experiment": "e2_ber_vs_distance",
//     "trials": 60,              // 0 when the bench default was used per-point
//     "jobs": 8,
//     "sections": [
//       {"name": "main",
//        "columns": ["distance_m", "ber_fb_on", ...],
//        "rows": [[0.5, 0.0012, ...], ...]}   // cells: number or string
//     ],
//     "notes": ["Shape check: ..."]
//   }
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace fdb::sim {

enum class ReportFormat { kTable, kCsv, kJson };

/// Options shared by every bench binary.
struct CliOptions {
  std::size_t trials = 0;  ///< 0 = use the bench's per-point defaults
  std::size_t jobs = 0;    ///< 0 = hardware concurrency
  ReportFormat format = ReportFormat::kTable;
  std::string output_path;   ///< empty = stdout only
  std::string stages_filter;  ///< ECMAScript regex; empty = all stages
};

/// Parses --trials/--jobs/--format/--output (+ --help). `default_trials`
/// seeds CliOptions::trials when the flag is absent (0 keeps "bench
/// decides per point"). Prints usage and exits 0 on --help, exits 2 on a
/// malformed flag — bench mains can call this unconditionally first.
CliOptions parse_cli(int argc, char** argv, std::size_t default_trials = 0,
                     const char* trials_help = "trials per sweep point");

/// One table cell: a number (rendered %.6g in text, full precision in
/// JSON) or a string label.
struct ReportCell {
  ReportCell() : is_number(true), number(0.0) {}
  ReportCell(double v) : is_number(true), number(v) {}          // NOLINT
  ReportCell(int v) : ReportCell(static_cast<double>(v)) {}     // NOLINT
  ReportCell(std::size_t v) : ReportCell(static_cast<double>(v)) {}  // NOLINT
  ReportCell(std::string s) : is_number(false), text(std::move(s)) {}  // NOLINT
  ReportCell(const char* s) : is_number(false), text(s) {}      // NOLINT

  bool is_number;
  double number = 0.0;
  std::string text;
};

/// One titled table within a report (most benches have exactly one;
/// e10 has a data-plane and a feedback-plane section).
struct ReportSection {
  std::string name;
  std::vector<std::string> columns;
  std::vector<std::vector<ReportCell>> rows;

  void add_row(std::vector<ReportCell> cells);

  /// Convenience for all-numeric rows (what runner.map cells return).
  void add_row_numeric(const std::vector<double>& values);
};

/// An experiment's full output: sections plus free-text notes (the
/// "shape check" commentary), renderable as table, CSV, or JSON.
class Report {
 public:
  explicit Report(std::string experiment);

  /// Adds a section and returns a reference valid until the next call.
  ReportSection& section(std::string name, std::vector<std::string> columns);

  void add_note(std::string note);

  /// Records the trial/job counts echoed into CSV/JSON metadata.
  void set_run_info(std::size_t trials, std::size_t jobs);

  std::string render(ReportFormat format) const;

  /// Renders to stdout in `options.format`; additionally writes the
  /// same rendering to `options.output_path` when set. Returns false
  /// (after complaining on stderr) when that file cannot be written, so
  /// bench mains can exit non-zero instead of silently losing output.
  [[nodiscard]] bool emit(const CliOptions& options) const;

  const std::string& experiment() const { return experiment_; }
  const std::vector<ReportSection>& sections() const { return sections_; }

 private:
  std::string render_table() const;
  std::string render_csv() const;
  std::string render_json() const;

  std::string experiment_;
  std::vector<ReportSection> sections_;
  std::vector<std::string> notes_;
  std::size_t trials_ = 0;
  std::size_t jobs_ = 0;
};

}  // namespace fdb::sim
