#include "sim/relay.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "sim/fleet.hpp"

namespace fdb::sim {

void RelayConfig::validate() const {
  if (!enabled) return;
  if (!(range_m > 0.0) || !std::isfinite(range_m)) {
    throw std::invalid_argument(
        "RelayConfig: range_m must be positive and finite, got " +
        std::to_string(range_m));
  }
  if (max_hops < 2) {
    throw std::invalid_argument(
        "RelayConfig: max_hops must be >= 2 (one relay hop plus the "
        "gateway hop), got " + std::to_string(max_hops));
  }
  if (queue_capacity == 0) {
    throw std::invalid_argument(
        "RelayConfig: queue_capacity must be positive (a relay needs "
        "room to hold at least one frame)");
  }
  if (reparent_fail_streak == 0) {
    throw std::invalid_argument(
        "RelayConfig: reparent_fail_streak must be positive (zero would "
        "re-parent before any failure)");
  }
  if (!std::isfinite(min_margin_db)) {
    throw std::invalid_argument(
        "RelayConfig: min_margin_db must be finite, got " +
        std::to_string(min_margin_db));
  }
}

RelayTopology::RelayTopology(std::span<const channel::Vec2> positions,
                             std::span<const std::uint8_t> culled,
                             const RelayConfig& config, double grid_cell_m) {
  const std::size_t n = positions.size();
  level_.assign(n, kUnreachable);
  off_.assign(n + 1, 0);
  for (std::size_t k = 0; k < n; ++k) {
    if (!culled[k]) level_[k] = 0;
  }
  if (!config.enabled || n == 0) return;

  // BFS out from the in-range set, one level per relay hop. The grid
  // enumerates each tag's disk once per level; level assignment order
  // is index-ascending, so the result is deterministic.
  const CullingGrid grid(positions, grid_cell_m);
  const std::size_t max_level = config.max_hops - 1;
  std::vector<std::uint32_t> near;
  for (std::size_t lvl = 1; lvl <= max_level; ++lvl) {
    bool grew = false;
    for (std::size_t k = 0; k < n; ++k) {
      if (level_[k] != kUnreachable) continue;
      grid.within_into(positions[k], config.range_m, near);
      for (const std::uint32_t p : near) {
        if (level_[p] == lvl - 1) {
          level_[k] = lvl;
          grew = true;
          break;
        }
      }
    }
    if (!grew) break;
  }

  // Candidate lists: level-(n-1) neighbours, nearest first (ties to the
  // lower index — within() already returns ascending indices).
  std::vector<std::pair<double, std::uint32_t>> ranked;
  for (std::size_t k = 0; k < n; ++k) {
    off_[k] = static_cast<std::uint32_t>(flat_.size());
    if (level_[k] == 0 || level_[k] == kUnreachable) continue;
    ranked.clear();
    grid.within_into(positions[k], config.range_m, near);
    for (const std::uint32_t p : near) {
      if (p == k || level_[p] != level_[k] - 1) continue;
      ranked.emplace_back(channel::distance_m(positions[k], positions[p]), p);
    }
    std::stable_sort(ranked.begin(), ranked.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
    for (const auto& [dist, p] : ranked) flat_.push_back(p);
    if (!ranked.empty()) children_.push_back(static_cast<std::uint32_t>(k));
  }
  off_[n] = static_cast<std::uint32_t>(flat_.size());
}

}  // namespace fdb::sim
