#include "sim/sweep.hpp"

#include <cassert>
#include <cmath>

namespace fdb::sim {

std::vector<double> logspace(double lo, double hi, std::size_t n) {
  assert(lo > 0.0 && hi > 0.0);
  if (n == 0) return {};
  if (n == 1) return {lo};
  std::vector<double> values(n);
  const double step = (std::log10(hi) - std::log10(lo)) /
                      static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i) {
    values[i] = std::pow(10.0, std::log10(lo) + step * static_cast<double>(i));
  }
  return values;
}

std::vector<double> linspace(double lo, double hi, std::size_t n) {
  if (n == 0) return {};
  if (n == 1) return {lo};
  std::vector<double> values(n);
  const double step = (hi - lo) / static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i) {
    values[i] = lo + step * static_cast<double>(i);
  }
  return values;
}

}  // namespace fdb::sim
