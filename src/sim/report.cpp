#include "sim/report.hpp"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/table.hpp"

namespace fdb::sim {
namespace {

[[noreturn]] void usage_and_exit(const char* argv0, const char* trials_help,
                                 std::size_t default_trials, int code) {
  std::FILE* out = code == 0 ? stdout : stderr;
  std::fprintf(out,
               "usage: %s [--trials N] [--jobs N] [--format table|csv|json]"
               " [--output PATH] [--stages REGEX]\n"
               "  --trials N   %s (default: %zu; 0 = bench default)\n"
               "  --jobs N     worker threads (default 0 = all hardware"
               " threads)\n"
               "  --format F   output format: table (default), csv, json\n"
               "  --output P   also write the rendered output to file P\n"
               "  --stages R   run only stages whose name matches the"
               " ECMAScript regex R\n"
               "               (benches with named stages; unfiltered"
               " benches ignore it)\n",
               argv0, trials_help, default_trials);
  std::exit(code);
}

std::size_t parse_count(const char* argv0, const char* flag, const char* value,
                        const char* trials_help, std::size_t default_trials) {
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value, &end, 10);
  // strtoull silently wraps a leading '-' ("-1" -> ULLONG_MAX); reject it.
  if (end == value || *end != '\0' ||
      std::strchr(value, '-') != nullptr) {
    std::fprintf(stderr, "%s: %s expects a non-negative integer, got '%s'\n",
                 argv0, flag, value);
    usage_and_exit(argv0, trials_help, default_trials, 2);
  }
  return static_cast<std::size_t>(parsed);
}

/// JSON string escaping per RFC 8259 (quotes, backslash, control chars).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Full-precision number for JSON; non-finite values have no JSON
/// representation and become null.
std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string cell_text(const ReportCell& cell) {
  return cell.is_number ? format_g(cell.number) : cell.text;
}

/// CSV quoting: wrap fields containing separators/quotes, double quotes.
std::string csv_field(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

CliOptions parse_cli(int argc, char** argv, std::size_t default_trials,
                     const char* trials_help) {
  CliOptions options;
  options.trials = default_trials;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s expects a value\n", argv[0], arg);
        usage_and_exit(argv[0], trials_help, default_trials, 2);
      }
      return argv[++i];
    };
    if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      usage_and_exit(argv[0], trials_help, default_trials, 0);
    } else if (std::strcmp(arg, "--trials") == 0) {
      options.trials = parse_count(argv[0], arg, value(), trials_help,
                                   default_trials);
      // An explicit 0 asks for the bench default, as the usage promises.
      if (options.trials == 0) options.trials = default_trials;
    } else if (std::strcmp(arg, "--jobs") == 0) {
      options.jobs = parse_count(argv[0], arg, value(), trials_help,
                                 default_trials);
    } else if (std::strcmp(arg, "--format") == 0) {
      const char* fmt = value();
      if (std::strcmp(fmt, "table") == 0) {
        options.format = ReportFormat::kTable;
      } else if (std::strcmp(fmt, "csv") == 0) {
        options.format = ReportFormat::kCsv;
      } else if (std::strcmp(fmt, "json") == 0) {
        options.format = ReportFormat::kJson;
      } else {
        std::fprintf(stderr, "%s: unknown format '%s'\n", argv[0], fmt);
        usage_and_exit(argv[0], trials_help, default_trials, 2);
      }
    } else if (std::strcmp(arg, "--output") == 0) {
      options.output_path = value();
    } else if (std::strcmp(arg, "--stages") == 0) {
      options.stages_filter = value();
    } else {
      std::fprintf(stderr, "%s: unknown flag '%s'\n", argv[0], arg);
      usage_and_exit(argv[0], trials_help, default_trials, 2);
    }
  }
  return options;
}

void ReportSection::add_row(std::vector<ReportCell> cells) {
  assert(cells.size() == columns.size());
  rows.push_back(std::move(cells));
}

void ReportSection::add_row_numeric(const std::vector<double>& values) {
  add_row(std::vector<ReportCell>(values.begin(), values.end()));
}

Report::Report(std::string experiment) : experiment_(std::move(experiment)) {}

ReportSection& Report::section(std::string name,
                               std::vector<std::string> columns) {
  sections_.push_back({std::move(name), std::move(columns), {}});
  return sections_.back();
}

void Report::add_note(std::string note) { notes_.push_back(std::move(note)); }

void Report::set_run_info(std::size_t trials, std::size_t jobs) {
  trials_ = trials;
  jobs_ = jobs;
}

std::string Report::render_table() const {
  std::ostringstream os;
  os << experiment_ << '\n';
  for (const ReportSection& sec : sections_) {
    if (!sec.name.empty()) os << '\n' << sec.name << '\n';
    Table table(sec.columns);
    for (const auto& row : sec.rows) {
      std::vector<std::string> cells;
      cells.reserve(row.size());
      for (const ReportCell& cell : row) cells.push_back(cell_text(cell));
      table.add_row(std::move(cells));
    }
    os << table.render();
  }
  for (const std::string& note : notes_) os << '\n' << note << '\n';
  return os.str();
}

std::string Report::render_csv() const {
  std::ostringstream os;
  for (const ReportSection& sec : sections_) {
    os << "# " << experiment_ << '/' << sec.name << " trials=" << trials_
       << " jobs=" << jobs_ << '\n';
    for (std::size_t c = 0; c < sec.columns.size(); ++c) {
      os << (c ? "," : "") << csv_field(sec.columns[c]);
    }
    os << '\n';
    for (const auto& row : sec.rows) {
      for (std::size_t c = 0; c < row.size(); ++c) {
        os << (c ? "," : "") << csv_field(cell_text(row[c]));
      }
      os << '\n';
    }
  }
  return os.str();
}

std::string Report::render_json() const {
  std::ostringstream os;
  os << "{\"experiment\":\"" << json_escape(experiment_) << "\",";
  os << "\"trials\":" << trials_ << ",\"jobs\":" << jobs_ << ",";
  os << "\"sections\":[";
  for (std::size_t s = 0; s < sections_.size(); ++s) {
    const ReportSection& sec = sections_[s];
    if (s) os << ',';
    os << "{\"name\":\"" << json_escape(sec.name) << "\",\"columns\":[";
    for (std::size_t c = 0; c < sec.columns.size(); ++c) {
      if (c) os << ',';
      os << '"' << json_escape(sec.columns[c]) << '"';
    }
    os << "],\"rows\":[";
    for (std::size_t r = 0; r < sec.rows.size(); ++r) {
      if (r) os << ',';
      os << '[';
      for (std::size_t c = 0; c < sec.rows[r].size(); ++c) {
        const ReportCell& cell = sec.rows[r][c];
        if (c) os << ',';
        if (cell.is_number) {
          os << json_number(cell.number);
        } else {
          os << '"' << json_escape(cell.text) << '"';
        }
      }
      os << ']';
    }
    os << "]}";
  }
  os << "],\"notes\":[";
  for (std::size_t n = 0; n < notes_.size(); ++n) {
    if (n) os << ',';
    os << '"' << json_escape(notes_[n]) << '"';
  }
  os << "]}\n";
  return os.str();
}

std::string Report::render(ReportFormat format) const {
  switch (format) {
    case ReportFormat::kCsv: return render_csv();
    case ReportFormat::kJson: return render_json();
    case ReportFormat::kTable: break;
  }
  return render_table();
}

bool Report::emit(const CliOptions& options) const {
  const std::string rendered = render(options.format);
  std::fputs(rendered.c_str(), stdout);
  if (!options.output_path.empty()) {
    std::ofstream out(options.output_path);
    out << rendered;
    out.flush();
    if (!out.good()) {
      std::fprintf(stderr, "error: could not write report to '%s'\n",
                   options.output_path.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace fdb::sim
