// Tag-to-tag relaying for the network engine: the static hop topology
// and the knobs that drive it. An "out-of-range" tag — culled, i.e.
// beyond FleetConfig::cull_radius_m of every gateway — cannot reach a
// gateway in one hop; with relaying enabled it reaches one in 2-3 by
// re-reflecting through nearer tags:
//
//   gateway <── level-0 tag <── level-1 tag <── level-2 tag
//              (in range)      (culled, one    (culled, two
//                               hop out)        hops out)
//
// The topology is BFS over tag-tag links of at most `range_m`: level 0
// is the non-culled set, level n the still-unreached culled tags within
// range of a level n-1 tag, out to max_hops. A tag's *parent
// candidates* are its level-(n-1) neighbours sorted by (distance,
// index); which candidate currently carries its traffic is decided per
// trial by ETX-like per-link delivery stats (sim/network_sim.cpp), with
// consecutive failures — including losses deeper in the chain, the
// signal a dead gateway propagates back — triggering a re-parent that
// the existing failover/time-to-failover stats measure.
//
// Relaying requires the scheduled MAC (mac/schedule.hpp): a relay
// forwards a queued frame in its own dedicated cell, so forwarded
// traffic never contends with the fresh frames of its children. Hop
// delivery (child's reflection decoded *at the parent tag*) is judged
// by the same analytic envelope-swing margin the fleet classifier uses,
// in every fidelity mode — there is no sample-level receiver model at a
// tag, and using one rule everywhere keeps the modes' RNG streams and
// MAC evolution aligned. The final relay->gateway hop goes through the
// full gateway machinery, with analytic clear-deliver verdicts demoted
// to contested (one-sided-safe: relayed delivery is never claimed from
// the margin band alone; kHybrid escalates it to synthesis).
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "channel/scene.hpp"

namespace fdb::sim {

/// Relaying knobs carried inside NetworkSimConfig.
struct RelayConfig {
  bool enabled = false;

  /// Tag-to-tag radio range: only pairs this close can form a hop link.
  double range_m = 12.0;
  /// Total hops an originator's frame may take to a gateway (>= 2; 3 =
  /// up to two relays). Bounds the BFS depth, so deeper tags stay
  /// unreachable rather than forming unbounded chains.
  std::size_t max_hops = 3;
  /// Frames a relay will hold for forwarding; a hop that lands on a
  /// full queue is dropped (counted, never retransmitted).
  std::size_t queue_capacity = 4;
  /// Consecutive end-to-end failures of a child's current link before
  /// it re-parents onto the lowest-ETX candidate.
  std::size_t reparent_fail_streak = 2;
  /// Minimum analytic envelope-swing margin (dB over the target-BER
  /// SINR) for a tag-tag hop to deliver. Positive values keep the hop
  /// rule one-sided-safe against the unmodeled tag receiver.
  double min_margin_db = 3.0;

  /// Throws std::invalid_argument on non-positive range, max_hops < 2,
  /// a zero queue, a zero re-parent streak, or a non-finite margin.
  void validate() const;
};

/// Static hop topology over one deployment: BFS levels from the
/// non-culled set and per-tag parent-candidate lists. Immutable after
/// construction; all per-trial relay state (parents, ETX counters,
/// queues) lives inside NetworkSimulator::run_trial.
class RelayTopology {
 public:
  static constexpr std::size_t kUnreachable =
      std::numeric_limits<std::size_t>::max();

  RelayTopology() = default;

  /// `culled[k]` nonzero marks tag k outside every gateway's range (the
  /// simulator's culling result); `grid_cell_m` only tiles the neighbour
  /// index and never changes results.
  RelayTopology(std::span<const channel::Vec2> positions,
                std::span<const std::uint8_t> culled,
                const RelayConfig& config, double grid_cell_m);

  /// BFS hop distance of tag k from the in-range set: 0 = in range,
  /// n >= 1 = reaches a gateway in n+1 hops via relays, kUnreachable =
  /// no chain within range_m and max_hops.
  std::size_t level(std::size_t k) const { return level_.at(k); }
  bool reachable(std::size_t k) const {
    return level_.at(k) != kUnreachable;
  }

  /// Parent candidates of tag k: its level-(level(k)-1) neighbours,
  /// nearest first (ties to the lower index). Empty for level-0 and
  /// unreachable tags.
  std::span<const std::uint32_t> candidates(std::size_t k) const {
    return std::span<const std::uint32_t>(flat_).subspan(
        off_.at(k), off_.at(k + 1) - off_.at(k));
  }
  /// Start of tag k's candidate run inside the flat link array — the
  /// key for per-trial per-link state (ETX counters, hop gains).
  std::size_t link_offset(std::size_t k) const { return off_.at(k); }
  /// Total candidate links in the topology.
  std::size_t num_links() const { return flat_.size(); }

  /// Tags at level >= 1 with at least one candidate, ascending — the
  /// set whose frames resolve through the hop rule.
  std::span<const std::uint32_t> relay_children() const {
    return children_;
  }

 private:
  std::vector<std::size_t> level_;
  std::vector<std::uint32_t> flat_;  ///< candidate parent tag ids
  std::vector<std::uint32_t> off_;   ///< tag -> range into flat_
  std::vector<std::uint32_t> children_;
};

}  // namespace fdb::sim
