// Parameter-sweep scaffolding shared by the bench binaries. Every
// experiment (bench/e*.cpp) has the same shape — vary one knob
// (distance, asymmetry k, channel BER, frame size), run the link
// simulator at each point, print one table row — so the sweep helper
// plus log/lin spacing keeps each bench main declarative: build the
// axis, map it through a row function, print the Table.
//
// Since the ExperimentRunner refactor the sweep is built on the
// parallel engine: rows are computed via ExperimentRunner::map, so a
// row function whose work is self-contained parallelises across the
// axis while the table keeps axis order.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "sim/runner.hpp"
#include "util/table.hpp"

namespace fdb::sim {

/// Runs `row_fn` for every value in `values` through `runner`,
/// collecting table rows in axis order. Keeps the bench mains
/// declarative: sweep(runner, xs, fn).print(). `row_fn` must be safe to
/// call concurrently for distinct values.
template <typename T>
Table sweep(const ExperimentRunner& runner, std::vector<std::string> headers,
            const std::vector<T>& values,
            const std::function<std::vector<double>(const T&)>& row_fn) {
  Table table(std::move(headers));
  const auto rows = runner.map(
      values.size(), [&](std::size_t i) { return row_fn(values[i]); });
  for (const auto& row : rows) table.add_row_numeric(row);
  return table;
}

/// Serial convenience overload (single-job runner).
template <typename T>
Table sweep(std::vector<std::string> headers, const std::vector<T>& values,
            const std::function<std::vector<double>(const T&)>& row_fn) {
  return sweep(ExperimentRunner(1), std::move(headers), values, row_fn);
}

/// Logarithmically spaced values in [lo, hi], n points (lo, hi > 0).
/// n == 0 returns empty and n == 1 returns {lo}.
std::vector<double> logspace(double lo, double hi, std::size_t n);

/// Linearly spaced values in [lo, hi], n points.
/// n == 0 returns empty and n == 1 returns {lo}.
std::vector<double> linspace(double lo, double hi, std::size_t n);

}  // namespace fdb::sim
