// Parameter-sweep scaffolding shared by the bench binaries. Every
// experiment (bench/e*.cpp) has the same shape — vary one knob
// (distance, asymmetry k, channel BER, frame size), run the link
// simulator at each point, print one table row — so the sweep helper
// plus log/lin spacing keeps each bench main declarative: build the
// axis, map it through a row function, print the Table.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "util/table.hpp"

namespace fdb::sim {

/// Runs `row_fn` for every value in `values`, collecting table rows.
/// Keeps the bench mains declarative: sweep(xs, fn).print().
template <typename T>
Table sweep(std::vector<std::string> headers, const std::vector<T>& values,
            const std::function<std::vector<double>(const T&)>& row_fn) {
  Table table(std::move(headers));
  for (const T& v : values) {
    table.add_row_numeric(row_fn(v));
  }
  return table;
}

/// Logarithmically spaced values in [lo, hi], n points.
std::vector<double> logspace(double lo, double hi, std::size_t n);

/// Linearly spaced values in [lo, hi], n points.
std::vector<double> linspace(double lo, double hi, std::size_t n);

}  // namespace fdb::sim
