// Network-scale scenario engine: N backscatter tags contending for one
// or more receive gateways under one ambient illuminator, with the MAC
// driving *which tags reflect when* and the sample-level PHY deciding
// *what actually decodes*. This is the layer that turns the repo from a
// link reproduction into a network simulator:
//
//  * geometry comes from channel::Scene (positions -> per-link gains,
//    with reciprocal pair-keyed shadowing redrawn per trial),
//  * contention timing follows the slotted MAC of mac/collision.hpp
//    (TimeoutMac vs CollisionNotifyMac, binary-exponential backoff),
//    but delivery verdicts are NOT the abstract !collided flag: every
//    completed frame is synthesized as antenna states reflecting the
//    shared ambient carrier, summed at each gateway with the other
//    tags' reflections, envelope-detected through the RC front end and
//    decoded by the batched FdDataReceiver. Collisions therefore
//    corrupt real sample streams, and capture (a strong tag decoding
//    through a weak interferer) emerges instead of being assumed,
//  * receive diversity: `extra_gateways` adds receivers beyond the
//    primary one. Every gateway hears the same per-slot tag
//    reflections through its own Scene link gains, runs its own AWGN +
//    RC + FdDataReceiver chain, and a combining policy decides frame
//    delivery — kAnyGateway (macro-diversity: any decode counts) or
//    kBestGateway (the strongest tag->gateway link this trial is the
//    serving gateway and alone decides). Collision notifications are
//    per-gateway too: each gateway notifies after `notify_delay_slots`
//    plus a distance-scaled term, and a colliding tag aborts on the
//    earliest — i.e. the closest gateway's — notification,
//  * each tag carries a Harvester + Storage + EnergyLedger; when energy
//    gating is enabled a tag may only start a frame it can afford, and
//    browns out mid-frame if harvest cannot cover the switch drive.
//
// The sample-domain physics (carrier -> reflection -> link gain -> AWGN
// -> RC envelope) lives in the shared sim/synthesis.hpp engine; this
// file is the slot-domain orchestration shell over it. All per-trial
// synthesis scratch comes from a SynthArena, so steady-state trials do
// not touch the heap in the synthesis hot path.
//
// One slot = one protocol block-time (= one feedback slot of the rate
// asymmetry). A frame occupies ceil(burst_samples / slot_samples)
// slots. The CollisionNotify MAC aborts a collided tag on notification
// and spends one drain slot per frame waiting for the final block
// verdict; the Timeout MAC always transmits the whole frame and then
// idles through an ACK timeout.
//
// run_trial(i) is pure: all randomness derives from
// Rng::substream(seed, i), so the parallel ExperimentRunner merges
// bit-identical results at any --jobs (same contract as LinkSimulator).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "channel/backscatter.hpp"
#include "channel/pathloss.hpp"
#include "channel/scene.hpp"
#include "core/fd_modem.hpp"
#include "energy/harvester.hpp"
#include "energy/ledger.hpp"
#include "energy/storage.hpp"
#include "mac/collision.hpp"
#include "mac/policy.hpp"
#include "sim/faults.hpp"
#include "sim/fleet.hpp"
#include "sim/relay.hpp"
#include "sim/synthesis.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace fdb::sim {

/// One tag of the deployment.
struct NetworkTagConfig {
  channel::Vec2 position;
  double reflection_rho = 0.4;  // fraction of incident power reflected
};

/// How multiple gateways turn per-gateway decodes into one delivery
/// verdict.
enum class GatewayCombining {
  kAnyGateway,   ///< macro-diversity: delivered if any gateway decodes
  kBestGateway,  ///< selection: the strongest-link gateway alone decides
};

struct NetworkSimConfig {
  core::FdModemConfig modem = core::FdModemConfig::make();
  std::size_t payload_bytes = 64;  // per-frame payload (8 blocks default)

  // Geometry and power.
  channel::Vec2 ambient_position{0.0, 0.0};
  /// Primary gateway (gateway 0). Kept as a scalar so single-receiver
  /// configs read exactly as before.
  channel::Vec2 receiver_position{5.0, 0.0};
  /// Additional receive gateways (gateway 1..N). Empty = the classic
  /// single-receiver deployment.
  std::vector<channel::Vec2> extra_gateways;
  GatewayCombining combining = GatewayCombining::kAnyGateway;
  std::vector<NetworkTagConfig> tags;
  double tx_power_w = 1.0;  // ambient transmitter EIRP
  channel::LogDistanceModel pathloss{.reference_distance_m = 1.0,
                                     .reference_loss_db = 30.0,
                                     .exponent = 2.2,
                                     .shadowing_sigma_db = 0.0};
  std::uint64_t shadowing_seed = 0x5ce7e5eedULL;

  // Impairments.
  std::string carrier = "cw";     // "cw" | "ofdm_tv"
  std::string fading = "static";  // "static" | "rayleigh" | "rician"
  double noise_figure_db = 6.0;
  double noise_power_override_w = -1.0;  // >=0 replaces thermal estimate
  double envelope_cutoff_mult = 4.0;

  // MAC (slot-domain; slots are block-times). The kind selects a
  // mac::MacPolicy implementation — contention with BEB (kTimeout /
  // kCollisionNotify) or the TSCH-style scheduled slotframe
  // (kScheduled, mac/schedule.hpp).
  mac::MacKind mac_kind = mac::MacKind::kCollisionNotify;
  std::size_t notify_delay_slots = 2;
  /// Distance term of the per-gateway notification latency: gateway g
  /// notifies tag k `notify_delay_slots + round(dist(k, g) * this)`
  /// slots after the overlap begins, and the tag aborts on the earliest
  /// notification. 0 keeps the legacy distance-independent latency.
  double notify_slots_per_m = 0.0;
  std::size_t timeout_slots = 8;
  std::size_t backoff_min_slots = 4;
  std::size_t backoff_max_exponent = 6;
  /// Scheduled MAC only: dedicated cells of the slotframe (0 = one per
  /// tag, the contention-free default) and Orchestra-style shared retry
  /// cells (0 = retries reuse the dedicated cell).
  std::size_t sched_dedicated_cells = 0;
  std::size_t sched_shared_cells = 2;
  std::size_t slots_per_trial = 256;

  // Energy. Gating makes storage a hard constraint: frames need an
  // affordable energy budget up front and abort on mid-frame brownout.
  bool energy_gating = false;
  energy::HarvesterParams harvester{};
  energy::StorageParams storage{};
  energy::PowerProfile power{};

  // Hybrid-fidelity fleet engine: fidelity mode, verdict margin band,
  // spatial culling (sim/fleet.hpp). The default — kWaveform, no
  // culling — reproduces the historical simulator bit-for-bit.
  FleetConfig fleet{};

  // Fault injection (sim/faults.hpp): gateway outages, carrier sags,
  // burst interferers, tag hardware faults — deterministic per trial
  // from a salted side substream. The default (disabled) keeps every
  // trial bit-identical to the fault-free engine.
  FaultConfig faults{};

  // Tag-to-tag relaying (sim/relay.hpp): culled tags reach a gateway in
  // 2-3 hops through scheduled relays. Requires mac_kind == kScheduled
  // and a finite fleet.cull_radius_m (the culled set *is* the
  // out-of-range set relaying exists for). Disabled by default.
  RelayConfig relay{};

  // Dead-gateway failover (kBestGateway only): after this many
  // consecutive failed frames the tag blacklists its serving gateway
  // for a jittered, capped-exponential holdoff
  // (mac::failover_holdoff_slots) and re-selects the best remaining
  // link. 0 (the default) disables failover entirely.
  std::size_t failover_streak_frames = 0;
  std::size_t failover_holdoff_slots = 64;  ///< blacklist holdoff base
  std::size_t failover_max_exponent = 4;    ///< holdoff growth cap

  std::uint64_t seed = 1;

  double noise_power_w() const;
  /// Gateways including the primary: 1 + extra_gateways.size().
  std::size_t num_gateways() const { return 1 + extra_gateways.size(); }

  /// Rejects configurations that used to fail silently (empty tag set,
  /// non-positive transmit power, carrier/fading strings the factories
  /// would quietly map to a default arm). Throws std::invalid_argument
  /// with a message naming the offending field.
  void validate() const;
};

/// Per-tag counters; exact integer merges plus double accumulators, so
/// sharded trial runners combine partial summaries deterministically.
struct NetworkTagStats {
  std::uint64_t frames_attempted = 0;
  std::uint64_t frames_delivered = 0;
  std::uint64_t frames_collided = 0;  // failed & overlapped (incl. aborts)
  std::uint64_t frames_aborted = 0;   // notify-MAC aborts + brownouts
  std::uint64_t payload_bits_delivered = 0;
  std::uint64_t energy_outages = 0;   // gated starts + mid-frame brownouts
  double harvested_j = 0.0;
  double spent_j = 0.0;

  void merge(const NetworkTagStats& other);
};

/// One resolved frame attempt, logged when FleetConfig::record_frames
/// is set. In kWaveform mode `delivered` is the fully synthesized
/// verdict while `analytic`/`margin_db` come from the classifier run
/// alongside on identical trial state — the raw material of the
/// cross-fidelity property tests.
struct FrameRecord {
  std::uint32_t tag = 0;
  std::uint64_t start_slot = 0;
  bool overlapped = false;            ///< shared a slot with another tag
  LinkVerdict analytic = LinkVerdict::kContested;  ///< combined verdict
  /// Best per-gateway pessimistic margin over the relevant gateway set.
  double margin_db = 0.0;
  bool delivered = false;
  bool escalated = false;  ///< resolved by escalated synthesis (kHybrid)
};

/// Outcome of one trial (slots_per_trial block-times of network time).
struct NetworkTrialResult {
  std::vector<NetworkTagStats> tags;
  /// Per-gateway decode successes of resolved frames (a frame several
  /// gateways decode counts once per gateway) — the receive-diversity
  /// picture behind the combined delivery numbers.
  std::vector<std::uint64_t> gateway_decodes;
  std::uint64_t slots = 0;
  std::uint64_t busy_slots = 0;    // >=1 tag reflecting
  std::uint64_t useful_slots = 0;  // airtime of delivered frames
  /// Channel-centric waste: busy airtime that never became a delivered
  /// frame plus dead-air slots spent running out ACK timers / verdict
  /// drains. Always <= slots.
  std::uint64_t wasted_slots = 0;
  std::uint64_t collisions = 0;      // failed-and-overlapped frame attempts
  std::uint64_t sync_failures = 0;   // clean frames the PHY still lost
  /// Slots from the first overlapped slot of a losing frame to the slot
  /// its transmitter learned about the loss.
  RunningStats detect_latency_slots;

  // Fleet-engine accounting (zero in pure kWaveform runs without frame
  // recording). frames_resolved_analytic counts verdicts the margin
  // band settled; frames_escalated counts contested frames kHybrid
  // re-synthesized; frames_culled are resolved frames of tags outside
  // every gateway's interference range.
  std::uint64_t frames_resolved_analytic = 0;
  std::uint64_t frames_escalated = 0;
  std::uint64_t frames_culled = 0;
  /// Gateway-slots actually run through the sample-level synthesizer:
  /// n_gateways per slot in kWaveform, only escalated windows in
  /// kHybrid — the cost model behind the slots/s speedup.
  std::uint64_t gateway_slots_synthesized = 0;

  // Resilience accounting (all zero without fault injection). A frame
  // is "faulted" when its on-air window was exposed to any fault at a
  // relevant gateway (serving under kBestGateway, any otherwise); the
  // per-class loss counters tally failed frames by which fault classes
  // their window was exposed to — exposure, not causal attribution, so
  // a frame lost under both an outage and a sag counts in both.
  std::uint64_t faulted_frames_attempted = 0;
  std::uint64_t faulted_frames_delivered = 0;
  std::uint64_t frames_lost_outage = 0;
  std::uint64_t frames_lost_sag = 0;
  std::uint64_t frames_lost_interference = 0;
  std::uint64_t frames_lost_tag_fault = 0;
  /// Successful serving-gateway switches of the failover machine, plus
  /// relay re-parents (a child abandoning its current relay link).
  std::uint64_t failovers = 0;
  /// Slots from the first frame start of a failure streak to the slot
  /// the tag switched gateways (or relay parents).
  RunningStats time_to_failover_slots;

  // Relaying accounting (all zero with relaying disabled).
  std::uint64_t relay_tx_frames = 0;   ///< forward transmissions started
  std::uint64_t relay_rx_frames = 0;   ///< hops received and enqueued
  std::uint64_t relayed_delivered = 0; ///< forwarded frames delivered
  /// Frames lost inside the relay fabric: failed hops, full queues,
  /// aborted/browned-out forwards, and frames still queued at trial end.
  std::uint64_t relay_drops = 0;
  /// Hop count (originator to gateway) of relay-delivered frames.
  RunningStats relay_hops;

  /// Per-frame log; filled only when FleetConfig::record_frames.
  std::vector<FrameRecord> frames;
};

/// Aggregate over many trials; mergeable in chunk order (see
/// ExperimentRunner::run_chunked) with bit-identical results at any job
/// count.
struct NetworkSimSummary {
  std::vector<NetworkTagStats> tags;
  std::vector<std::uint64_t> gateway_decodes;
  std::uint64_t trials = 0;
  std::uint64_t slots = 0;
  std::uint64_t busy_slots = 0;
  std::uint64_t useful_slots = 0;
  std::uint64_t wasted_slots = 0;
  std::uint64_t collisions = 0;
  std::uint64_t sync_failures = 0;
  RunningStats detect_latency_slots;

  std::uint64_t frames_resolved_analytic = 0;
  std::uint64_t frames_escalated = 0;
  std::uint64_t frames_culled = 0;
  std::uint64_t gateway_slots_synthesized = 0;
  /// Per-trial escalated fraction (frames_escalated / resolved frames),
  /// one sample per trial that resolved at least one frame — the
  /// escalation-rate distribution of a hybrid run.
  RunningStats escalation_rate_trials;

  // Resilience aggregate (see NetworkTrialResult for semantics).
  std::uint64_t faulted_frames_attempted = 0;
  std::uint64_t faulted_frames_delivered = 0;
  std::uint64_t frames_lost_outage = 0;
  std::uint64_t frames_lost_sag = 0;
  std::uint64_t frames_lost_interference = 0;
  std::uint64_t frames_lost_tag_fault = 0;
  std::uint64_t failovers = 0;
  RunningStats time_to_failover_slots;

  std::uint64_t relay_tx_frames = 0;
  std::uint64_t relay_rx_frames = 0;
  std::uint64_t relayed_delivered = 0;
  std::uint64_t relay_drops = 0;
  RunningStats relay_hops;

  void add(const NetworkTrialResult& trial);
  void merge(const NetworkSimSummary& other);

  std::uint64_t frames_attempted() const;
  std::uint64_t frames_delivered() const;
  std::uint64_t bits_delivered() const;
  std::uint64_t energy_outages() const;

  /// Delivered / attempted (0 when nothing was attempted) — the
  /// headline receive-diversity metric of e12.
  double delivery_ratio() const;

  double wasted_airtime_fraction() const {
    return slots ? static_cast<double>(wasted_slots) /
                       static_cast<double>(slots)
                 : 0.0;
  }
  double goodput_slots_fraction() const {
    return slots ? static_cast<double>(useful_slots) /
                       static_cast<double>(slots)
                 : 0.0;
  }
  double mean_detect_latency_slots() const {
    return detect_latency_slots.mean();
  }
  /// Fraction of transmission intents blocked or killed by energy
  /// (outages / (outages + attempts)).
  double energy_outage_fraction() const;

  /// Escalated fraction of analytically screened frames across the
  /// whole run (0 when the fleet engine never ran).
  double escalation_rate() const {
    const std::uint64_t resolved = frames_resolved_analytic + frames_escalated;
    return resolved ? static_cast<double>(frames_escalated) /
                          static_cast<double>(resolved)
                    : 0.0;
  }
  /// Delivery ratio of fault-exposed frames (the headline graceful-
  /// degradation metric of e14; 0 when no frame saw a fault).
  double outage_delivery_ratio() const {
    return faulted_frames_attempted
               ? static_cast<double>(faulted_frames_delivered) /
                     static_cast<double>(faulted_frames_attempted)
               : 0.0;
  }
  /// Mean slots from a failure streak's first frame to the gateway
  /// switch (0 when failover never fired).
  double mean_time_to_failover_slots() const {
    return time_to_failover_slots.mean();
  }

  /// Synthesized gateway-slots / total gateway-slots — the fraction of
  /// the waveform cost a run actually paid (1.0 in kWaveform).
  double synthesized_slot_fraction() const {
    const std::uint64_t denom =
        slots * std::max<std::size_t>(std::size_t{1}, gateway_decodes.size());
    return denom ? static_cast<double>(gateway_slots_synthesized) /
                       static_cast<double>(denom)
                 : 0.0;
  }
};

/// Wall-clock decomposition of trial time, accumulated only when a
/// caller passes one to run_trial (e13's stage-breakdown section).
/// Pure measurement: results are bit-identical with or without it.
struct TrialStageTimes {
  double setup_s = 0.0;      ///< per-trial channel/MAC/arena table builds
  double slot_loop_s = 0.0;  ///< slot engine excl. verdicts/escalation
  double verdict_s = 0.0;    ///< frame resolution excl. escalation
  double escalate_s = 0.0;   ///< escalated synthesis + decode (kHybrid)

  void merge(const TrialStageTimes& other) {
    setup_s += other.setup_s;
    slot_loop_s += other.slot_loop_s;
    verdict_s += other.verdict_s;
    escalate_s += other.escalate_s;
  }
  double total_s() const {
    return setup_s + slot_loop_s + verdict_s + escalate_s;
  }
};

class NetworkSimulator {
 public:
  /// Throws std::invalid_argument when config.validate() does.
  explicit NetworkSimulator(NetworkSimConfig config);

  /// Runs one network trial on the active-set slot engine. Pure with
  /// respect to the simulator: all randomness (backoffs, payloads,
  /// channel draws, noise) derives from Rng::substream(config.seed,
  /// trial_index) inside the call and no member state is touched, so
  /// disjoint trials are safe to run concurrently on one simulator and
  /// results are independent of thread assignment. Synthesis scratch
  /// comes from a per-thread SynthArena, so steady-state trials do not
  /// allocate in the sample-domain hot path.
  NetworkTrialResult run_trial(std::uint64_t trial_index) const;

  /// As above with caller-provided synthesis scratch: the arena is
  /// reset on entry and only grows during warm-up. One arena per
  /// concurrent caller — the arena itself is not thread-safe. When
  /// `stages` is non-null the trial's wall-clock stage breakdown is
  /// accumulated into it (results are unaffected).
  NetworkTrialResult run_trial(std::uint64_t trial_index, SynthArena& arena,
                               TrialStageTimes* stages = nullptr) const;

  /// The retained per-slot reference engine: every slot scans all tags
  /// (MAC countdown decrements, full energy sweep, interference-sum
  /// rows) exactly as the pre-active-set simulator did. Same purity and
  /// determinism contracts as run_trial, and bit-identical results —
  /// tests/sim/active_set_test.cpp pins the two engines EXPECT_EQ
  /// across scenario x MAC x fault x energy-gating configs.
  NetworkTrialResult run_trial_reference(std::uint64_t trial_index) const;
  NetworkTrialResult run_trial_reference(std::uint64_t trial_index,
                                         SynthArena& arena,
                                         TrialStageTimes* stages =
                                             nullptr) const;

  /// Runs trials [0, n) serially and aggregates. Equivalent trial-set
  /// to ExperimentRunner::run_chunked at any job count.
  NetworkSimSummary run(std::size_t n) const;

  const NetworkSimConfig& config() const { return config_; }
  const channel::Scene& scene() const { return scene_; }
  /// The MAC policy the slot loop delegates to (mac/policy.hpp).
  const mac::MacPolicy& policy() const { return *policy_; }

  std::size_t num_tags() const { return config_.tags.size(); }
  std::size_t num_gateways() const { return gateway_device_.size(); }
  /// One slot = one block-time = one feedback slot of the asymmetry.
  std::size_t slot_samples() const { return slot_samples_; }
  std::size_t frame_slots() const { return frame_slots_; }
  double slot_seconds() const;
  /// Up-front energy budget a gated tag needs before starting a frame.
  double frame_cost_j() const { return frame_cost_j_; }
  /// Scene device index of tag k (for gain queries in reports/tests).
  std::size_t tag_device(std::size_t k) const { return tag_device_.at(k); }
  std::size_t ambient_device() const { return ambient_device_; }
  /// Scene device index of gateway g; gateway 0 is receiver_position.
  std::size_t gateway_device(std::size_t g) const {
    return gateway_device_.at(g);
  }
  std::size_t receiver_device() const { return gateway_device_[0]; }
  /// Geometrically nearest gateway to tag k (reports; the in-trial
  /// serving gateway additionally reflects fading/shadowing draws).
  std::size_t nearest_gateway(std::size_t k) const;
  /// Slots from overlap start until tag k hears the earliest gateway's
  /// collision notification.
  std::size_t notify_latency_slots(std::size_t k) const {
    return notify_slots_.at(k);
  }
  /// Slots from overlap start until gateway g's notification reaches
  /// tag k (the per-gateway latencies behind the minimum above; the
  /// fault engine consults them when an outage silences a gateway).
  std::size_t notify_latency_slots(std::size_t k, std::size_t g) const {
    return notify_pg_.at(k * gateway_device_.size() + g);
  }
  /// The fault injector compiled from NetworkSimConfig::faults.
  const FaultInjector& fault_injector() const { return injector_; }
  /// Whether tag k is inside FleetConfig::cull_radius_m of gateway g
  /// (always true with the default infinite radius).
  bool tag_in_range(std::size_t k, std::size_t g) const {
    return in_range_.at(k * gateway_device_.size() + g) != 0;
  }
  /// Whether tag k is outside interference range of *every* gateway.
  bool tag_culled(std::size_t k) const { return culled_.at(k) != 0; }
  /// Number of culled tags in the deployment.
  std::size_t num_culled() const { return num_culled_; }
  /// The static hop topology (empty levels when relaying is disabled).
  const RelayTopology& relay_topology() const { return relay_topo_; }

 private:
  /// Both engines share one templated trial body; `ActiveSet` selects
  /// the wake-bucket/event-driven machinery (true, run_trial) or the
  /// historical per-slot scans (false, run_trial_reference) at the few
  /// points where they differ. Everything else — RNG draw order, frame
  /// resolution, fault handling — is literally the same code.
  template <bool ActiveSet>
  NetworkTrialResult run_trial_impl(std::uint64_t trial_index,
                                    SynthArena& arena,
                                    TrialStageTimes* stages) const;

  NetworkSimConfig config_;
  channel::Scene scene_;
  std::size_t ambient_device_ = 0;
  std::vector<std::size_t> gateway_device_;
  std::vector<std::size_t> tag_device_;
  core::FdDataTransmitter tx_;
  core::FdDataReceiver rx_;
  std::vector<channel::BackscatterModulator> modulators_;
  energy::Harvester harvester_;
  WaveformSynthesizer synth_;
  /// Per-slot MAC decisions, extracted behind mac::MacPolicy. Immutable
  /// after construction and shared by concurrent trials (all per-trial
  /// MAC state lives in the trial's mac::TagMacState instances); shared
  /// ownership keeps the simulator copyable.
  std::shared_ptr<const mac::MacPolicy> policy_;
  std::vector<std::size_t> notify_slots_;  ///< per-tag earliest notify
  std::vector<std::size_t> notify_pg_;     ///< [tag * n_gw + gw] latency
  FaultInjector injector_;
  std::size_t slot_samples_ = 0;
  std::size_t burst_samples_ = 0;
  std::size_t frame_slots_ = 0;
  double frame_cost_j_ = 0.0;

  // Fleet engine (sim/fleet.hpp): the margin classifier and the
  // culling-grid results, both fixed at construction.
  FleetResolver resolver_;
  std::vector<std::uint8_t> in_range_;  ///< [tag * n_gw + gw] within radius
  std::vector<std::uint8_t> culled_;    ///< [tag] out of range everywhere
  std::size_t num_culled_ = 0;

  // Relaying (sim/relay.hpp): hop levels + parent candidates, built
  // from the culling result at construction.
  RelayTopology relay_topo_;

  // Harvest fractions of each tag's modulator (idle = absorb state,
  // active = mean of the two switch positions) — trial-invariant in
  // every mode, precomputed so the energy path stops re-asking the
  // modulator per (tag, slot).
  std::vector<double> hf_idle_;
  std::vector<double> hf_act_;

  // Static-channel cache: with static fading and shadowing disabled
  // every per-trial channel quantity is trial-invariant (StaticFading
  // consumes no randomness and Scene::amplitude_gain no longer depends
  // on the coherence block), so the gain/coupling/swing tables and the
  // per-slot harvest increments are computed once at construction by
  // the same expressions the per-trial build uses. Trials point spans
  // at these vectors instead of rebuilding them — bit-identical values
  // and zero RNG draws skipped.
  bool static_channel_ = false;
  std::vector<cf32> st_h_sr_;      ///< ambient -> gateway leakage
  std::vector<cf32> st_h_st_;      ///< ambient -> tag (incl. tx power)
  std::vector<cf32> st_h_tr_;      ///< tag -> gateway, tag-major
  std::vector<cf32> st_coup_on_;   ///< composed reflect coupling
  std::vector<cf32> st_coup_off_;  ///< composed absorb coupling
  std::vector<float> st_delta_;    ///< per-(tag, gw) envelope swing
  std::vector<float> st_half_;     ///< in-range-masked half swings (SoA)
  std::vector<float> st_delta_tt_;      ///< tag-tag relay swings
  std::vector<std::size_t> st_serving_; ///< best-link gateway per tag
  std::vector<double> st_h_idle_;  ///< per-slot idle harvest increment
  std::vector<double> st_h_act_;   ///< per-slot reflecting increment
  /// Full-trial fold of slots_per_trial idle harvest adds per tag: the
  /// harvested_j of a tag that never transmits, in one lookup.
  std::vector<double> st_idle_sum_;
};

}  // namespace fdb::sim
