// Hybrid-fidelity fleet engine: the analytic slot resolver and spatial
// culling index that let NetworkSimulator scale to thousands of tags.
//
// The waveform path synthesizes O(tags x gateways x samples) per slot —
// exact, but it caps scenes at dozens of tags. The observation behind
// the hybrid engine is that in a large deployment almost every frame's
// fate is obvious from its link budget: a tag 4 m from a gateway with
// no concurrent reflector delivers, a tag 30 m out never syncs. Only
// the contested sliver in between — marginal SINR, capture fights,
// deep-fade edges — needs the sample-level physics.
//
// Per completed frame and gateway the resolver computes two analytic
// margins from the *same* complex per-trial couplings the synthesizer
// folds in (fading, shadowing, reflection states included):
//
//   pessimistic: worst-case coherent sum of every concurrent in-range
//                interferer's swing lands on the decision statistic,
//   optimistic:  zero interference, noise only.
//
// and classifies one-sided-safely:
//
//        margin (dB, vs the target-BER SINR)
//   ------------------------------------------------------------>
//   ... -fail_margin ......... 0 .......... +deliver_margin ...
//    clear-fail  |        contested          |  clear-deliver
//   (optimistic  |  (escalate to waveform    |  (pessimistic
//    misses it)  |   synthesis in kHybrid)   |   clears it)
//
// A frame is clear-deliver only if even the pessimistic margin clears
// the band, clear-fail only if even the optimistic one misses it —
// every model error lives inside the contested band, which kHybrid
// escalates to the real WaveformSynthesizer. The cross-fidelity test
// suite (tests/sim/cross_fidelity_test.cpp) holds the classifier to
// that contract frame-for-frame against full synthesis.
//
// The CullingGrid is a uniform 2D bin index over tag positions: tags
// beyond `cull_radius_m` of every gateway are outside interference
// range — they contribute nothing to any gateway's interferer sum and
// are skipped by escalated synthesis, so a 10k-tag scene pays per slot
// only for the tags a gateway can actually hear.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "channel/scene.hpp"
#include "util/types.hpp"

namespace fdb::sim {

/// How NetworkSimulator resolves frame verdicts.
enum class FidelityMode {
  kWaveform,  ///< every slot synthesized sample-level (exact, slow)
  kAnalytic,  ///< every verdict from the analytic margin (fast, approximate)
  kHybrid,    ///< analytic clear verdicts; contested frames escalate
};

/// Stable lowercase name for reports and CLI surfaces.
const char* fidelity_name(FidelityMode mode);

/// Analytic verdict class of one frame (see file header diagram).
enum class LinkVerdict {
  kClearDeliver,  ///< pessimistic margin >= +deliver_margin_db
  kClearFail,     ///< optimistic margin <= -fail_margin_db
  kContested,     ///< in the band: only synthesis can tell
};

/// Fleet-engine policy knobs carried inside NetworkSimConfig.
struct FleetConfig {
  FidelityMode fidelity = FidelityMode::kWaveform;

  /// Upper edge of the contested band: a frame is clear-deliver only
  /// when its *pessimistic* margin is at least this many dB above the
  /// target-BER SINR. 6 dB puts the worst-case chip BER near 1e-9 —
  /// a ~64-byte frame succeeds with probability 1 - O(1e-6).
  double deliver_margin_db = 6.0;
  /// Lower edge: clear-fail only when the *optimistic* margin is at
  /// least this many dB below threshold. 5 dB below a 1e-3 target puts
  /// chip BER above ~2.5e-2 — frame success probability ~e^-20.
  double fail_margin_db = 5.0;
  /// BER whose required SINR anchors margin == 0. 1e-3 sits near the
  /// 50% frame-success point of the default 64-byte frame, centering
  /// the contested band on the verdict boundary.
  double analytic_target_ber = 1e-3;

  /// Interference range: tags farther than this from a gateway neither
  /// interfere at it nor get folded into escalated synthesis there.
  /// Infinity (the default) disables culling entirely.
  double cull_radius_m = std::numeric_limits<double>::infinity();
  /// Bin size of the culling grid. Only a tiling knob — results are
  /// independent of it; ~cull_radius/3 is a good choice.
  double grid_cell_m = 8.0;

  /// Log a FrameRecord per resolved frame into NetworkTrialResult. In
  /// kWaveform mode the analytic classifier then runs *alongside* full
  /// synthesis on identical trial state, which is how the property
  /// tests replay clear verdicts against ground truth.
  bool record_frames = false;

  /// Rejects negative or non-finite margin bands, a zero/negative
  /// culling radius or grid cell, and (for the analytic-path modes and
  /// record_frames) an analytic_target_ber outside (0, 0.5) — such a
  /// target has no required SINR, so the clear-fail threshold would sit
  /// above clear-deliver. Throws std::invalid_argument.
  void validate() const;
};

/// Margin computation + classification for one (frame, gateway) link.
/// Immutable; captures the receiver's envelope-noise sigma and the
/// per-chip integration length once per simulator.
class FleetResolver {
 public:
  FleetResolver() = default;
  FleetResolver(const FleetConfig& config, double noise_sigma,
                std::size_t n_avg);

  /// Margin (dB) of swing `delta_env` over the target-BER SINR against
  /// `interferer_env_sum` of worst-case concurrent swing.
  double margin_db(double delta_env, double interferer_env_sum) const;

  /// One-sided-safe verdict: pessimistic margin for clear-deliver,
  /// optimistic (zero-interference) margin for clear-fail.
  LinkVerdict classify(double delta_env,
                       double worst_interferer_env_sum) const;

  /// Fault-aware variant with a split swing band: the pessimistic arm
  /// uses the worst-case swing a fault schedule leaves over the frame
  /// window (`delta_env_pess`, e.g. swing x min carrier/gateway scale),
  /// the optimistic arm the best case (`delta_env_opt`). With both
  /// deltas equal this is exactly classify(delta, interf) — the
  /// fault-free path never pays for the generality.
  LinkVerdict classify(double delta_env_pess, double delta_env_opt,
                       double worst_interferer_env_sum) const;

  double required_sinr() const { return required_sinr_; }

 private:
  double deliver_margin_db_ = 6.0;
  double fail_margin_db_ = 5.0;
  double noise_sigma_ = 1.0;
  std::size_t n_avg_ = 1;
  double required_sinr_ = 1.0;
};

/// Uniform 2D bin index over a fixed point set. Queries enumerate only
/// the bins a disk overlaps, then exact-distance filter; results are
/// sorted indices, so iteration order — and everything downstream of
/// it — is deterministic regardless of build or query history.
class CullingGrid {
 public:
  /// Indexes `points` with square bins of `cell_m` (> 0) on the
  /// points' bounding box. An empty point set is allowed.
  CullingGrid(std::span<const channel::Vec2> points, double cell_m);

  /// Indices of all points within `radius_m` of `center` (inclusive),
  /// ascending. An infinite radius returns every point.
  std::vector<std::uint32_t> within(channel::Vec2 center,
                                    double radius_m) const;

  /// `within`, but clears and fills a caller-owned buffer so repeated
  /// queries (relay topology build, per-gateway culling) reuse one
  /// allocation instead of paying a heap round-trip per query.
  void within_into(channel::Vec2 center, double radius_m,
                   std::vector<std::uint32_t>& out) const;

  std::size_t num_points() const { return points_.size(); }

 private:
  std::vector<channel::Vec2> points_;
  std::vector<std::uint32_t> order_;    ///< point indices grouped by bin
  std::vector<std::uint32_t> bin_off_;  ///< bin -> range into order_
  double cell_m_ = 1.0;
  double min_x_ = 0.0;
  double min_y_ = 0.0;
  std::size_t nx_ = 0;
  std::size_t ny_ = 0;
};

}  // namespace fdb::sim
