#include "sim/network_sim.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <cstring>
#include <limits>
#include <memory>
#include <stdexcept>
#include <utility>

#include "channel/ambient_source.hpp"
#include "channel/fading.hpp"
#include "channel/impairments.hpp"
#include "dsp/envelope.hpp"
#include "sim/link_budget.hpp"

namespace fdb::sim {
namespace {

/// Runtime state of one tag inside a trial. The slot-domain machine
/// mirrors mac/collision.cpp, but verdicts come from the PHY decode of
/// the synthesized gateway streams instead of the abstract collided
/// flag, and starts are gated by the energy store.
struct TagRt {
  enum class St { kBackoff, kTx, kWaitVerdict };
  St st = St::kBackoff;
  std::size_t counter = 0;   // slots remaining in backoff / verdict wait
  std::size_t progress = 0;  // on-air slots of the current frame
  mac::TagMacState mac;      // policy state (failure class / BEB exponent)
  bool wait_entered_now = false;  // skip the tick the slot we enter wait
  bool brownout_now = false;      // energy ran out during this slot

  // Current frame attempt.
  std::vector<std::uint8_t> payload;
  std::vector<std::uint8_t> states;  // per-sample antenna states
  std::uint64_t start_slot = 0;
  bool overlapped = false;
  std::uint64_t overlap_start = 0;
  std::uint32_t frame_id = 0;  // index into the hybrid-mode frame log

  // Relaying: set when the current frame is a forward of another tag's
  // traffic rather than fresh local data.
  bool forwarding = false;
  std::uint32_t fwd_originator = 0;
  std::uint32_t fwd_hops = 0;  // hops the forward has already taken

  energy::Storage storage;
  energy::EnergyLedger ledger;

  TagRt(const energy::StorageParams& sp, const energy::PowerProfile& pp)
      : storage(sp), ledger(pp) {}
};

/// One started frame in the hybrid-mode log. The analytic fast path
/// never modulates antenna states; an escalated window regenerates them
/// on demand from the logged payload (tx_.modulate is deterministic)
/// and memoizes, so repeat escalations touching the same interferer
/// frame pay the modulation once.
struct FrameLog {
  std::uint32_t tag = 0;
  std::uint64_t start_slot = 0;
  std::vector<std::uint8_t> payload;
  std::vector<std::uint8_t> states;  // empty until first escalation
};

/// One frame sitting in a relay's forwarding queue, waiting for the
/// relay's next owned slotframe cell.
struct QueuedFrame {
  std::uint32_t originator = 0;  // tag whose fresh frame this carries
  std::uint32_t hops = 0;        // hops taken to reach this queue
  std::vector<std::uint8_t> payload;
};

}  // namespace

double NetworkSimConfig::noise_power_w() const {
  if (noise_power_override_w >= 0.0) return noise_power_override_w;
  return channel::thermal_noise_power(modem.data.rates.sample_rate_hz,
                                      noise_figure_db);
}

void NetworkSimConfig::validate() const {
  if (tags.empty()) {
    throw std::invalid_argument(
        "NetworkSimConfig: tags must be non-empty (a network needs at "
        "least one tag)");
  }
  if (!(tx_power_w > 0.0)) {
    throw std::invalid_argument(
        "NetworkSimConfig: tx_power_w must be positive, got " +
        std::to_string(tx_power_w));
  }
  if (carrier != "cw" && carrier != "ofdm_tv") {
    throw std::invalid_argument(
        "NetworkSimConfig: unknown carrier \"" + carrier +
        "\" (expected \"cw\" or \"ofdm_tv\")");
  }
  if (fading != "static" && fading != "rayleigh" && fading != "rician") {
    throw std::invalid_argument(
        "NetworkSimConfig: unknown fading \"" + fading +
        "\" (expected \"static\", \"rayleigh\" or \"rician\")");
  }
  if (slots_per_trial == 0) {
    throw std::invalid_argument(
        "NetworkSimConfig: slots_per_trial must be positive (a trial "
        "needs at least one slot)");
  }
  if (!(notify_slots_per_m >= 0.0)) {
    throw std::invalid_argument(
        "NetworkSimConfig: notify_slots_per_m must be non-negative, got " +
        std::to_string(notify_slots_per_m));
  }
  relay.validate();
  if (relay.enabled) {
    if (mac_kind != mac::MacKind::kScheduled) {
      throw std::invalid_argument(
          "NetworkSimConfig: relaying requires the scheduled MAC (a relay "
          "forwards in its own slotframe cell; under a contention MAC the "
          "forwards would collide with the children they serve)");
    }
    if (!std::isfinite(fleet.cull_radius_m)) {
      throw std::invalid_argument(
          "NetworkSimConfig: relaying requires a finite "
          "fleet.cull_radius_m (the culled set is the out-of-range set "
          "relays exist to reach)");
    }
  }
  if (failover_streak_frames > 0 &&
      combining != GatewayCombining::kBestGateway) {
    throw std::invalid_argument(
        "NetworkSimConfig: failover_streak_frames requires kBestGateway "
        "combining (any-gateway delivery has no serving gateway to fail "
        "over from)");
  }
  fleet.validate();
  faults.validate();
}

void NetworkTagStats::merge(const NetworkTagStats& other) {
  frames_attempted += other.frames_attempted;
  frames_delivered += other.frames_delivered;
  frames_collided += other.frames_collided;
  frames_aborted += other.frames_aborted;
  payload_bits_delivered += other.payload_bits_delivered;
  energy_outages += other.energy_outages;
  harvested_j += other.harvested_j;
  spent_j += other.spent_j;
}

void NetworkSimSummary::add(const NetworkTrialResult& trial) {
  if (tags.empty()) tags.resize(trial.tags.size());
  assert(tags.size() == trial.tags.size());
  for (std::size_t k = 0; k < tags.size(); ++k) tags[k].merge(trial.tags[k]);
  if (gateway_decodes.empty()) {
    gateway_decodes.resize(trial.gateway_decodes.size());
  }
  assert(gateway_decodes.size() == trial.gateway_decodes.size());
  for (std::size_t g = 0; g < gateway_decodes.size(); ++g) {
    gateway_decodes[g] += trial.gateway_decodes[g];
  }
  ++trials;
  slots += trial.slots;
  busy_slots += trial.busy_slots;
  useful_slots += trial.useful_slots;
  wasted_slots += trial.wasted_slots;
  collisions += trial.collisions;
  sync_failures += trial.sync_failures;
  detect_latency_slots.merge(trial.detect_latency_slots);
  frames_resolved_analytic += trial.frames_resolved_analytic;
  frames_escalated += trial.frames_escalated;
  frames_culled += trial.frames_culled;
  gateway_slots_synthesized += trial.gateway_slots_synthesized;
  const std::uint64_t resolved =
      trial.frames_resolved_analytic + trial.frames_escalated;
  if (resolved) {
    escalation_rate_trials.add(static_cast<double>(trial.frames_escalated) /
                               static_cast<double>(resolved));
  }
  faulted_frames_attempted += trial.faulted_frames_attempted;
  faulted_frames_delivered += trial.faulted_frames_delivered;
  frames_lost_outage += trial.frames_lost_outage;
  frames_lost_sag += trial.frames_lost_sag;
  frames_lost_interference += trial.frames_lost_interference;
  frames_lost_tag_fault += trial.frames_lost_tag_fault;
  failovers += trial.failovers;
  time_to_failover_slots.merge(trial.time_to_failover_slots);
  relay_tx_frames += trial.relay_tx_frames;
  relay_rx_frames += trial.relay_rx_frames;
  relayed_delivered += trial.relayed_delivered;
  relay_drops += trial.relay_drops;
  relay_hops.merge(trial.relay_hops);
}

void NetworkSimSummary::merge(const NetworkSimSummary& other) {
  if (other.trials == 0) return;
  if (tags.empty()) tags.resize(other.tags.size());
  assert(tags.size() == other.tags.size());
  for (std::size_t k = 0; k < tags.size(); ++k) tags[k].merge(other.tags[k]);
  if (gateway_decodes.empty()) {
    gateway_decodes.resize(other.gateway_decodes.size());
  }
  assert(gateway_decodes.size() == other.gateway_decodes.size());
  for (std::size_t g = 0; g < gateway_decodes.size(); ++g) {
    gateway_decodes[g] += other.gateway_decodes[g];
  }
  trials += other.trials;
  slots += other.slots;
  busy_slots += other.busy_slots;
  useful_slots += other.useful_slots;
  wasted_slots += other.wasted_slots;
  collisions += other.collisions;
  sync_failures += other.sync_failures;
  detect_latency_slots.merge(other.detect_latency_slots);
  frames_resolved_analytic += other.frames_resolved_analytic;
  frames_escalated += other.frames_escalated;
  frames_culled += other.frames_culled;
  gateway_slots_synthesized += other.gateway_slots_synthesized;
  escalation_rate_trials.merge(other.escalation_rate_trials);
  faulted_frames_attempted += other.faulted_frames_attempted;
  faulted_frames_delivered += other.faulted_frames_delivered;
  frames_lost_outage += other.frames_lost_outage;
  frames_lost_sag += other.frames_lost_sag;
  frames_lost_interference += other.frames_lost_interference;
  frames_lost_tag_fault += other.frames_lost_tag_fault;
  failovers += other.failovers;
  time_to_failover_slots.merge(other.time_to_failover_slots);
  relay_tx_frames += other.relay_tx_frames;
  relay_rx_frames += other.relay_rx_frames;
  relayed_delivered += other.relayed_delivered;
  relay_drops += other.relay_drops;
  relay_hops.merge(other.relay_hops);
}

std::uint64_t NetworkSimSummary::frames_attempted() const {
  std::uint64_t n = 0;
  for (const auto& t : tags) n += t.frames_attempted;
  return n;
}

std::uint64_t NetworkSimSummary::frames_delivered() const {
  std::uint64_t n = 0;
  for (const auto& t : tags) n += t.frames_delivered;
  return n;
}

std::uint64_t NetworkSimSummary::bits_delivered() const {
  std::uint64_t n = 0;
  for (const auto& t : tags) n += t.payload_bits_delivered;
  return n;
}

std::uint64_t NetworkSimSummary::energy_outages() const {
  std::uint64_t n = 0;
  for (const auto& t : tags) n += t.energy_outages;
  return n;
}

double NetworkSimSummary::delivery_ratio() const {
  const std::uint64_t attempted = frames_attempted();
  return attempted ? static_cast<double>(frames_delivered()) /
                         static_cast<double>(attempted)
                   : 0.0;
}

double NetworkSimSummary::energy_outage_fraction() const {
  const std::uint64_t outages = energy_outages();
  const std::uint64_t denom = outages + frames_attempted();
  return denom ? static_cast<double>(outages) / static_cast<double>(denom)
               : 0.0;
}

NetworkSimulator::NetworkSimulator(NetworkSimConfig config)
    : config_(std::move(config)),
      scene_(config_.pathloss, config_.shadowing_seed),
      tx_(config_.modem),
      rx_(config_.modem),
      harvester_(config_.harvester),
      synth_(config_.modem.data.rates, config_.envelope_cutoff_mult) {
  config_.validate();
  assert(config_.modem.consistent());

  ambient_device_ = scene_.add_device(
      {"ambient", channel::DeviceKind::kAmbientTx, config_.ambient_position});
  // Device order is part of the determinism contract: the pair-keyed
  // shadowing substream hashes device indices, so extra gateways append
  // AFTER the tags — a single-gateway deployment keeps every historical
  // index (ambient 0, rx 1, tags 2..) and therefore every shadowing
  // draw.
  gateway_device_.push_back(scene_.add_device(
      {"rx", channel::DeviceKind::kReceiver, config_.receiver_position}));
  tag_device_.reserve(config_.tags.size());
  modulators_.reserve(config_.tags.size());
  for (std::size_t k = 0; k < config_.tags.size(); ++k) {
    tag_device_.push_back(scene_.add_device({"tag" + std::to_string(k),
                                             channel::DeviceKind::kTag,
                                             config_.tags[k].position}));
    modulators_.emplace_back(
        channel::ReflectionStates::ook(config_.tags[k].reflection_rho));
  }
  for (std::size_t g = 0; g < config_.extra_gateways.size(); ++g) {
    gateway_device_.push_back(
        scene_.add_device({"gw" + std::to_string(g + 1),
                           channel::DeviceKind::kReceiver,
                           config_.extra_gateways[g]}));
  }

  // Per-tag earliest collision-notification latency: each gateway
  // notifies mac::notify_latency_slots(base, distance, slope) after the
  // overlap begins; the tag aborts on whichever arrives first (the
  // closest gateway's).
  notify_slots_.reserve(config_.tags.size());
  notify_pg_.reserve(config_.tags.size() * gateway_device_.size());
  for (std::size_t k = 0; k < config_.tags.size(); ++k) {
    std::size_t best = SIZE_MAX;
    for (const std::size_t gw : gateway_device_) {
      const double dist = channel::distance_m(
          scene_.device(tag_device_[k]).position, scene_.device(gw).position);
      const std::size_t lat = mac::notify_latency_slots(
          config_.notify_delay_slots, dist, config_.notify_slots_per_m);
      notify_pg_.push_back(lat);
      best = std::min(best, lat);
    }
    notify_slots_.push_back(best);
  }

  const auto& rates = config_.modem.data.rates;
  slot_samples_ = rates.samples_per_feedback_bit();
  burst_samples_ = tx_.burst_samples(config_.payload_bytes);
  frame_slots_ = (burst_samples_ + slot_samples_ - 1) / slot_samples_;
  frame_cost_j_ = static_cast<double>(frame_slots_) * slot_seconds() *
                  config_.power.backscattering_w;

  // MAC policy: every per-slot medium-access decision of the slot loop
  // below is delegated here. The scheduled kind sizes its slotframe
  // cells off frame_slots_, so this must follow the rate derivation.
  policy_ = mac::make_mac_policy(
      config_.mac_kind,
      {.contention = {.timeout_slots = config_.timeout_slots,
                      .backoff_min_slots = config_.backoff_min_slots,
                      .backoff_max_exponent = config_.backoff_max_exponent},
       .num_tags = config_.tags.size(),
       .frame_slots = frame_slots_,
       .dedicated_cells = config_.sched_dedicated_cells,
       .shared_cells = config_.sched_shared_cells});

  // Fault injector: compiled once against this deployment. Per-trial
  // plans come from a salted side substream, so fault randomness never
  // perturbs the main trial draws.
  injector_ = FaultInjector(config_.faults, config_.seed,
                            gateway_device_.size(), config_.tags.size(),
                            config_.slots_per_trial, slot_samples_,
                            rates.samples_per_chip,
                            std::sqrt(config_.noise_power_w() / 2.0));

  // Fleet engine: margin classifier (only built when a mode uses it —
  // kWaveform without frame recording may carry an unchecked target
  // BER) and the spatial-culling index. Each gateway queries its
  // interference disk out of the tag-position grid; the union defines
  // the per-(tag, gateway) in-range mask and the culled set.
  const bool classifier_used =
      config_.fleet.fidelity != FidelityMode::kWaveform ||
      config_.fleet.record_frames;
  if (classifier_used) {
    resolver_ = FleetResolver(config_.fleet,
                              std::sqrt(config_.noise_power_w() / 2.0),
                              rates.samples_per_chip);
  }
  const std::size_t n_gw = gateway_device_.size();
  in_range_.assign(config_.tags.size() * n_gw, 0);
  culled_.assign(config_.tags.size(), 1);
  {
    std::vector<channel::Vec2> positions(config_.tags.size());
    for (std::size_t k = 0; k < positions.size(); ++k) {
      positions[k] = config_.tags[k].position;
    }
    const CullingGrid grid(positions, config_.fleet.grid_cell_m);
    std::vector<std::uint32_t> hits;
    for (std::size_t g = 0; g < n_gw; ++g) {
      grid.within_into(scene_.device(gateway_device_[g]).position,
                       config_.fleet.cull_radius_m, hits);
      for (const std::uint32_t k : hits) {
        in_range_[k * n_gw + g] = 1;
        culled_[k] = 0;
      }
    }
    // Relay topology: BFS hop levels out of the in-range set just
    // computed, plus each culled tag's parent-candidate list.
    relay_topo_ = RelayTopology(positions, culled_, config_.relay,
                                config_.fleet.grid_cell_m);
  }
  num_culled_ = static_cast<std::size_t>(
      std::count(culled_.begin(), culled_.end(), std::uint8_t{1}));

  // Harvest fractions are pure functions of the modulator's reflection
  // states, hence trial-invariant in every mode.
  hf_idle_.resize(config_.tags.size());
  hf_act_.resize(config_.tags.size());
  for (std::size_t k = 0; k < config_.tags.size(); ++k) {
    hf_idle_[k] = modulators_[k].harvest_fraction(false);
    // Reflecting alternates absorb/reflect roughly half the time, so
    // the harvester sees the mean of the two fractions (the exact
    // expression the per-slot energy sweep historically evaluated).
    hf_act_[k] = 0.5 * (modulators_[k].harvest_fraction(false) +
                        modulators_[k].harvest_fraction(true));
  }

  // Static-channel cache (see the header): every expression below is
  // copied verbatim from the per-trial build with fade_draw() replaced
  // by StaticFading's exact {1, 0} gain and the coherence block pinned
  // to 0 — with shadowing disabled amplitude_gain ignores the block, so
  // the cached values are bit-identical to what any trial would build.
  static_channel_ = config_.fading == "static" &&
                    config_.pathloss.shadowing_sigma_db == 0.0;
  if (static_channel_) {
    const std::size_t n_tags = config_.tags.size();
    const double amp_tx = std::sqrt(config_.tx_power_w);
    const cf32 unit_fade{1.0f, 0.0f};
    st_h_sr_.resize(n_gw);
    for (std::size_t g = 0; g < n_gw; ++g) {
      st_h_sr_[g] = unit_fade *
                    static_cast<float>(amp_tx * scene_.amplitude_gain(
                                                    ambient_device_,
                                                    gateway_device_[g], 0));
    }
    st_h_st_.resize(n_tags);
    st_h_tr_.resize(n_tags * n_gw);
    for (std::size_t k = 0; k < n_tags; ++k) {
      st_h_st_[k] = unit_fade *
                    static_cast<float>(amp_tx * scene_.amplitude_gain(
                                                    ambient_device_,
                                                    tag_device_[k], 0));
      for (std::size_t g = 0; g < n_gw; ++g) {
        st_h_tr_[k * n_gw + g] =
            unit_fade * static_cast<float>(scene_.amplitude_gain(
                            tag_device_[k], gateway_device_[g], 0));
      }
    }
    st_coup_on_.resize(n_tags * n_gw);
    st_coup_off_.resize(n_tags * n_gw);
    for (std::size_t k = 0; k < n_tags; ++k) {
      const auto& gamma = modulators_[k].states();
      for (std::size_t g = 0; g < n_gw; ++g) {
        st_coup_on_[k * n_gw + g] =
            st_h_tr_[k * n_gw + g] * gamma.gamma_reflect * st_h_st_[k];
        st_coup_off_[k * n_gw + g] =
            st_h_tr_[k * n_gw + g] * gamma.gamma_absorb * st_h_st_[k];
      }
    }
    // Swing tables in SoA layout: delta feeds the margin classifier,
    // half is the in-range-masked half-swing the interference fold
    // adds (element-independent builds — the compiler vectorizes).
    st_delta_.resize(n_tags * n_gw);
    st_half_.resize(n_tags * n_gw);
    for (std::size_t i = 0; i < n_tags * n_gw; ++i) {
      const std::size_t g = i % n_gw;
      st_delta_[i] = static_cast<float>(
          envelope_swing(st_h_sr_[g], st_coup_on_[i], st_coup_off_[i]));
      st_half_[i] = in_range_[i] ? 0.5f * st_delta_[i] : 0.0f;
    }
    st_serving_.resize(n_tags);
    for (std::size_t k = 0; k < n_tags; ++k) {
      std::size_t best = 0;
      float best_mag = std::abs(st_h_tr_[k * n_gw]);
      for (std::size_t g = 1; g < n_gw; ++g) {
        const float mag = std::abs(st_h_tr_[k * n_gw + g]);
        if (mag > best_mag) {
          best_mag = mag;
          best = g;
        }
      }
      st_serving_[k] = best;
    }
    if (config_.relay.enabled && relay_topo_.num_links() > 0) {
      st_delta_tt_.resize(relay_topo_.num_links());
      for (const std::uint32_t k : relay_topo_.relay_children()) {
        const auto cands = relay_topo_.candidates(k);
        const std::size_t off = relay_topo_.link_offset(k);
        const auto& gamma = modulators_[k].states();
        for (std::size_t ci = 0; ci < cands.size(); ++ci) {
          const cf32 h_tp =
              unit_fade * static_cast<float>(scene_.amplitude_gain(
                              tag_device_[k], tag_device_[cands[ci]], 0));
          st_delta_tt_[off + ci] = static_cast<float>(envelope_swing(
              st_h_st_[cands[ci]], h_tp * gamma.gamma_reflect * st_h_st_[k],
              h_tp * gamma.gamma_absorb * st_h_st_[k]));
        }
      }
    }
    // Per-slot harvest increments and the full-trial idle fold. The
    // fold replays the exact add sequence the per-slot sweep performs,
    // so crediting it in one += at trial end is bit-identical.
    const double dt = slot_seconds();
    st_h_idle_.resize(n_tags);
    st_h_act_.resize(n_tags);
    st_idle_sum_.resize(n_tags);
    for (std::size_t k = 0; k < n_tags; ++k) {
      const double p_inc = static_cast<double>(std::norm(st_h_st_[k]));
      st_h_idle_[k] = harvester_.harvest(p_inc * hf_idle_[k], dt);
      st_h_act_[k] = harvester_.harvest(p_inc * hf_act_[k], dt);
      double acc = 0.0;
      for (std::size_t s = 0; s < config_.slots_per_trial; ++s) {
        acc += st_h_idle_[k];
      }
      st_idle_sum_[k] = acc;
    }
  }
}

double NetworkSimulator::slot_seconds() const {
  return static_cast<double>(slot_samples_) /
         config_.modem.data.rates.sample_rate_hz;
}

std::size_t NetworkSimulator::nearest_gateway(std::size_t k) const {
  std::size_t best = 0;
  double best_dist = std::numeric_limits<double>::infinity();
  for (std::size_t g = 0; g < gateway_device_.size(); ++g) {
    const double dist = channel::distance_m(
        scene_.device(tag_device_.at(k)).position,
        scene_.device(gateway_device_[g]).position);
    if (dist < best_dist) {
      best_dist = dist;
      best = g;
    }
  }
  return best;
}

NetworkTrialResult NetworkSimulator::run_trial(
    std::uint64_t trial_index) const {
  // One warm arena per thread: disjoint trials may run concurrently on
  // one simulator, and after warm-up no trial touches the heap for
  // synthesis scratch.
  thread_local SynthArena arena;
  return run_trial_impl<true>(trial_index, arena, nullptr);
}

NetworkTrialResult NetworkSimulator::run_trial(std::uint64_t trial_index,
                                               SynthArena& arena,
                                               TrialStageTimes* stages) const {
  return run_trial_impl<true>(trial_index, arena, stages);
}

NetworkTrialResult NetworkSimulator::run_trial_reference(
    std::uint64_t trial_index) const {
  thread_local SynthArena arena;
  return run_trial_impl<false>(trial_index, arena, nullptr);
}

NetworkTrialResult NetworkSimulator::run_trial_reference(
    std::uint64_t trial_index, SynthArena& arena,
    TrialStageTimes* stages) const {
  return run_trial_impl<false>(trial_index, arena, stages);
}

template <bool ActiveSet>
NetworkTrialResult NetworkSimulator::run_trial_impl(
    std::uint64_t trial_index, SynthArena& arena,
    TrialStageTimes* stages) const {
  using Clock = std::chrono::steady_clock;
  const bool timed = stages != nullptr;
  const auto t_entry = timed ? Clock::now() : Clock::time_point{};
  double verdict_acc = 0.0;  // resolve time incl. escalation (wall s)
  double esc_acc = 0.0;      // escalation share of verdict_acc

  arena.reset();
  const std::size_t n_tags = config_.tags.size();
  const std::size_t n_gw = gateway_device_.size();
  const std::size_t slots = config_.slots_per_trial;
  const std::size_t total = slots * slot_samples_;
  const double dt = slot_seconds();

  NetworkTrialResult res;
  res.tags.resize(n_tags);
  res.gateway_decodes.resize(n_gw);
  res.slots = slots;

  // Fault realisation of this trial (empty when injection is disabled).
  // The plan draws from a salted side substream, so the main trial
  // randomness below is untouched by it; every fault code path in this
  // function is guarded by `has_faults`, keeping fault-free trials
  // bit-identical to the pre-fault engine.
  const FaultPlan fplan = injector_.plan(trial_index);
  const bool has_faults = fplan.any();

  // Fidelity policy (sim/fleet.hpp). All modes consume the trial RNG in
  // the identical order — source seed, fade draws, per-gateway noise
  // forks, backoff/payload draws — so the MAC evolution and channel
  // realisation of a trial are mode-independent and only the verdict
  // mechanism differs.
  const FleetConfig& fleet = config_.fleet;
  const bool waveform_all = fleet.fidelity == FidelityMode::kWaveform;
  const bool hybrid = fleet.fidelity == FidelityMode::kHybrid;
  const bool analytic_on = !waveform_all || fleet.record_frames;

  // Everything stochastic about this trial lives on the stack, keyed by
  // (seed, trial_index) — the purity contract the parallel runner needs.
  Rng rng = Rng::substream(config_.seed, trial_index);
  const auto source = channel::make_ambient_source(config_.carrier, rng());

  // Per-link complex gains for this trial: shadowing redraws reciprocally
  // per coherence block (= trial) inside the scene; small-scale fading
  // draws come from the trial generator in fixed link order — gateways
  // first, then per tag the ambient->tag gain followed by that tag's
  // gain to every gateway (a single-gateway config reproduces the
  // historical draw sequence exactly).
  //
  // With a static channel (static fading, no shadowing) every table
  // below is trial-invariant and the spans point at the construction
  // cache instead — zero RNG draws skipped, since StaticFading consumes
  // none, so the rest of the trial's draw sequence is untouched.
  const bool relay_on = config_.relay.enabled && relay_topo_.num_links() > 0;
  std::span<const cf32> h_sr{}, h_st{}, h_tr{}, coup_on{}, coup_off{};
  std::span<const float> delta{}, half{}, delta_tt{};
  std::span<const std::size_t> serving{};
  std::span<const double> h_idle{}, h_act{};
  if (static_channel_) {
    h_sr = st_h_sr_;
    h_st = st_h_st_;
    h_tr = st_h_tr_;
    coup_on = st_coup_on_;
    coup_off = st_coup_off_;
    delta = st_delta_;
    half = st_half_;
    serving = st_serving_;
    h_idle = st_h_idle_;
    h_act = st_h_act_;
    if (relay_on) delta_tt = st_delta_tt_;
  } else {
    auto fading = channel::make_fading(config_.fading, rng);
    const auto fade_draw = [&]() {
      fading->next_block(rng);
      return fading->gain();
    };
    const double amp_tx = std::sqrt(config_.tx_power_w);
    auto h_sr_m = arena.alloc<cf32>(n_gw);  // ambient -> gateway leakage
    for (std::size_t g = 0; g < n_gw; ++g) {
      h_sr_m[g] = fade_draw() *
                  static_cast<float>(amp_tx * scene_.amplitude_gain(
                                                  ambient_device_,
                                                  gateway_device_[g],
                                                  trial_index));
    }
    auto h_st_m = arena.alloc<cf32>(n_tags);  // ambient -> tag (w/ power)
    auto h_tr_m = arena.alloc<cf32>(n_tags * n_gw);  // tag -> gw, tag-major
    for (std::size_t k = 0; k < n_tags; ++k) {
      h_st_m[k] = fade_draw() *
                  static_cast<float>(amp_tx * scene_.amplitude_gain(
                                                  ambient_device_,
                                                  tag_device_[k],
                                                  trial_index));
      for (std::size_t g = 0; g < n_gw; ++g) {
        h_tr_m[k * n_gw + g] =
            fade_draw() *
            static_cast<float>(scene_.amplitude_gain(
                tag_device_[k], gateway_device_[g], trial_index));
      }
    }
    h_sr = h_sr_m;
    h_st = h_st_m;
    h_tr = h_tr_m;

    // Tag-tag hop links (relaying): per-trial gains drawn in (child,
    // candidate) order right after the gateway links, so enabling
    // relaying extends the draw sequence instead of reordering it. Each
    // entry is the envelope swing the parent tag sees of the child's
    // reflection riding on the parent's own ambient carrier.
    if (relay_on) {
      auto delta_tt_m = arena.alloc<float>(relay_topo_.num_links());
      for (const std::uint32_t k : relay_topo_.relay_children()) {
        const auto cands = relay_topo_.candidates(k);
        const std::size_t off = relay_topo_.link_offset(k);
        const auto& gamma = modulators_[k].states();
        for (std::size_t ci = 0; ci < cands.size(); ++ci) {
          const cf32 h_tp =
              fade_draw() *
              static_cast<float>(scene_.amplitude_gain(
                  tag_device_[k], tag_device_[cands[ci]], trial_index));
          delta_tt_m[off + ci] = static_cast<float>(envelope_swing(
              h_st[cands[ci]], h_tp * gamma.gamma_reflect * h_st[k],
              h_tp * gamma.gamma_absorb * h_st[k]));
        }
      }
      delta_tt = delta_tt_m;
    }

    // Serving gateway per tag (kBestGateway): strongest tag->gateway
    // link of this trial, fading and shadowing included; ties to the
    // lowest index. A single gateway always serves.
    auto serving_m = arena.alloc<std::size_t>(n_tags);
    for (std::size_t k = 0; k < n_tags; ++k) {
      std::size_t best = 0;
      float best_mag = std::abs(h_tr[k * n_gw]);
      for (std::size_t g = 1; g < n_gw; ++g) {
        const float mag = std::abs(h_tr[k * n_gw + g]);
        if (mag > best_mag) {
          best_mag = mag;
          best = g;
        }
      }
      serving_m[k] = best;
    }
    serving = serving_m;
  }

  // Dead-gateway failover (opt-in, kBestGateway): serving_now is the
  // *current* serving gateway — re-selected when a failure streak hits
  // the threshold — while serving stays the link-quality choice. The
  // failover machine draws its jitter from its own side substream in
  // deterministic (slot, tag) order, so enabling it never disturbs the
  // main trial draws.
  const bool failover_on = config_.failover_streak_frames > 0 && n_gw > 1 &&
                           config_.combining == GatewayCombining::kBestGateway;
  auto serving_now = arena.alloc<std::size_t>(n_tags);
  for (std::size_t k = 0; k < n_tags; ++k) serving_now[k] = serving[k];
  constexpr std::uint64_t kFailoverSalt = 0xfa110feedULL;
  Rng failover_rng = Rng::substream(config_.seed ^ kFailoverSalt, trial_index);
  std::vector<std::size_t> fail_streak;
  std::vector<std::uint64_t> streak_start;
  std::vector<std::size_t> switch_count;
  std::vector<std::uint64_t> blacklist_until;
  if (failover_on) {
    fail_streak.assign(n_tags, 0);
    streak_start.assign(n_tags, 0);
    switch_count.assign(n_tags, 0);
    blacklist_until.assign(n_tags * n_gw, 0);
  }

  // Per-trial relaying state: each child's current parent (an index
  // into its candidate list), per-link ETX counters, forwarding queues,
  // and the end-to-end failure streaks that drive re-parenting. Heap
  // vectors, not arena carves — queued payloads grow data-dependently.
  std::vector<std::vector<QueuedFrame>> relay_queue;
  std::vector<std::uint32_t> parent_idx;
  std::vector<std::uint64_t> etx_attempts;
  std::vector<std::uint64_t> etx_success;
  std::vector<std::size_t> relay_fail_streak;
  std::vector<std::uint64_t> relay_streak_start;
  if (relay_on) {
    relay_queue.resize(n_tags);
    parent_idx.assign(n_tags, 0);
    etx_attempts.assign(relay_topo_.num_links(), 0);
    etx_success.assign(relay_topo_.num_links(), 0);
    relay_fail_streak.assign(n_tags, 0);
    relay_streak_start.assign(n_tags, 0);
  }

  // Shared per-link reflection couplings, precomputed once per trial
  // (they are trial-constant): the composed ambient->tag->gateway
  // coefficient of each switch position, exactly as the synthesizer
  // folds them (h_tag->gw * Gamma(state) * h_ambient->tag, left to
  // right). Every consumer — the analytic swing table, the per-slot
  // batched synthesis and the escalation path — reads these tables
  // instead of recomputing the product per (slot, tag, gateway). The
  // static-channel cache carries them already.
  if (!static_channel_) {
    auto coup_on_m = arena.alloc<cf32>(n_tags * n_gw);
    auto coup_off_m = arena.alloc<cf32>(n_tags * n_gw);
    for (std::size_t k = 0; k < n_tags; ++k) {
      const auto& gamma = modulators_[k].states();
      for (std::size_t g = 0; g < n_gw; ++g) {
        coup_on_m[k * n_gw + g] =
            h_tr[k * n_gw + g] * gamma.gamma_reflect * h_st[k];
        coup_off_m[k * n_gw + g] =
            h_tr[k * n_gw + g] * gamma.gamma_absorb * h_st[k];
      }
    }
    coup_on = coup_on_m;
    coup_off = coup_off_m;
  }

  // Per-slot harvest increments of each tag in its two activity states:
  // pure functions of the trial channel, precomputed so the energy path
  // is table adds instead of per-(tag, slot) harvester evaluations.
  if (!static_channel_) {
    auto h_idle_m = arena.alloc<double>(n_tags);
    auto h_act_m = arena.alloc<double>(n_tags);
    for (std::size_t k = 0; k < n_tags; ++k) {
      const double p_inc = static_cast<double>(std::norm(h_st[k]));
      h_idle_m[k] = harvester_.harvest(p_inc * hf_idle_[k], dt);
      h_act_m[k] = harvester_.harvest(p_inc * hf_act_[k], dt);
    }
    h_idle = h_idle_m;
    h_act = h_act_m;
  }

  // Ambient carrier realisation for the whole trial, so any decode
  // window is a pure history lookup. The analytic-only mode never
  // touches samples; kHybrid reads it for escalated windows. Neither
  // path consumes the trial RNG here (the source owns its seed), so
  // skipping generation keeps modes aligned.
  // kWaveform materialises it all upfront; kHybrid streams it lazily up
  // to the highest sample any escalated window has needed so far (the
  // source is sequential, so the prefix is identical either way), which
  // keeps trials with little contention from paying for carrier
  // synthesis at all.
  std::span<cf32> ambient{};
  std::size_t ambient_filled = 0;
  if (waveform_all || hybrid) {
    ambient = arena.alloc<cf32>(total);
    if (waveform_all) {
      source->generate(ambient);
      ambient_filled = total;
    }
  }
  const auto ensure_ambient = [&](std::size_t hi_sample) {
    if (hi_sample > ambient_filled) {
      source->generate(ambient.subspan(ambient_filled,
                                       hi_sample - ambient_filled));
      ambient_filled = hi_sample;
    }
  };

  // Per-gateway receive chains: AWGN (one fork per gateway, in index
  // order — forked in every mode to keep downstream MAC draws aligned),
  // RC envelope state carried across slots, and a full-trial envelope
  // history each. Trivially-destructible objects are
  // placement-constructed into arena scratch. In kHybrid the AWGN forks
  // are consumed by escalated windows instead of per-slot synthesis.
  auto noise = arena.alloc<channel::AwgnChannel>(n_gw);
  static_assert(std::is_trivially_destructible_v<channel::AwgnChannel>);
  static_assert(std::is_trivially_destructible_v<dsp::EnvelopeDetector>);
  const double noise_power = config_.noise_power_w();
  for (std::size_t g = 0; g < n_gw; ++g) {
    std::construct_at(&noise[g], noise_power, rng.fork());
  }
  std::span<dsp::EnvelopeDetector> envelopes{};
  std::span<float> env_buf{};
  std::span<cf32> rx_slot{};
  if (waveform_all) {
    envelopes = arena.alloc<dsp::EnvelopeDetector>(n_gw);
    for (std::size_t g = 0; g < n_gw; ++g) {
      std::construct_at(&envelopes[g], synth_.make_envelope());
    }
    env_buf = arena.alloc_zeroed<float>(n_gw * total);
    rx_slot = arena.alloc<cf32>(n_gw * slot_samples_);
  }

  // Cross-entity slot-synthesis scratch (kWaveform slots and kHybrid
  // escalations both run the fused per-gateway kernel): the per-slot
  // entity mask pointers, the compacted coupling pair of each entity at
  // the gateway being synthesized, and the coefficient accumulator.
  // Preallocated per trial so the arena's capacity stays warm-stable.
  std::span<const std::uint8_t*> mask_ptrs{};
  std::span<cf32> slot_on{};
  std::span<cf32> slot_off{};
  std::span<cf32> coeff_scratch{};
  if (waveform_all || hybrid) {
    mask_ptrs = arena.alloc<const std::uint8_t*>(n_tags);
    slot_on = arena.alloc<cf32>(n_tags);
    slot_off = arena.alloc<cf32>(n_tags);
    coeff_scratch = arena.alloc<cf32>(slot_samples_);
  }

  // Analytic fast path: per-trial envelope swing of every (tag,
  // gateway) link — exact for the block-static channel — in SoA layout
  // (`delta` feeds the classifier, `half` is the in-range-masked
  // half-swing the interference fold adds). The reference engine keeps
  // the historical per-(gateway, slot) interference-sum rows; the
  // active engine instead folds a running per-(tag, gateway) segment
  // max while the frame is on air, so resolving a frame stops
  // rescanning its whole slot window (max is exact and
  // order-independent, hence bit-identical).
  std::span<float> i_sum{};
  std::span<float> i_max{};
  if (analytic_on) {
    if (!static_channel_) {
      auto delta_m = arena.alloc<float>(n_tags * n_gw);
      auto half_m = arena.alloc<float>(n_tags * n_gw);
      for (std::size_t i = 0; i < n_tags * n_gw; ++i) {
        const std::size_t g = i % n_gw;
        delta_m[i] = static_cast<float>(
            envelope_swing(h_sr[g], coup_on[i], coup_off[i]));
        half_m[i] = in_range_[i] ? 0.5f * delta_m[i] : 0.0f;
      }
      delta = delta_m;
      half = half_m;
    }
    if constexpr (ActiveSet) {
      i_max = arena.alloc<float>(n_tags * n_gw);  // rows zeroed per frame
    } else {
      i_sum = arena.alloc_zeroed<float>(n_gw * slots);
    }
  }

  // Hybrid frame log: who was on air when, so an escalated window can
  // re-synthesize exactly the slots it needs. Amortised std::vectors,
  // deliberately not arena carves — escalation demand is data-dependent
  // and mid-trial, which would defeat the arena's capacity-stability
  // contract.
  std::vector<FrameLog> frame_log;
  std::vector<std::uint32_t> slot_frames;
  std::vector<std::uint32_t> slot_frames_off;
  // Escalation slot cache: the noisy synthesized receive history per
  // (gateway, slot), built lazily the first time any escalated window
  // touches the slot and shared by every later escalation — contested
  // frames overlap heavily in dense scenes, and without the cache each
  // one would re-synthesize the same busy slots (and draw fresh noise
  // for them, unlike the waveform path where overlapping frames see one
  // noise realisation). A slot is final once built: every frame that
  // can overlap it is already in the log when the first escalation
  // reaches it, because escalations run at verdict time, after the
  // escalating frame's window has fully elapsed.
  //
  // Storage is chunk-lazy: instead of carving n_gw x total samples up
  // front (which dominated the arena footprint of escalation-free 10k
  // trials), each (gateway, run-of-kEscChunkSlots-slots) chunk is
  // carved from the arena the first time an escalation touches it. A
  // decode window may straddle chunks, so escalations gather their
  // window into the contiguous `esc_win` scratch before the envelope
  // stage — a memcpy of identical sample values, hence bit-identical
  // verdicts. Escalation demand is deterministic per trial, so the
  // arena's high-water capacity is replay-stable (pinned by
  // tests/sim/synthesis_test.cpp).
  constexpr std::size_t kEscChunkSlots = 4;
  const std::size_t esc_chunks_per_gw =
      (slots + kEscChunkSlots - 1) / kEscChunkSlots;
  std::span<cf32*> esc_chunks{};
  std::span<std::uint8_t> esc_built{};
  std::span<cf32> esc_win{};
  std::span<float> esc_env{};
  if (hybrid) {
    frame_log.reserve(n_tags);
    slot_frames_off.assign(slots + 1, 0);
    esc_chunks = arena.alloc<cf32*>(n_gw * esc_chunks_per_gw);
    std::fill(esc_chunks.begin(), esc_chunks.end(), nullptr);
    esc_built = arena.alloc_zeroed<std::uint8_t>(n_gw * slots);
    // A decode window spans at most frame_slots_ + 1 + ceil(tail/slot)
    // slots (one warm-up slot before the burst, the sync tail after).
    const std::size_t tail = 2 * config_.modem.data.rates.samples_per_bit();
    const std::size_t win_slots =
        frame_slots_ + 1 + (tail + slot_samples_ - 1) / slot_samples_;
    esc_win = arena.alloc<cf32>(win_slots * slot_samples_);
    esc_env = arena.alloc<float>(win_slots * slot_samples_);
  }
  const auto esc_slot_ptr = [&](std::size_t g, std::size_t s) -> cf32* {
    cf32*& chunk = esc_chunks[g * esc_chunks_per_gw + s / kEscChunkSlots];
    if (chunk == nullptr) {
      chunk = arena.alloc<cf32>(kEscChunkSlots * slot_samples_).data();
    }
    return chunk + (s % kEscChunkSlots) * slot_samples_;
  };
  std::vector<std::size_t> esc_order;
  // Escalated-demod memo: colliding frames that started in the same
  // slot share the identical decode window at a gateway (the window
  // bounds derive from start_slot alone and the cached samples never
  // change once built), so the receiver output is the same — only the
  // per-tag payload comparison differs. First escalation at a
  // (gateway, start_slot) runs the demodulator and stores the result;
  // cluster peers reuse it bit-for-bit.
  struct EscDemod {
    std::uint32_t g;
    std::uint64_t start;
    core::FdRxResult r;
  };
  std::vector<EscDemod> esc_demod;
  std::vector<LinkVerdict> gw_verdict(n_gw, LinkVerdict::kClearFail);
  std::vector<double> gw_margin(
      n_gw, -std::numeric_limits<double>::infinity());

  // Decode windows reach a couple of chips past the burst (RC group
  // delay shifts sync late by a fraction of a chip), never a full slot:
  // keeping the tail short stops a back-to-back successor frame's
  // preamble from entering this frame's sync search.
  const auto& rates = config_.modem.data.rates;
  const std::size_t tail_samples = 2 * rates.samples_per_bit();

  // MAC setup: the policy hands out the trial-opening waits and every
  // later one; contention policies draw from the trial Rng in the
  // identical order the pre-extraction loop did, the scheduled policy
  // computes cell distances without touching it.
  std::vector<TagRt> rt;
  rt.reserve(n_tags);
  for (std::size_t k = 0; k < n_tags; ++k) {
    rt.emplace_back(config_.storage, config_.power);
    rt[k].counter = policy_->initial_wait(k, rt[k].mac, rng);
  }

  // Wake-slot buckets (active engine): a pending MAC counter becomes
  // one scheduled wake event in a per-slot intrusive list — headA holds
  // backoff expiries, headD verdict-wait expiries, and every tag sits
  // in at most one list (it holds exactly one counter at a time), so
  // one shared `next` array links both. Fired lists are collected and
  // sorted ascending before processing, which reproduces the reference
  // engine's ascending-k scan order — and therefore its RNG draw order
  // — exactly. Counters whose expiry lands past the trial are simply
  // not scheduled (the reference's countdown never reaches zero
  // in-trial either).
  constexpr std::uint32_t kNilTag = 0xffffffffu;
  std::span<std::uint32_t> headA{}, headD{}, bucket_next{}, fired{};
  std::span<std::uint32_t> e_next{};  // first slot w/ unapplied energy
  if constexpr (ActiveSet) {
    headA = arena.alloc<std::uint32_t>(slots);
    headD = arena.alloc<std::uint32_t>(slots);
    std::fill(headA.begin(), headA.end(), kNilTag);
    std::fill(headD.begin(), headD.end(), kNilTag);
    bucket_next = arena.alloc<std::uint32_t>(n_tags);
    fired = arena.alloc<std::uint32_t>(n_tags);
    e_next = arena.alloc<std::uint32_t>(n_tags);
    std::fill(e_next.begin(), e_next.end(), 0u);
  }
  const auto schedule = [&](std::span<std::uint32_t> heads, std::size_t k,
                            std::uint64_t fire_slot) {
    if (fire_slot >= slots) return;
    bucket_next[k] = heads[fire_slot];
    heads[fire_slot] = static_cast<std::uint32_t>(k);
  };
  if constexpr (ActiveSet) {
    for (std::size_t k = 0; k < n_tags; ++k) {
      // An initial counter c is examined from slot 0 with the
      // `counter == 0 || --counter == 0` convention: c <= 1 fires at
      // slot 0, otherwise at slot c - 1.
      const std::size_t c = rt[k].counter;
      schedule(headA, k, c <= 1 ? 0 : static_cast<std::uint64_t>(c) - 1);
    }
  }

  const auto redraw_wait = [&](std::size_t k, std::uint64_t slot) {
    rt[k].counter = policy_->next_wait(k, slot, rt[k].mac, rng);
    if constexpr (ActiveSet) {
      // A wait assigned while processing slot s is first examined at
      // s + 1, so it fires at s + max(c, 1).
      schedule(headA, k,
               slot + std::max<std::uint64_t>(rt[k].counter, 1));
    }
  };

  // Energy bookkeeping. One slot of the recurrence, split by activity
  // state — the reference engine applies one of these to every tag
  // every slot; the active engine applies the active step to on-air
  // tags only and fast-forwards idle spans (ff_idle replays the exact
  // same per-slot sequence, so storage clamps, leak ticks, ledger adds
  // and draw failures land bit-identically; e_next[k] is the first slot
  // whose recurrence has not been applied yet).
  const auto idle_step = [&](std::size_t k) {
    res.tags[k].harvested_j += h_idle[k];
    if (!config_.energy_gating) return;
    TagRt& tag = rt[k];
    tag.storage.charge(h_idle[k]);
    tag.storage.tick(dt);
    tag.ledger.spend(energy::TagState::kListening, dt);
    // A failed draw while merely listening drains the store but is not
    // an outage event — only gated starts and mid-frame brownouts
    // count, per the NetworkTagStats contract.
    tag.storage.draw(config_.power.power(energy::TagState::kListening) * dt);
  };
  const auto active_step = [&](std::size_t k) {
    res.tags[k].harvested_j += h_act[k];
    if (!config_.energy_gating) return;
    TagRt& tag = rt[k];
    tag.storage.charge(h_act[k]);
    tag.storage.tick(dt);
    tag.ledger.spend(energy::TagState::kBackscattering, dt);
    if (!tag.storage.draw(
            config_.power.power(energy::TagState::kBackscattering) * dt)) {
      ++res.tags[k].energy_outages;
      tag.brownout_now = true;
    }
  };
  const auto ff_idle = [&](std::size_t k, std::uint64_t upto) {
    if constexpr (ActiveSet) {
      for (std::uint64_t s = e_next[k]; s < upto; ++s) idle_step(k);
      e_next[k] = static_cast<std::uint32_t>(upto);
    }
  };

  const bool fd = policy_->aborts_on_notify();
  std::uint64_t idle_wait_slots = 0;
  std::size_t n_waiting = 0;  // tags in WaitVerdict (active engine)
  std::vector<std::size_t> active;
  active.reserve(n_tags);

  // Worst-case concurrent interference a frame of tag k saw at gateway
  // g: the max over its on-air slots of the in-range active half-swing
  // sum, minus the tag's own contribution. Under faults i_sum already
  // carries the per-slot fault scaling plus attenuated interferer
  // envelopes; the own-share subtraction then uses the *minimum* window
  // scale — subtracting the least the tag could have contributed keeps
  // the residual an over-estimate, which is the safe side for the
  // one-sided classifier.
  const auto worst_interference = [&](std::size_t k, std::size_t g) {
    const TagRt& tag = rt[k];
    float worst = 0.0f;
    if constexpr (ActiveSet) {
      // The per-busy-slot segment max folded while the frame was on
      // air: a frame is active over exactly [start, start + frame)
      // slots, so the running max covers the identical window the
      // reference scan does (max is exact — same bits, no rescan).
      worst = i_max[k * n_gw + g];
    } else {
      const float* row = &i_sum[g * slots];
      for (std::uint64_t s = tag.start_slot;
           s < tag.start_slot + frame_slots_; ++s) {
        worst = std::max(worst, row[s]);
      }
    }
    double own = in_range_[k * n_gw + g]
                     ? 0.5 * static_cast<double>(delta[k * n_gw + g])
                     : 0.0;
    if (has_faults) {
      own *= fplan.min_signal_scale(g, tag.start_slot,
                                    tag.start_slot + frame_slots_);
    }
    return std::max(0.0, static_cast<double>(worst) - own);
  };

  // Rewrites a frame's zero-padded antenna states for the transmitting
  // tag's own hardware fault: a stuck switch pins every sample of the
  // fault-covered slots to the jammed position; oscillator drift shifts
  // the whole burst by the skew accumulated since fault onset (the
  // receiver's sync search absorbs the shift until the burst overruns
  // its decode window). Shared by kWaveform modulation and the lazy
  // escalation-log modulation so both fidelity paths synthesize the
  // identical faulted waveform.
  const auto apply_tag_fault_states = [&](std::uint32_t k,
                                          std::uint64_t start_slot,
                                          std::vector<std::uint8_t>& states) {
    const TagFault* f = fplan.tag_fault(k);
    if (f == nullptr) return;
    if (f->stuck) {
      const std::int64_t lo =
          std::max<std::int64_t>(f->start_slot,
                                 static_cast<std::int64_t>(start_slot));
      const std::int64_t hi = std::min<std::int64_t>(
          f->end_slot, static_cast<std::int64_t>(start_slot + frame_slots_));
      if (lo >= hi) return;
      const std::size_t a =
          static_cast<std::size_t>(lo - static_cast<std::int64_t>(start_slot)) *
          slot_samples_;
      const std::size_t b =
          static_cast<std::size_t>(hi - static_cast<std::int64_t>(start_slot)) *
          slot_samples_;
      std::fill(states.begin() + static_cast<std::ptrdiff_t>(a),
                states.begin() + static_cast<std::ptrdiff_t>(b),
                f->stuck_state);
      return;
    }
    const std::size_t shift = fplan.drift_shift_samples(
        k, static_cast<std::int64_t>(start_slot));
    if (shift == 0) return;
    if (shift >= states.size()) {
      std::fill(states.begin(), states.end(), std::uint8_t{0});
      return;
    }
    states.insert(states.begin(), shift, std::uint8_t{0});
    states.resize(frame_slots_ * slot_samples_);
  };

  // In-place fault transform of one synthesized gateway-slot, applied
  // between the fused slot kernel and the AWGN stage: the carrier sag
  // scales every ambient-derived component (leakage and backscatter are
  // both linear in the carrier, so post-scaling the clean sum is exact),
  // burst-interferer tones arrive over the air, and the gateway
  // attenuation then scales everything reaching the faulted front end —
  // receiver noise stays unscaled.
  const auto apply_slot_faults = [&](std::size_t g, std::size_t slot,
                                     std::span<cf32> samples) {
    const float cs = fplan.carrier_scale(slot);
    if (cs != 1.0f) {
      for (auto& v : samples) v *= cs;
    }
    fplan.add_interferers(g, slot, samples);
    const float a = fplan.gateway_atten(g, slot);
    if (a != 1.0f) {
      for (auto& v : samples) v *= a;
    }
  };

  // Resilience attribution of one resolved or aborted frame: exposure
  // is judged over the frame's on-air window at the gateways the
  // combining policy listens to. Failed-and-exposed frames tally into
  // every fault class whose window touched them (exposure, not causal
  // attribution — see NetworkTrialResult).
  const auto classify_fault_loss = [&](std::size_t k, bool delivered) {
    const TagRt& tag = rt[k];
    const std::size_t lo = tag.start_slot;
    const std::size_t hi = tag.start_slot + frame_slots_;
    const bool sag = fplan.window_has_sag(lo, hi);
    bool outage = false;
    bool interf = false;
    for (std::size_t g = 0; g < n_gw; ++g) {
      const bool relevant = config_.combining == GatewayCombining::kAnyGateway ||
                            g == serving_now[k];
      if (!relevant) continue;
      outage = outage || fplan.window_has_outage(g, lo, hi);
      interf = interf || fplan.window_has_interference(g, lo, hi);
    }
    const TagFault* f = fplan.tag_fault(static_cast<std::uint32_t>(k));
    const bool tagf = f != nullptr &&
                      f->start_slot < static_cast<std::int64_t>(hi) &&
                      f->end_slot > static_cast<std::int64_t>(lo);
    if (!(sag || outage || interf || tagf)) return;
    ++res.faulted_frames_attempted;
    if (delivered) {
      ++res.faulted_frames_delivered;
      return;
    }
    if (outage) ++res.frames_lost_outage;
    if (sag) ++res.frames_lost_sag;
    if (interf) ++res.frames_lost_interference;
    if (tagf) ++res.frames_lost_tag_fault;
  };

  // Failover bookkeeping after a frame outcome: a delivery clears the
  // streak; a failure extends it, and hitting the threshold blacklists
  // the serving gateway for a jittered capped-exponential holdoff and
  // re-selects the best non-blacklisted link.
  const auto note_frame_outcome = [&](std::size_t k, bool delivered,
                                      std::uint64_t learn_slot) {
    if (!failover_on) return;
    TagRt& tag = rt[k];
    if (delivered) {
      fail_streak[k] = 0;
      switch_count[k] = 0;
      return;
    }
    if (fail_streak[k] == 0) streak_start[k] = tag.start_slot;
    if (++fail_streak[k] < config_.failover_streak_frames) return;
    const std::size_t old_g = serving_now[k];
    const std::size_t holdoff = mac::failover_holdoff_slots(
        failover_rng, config_.failover_holdoff_slots, switch_count[k],
        config_.failover_max_exponent);
    blacklist_until[k * n_gw + old_g] = learn_slot + 1 + holdoff;
    std::size_t best = old_g;
    float best_mag = -1.0f;
    for (std::size_t g = 0; g < n_gw; ++g) {
      if (blacklist_until[k * n_gw + g] > learn_slot) continue;
      const float mag = std::abs(h_tr[k * n_gw + g]);
      if (mag > best_mag) {
        best_mag = mag;
        best = g;
      }
    }
    if (best != old_g) {
      serving_now[k] = best;
      ++res.failovers;
      res.time_to_failover_slots.add(
          static_cast<double>(learn_slot - streak_start[k] + 1));
      ++switch_count[k];
    }
    fail_streak[k] = 0;
  };

  // End-to-end relay feedback: every loss of an originator's frame
  // past its own transmission — a failed hop, a full or dying relay
  // upstream, a forward lost at the gateway — extends its streak (the
  // implicit missing end-to-end ACK a real mesh would observe).
  // Hitting the threshold re-parents onto the smoothed-ETX-best
  // candidate; the switch lands in the same failover stats the gateway
  // machine feeds, which is how a gateway outage shows up as relay
  // rerouting.
  // `charge_link` marks losses the child's own hop bookkeeping has not
  // already counted (anything past its transmission): they land as a
  // failed attempt on the child's *current* link, so a dead upstream
  // degrades the link's smoothed ETX even while the first hop itself
  // keeps succeeding — otherwise re-parenting could never route around
  // a gateway outage two hops away.
  const auto charge_relay_failure = [&](std::uint32_t o,
                                        std::uint64_t learn_slot,
                                        bool charge_link) {
    if (charge_link) ++etx_attempts[relay_topo_.link_offset(o) + parent_idx[o]];
    if (relay_fail_streak[o] == 0) relay_streak_start[o] = learn_slot;
    if (++relay_fail_streak[o] < config_.relay.reparent_fail_streak) return;
    const auto cands = relay_topo_.candidates(o);
    const std::size_t off = relay_topo_.link_offset(o);
    std::size_t best = parent_idx[o];
    double best_etx = std::numeric_limits<double>::infinity();
    for (std::size_t ci = 0; ci < cands.size(); ++ci) {
      const double etx = static_cast<double>(etx_attempts[off + ci] + 1) /
                         static_cast<double>(etx_success[off + ci] + 1);
      if (etx < best_etx) {
        best_etx = etx;
        best = ci;
      }
    }
    if (best != parent_idx[o]) {
      parent_idx[o] = static_cast<std::uint32_t>(best);
      ++res.failovers;
      res.time_to_failover_slots.add(
          static_cast<double>(learn_slot - relay_streak_start[o] + 1));
    }
    relay_fail_streak[o] = 0;
  };

  // Resolves a relay child's completed frame against its current parent
  // link: the hop delivers iff the frame stayed clean on air and the
  // tag-tag envelope swing clears the analytic margin floor — one rule
  // in every fidelity mode, since no sample-level receiver exists at a
  // tag. A delivered hop lands the frame in the parent's forwarding
  // queue; the parent re-reflects it in its own slotframe cell.
  const double hop_noise_sigma = std::sqrt(config_.noise_power_w() / 2.0);
  const auto resolve_hop = [&](std::size_t k, std::uint64_t learn_slot,
                               bool update_mac) {
    TagRt& tag = rt[k];
    const std::size_t off = relay_topo_.link_offset(k);
    const std::size_t ci = parent_idx[k];
    const std::uint32_t parent = relay_topo_.candidates(k)[ci];
    ++etx_attempts[off + ci];
    const double margin = analytic_margin_db(
        delta_tt[off + ci], 0.0, hop_noise_sigma, rates.samples_per_chip,
        fleet.analytic_target_ber);
    const bool success =
        !tag.overlapped && margin >= config_.relay.min_margin_db;
    if (update_mac) policy_->on_outcome(k, success, tag.mac);
    const std::uint32_t originator =
        tag.forwarding ? tag.fwd_originator : static_cast<std::uint32_t>(k);
    if (success) {
      ++etx_success[off + ci];
      if (relay_queue[parent].size() < config_.relay.queue_capacity) {
        relay_queue[parent].push_back(
            {originator, tag.forwarding ? tag.fwd_hops + 1 : 1, tag.payload});
        ++res.relay_rx_frames;
        res.useful_slots += frame_slots_;
      } else {
        ++res.relay_drops;
        charge_relay_failure(originator, learn_slot, /*charge_link=*/true);
      }
      return;
    }
    if (tag.forwarding) {
      ++res.relay_drops;
      charge_relay_failure(originator, learn_slot, /*charge_link=*/true);
      return;
    }
    if (tag.overlapped) {
      ++res.tags[k].frames_collided;
      ++res.collisions;
      res.detect_latency_slots.add(
          static_cast<double>(learn_slot - tag.overlap_start + 1));
    } else {
      ++res.sync_failures;
    }
    // The failed hop was already recorded on the link above.
    charge_relay_failure(originator, learn_slot, /*charge_link=*/false);
  };

  // Escalated resolution of one contested frame (kHybrid): re-run the
  // real sample-level chain, but only over this frame's decode window,
  // only at the contested gateways, and only folding in-range logged
  // frames. One warm-up slot ahead of the window settles the fresh RC
  // envelope state (the RC time constant is a fraction of a chip).
  const auto escalate_frame = [&](std::size_t k) {
    const auto esc_t0 = timed ? Clock::now() : Clock::time_point{};
    const TagRt& tag = rt[k];
    const std::size_t lo =
        static_cast<std::size_t>(tag.start_slot) * slot_samples_;
    const std::size_t hi = std::min(total, lo + burst_samples_ + tail_samples);
    const std::uint64_t w0_slot = tag.start_slot > 0 ? tag.start_slot - 1 : 0;
    const std::size_t hi_slot =
        std::min(slots, (hi + slot_samples_ - 1) / slot_samples_);
    const std::size_t w0 = static_cast<std::size_t>(w0_slot) * slot_samples_;
    const std::size_t win_samples = hi_slot * slot_samples_ - w0;
    assert(win_samples <= esc_win.size());
    ensure_ambient(hi_slot * slot_samples_);

    // Contested gateways are tried best-margin-first and the loop exits
    // on the first decode: under any-gateway combining one decode
    // already settles delivery, so the remaining (weaker) gateways'
    // windows never need synthesizing. Delivery verdicts are identical
    // to the exhaustive sweep; only the per-gateway decode tallies stop
    // accruing once the frame is resolved.
    esc_order.clear();
    for (std::size_t g = 0; g < n_gw; ++g) {
      if (gw_verdict[g] == LinkVerdict::kContested) esc_order.push_back(g);
    }
    std::sort(esc_order.begin(), esc_order.end(),
              [&](std::size_t a, std::size_t b) {
                return gw_margin[a] != gw_margin[b]
                           ? gw_margin[a] > gw_margin[b]
                           : a < b;
              });

    bool any_decoded = false;
    bool serving_decoded = false;
    for (const std::size_t g : esc_order) {
      const core::FdRxResult* rp = nullptr;
      for (const EscDemod& e : esc_demod) {
        if (e.g == g && e.start == tag.start_slot) {
          // A cluster peer already demodulated this exact window: every
          // slot of it is built (the memo is stored only after a full
          // build), so skipping the rebuild consumes no RNG and changes
          // no accounting.
          rp = &e.r;
          break;
        }
      }
      if (rp == nullptr) {
        for (std::size_t s = w0_slot; s < hi_slot; ++s) {
          cf32* const slot_p = esc_slot_ptr(g, s);
          if (!esc_built[g * slots + s]) {
            esc_built[g * slots + s] = 1;
            ++res.gateway_slots_synthesized;
            const std::size_t base = s * slot_samples_;
            const auto carrier = ambient.subspan(base, slot_samples_);
            const auto out = std::span<cf32>(slot_p, slot_samples_);
            // Gather the in-range on-air entities of this slot (mask
            // views into the zero-padded modulated frames plus their
            // coupling pair at this gateway), then run the fused slot
            // kernel once.
            std::size_t n_ent = 0;
            for (std::uint32_t idx = slot_frames_off[s];
                 idx < slot_frames_off[s + 1]; ++idx) {
              FrameLog& fl = frame_log[slot_frames[idx]];
              if (!in_range_[fl.tag * n_gw + g]) continue;
              if (fl.states.empty()) {
                fl.states = tx_.modulate(fl.payload);
                // Zero-pad to whole slots: state 0 is absorb, which is
                // exactly the "frame ended mid-slot" semantics.
                fl.states.resize(frame_slots_ * slot_samples_, 0);
                if (has_faults) {
                  apply_tag_fault_states(fl.tag, fl.start_slot, fl.states);
                }
              }
              mask_ptrs[n_ent] =
                  fl.states.data() +
                  static_cast<std::size_t>(s - fl.start_slot) *
                      slot_samples_;
              slot_on[n_ent] = coup_on[fl.tag * n_gw + g];
              slot_off[n_ent] = coup_off[fl.tag * n_gw + g];
              ++n_ent;
            }
            WaveformSynthesizer::synthesize_slot_gateway(
                carrier, h_sr[g],
                std::span<const std::uint8_t* const>(mask_ptrs.data(),
                                                     n_ent),
                std::span<const cf32>(slot_on.data(), n_ent),
                std::span<const cf32>(slot_off.data(), n_ent),
                coeff_scratch, out);
            if (has_faults) apply_slot_faults(g, s, out);
            noise[g].process(out, out);
          }
          // The decode window may straddle chunk boundaries: gather it
          // into contiguous scratch (identical sample values — the
          // envelope/demod stages see exactly the bits the monolithic
          // cache produced).
          std::memcpy(esc_win.data() + (s - w0_slot) * slot_samples_,
                      slot_p, slot_samples_ * sizeof(cf32));
        }
        dsp::EnvelopeDetector env = synth_.make_envelope();
        const auto env_out = esc_env.subspan(0, win_samples);
        env.process(std::span<const cf32>(esc_win.data(), win_samples),
                    env_out);
        esc_demod.push_back(
            {static_cast<std::uint32_t>(g), tag.start_slot,
             rx_.demodulate(
                 std::span<const float>(env_out).subspan(lo - w0, hi - lo),
                 {}, config_.payload_bytes)});
        rp = &esc_demod.back().r;
      }
      const core::FdRxResult& r = *rp;
      const bool decoded = r.status != Status::kSyncNotFound &&
                           r.blocks.blocks_failed == 0 &&
                           r.blocks.payload == tag.payload;
      if (decoded) {
        ++res.gateway_decodes[g];
        any_decoded = true;
        if (g == serving_now[k]) serving_decoded = true;
        if (config_.combining == GatewayCombining::kAnyGateway ||
            g == serving_now[k]) {
          break;
        }
      }
    }
    if (timed) {
      esc_acc +=
          std::chrono::duration<double>(Clock::now() - esc_t0).count();
    }
    return config_.combining == GatewayCombining::kAnyGateway
               ? any_decoded
               : serving_decoded;
  };

  // Resolves tag k's completed frame and applies the combining policy
  // to stats + MAC state. kWaveform decodes every gateway's envelope
  // history; the fleet modes classify analytically and (kHybrid)
  // escalate contested frames back to synthesis. `learn_slot` is when
  // the transmitter hears the outcome (for the latency metric).
  const auto resolve_verdict = [&](std::size_t k, std::uint64_t learn_slot,
                                   bool update_mac) {
    TagRt& tag = rt[k];
    const bool fwd = relay_on && tag.forwarding;
    bool delivered = false;
    bool escalated = false;
    LinkVerdict combined = LinkVerdict::kContested;
    double best_margin = -std::numeric_limits<double>::infinity();

    // The transmitting tag's own hardware fault this frame, if any:
    // stuck frames and drift-shifted frames force kContested in every
    // classifying mode (only synthesis — which rewrites the faulted
    // states — can judge a corrupted burst; forcing the band keeps the
    // clear-verdict agreement contract intact under faults).
    bool own_stuck = false;
    std::size_t own_shift = 0;
    if (has_faults) {
      own_stuck = fplan.stuck_in_window(
          static_cast<std::uint32_t>(k),
          static_cast<std::int64_t>(tag.start_slot),
          static_cast<std::int64_t>(tag.start_slot + frame_slots_));
      own_shift = fplan.drift_shift_samples(
          static_cast<std::uint32_t>(k),
          static_cast<std::int64_t>(tag.start_slot));
    }
    const bool own_fault = own_stuck || own_shift > 0;

    if (analytic_on) {
      // Per-gateway one-sided-safe verdicts over the gateway set the
      // combining policy listens to (kBestGateway: serving only).
      bool any_deliver = false;
      bool any_contested = false;
      std::size_t best_g = serving_now[k];
      for (std::size_t g = 0; g < n_gw; ++g) {
        const bool relevant =
            config_.combining == GatewayCombining::kAnyGateway ||
            g == serving_now[k];
        if (!relevant) {
          gw_verdict[g] = LinkVerdict::kClearFail;
          gw_margin[g] = -std::numeric_limits<double>::infinity();
          continue;
        }
        const double d = delta[k * n_gw + g];
        const double interf = worst_interference(k, g);
        double margin;
        if (has_faults) {
          // The fault schedule scales the frame's envelope swing slot
          // by slot; the split-band classifier charges the pessimistic
          // arm the window minimum and grants the optimistic arm the
          // window maximum — the same one-sided-safe bracketing the
          // margin band already provides for interference.
          const double scale_min = fplan.min_signal_scale(
              g, tag.start_slot, tag.start_slot + frame_slots_);
          const double scale_max = fplan.max_signal_scale(
              g, tag.start_slot, tag.start_slot + frame_slots_);
          gw_verdict[g] = resolver_.classify(d * scale_min, d * scale_max,
                                             interf);
          margin = resolver_.margin_db(d * scale_min, interf);
          if (own_fault) gw_verdict[g] = LinkVerdict::kContested;
        } else {
          gw_verdict[g] = resolver_.classify(d, interf);
          margin = resolver_.margin_db(d, interf);
        }
        if (fwd && gw_verdict[g] == LinkVerdict::kClearDeliver) {
          // Relayed delivery is never claimed from the margin band
          // alone (one-sided-safe): force the contested band so kHybrid
          // escalates to synthesis and kAnalytic point-estimates.
          gw_verdict[g] = LinkVerdict::kContested;
        }
        gw_margin[g] = margin;
        if (margin > best_margin) {
          best_margin = margin;
          best_g = g;
        }
        any_deliver |= gw_verdict[g] == LinkVerdict::kClearDeliver;
        any_contested |= gw_verdict[g] == LinkVerdict::kContested;
      }
      combined = any_deliver      ? LinkVerdict::kClearDeliver
                 : any_contested  ? LinkVerdict::kContested
                                  : LinkVerdict::kClearFail;

      if (!waveform_all) {
        switch (combined) {
          case LinkVerdict::kClearDeliver:
            delivered = true;
            for (std::size_t g = 0; g < n_gw; ++g) {
              if (gw_verdict[g] == LinkVerdict::kClearDeliver) {
                ++res.gateway_decodes[g];
              }
            }
            break;
          case LinkVerdict::kClearFail:
            break;
          case LinkVerdict::kContested:
            if (hybrid) {
              delivered = escalate_frame(k);
              escalated = true;
            } else if (own_stuck) {
              // Pure analytic mode, jammed switch: no modulation ever
              // reached the air during the fault window — fail.
              delivered = false;
            } else if (own_shift > 0) {
              // Drifted burst: delivered iff the margin holds AND the
              // accumulated skew still fits the decode window's tail.
              delivered = best_margin >= 0.0 && own_shift <= tail_samples;
              if (delivered) ++res.gateway_decodes[best_g];
            } else {
              // Point estimate at the band centre.
              delivered = best_margin >= 0.0;
              if (delivered) ++res.gateway_decodes[best_g];
            }
            break;
        }
        if (escalated) {
          ++res.frames_escalated;
        } else {
          ++res.frames_resolved_analytic;
        }
        if (culled_[k]) ++res.frames_culled;
      }
    }

    if (waveform_all) {
      const std::size_t lo =
          static_cast<std::size_t>(tag.start_slot) * slot_samples_;
      const std::size_t hi =
          std::min(total, lo + burst_samples_ + tail_samples);
      bool any_decoded = false;
      bool serving_decoded = false;
      for (std::size_t g = 0; g < n_gw; ++g) {
        const auto history =
            std::span<const float>(env_buf).subspan(g * total, total);
        const core::FdRxResult r = rx_.demodulate(
            history.subspan(lo, hi - lo), {}, config_.payload_bytes);
        const bool decoded = r.status != Status::kSyncNotFound &&
                             r.blocks.blocks_failed == 0 &&
                             r.blocks.payload == tag.payload;
        if (decoded) {
          ++res.gateway_decodes[g];
          any_decoded = true;
          if (g == serving_now[k]) serving_decoded = true;
        }
      }
      delivered = config_.combining == GatewayCombining::kAnyGateway
                      ? any_decoded
                      : serving_decoded;
    }

    if (fleet.record_frames) {
      res.frames.push_back({static_cast<std::uint32_t>(k), tag.start_slot,
                            tag.overlapped, combined, best_margin, delivered,
                            escalated});
    }
    if (has_faults) classify_fault_loss(k, delivered);
    if (update_mac) {
      if (!fwd) note_frame_outcome(k, delivered, learn_slot);
      policy_->on_outcome(k, delivered, tag.mac);
    }
    if (fwd) {
      // A forward's outcome belongs to the originator; the relay's own
      // per-tag counters stay untouched (delivered + collided <=
      // attempted must keep holding per tag).
      if (delivered) {
        ++res.tags[tag.fwd_originator].frames_delivered;
        res.tags[tag.fwd_originator].payload_bits_delivered +=
            config_.payload_bytes * 8;
        ++res.relayed_delivered;
        res.relay_hops.add(static_cast<double>(tag.fwd_hops + 1));
        res.useful_slots += frame_slots_;
        relay_fail_streak[tag.fwd_originator] = 0;
      } else {
        ++res.relay_drops;
        charge_relay_failure(tag.fwd_originator, learn_slot,
                             /*charge_link=*/true);
      }
    } else if (delivered) {
      ++res.tags[k].frames_delivered;
      res.tags[k].payload_bits_delivered += config_.payload_bytes * 8;
      res.useful_slots += frame_slots_;
    } else {
      if (tag.overlapped) {
        ++res.tags[k].frames_collided;
        ++res.collisions;
        res.detect_latency_slots.add(
            static_cast<double>(learn_slot - tag.overlap_start + 1));
      } else {
        ++res.sync_failures;
      }
    }
  };

  // Verdict dispatch shared by Phase D and the trial-end drain; also
  // the stage-timing boundary for verdict resolution (escalation time
  // is carved out separately inside escalate_frame).
  const auto resolve_frame = [&](std::size_t k, std::uint64_t learn_slot,
                                 bool update_mac) {
    const auto t0 = timed ? Clock::now() : Clock::time_point{};
    if (relay_on && relay_topo_.reachable(k) && relay_topo_.level(k) >= 1) {
      resolve_hop(k, learn_slot, update_mac);
    } else {
      resolve_verdict(k, learn_slot, update_mac);
    }
    if (timed) {
      verdict_acc +=
          std::chrono::duration<double>(Clock::now() - t0).count();
    }
  };

  // Frame start: identical bookkeeping (and Rng draw sequence) in both
  // engines — only *when* it runs differs (bucket fire vs countdown).
  const auto start_frame = [&](std::size_t k, std::uint64_t slot) {
    TagRt& tag = rt[k];
    tag.st = TagRt::St::kTx;
    tag.progress = 0;
    tag.start_slot = slot;
    tag.overlapped = false;
    tag.forwarding = relay_on && !relay_queue[k].empty();
    if (tag.forwarding) {
      // Forwarding outranks fresh traffic — the queued frame is
      // older. No payload draw: the scheduled MAC never touches the
      // trial Rng either, so the draw sequence is a pure function
      // of the queue evolution (mode-dependent only where gateway
      // verdicts are; relaying's cross-fidelity contract is
      // statistical, not draw-exact).
      QueuedFrame f = std::move(relay_queue[k].front());
      relay_queue[k].erase(relay_queue[k].begin());
      tag.fwd_originator = f.originator;
      tag.fwd_hops = f.hops;
      tag.payload = std::move(f.payload);
      ++res.relay_tx_frames;
    } else {
      ++res.tags[k].frames_attempted;
      tag.payload.resize(config_.payload_bytes);
      for (auto& byte : tag.payload) {
        byte = static_cast<std::uint8_t>(rng.uniform_int(256));
      }
    }
    // Antenna states are only modulated where samples are needed:
    // per-slot synthesis (kWaveform) now, escalated windows
    // (kHybrid) lazily from the frame log, never in kAnalytic.
    if (waveform_all) {
      tag.states = tx_.modulate(tag.payload);
      // Zero-pad to whole slots (0 = absorb): every slot of the
      // frame is then a plain pointer view for the slot kernel.
      tag.states.resize(frame_slots_ * slot_samples_, 0);
      if (has_faults) {
        apply_tag_fault_states(static_cast<std::uint32_t>(k), slot,
                               tag.states);
      }
    } else if (hybrid) {
      tag.frame_id = static_cast<std::uint32_t>(frame_log.size());
      frame_log.push_back({static_cast<std::uint32_t>(k), slot,
                           tag.payload, {}});
    }
  };

  const auto t_loop = timed ? Clock::now() : Clock::time_point{};
  if (timed) {
    stages->setup_s +=
        std::chrono::duration<double>(t_loop - t_entry).count();
  }

  for (std::uint64_t slot = 0; slot < slots; ++slot) {
    // --- Phase A: backoff expiries; frame starts (energy-gated) -------
    if constexpr (ActiveSet) {
      std::size_t n_fired = 0;
      for (std::uint32_t t = headA[slot]; t != kNilTag; t = bucket_next[t]) {
        fired[n_fired++] = t;
      }
      headA[slot] = kNilTag;
      std::sort(fired.begin(), fired.begin() + n_fired);
      for (std::size_t i = 0; i < n_fired; ++i) {
        const std::size_t k = fired[i];
        TagRt& tag = rt[k];
        // Frames that cannot fully resolve inside the trial are not
        // started: the tag parks (it is simply never rescheduled).
        if (slot + frame_slots_ + 2 > slots) {
          tag.counter = slots;
          continue;
        }
        ff_idle(k, slot);  // gating reads storage: bring it current
        if (config_.energy_gating &&
            tag.storage.level_j() < frame_cost_j_) {
          ++res.tags[k].energy_outages;
          redraw_wait(k, slot);
          continue;
        }
        start_frame(k, slot);
        active.insert(std::lower_bound(active.begin(), active.end(), k),
                      k);
        if (analytic_on) {
          // Fresh frame: reset this tag's per-gateway window maxima.
          std::fill_n(i_max.begin() + k * n_gw, n_gw, 0.0f);
        }
      }
    } else {
      for (std::size_t k = 0; k < n_tags; ++k) {
        TagRt& tag = rt[k];
        tag.wait_entered_now = false;
        tag.brownout_now = false;
        if (tag.st != TagRt::St::kBackoff) continue;
        if (tag.counter == 0 || --tag.counter == 0) {
          // Frames that cannot fully resolve inside the trial are not
          // started: park the tag so every attempt has a verdict.
          if (slot + frame_slots_ + 2 > slots) {
            tag.counter = slots;  // runs off the end of the trial
            continue;
          }
          if (config_.energy_gating &&
              tag.storage.level_j() < frame_cost_j_) {
            ++res.tags[k].energy_outages;
            redraw_wait(k, slot);
            continue;
          }
          start_frame(k, slot);
        }
      }
    }

    // --- Phase B: channel synthesis + energy accounting ---------------
    if constexpr (ActiveSet) {
      // `active` is maintained incrementally (sorted inserts in Phase
      // A, compaction in Phase C) and `n_waiting` counts WaitVerdict
      // residents — no per-slot O(n_tags) scan.
      if (!active.empty()) {
        ++res.busy_slots;
      } else if (n_waiting > 0) {
        ++idle_wait_slots;
      }
    } else {
      active.clear();
      bool any_waiting = false;
      for (std::size_t k = 0; k < n_tags; ++k) {
        if (rt[k].st == TagRt::St::kTx) active.push_back(k);
        if (rt[k].st == TagRt::St::kWaitVerdict) any_waiting = true;
      }
      if (!active.empty()) {
        ++res.busy_slots;
      } else if (any_waiting) {
        ++idle_wait_slots;  // dead air while timers / verdict drains run
      }
    }

    // Slot synthesis is one pass across entities, not per link: stage 1
    // resolves every active tag's per-sample mask block for this slot
    // once (shared by all gateways — the zero-padded modulated frames
    // make each block a plain pointer view); stage 2 runs the fused
    // per-gateway kernel, which sums the selected coupling coefficients
    // (h_tag->gw * Gamma(state) * h_ambient->tag, from the per-trial
    // tables) and multiplies the carrier in once, then the gateway's
    // AWGN fork and RC envelope state. The fleet modes skip this
    // entirely: the analytic path below tracks the interference sums
    // instead, and kHybrid re-synthesizes only the windows its
    // contested frames demand.
    if (waveform_all) {
      const std::size_t base = static_cast<std::size_t>(slot) * slot_samples_;
      const auto carrier =
          std::span<const cf32>(ambient).subspan(base, slot_samples_);
      for (std::size_t e = 0; e < active.size(); ++e) {
        const TagRt& tag = rt[active[e]];
        mask_ptrs[e] =
            tag.states.data() +
            static_cast<std::size_t>(slot - tag.start_slot) * slot_samples_;
      }
      for (std::size_t g = 0; g < n_gw; ++g) {
        for (std::size_t e = 0; e < active.size(); ++e) {
          slot_on[e] = coup_on[active[e] * n_gw + g];
          slot_off[e] = coup_off[active[e] * n_gw + g];
        }
        const auto gw_slot = rx_slot.subspan(g * slot_samples_, slot_samples_);
        WaveformSynthesizer::synthesize_slot_gateway(
            carrier, h_sr[g],
            std::span<const std::uint8_t* const>(mask_ptrs.data(),
                                                 active.size()),
            std::span<const cf32>(slot_on.data(), active.size()),
            std::span<const cf32>(slot_off.data(), active.size()),
            coeff_scratch, gw_slot);
        if (has_faults) apply_slot_faults(g, slot, gw_slot);
        noise[g].process(gw_slot, gw_slot);
        envelopes[g].process(
            gw_slot, env_buf.subspan(g * total + base, slot_samples_));
      }
      res.gateway_slots_synthesized += n_gw;
    }
    if (analytic_on) {
      // Under faults the interference sum mirrors the synthesis
      // transform exactly: active tags' half-swings scale with the
      // carrier sag and the gateway attenuation, and burst-interferer
      // envelopes arrive over the air (so they too pass the gateway's
      // attenuation).
      if constexpr (ActiveSet) {
        // Segment-max: fold this slot's per-gateway sum once (the
        // identical ascending-active fold the reference stores in
        // i_sum) and max it into every active tag's running window
        // maximum — `worst_interference` then reads the max directly
        // instead of rescanning the frame window per (frame, gateway).
        // Only slots with a tag on air matter: a resolved frame was
        // active on every slot of its window, so its maxima cover
        // exactly the slots the reference scan would.
        if (!active.empty()) {
          for (std::size_t g = 0; g < n_gw; ++g) {
            float sum = 0.0f;
            for (const std::size_t k : active) {
              if (in_range_[k * n_gw + g]) sum += half[k * n_gw + g];
            }
            if (has_faults) {
              sum = sum * fplan.signal_scale(g, slot) +
                    fplan.interferer_env(g, slot) *
                        fplan.gateway_atten(g, slot);
            }
            for (const std::size_t k : active) {
              float& m = i_max[k * n_gw + g];
              if (sum > m) m = sum;
            }
          }
        }
      } else if (!active.empty() || has_faults) {
        // Written every slot under faults, since an interferer raises
        // the sum even with no tag on air.
        for (std::size_t g = 0; g < n_gw; ++g) {
          float sum = 0.0f;
          for (const std::size_t k : active) {
            if (in_range_[k * n_gw + g]) sum += half[k * n_gw + g];
          }
          if (has_faults) {
            sum = sum * fplan.signal_scale(g, slot) +
                  fplan.interferer_env(g, slot) *
                      fplan.gateway_atten(g, slot);
          }
          i_sum[g * slots + slot] = sum;
        }
      }
    }
    if (hybrid) {
      for (const std::size_t k : active) {
        if constexpr (ActiveSet) {
          // Fully-culled tags are in range of no gateway: escalation
          // skips them per-gateway anyway, so dropping them from the
          // slot index changes no synthesized sample.
          if (culled_[k]) continue;
        }
        slot_frames.push_back(rt[k].frame_id);
      }
      slot_frames_off[slot + 1] =
          static_cast<std::uint32_t>(slot_frames.size());
    }

    if constexpr (ActiveSet) {
      for (const std::size_t k : active) {
        active_step(k);
        e_next[k] = static_cast<std::uint32_t>(slot + 1);
      }
    } else {
      for (std::size_t k = 0; k < n_tags; ++k) {
        if (rt[k].st == TagRt::St::kTx) {
          active_step(k);
        } else {
          idle_step(k);
        }
      }
    }

    // --- Phase C: transmission progress, overlap, aborts, frame end ---
    // The active engine compacts `active` in place: a tag that aborts
    // or completes is dropped, everything else keeps its (ascending)
    // position.
    const bool collision_now = active.size() >= 2;
    [[maybe_unused]] std::size_t keep = 0;
    const std::size_t n_active = active.size();
    for (std::size_t ai = 0; ai < n_active; ++ai) {
      const std::size_t k = active[ai];
      TagRt& tag = rt[k];
      ++tag.progress;
      if (collision_now && !tag.overlapped) {
        tag.overlapped = true;
        tag.overlap_start = slot;
      }
      const bool brownout = tag.brownout_now;
      if constexpr (ActiveSet) tag.brownout_now = false;
      if (brownout) {
        // Storage emptied under the switch drive: the frame dies on air.
        if (relay_on && tag.forwarding) {
          ++res.relay_drops;
          charge_relay_failure(tag.fwd_originator, slot,
                               /*charge_link=*/true);
        } else {
          ++res.tags[k].frames_aborted;
          if (tag.overlapped) {
            ++res.tags[k].frames_collided;
            ++res.collisions;
          }
        }
        if (has_faults) classify_fault_loss(k, /*delivered=*/false);
        tag.st = TagRt::St::kBackoff;
        redraw_wait(k, slot);
        continue;
      }
      bool notified = false;
      if (fd && tag.overlapped) {
        if (!has_faults) {
          notified = slot - tag.overlap_start + 1 >= notify_slots_[k];
        } else {
          // A gateway can only notify if it was alive to *detect* the
          // overlap: an outage at the detection moment silences it, and
          // the tag keeps burning the collided frame until a healthy
          // gateway's (possibly slower) notification arrives — or the
          // frame runs its full length. This is the failure mode the
          // dead-gateway failover machine responds to.
          for (std::size_t g = 0; g < n_gw; ++g) {
            if (slot - tag.overlap_start + 1 < notify_pg_[k * n_gw + g]) {
              continue;
            }
            if (!fplan.gateway_alive(g, tag.overlap_start)) continue;
            notified = true;
            break;
          }
        }
      }
      if (notified) {
        // The earliest gateway's collision notification arrived
        // (notify latency block-times after the overlap began, not
        // after the frame started — mid-frame collision victims wait
        // the full notification latency too): abort now.
        if (relay_on && tag.forwarding) {
          ++res.relay_drops;
          charge_relay_failure(tag.fwd_originator, slot,
                               /*charge_link=*/true);
        } else {
          ++res.tags[k].frames_aborted;
          ++res.tags[k].frames_collided;
          ++res.collisions;
          res.detect_latency_slots.add(
              static_cast<double>(slot - tag.overlap_start + 1));
        }
        if (has_faults) classify_fault_loss(k, /*delivered=*/false);
        policy_->on_notify_abort(k, tag.mac);
        tag.st = TagRt::St::kBackoff;
        redraw_wait(k, slot);
        continue;
      }
      if (tag.progress >= frame_slots_) {
        // Frame fully on air. The policy decides the drain: one slot
        // for the final block verdict (notify / scheduled), the ACK
        // timeout for the timeout MAC.
        tag.st = TagRt::St::kWaitVerdict;
        tag.counter = policy_->verdict_wait_slots();
        if constexpr (ActiveSet) {
          // A wait-verdict counter c entered at slot s is skipped at s
          // (wait_entered_now) and first examined at s + 1: it fires at
          // s + max(c, 1).
          schedule(headD, k,
                   slot + std::max<std::uint64_t>(tag.counter, 1));
          ++n_waiting;
        } else {
          tag.wait_entered_now = true;
        }
        continue;
      }
      if constexpr (ActiveSet) active[keep++] = k;
    }
    if constexpr (ActiveSet) {
      active.resize(keep);
    }

    // --- Phase D: verdict waits resolve against synthesized history ---
    if constexpr (ActiveSet) {
      std::size_t n_fired = 0;
      for (std::uint32_t t = headD[slot]; t != kNilTag; t = bucket_next[t]) {
        fired[n_fired++] = t;
      }
      headD[slot] = kNilTag;
      std::sort(fired.begin(), fired.begin() + n_fired);
      for (std::size_t i = 0; i < n_fired; ++i) {
        const std::size_t k = fired[i];
        resolve_frame(k, slot, /*update_mac=*/true);
        rt[k].st = TagRt::St::kBackoff;
        --n_waiting;
        redraw_wait(k, slot);
      }
    } else {
      for (std::size_t k = 0; k < n_tags; ++k) {
        TagRt& tag = rt[k];
        if (tag.st != TagRt::St::kWaitVerdict || tag.wait_entered_now) {
          continue;
        }
        if (tag.counter == 0 || --tag.counter == 0) {
          resolve_frame(k, slot, /*update_mac=*/true);
          tag.st = TagRt::St::kBackoff;
          redraw_wait(k, slot);
        }
      }
    }
  }

  // Attempts still waiting on a verdict at trial end have fully
  // synthesized frames (starts are parked otherwise): resolve them for
  // the stats without MAC consequences. The active engine also settles
  // each tag's outstanding idle-energy span here; a tag that never woke
  // under a static channel takes the precomputed whole-trial harvest
  // fold (the identical sequential sum starting from the same 0.0) in
  // one add.
  for (std::size_t k = 0; k < n_tags; ++k) {
    if (rt[k].st == TagRt::St::kWaitVerdict) {
      resolve_frame(k, slots - 1, /*update_mac=*/false);
    }
    rt[k].st = TagRt::St::kBackoff;
    if constexpr (ActiveSet) {
      if (static_channel_ && !config_.energy_gating && e_next[k] == 0) {
        res.tags[k].harvested_j += st_idle_sum_[k];
      } else {
        ff_idle(k, slots);
      }
    }
    res.tags[k].spent_j = rt[k].ledger.total_energy_j();
  }
  if (relay_on) {
    // Frames still sitting in forwarding queues never reached a
    // gateway: fabric drops (no streak charge — the per-trial relay
    // state dies here anyway).
    for (const auto& q : relay_queue) res.relay_drops += q.size();
  }

  res.wasted_slots = (res.busy_slots > res.useful_slots
                          ? res.busy_slots - res.useful_slots
                          : 0) +
                     idle_wait_slots;
  if (timed) {
    // Pure measurement: the verdict/escalation shares were accumulated
    // at their dispatch sites; the slot-loop share is the remainder.
    const double loop_s =
        std::chrono::duration<double>(Clock::now() - t_loop).count();
    stages->slot_loop_s += loop_s - verdict_acc;
    stages->verdict_s += verdict_acc - esc_acc;
    stages->escalate_s += esc_acc;
  }
  return res;
}

NetworkSimSummary NetworkSimulator::run(std::size_t n) const {
  NetworkSimSummary summary;
  for (std::size_t t = 0; t < n; ++t) summary.add(run_trial(t));
  return summary;
}

}  // namespace fdb::sim
