#include "sim/synthesis.hpp"

#include <algorithm>
#include <cassert>
#include <cstdint>

namespace fdb::sim {

// ---------------------------------------------------------------------
// SynthArena
// ---------------------------------------------------------------------

namespace {
constexpr std::size_t kMinChunkBytes = 1 << 16;  // 64 KiB floor

std::size_t align_up(std::size_t n, std::size_t align) {
  return (n + align - 1) & ~(align - 1);
}
}  // namespace

SynthArena::Chunk SynthArena::make_chunk(std::size_t size) {
  // Over-allocate so the usable base can be rounded up to a cache line
  // (new[] only guarantees __STDCPP_DEFAULT_NEW_ALIGNMENT__).
  // Default-initialised on purpose: make_unique<T[]> would value-init,
  // i.e. memset tens of MB on every chunk growth/coalesce — alloc()'s
  // contract is uninitialised memory and alloc_zeroed() does its own
  // memset.
  Chunk chunk;
  chunk.data = std::unique_ptr<std::byte[]>(new std::byte[size + 64]);
  chunk.base = reinterpret_cast<std::byte*>(
      align_up(reinterpret_cast<std::uintptr_t>(chunk.data.get()), 64));
  chunk.size = size;
  return chunk;
}

std::byte* SynthArena::alloc_bytes(std::size_t bytes, std::size_t align) {
  // Every carve is cache-line aligned (chunk bases round up to 64,
  // offsets too), which both satisfies any scalar T and keeps
  // vectorized kernel spans from splitting lines.
  const std::size_t alignment = std::max<std::size_t>(align, 64);
  used_total_ += bytes;
  while (active_ < chunks_.size()) {
    const std::size_t at = align_up(used_, alignment);
    if (at + bytes <= chunks_[active_].size) {
      used_ = at + bytes;
      return chunks_[active_].base + at;
    }
    // The active chunk is exhausted: move on (existing spans stay put).
    ++active_;
    used_ = 0;
  }
  // Overflow: grow by at least doubling so warm-up converges in O(log n)
  // chunks; reset() coalesces them into one.
  const std::size_t want =
      std::max({bytes + alignment, capacity_bytes(), kMinChunkBytes});
  chunks_.push_back(make_chunk(want));
  active_ = chunks_.size() - 1;
  used_ = bytes;
  return chunks_[active_].base;
}

void SynthArena::reset() {
  if (chunks_.size() > 1) {
    // A past cycle spilled over: replace the chunk list with one block
    // big enough for everything seen so far. Nothing is live across
    // reset(), so this is the only moment reallocation is legal.
    const std::size_t total = align_up(capacity_bytes(), 64);
    chunks_.clear();
    chunks_.push_back(make_chunk(total));
  }
  active_ = 0;
  used_ = 0;
  used_total_ = 0;
}

std::size_t SynthArena::capacity_bytes() const {
  std::size_t total = 0;
  for (const Chunk& c : chunks_) total += c.size;
  return total;
}

// ---------------------------------------------------------------------
// WaveformSynthesizer
// ---------------------------------------------------------------------

WaveformSynthesizer::WaveformSynthesizer(const phy::RateConfig& rates,
                                         double envelope_cutoff_mult)
    : sample_rate_hz_(rates.sample_rate_hz) {
  // The post-diode RC must pass chip transitions: cutoff a few times the
  // chip rate, capped below Nyquist.
  const double chip_rate =
      rates.sample_rate_hz / static_cast<double>(rates.samples_per_chip);
  cutoff_hz_ = std::min(chip_rate * envelope_cutoff_mult,
                        rates.sample_rate_hz * 0.45);
}

dsp::EnvelopeDetector WaveformSynthesizer::make_envelope() const {
  return dsp::EnvelopeDetector(cutoff_hz_, sample_rate_hz_);
}

void WaveformSynthesizer::apply_gain(std::span<const cf32> in, cf32 gain,
                                     std::span<cf32> out) {
  assert(in.size() == out.size());
  for (std::size_t i = 0; i < in.size(); ++i) out[i] = gain * in[i];
}

void WaveformSynthesizer::sum_with_scaled(std::span<const cf32> base,
                                          std::span<const cf32> in, cf32 gain,
                                          std::span<cf32> out) {
  assert(base.size() == in.size() && base.size() == out.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    out[i] = base[i] + gain * in[i];
  }
}

void WaveformSynthesizer::add_scaled(std::span<const cf32> in, float gain,
                                     std::span<cf32> acc) {
  assert(in.size() == acc.size());
  for (std::size_t i = 0; i < in.size(); ++i) acc[i] += gain * in[i];
}

void WaveformSynthesizer::add_keyed_reflection(
    std::span<const cf32> carrier, std::span<const std::uint8_t> states,
    std::size_t state_offset, cf32 c_on, cf32 c_off, std::span<cf32> acc) {
  assert(carrier.size() == acc.size());
  for (std::size_t i = 0; i < carrier.size(); ++i) {
    const std::size_t off = state_offset + i;
    const bool on = off < states.size() && states[off] != 0;
    acc[i] += (on ? c_on : c_off) * carrier[i];
  }
}

void WaveformSynthesizer::synthesize_slot_gateway(
    std::span<const cf32> carrier, cf32 leak,
    std::span<const std::uint8_t* const> masks, std::span<const cf32> c_on,
    std::span<const cf32> c_off, std::span<cf32> coeff_scratch,
    std::span<cf32> out) {
  assert(carrier.size() == out.size());
  assert(coeff_scratch.size() >= carrier.size());
  assert(masks.size() == c_on.size() && masks.size() == c_off.size());
  const std::size_t n = carrier.size();
  // Pass 1: per-sample sum of the selected coupling coefficients.
  // Entity-major passes on the float lanes of the accumulator: each is
  // a two-way select between constants plus an add, which vectorizes
  // without any complex multiplication in the inner loop.
  auto* acc = reinterpret_cast<float*>(coeff_scratch.data());
  for (std::size_t i = 0; i < n; ++i) {
    acc[2 * i] = leak.real();
    acc[2 * i + 1] = leak.imag();
  }
  for (std::size_t e = 0; e < masks.size(); ++e) {
    const std::uint8_t* m = masks[e];
    const float on_re = c_on[e].real();
    const float on_im = c_on[e].imag();
    const float off_re = c_off[e].real();
    const float off_im = c_off[e].imag();
    for (std::size_t i = 0; i < n; ++i) {
      acc[2 * i] += m[i] ? on_re : off_re;
      acc[2 * i + 1] += m[i] ? on_im : off_im;
    }
  }
  // Pass 2: one complex multiply by the carrier per sample — A entities
  // cost A selects + 1 multiply instead of A multiplies.
  for (std::size_t i = 0; i < n; ++i) out[i] = coeff_scratch[i] * carrier[i];
}

void WaveformSynthesizer::synthesize_slot_gateway_reference(
    std::span<const cf32> carrier, cf32 leak,
    std::span<const std::uint8_t* const> masks, std::span<const cf32> c_on,
    std::span<const cf32> c_off, std::span<cf32> out) {
  assert(carrier.size() == out.size());
  assert(masks.size() == c_on.size() && masks.size() == c_off.size());
  for (std::size_t i = 0; i < carrier.size(); ++i) {
    cf32 coeff = leak;
    for (std::size_t e = 0; e < masks.size(); ++e) {
      coeff += masks[e][i] ? c_on[e] : c_off[e];
    }
    out[i] = coeff * carrier[i];
  }
}

LinkSynthResult WaveformSynthesizer::synthesize_link(
    const LinkSynthSpec& spec, SynthArena& arena) const {
  assert(spec.modulator && spec.noise_a && spec.noise_b);
  assert(spec.states_a.size() == spec.ambient.size());
  assert(spec.states_b.size() == spec.ambient.size());
  const std::size_t total = spec.ambient.size();

  // Carrier as each device hears it: CFO rotation (receiver clock
  // residual) is common, the tapped-delay-line multipath is per path.
  std::span<const cf32> carrier = spec.ambient;
  if (spec.cfo) {
    auto rotated = arena.alloc<cf32>(total);
    spec.cfo->process(spec.ambient, rotated);
    carrier = rotated;
  }
  std::span<const cf32> carrier_a = carrier;
  std::span<const cf32> carrier_b = carrier;
  if (spec.multipath_a) {
    auto faded = arena.alloc<cf32>(total);
    spec.multipath_a->process(carrier, faded);
    carrier_a = faded;
  }
  if (spec.multipath_b) {
    auto faded = arena.alloc<cf32>(total);
    spec.multipath_b->process(carrier, faded);
    carrier_b = faded;
  }

  // Incident fields and the state-keyed reflections they spawn.
  auto incident_a = arena.alloc<cf32>(total);
  auto incident_b = arena.alloc<cf32>(total);
  apply_gain(carrier_a, spec.h_sa, incident_a);
  apply_gain(carrier_b, spec.h_sb, incident_b);

  auto reflect_a = arena.alloc<cf32>(total);
  auto reflect_b = arena.alloc<cf32>(total);
  spec.modulator->reflect(incident_a, spec.states_a, reflect_a);
  spec.modulator->reflect(incident_b, spec.states_b, reflect_b);

  // Receive mixes, term order matching the historical per-sample sum:
  //   y_A = inc_A + h_AB*refl_B + c_self*refl_A (+ interference)
  auto y_a = arena.alloc<cf32>(total);
  auto y_b = arena.alloc<cf32>(total);
  sum_with_scaled(incident_a, reflect_b, spec.h_ab, y_a);
  sum_with_scaled(incident_b, reflect_a, spec.h_ab, y_b);
  add_scaled(reflect_a, spec.self_coupling, y_a);
  add_scaled(reflect_b, spec.self_coupling, y_b);

  if (!spec.states_c.empty()) {
    assert(spec.states_c.size() == total);
    // The interferer C reflects the (CFO-rotated, flat-path) carrier;
    // its regenerated signal lands in both receivers symmetrically.
    auto incident_c = arena.alloc<cf32>(total);
    auto reflect_c = arena.alloc<cf32>(total);
    apply_gain(carrier, spec.h_sc, incident_c);
    spec.modulator->reflect(incident_c, spec.states_c, reflect_c);
    add_scaled(reflect_c, spec.interferer_coupling, y_a);
    add_scaled(reflect_c, spec.interferer_coupling, y_b);
  }

  spec.noise_a->process(y_a, y_a);
  spec.noise_b->process(y_b, y_b);

  auto envelope_a = arena.alloc<float>(total);
  auto envelope_b = arena.alloc<float>(total);
  dsp::EnvelopeDetector env_a = make_envelope();
  dsp::EnvelopeDetector env_b = env_a;
  env_a.process(y_a, envelope_a);
  env_b.process(y_b, envelope_b);

  return {envelope_a, envelope_b, incident_b};
}

}  // namespace fdb::sim
