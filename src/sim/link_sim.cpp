#include "sim/link_sim.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <optional>

#include "channel/ambient_source.hpp"
#include "channel/fading.hpp"
#include "util/bits.hpp"

namespace fdb::sim {

double LinkSimConfig::noise_power_w() const {
  if (noise_power_override_w >= 0.0) return noise_power_override_w;
  return channel::thermal_noise_power(modem.data.rates.sample_rate_hz,
                                      noise_figure_db);
}

LinkSimulator::LinkSimulator(LinkSimConfig config)
    : config_(config),
      tx_(config.modem),
      rx_(config.modem),
      fb_rx_(config.modem),
      fb_tx_(config.modem.data.rates, config.modem.feedback),
      modulator_(channel::ReflectionStates::ook(config.reflection_rho)),
      harvester_(),
      synth_(config.modem.data.rates, config.envelope_cutoff_mult) {
  assert(config_.modem.consistent());
}

TrialResult LinkSimulator::run_trial(std::uint64_t trial_index) const {
  // One warm arena per thread: disjoint trials may run concurrently on
  // one simulator, and after warm-up no trial touches the heap for
  // synthesis scratch.
  thread_local SynthArena arena;
  return run_trial(trial_index, arena);
}

TrialResult LinkSimulator::run_trial(std::uint64_t trial_index,
                                     SynthArena& arena) const {
  arena.reset();
  TrialResult result;
  const auto& rates = config_.modem.data.rates;

  // Everything stochastic about this trial lives on the stack, keyed by
  // (seed, trial_index): the generator, the ambient carrier realisation,
  // and the fading processes. Member state stays untouched, so many
  // threads can run disjoint trials on one simulator.
  Rng rng = Rng::substream(config_.seed, trial_index);
  const auto source = channel::make_ambient_source(config_.carrier, rng());
  const auto fade_sa = channel::make_fading(config_.fading, rng);
  const auto fade_sb = channel::make_fading(config_.fading, rng);
  const auto fade_ab = channel::make_fading(config_.fading, rng);

  // ---- payload & on-air states for A (data transmitter) --------------
  std::vector<std::uint8_t> payload(payload_bytes_);
  for (auto& byte : payload) {
    byte = static_cast<std::uint8_t>(rng.uniform_int(256));
  }
  auto states_a = tx_.modulate(payload);
  // Capture tail: one feedback slot of silence after the burst. The RC
  // group delay shifts sync late by a fraction of a chip, so without a
  // tail the final chip would fall off the capture; the tail also lets
  // the drain-slot verdicts of the schedule ride out.
  states_a.insert(states_a.end(), rates.samples_per_feedback_bit(), 0);
  const std::size_t total = states_a.size();
  const std::size_t data_start = tx_.preamble_samples();

  // Ground-truth data bits as they appear on air (blocked + CRCs).
  const auto tx_bits =
      phy::blocks_to_bits(payload, config_.modem.block_size_bytes);

  // ---- feedback bits & states for B ----------------------------------
  // Random verdict pattern: BER probes want an unbiased bit mix.
  const std::size_t num_fb_bits = std::max<std::size_t>(
      1, (total - data_start) / rates.samples_per_feedback_bit());
  std::vector<std::uint8_t> fb_bits(num_fb_bits);
  for (auto& bit : fb_bits) bit = rng.chance(0.5) ? 1 : 0;

  std::vector<std::uint8_t> states_b(total, 0);
  if (config_.feedback_active) {
    const auto fb_states = fb_tx_.encode(fb_bits);
    // Feedback rides the slot grid anchored at A's data start.
    const std::size_t n =
        std::min(fb_states.size(), total - data_start);
    std::copy_n(fb_states.begin(), n, states_b.begin() + data_start);
  }

  // ---- channel gains for this coherence block (frame) ----------------
  fade_sa->next_block(rng);
  fade_sb->next_block(rng);
  fade_ab->next_block(rng);
  const double amp_tx = std::sqrt(config_.tx_power_w);
  const cf32 h_sa = fade_sa->gain() *
                    static_cast<float>(
                        amp_tx * config_.pathloss.amplitude_gain(
                                     config_.ambient_to_a_m));
  const cf32 h_sb = fade_sb->gain() *
                    static_cast<float>(
                        amp_tx * config_.pathloss.amplitude_gain(
                                     config_.ambient_to_b_m));
  const cf32 h_ab =
      fade_ab->gain() *
      static_cast<float>(config_.pathloss.amplitude_gain(config_.a_to_b_m));
  const auto c_self = static_cast<float>(config_.self_coupling);

  // ---- sample streams -------------------------------------------------
  auto ambient = arena.alloc<cf32>(total);
  source->generate(ambient);

  const double noise_power = config_.noise_power_w();
  channel::AwgnChannel noise_a(noise_power, rng.fork());
  channel::AwgnChannel noise_b(noise_power, rng.fork());
  channel::CfoRotator cfo(config_.cfo_hz, rates.sample_rate_hz);

  // Frequency-selective carrier paths (redrawn each frame).
  std::optional<channel::MultipathChannel> mp_a;
  std::optional<channel::MultipathChannel> mp_b;
  if (config_.multipath) {
    mp_a.emplace(config_.multipath_profile, rng);
    mp_b.emplace(config_.multipath_profile, rng);
  }

  // Co-channel interferer: a third reflector C toggling at random.
  const bool has_interferer = config_.interferer_distance_m > 0.0;
  double h_ic = 0.0;   // C's coupling into A and B (symmetric distance)
  cf32 h_sc{};         // ambient -> C
  std::vector<std::uint8_t> states_c;
  if (has_interferer) {
    h_ic = config_.pathloss.amplitude_gain(config_.interferer_distance_m);
    h_sc = static_cast<float>(
        amp_tx * config_.pathloss.amplitude_gain(config_.ambient_to_b_m));
    states_c.resize(total, 0);
    std::uint8_t state = 0;
    std::size_t i = 0;
    while (i < total) {
      const std::size_t dwell =
          1 + static_cast<std::size_t>(
                  rng.exponential(static_cast<double>(
                      config_.interferer_dwell_samples)));
      for (std::size_t k = 0; k < dwell && i < total; ++k, ++i) {
        states_c[i] = state;
      }
      state ^= 1u;
    }
  }

  // The whole receive chain — CFO/multipath carrier shaping, incident
  // fields, state-keyed reflections, inter-device coupling, AWGN, RC
  // envelope — runs as batch kernels in the shared synthesis engine
  // (bit-identical to the historical per-sample loop).
  LinkSynthSpec spec;
  spec.ambient = ambient;
  spec.states_a = states_a;
  spec.states_b = states_b;
  spec.modulator = &modulator_;
  spec.h_sa = h_sa;
  spec.h_sb = h_sb;
  spec.h_ab = h_ab;
  spec.self_coupling = c_self;
  spec.cfo = config_.cfo_hz != 0.0 ? &cfo : nullptr;
  spec.multipath_a = mp_a ? &*mp_a : nullptr;
  spec.multipath_b = mp_b ? &*mp_b : nullptr;
  spec.noise_a = &noise_a;
  spec.noise_b = &noise_b;
  if (has_interferer) {
    spec.states_c = states_c;
    spec.interferer_coupling = static_cast<float>(h_ic);
    spec.h_sc = h_sc;
  }
  const LinkSynthResult streams = synth_.synthesize_link(spec, arena);
  const std::span<const float> envelope_a = streams.envelope_a;
  const std::span<const float> envelope_b = streams.envelope_b;

  // Energy bookkeeping at B: what the antenna absorbs in each state.
  double incident_sum = 0.0;
  double harvested = 0.0;
  const double dt = 1.0 / rates.sample_rate_hz;
  for (std::size_t n = 0; n < total; ++n) {
    const double p_inc = std::norm(streams.incident_b[n]);
    incident_sum += p_inc;
    harvested += harvester_.harvest(
        p_inc * modulator_.harvest_fraction(states_b[n] != 0), dt);
  }
  result.incident_power_w = incident_sum / static_cast<double>(total);
  result.harvested_j = harvested;

  // ---- decode at B: data stream (with self-interference handling) ----
  std::span<const std::uint8_t> own_b =
      config_.feedback_active
          ? std::span<const std::uint8_t>(states_b)
          : std::span<const std::uint8_t>{};

  core::FdRxResult rx = rx_.demodulate(envelope_b, own_b, payload.size());
  result.data_bits = tx_bits.size();
  result.sync_sample = rx.diag.sync_sample;
  result.sync_corr = rx.diag.sync_corr;
  if (rx.status != Status::kSyncNotFound) {
    const std::size_t expected = data_start - 1;
    const std::size_t got = rx.diag.sync_sample;
    const std::size_t tolerance = rates.samples_per_chip;
    result.sync_correct = got + tolerance >= expected &&
                          got <= expected + tolerance;
  }
  if (rx.status == Status::kSyncNotFound) {
    // The frame is lost entirely; count every bit against the link.
    result.data_bit_errors = tx_bits.size();
  } else {
    result.sync_ok = true;
    // Re-derive the raw received bits for an honest BER (the block
    // decoder consumed them, so recompute from chips).
    const auto rx_bits_opt = phy::decode(
        config_.modem.data.line_code,
        std::span<const std::uint8_t>(rx.diag.chip_decisions));
    if (rx_bits_opt.has_value()) {
      const auto& rx_bits = *rx_bits_opt;
      const std::size_t n = std::min(rx_bits.size(), tx_bits.size());
      for (std::size_t i = 0; i < n; ++i) {
        if (rx_bits[i] != tx_bits[i]) ++result.data_bit_errors;
      }
      result.data_bit_errors += tx_bits.size() - n;  // missing bits count
    } else {
      result.data_bit_errors = tx_bits.size();
    }
    for (const bool ok : rx.blocks.block_ok) result.block_ok.push_back(ok);
  }

  // ---- decode at A: feedback stream -----------------------------------
  if (config_.feedback_active) {
    const auto fb = fb_rx_.decode(envelope_a, states_a, data_start,
                                  fb_bits.size());
    const std::size_t n = std::min(fb.bits.size(), fb_bits.size());
    result.feedback_bits = n;
    for (std::size_t i = 0; i < n; ++i) {
      if (fb.bits[i] != fb_bits[i]) ++result.feedback_bit_errors;
    }
  }
  return result;
}

void LinkSimSummary::add(const TrialResult& trial) {
  ++trials;
  if (!trial.sync_ok) ++sync_failures;
  if (trial.sync_ok && !trial.sync_correct) ++false_syncs;
  data.add(trial.data_bit_errors, trial.data_bits);
  if (trial.sync_correct) {
    data_aligned.add(trial.data_bit_errors, trial.data_bits);
  }
  feedback.add(trial.feedback_bit_errors, trial.feedback_bits);
  harvested_per_frame_j.add(trial.harvested_j);
}

void LinkSimSummary::merge(const LinkSimSummary& other) {
  data.merge(other.data);
  data_aligned.merge(other.data_aligned);
  feedback.merge(other.feedback);
  sync_failures += other.sync_failures;
  false_syncs += other.false_syncs;
  trials += other.trials;
  harvested_per_frame_j.merge(other.harvested_per_frame_j);
}

LinkSimSummary LinkSimulator::run(std::size_t n) const {
  LinkSimSummary summary;
  for (std::size_t t = 0; t < n; ++t) summary.add(run_trial(t));
  return summary;
}

}  // namespace fdb::sim
