#include "sim/fleet.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "core/theory.hpp"

namespace fdb::sim {

const char* fidelity_name(FidelityMode mode) {
  switch (mode) {
    case FidelityMode::kWaveform: return "waveform";
    case FidelityMode::kAnalytic: return "analytic";
    case FidelityMode::kHybrid: return "hybrid";
  }
  return "unknown";
}

void FleetConfig::validate() const {
  if (!(deliver_margin_db >= 0.0) || !std::isfinite(deliver_margin_db)) {
    throw std::invalid_argument(
        "FleetConfig: deliver_margin_db must be a finite non-negative dB "
        "band, got " + std::to_string(deliver_margin_db));
  }
  if (!(fail_margin_db >= 0.0) || !std::isfinite(fail_margin_db)) {
    throw std::invalid_argument(
        "FleetConfig: fail_margin_db must be a finite non-negative dB "
        "band, got " + std::to_string(fail_margin_db));
  }
  if (!(cull_radius_m > 0.0)) {
    throw std::invalid_argument(
        "FleetConfig: cull_radius_m must be positive (infinity disables "
        "culling), got " + std::to_string(cull_radius_m));
  }
  if (!(grid_cell_m > 0.0) || !std::isfinite(grid_cell_m)) {
    throw std::invalid_argument(
        "FleetConfig: grid_cell_m must be a finite positive bin size, "
        "got " + std::to_string(grid_cell_m));
  }
  // The classifier only runs in the analytic-path modes (or when frame
  // recording asks for it alongside kWaveform); only then does the
  // anchor BER need a defined required SINR. A target at or above 0.5
  // is inconsistent: Q^-1 goes non-positive and the clear-fail
  // threshold would sit above clear-deliver.
  const bool classifier_used =
      fidelity != FidelityMode::kWaveform || record_frames;
  if (classifier_used &&
      !(analytic_target_ber > 0.0 && analytic_target_ber < 0.5)) {
    throw std::invalid_argument(
        "FleetConfig: analytic_target_ber must lie in (0, 0.5) when the "
        "analytic classifier is in use (" +
        std::string(fidelity_name(fidelity)) +
        " mode) — got " + std::to_string(analytic_target_ber) +
        ", which has no decode threshold");
  }
}

FleetResolver::FleetResolver(const FleetConfig& config, double noise_sigma,
                             std::size_t n_avg)
    : deliver_margin_db_(config.deliver_margin_db),
      fail_margin_db_(config.fail_margin_db),
      noise_sigma_(noise_sigma),
      n_avg_(n_avg),
      required_sinr_(core::ook_required_sinr(config.analytic_target_ber)) {}

double FleetResolver::margin_db(double delta_env,
                                double interferer_env_sum) const {
  if (!(delta_env > 0.0)) {
    return -std::numeric_limits<double>::infinity();
  }
  const double sinr = core::envelope_sinr(delta_env, interferer_env_sum,
                                          noise_sigma_, n_avg_);
  return 10.0 * std::log10(sinr / required_sinr_);
}

LinkVerdict FleetResolver::classify(double delta_env,
                                    double worst_interferer_env_sum) const {
  return classify(delta_env, delta_env, worst_interferer_env_sum);
}

LinkVerdict FleetResolver::classify(double delta_env_pess,
                                    double delta_env_opt,
                                    double worst_interferer_env_sum) const {
  const double pessimistic =
      margin_db(delta_env_pess, worst_interferer_env_sum);
  if (pessimistic >= deliver_margin_db_) return LinkVerdict::kClearDeliver;
  const double optimistic = margin_db(delta_env_opt, 0.0);
  if (optimistic <= -fail_margin_db_) return LinkVerdict::kClearFail;
  return LinkVerdict::kContested;
}

CullingGrid::CullingGrid(std::span<const channel::Vec2> points,
                         double cell_m)
    : points_(points.begin(), points.end()), cell_m_(cell_m) {
  if (!(cell_m > 0.0) || !std::isfinite(cell_m)) {
    throw std::invalid_argument(
        "CullingGrid: cell_m must be a finite positive bin size, got " +
        std::to_string(cell_m));
  }
  if (points_.empty()) {
    bin_off_ = {0};
    return;
  }
  double max_x = points_[0].x;
  double max_y = points_[0].y;
  min_x_ = points_[0].x;
  min_y_ = points_[0].y;
  for (const auto& p : points_) {
    min_x_ = std::min(min_x_, p.x);
    min_y_ = std::min(min_y_, p.y);
    max_x = std::max(max_x, p.x);
    max_y = std::max(max_y, p.y);
  }
  nx_ = static_cast<std::size_t>((max_x - min_x_) / cell_m_) + 1;
  ny_ = static_cast<std::size_t>((max_y - min_y_) / cell_m_) + 1;

  // Counting sort of point indices into row-major bins: point order
  // inside a bin stays ascending, so concatenated ranges need no
  // per-query sort to be deterministic.
  const auto bin_of = [&](const channel::Vec2& p) {
    const auto bx = static_cast<std::size_t>((p.x - min_x_) / cell_m_);
    const auto by = static_cast<std::size_t>((p.y - min_y_) / cell_m_);
    return std::min(by, ny_ - 1) * nx_ + std::min(bx, nx_ - 1);
  };
  bin_off_.assign(nx_ * ny_ + 1, 0);
  for (const auto& p : points_) ++bin_off_[bin_of(p) + 1];
  for (std::size_t b = 1; b < bin_off_.size(); ++b) {
    bin_off_[b] += bin_off_[b - 1];
  }
  order_.resize(points_.size());
  std::vector<std::uint32_t> cursor(bin_off_.begin(), bin_off_.end() - 1);
  for (std::size_t i = 0; i < points_.size(); ++i) {
    order_[cursor[bin_of(points_[i])]++] = static_cast<std::uint32_t>(i);
  }
}

std::vector<std::uint32_t> CullingGrid::within(channel::Vec2 center,
                                               double radius_m) const {
  std::vector<std::uint32_t> hits;
  within_into(center, radius_m, hits);
  return hits;
}

void CullingGrid::within_into(channel::Vec2 center, double radius_m,
                              std::vector<std::uint32_t>& hits) const {
  hits.clear();
  if (points_.empty() || !(radius_m > 0.0)) return;
  if (std::isinf(radius_m)) {
    hits.resize(points_.size());
    for (std::size_t i = 0; i < hits.size(); ++i) {
      hits[i] = static_cast<std::uint32_t>(i);
    }
    return;
  }
  const auto clamp_bin = [](double v, std::size_t n) {
    if (v < 0.0) return std::size_t{0};
    const auto b = static_cast<std::size_t>(v);
    return std::min(b, n - 1);
  };
  const std::size_t bx0 = clamp_bin((center.x - radius_m - min_x_) / cell_m_,
                                    nx_);
  const std::size_t bx1 = clamp_bin((center.x + radius_m - min_x_) / cell_m_,
                                    nx_);
  const std::size_t by0 = clamp_bin((center.y - radius_m - min_y_) / cell_m_,
                                    ny_);
  const std::size_t by1 = clamp_bin((center.y + radius_m - min_y_) / cell_m_,
                                    ny_);
  const double r2 = radius_m * radius_m;
  for (std::size_t by = by0; by <= by1; ++by) {
    for (std::size_t bx = bx0; bx <= bx1; ++bx) {
      const std::size_t b = by * nx_ + bx;
      for (std::uint32_t i = bin_off_[b]; i < bin_off_[b + 1]; ++i) {
        const std::uint32_t idx = order_[i];
        const double dx = points_[idx].x - center.x;
        const double dy = points_[idx].y - center.y;
        if (dx * dx + dy * dy <= r2) hits.push_back(idx);
      }
    }
  }
  // Bin scan emits row-major bin order, not index order: one sort keeps
  // the determinism contract for callers that iterate the result.
  std::sort(hits.begin(), hits.end());
}

}  // namespace fdb::sim
