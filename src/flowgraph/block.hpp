// Flowgraph block interface. A block declares typed input/output ports;
// the scheduler hands it a WorkContext with the connected buffers and
// calls work() until the graph drains.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "flowgraph/stream.hpp"

namespace fdb::fg {

struct PortSpec {
  ItemType type;
  std::string name;
};

/// What a work() call accomplished, for scheduler progress tracking.
enum class WorkStatus {
  kProgress,   // consumed or produced something; call again
  kBlocked,    // needs more input or output space
  kDone,       // will never produce again (sources when exhausted)
};

/// Handed to Block::work(); owns nothing.
class WorkContext {
 public:
  WorkContext(std::vector<StreamBuffer*> inputs,
              std::vector<StreamBuffer*> outputs)
      : inputs_(std::move(inputs)), outputs_(std::move(outputs)) {}

  StreamBuffer& in(std::size_t i) { return *inputs_.at(i); }
  StreamBuffer& out(std::size_t i) { return *outputs_.at(i); }
  std::size_t num_inputs() const { return inputs_.size(); }
  std::size_t num_outputs() const { return outputs_.size(); }

  /// True when every input is closed and empty — upstream is finished.
  bool inputs_finished() const;

 private:
  std::vector<StreamBuffer*> inputs_;
  std::vector<StreamBuffer*> outputs_;
};

class Block {
 public:
  Block(std::string name, std::vector<PortSpec> inputs,
        std::vector<PortSpec> outputs);
  virtual ~Block() = default;

  Block(const Block&) = delete;
  Block& operator=(const Block&) = delete;

  const std::string& name() const { return name_; }
  const std::vector<PortSpec>& input_ports() const { return inputs_; }
  const std::vector<PortSpec>& output_ports() const { return outputs_; }

  virtual WorkStatus work(WorkContext& ctx) = 0;

 private:
  std::string name_;
  std::vector<PortSpec> inputs_;
  std::vector<PortSpec> outputs_;
};

using BlockPtr = std::shared_ptr<Block>;

/// Convenience base for 1-in/1-out float blocks that map each input
/// sample to one output sample (GNU Radio "sync block").
class SyncBlockF : public Block {
 public:
  explicit SyncBlockF(std::string name);

  WorkStatus work(WorkContext& ctx) final;

 protected:
  /// Transforms a chunk; in and out are the same length.
  virtual void process_chunk(std::span<const float> in,
                             std::span<float> out) = 0;

 private:
  static constexpr std::size_t kChunk = 1024;
};

}  // namespace fdb::fg
