// Flowgraph container + single-threaded round-robin scheduler.
//
// Deterministic by construction: blocks run in topological insertion
// order until no block can make progress; the graph is "done" when all
// blocks report done/blocked and every buffer upstream is closed+empty.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "flowgraph/block.hpp"

namespace fdb::fg {

class Graph {
 public:
  /// `default_buffer_items` sizes edge buffers unless overridden in
  /// connect().
  explicit Graph(std::size_t default_buffer_items = 8192);

  /// Adds a block; returns its handle index.
  std::size_t add(BlockPtr block);

  /// Connects src's output port to dst's input port. Type-checks the
  /// ports and rejects double-wiring. Returns false (and logs) on error.
  bool connect(std::size_t src, std::size_t src_port, std::size_t dst,
               std::size_t dst_port, std::size_t buffer_items = 0);

  /// Validates that every port is wired. Returns a description of the
  /// first problem, or empty string if OK.
  std::string validate() const;

  /// Runs until quiescent. Returns total work() calls that made
  /// progress (useful for tests asserting the graph actually ran).
  std::size_t run(std::size_t max_iterations = 1'000'000);

  std::size_t num_blocks() const { return blocks_.size(); }
  Block& block(std::size_t i) { return *blocks_.at(i); }

 private:
  struct Endpoint {
    std::size_t block = SIZE_MAX;
    std::size_t port = SIZE_MAX;
    std::shared_ptr<StreamBuffer> buffer;
  };

  std::size_t default_buffer_items_;
  std::vector<BlockPtr> blocks_;
  // Wiring: per block, per port, the connected buffer.
  std::vector<std::vector<std::shared_ptr<StreamBuffer>>> in_wiring_;
  std::vector<std::vector<std::shared_ptr<StreamBuffer>>> out_wiring_;
};

}  // namespace fdb::fg
