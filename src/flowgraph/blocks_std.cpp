#include "flowgraph/blocks_std.hpp"

#include <algorithm>
#include <array>

namespace fdb::fg {

namespace {
constexpr std::size_t kChunk = 1024;
}

// ---------------------------------------------------------------- sources

VectorSourceF::VectorSourceF(std::vector<float> data)
    : Block("vector_source_f", {}, {{ItemType::kF32, "out"}}),
      data_(std::move(data)) {}

WorkStatus VectorSourceF::work(WorkContext& ctx) {
  auto& out = ctx.out(0);
  if (pos_ >= data_.size()) {
    out.close();
    return WorkStatus::kDone;
  }
  const std::size_t n = std::min(out.writable(), data_.size() - pos_);
  if (n == 0) return WorkStatus::kBlocked;
  out.write_items(std::span<const float>(data_.data() + pos_, n));
  pos_ += n;
  return WorkStatus::kProgress;
}

VectorSourceC::VectorSourceC(std::vector<cf32> data)
    : Block("vector_source_c", {}, {{ItemType::kCF32, "out"}}),
      data_(std::move(data)) {}

WorkStatus VectorSourceC::work(WorkContext& ctx) {
  auto& out = ctx.out(0);
  if (pos_ >= data_.size()) {
    out.close();
    return WorkStatus::kDone;
  }
  const std::size_t n = std::min(out.writable(), data_.size() - pos_);
  if (n == 0) return WorkStatus::kBlocked;
  out.write_items(std::span<const cf32>(data_.data() + pos_, n));
  pos_ += n;
  return WorkStatus::kProgress;
}

CallbackSourceC::CallbackSourceC(Fill fn)
    : Block("callback_source_c", {}, {{ItemType::kCF32, "out"}}),
      fn_(std::move(fn)) {}

WorkStatus CallbackSourceC::work(WorkContext& ctx) {
  auto& out = ctx.out(0);
  if (pos_ >= pending_.size()) {
    if (exhausted_) {
      out.close();
      return WorkStatus::kDone;
    }
    pending_.clear();
    pos_ = 0;
    if (!fn_(pending_)) exhausted_ = true;
    if (pending_.empty()) {
      if (exhausted_) {
        out.close();
        return WorkStatus::kDone;
      }
      return WorkStatus::kBlocked;
    }
  }
  const std::size_t n = std::min(out.writable(), pending_.size() - pos_);
  if (n == 0) return WorkStatus::kBlocked;
  out.write_items(std::span<const cf32>(pending_.data() + pos_, n));
  pos_ += n;
  return WorkStatus::kProgress;
}

// ------------------------------------------------------------------ sinks

VectorSinkF::VectorSinkF()
    : Block("vector_sink_f", {{ItemType::kF32, "in"}}, {}) {}

WorkStatus VectorSinkF::work(WorkContext& ctx) {
  auto& in = ctx.in(0);
  const std::size_t n = std::min(in.readable(), kChunk);
  if (n == 0) {
    return ctx.inputs_finished() ? WorkStatus::kDone : WorkStatus::kBlocked;
  }
  std::array<float, kChunk> buf{};
  in.peek_items(std::span<float>(buf.data(), n));
  data_.insert(data_.end(), buf.begin(), buf.begin() + static_cast<long>(n));
  in.consume(n);
  return WorkStatus::kProgress;
}

VectorSinkC::VectorSinkC()
    : Block("vector_sink_c", {{ItemType::kCF32, "in"}}, {}) {}

WorkStatus VectorSinkC::work(WorkContext& ctx) {
  auto& in = ctx.in(0);
  const std::size_t n = std::min(in.readable(), kChunk);
  if (n == 0) {
    return ctx.inputs_finished() ? WorkStatus::kDone : WorkStatus::kBlocked;
  }
  std::array<cf32, kChunk> buf{};
  in.peek_items(std::span<cf32>(buf.data(), n));
  data_.insert(data_.end(), buf.begin(), buf.begin() + static_cast<long>(n));
  in.consume(n);
  return WorkStatus::kProgress;
}

NullSinkF::NullSinkF() : Block("null_sink_f", {{ItemType::kF32, "in"}}, {}) {}

WorkStatus NullSinkF::work(WorkContext& ctx) {
  auto& in = ctx.in(0);
  const std::size_t n = in.readable();
  if (n == 0) {
    return ctx.inputs_finished() ? WorkStatus::kDone : WorkStatus::kBlocked;
  }
  in.consume(n);
  consumed_ += n;
  return WorkStatus::kProgress;
}

ProbeStatsF::ProbeStatsF()
    : Block("probe_stats_f", {{ItemType::kF32, "in"}}, {}) {}

WorkStatus ProbeStatsF::work(WorkContext& ctx) {
  auto& in = ctx.in(0);
  const std::size_t n = std::min(in.readable(), kChunk);
  if (n == 0) {
    return ctx.inputs_finished() ? WorkStatus::kDone : WorkStatus::kBlocked;
  }
  std::array<float, kChunk> buf{};
  in.peek_items(std::span<float>(buf.data(), n));
  for (std::size_t i = 0; i < n; ++i) stats_.add(buf[i]);
  in.consume(n);
  return WorkStatus::kProgress;
}

// ------------------------------------------------------------- transforms

FunctionBlockF::FunctionBlockF(std::string name, Fn fn)
    : SyncBlockF(std::move(name)), fn_(std::move(fn)) {}

void FunctionBlockF::process_chunk(std::span<const float> in,
                                   std::span<float> out) {
  for (std::size_t i = 0; i < in.size(); ++i) out[i] = fn_(in[i]);
}

FirBlockF::FirBlockF(std::vector<float> taps)
    : SyncBlockF("fir_f"), filter_(std::move(taps)) {}

void FirBlockF::process_chunk(std::span<const float> in,
                              std::span<float> out) {
  filter_.process(in, out);
}

EnvelopeBlock::EnvelopeBlock(double rc_cutoff_hz, double sample_rate_hz)
    : Block("envelope", {{ItemType::kCF32, "in"}}, {{ItemType::kF32, "out"}}),
      detector_(rc_cutoff_hz, sample_rate_hz) {}

WorkStatus EnvelopeBlock::work(WorkContext& ctx) {
  auto& in = ctx.in(0);
  auto& out = ctx.out(0);
  const std::size_t n = std::min({in.readable(), out.writable(), kChunk});
  if (n == 0) {
    if (ctx.inputs_finished()) {
      out.close();
      return WorkStatus::kDone;
    }
    return WorkStatus::kBlocked;
  }
  std::array<cf32, kChunk> ibuf{};
  std::array<float, kChunk> obuf{};
  in.peek_items(std::span<cf32>(ibuf.data(), n));
  detector_.process(std::span<const cf32>(ibuf.data(), n),
                    std::span<float>(obuf.data(), n));
  out.write_items(std::span<const float>(obuf.data(), n));
  in.consume(n);
  return WorkStatus::kProgress;
}

MovingAverageBlockF::MovingAverageBlockF(std::size_t window)
    : SyncBlockF("moving_average_f"), avg_(window) {}

void MovingAverageBlockF::process_chunk(std::span<const float> in,
                                        std::span<float> out) {
  avg_.process(in, out);
}

AgcBlockF::AgcBlockF(float target, float rate)
    : SyncBlockF("agc_f"), agc_(target, rate) {}

void AgcBlockF::process_chunk(std::span<const float> in,
                              std::span<float> out) {
  agc_.process(in, out);
}

CorrelatorBlockF::CorrelatorBlockF(std::vector<float> pattern,
                                   std::size_t samples_per_chip)
    : SyncBlockF("correlator_f"),
      corr_(std::move(pattern), samples_per_chip) {}

void CorrelatorBlockF::process_chunk(std::span<const float> in,
                                     std::span<float> out) {
  corr_.process(in, out);
}

KeepOneInN::KeepOneInN(std::size_t n)
    : Block("keep_one_in_n", {{ItemType::kF32, "in"}},
            {{ItemType::kF32, "out"}}),
      n_(n) {}

WorkStatus KeepOneInN::work(WorkContext& ctx) {
  auto& in = ctx.in(0);
  auto& out = ctx.out(0);
  std::size_t processed = 0;
  std::array<float, kChunk> ibuf{};
  const std::size_t n = std::min(in.readable(), kChunk);
  if (n == 0) {
    if (ctx.inputs_finished()) {
      out.close();
      return WorkStatus::kDone;
    }
    return WorkStatus::kBlocked;
  }
  in.peek_items(std::span<float>(ibuf.data(), n));
  for (std::size_t i = 0; i < n; ++i) {
    if (phase_ == 0) {
      if (out.writable() == 0) break;
      out.write_items(std::span<const float>(&ibuf[i], 1));
    }
    phase_ = (phase_ + 1) % n_;
    ++processed;
  }
  if (processed == 0) return WorkStatus::kBlocked;
  in.consume(processed);
  return WorkStatus::kProgress;
}

AddBlockF::AddBlockF()
    : Block("add_f", {{ItemType::kF32, "a"}, {ItemType::kF32, "b"}},
            {{ItemType::kF32, "out"}}) {}

WorkStatus AddBlockF::work(WorkContext& ctx) {
  auto& a = ctx.in(0);
  auto& b = ctx.in(1);
  auto& out = ctx.out(0);
  const std::size_t n =
      std::min({a.readable(), b.readable(), out.writable(), kChunk});
  if (n == 0) {
    if (ctx.inputs_finished()) {
      out.close();
      return WorkStatus::kDone;
    }
    return WorkStatus::kBlocked;
  }
  std::array<float, kChunk> abuf{}, bbuf{}, obuf{};
  a.peek_items(std::span<float>(abuf.data(), n));
  b.peek_items(std::span<float>(bbuf.data(), n));
  for (std::size_t i = 0; i < n; ++i) obuf[i] = abuf[i] + bbuf[i];
  out.write_items(std::span<const float>(obuf.data(), n));
  a.consume(n);
  b.consume(n);
  return WorkStatus::kProgress;
}

MultiplyBlockC::MultiplyBlockC()
    : Block("multiply_c", {{ItemType::kCF32, "a"}, {ItemType::kCF32, "b"}},
            {{ItemType::kCF32, "out"}}) {}

WorkStatus MultiplyBlockC::work(WorkContext& ctx) {
  auto& a = ctx.in(0);
  auto& b = ctx.in(1);
  auto& out = ctx.out(0);
  const std::size_t n =
      std::min({a.readable(), b.readable(), out.writable(), kChunk});
  if (n == 0) {
    if (ctx.inputs_finished()) {
      out.close();
      return WorkStatus::kDone;
    }
    return WorkStatus::kBlocked;
  }
  std::array<cf32, kChunk> abuf{}, bbuf{}, obuf{};
  a.peek_items(std::span<cf32>(abuf.data(), n));
  b.peek_items(std::span<cf32>(bbuf.data(), n));
  for (std::size_t i = 0; i < n; ++i) obuf[i] = abuf[i] * bbuf[i];
  out.write_items(std::span<const cf32>(obuf.data(), n));
  a.consume(n);
  b.consume(n);
  return WorkStatus::kProgress;
}

}  // namespace fdb::fg
