// Type-erased stream buffers connecting flowgraph blocks, in the style
// of GNU Radio: a stream is a FIFO of fixed-size items plus a sparse
// sequence of tags addressed by absolute item index.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <span>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace fdb::fg {

/// Item types carried on streams. The engine checks these at connect()
/// time so a wiring mistake fails fast instead of decoding garbage.
enum class ItemType : std::uint8_t { kF32, kCF32, kU8 };

std::size_t item_size(ItemType type);
const char* item_type_name(ItemType type);

/// A tag rides alongside the stream at a specific absolute item offset —
/// e.g. the framer tags the first sample of each frame.
struct Tag {
  std::uint64_t offset = 0;
  std::string key;
  double value = 0.0;
};

/// Byte-backed FIFO of items of one ItemType, with absolute read/write
/// counters for tag addressing. Single-threaded by design: the scheduler
/// serialises block execution.
class StreamBuffer {
 public:
  StreamBuffer(ItemType type, std::size_t capacity_items);

  ItemType type() const { return type_; }
  std::size_t capacity() const { return capacity_; }
  std::size_t readable() const { return write_count_ - read_count_ >
                                        0 ? static_cast<std::size_t>(write_count_ - read_count_) : 0; }
  std::size_t writable() const { return capacity_ - readable(); }

  std::uint64_t items_written() const { return write_count_; }
  std::uint64_t items_read() const { return read_count_; }

  /// Appends up to n items from raw bytes; returns items accepted.
  std::size_t write(const void* data, std::size_t n);

  /// Copies up to n items into `out` without consuming.
  std::size_t peek(void* out, std::size_t n) const;

  /// Consumes n items (n <= readable()).
  void consume(std::size_t n);

  /// Typed convenience wrappers; T must match the declared type's size.
  template <typename T>
  std::size_t write_items(std::span<const T> items) {
    return write(items.data(), items.size());
  }
  template <typename T>
  std::size_t peek_items(std::span<T> out) const {
    return peek(out.data(), out.size());
  }

  /// Adds a tag at absolute offset >= items_written() is typical.
  void add_tag(Tag tag);

  /// Returns tags in [items_read(), items_read()+range) and drops tags
  /// older than the read pointer.
  std::vector<Tag> tags_in_read_range(std::size_t range);

  /// True when the upstream block has declared it will produce no more.
  bool closed() const { return closed_; }
  void close() { closed_ = true; }

 private:
  ItemType type_;
  std::size_t capacity_;
  std::size_t isize_;
  std::vector<std::uint8_t> bytes_;  // circular, capacity_ * isize_
  std::uint64_t read_count_ = 0;
  std::uint64_t write_count_ = 0;
  std::deque<Tag> tags_;
  bool closed_ = false;
};

}  // namespace fdb::fg
