#include "flowgraph/graph.hpp"

#include <sstream>

#include "util/log.hpp"

namespace fdb::fg {

Graph::Graph(std::size_t default_buffer_items)
    : default_buffer_items_(default_buffer_items) {}

std::size_t Graph::add(BlockPtr block) {
  blocks_.push_back(std::move(block));
  in_wiring_.emplace_back(blocks_.back()->input_ports().size());
  out_wiring_.emplace_back(blocks_.back()->output_ports().size());
  return blocks_.size() - 1;
}

bool Graph::connect(std::size_t src, std::size_t src_port, std::size_t dst,
                    std::size_t dst_port, std::size_t buffer_items) {
  if (src >= blocks_.size() || dst >= blocks_.size()) {
    log_error("connect: block index out of range");
    return false;
  }
  const auto& outs = blocks_[src]->output_ports();
  const auto& ins = blocks_[dst]->input_ports();
  if (src_port >= outs.size() || dst_port >= ins.size()) {
    log_error("connect: port index out of range for " + blocks_[src]->name() +
              " -> " + blocks_[dst]->name());
    return false;
  }
  if (outs[src_port].type != ins[dst_port].type) {
    log_error(std::string("connect: type mismatch ") +
              item_type_name(outs[src_port].type) + " -> " +
              item_type_name(ins[dst_port].type));
    return false;
  }
  if (out_wiring_[src][src_port] || in_wiring_[dst][dst_port]) {
    log_error("connect: port already wired");
    return false;
  }
  const std::size_t cap =
      buffer_items ? buffer_items : default_buffer_items_;
  auto buffer = std::make_shared<StreamBuffer>(outs[src_port].type, cap);
  out_wiring_[src][src_port] = buffer;
  in_wiring_[dst][dst_port] = buffer;
  return true;
}

std::string Graph::validate() const {
  for (std::size_t b = 0; b < blocks_.size(); ++b) {
    for (std::size_t p = 0; p < in_wiring_[b].size(); ++p) {
      if (!in_wiring_[b][p]) {
        std::ostringstream os;
        os << "input port " << p << " of block '" << blocks_[b]->name()
           << "' is not connected";
        return os.str();
      }
    }
    for (std::size_t p = 0; p < out_wiring_[b].size(); ++p) {
      if (!out_wiring_[b][p]) {
        std::ostringstream os;
        os << "output port " << p << " of block '" << blocks_[b]->name()
           << "' is not connected";
        return os.str();
      }
    }
  }
  return {};
}

std::size_t Graph::run(std::size_t max_iterations) {
  const std::string problem = validate();
  if (!problem.empty()) {
    log_error("graph invalid: " + problem);
    return 0;
  }
  std::size_t progress_calls = 0;
  std::vector<bool> done(blocks_.size(), false);
  for (std::size_t iter = 0; iter < max_iterations; ++iter) {
    bool any_progress = false;
    for (std::size_t b = 0; b < blocks_.size(); ++b) {
      if (done[b]) continue;
      std::vector<StreamBuffer*> ins;
      ins.reserve(in_wiring_[b].size());
      for (const auto& buf : in_wiring_[b]) ins.push_back(buf.get());
      std::vector<StreamBuffer*> outs;
      outs.reserve(out_wiring_[b].size());
      for (const auto& buf : out_wiring_[b]) outs.push_back(buf.get());
      WorkContext ctx(std::move(ins), std::move(outs));
      // Let the block drain as much as it can this pass.
      for (;;) {
        const WorkStatus status = blocks_[b]->work(ctx);
        if (status == WorkStatus::kProgress) {
          ++progress_calls;
          any_progress = true;
          continue;
        }
        if (status == WorkStatus::kDone) {
          done[b] = true;
          // A finished block closes all its outputs so downstream can
          // flush and finish too.
          for (auto& buf : out_wiring_[b]) buf->close();
        }
        break;
      }
    }
    if (!any_progress) break;
  }
  return progress_calls;
}

}  // namespace fdb::fg
