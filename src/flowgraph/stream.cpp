#include "flowgraph/stream.hpp"

#include <cassert>
#include <cstring>

namespace fdb::fg {

std::size_t item_size(ItemType type) {
  switch (type) {
    case ItemType::kF32: return sizeof(float);
    case ItemType::kCF32: return sizeof(cf32);
    case ItemType::kU8: return sizeof(std::uint8_t);
  }
  return 1;
}

const char* item_type_name(ItemType type) {
  switch (type) {
    case ItemType::kF32: return "f32";
    case ItemType::kCF32: return "cf32";
    case ItemType::kU8: return "u8";
  }
  return "?";
}

StreamBuffer::StreamBuffer(ItemType type, std::size_t capacity_items)
    : type_(type),
      capacity_(capacity_items),
      isize_(item_size(type)),
      bytes_(capacity_items * isize_) {
  assert(capacity_items > 0);
}

std::size_t StreamBuffer::write(const void* data, std::size_t n) {
  const std::size_t accept = std::min(n, writable());
  const auto* src = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < accept; ++i) {
    const std::size_t slot =
        static_cast<std::size_t>((write_count_ + i) % capacity_);
    std::memcpy(&bytes_[slot * isize_], src + i * isize_, isize_);
  }
  write_count_ += accept;
  return accept;
}

std::size_t StreamBuffer::peek(void* out, std::size_t n) const {
  const std::size_t give = std::min(n, readable());
  auto* dst = static_cast<std::uint8_t*>(out);
  for (std::size_t i = 0; i < give; ++i) {
    const std::size_t slot =
        static_cast<std::size_t>((read_count_ + i) % capacity_);
    std::memcpy(dst + i * isize_, &bytes_[slot * isize_], isize_);
  }
  return give;
}

void StreamBuffer::consume(std::size_t n) {
  assert(n <= readable());
  read_count_ += n;
  while (!tags_.empty() && tags_.front().offset < read_count_) {
    tags_.pop_front();
  }
}

void StreamBuffer::add_tag(Tag tag) { tags_.push_back(std::move(tag)); }

std::vector<Tag> StreamBuffer::tags_in_read_range(std::size_t range) {
  std::vector<Tag> result;
  const std::uint64_t lo = read_count_;
  const std::uint64_t hi = read_count_ + range;
  for (const Tag& tag : tags_) {
    if (tag.offset >= lo && tag.offset < hi) result.push_back(tag);
  }
  return result;
}

}  // namespace fdb::fg
