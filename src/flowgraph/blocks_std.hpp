// Standard library of flowgraph blocks: sources, sinks, arithmetic and
// adapters around the dsp primitives. These are the pieces a user wires
// together in the examples (see examples/spectrum_probe.cpp).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "dsp/agc.hpp"
#include "dsp/correlator.hpp"
#include "dsp/envelope.hpp"
#include "dsp/fir.hpp"
#include "dsp/moving_average.hpp"
#include "flowgraph/block.hpp"
#include "util/stats.hpp"

namespace fdb::fg {

/// Emits a fixed vector once, then reports done.
class VectorSourceF : public Block {
 public:
  explicit VectorSourceF(std::vector<float> data);
  WorkStatus work(WorkContext& ctx) override;

 private:
  std::vector<float> data_;
  std::size_t pos_ = 0;
};

class VectorSourceC : public Block {
 public:
  explicit VectorSourceC(std::vector<cf32> data);
  WorkStatus work(WorkContext& ctx) override;

 private:
  std::vector<cf32> data_;
  std::size_t pos_ = 0;
};

/// Pull-based source: calls `fn` to fill chunks until it returns false.
class CallbackSourceC : public Block {
 public:
  using Fill = std::function<bool(std::vector<cf32>&)>;
  explicit CallbackSourceC(Fill fn);
  WorkStatus work(WorkContext& ctx) override;

 private:
  Fill fn_;
  std::vector<cf32> pending_;
  std::size_t pos_ = 0;
  bool exhausted_ = false;
};

/// Collects everything into a vector (test/analysis sink).
class VectorSinkF : public Block {
 public:
  VectorSinkF();
  WorkStatus work(WorkContext& ctx) override;
  const std::vector<float>& data() const { return data_; }

 private:
  std::vector<float> data_;
};

class VectorSinkC : public Block {
 public:
  VectorSinkC();
  WorkStatus work(WorkContext& ctx) override;
  const std::vector<cf32>& data() const { return data_; }

 private:
  std::vector<cf32> data_;
};

/// Discards input (keeps throughput measurements honest).
class NullSinkF : public Block {
 public:
  NullSinkF();
  WorkStatus work(WorkContext& ctx) override;
  std::uint64_t consumed() const { return consumed_; }

 private:
  std::uint64_t consumed_ = 0;
};

/// Streams into a RunningStats (mean/var probes in examples).
class ProbeStatsF : public Block {
 public:
  ProbeStatsF();
  WorkStatus work(WorkContext& ctx) override;
  const RunningStats& stats() const { return stats_; }

 private:
  RunningStats stats_;
};

/// Per-sample lambda transform, float -> float.
class FunctionBlockF : public SyncBlockF {
 public:
  using Fn = std::function<float(float)>;
  FunctionBlockF(std::string name, Fn fn);

 protected:
  void process_chunk(std::span<const float> in, std::span<float> out) override;

 private:
  Fn fn_;
};

/// FIR filter block (float).
class FirBlockF : public SyncBlockF {
 public:
  explicit FirBlockF(std::vector<float> taps);

 protected:
  void process_chunk(std::span<const float> in, std::span<float> out) override;

 private:
  dsp::FirFilterF filter_;
};

/// Envelope detector block: cf32 in, f32 out (1:1).
class EnvelopeBlock : public Block {
 public:
  EnvelopeBlock(double rc_cutoff_hz, double sample_rate_hz);
  WorkStatus work(WorkContext& ctx) override;

 private:
  dsp::EnvelopeDetector detector_;
};

/// Moving average block (float); forwards whole chunks to the batch
/// kernel.
class MovingAverageBlockF : public SyncBlockF {
 public:
  explicit MovingAverageBlockF(std::size_t window);

 protected:
  void process_chunk(std::span<const float> in, std::span<float> out) override;

 private:
  dsp::MovingAverage<float> avg_;
};

/// Feedback AGC block (float), batch kernel per chunk.
class AgcBlockF : public SyncBlockF {
 public:
  AgcBlockF(float target, float rate);

 protected:
  void process_chunk(std::span<const float> in, std::span<float> out) override;

 private:
  dsp::Agc agc_;
};

/// Sliding preamble correlator block: envelope in, normalised
/// correlation out (1:1), batch kernel per chunk. Pair with a peak
/// picker downstream to build a flowgraph acquisition chain.
class CorrelatorBlockF : public SyncBlockF {
 public:
  CorrelatorBlockF(std::vector<float> pattern, std::size_t samples_per_chip);

 protected:
  void process_chunk(std::span<const float> in, std::span<float> out) override;

 private:
  dsp::SlidingCorrelator corr_;
};

/// Keep-1-in-M decimator (float), no anti-alias filter (pair with
/// FirBlockF or MovingAverageBlockF upstream as appropriate).
class KeepOneInN : public Block {
 public:
  explicit KeepOneInN(std::size_t n);
  WorkStatus work(WorkContext& ctx) override;

 private:
  std::size_t n_;
  std::size_t phase_ = 0;
};

/// Element-wise sum of two float streams.
class AddBlockF : public Block {
 public:
  AddBlockF();
  WorkStatus work(WorkContext& ctx) override;
};

/// Element-wise product of two cf32 streams (mixing / reflection).
class MultiplyBlockC : public Block {
 public:
  MultiplyBlockC();
  WorkStatus work(WorkContext& ctx) override;
};

}  // namespace fdb::fg
