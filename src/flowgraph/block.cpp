#include "flowgraph/block.hpp"

#include <algorithm>
#include <array>

namespace fdb::fg {

bool WorkContext::inputs_finished() const {
  for (const StreamBuffer* in : inputs_) {
    if (!in->closed() || in->readable() > 0) return false;
  }
  return true;
}

Block::Block(std::string name, std::vector<PortSpec> inputs,
             std::vector<PortSpec> outputs)
    : name_(std::move(name)),
      inputs_(std::move(inputs)),
      outputs_(std::move(outputs)) {}

SyncBlockF::SyncBlockF(std::string name)
    : Block(std::move(name), {{ItemType::kF32, "in"}},
            {{ItemType::kF32, "out"}}) {}

WorkStatus SyncBlockF::work(WorkContext& ctx) {
  auto& in = ctx.in(0);
  auto& out = ctx.out(0);
  const std::size_t n =
      std::min({in.readable(), out.writable(), kChunk});
  if (n == 0) {
    if (ctx.inputs_finished()) {
      out.close();
      return WorkStatus::kDone;
    }
    return WorkStatus::kBlocked;
  }
  std::array<float, kChunk> ibuf{};
  std::array<float, kChunk> obuf{};
  in.peek_items(std::span<float>(ibuf.data(), n));
  process_chunk(std::span<const float>(ibuf.data(), n),
                std::span<float>(obuf.data(), n));
  const std::size_t written =
      out.write_items(std::span<const float>(obuf.data(), n));
  in.consume(written);
  return WorkStatus::kProgress;
}

}  // namespace fdb::fg
