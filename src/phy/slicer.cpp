#include "phy/slicer.hpp"

#include <algorithm>
#include <cassert>

namespace fdb::phy {

IntegrateAndDump::IntegrateAndDump(std::size_t samples_per_chip)
    : spc_(samples_per_chip) {
  assert(samples_per_chip > 0);
}

void IntegrateAndDump::process(std::span<const float> samples,
                               std::vector<float>& chips) {
  for (const float s : samples) {
    acc_ += s;
    if (++count_ == spc_) {
      chips.push_back(static_cast<float>(acc_ / static_cast<double>(spc_)));
      acc_ = 0.0;
      count_ = 0;
    }
  }
}

void IntegrateAndDump::reset() {
  acc_ = 0.0;
  count_ = 0;
}

AdaptiveSlicer::AdaptiveSlicer(SlicerConfig config)
    : config_(config), history_(config.window_chips, 0.0f) {
  assert(config.window_chips >= 2);
}

std::uint8_t AdaptiveSlicer::decide(float chip_avg) {
  history_[pos_] = chip_avg;
  pos_ = (pos_ + 1) % history_.size();
  if (filled_ < history_.size()) ++filled_;

  // Threshold = midpoint of observed extremes over the window. With an
  // OOK chip stream both levels appear frequently (FM0 is DC balanced),
  // so min/max track the two envelope levels.
  float lo = history_[0];
  float hi = history_[0];
  for (std::size_t i = 0; i < filled_; ++i) {
    lo = std::min(lo, history_[i]);
    hi = std::max(hi, history_[i]);
  }
  threshold_ = 0.5f * (lo + hi);
  const float swing = std::max(hi - lo, 1e-12f);

  float effective_threshold = threshold_;
  if (config_.hysteresis > 0.0f) {
    // Pull the threshold away from the current state to resist noise.
    const float offset = config_.hysteresis * swing;
    effective_threshold += last_decision_ ? -offset : offset;
  }

  soft_ = std::clamp(0.5f + (chip_avg - effective_threshold) / swing, 0.0f,
                     1.0f);
  last_decision_ = chip_avg >= effective_threshold ? 1 : 0;
  return last_decision_;
}

void AdaptiveSlicer::process(std::span<const float> chip_avgs,
                             std::vector<std::uint8_t>& decisions,
                             std::vector<float>* soft) {
  for (const float avg : chip_avgs) {
    decisions.push_back(decide(avg));
    if (soft != nullptr) soft->push_back(soft_);
  }
}

void AdaptiveSlicer::reset() {
  std::fill(history_.begin(), history_.end(), 0.0f);
  pos_ = 0;
  filled_ = 0;
  threshold_ = 0.0f;
  soft_ = 0.5f;
  last_decision_ = 0;
}

}  // namespace fdb::phy
