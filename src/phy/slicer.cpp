#include "phy/slicer.hpp"

#include <algorithm>
#include <cassert>

namespace fdb::phy {

IntegrateAndDump::IntegrateAndDump(std::size_t samples_per_chip)
    : spc_(samples_per_chip) {
  assert(samples_per_chip > 0);
}

void IntegrateAndDump::process(std::span<const float> samples,
                               std::vector<float>& chips) {
  for (const float s : samples) {
    acc_ += s;
    if (++count_ == spc_) {
      chips.push_back(static_cast<float>(acc_ / static_cast<double>(spc_)));
      acc_ = 0.0;
      count_ = 0;
    }
  }
}

void IntegrateAndDump::reset() {
  acc_ = 0.0;
  count_ = 0;
}

AdaptiveSlicer::AdaptiveSlicer(SlicerConfig config)
    : config_(config), history_(config.window_chips, 0.0f) {
  assert(config.window_chips >= 2);
}

std::uint8_t AdaptiveSlicer::decide(float chip_avg) {
  history_[pos_] = chip_avg;
  pos_ = (pos_ + 1) % history_.size();
  if (filled_ < history_.size()) ++filled_;

  // Threshold = midpoint of observed extremes over the window. With an
  // OOK chip stream both levels appear frequently (FM0 is DC balanced),
  // so min/max track the two envelope levels.
  float lo = history_[0];
  float hi = history_[0];
  for (std::size_t i = 0; i < filled_; ++i) {
    lo = std::min(lo, history_[i]);
    hi = std::max(hi, history_[i]);
  }
  threshold_ = 0.5f * (lo + hi);
  const float swing = std::max(hi - lo, 1e-12f);

  float effective_threshold = threshold_;
  if (config_.hysteresis > 0.0f) {
    // Pull the threshold away from the current state to resist noise.
    const float offset = config_.hysteresis * swing;
    effective_threshold += last_decision_ ? -offset : offset;
  }

  soft_ = std::clamp(0.5f + (chip_avg - effective_threshold) / swing, 0.0f,
                     1.0f);
  last_decision_ = chip_avg >= effective_threshold ? 1 : 0;
  return last_decision_;
}

void AdaptiveSlicer::process(std::span<const float> chip_avgs,
                             std::vector<std::uint8_t>& decisions,
                             std::vector<float>* soft) {
  // Rolling window extremes over the virtual sequence
  //   [the filled_ retained values, oldest first] ++ chip_avgs
  // via monotonic deques: each element enters and leaves each deque at
  // most once, so the whole batch costs O(n) instead of O(n·window).
  // The front of each deque is exactly the min/max decide() finds by
  // rescanning — same floats, same decisions.
  const std::size_t w = history_.size();
  const std::size_t prior = filled_;
  minq_.clear();
  maxq_.clear();
  std::size_t min_head = 0;
  std::size_t max_head = 0;
  const auto push = [&](std::size_t idx, float v) {
    while (minq_.size() > min_head && minq_.back().second >= v) {
      minq_.pop_back();
    }
    minq_.emplace_back(idx, v);
    while (maxq_.size() > max_head && maxq_.back().second <= v) {
      maxq_.pop_back();
    }
    maxq_.emplace_back(idx, v);
  };
  for (std::size_t k = 0; k < prior; ++k) {
    push(k, history_[(pos_ + w - prior + k) % w]);
  }
  for (std::size_t i = 0; i < chip_avgs.size(); ++i) {
    const float v = chip_avgs[i];
    const std::size_t idx = prior + i;
    push(idx, v);
    // Evict indices that fell out of the w-wide window ending at idx.
    const std::size_t oldest = idx + 1 >= w ? idx + 1 - w : 0;
    while (minq_[min_head].first < oldest) ++min_head;
    while (maxq_[max_head].first < oldest) ++max_head;
    const float lo = minq_[min_head].second;
    const float hi = maxq_[max_head].second;
    threshold_ = 0.5f * (lo + hi);
    const float swing = std::max(hi - lo, 1e-12f);
    float effective_threshold = threshold_;
    if (config_.hysteresis > 0.0f) {
      const float offset = config_.hysteresis * swing;
      effective_threshold += last_decision_ ? -offset : offset;
    }
    soft_ = std::clamp(0.5f + (v - effective_threshold) / swing, 0.0f,
                       1.0f);
    last_decision_ = v >= effective_threshold ? 1 : 0;
    decisions.push_back(last_decision_);
    if (soft != nullptr) soft->push_back(soft_);
    history_[pos_] = v;
    pos_ = (pos_ + 1) % w;
    if (filled_ < w) ++filled_;
  }
}

void AdaptiveSlicer::reset() {
  std::fill(history_.begin(), history_.end(), 0.0f);
  pos_ = 0;
  filled_ = 0;
  threshold_ = 0.0f;
  soft_ = 0.5f;
  last_decision_ = 0;
}

}  // namespace fdb::phy
