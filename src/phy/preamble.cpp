#include "phy/preamble.hpp"

namespace fdb::phy {

std::vector<std::uint8_t> barker13_chips() {
  // +1 +1 +1 +1 +1 -1 -1 +1 +1 -1 +1 -1 +1
  return {1, 1, 1, 1, 1, 0, 0, 1, 1, 0, 1, 0, 1};
}

std::vector<std::uint8_t> barker11_chips() {
  // +1 +1 +1 -1 -1 -1 +1 -1 -1 +1 -1
  return {1, 1, 1, 0, 0, 0, 1, 0, 0, 1, 0};
}

std::vector<float> chips_to_pattern(std::span<const std::uint8_t> chips) {
  std::vector<float> pattern;
  pattern.reserve(chips.size());
  for (const std::uint8_t c : chips) pattern.push_back(c ? 1.0f : -1.0f);
  return pattern;
}

std::vector<std::uint8_t> default_preamble_chips() {
  // 8 alternating chips settle the receiver's averaging windows, then
  // Barker-13 twice: the doubled sync word halves the correlation noise
  // and squares the odds of a payload imposter, extending the SNR range
  // over which acquisition (not bit decisions) limits the link.
  std::vector<std::uint8_t> chips = {1, 0, 1, 0, 1, 0, 1, 0};
  const auto barker = barker13_chips();
  chips.insert(chips.end(), barker.begin(), barker.end());
  chips.insert(chips.end(), barker.begin(), barker.end());
  return chips;
}

std::size_t default_preamble_length() { return 8 + 13 + 13; }

}  // namespace fdb::phy
