#include "phy/fg_blocks.hpp"

#include <algorithm>
#include <array>

namespace fdb::phy {

FrameSinkBlock::FrameSinkBlock(ModemConfig config)
    : fg::Block("frame_sink", {{fg::ItemType::kF32, "envelope"}}, {}),
      receiver_(config,
                [this](const StreamFrame& frame) { frames_.push_back(frame); }) {}

fg::WorkStatus FrameSinkBlock::work(fg::WorkContext& ctx) {
  auto& in = ctx.in(0);
  // Matches the receiver's internal batch granularity so each work()
  // call hands the batch receive chain one full-sized chunk.
  constexpr std::size_t kChunk = 4096;
  const std::size_t n = std::min(in.readable(), kChunk);
  if (n == 0) {
    return ctx.inputs_finished() ? fg::WorkStatus::kDone
                                 : fg::WorkStatus::kBlocked;
  }
  std::array<float, kChunk> buf{};
  in.peek_items(std::span<float>(buf.data(), n));
  receiver_.process(std::span<const float>(buf.data(), n));
  in.consume(n);
  return fg::WorkStatus::kProgress;
}

}  // namespace fdb::phy
