#include "phy/modem.hpp"

#include <cassert>

#include "dsp/correlator.hpp"
#include "dsp/moving_average.hpp"

namespace fdb::phy {

BackscatterTx::BackscatterTx(ModemConfig config) : config_(config) {
  assert(config_.rates.valid());
}

std::vector<std::uint8_t> BackscatterTx::chips_to_states(
    std::span<const std::uint8_t> chips) const {
  std::vector<std::uint8_t> states;
  states.reserve(chips.size() * config_.rates.samples_per_chip);
  for (const std::uint8_t chip : chips) {
    states.insert(states.end(), config_.rates.samples_per_chip, chip);
  }
  return states;
}

std::vector<std::uint8_t> BackscatterTx::modulate_frame(
    std::span<const std::uint8_t> payload) const {
  auto chips = default_preamble_chips();
  const auto frame_bits = frame_to_bits(payload);
  const auto data_chips = encode(config_.line_code, frame_bits);
  chips.insert(chips.end(), data_chips.begin(), data_chips.end());
  return chips_to_states(chips);
}

std::vector<std::uint8_t> BackscatterTx::modulate_bits(
    std::span<const std::uint8_t> bits) const {
  auto chips = default_preamble_chips();
  const auto data_chips = encode(config_.line_code, bits);
  chips.insert(chips.end(), data_chips.begin(), data_chips.end());
  return chips_to_states(chips);
}

std::size_t BackscatterTx::frame_samples(std::size_t payload_bytes) const {
  const std::size_t chips = default_preamble_length() +
                            2 * frame_bits_for_payload(payload_bytes);
  return chips * config_.rates.samples_per_chip;
}

BackscatterRx::BackscatterRx(ModemConfig config) : config_(config) {
  assert(config_.rates.valid());
}

std::optional<std::size_t> BackscatterRx::find_sync(
    std::span<const float> envelope, float* corr_out) const {
  // Burst-mode sync: global scan of the normalised preamble correlation
  // over the whole capture, on the MAGNITUDE of the correlation. A
  // fading draw can invert the backscatter swing (destructive phase);
  // FM0 data is equality-coded and the slicer is adaptive, so an
  // inverted frame decodes fine — acquisition must not reject it.
  //
  // For long chips, correlation is computed on a strided subsample
  // (accuracy ±stride) and refine_data_start() recovers exact timing;
  // this keeps sync O(N·W/stride²) instead of O(N·W).
  const std::size_t spc = config_.rates.samples_per_chip;
  std::size_t stride = 1;
  if (spc >= 16) {
    for (std::size_t s = spc / 8; s >= 2; --s) {
      if (spc % s == 0) {
        stride = s;
        break;
      }
    }
  }
  const auto preamble = default_preamble_chips();
  dsp::SlidingCorrelator correlator(chips_to_pattern(preamble),
                                    spc / stride);
  const std::size_t strided_len = envelope.size() / stride;
  std::vector<float> corr(strided_len);
  // With long chips the raw envelope fluctuates far more than the
  // backscatter swing (ambient OFDM carriers especially); average over
  // half a chip before striding. Half, not whole: a full-chip boxcar
  // has its first null exactly at the chip rate and would erase the
  // alternating preamble.
  //
  // Whole-capture batch chain: smooth everything with the moving
  // average's block kernel, gather the strided subsample, then run the
  // correlator's block kernel over it — no per-sample call overhead.
  dsp::MovingAverage<float> prefilter(stride > 1 ? spc / 2 : 1);
  std::vector<float> smoothed(envelope.size());
  prefilter.process(envelope, smoothed);
  std::vector<float> strided(strided_len);
  for (std::size_t j = 0; j < strided_len; ++j) {
    strided[j] = smoothed[j * stride + stride - 1];
  }
  correlator.process(strided, corr);
  float best_abs = -2.0f;
  for (const float c : corr) best_abs = std::max(best_abs, std::abs(c));
  if (best_abs < config_.sync_threshold) {
    if (corr_out != nullptr) *corr_out = 0.0f;
    return std::nullopt;
  }
  // Payload chips can imitate the preamble; random noise occasionally
  // pushes such an imposter above the true peak. The preamble always
  // comes first, so take the EARLIEST peak within tolerance of the
  // global maximum rather than the maximum itself.
  const float accept = std::max(config_.sync_threshold, 0.92f * best_abs);
  for (std::size_t j = 0; j < strided_len; ++j) {
    if (std::abs(corr[j]) >= accept) {
      // Walk to the local crest so chip alignment stays tight.
      std::size_t peak = j;
      while (peak + 1 < strided_len &&
             std::abs(corr[peak + 1]) >= std::abs(corr[peak])) {
        ++peak;
      }
      if (corr_out != nullptr) *corr_out = corr[peak];
      return peak * stride;
    }
  }
  if (corr_out != nullptr) *corr_out = best_abs;
  return std::nullopt;  // unreachable; keeps the compiler satisfied
}

std::size_t BackscatterRx::refine_data_start(
    std::span<const float> envelope, std::size_t coarse_data_start) const {
  // Fine timing recovery: the correlation argmax jitters by a sample or
  // two under noise, which shears every chip-average window. The
  // preamble chips are known, so test candidate offsets and keep the one
  // whose chip averages correlate best with the expected ±1 pattern.
  const std::size_t spc = config_.rates.samples_per_chip;
  const auto preamble = default_preamble_chips();
  const std::size_t pre_samples = preamble.size() * spc;

  double best_metric = -1e300;
  std::size_t best_start = coarse_data_start;
  const int range = static_cast<int>(spc) - 1;
  for (int delta = -range; delta <= range; ++delta) {
    const long start_l = static_cast<long>(coarse_data_start) + delta;
    if (start_l < static_cast<long>(pre_samples)) continue;
    const auto start = static_cast<std::size_t>(start_l);
    if (start > envelope.size()) continue;
    const std::size_t pre_start = start - pre_samples;
    // Chip averages over the candidate preamble window.
    double metric = 0.0;
    double mean = 0.0;
    std::vector<double> avgs(preamble.size(), 0.0);
    for (std::size_t c = 0; c < preamble.size(); ++c) {
      double acc = 0.0;
      for (std::size_t s = 0; s < spc; ++s) {
        acc += envelope[pre_start + c * spc + s];
      }
      avgs[c] = acc / static_cast<double>(spc);
      mean += avgs[c];
    }
    mean /= static_cast<double>(preamble.size());
    for (std::size_t c = 0; c < preamble.size(); ++c) {
      metric += (avgs[c] - mean) * (preamble[c] ? 1.0 : -1.0);
    }
    // Magnitude: an inverted-polarity frame correlates negatively but
    // its timing information is just as sharp.
    if (std::abs(metric) > best_metric) {
      best_metric = std::abs(metric);
      best_start = start;
    }
  }
  return best_start;
}

std::vector<std::uint8_t> BackscatterRx::slice_chips(
    std::span<const float> envelope, std::size_t preamble_start,
    std::size_t data_start, std::size_t max_chips) const {
  const std::size_t spc = config_.rates.samples_per_chip;
  IntegrateAndDump integrator(spc);
  AdaptiveSlicer slicer(config_.slicer);

  // Prime threshold estimation on the preamble chips (both levels are
  // guaranteed present there), then slice data chips for real.
  std::vector<float> preamble_chip_avgs;
  integrator.process(
      envelope.subspan(preamble_start, data_start - preamble_start),
      preamble_chip_avgs);
  std::vector<std::uint8_t> scratch;
  slicer.process(preamble_chip_avgs, scratch);
  integrator.reset();

  std::vector<float> chip_avgs;
  const std::size_t avail = envelope.size() - data_start;
  const std::size_t want = std::min(max_chips * spc, avail - avail % spc);
  integrator.process(envelope.subspan(data_start, want), chip_avgs);

  std::vector<std::uint8_t> decisions;
  slicer.process(chip_avgs, decisions);
  // Line codes carry 2 chips per bit; a trailing odd chip is capture
  // padding, not data.
  if (decisions.size() % 2 != 0) decisions.pop_back();
  return decisions;
}

void BackscatterRx::decode_frame_from(std::span<const float> envelope,
                                      std::size_t data_start_hint,
                                      RxResult& result) const {
  const std::size_t spc = config_.rates.samples_per_chip;
  const std::size_t preamble_samples = default_preamble_length() * spc;
  const std::size_t data_start = refine_data_start(envelope, data_start_hint);
  const std::size_t preamble_start = data_start - preamble_samples;
  result.diag.sync_sample = data_start - 1;

  const std::size_t max_chips =
      2 * frame_bits_for_payload(FrameLimits::kMaxPayloadBytes);
  auto chips = slice_chips(envelope, preamble_start, data_start, max_chips);
  result.diag.chips_decoded = chips.size();

  const auto bits = decode(config_.line_code, chips);
  if (!bits.has_value()) {
    result.status = Status::kTruncated;
    result.diag.chip_decisions = std::move(chips);
    return;
  }
  auto deframed = deframe_bits(*bits);
  result.status = deframed.status;
  result.payload = std::move(deframed.payload);
  result.diag.chip_decisions = std::move(chips);
}

RxResult BackscatterRx::demodulate_frame(
    std::span<const float> envelope) const {
  RxResult result;
  const auto sync =
      find_sync(envelope, &result.diag.sync_corr);
  if (!sync.has_value()) {
    result.status = Status::kSyncNotFound;
    return result;
  }
  const std::size_t spc = config_.rates.samples_per_chip;
  const std::size_t preamble_samples = default_preamble_length() * spc;
  const std::size_t data_start = *sync + 1;
  if (data_start < preamble_samples) {
    result.status = Status::kSyncNotFound;
    return result;
  }
  decode_frame_from(envelope, data_start, result);
  return result;
}

RxResult BackscatterRx::demodulate_frame_at(
    std::span<const float> envelope, std::size_t data_start_hint) const {
  RxResult result;
  const std::size_t preamble_samples =
      default_preamble_length() * config_.rates.samples_per_chip;
  if (data_start_hint < preamble_samples ||
      data_start_hint > envelope.size()) {
    result.status = Status::kSyncNotFound;
    return result;
  }
  decode_frame_from(envelope, data_start_hint, result);
  return result;
}

std::optional<std::vector<std::uint8_t>> BackscatterRx::demodulate_bits(
    std::span<const float> envelope, std::size_t num_bits,
    RxDiagnostics* diag) const {
  float corr = 0.0f;
  const auto sync = find_sync(envelope, &corr);
  if (!sync.has_value()) return std::nullopt;
  const std::size_t preamble_samples =
      default_preamble_length() * config_.rates.samples_per_chip;
  const std::size_t data_start = *sync + 1;
  if (data_start < preamble_samples) return std::nullopt;
  auto bits = demodulate_bits_at(envelope, num_bits, data_start, diag);
  if (diag != nullptr) {
    // The burst path reports the coarse correlation peak, not the
    // refined edge, matching its historical diagnostics.
    diag->sync_corr = corr;
    diag->sync_sample = *sync;
  }
  return bits;
}

std::optional<std::vector<std::uint8_t>> BackscatterRx::demodulate_bits_at(
    std::span<const float> envelope, std::size_t num_bits,
    std::size_t data_start_hint, RxDiagnostics* diag) const {
  const std::size_t spc = config_.rates.samples_per_chip;
  const std::size_t preamble_samples = default_preamble_length() * spc;
  if (data_start_hint < preamble_samples ||
      data_start_hint > envelope.size()) {
    return std::nullopt;
  }
  const std::size_t data_start = refine_data_start(envelope, data_start_hint);
  const std::size_t preamble_start = data_start - preamble_samples;

  auto chips = slice_chips(envelope, preamble_start, data_start,
                           2 * num_bits);
  if (diag != nullptr) {
    diag->sync_sample = data_start - 1;
    diag->chips_decoded = chips.size();
    diag->chip_decisions = chips;
  }
  auto bits = decode(config_.line_code, chips);
  if (!bits.has_value()) return std::nullopt;
  if (bits->size() > num_bits) bits->resize(num_bits);
  return bits;
}

}  // namespace fdb::phy
