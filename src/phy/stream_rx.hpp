// Streaming receiver: continuous decoding of an unbounded envelope
// stream, frame after frame. Where BackscatterRx assumes one burst per
// capture, StreamingReceiver runs a search->decode state machine with
// bounded memory, suitable for live operation behind an envelope
// detector (or as a flowgraph sink — see fg::FrameSinkBlock).
//
// Batch receive path: process(span) appends each chunk to a contiguous
// history buffer once, then drains the buffered samples through the
// state machine with a rewindable scan cursor — the correlator's batch
// kernel runs over whole sub-spans (no per-sample virtual dispatch, no
// deque churn), and the demodulator gets a zero-copy span of that same
// buffer when a frame completes. Because the correlator is chunk-size
// invariant and all trim decisions are made against absolute stream
// positions, any chunking of the input produces bit-identical frames.
//
// Resync hardening: when a candidate frame fails to decode (header
// undecodable, header CRC mismatch, payload CRC failure), the scan
// cursor rewinds to one sample past the failed sync instead of
// discarding everything collected — a genuine frame whose preamble
// landed inside the failed candidate's collect window (a false peak
// just ahead of a real burst, or a truncated frame butted against its
// successor) is still acquired. The rewind is bounded: history already
// retains the window, each confirmed peak is strictly later than the
// previous rewind target, and reprocessing per failure is capped by
// the collect window length.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "dsp/correlator.hpp"
#include "phy/modem.hpp"

namespace fdb::phy {

struct StreamFrame {
  Status status = Status::kCrcMismatch;
  std::vector<std::uint8_t> payload;
  std::uint64_t start_sample = 0;  // absolute index of first data sample
  float sync_corr = 0.0f;
};

class StreamingReceiver {
 public:
  using FrameHandler = std::function<void(const StreamFrame&)>;

  /// `handler` fires once per decoded (or CRC-failed) frame.
  StreamingReceiver(ModemConfig config, FrameHandler handler);

  /// Feeds envelope samples; may invoke the handler zero or more times.
  void process(std::span<const float> samples);

  /// Samples consumed so far (absolute stream position). The internal
  /// scan cursor may sit earlier mid-drain after a decode-failure
  /// rewind, but it always catches back up before process() returns.
  std::uint64_t samples_processed() const { return fed_; }

  /// Frames attempted (handler invocations).
  std::uint64_t frames_seen() const { return frames_; }

  void reset();

 private:
  enum class State { kSearching, kCollecting };

  /// Runs the state machine over the buffered-but-unscanned samples
  /// until the scan cursor reaches the fed position (re-spanning after
  /// every step, since a failed decode may rewind the cursor).
  void drain();

  /// Correlates chunk[i..] in one batch and scans for a confirmed peak.
  /// Returns the index one past the last consumed chunk sample.
  std::size_t search_span(std::span<const float> chunk, std::size_t i);

  /// Consumes collecting-state samples in bulk up to the decode target.
  std::size_t collect_span(std::span<const float> chunk, std::size_t i);

  void try_decode();
  void abandon_sync();
  void resync_rewind();

  // --- contiguous history ------------------------------------------------
  // buf_[head_..] holds samples [history_start_, history_start_ + size).
  // Appends are bulk copies; front drops advance head_ and the storage is
  // compacted only when the dead prefix dominates (amortised O(1)).
  void append_history(std::span<const float> chunk);
  void drop_history_front(std::uint64_t new_start);
  std::size_t history_size() const { return buf_.size() - head_; }

  ModemConfig config_;
  FrameHandler handler_;
  dsp::SlidingCorrelator correlator_;
  dsp::PeakDetector peaks_;
  State state_ = State::kSearching;
  std::uint64_t position_ = 0;  // scan cursor; rewinds on decode failure
  std::uint64_t fed_ = 0;       // total samples ever fed (monotone)
  std::uint64_t frames_ = 0;

  std::vector<float> buf_;
  std::size_t head_ = 0;
  std::uint64_t history_start_ = 0;  // absolute index of buf_[head_]
  std::vector<float> corr_;          // batch correlation scratch

  std::size_t history_cap_;          // retained history while searching
  std::uint64_t search_start_ = 0;   // history_start_ when search began
  std::uint64_t detector_base_ = 0;  // abs position at last peak reset
  std::uint64_t sync_sample_ = 0;    // absolute peak position
  float sync_corr_ = 0.0f;
  std::size_t body_target_ = 0;      // samples needed past the peak
};

}  // namespace fdb::phy
