// Streaming receiver: continuous decoding of an unbounded envelope
// stream, frame after frame. Where BackscatterRx assumes one burst per
// capture, StreamingReceiver runs a search->decode state machine with
// bounded memory, suitable for live operation behind an envelope
// detector (or as a flowgraph sink — see fg::FrameSinkBlock).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <span>
#include <vector>

#include "dsp/correlator.hpp"
#include "phy/modem.hpp"

namespace fdb::phy {

struct StreamFrame {
  Status status = Status::kCrcMismatch;
  std::vector<std::uint8_t> payload;
  std::uint64_t start_sample = 0;  // absolute index of first data sample
  float sync_corr = 0.0f;
};

class StreamingReceiver {
 public:
  using FrameHandler = std::function<void(const StreamFrame&)>;

  /// `handler` fires once per decoded (or CRC-failed) frame.
  StreamingReceiver(ModemConfig config, FrameHandler handler);

  /// Feeds envelope samples; may invoke the handler zero or more times.
  void process(std::span<const float> samples);

  /// Samples consumed so far (absolute stream position).
  std::uint64_t samples_processed() const { return position_; }

  /// Frames attempted (handler invocations).
  std::uint64_t frames_seen() const { return frames_; }

  void reset();

 private:
  enum class State { kSearching, kCollecting };

  void feed(float sample);
  void try_decode();
  void abandon_sync();

  ModemConfig config_;
  FrameHandler handler_;
  dsp::SlidingCorrelator correlator_;
  dsp::PeakDetector peaks_;
  State state_ = State::kSearching;
  std::uint64_t position_ = 0;
  std::uint64_t frames_ = 0;

  // Rolling history long enough to re-slice from the preamble once a
  // peak confirms, plus the frame body as it streams in.
  std::deque<float> history_;
  std::size_t history_cap_;
  std::uint64_t history_start_ = 0;  // absolute index of history_[0]
  std::uint64_t detector_base_ = 0;  // abs position at last peak reset
  std::uint64_t sync_sample_ = 0;    // absolute peak position
  float sync_corr_ = 0.0f;
  std::size_t body_target_ = 0;      // samples needed past the peak
};

}  // namespace fdb::phy
