// Chip recovery from envelope samples.
//
// IntegrateAndDump averages the envelope across each chip interval —
// the maximum-likelihood statistic for OOK in white noise, and exactly
// what an RC integrator + comparator implements in tag hardware.
//
// AdaptiveSlicer converts chip averages to 0/1 decisions against a
// threshold placed midway between recent high and low levels, tracking
// the slow drift of the ambient carrier's local mean.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace fdb::phy {

/// Averages consecutive runs of `samples_per_chip` envelope samples into
/// one value per chip.
class IntegrateAndDump {
 public:
  explicit IntegrateAndDump(std::size_t samples_per_chip);

  /// Feeds samples; appends completed chip averages to `chips`.
  void process(std::span<const float> samples, std::vector<float>& chips);

  /// Drops any partial accumulation (used at frame boundaries).
  void reset();

  std::size_t samples_per_chip() const { return spc_; }

 private:
  std::size_t spc_;
  double acc_ = 0.0;
  std::size_t count_ = 0;
};

struct SlicerConfig {
  std::size_t window_chips = 32;   // history for threshold estimation
  float hysteresis = 0.0f;         // fraction of swing; 0 disables
};

class AdaptiveSlicer {
 public:
  explicit AdaptiveSlicer(SlicerConfig config = {});

  /// Decides one chip; also exposes the soft value (distance from the
  /// threshold normalised by swing, clamped to [0,1]).
  std::uint8_t decide(float chip_avg);
  float last_soft() const { return soft_; }
  float threshold() const { return threshold_; }

  /// Batch path: identical decisions/soft values/state evolution to
  /// calling decide() per chip, but the per-chip O(window) min/max
  /// rescan is replaced by monotonic-deque rolling extremes (amortised
  /// O(1) per chip). Bit-identical because window min/max are
  /// order-independent — no FP reassociation is involved. Inputs must
  /// be finite (envelope averages always are).
  void process(std::span<const float> chip_avgs,
               std::vector<std::uint8_t>& decisions,
               std::vector<float>* soft = nullptr);

  void reset();

 private:
  SlicerConfig config_;
  std::vector<float> history_;
  std::size_t pos_ = 0;
  std::size_t filled_ = 0;
  float threshold_ = 0.0f;
  float soft_ = 0.5f;
  std::uint8_t last_decision_ = 0;

  /// Monotonic-deque scratch for the batch path (index into the
  /// virtual prior+batch sequence, value). Members so capacity
  /// persists across calls.
  std::vector<std::pair<std::size_t, float>> minq_;
  std::vector<std::pair<std::size_t, float>> maxq_;
};

}  // namespace fdb::phy
