// Flowgraph adapters for the PHY: run a live receive chain as a graph
// (envelope detector block -> FrameSinkBlock) the way a GNU Radio user
// would wire it.
#pragma once

#include <vector>

#include "flowgraph/block.hpp"
#include "phy/stream_rx.hpp"

namespace fdb::phy {

/// Terminal block feeding a StreamingReceiver; decoded frames are
/// collected and can be read after graph.run().
class FrameSinkBlock : public fg::Block {
 public:
  explicit FrameSinkBlock(ModemConfig config);

  fg::WorkStatus work(fg::WorkContext& ctx) override;

  const std::vector<StreamFrame>& frames() const { return frames_; }

 private:
  std::vector<StreamFrame> frames_;
  StreamingReceiver receiver_;
};

}  // namespace fdb::phy
