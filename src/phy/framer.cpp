#include "phy/framer.hpp"

#include <cassert>

#include "util/bits.hpp"
#include "util/crc.hpp"

namespace fdb::phy {

std::vector<std::uint8_t> frame_to_bits(
    std::span<const std::uint8_t> payload) {
  assert(payload.size() <= FrameLimits::kMaxPayloadBytes);
  std::vector<std::uint8_t> bits;
  bits.reserve(frame_bits_for_payload(payload.size()));

  const auto len = static_cast<std::uint8_t>(payload.size());
  append_bits(bits, len, 8);
  append_bits(bits, crc8({&len, 1}), 8);

  for (const std::uint8_t byte : payload) append_bits(bits, byte, 8);
  append_bits(bits, crc16(payload), 16);
  return bits;
}

std::size_t frame_bits_for_payload(std::size_t payload_bytes) {
  return 8 + 8 + payload_bytes * 8 + 16;
}

DeframeResult deframe_bits(std::span<const std::uint8_t> bits) {
  DeframeResult result;
  if (bits.size() < 16) {
    result.status = Status::kTruncated;
    return result;
  }
  const auto len = static_cast<std::uint8_t>(read_bits(bits, 0, 8));
  const auto hdr_crc = static_cast<std::uint8_t>(read_bits(bits, 8, 8));
  if (crc8({&len, 1}) != hdr_crc) {
    result.status = Status::kCrcMismatch;
    result.header_ok = false;
    result.bits_consumed = 16;
    return result;
  }
  result.header_ok = true;
  const std::size_t need = frame_bits_for_payload(len);
  if (bits.size() < need) {
    result.status = Status::kTruncated;
    return result;
  }
  std::vector<std::uint8_t> payload(len);
  for (std::size_t i = 0; i < len; ++i) {
    payload[i] = static_cast<std::uint8_t>(read_bits(bits, 16 + i * 8, 8));
  }
  const auto body_crc =
      static_cast<std::uint16_t>(read_bits(bits, 16 + len * 8ul, 16));
  result.bits_consumed = need;
  if (crc16(payload) != body_crc) {
    result.status = Status::kCrcMismatch;
    return result;
  }
  result.status = Status::kOk;
  result.payload = std::move(payload);
  return result;
}

std::vector<std::uint8_t> blocks_to_bits(std::span<const std::uint8_t> payload,
                                         std::size_t block_size) {
  assert(block_size > 0);
  std::vector<std::uint8_t> bits;
  bits.reserve(block_bits_for_payload(payload.size(), block_size));
  for (std::size_t start = 0; start < payload.size(); start += block_size) {
    const std::size_t n = std::min(block_size, payload.size() - start);
    const auto block = payload.subspan(start, n);
    for (const std::uint8_t byte : block) append_bits(bits, byte, 8);
    append_bits(bits, crc8(block), 8);
  }
  return bits;
}

BlockDecodeResult decode_blocks(std::span<const std::uint8_t> bits,
                                std::size_t payload_bytes,
                                std::size_t block_size) {
  assert(block_size > 0);
  BlockDecodeResult result;
  std::size_t offset = 0;
  for (std::size_t start = 0; start < payload_bytes; start += block_size) {
    const std::size_t n = std::min(block_size, payload_bytes - start);
    const std::size_t need = n * 8 + 8;
    if (offset + need > bits.size()) {
      // Truncated tail: mark remaining blocks failed.
      result.block_ok.push_back(false);
      ++result.blocks_failed;
      result.payload.insert(result.payload.end(), n, 0);
      continue;
    }
    std::vector<std::uint8_t> data(n);
    for (std::size_t i = 0; i < n; ++i) {
      data[i] =
          static_cast<std::uint8_t>(read_bits(bits, offset + i * 8, 8));
    }
    const auto rx_crc =
        static_cast<std::uint8_t>(read_bits(bits, offset + n * 8, 8));
    const bool ok = crc8(data) == rx_crc;
    result.block_ok.push_back(ok);
    if (!ok) ++result.blocks_failed;
    result.payload.insert(result.payload.end(), data.begin(), data.end());
    offset += need;
  }
  return result;
}

std::size_t block_bits_for_payload(std::size_t payload_bytes,
                                   std::size_t block_size) {
  assert(block_size > 0);
  const std::size_t full_blocks = payload_bytes / block_size;
  const std::size_t tail = payload_bytes % block_size;
  std::size_t bits = full_blocks * (block_size * 8 + 8);
  if (tail) bits += tail * 8 + 8;
  return bits;
}

}  // namespace fdb::phy
