#include "phy/stream_rx.hpp"

#include <cassert>

#include "util/bits.hpp"
#include "util/crc.hpp"
#include "util/log.hpp"

namespace fdb::phy {
namespace {

// Header = length(8) + crc8(8) bits -> chips -> samples, plus margin
// for the slicer's chip alignment.
std::size_t header_samples(const ModemConfig& config) {
  return (2 * 16 + 4) * config.rates.samples_per_chip;
}

}  // namespace

StreamingReceiver::StreamingReceiver(ModemConfig config, FrameHandler handler)
    : config_(config),
      handler_(std::move(handler)),
      correlator_(chips_to_pattern(default_preamble_chips()),
                  config.rates.samples_per_chip),
      peaks_(config.sync_threshold, config.rates.samples_per_chip * 4) {
  assert(config_.rates.valid());
  const std::size_t preamble =
      default_preamble_length() * config_.rates.samples_per_chip;
  // While searching we only ever need the preamble plus slack.
  history_cap_ = preamble + 8 * config_.rates.samples_per_chip;
}

void StreamingReceiver::process(std::span<const float> samples) {
  for (const float s : samples) feed(s);
}

void StreamingReceiver::abandon_sync() {
  state_ = State::kSearching;
  history_.clear();
  history_start_ = position_;
  correlator_.reset();
  peaks_.reset();
  detector_base_ = position_;
}

void StreamingReceiver::feed(float sample) {
  history_.push_back(sample);
  const std::uint64_t abs_index = position_++;

  if (state_ == State::kSearching) {
    while (history_.size() > history_cap_) {
      history_.pop_front();
      ++history_start_;
    }
    const float corr = correlator_.process(sample);
    // Magnitude: polarity-inverted frames still acquire (FM0 decodes
    // either way).
    const auto peak = peaks_.process(std::abs(corr));
    if (!peak.has_value()) return;

    // PeakDetector indexes from its last reset; map to stream position.
    const std::uint64_t peak_abs = detector_base_ + *peak;
    const std::size_t preamble =
        default_preamble_length() * config_.rates.samples_per_chip;
    if (peak_abs + 1 < preamble + history_start_) {
      return;  // not enough context retained; keep searching
    }
    // Trim history so it starts at the preamble.
    const std::uint64_t preamble_start = peak_abs + 1 - preamble;
    while (history_start_ < preamble_start && !history_.empty()) {
      history_.pop_front();
      ++history_start_;
    }
    sync_sample_ = peak_abs;
    sync_corr_ = corr;
    body_target_ = header_samples(config_);
    state_ = State::kCollecting;
    return;
  }

  // Collecting: accumulate until the current target is reached.
  if (abs_index >= sync_sample_ + body_target_) {
    try_decode();
  }
}

void StreamingReceiver::try_decode() {
  // Materialise the capture [preamble_start, now) and lean on the burst
  // modem: the capture holds exactly one frame candidate.
  std::vector<float> capture(history_.begin(), history_.end());
  BackscatterRx rx(config_);

  // First pass: do we know the frame length yet?
  const auto header_bits = rx.demodulate_bits(capture, 16);
  if (!header_bits.has_value() || header_bits->size() < 16) {
    // False preamble hit; resume the hunt.
    log_debug("stream_rx: header undecodable, dropping sync");
    abandon_sync();
    return;
  }
  const auto len = static_cast<std::uint8_t>(read_bits(*header_bits, 0, 8));
  const auto hdr_crc =
      static_cast<std::uint8_t>(read_bits(*header_bits, 8, 8));
  if (crc8({&len, 1}) != hdr_crc) {
    log_debug("stream_rx: header CRC failed, dropping sync");
    abandon_sync();
    return;
  }

  const std::size_t body = (2 * frame_bits_for_payload(len) + 4) *
                           config_.rates.samples_per_chip;
  if (body > body_target_) {
    // Header parsed: now we know how much more to collect.
    body_target_ = body;
    return;
  }

  // Full frame present: decode and report.
  StreamFrame frame;
  const auto result = rx.demodulate_frame(capture);
  frame.status = result.status;
  frame.payload = result.payload;
  frame.start_sample = sync_sample_ + 1;
  frame.sync_corr = sync_corr_;
  ++frames_;
  handler_(frame);

  abandon_sync();
}

void StreamingReceiver::reset() {
  abandon_sync();
  position_ = 0;
  history_start_ = 0;
  detector_base_ = 0;
  frames_ = 0;
  sync_sample_ = 0;
  sync_corr_ = 0.0f;
  body_target_ = 0;
}

}  // namespace fdb::phy
