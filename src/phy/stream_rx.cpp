#include "phy/stream_rx.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/bits.hpp"
#include "util/crc.hpp"
#include "util/log.hpp"

namespace fdb::phy {
namespace {

// Sub-chunk granularity for the batch path: bounds the correlation
// scratch and keeps the history buffer from ballooning while searching.
constexpr std::size_t kBlock = 4096;

// Correlation runs lazily in sub-blocks of this size while searching:
// once a peak confirms, correlator state is discarded, so correlating a
// whole 4096-sample span up front would waste up to a span of O(W)
// window dots per acquisition (and re-correlate the tail after the
// frame). A peak costs at most kSearchBlock-1 discarded outputs.
constexpr std::size_t kSearchBlock = 512;

// Once the dead prefix ahead of head_ exceeds this and dominates the
// live samples, the storage is compacted (amortised O(1) per sample).
constexpr std::size_t kCompactSlack = 4096;

// Header = length(8) + crc8(8) bits -> chips -> samples, plus margin
// for the slicer's chip alignment.
std::size_t header_samples(const ModemConfig& config) {
  return (2 * 16 + 4) * config.rates.samples_per_chip;
}

}  // namespace

StreamingReceiver::StreamingReceiver(ModemConfig config, FrameHandler handler)
    : config_(config),
      handler_(std::move(handler)),
      correlator_(chips_to_pattern(default_preamble_chips()),
                  config.rates.samples_per_chip),
      peaks_(config.sync_threshold, config.rates.samples_per_chip * 4) {
  assert(config_.rates.valid());
  const std::size_t preamble =
      default_preamble_length() * config_.rates.samples_per_chip;
  // While searching we only ever need the preamble plus slack.
  history_cap_ = preamble + 8 * config_.rates.samples_per_chip;
}

void StreamingReceiver::append_history(std::span<const float> chunk) {
  if (head_ > kCompactSlack && head_ * 2 >= buf_.size() + chunk.size()) {
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(head_));
    head_ = 0;
  }
  buf_.insert(buf_.end(), chunk.begin(), chunk.end());
}

void StreamingReceiver::drop_history_front(std::uint64_t new_start) {
  assert(new_start >= history_start_);
  assert(new_start - history_start_ <= history_size());
  head_ += static_cast<std::size_t>(new_start - history_start_);
  history_start_ = new_start;
}

void StreamingReceiver::process(std::span<const float> samples) {
  std::size_t off = 0;
  while (off < samples.size()) {
    const std::size_t n = std::min(kBlock, samples.size() - off);
    // History gets every sample exactly once, in bulk; the drain below
    // only decides how the already-buffered samples are consumed.
    append_history(samples.subspan(off, n));
    fed_ += n;
    drain();
    off += n;
  }
}

void StreamingReceiver::drain() {
  // The scan cursor (position_) trails the fed position whenever a
  // decode failure rewound it; re-span from the cursor after every step
  // because a step may rewind it (and trims may advance head_).
  while (position_ < fed_) {
    assert(position_ >= history_start_);
    const auto skip = static_cast<std::size_t>(position_ - history_start_);
    const auto len = static_cast<std::size_t>(fed_ - position_);
    assert(skip + len <= history_size());
    const std::span<const float> pending(buf_.data() + head_ + skip, len);
    if (state_ == State::kSearching) {
      search_span(pending, 0);
    } else {
      collect_span(pending, 0);
    }
  }
}

std::size_t StreamingReceiver::search_span(std::span<const float> chunk,
                                           std::size_t i) {
  const std::size_t m = std::min(chunk.size() - i, kSearchBlock);
  corr_.resize(m);
  correlator_.process(chunk.subspan(i, m),
                      std::span<float>(corr_.data(), m));
  const std::size_t preamble =
      default_preamble_length() * config_.rates.samples_per_chip;
  // Quiet-block fast path: when no candidate peak is being tracked and
  // nothing in this block reaches threshold, the per-sample detector
  // loop is a no-op — one vectorizable max-scan proves it, and the
  // detector/position bookkeeping advances in bulk. (The retention trim
  // below already runs once per block.)
  if (!peaks_.is_tracking()) {
    float block_max = 0.0f;
    for (std::size_t j = 0; j < m; ++j) {
      block_max = std::max(block_max, std::abs(corr_[j]));
    }
    if (block_max < config_.sync_threshold) {
      peaks_.skip(m);
      position_ += m;
      std::uint64_t floor = search_start_;
      if (position_ > history_cap_ && position_ - history_cap_ > floor) {
        floor = position_ - history_cap_;
      }
      if (floor > history_start_) drop_history_front(floor);
      return i + m;
    }
  }
  for (std::size_t j = 0; j < m; ++j) {
    const std::uint64_t abs_index = position_++;
    // Magnitude: polarity-inverted frames still acquire (FM0 decodes
    // either way).
    const auto peak = peaks_.process(std::abs(corr_[j]));
    if (!peak.has_value()) continue;

    // PeakDetector indexes from its last reset; map to stream position.
    const std::uint64_t peak_abs = detector_base_ + *peak;
    // Retained-history floor at this sample: the per-sample trim of the
    // scalar path, computed against absolute positions instead.
    std::uint64_t floor = search_start_;
    if (abs_index + 1 > history_cap_ &&
        abs_index + 1 - history_cap_ > floor) {
      floor = abs_index + 1 - history_cap_;
    }
    if (floor > history_start_) drop_history_front(floor);
    if (peak_abs + 1 < preamble + floor) {
      continue;  // not enough context retained; keep searching
    }
    // Trim history so it starts at the preamble.
    drop_history_front(peak_abs + 1 - preamble);
    sync_sample_ = peak_abs;
    sync_corr_ = corr_[j];
    body_target_ = header_samples(config_);
    state_ = State::kCollecting;
    return i + j + 1;
  }
  // No confirmed peak in this sub-block: enforce the retention cap once
  // for the scanned range (equivalent to the scalar per-sample trim,
  // since no decision consulted the history meanwhile).
  std::uint64_t floor = search_start_;
  if (position_ > history_cap_ && position_ - history_cap_ > floor) {
    floor = position_ - history_cap_;
  }
  if (floor > history_start_) drop_history_front(floor);
  return i + m;
}

std::size_t StreamingReceiver::collect_span(std::span<const float> chunk,
                                            std::size_t i) {
  const std::uint64_t target = sync_sample_ + body_target_;
  if (position_ > target) {
    try_decode();
    return i;
  }
  const std::uint64_t needed = target + 1 - position_;
  const std::size_t take = static_cast<std::size_t>(
      std::min<std::uint64_t>(needed, chunk.size() - i));
  position_ += take;
  if (position_ == target + 1) try_decode();
  return i + take;
}

void StreamingReceiver::try_decode() {
  // The capture [preamble_start, position_) is a zero-copy view of the
  // history buffer; lean on the burst modem: it holds exactly one frame
  // candidate. History was trimmed so the capture starts exactly at the
  // preamble — sync is already known, so use the known-sync decode
  // variants with data-start hint = preamble length instead of paying
  // the modem's O(N·W) correlation search again (it dominated the whole
  // streaming decode cost). False peaks the stream correlator let
  // through are still rejected: fine timing finds no coherent preamble
  // edge and the header CRC gates the decode.
  assert(position_ >= history_start_);
  const auto len = static_cast<std::size_t>(position_ - history_start_);
  assert(len <= history_size());
  const std::span<const float> capture(buf_.data() + head_, len);
  BackscatterRx rx(config_);
  const std::size_t pre_samples =
      default_preamble_length() * config_.rates.samples_per_chip;

  // First pass: do we know the frame length yet?
  const auto header_bits = rx.demodulate_bits_at(capture, 16, pre_samples);
  if (!header_bits.has_value() || header_bits->size() < 16) {
    // False preamble hit; resume the hunt just past the failed sync.
    log_debug("stream_rx: header undecodable, resyncing");
    resync_rewind();
    return;
  }
  const auto len8 = static_cast<std::uint8_t>(read_bits(*header_bits, 0, 8));
  const auto hdr_crc =
      static_cast<std::uint8_t>(read_bits(*header_bits, 8, 8));
  if (crc8({&len8, 1}) != hdr_crc) {
    log_debug("stream_rx: header CRC failed, resyncing");
    resync_rewind();
    return;
  }

  const std::size_t body = (2 * frame_bits_for_payload(len8) + 4) *
                           config_.rates.samples_per_chip;
  if (body > body_target_) {
    // Header parsed: now we know how much more to collect.
    body_target_ = body;
    return;
  }

  // Full frame present: decode and report.
  StreamFrame frame;
  const auto result = rx.demodulate_frame_at(capture, pre_samples);
  frame.status = result.status;
  frame.payload = result.payload;
  frame.start_sample = sync_sample_ + 1;
  frame.sync_corr = sync_corr_;
  ++frames_;
  handler_(frame);

  if (frame.status == Status::kOk) {
    // Clean decode: everything up to position_ is accounted for; skip
    // ahead.
    abandon_sync();
  } else {
    // Payload-level failure (e.g. CRC): the collect window may have
    // swallowed a genuine successor frame — rewind and re-scan it.
    resync_rewind();
  }
}

void StreamingReceiver::abandon_sync() {
  state_ = State::kSearching;
  // Samples at or past the current position stay buffered: in the batch
  // path they may already have been appended and will be consumed by the
  // search that resumes right here.
  drop_history_front(position_);
  correlator_.reset();
  peaks_.reset();
  detector_base_ = position_;
  search_start_ = position_;
}

void StreamingReceiver::resync_rewind() {
  state_ = State::kSearching;
  // Bounded rewind: resume the hunt one sample past the failed sync
  // instead of discarding the collected tail. History still holds
  // everything from sync+1-preamble (trimmed exactly there at peak
  // confirmation), so this is a cursor move, not a buffer change; the
  // drain loop re-scans the retained tail. Progress is guaranteed:
  // every confirmed peak lies at or after detector_base_, so each
  // successive rewind target is strictly later than the last, and the
  // re-scanned span per failure is capped by the collect window.
  position_ = sync_sample_ + 1;
  correlator_.reset();
  peaks_.reset();
  detector_base_ = position_;
  search_start_ = history_start_;
}

void StreamingReceiver::reset() {
  state_ = State::kSearching;
  correlator_.reset();
  peaks_.reset();
  buf_.clear();
  head_ = 0;
  corr_.clear();
  position_ = 0;
  fed_ = 0;
  history_start_ = 0;
  search_start_ = 0;
  detector_base_ = 0;
  frames_ = 0;
  sync_sample_ = 0;
  sync_corr_ = 0.0f;
  body_target_ = 0;
}

}  // namespace fdb::phy
