// Rate plan shared by transmitter and receiver.
//
// The full-duplex design hinges on *rate asymmetry*: the forward data
// stream toggles the tag antenna every `samples_per_half_bit` samples
// (FM0 -> two chips per bit), while the feedback stream holds its
// reflection state for `asymmetry` whole data bits. The receiver then
// separates the two by averaging at the two time scales.
#pragma once

#include <cassert>
#include <cstddef>

namespace fdb::phy {

struct RateConfig {
  double sample_rate_hz = 2.0e6;    // simulation / ADC rate
  std::size_t samples_per_chip = 20;  // FM0 chip duration in samples
  std::size_t asymmetry = 16;       // feedback bit = asymmetry data bits

  /// FM0 carries one bit in two chips.
  std::size_t samples_per_bit() const { return 2 * samples_per_chip; }

  /// Samples per feedback bit (the slow stream).
  std::size_t samples_per_feedback_bit() const {
    return samples_per_bit() * asymmetry;
  }

  double data_rate_bps() const {
    return sample_rate_hz / static_cast<double>(samples_per_bit());
  }

  double feedback_rate_bps() const {
    return sample_rate_hz / static_cast<double>(samples_per_feedback_bit());
  }

  bool valid() const {
    return sample_rate_hz > 0.0 && samples_per_chip > 0 && asymmetry > 0;
  }
};

}  // namespace fdb::phy
