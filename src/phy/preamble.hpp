// Frame preambles. Barker codes have ideal aperiodic autocorrelation,
// so a sliding correlator on the envelope locks onto frame start even
// when the ambient carrier fluctuates.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace fdb::phy {

/// 13-chip Barker code as 0/1 antenna states.
std::vector<std::uint8_t> barker13_chips();

/// 11-chip Barker code as 0/1 antenna states.
std::vector<std::uint8_t> barker11_chips();

/// Converts 0/1 chips to the ±1 float pattern the SlidingCorrelator
/// expects (1 -> +1, 0 -> -1).
std::vector<float> chips_to_pattern(std::span<const std::uint8_t> chips);

/// Default frame preamble: alternating warm-up (AGC settle) followed by
/// Barker-13 sync word, as chips.
std::vector<std::uint8_t> default_preamble_chips();

/// Length of default_preamble_chips() (compile-time constant-ish helper
/// so the deframer can skip it).
std::size_t default_preamble_length();

}  // namespace fdb::phy
