#include "phy/line_code.hpp"

#include <cassert>
#include <cmath>

namespace fdb::phy {

const char* to_string(LineCode code) {
  switch (code) {
    case LineCode::kFm0: return "fm0";
    case LineCode::kManchester: return "manchester";
    case LineCode::kMiller2: return "miller2";
    case LineCode::kNrz: return "nrz";
  }
  return "?";
}

namespace {

std::vector<std::uint8_t> encode_fm0(std::span<const std::uint8_t> bits) {
  std::vector<std::uint8_t> chips;
  chips.reserve(bits.size() * 2);
  std::uint8_t level = 1;
  for (const std::uint8_t bit : bits) {
    // Invert at every bit boundary.
    level ^= 1u;
    chips.push_back(level);
    // '0' inverts again mid-bit; '1' holds.
    if (!bit) level ^= 1u;
    chips.push_back(level);
  }
  return chips;
}

std::vector<std::uint8_t> encode_manchester(
    std::span<const std::uint8_t> bits) {
  std::vector<std::uint8_t> chips;
  chips.reserve(bits.size() * 2);
  for (const std::uint8_t bit : bits) {
    chips.push_back(bit ? 1 : 0);
    chips.push_back(bit ? 0 : 1);
  }
  return chips;
}

std::vector<std::uint8_t> encode_miller2(std::span<const std::uint8_t> bits) {
  // Miller: '1' transitions mid-bit; '0' holds unless it follows a '0',
  // in which case it transitions at the boundary.
  std::vector<std::uint8_t> chips;
  chips.reserve(bits.size() * 2);
  std::uint8_t level = 1;
  std::uint8_t prev_bit = 1;
  bool first = true;
  for (const std::uint8_t bit : bits) {
    if (!first && bit == 0 && prev_bit == 0) level ^= 1u;
    chips.push_back(level);
    if (bit) level ^= 1u;
    chips.push_back(level);
    prev_bit = bit;
    first = false;
  }
  return chips;
}

std::vector<std::uint8_t> encode_nrz(std::span<const std::uint8_t> bits) {
  std::vector<std::uint8_t> chips;
  chips.reserve(bits.size() * 2);
  for (const std::uint8_t bit : bits) {
    chips.push_back(bit ? 1 : 0);
    chips.push_back(bit ? 1 : 0);
  }
  return chips;
}

std::optional<std::vector<std::uint8_t>> decode_fm0(
    std::span<const std::uint8_t> chips) {
  if (chips.size() % 2 != 0) return std::nullopt;
  std::vector<std::uint8_t> bits;
  bits.reserve(chips.size() / 2);
  for (std::size_t i = 0; i < chips.size(); i += 2) {
    // Within a bit: equal chips = '1', inverted = '0'.
    bits.push_back(chips[i] == chips[i + 1] ? 1 : 0);
  }
  return bits;
}

std::optional<std::vector<std::uint8_t>> decode_manchester(
    std::span<const std::uint8_t> chips) {
  if (chips.size() % 2 != 0) return std::nullopt;
  std::vector<std::uint8_t> bits;
  bits.reserve(chips.size() / 2);
  for (std::size_t i = 0; i < chips.size(); i += 2) {
    if (chips[i] == chips[i + 1]) return std::nullopt;  // invalid symbol
    bits.push_back(chips[i] ? 1 : 0);
  }
  return bits;
}

std::optional<std::vector<std::uint8_t>> decode_miller2(
    std::span<const std::uint8_t> chips) {
  if (chips.size() % 2 != 0) return std::nullopt;
  std::vector<std::uint8_t> bits;
  bits.reserve(chips.size() / 2);
  for (std::size_t i = 0; i < chips.size(); i += 2) {
    bits.push_back(chips[i] != chips[i + 1] ? 1 : 0);
  }
  return bits;
}

std::optional<std::vector<std::uint8_t>> decode_nrz(
    std::span<const std::uint8_t> chips) {
  if (chips.size() % 2 != 0) return std::nullopt;
  std::vector<std::uint8_t> bits;
  bits.reserve(chips.size() / 2);
  for (std::size_t i = 0; i < chips.size(); i += 2) {
    // Majority of the two chips (ties -> first chip).
    bits.push_back(chips[i]);
  }
  return bits;
}

}  // namespace

std::vector<std::uint8_t> encode(LineCode code,
                                 std::span<const std::uint8_t> bits) {
  switch (code) {
    case LineCode::kFm0: return encode_fm0(bits);
    case LineCode::kManchester: return encode_manchester(bits);
    case LineCode::kMiller2: return encode_miller2(bits);
    case LineCode::kNrz: return encode_nrz(bits);
  }
  return {};
}

std::optional<std::vector<std::uint8_t>> decode(
    LineCode code, std::span<const std::uint8_t> chips) {
  switch (code) {
    case LineCode::kFm0: return decode_fm0(chips);
    case LineCode::kManchester: return decode_manchester(chips);
    case LineCode::kMiller2: return decode_miller2(chips);
    case LineCode::kNrz: return decode_nrz(chips);
  }
  return std::nullopt;
}

std::vector<std::uint8_t> decode_fm0_soft(std::span<const float> chip_prob) {
  // For each bit, the pair (c0, c1) under FM0 satisfies c0 = !prev_level
  // and c1 = c0 (bit 1) or !c0 (bit 0). We don't track the level here —
  // equality of the two chips decides the bit; soft values let us pick
  // the more reliable interpretation when the chips disagree weakly.
  std::vector<std::uint8_t> bits;
  bits.reserve(chip_prob.size() / 2);
  for (std::size_t i = 0; i + 1 < chip_prob.size(); i += 2) {
    const float p0 = chip_prob[i];
    const float p1 = chip_prob[i + 1];
    // P(equal) = p0*p1 + (1-p0)(1-p1); P(diff) = p0(1-p1) + (1-p0)p1.
    const float equal = p0 * p1 + (1.0f - p0) * (1.0f - p1);
    bits.push_back(equal >= 0.5f ? 1 : 0);
  }
  return bits;
}

}  // namespace fdb::phy
