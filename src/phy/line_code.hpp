// Line codes used on the backscatter uplink. FM0 (bi-phase space) is
// the EPC Gen2 / ambient-backscatter standard: it is DC-balanced at the
// bit scale, which keeps the long-window average the feedback decoder
// relies on independent of the data pattern — load-bearing for
// full-duplex separation.
//
// Chip convention: chips are 0/1 antenna states, two chips per bit.
//  * FM0: the level always inverts at a bit boundary; a '0' bit also
//    inverts mid-bit, a '1' holds level across the bit.
//  * Manchester: '1' = 10, '0' = 01 (fixed mapping, no memory).
//  * Miller-2 included for completeness/ablation.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace fdb::phy {

enum class LineCode : std::uint8_t { kFm0, kManchester, kMiller2, kNrz };

const char* to_string(LineCode code);

/// Encodes bits to chips. FM0/Miller are stateful across the frame; the
/// encoder starts from level 1. NRZ emits 2 identical chips per bit so
/// all codes share the 2-chips-per-bit clock.
std::vector<std::uint8_t> encode(LineCode code,
                                 std::span<const std::uint8_t> bits);

/// Decodes chips (2 per bit) back to bits. Returns nullopt if the chip
/// stream is malformed (odd length, or FM0 boundary-invariant violated
/// beyond tolerance — a sign of desynchronisation).
std::optional<std::vector<std::uint8_t>> decode(
    LineCode code, std::span<const std::uint8_t> chips);

/// Soft FM0 decoder: per-chip reliabilities in [0,1] (probability the
/// chip is 1) -> hard bits by maximum-likelihood over the two chip
/// hypotheses given the previous level. More robust near threshold.
std::vector<std::uint8_t> decode_fm0_soft(std::span<const float> chip_llr);

}  // namespace fdb::phy
