// One-way (half-duplex) backscatter modem: the baseline PHY that the
// full-duplex core extends. The transmitter is a chip-state generator
// (it drives the tag's RF switch); the receiver turns an envelope
// capture back into a payload.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "phy/framer.hpp"
#include "phy/line_code.hpp"
#include "phy/preamble.hpp"
#include "phy/rate_config.hpp"
#include "phy/slicer.hpp"
#include "util/types.hpp"

namespace fdb::phy {

struct ModemConfig {
  RateConfig rates;
  LineCode line_code = LineCode::kFm0;
  SlicerConfig slicer;
  float sync_threshold = 0.5f;  // normalised correlation for frame lock
};

/// Transmit side: payload -> per-sample antenna states (0/1).
class BackscatterTx {
 public:
  explicit BackscatterTx(ModemConfig config);

  /// Full burst: preamble chips + framed payload, expanded to samples.
  std::vector<std::uint8_t> modulate_frame(
      std::span<const std::uint8_t> payload) const;

  /// Raw bits (no framing) with preamble — used by BER probes that want
  /// to count bit errors directly.
  std::vector<std::uint8_t> modulate_bits(
      std::span<const std::uint8_t> bits) const;

  /// Expands chips to per-sample states.
  std::vector<std::uint8_t> chips_to_states(
      std::span<const std::uint8_t> chips) const;

  /// Number of samples a framed payload occupies on air.
  std::size_t frame_samples(std::size_t payload_bytes) const;

  const ModemConfig& config() const { return config_; }

 private:
  ModemConfig config_;
};

struct RxDiagnostics {
  float sync_corr = 0.0f;           // correlation at lock
  std::size_t sync_sample = 0;      // sample index of preamble end
  std::size_t chips_decoded = 0;
  std::vector<std::uint8_t> chip_decisions;
};

struct RxResult {
  Status status = Status::kSyncNotFound;
  std::vector<std::uint8_t> payload;
  RxDiagnostics diag;
};

/// Receive side: envelope capture -> payload. Burst-mode: the caller
/// hands the whole capture (as an SDR capture or a simulation run).
class BackscatterRx {
 public:
  explicit BackscatterRx(ModemConfig config);

  /// Locates the preamble and decodes one framed payload.
  RxResult demodulate_frame(std::span<const float> envelope) const;

  /// Known-sync variant: decodes one framed payload when the caller has
  /// already located the preamble — `data_start_hint` is the coarse
  /// index of the first data sample (preamble_samples for a capture
  /// that starts at the preamble, as StreamingReceiver hands over).
  /// Skips the O(N·W) correlation search entirely; fine timing is still
  /// recovered around the hint. diag.sync_corr is left at 0 (the caller
  /// owns the correlation evidence that produced the hint).
  RxResult demodulate_frame_at(std::span<const float> envelope,
                               std::size_t data_start_hint) const;

  /// Decodes `num_bits` raw bits following the preamble (no framing).
  /// Returns nullopt when sync fails.
  std::optional<std::vector<std::uint8_t>> demodulate_bits(
      std::span<const float> envelope, std::size_t num_bits,
      RxDiagnostics* diag = nullptr) const;

  /// Known-sync variant of demodulate_bits: same contract as
  /// demodulate_frame_at for `data_start_hint`.
  std::optional<std::vector<std::uint8_t>> demodulate_bits_at(
      std::span<const float> envelope, std::size_t num_bits,
      std::size_t data_start_hint, RxDiagnostics* diag = nullptr) const;

  const ModemConfig& config() const { return config_; }

 private:
  /// Returns the sample index of the last preamble sample, or nullopt.
  std::optional<std::size_t> find_sync(std::span<const float> envelope,
                                       float* corr_out) const;

  /// Fine timing recovery around a coarse sync estimate: tests offsets
  /// within one chip and returns the data-start index whose preamble
  /// chip averages best match the known ±1 pattern.
  std::size_t refine_data_start(std::span<const float> envelope,
                                std::size_t coarse_data_start) const;

  /// Integrate&dump + adaptive slicing from `start_sample`, producing
  /// up to `max_chips` chip decisions (primed on the preamble region).
  std::vector<std::uint8_t> slice_chips(std::span<const float> envelope,
                                        std::size_t preamble_start,
                                        std::size_t data_start,
                                        std::size_t max_chips) const;

  /// Shared tail of the frame paths: refine timing around the hint,
  /// slice, decode, deframe. Fills everything except diag.sync_corr.
  void decode_frame_from(std::span<const float> envelope,
                         std::size_t data_start_hint, RxResult& result) const;

  ModemConfig config_;
};

}  // namespace fdb::phy
