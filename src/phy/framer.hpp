// Frame format (bit level, MSB first):
//
//   [preamble chips]                      — handled at chip level
//   [length : 8]  [hdr_crc8 : 8]          — header, CRC8 over length
//   [payload : length*8]  [crc16 : 16]    — body, CRC16 over payload
//
// The header CRC lets the deframer reject a corrupted length before it
// commits to reading a bogus number of payload bits — without it a
// single header bit error desynchronises the whole burst.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "util/types.hpp"

namespace fdb::phy {

struct FrameLimits {
  static constexpr std::size_t kMaxPayloadBytes = 255;
};

/// Serialises payload to header+body bits (no preamble).
std::vector<std::uint8_t> frame_to_bits(std::span<const std::uint8_t> payload);

/// Number of frame bits for a payload of n bytes.
std::size_t frame_bits_for_payload(std::size_t payload_bytes);

struct DeframeResult {
  Status status = Status::kTruncated;
  std::vector<std::uint8_t> payload;
  /// Bits consumed from the input (valid when status != kTruncated).
  std::size_t bits_consumed = 0;
  /// True when the header parsed but the body CRC failed — the caller
  /// knows the frame length and can request a retransmission.
  bool header_ok = false;
};

/// Parses one frame from the front of `bits`.
DeframeResult deframe_bits(std::span<const std::uint8_t> bits);

/// Splits a payload into `block_size`-byte blocks, each with its own
/// CRC8 trailer — the unit of the full-duplex instant-NACK protocol.
/// Layout per block: [data : block_size*8][crc8 : 8]; the last block may
/// be shorter.
std::vector<std::uint8_t> blocks_to_bits(std::span<const std::uint8_t> payload,
                                         std::size_t block_size);

struct BlockDecodeResult {
  std::vector<std::uint8_t> payload;       // concatenated block data
  std::vector<bool> block_ok;              // per-block CRC verdicts
  std::size_t blocks_failed = 0;
};

/// Decodes a blocks_to_bits() stream given the original payload size.
BlockDecodeResult decode_blocks(std::span<const std::uint8_t> bits,
                                std::size_t payload_bytes,
                                std::size_t block_size);

/// Bits on the wire for a blocked payload.
std::size_t block_bits_for_payload(std::size_t payload_bytes,
                                   std::size_t block_size);

}  // namespace fdb::phy
