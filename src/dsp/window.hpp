// Window functions for FIR design and spectral analysis. Used by the
// windowed-sinc designer in dsp/fir.hpp (filters for the receive chain)
// and available for tapering FFT frames of the ambient carrier.
// Symmetric (filter-design) form; the standard shapes a backscatter
// receiver plausibly needs, nothing exotic.
#pragma once

#include <cmath>
#include <cstddef>
#include <numbers>
#include <vector>

namespace fdb::dsp {

enum class WindowType { kRectangular, kHamming, kHann, kBlackman };

/// Returns an n-point window of the requested type (symmetric form).
inline std::vector<float> make_window(WindowType type, std::size_t n) {
  std::vector<float> w(n, 1.0f);
  if (n <= 1) return w;
  const double denom = static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = 2.0 * std::numbers::pi * static_cast<double>(i) / denom;
    double v = 1.0;
    switch (type) {
      case WindowType::kRectangular: v = 1.0; break;
      case WindowType::kHamming: v = 0.54 - 0.46 * std::cos(x); break;
      case WindowType::kHann: v = 0.5 - 0.5 * std::cos(x); break;
      case WindowType::kBlackman:
        v = 0.42 - 0.5 * std::cos(x) + 0.08 * std::cos(2.0 * x);
        break;
    }
    w[i] = static_cast<float>(v);
  }
  return w;
}

}  // namespace fdb::dsp
