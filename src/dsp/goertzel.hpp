// Goertzel single-bin DFT: cheap tone-energy measurement used by the
// spectrum probe and by tests that verify subcarrier placement without
// running a full FFT.
#pragma once

#include <cstddef>
#include <span>

#include "util/types.hpp"

namespace fdb::dsp {

class Goertzel {
 public:
  /// Measures energy at `bin_freq_hz` over blocks of `block_len` samples
  /// at `sample_rate_hz`.
  Goertzel(double bin_freq_hz, double sample_rate_hz, std::size_t block_len);

  /// Processes one block (must be exactly block_len samples); returns the
  /// squared magnitude of the target bin.
  double process_block(std::span<const float> block);
  double process_block(std::span<const cf32> block);

  /// Batch kernel: processes `powers.size()` back-to-back blocks
  /// (`samples.size()` must equal `powers.size() * block_length()`),
  /// writing one bin power per block. Equivalent to calling
  /// process_block() per block without the per-call span slicing.
  void process_blocks(std::span<const float> samples,
                      std::span<double> powers);
  void process_blocks(std::span<const cf32> samples,
                      std::span<double> powers);

  std::size_t block_length() const { return block_len_; }

 private:
  std::size_t block_len_;
  double coeff_;
  double cos_w_;
  double sin_w_;
};

}  // namespace fdb::dsp
