// Streaming FIR filters plus a windowed-sinc designer. The channel model
// uses FIRs for multipath; the PHY uses them for matched filtering.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "dsp/window.hpp"
#include "util/types.hpp"

namespace fdb::dsp {

/// Real-tap FIR operating on real samples. Streaming: keeps history
/// across process() calls so block boundaries are seamless.
class FirFilterF {
 public:
  explicit FirFilterF(std::vector<float> taps);

  /// Filters one sample.
  float process(float x);

  /// Filters a block in place semantics: out[i] = filter(in[i]).
  void process(std::span<const float> in, std::span<float> out);

  void reset();
  std::size_t num_taps() const { return taps_.size(); }
  std::span<const float> taps() const { return taps_; }

 private:
  std::vector<float> taps_;
  std::vector<float> delay_;
  std::size_t pos_ = 0;
};

/// Real-tap FIR operating on complex samples (e.g. pulse shaping of the
/// baseband carrier before the channel).
class FirFilterC {
 public:
  explicit FirFilterC(std::vector<float> taps);

  cf32 process(cf32 x);
  void process(std::span<const cf32> in, std::span<cf32> out);
  void reset();
  std::size_t num_taps() const { return taps_.size(); }

 private:
  std::vector<float> taps_;
  std::vector<cf32> delay_;
  std::size_t pos_ = 0;
};

/// Complex-tap FIR on complex samples (multipath channel impulse
/// responses have complex gains).
class FirFilterCC {
 public:
  explicit FirFilterCC(std::vector<cf32> taps);

  cf32 process(cf32 x);
  void process(std::span<const cf32> in, std::span<cf32> out);
  void reset();
  std::size_t num_taps() const { return taps_.size(); }

 private:
  std::vector<cf32> taps_;
  std::vector<cf32> delay_;
  std::size_t pos_ = 0;
};

/// Designs a linear-phase low-pass FIR by the windowed-sinc method.
/// `cutoff_norm` is the -6 dB cutoff as a fraction of the sample rate,
/// in (0, 0.5). `num_taps` should be odd for a symmetric type-I filter.
/// Taps are normalised to unity DC gain.
std::vector<float> design_lowpass(double cutoff_norm, std::size_t num_taps,
                                  WindowType window = WindowType::kHamming);

/// High-pass complement of design_lowpass (spectral inversion), unity
/// gain at Nyquist.
std::vector<float> design_highpass(double cutoff_norm, std::size_t num_taps,
                                   WindowType window = WindowType::kHamming);

/// Boxcar (moving-average) taps of length n, unity DC gain.
std::vector<float> design_boxcar(std::size_t n);

}  // namespace fdb::dsp
