// Streaming FIR filters plus a windowed-sinc designer. The channel model
// uses FIRs for multipath; the PHY uses them for matched filtering.
//
// Batch-first: each filter keeps its delay line as a contiguous history
// prefix (the GNU Radio scheme — the last num_taps-1 samples sit
// immediately before the incoming block), so the block convolution runs
// tap-outer/sample-inner over contiguous memory: the inner loop is
// element-parallel and auto-vectorizes under strict FP semantics. No
// circular indexing, no modulo. The scalar process(x) shares the same
// history buffer and accumulates taps in the same order as the batch
// kernel, so chunked and sample-at-a-time feeding are bit-identical.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "dsp/window.hpp"
#include "util/types.hpp"

namespace fdb::dsp {

namespace detail {

/// Shared contiguous-history block-convolution core. `Tap` is float or
/// cf32; `Sample` is float or cf32. Accumulation is in `Sample` (same
/// precision class as the seed per-sample implementation; see
/// docs/ARCHITECTURE.md for the precision rationale).
template <typename Tap, typename Sample>
class BlockFir {
 public:
  explicit BlockFir(std::vector<Tap> taps);

  Sample step(Sample x);
  void run(std::span<const Sample> in, std::span<Sample> out);
  void reset();

  std::size_t num_taps() const { return taps_.size(); }
  std::span<const Tap> taps() const { return taps_; }

 private:
  void compact();

  std::vector<Tap> taps_;   // designer order (taps_[0] hits the newest sample)
  std::vector<Tap> rtaps_;  // reversed: rtaps_[j] hits history offset j
  std::vector<Sample> hist_;
  std::size_t hist_len_ = 0;  // retained history: taps-1 (0 if tapless)
  std::size_t cursor_ = 0;
};

extern template class BlockFir<float, float>;
extern template class BlockFir<float, cf32>;
extern template class BlockFir<cf32, cf32>;

}  // namespace detail

/// Real-tap FIR operating on real samples. Streaming: keeps history
/// across process() calls so block boundaries are seamless.
class FirFilterF {
 public:
  explicit FirFilterF(std::vector<float> taps) : core_(std::move(taps)) {}

  /// Filters one sample.
  float process(float x) { return core_.step(x); }

  /// Filters a block: out[i] = filter(in[i]).
  void process(std::span<const float> in, std::span<float> out) {
    core_.run(in, out);
  }

  void reset() { core_.reset(); }
  std::size_t num_taps() const { return core_.num_taps(); }
  std::span<const float> taps() const { return core_.taps(); }

 private:
  detail::BlockFir<float, float> core_;
};

/// Real-tap FIR operating on complex samples (e.g. pulse shaping of the
/// baseband carrier before the channel).
class FirFilterC {
 public:
  explicit FirFilterC(std::vector<float> taps) : core_(std::move(taps)) {}

  cf32 process(cf32 x) { return core_.step(x); }
  void process(std::span<const cf32> in, std::span<cf32> out) {
    core_.run(in, out);
  }
  void reset() { core_.reset(); }
  std::size_t num_taps() const { return core_.num_taps(); }

 private:
  detail::BlockFir<float, cf32> core_;
};

/// Complex-tap FIR on complex samples (multipath channel impulse
/// responses have complex gains).
class FirFilterCC {
 public:
  explicit FirFilterCC(std::vector<cf32> taps) : core_(std::move(taps)) {}

  cf32 process(cf32 x) { return core_.step(x); }
  void process(std::span<const cf32> in, std::span<cf32> out) {
    core_.run(in, out);
  }
  void reset() { core_.reset(); }
  std::size_t num_taps() const { return core_.num_taps(); }

 private:
  detail::BlockFir<cf32, cf32> core_;
};

/// Designs a linear-phase low-pass FIR by the windowed-sinc method.
/// `cutoff_norm` is the -6 dB cutoff as a fraction of the sample rate,
/// in (0, 0.5). `num_taps` should be odd for a symmetric type-I filter.
/// Taps are normalised to unity DC gain.
std::vector<float> design_lowpass(double cutoff_norm, std::size_t num_taps,
                                  WindowType window = WindowType::kHamming);

/// High-pass complement of design_lowpass (spectral inversion), unity
/// gain at Nyquist.
std::vector<float> design_highpass(double cutoff_norm, std::size_t num_taps,
                                   WindowType window = WindowType::kHamming);

/// Boxcar (moving-average) taps of length n, unity DC gain.
std::vector<float> design_boxcar(std::size_t n);

}  // namespace fdb::dsp
