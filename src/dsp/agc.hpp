// Feedback automatic gain control. Keeps envelope streams near a target
// level so slicer thresholds remain meaningful across the distance sweep.
#pragma once

#include <span>

#include "util/types.hpp"

namespace fdb::dsp {

class Agc {
 public:
  /// `target` is the desired average magnitude; `rate` in (0,1] controls
  /// loop speed (fraction of the error corrected per sample).
  Agc(float target, float rate);

  /// Scalar paths are thin wrappers over the batch kernels, so chunked
  /// and sample-at-a-time feeding are bit-identical.
  float process(float x);
  cf32 process(cf32 x);
  void process(std::span<const float> in, std::span<float> out);
  void process(std::span<const cf32> in, std::span<cf32> out);

  float gain() const { return gain_; }
  void reset();

 private:
  float target_;
  float rate_;
  float gain_ = 1.0f;
};

}  // namespace fdb::dsp
