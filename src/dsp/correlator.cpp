#include "dsp/correlator.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>

#if defined(__AVX512F__) || (defined(__AVX2__) && defined(__FMA__))
#include <immintrin.h>
#define FDB_CORRELATOR_SIMD 1
#else
#define FDB_CORRELATOR_SIMD 0
#endif

namespace fdb::dsp {
namespace {

// Samples appended per compaction cycle; the history buffer holds
// window_len_-1 + kBlock floats, so the tail memmove amortises to
// (W-1)/kBlock floats per sample.
constexpr std::size_t kBlock = 4096;

// The incremental sum/energy are re-derived from the window whenever
// total_ crosses a multiple of this (power of two). Keyed to the
// absolute sample count so any chunking of the stream refreshes at the
// same instants — chunked and scalar feeding stay bit-identical.
constexpr std::uint64_t kRefreshMask = (1u << 15) - 1;

}  // namespace

SlidingCorrelator::SlidingCorrelator(std::vector<float> pattern,
                                     std::size_t samples_per_chip) {
  assert(!pattern.empty() && samples_per_chip > 0);
  stretched_.reserve(pattern.size() * samples_per_chip);
  for (const float chip : pattern) {
    assert(chip == 1.0f || chip == -1.0f);
    for (std::size_t s = 0; s < samples_per_chip; ++s) {
      stretched_.push_back(chip);
    }
  }
  // Mean-remove the pattern so a perfectly aligned window scores exactly
  // 1.0 even for patterns with nonzero disparity (Barker codes have a
  // small DC component the windowed mean-removal would otherwise lose).
  double mean = 0.0;
  for (const float v : stretched_) mean += v;
  mean /= static_cast<double>(stretched_.size());
  pattern_energy_ = 0.0;
  pattern_sum_ = 0.0;
  for (auto& v : stretched_) {
    v -= static_cast<float>(mean);
    pattern_energy_ += static_cast<double>(v) * v;
    pattern_sum_ += static_cast<double>(v);
  }
  window_len_ = stretched_.size();
  // Widen the taps once: double(float) is exact, so the dot kernels can
  // broadcast-load doubles without changing any product.
  pattern_d_.assign(stretched_.begin(), stretched_.end());
  hist_.assign(window_len_ - 1 + kBlock, 0.0f);
  cursor_ = window_len_ - 1;
}

void SlidingCorrelator::compact() {
  // Move the live history (last W-1 samples) back to the buffer front.
  std::memmove(hist_.data(), hist_.data() + cursor_ - (window_len_ - 1),
               (window_len_ - 1) * sizeof(float));
  cursor_ = window_len_ - 1;
}

void SlidingCorrelator::refresh_sums(const float* window) {
  // Re-derive the running sums from the current window; called at fixed
  // absolute sample counts so it is invariant to chunk boundaries.
  double s = 0.0, s2 = 0.0;
  for (std::size_t k = 0; k < window_len_; ++k) {
    const double v = window[k];
    s += v;
    s2 += v * v;
  }
  sum_ = s;
  sumsq_ = s2;
}

double SlidingCorrelator::dot_one(const float* win) const {
  // Four independent partial sums break the sequential FP chain so the
  // loop vectorizes under strict FP math; the combine order is fixed,
  // keeping results deterministic — and it is the exact summation tree
  // every lane of the blocked SIMD kernel reproduces.
  const double* pat = pattern_d_.data();
  const std::size_t w = window_len_;
  double d0 = 0.0, d1 = 0.0, d2 = 0.0, d3 = 0.0;
  std::size_t k = 0;
  for (; k + 4 <= w; k += 4) {
    d0 += static_cast<double>(win[k]) * pat[k];
    d1 += static_cast<double>(win[k + 1]) * pat[k + 1];
    d2 += static_cast<double>(win[k + 2]) * pat[k + 2];
    d3 += static_cast<double>(win[k + 3]) * pat[k + 3];
  }
  double dot = (d0 + d1) + (d2 + d3);
  for (; k < w; ++k) {
    dot += static_cast<double>(win[k]) * pat[k];
  }
  return dot;
}

double SlidingCorrelator::dot_one_d(const double* win) const {
  // Widened-window twin of dot_one: win[k] is float-valued (the
  // widening is exact), so every product and the whole tree are
  // bit-identical to the float version.
  const double* pat = pattern_d_.data();
  const std::size_t w = window_len_;
  double d0 = 0.0, d1 = 0.0, d2 = 0.0, d3 = 0.0;
  std::size_t k = 0;
  for (; k + 4 <= w; k += 4) {
    d0 += win[k] * pat[k];
    d1 += win[k + 1] * pat[k + 1];
    d2 += win[k + 2] * pat[k + 2];
    d3 += win[k + 3] * pat[k + 3];
  }
  double dot = (d0 + d1) + (d2 + d3);
  for (; k < w; ++k) {
    dot += win[k] * pat[k];
  }
  return dot;
}

void SlidingCorrelator::dot_block(const double* first, std::size_t n,
                                  double* dots) const {
  // Output-blocked, tap-outer kernel over the pre-widened window: lane
  // l of a block accumulates the dot of the window starting at
  // first + j0 + l. At a fixed tap k the lanes read one contiguous
  // unaligned double load first[j0+k .. j0+k+lanes), and every lane
  // keeps the scalar reference's four k-mod-4 accumulators plus
  // sequential tail. Both factors of every product are float-valued
  // doubles (24+24 < 53 bits → the product is exact), so each FMA
  // equals multiply-then-add bit-for-bit and the kernel matches
  // dot_one() exactly. The widest block runs two lane groups per tap so
  // one broadcast feeds two FMAs and the FMA latency chains interleave.
  const double* pat = pattern_d_.data();
  const std::size_t w = window_len_;
  std::size_t j = 0;
#if defined(__AVX512F__)
  for (; j + 16 <= n; j += 16) {
    const double* win = first + j;
    __m512d a0 = _mm512_setzero_pd(), b0 = _mm512_setzero_pd();
    __m512d a1 = _mm512_setzero_pd(), b1 = _mm512_setzero_pd();
    __m512d a2 = _mm512_setzero_pd(), b2 = _mm512_setzero_pd();
    __m512d a3 = _mm512_setzero_pd(), b3 = _mm512_setzero_pd();
    std::size_t k = 0;
    for (; k + 4 <= w; k += 4) {
      const __m512d p0 = _mm512_set1_pd(pat[k]);
      a0 = _mm512_fmadd_pd(_mm512_loadu_pd(win + k), p0, a0);
      b0 = _mm512_fmadd_pd(_mm512_loadu_pd(win + k + 8), p0, b0);
      const __m512d p1 = _mm512_set1_pd(pat[k + 1]);
      a1 = _mm512_fmadd_pd(_mm512_loadu_pd(win + k + 1), p1, a1);
      b1 = _mm512_fmadd_pd(_mm512_loadu_pd(win + k + 9), p1, b1);
      const __m512d p2 = _mm512_set1_pd(pat[k + 2]);
      a2 = _mm512_fmadd_pd(_mm512_loadu_pd(win + k + 2), p2, a2);
      b2 = _mm512_fmadd_pd(_mm512_loadu_pd(win + k + 10), p2, b2);
      const __m512d p3 = _mm512_set1_pd(pat[k + 3]);
      a3 = _mm512_fmadd_pd(_mm512_loadu_pd(win + k + 3), p3, a3);
      b3 = _mm512_fmadd_pd(_mm512_loadu_pd(win + k + 11), p3, b3);
    }
    __m512d da = _mm512_add_pd(_mm512_add_pd(a0, a1), _mm512_add_pd(a2, a3));
    __m512d db = _mm512_add_pd(_mm512_add_pd(b0, b1), _mm512_add_pd(b2, b3));
    for (; k < w; ++k) {
      const __m512d p = _mm512_set1_pd(pat[k]);
      da = _mm512_fmadd_pd(_mm512_loadu_pd(win + k), p, da);
      db = _mm512_fmadd_pd(_mm512_loadu_pd(win + k + 8), p, db);
    }
    _mm512_storeu_pd(dots + j, da);
    _mm512_storeu_pd(dots + j + 8, db);
  }
  for (; j + 8 <= n; j += 8) {
    const double* win = first + j;
    __m512d d0 = _mm512_setzero_pd();
    __m512d d1 = _mm512_setzero_pd();
    __m512d d2 = _mm512_setzero_pd();
    __m512d d3 = _mm512_setzero_pd();
    std::size_t k = 0;
    for (; k + 4 <= w; k += 4) {
      d0 = _mm512_fmadd_pd(_mm512_loadu_pd(win + k),
                           _mm512_set1_pd(pat[k]), d0);
      d1 = _mm512_fmadd_pd(_mm512_loadu_pd(win + k + 1),
                           _mm512_set1_pd(pat[k + 1]), d1);
      d2 = _mm512_fmadd_pd(_mm512_loadu_pd(win + k + 2),
                           _mm512_set1_pd(pat[k + 2]), d2);
      d3 = _mm512_fmadd_pd(_mm512_loadu_pd(win + k + 3),
                           _mm512_set1_pd(pat[k + 3]), d3);
    }
    __m512d dot = _mm512_add_pd(_mm512_add_pd(d0, d1), _mm512_add_pd(d2, d3));
    for (; k < w; ++k) {
      dot = _mm512_fmadd_pd(_mm512_loadu_pd(win + k),
                            _mm512_set1_pd(pat[k]), dot);
    }
    _mm512_storeu_pd(dots + j, dot);
  }
#elif defined(__AVX2__) && defined(__FMA__)
  for (; j + 8 <= n; j += 8) {
    const double* win = first + j;
    __m256d a0 = _mm256_setzero_pd(), b0 = _mm256_setzero_pd();
    __m256d a1 = _mm256_setzero_pd(), b1 = _mm256_setzero_pd();
    __m256d a2 = _mm256_setzero_pd(), b2 = _mm256_setzero_pd();
    __m256d a3 = _mm256_setzero_pd(), b3 = _mm256_setzero_pd();
    std::size_t k = 0;
    for (; k + 4 <= w; k += 4) {
      const __m256d p0 = _mm256_set1_pd(pat[k]);
      a0 = _mm256_fmadd_pd(_mm256_loadu_pd(win + k), p0, a0);
      b0 = _mm256_fmadd_pd(_mm256_loadu_pd(win + k + 4), p0, b0);
      const __m256d p1 = _mm256_set1_pd(pat[k + 1]);
      a1 = _mm256_fmadd_pd(_mm256_loadu_pd(win + k + 1), p1, a1);
      b1 = _mm256_fmadd_pd(_mm256_loadu_pd(win + k + 5), p1, b1);
      const __m256d p2 = _mm256_set1_pd(pat[k + 2]);
      a2 = _mm256_fmadd_pd(_mm256_loadu_pd(win + k + 2), p2, a2);
      b2 = _mm256_fmadd_pd(_mm256_loadu_pd(win + k + 6), p2, b2);
      const __m256d p3 = _mm256_set1_pd(pat[k + 3]);
      a3 = _mm256_fmadd_pd(_mm256_loadu_pd(win + k + 3), p3, a3);
      b3 = _mm256_fmadd_pd(_mm256_loadu_pd(win + k + 7), p3, b3);
    }
    __m256d da = _mm256_add_pd(_mm256_add_pd(a0, a1), _mm256_add_pd(a2, a3));
    __m256d db = _mm256_add_pd(_mm256_add_pd(b0, b1), _mm256_add_pd(b2, b3));
    for (; k < w; ++k) {
      const __m256d p = _mm256_set1_pd(pat[k]);
      da = _mm256_fmadd_pd(_mm256_loadu_pd(win + k), p, da);
      db = _mm256_fmadd_pd(_mm256_loadu_pd(win + k + 4), p, db);
    }
    _mm256_storeu_pd(dots + j, da);
    _mm256_storeu_pd(dots + j + 4, db);
  }
  for (; j + 4 <= n; j += 4) {
    const double* win = first + j;
    __m256d d0 = _mm256_setzero_pd();
    __m256d d1 = _mm256_setzero_pd();
    __m256d d2 = _mm256_setzero_pd();
    __m256d d3 = _mm256_setzero_pd();
    std::size_t k = 0;
    for (; k + 4 <= w; k += 4) {
      d0 = _mm256_fmadd_pd(_mm256_loadu_pd(win + k),
                           _mm256_set1_pd(pat[k]), d0);
      d1 = _mm256_fmadd_pd(_mm256_loadu_pd(win + k + 1),
                           _mm256_set1_pd(pat[k + 1]), d1);
      d2 = _mm256_fmadd_pd(_mm256_loadu_pd(win + k + 2),
                           _mm256_set1_pd(pat[k + 2]), d2);
      d3 = _mm256_fmadd_pd(_mm256_loadu_pd(win + k + 3),
                           _mm256_set1_pd(pat[k + 3]), d3);
    }
    __m256d dot = _mm256_add_pd(_mm256_add_pd(d0, d1), _mm256_add_pd(d2, d3));
    for (; k < w; ++k) {
      dot = _mm256_fmadd_pd(_mm256_loadu_pd(win + k),
                            _mm256_set1_pd(pat[k]), dot);
    }
    _mm256_storeu_pd(dots + j, dot);
  }
#else
  (void)pat;
  (void)w;
#endif
  for (; j < n; ++j) dots[j] = dot_one_d(first + j);
}

void SlidingCorrelator::process(std::span<const float> in,
                                std::span<float> out) {
#if !FDB_CORRELATOR_SIMD
  // Without a vector ISA the blocked restructure is pure overhead (the
  // dots fall back to dot_one anyway); the single-pass scalar loop is
  // the faster — and definitionally bit-identical — path.
  process_scalar(in, out);
#else
  // Three passes per block, each matching the scalar reference's
  // per-sample op order exactly — the dot is a pure function of the
  // window, so deferring it past the bookkeeping changes nothing:
  //   1. bookkeeping: running sum/energy, refresh, per-output mean/denom
  //   2. blocked pattern dots for the warmed-up suffix
  //   3. elementwise normalisation into out
  assert(in.size() == out.size());
  const std::size_t w = window_len_;
  const double inv_w = 1.0 / static_cast<double>(w);
  std::size_t done = 0;
  while (done < in.size()) {
    if (cursor_ >= hist_.size()) compact();
    const std::size_t take =
        std::min(in.size() - done, hist_.size() - cursor_);
    std::copy_n(in.data() + done, take, hist_.data() + cursor_);
    // base[i .. i+w-1] is the window ending at chunk sample i.
    const float* base = hist_.data() + cursor_ - (w - 1);
    float* o = out.data() + done;
    if (mean_buf_.size() < take) {
      mean_buf_.resize(take);
      denom_buf_.resize(take);
      dot_buf_.resize(take);
      win_d_.resize(take + w - 1);
    }
    std::size_t warm = take;  // first output with a full window
    for (std::size_t i = 0; i < take; ++i) {
      const double x = base[w - 1 + i];
      sum_ += x;
      sumsq_ += x * x;
      ++total_;
      if (total_ >= w) {
        if (warm == take) warm = i;
        if ((total_ & kRefreshMask) == 0) refresh_sums(base + i);
        const double mean = sum_ * inv_w;
        double energy = sumsq_ - sum_ * mean;
        if (energy < 0.0) energy = 0.0;
        mean_buf_[i] = mean;
        denom_buf_[i] = std::sqrt(energy * pattern_energy_);
      }
      const double oldest = base[i];
      sum_ -= oldest;
      sumsq_ -= oldest * oldest;
    }
    if (warm < take) {
      // Widen the touched window range to double once (exact), so the
      // blocked kernel's inner loop is pure load+broadcast+FMA instead
      // of converting every sample once per tap it participates in.
      const std::size_t span = (take - warm) + w - 1;
      const float* src = base + warm;
      for (std::size_t i = 0; i < span; ++i) {
        win_d_[i] = static_cast<double>(src[i]);
      }
      dot_block(win_d_.data(), take - warm, dot_buf_.data());
    }
    for (std::size_t i = 0; i < warm; ++i) o[i] = 0.0f;
    for (std::size_t i = warm; i < take; ++i) {
      const double denom = denom_buf_[i];
      if (denom >= 1e-12) {
        // Mean removal folds into the dot product: with p already
        // (almost) zero-mean, sum((v-mean)*p) = sum(v*p) - mean*sum(p).
        const double dot = dot_buf_[i - warm] - mean_buf_[i] * pattern_sum_;
        o[i] = static_cast<float>(dot / denom);
      } else {
        o[i] = 0.0f;
      }
    }
    cursor_ += take;
    done += take;
  }
#endif
}

void SlidingCorrelator::process_scalar(std::span<const float> in,
                                       std::span<float> out) {
  assert(in.size() == out.size());
  const std::size_t w = window_len_;
  const double inv_w = 1.0 / static_cast<double>(w);
  std::size_t done = 0;
  while (done < in.size()) {
    if (cursor_ >= hist_.size()) compact();
    const std::size_t take =
        std::min(in.size() - done, hist_.size() - cursor_);
    std::copy_n(in.data() + done, take, hist_.data() + cursor_);
    const float* base = hist_.data() + cursor_ - (w - 1);
    float* o = out.data() + done;
    for (std::size_t i = 0; i < take; ++i) {
      const double x = base[w - 1 + i];
      sum_ += x;
      sumsq_ += x * x;
      ++total_;
      float corr = 0.0f;
      if (total_ >= w) {
        if ((total_ & kRefreshMask) == 0) refresh_sums(base + i);
        const double mean = sum_ * inv_w;
        double energy = sumsq_ - sum_ * mean;
        if (energy < 0.0) energy = 0.0;
        const double denom = std::sqrt(energy * pattern_energy_);
        if (denom >= 1e-12) {
          const double dot = dot_one(base + i) - mean * pattern_sum_;
          corr = static_cast<float>(dot / denom);
        }
      }
      o[i] = corr;
      const double oldest = base[i];
      sum_ -= oldest;
      sumsq_ -= oldest * oldest;
    }
    cursor_ += take;
    done += take;
  }
}

float SlidingCorrelator::process(float x) {
  // Single-sample specialization of the batch loop (take == 1): same
  // expressions in the same order, minus the span/block machinery, so
  // the per-sample API stays within a few percent of the batch scalar
  // path while remaining bit-identical to it. A true staging buffer is
  // impossible here — each call must return its correlation
  // synchronously — so the win comes from specialization instead.
  const std::size_t w = window_len_;
  if (cursor_ >= hist_.size()) compact();
  hist_[cursor_] = x;
  const float* base = hist_.data() + cursor_ - (w - 1);
  const double xd = x;
  sum_ += xd;
  sumsq_ += xd * xd;
  ++total_;
  float corr = 0.0f;
  if (total_ >= w) {
    if ((total_ & kRefreshMask) == 0) refresh_sums(base);
    const double mean = sum_ * (1.0 / static_cast<double>(w));
    double energy = sumsq_ - sum_ * mean;
    if (energy < 0.0) energy = 0.0;
    const double denom = std::sqrt(energy * pattern_energy_);
    if (denom >= 1e-12) {
      const double dot = dot_one(base) - mean * pattern_sum_;
      corr = static_cast<float>(dot / denom);
    }
  }
  const double oldest = base[0];
  sum_ -= oldest;
  sumsq_ -= oldest * oldest;
  ++cursor_;
  return corr;
}

void SlidingCorrelator::reset() {
  std::fill(hist_.begin(), hist_.end(), 0.0f);
  cursor_ = window_len_ - 1;
  sum_ = 0.0;
  sumsq_ = 0.0;
  total_ = 0;
}

PeakDetector::PeakDetector(float threshold, std::size_t lockout)
    : threshold_(threshold), lockout_(lockout) {
  assert(lockout > 0);
}

std::optional<std::size_t> PeakDetector::process(float corr) {
  const std::size_t current = index_++;
  if (!tracking_) {
    if (corr >= threshold_) {
      tracking_ = true;
      best_ = corr;
      best_index_ = current;
      since_best_ = 0;
    }
    return std::nullopt;
  }
  if (corr > best_) {
    best_ = corr;
    best_index_ = current;
    since_best_ = 0;
    return std::nullopt;
  }
  if (++since_best_ >= lockout_) {
    tracking_ = false;
    return best_index_;
  }
  return std::nullopt;
}

void PeakDetector::skip(std::size_t n) {
  assert(!tracking_);
  index_ += n;
}

void PeakDetector::reset() {
  index_ = 0;
  tracking_ = false;
  best_ = 0.0f;
  best_index_ = 0;
  since_best_ = 0;
}

}  // namespace fdb::dsp
