#include "dsp/correlator.hpp"

#include <cassert>
#include <cmath>

namespace fdb::dsp {

SlidingCorrelator::SlidingCorrelator(std::vector<float> pattern,
                                     std::size_t samples_per_chip) {
  assert(!pattern.empty() && samples_per_chip > 0);
  stretched_.reserve(pattern.size() * samples_per_chip);
  for (const float chip : pattern) {
    assert(chip == 1.0f || chip == -1.0f);
    for (std::size_t s = 0; s < samples_per_chip; ++s) {
      stretched_.push_back(chip);
    }
  }
  // Mean-remove the pattern so a perfectly aligned window scores exactly
  // 1.0 even for patterns with nonzero disparity (Barker codes have a
  // small DC component the windowed mean-removal would otherwise lose).
  double mean = 0.0;
  for (const float v : stretched_) mean += v;
  mean /= static_cast<double>(stretched_.size());
  pattern_energy_ = 0.0;
  for (auto& v : stretched_) {
    v -= static_cast<float>(mean);
    pattern_energy_ += static_cast<double>(v) * v;
  }
  window_len_ = stretched_.size();
  window_.assign(window_len_, 0.0f);
}

float SlidingCorrelator::process(float x) {
  window_[pos_] = x;
  pos_ = (pos_ + 1) % window_len_;
  if (filled_ < window_len_) {
    ++filled_;
    if (filled_ < window_len_) return 0.0f;
  }
  // window_[pos_] is the oldest sample; align stretched_[0] with it.
  double mean = 0.0;
  for (const float v : window_) mean += v;
  mean /= static_cast<double>(window_len_);

  double dot = 0.0;
  double energy = 0.0;
  for (std::size_t i = 0; i < window_len_; ++i) {
    const double v = window_[(pos_ + i) % window_len_] - mean;
    dot += v * stretched_[i];
    energy += v * v;
  }
  const double denom = std::sqrt(energy * pattern_energy_);
  if (denom < 1e-12) return 0.0f;
  return static_cast<float>(dot / denom);
}

void SlidingCorrelator::reset() {
  std::fill(window_.begin(), window_.end(), 0.0f);
  pos_ = 0;
  filled_ = 0;
}

PeakDetector::PeakDetector(float threshold, std::size_t lockout)
    : threshold_(threshold), lockout_(lockout) {
  assert(lockout > 0);
}

std::optional<std::size_t> PeakDetector::process(float corr) {
  const std::size_t current = index_++;
  if (!tracking_) {
    if (corr >= threshold_) {
      tracking_ = true;
      best_ = corr;
      best_index_ = current;
      since_best_ = 0;
    }
    return std::nullopt;
  }
  if (corr > best_) {
    best_ = corr;
    best_index_ = current;
    since_best_ = 0;
    return std::nullopt;
  }
  if (++since_best_ >= lockout_) {
    tracking_ = false;
    return best_index_;
  }
  return std::nullopt;
}

void PeakDetector::reset() {
  index_ = 0;
  tracking_ = false;
  best_ = 0.0f;
  best_index_ = 0;
  since_best_ = 0;
}

}  // namespace fdb::dsp
