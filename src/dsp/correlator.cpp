#include "dsp/correlator.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>

namespace fdb::dsp {
namespace {

// Samples appended per compaction cycle; the history buffer holds
// window_len_-1 + kBlock floats, so the tail memmove amortises to
// (W-1)/kBlock floats per sample.
constexpr std::size_t kBlock = 4096;

// The incremental sum/energy are re-derived from the window whenever
// total_ crosses a multiple of this (power of two). Keyed to the
// absolute sample count so any chunking of the stream refreshes at the
// same instants — chunked and scalar feeding stay bit-identical.
constexpr std::uint64_t kRefreshMask = (1u << 15) - 1;

}  // namespace

SlidingCorrelator::SlidingCorrelator(std::vector<float> pattern,
                                     std::size_t samples_per_chip) {
  assert(!pattern.empty() && samples_per_chip > 0);
  stretched_.reserve(pattern.size() * samples_per_chip);
  for (const float chip : pattern) {
    assert(chip == 1.0f || chip == -1.0f);
    for (std::size_t s = 0; s < samples_per_chip; ++s) {
      stretched_.push_back(chip);
    }
  }
  // Mean-remove the pattern so a perfectly aligned window scores exactly
  // 1.0 even for patterns with nonzero disparity (Barker codes have a
  // small DC component the windowed mean-removal would otherwise lose).
  double mean = 0.0;
  for (const float v : stretched_) mean += v;
  mean /= static_cast<double>(stretched_.size());
  pattern_energy_ = 0.0;
  pattern_sum_ = 0.0;
  for (auto& v : stretched_) {
    v -= static_cast<float>(mean);
    pattern_energy_ += static_cast<double>(v) * v;
    pattern_sum_ += static_cast<double>(v);
  }
  window_len_ = stretched_.size();
  hist_.assign(window_len_ - 1 + kBlock, 0.0f);
  cursor_ = window_len_ - 1;
}

void SlidingCorrelator::compact() {
  // Move the live history (last W-1 samples) back to the buffer front.
  std::memmove(hist_.data(), hist_.data() + cursor_ - (window_len_ - 1),
               (window_len_ - 1) * sizeof(float));
  cursor_ = window_len_ - 1;
}

void SlidingCorrelator::refresh_sums(const float* window) {
  // Re-derive the running sums from the current window; called at fixed
  // absolute sample counts so it is invariant to chunk boundaries.
  double s = 0.0, s2 = 0.0;
  for (std::size_t k = 0; k < window_len_; ++k) {
    const double v = window[k];
    s += v;
    s2 += v * v;
  }
  sum_ = s;
  sumsq_ = s2;
}

void SlidingCorrelator::process(std::span<const float> in,
                                std::span<float> out) {
  assert(in.size() == out.size());
  const std::size_t w = window_len_;
  const double inv_w = 1.0 / static_cast<double>(w);
  std::size_t done = 0;
  while (done < in.size()) {
    if (cursor_ >= hist_.size()) compact();
    const std::size_t take =
        std::min(in.size() - done, hist_.size() - cursor_);
    std::copy_n(in.data() + done, take, hist_.data() + cursor_);
    // base[i .. i+w-1] is the window ending at chunk sample i.
    const float* base = hist_.data() + cursor_ - (w - 1);
    float* o = out.data() + done;
    for (std::size_t i = 0; i < take; ++i) {
      const double x = base[w - 1 + i];
      sum_ += x;
      sumsq_ += x * x;
      ++total_;
      float corr = 0.0f;
      if (total_ >= w) {
        if ((total_ & kRefreshMask) == 0) refresh_sums(base + i);
        const double mean = sum_ * inv_w;
        double energy = sumsq_ - sum_ * mean;
        if (energy < 0.0) energy = 0.0;
        const double denom = std::sqrt(energy * pattern_energy_);
        if (denom >= 1e-12) {
          // Mean removal folds into the dot product: with p already
          // (almost) zero-mean, sum((v-mean)*p) = sum(v*p) - mean*sum(p).
          // Four independent partial sums break the sequential FP chain
          // so the loop vectorizes under strict FP math; the combine
          // order is fixed, keeping results deterministic.
          const float* win = base + i;
          const float* pat = stretched_.data();
          double d0 = 0.0, d1 = 0.0, d2 = 0.0, d3 = 0.0;
          std::size_t k = 0;
          for (; k + 4 <= w; k += 4) {
            d0 += static_cast<double>(win[k]) * pat[k];
            d1 += static_cast<double>(win[k + 1]) * pat[k + 1];
            d2 += static_cast<double>(win[k + 2]) * pat[k + 2];
            d3 += static_cast<double>(win[k + 3]) * pat[k + 3];
          }
          double dot = (d0 + d1) + (d2 + d3);
          for (; k < w; ++k) {
            dot += static_cast<double>(win[k]) * pat[k];
          }
          dot -= mean * pattern_sum_;
          corr = static_cast<float>(dot / denom);
        }
      }
      o[i] = corr;
      const double oldest = base[i];
      sum_ -= oldest;
      sumsq_ -= oldest * oldest;
    }
    cursor_ += take;
    done += take;
  }
}

float SlidingCorrelator::process(float x) {
  float y = 0.0f;
  process(std::span<const float>(&x, 1), std::span<float>(&y, 1));
  return y;
}

void SlidingCorrelator::reset() {
  std::fill(hist_.begin(), hist_.end(), 0.0f);
  cursor_ = window_len_ - 1;
  sum_ = 0.0;
  sumsq_ = 0.0;
  total_ = 0;
}

PeakDetector::PeakDetector(float threshold, std::size_t lockout)
    : threshold_(threshold), lockout_(lockout) {
  assert(lockout > 0);
}

std::optional<std::size_t> PeakDetector::process(float corr) {
  const std::size_t current = index_++;
  if (!tracking_) {
    if (corr >= threshold_) {
      tracking_ = true;
      best_ = corr;
      best_index_ = current;
      since_best_ = 0;
    }
    return std::nullopt;
  }
  if (corr > best_) {
    best_ = corr;
    best_index_ = current;
    since_best_ = 0;
    return std::nullopt;
  }
  if (++since_best_ >= lockout_) {
    tracking_ = false;
    return best_index_;
  }
  return std::nullopt;
}

void PeakDetector::reset() {
  index_ = 0;
  tracking_ = false;
  best_ = 0.0f;
  best_index_ = 0;
  since_best_ = 0;
}

}  // namespace fdb::dsp
