// Radix-2 iterative FFT. Powers the ambient OFDM source and the
// spectrum probe example. Self-contained: the library has no external
// DSP dependencies.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/types.hpp"

namespace fdb::dsp {

/// In-place forward FFT; data.size() must be a power of two.
void fft(std::span<cf32> data);

/// In-place inverse FFT with 1/N normalisation.
void ifft(std::span<cf32> data);

/// Returns true when n is a nonzero power of two.
bool is_pow2(std::size_t n);

/// Swaps halves so DC lands in the middle (plot ordering).
void fftshift(std::span<cf32> data);

/// |X[k]|^2 / N of the windowed FFT of `data` (Welch-style single
/// segment). data.size() must be a power of two.
std::vector<float> power_spectrum(std::span<const cf32> data);

}  // namespace fdb::dsp
