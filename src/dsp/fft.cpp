#include "dsp/fft.hpp"

#include <cassert>
#include <cmath>
#include <numbers>

namespace fdb::dsp {

bool is_pow2(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

namespace {

void bit_reverse_permute(std::span<cf32> data) {
  const std::size_t n = data.size();
  std::size_t j = 0;
  for (std::size_t i = 1; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
}

void fft_core(std::span<cf32> data, bool inverse) {
  const std::size_t n = data.size();
  assert(is_pow2(n));
  bit_reverse_permute(data);
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle =
        (inverse ? 2.0 : -2.0) * std::numbers::pi / static_cast<double>(len);
    const cf32 wlen(static_cast<float>(std::cos(angle)),
                    static_cast<float>(std::sin(angle)));
    for (std::size_t i = 0; i < n; i += len) {
      cf32 w(1.0f, 0.0f);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const cf32 u = data[i + k];
        const cf32 v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

}  // namespace

void fft(std::span<cf32> data) { fft_core(data, /*inverse=*/false); }

void ifft(std::span<cf32> data) {
  fft_core(data, /*inverse=*/true);
  const float scale = 1.0f / static_cast<float>(data.size());
  for (auto& x : data) x *= scale;
}

void fftshift(std::span<cf32> data) {
  const std::size_t half = data.size() / 2;
  for (std::size_t i = 0; i < half; ++i) std::swap(data[i], data[i + half]);
}

std::vector<float> power_spectrum(std::span<const cf32> data) {
  assert(is_pow2(data.size()));
  std::vector<cf32> work(data.begin(), data.end());
  fft(work);
  std::vector<float> ps(work.size());
  const float norm = 1.0f / static_cast<float>(work.size());
  for (std::size_t i = 0; i < work.size(); ++i) {
    ps[i] = std::norm(work[i]) * norm;
  }
  return ps;
}

}  // namespace fdb::dsp
