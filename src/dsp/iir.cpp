#include "dsp/iir.hpp"

#include <cassert>
#include <cmath>
#include <numbers>

namespace fdb::dsp {

OnePole::OnePole(double alpha) : alpha_(alpha) {
  assert(alpha > 0.0 && alpha <= 1.0);
}

OnePole OnePole::from_cutoff(double cutoff_hz, double sample_rate_hz) {
  assert(cutoff_hz > 0.0 && cutoff_hz < sample_rate_hz / 2.0);
  // Exact mapping of an RC pole to its discrete equivalent.
  const double alpha =
      1.0 - std::exp(-2.0 * std::numbers::pi * cutoff_hz / sample_rate_hz);
  return OnePole(alpha);
}

float OnePole::process(float x) {
  float y = 0.0f;
  process(std::span<const float>(&x, 1), std::span<float>(&y, 1));
  return y;
}

void OnePole::process(std::span<const float> in, std::span<float> out) {
  assert(in.size() == out.size());
  // Batch kernel: the recurrence runs on registers, state is written
  // back once. Safe for in-place use (in.data() == out.data()).
  const double a = alpha_;
  const double b = 1.0 - alpha_;
  float y = y_;
  for (std::size_t i = 0; i < in.size(); ++i) {
    y = static_cast<float>(a * in[i] + b * y);
    out[i] = y;
  }
  y_ = y;
}

void OnePole::reset(float value) { y_ = value; }

Biquad::Biquad(double b0, double b1, double b2, double a1, double a2)
    : b0_(b0), b1_(b1), b2_(b2), a1_(a1), a2_(a2) {}

namespace {
struct RbjCommon {
  double w0, cosw, sinw, alpha;
};
RbjCommon rbj(double cutoff_hz, double sample_rate_hz, double q) {
  assert(cutoff_hz > 0.0 && cutoff_hz < sample_rate_hz / 2.0 && q > 0.0);
  RbjCommon c{};
  c.w0 = 2.0 * std::numbers::pi * cutoff_hz / sample_rate_hz;
  c.cosw = std::cos(c.w0);
  c.sinw = std::sin(c.w0);
  c.alpha = c.sinw / (2.0 * q);
  return c;
}
}  // namespace

Biquad Biquad::lowpass(double cutoff_hz, double sample_rate_hz, double q) {
  const auto c = rbj(cutoff_hz, sample_rate_hz, q);
  const double a0 = 1.0 + c.alpha;
  return Biquad((1.0 - c.cosw) / 2.0 / a0, (1.0 - c.cosw) / a0,
                (1.0 - c.cosw) / 2.0 / a0, -2.0 * c.cosw / a0,
                (1.0 - c.alpha) / a0);
}

Biquad Biquad::highpass(double cutoff_hz, double sample_rate_hz, double q) {
  const auto c = rbj(cutoff_hz, sample_rate_hz, q);
  const double a0 = 1.0 + c.alpha;
  return Biquad((1.0 + c.cosw) / 2.0 / a0, -(1.0 + c.cosw) / a0,
                (1.0 + c.cosw) / 2.0 / a0, -2.0 * c.cosw / a0,
                (1.0 - c.alpha) / a0);
}

Biquad Biquad::dc_blocker(double sample_rate_hz, double cutoff_hz) {
  return highpass(cutoff_hz, sample_rate_hz, 0.7071);
}

float Biquad::process(float x) {
  float y = 0.0f;
  process(std::span<const float>(&x, 1), std::span<float>(&y, 1));
  return y;
}

void Biquad::process(std::span<const float> in, std::span<float> out) {
  assert(in.size() == out.size());
  // Batch kernel: direct-form-I state lives in registers across the
  // block. Safe for in-place use.
  double x1 = x1_, x2 = x2_, y1 = y1_, y2 = y2_;
  for (std::size_t i = 0; i < in.size(); ++i) {
    const double x = in[i];
    const double y = b0_ * x + b1_ * x1 + b2_ * x2 - a1_ * y1 - a2_ * y2;
    x2 = x1;
    x1 = x;
    y2 = y1;
    y1 = y;
    out[i] = static_cast<float>(y);
  }
  x1_ = x1;
  x2_ = x2;
  y1_ = y1;
  y2_ = y2;
}

void Biquad::reset() { x1_ = x2_ = y1_ = y2_ = 0.0; }

}  // namespace fdb::dsp
