#include "dsp/iir.hpp"

#include <cassert>
#include <cmath>
#include <numbers>

namespace fdb::dsp {

OnePole::OnePole(double alpha) : alpha_(alpha) {
  assert(alpha > 0.0 && alpha <= 1.0);
}

OnePole OnePole::from_cutoff(double cutoff_hz, double sample_rate_hz) {
  assert(cutoff_hz > 0.0 && cutoff_hz < sample_rate_hz / 2.0);
  // Exact mapping of an RC pole to its discrete equivalent.
  const double alpha =
      1.0 - std::exp(-2.0 * std::numbers::pi * cutoff_hz / sample_rate_hz);
  return OnePole(alpha);
}

float OnePole::process(float x) {
  y_ = static_cast<float>(alpha_ * x + (1.0 - alpha_) * y_);
  return y_;
}

void OnePole::process(std::span<const float> in, std::span<float> out) {
  assert(in.size() == out.size());
  for (std::size_t i = 0; i < in.size(); ++i) out[i] = process(in[i]);
}

void OnePole::reset(float value) { y_ = value; }

Biquad::Biquad(double b0, double b1, double b2, double a1, double a2)
    : b0_(b0), b1_(b1), b2_(b2), a1_(a1), a2_(a2) {}

namespace {
struct RbjCommon {
  double w0, cosw, sinw, alpha;
};
RbjCommon rbj(double cutoff_hz, double sample_rate_hz, double q) {
  assert(cutoff_hz > 0.0 && cutoff_hz < sample_rate_hz / 2.0 && q > 0.0);
  RbjCommon c{};
  c.w0 = 2.0 * std::numbers::pi * cutoff_hz / sample_rate_hz;
  c.cosw = std::cos(c.w0);
  c.sinw = std::sin(c.w0);
  c.alpha = c.sinw / (2.0 * q);
  return c;
}
}  // namespace

Biquad Biquad::lowpass(double cutoff_hz, double sample_rate_hz, double q) {
  const auto c = rbj(cutoff_hz, sample_rate_hz, q);
  const double a0 = 1.0 + c.alpha;
  return Biquad((1.0 - c.cosw) / 2.0 / a0, (1.0 - c.cosw) / a0,
                (1.0 - c.cosw) / 2.0 / a0, -2.0 * c.cosw / a0,
                (1.0 - c.alpha) / a0);
}

Biquad Biquad::highpass(double cutoff_hz, double sample_rate_hz, double q) {
  const auto c = rbj(cutoff_hz, sample_rate_hz, q);
  const double a0 = 1.0 + c.alpha;
  return Biquad((1.0 + c.cosw) / 2.0 / a0, -(1.0 + c.cosw) / a0,
                (1.0 + c.cosw) / 2.0 / a0, -2.0 * c.cosw / a0,
                (1.0 - c.alpha) / a0);
}

Biquad Biquad::dc_blocker(double sample_rate_hz, double cutoff_hz) {
  return highpass(cutoff_hz, sample_rate_hz, 0.7071);
}

float Biquad::process(float x) {
  const double y = b0_ * x + b1_ * x1_ + b2_ * x2_ - a1_ * y1_ - a2_ * y2_;
  x2_ = x1_;
  x1_ = x;
  y2_ = y1_;
  y1_ = y;
  return static_cast<float>(y);
}

void Biquad::process(std::span<const float> in, std::span<float> out) {
  assert(in.size() == out.size());
  for (std::size_t i = 0; i < in.size(); ++i) out[i] = process(in[i]);
}

void Biquad::reset() { x1_ = x2_ = y1_ = y2_ = 0.0; }

}  // namespace fdb::dsp
