// IIR building blocks: single-pole smoothers (envelope tracking, AGC
// loops) and RBJ biquads (DC removal, band selection).
#pragma once

#include <cstddef>
#include <span>

namespace fdb::dsp {

/// One-pole low-pass y[n] = a*x[n] + (1-a)*y[n-1]. The classic cheap
/// smoother a microcontroller-class backscatter decoder can afford.
class OnePole {
 public:
  /// alpha in (0, 1]; larger tracks faster.
  explicit OnePole(double alpha);

  /// Builds a one-pole whose -3 dB point is at `cutoff_hz` for the given
  /// sample rate.
  static OnePole from_cutoff(double cutoff_hz, double sample_rate_hz);

  float process(float x);
  void process(std::span<const float> in, std::span<float> out);
  void reset(float value = 0.0f);
  float value() const { return y_; }
  double alpha() const { return alpha_; }

 private:
  double alpha_;
  float y_ = 0.0f;
};

/// Direct-form-I biquad with RBJ cookbook designers.
class Biquad {
 public:
  Biquad(double b0, double b1, double b2, double a1, double a2);

  static Biquad lowpass(double cutoff_hz, double sample_rate_hz, double q = 0.7071);
  static Biquad highpass(double cutoff_hz, double sample_rate_hz, double q = 0.7071);
  /// DC blocker: high-pass with very low cutoff, used to strip the strong
  /// carrier mean out of envelope streams.
  static Biquad dc_blocker(double sample_rate_hz, double cutoff_hz = 1.0);

  float process(float x);
  void process(std::span<const float> in, std::span<float> out);
  void reset();

 private:
  double b0_, b1_, b2_, a1_, a2_;
  double x1_ = 0.0, x2_ = 0.0, y1_ = 0.0, y2_ = 0.0;
};

}  // namespace fdb::dsp
