#include "dsp/resample.hpp"

#include <cassert>

namespace fdb::dsp {

Decimator::Decimator(std::size_t factor, std::size_t taps)
    : factor_(factor),
      filter_(design_lowpass(0.45 / static_cast<double>(factor), taps | 1)) {
  assert(factor > 0);
}

void Decimator::process(std::span<const float> in, std::vector<float>& out) {
  // Batch: filter the whole block through the FIR's block kernel, then
  // keep every factor-th sample of the filtered stream.
  scratch_.resize(in.size());
  filter_.process(in, scratch_);
  for (const float y : scratch_) {
    if (phase_ == 0) out.push_back(y);
    if (++phase_ == factor_) phase_ = 0;
  }
}

void Decimator::reset() {
  filter_.reset();
  phase_ = 0;
}

Interpolator::Interpolator(std::size_t factor, std::size_t taps)
    : factor_(factor),
      filter_(design_lowpass(0.45 / static_cast<double>(factor), taps | 1)) {
  assert(factor > 0);
}

void Interpolator::process(std::span<const float> in,
                           std::vector<float>& out) {
  // Zero-stuff the whole block (gain of `factor` restores amplitude),
  // then run one batch convolution over the stuffed stream.
  scratch_.assign(in.size() * factor_, 0.0f);
  const auto gain = static_cast<float>(factor_);
  for (std::size_t i = 0; i < in.size(); ++i) {
    scratch_[i * factor_] = in[i] * gain;
  }
  const std::size_t start = out.size();
  out.resize(start + scratch_.size());
  filter_.process(scratch_,
                  std::span<float>(out.data() + start, scratch_.size()));
}

void Interpolator::reset() { filter_.reset(); }

HoldInterpolator::HoldInterpolator(std::size_t factor) : factor_(factor) {
  assert(factor > 0);
}

void HoldInterpolator::process(std::span<const float> in,
                               std::vector<float>& out) {
  for (const float x : in) {
    out.insert(out.end(), factor_, x);
  }
}

}  // namespace fdb::dsp
