#include "dsp/resample.hpp"

#include <cassert>

namespace fdb::dsp {

Decimator::Decimator(std::size_t factor, std::size_t taps)
    : factor_(factor),
      filter_(design_lowpass(0.45 / static_cast<double>(factor), taps | 1)) {
  assert(factor > 0);
}

void Decimator::process(std::span<const float> in, std::vector<float>& out) {
  for (const float x : in) {
    const float y = filter_.process(x);
    if (phase_ == 0) out.push_back(y);
    phase_ = (phase_ + 1) % factor_;
  }
}

void Decimator::reset() {
  filter_.reset();
  phase_ = 0;
}

Interpolator::Interpolator(std::size_t factor, std::size_t taps)
    : factor_(factor),
      filter_(design_lowpass(0.45 / static_cast<double>(factor), taps | 1)) {
  assert(factor > 0);
}

void Interpolator::process(std::span<const float> in,
                           std::vector<float>& out) {
  for (const float x : in) {
    // Zero-stuff then filter; gain of `factor` restores amplitude.
    out.push_back(filter_.process(x * static_cast<float>(factor_)));
    for (std::size_t k = 1; k < factor_; ++k) {
      out.push_back(filter_.process(0.0f));
    }
  }
}

void Interpolator::reset() { filter_.reset(); }

HoldInterpolator::HoldInterpolator(std::size_t factor) : factor_(factor) {
  assert(factor > 0);
}

void HoldInterpolator::process(std::span<const float> in,
                               std::vector<float>& out) {
  for (const float x : in) {
    out.insert(out.end(), factor_, x);
  }
}

}  // namespace fdb::dsp
