#include "dsp/goertzel.hpp"

#include <cassert>
#include <cmath>
#include <numbers>

namespace fdb::dsp {

Goertzel::Goertzel(double bin_freq_hz, double sample_rate_hz,
                   std::size_t block_len)
    : block_len_(block_len) {
  assert(block_len > 0);
  assert(std::abs(bin_freq_hz) < sample_rate_hz / 2.0);
  const double w = 2.0 * std::numbers::pi * bin_freq_hz / sample_rate_hz;
  cos_w_ = std::cos(w);
  sin_w_ = std::sin(w);
  coeff_ = 2.0 * cos_w_;
}

double Goertzel::process_block(std::span<const float> block) {
  assert(block.size() == block_len_);
  double s1 = 0.0, s2 = 0.0;
  for (const float x : block) {
    const double s0 = x + coeff_ * s1 - s2;
    s2 = s1;
    s1 = s0;
  }
  const double real = s1 - s2 * cos_w_;
  const double imag = s2 * sin_w_;
  return real * real + imag * imag;
}

void Goertzel::process_blocks(std::span<const float> samples,
                              std::span<double> powers) {
  assert(samples.size() == powers.size() * block_len_);
  for (std::size_t b = 0; b < powers.size(); ++b) {
    powers[b] = process_block(samples.subspan(b * block_len_, block_len_));
  }
}

void Goertzel::process_blocks(std::span<const cf32> samples,
                              std::span<double> powers) {
  assert(samples.size() == powers.size() * block_len_);
  for (std::size_t b = 0; b < powers.size(); ++b) {
    powers[b] = process_block(samples.subspan(b * block_len_, block_len_));
  }
}

double Goertzel::process_block(std::span<const cf32> block) {
  assert(block.size() == block_len_);
  // Complex input: run two real Goertzels and combine. The target bin of
  // a complex signal at +f needs I and Q contributions.
  double s1r = 0.0, s2r = 0.0, s1i = 0.0, s2i = 0.0;
  for (const cf32 x : block) {
    const double s0r = x.real() + coeff_ * s1r - s2r;
    s2r = s1r;
    s1r = s0r;
    const double s0i = x.imag() + coeff_ * s1i - s2i;
    s2i = s1i;
    s1i = s0i;
  }
  const double rr = s1r - s2r * cos_w_;
  const double ri = s2r * sin_w_;
  const double ir = s1i - s2i * cos_w_;
  const double ii = s2i * sin_w_;
  // X = (rr + j*ri) + j*(ir + j*ii) = (rr - ii) + j*(ri + ir)
  const double re = rr - ii;
  const double im = ri + ir;
  return re * re + im * im;
}

}  // namespace fdb::dsp
