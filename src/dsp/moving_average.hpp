// Sliding-window moving average. This is the workhorse of ambient
// backscatter decoding: the receiver distinguishes "reflecting" from
// "absorbing" by comparing short- and long-window averages of the
// envelope, and full-duplex rate separation uses a long window whose
// span covers many fast data bits.
#pragma once

#include <cassert>
#include <cstddef>
#include <span>
#include <vector>

namespace fdb::dsp {

template <typename T>
class MovingAverage {
 public:
  explicit MovingAverage(std::size_t window)
      : window_(window), buffer_(window, T{}) {
    assert(window > 0);
  }

  /// Pushes a sample, returns the average over the most recent
  /// min(window, pushed) samples. Thin wrapper over the batch kernel,
  /// so chunked and sample-at-a-time feeding are bit-identical.
  T process(T x) {
    T y{};
    process(std::span<const T>(&x, 1), std::span<T>(&y, 1));
    return y;
  }

  /// Batch kernel: out[i] is the average after pushing in[i]. The warm-up
  /// prologue peels off so the steady-state loop carries no fill check,
  /// and the ring index uses a conditional wrap instead of `%`.
  void process(std::span<const T> in, std::span<T> out) {
    assert(in.size() == out.size());
    std::size_t i = 0;
    for (; i < in.size() && filled_ < window_; ++i) {
      sum_ += in[i];
      sum_ -= buffer_[pos_];
      buffer_[pos_] = in[i];
      if (++pos_ == window_) pos_ = 0;
      ++filled_;
      out[i] = sum_ / static_cast<T>(filled_);
    }
    const T full = static_cast<T>(window_);
    for (; i < in.size(); ++i) {
      sum_ += in[i];
      sum_ -= buffer_[pos_];
      buffer_[pos_] = in[i];
      if (++pos_ == window_) pos_ = 0;
      out[i] = sum_ / full;
    }
  }

  T value() const {
    return filled_ ? sum_ / static_cast<T>(filled_) : T{};
  }

  std::size_t window() const { return window_; }
  std::size_t filled() const { return filled_; }
  bool warmed_up() const { return filled_ == window_; }

  void reset() {
    std::fill(buffer_.begin(), buffer_.end(), T{});
    sum_ = T{};
    pos_ = 0;
    filled_ = 0;
  }

 private:
  std::size_t window_;
  std::vector<T> buffer_;
  T sum_{};
  std::size_t pos_ = 0;
  std::size_t filled_ = 0;
};

/// Double-buffered min/max tracker over a sliding window, used by the
/// adaptive slicer to place its threshold midway between the envelope
/// levels of the two reflection states.
template <typename T>
class WindowedMinMax {
 public:
  explicit WindowedMinMax(std::size_t window) : window_(window) {
    assert(window > 0);
  }

  void push(T x) {
    buffer_.push_back(x);
    if (buffer_.size() > window_) buffer_.erase(buffer_.begin());
  }

  T min() const {
    assert(!buffer_.empty());
    T m = buffer_[0];
    for (const T& v : buffer_) m = v < m ? v : m;
    return m;
  }

  T max() const {
    assert(!buffer_.empty());
    T m = buffer_[0];
    for (const T& v : buffer_) m = v > m ? v : m;
    return m;
  }

  bool empty() const { return buffer_.empty(); }
  std::size_t size() const { return buffer_.size(); }

 private:
  std::size_t window_;
  std::vector<T> buffer_;
};

}  // namespace fdb::dsp
