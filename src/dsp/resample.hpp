// Integer-factor resampling. The full-duplex receiver decodes the slow
// feedback stream at a decimated rate; the ambient source can be
// upsampled to the simulation rate.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "dsp/fir.hpp"
#include "util/types.hpp"

namespace fdb::dsp {

/// Anti-aliased decimator: windowed-sinc low-pass then keep-1-in-M.
class Decimator {
 public:
  Decimator(std::size_t factor, std::size_t taps = 63);

  /// Feeds input samples; appends produced output samples to `out`.
  void process(std::span<const float> in, std::vector<float>& out);
  std::size_t factor() const { return factor_; }
  void reset();

 private:
  std::size_t factor_;
  FirFilterF filter_;
  std::size_t phase_ = 0;
  std::vector<float> scratch_;
};

/// Zero-stuffing interpolator with image-rejection low-pass.
class Interpolator {
 public:
  Interpolator(std::size_t factor, std::size_t taps = 63);

  void process(std::span<const float> in, std::vector<float>& out);
  std::size_t factor() const { return factor_; }
  void reset();

 private:
  std::size_t factor_;
  FirFilterF filter_;
  std::vector<float> scratch_;
};

/// Sample-and-hold upsampler for chip streams (each chip held for
/// `factor` samples) — models a switching modulator exactly.
class HoldInterpolator {
 public:
  explicit HoldInterpolator(std::size_t factor);

  void process(std::span<const float> in, std::vector<float>& out);
  std::size_t factor() const { return factor_; }

 private:
  std::size_t factor_;
};

}  // namespace fdb::dsp
