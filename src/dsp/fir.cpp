#include "dsp/fir.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <numbers>

namespace fdb::dsp {
namespace detail {
namespace {

// Samples appended per compaction cycle: the history buffer holds
// num_taps-1 + kBlock samples, so the tail memmove amortises to
// (T-1)/kBlock samples per input sample.
constexpr std::size_t kBlock = 4096;

}  // namespace

template <typename Tap, typename Sample>
BlockFir<Tap, Sample>::BlockFir(std::vector<Tap> taps)
    : taps_(std::move(taps)) {
  assert(!taps_.empty());
  rtaps_.assign(taps_.rbegin(), taps_.rend());
  // hist_len_ guards the empty-taps case in NDEBUG builds (the seed
  // implementation degraded to all-zero output there; sizing with
  // taps_.size() - 1 would underflow instead).
  hist_len_ = taps_.empty() ? 0 : taps_.size() - 1;
  hist_.assign(hist_len_ + kBlock, Sample{});
  cursor_ = hist_len_;
}

template <typename Tap, typename Sample>
void BlockFir<Tap, Sample>::compact() {
  std::memmove(hist_.data(), hist_.data() + cursor_ - hist_len_,
               hist_len_ * sizeof(Sample));
  cursor_ = hist_len_;
}

template <typename Tap, typename Sample>
void BlockFir<Tap, Sample>::run(std::span<const Sample> in,
                                std::span<Sample> out) {
  assert(in.size() == out.size());
  const std::size_t t = taps_.size();
  const Tap* rt = rtaps_.data();
  std::size_t done = 0;
  while (done < in.size()) {
    if (cursor_ >= hist_.size()) compact();
    const std::size_t take =
        std::min(in.size() - done, hist_.size() - cursor_);
    std::copy_n(in.data() + done, take, hist_.data() + cursor_);
    // base[i + j] for j in [0, t) walks the window oldest -> newest;
    // rtaps_ is reversed to match, so this is a straight correlation.
    const Sample* base = hist_.data() + cursor_ - hist_len_;
    Sample* o = out.data() + done;
    // Tap-outer / sample-inner ("saxpy") block convolution: each pass
    // adds one tap's contribution to every output. The inner loop is
    // element-parallel, so it vectorizes under strict FP semantics (no
    // reduction to reassociate), and every output accumulates its taps
    // in the same j order — deterministic and chunk-size invariant.
    std::fill_n(o, take, Sample{});
    for (std::size_t j = 0; j < t; ++j) {
      const Tap c = rt[j];
      const Sample* src = base + j;
      for (std::size_t i = 0; i < take; ++i) {
        o[i] += c * src[i];
      }
    }
    cursor_ += take;
    done += take;
  }
}

template <typename Tap, typename Sample>
Sample BlockFir<Tap, Sample>::step(Sample x) {
  // Scalar fast path. The accumulation order (ascending j over reversed
  // taps, one rounding per multiply-add) is identical to the batch
  // kernel's per-output order, so interleaving step() and run() calls in
  // any pattern yields bit-identical streams — pinned by the
  // BatchEquivalence tests.
  if (cursor_ >= hist_.size()) compact();
  hist_[cursor_] = x;
  const std::size_t t = taps_.size();
  const Sample* win = hist_.data() + cursor_ - hist_len_;
  const Tap* rt = rtaps_.data();
  Sample acc{};
  for (std::size_t j = 0; j < t; ++j) {
    acc += rt[j] * win[j];
  }
  ++cursor_;
  return acc;
}

template <typename Tap, typename Sample>
void BlockFir<Tap, Sample>::reset() {
  std::fill(hist_.begin(), hist_.end(), Sample{});
  cursor_ = hist_len_;
}

template class BlockFir<float, float>;
template class BlockFir<float, cf32>;
template class BlockFir<cf32, cf32>;

}  // namespace detail

std::vector<float> design_lowpass(double cutoff_norm, std::size_t num_taps,
                                  WindowType window) {
  assert(cutoff_norm > 0.0 && cutoff_norm < 0.5);
  assert(num_taps >= 1);
  const auto w = make_window(window, num_taps);
  std::vector<float> taps(num_taps);
  const double center = static_cast<double>(num_taps - 1) / 2.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < num_taps; ++i) {
    const double t = static_cast<double>(i) - center;
    const double x = 2.0 * std::numbers::pi * cutoff_norm * t;
    const double sinc = (std::abs(t) < 1e-12) ? 2.0 * cutoff_norm
                                              : std::sin(x) / (std::numbers::pi * t);
    taps[i] = static_cast<float>(sinc) * w[i];
    sum += taps[i];
  }
  for (auto& tap : taps) tap = static_cast<float>(tap / sum);
  return taps;
}

std::vector<float> design_highpass(double cutoff_norm, std::size_t num_taps,
                                   WindowType window) {
  assert(num_taps % 2 == 1 && "type-I (odd) length required for high-pass");
  auto taps = design_lowpass(cutoff_norm, num_taps, window);
  // Spectral inversion: delta at center minus low-pass.
  for (auto& tap : taps) tap = -tap;
  taps[(num_taps - 1) / 2] += 1.0f;
  return taps;
}

std::vector<float> design_boxcar(std::size_t n) {
  assert(n > 0);
  return std::vector<float>(n, 1.0f / static_cast<float>(n));
}

}  // namespace fdb::dsp
