#include "dsp/fir.hpp"

#include <cassert>
#include <cmath>
#include <numbers>

namespace fdb::dsp {
namespace {

// Shared streaming-convolution core. Delay line is used circularly:
// pos_ points at the slot that will receive the next sample.
template <typename Tap, typename Sample>
Sample fir_step(const std::vector<Tap>& taps, std::vector<Sample>& delay,
                std::size_t& pos, Sample x) {
  delay[pos] = x;
  Sample acc{};
  std::size_t idx = pos;
  for (const Tap& tap : taps) {
    acc += tap * delay[idx];
    idx = (idx == 0) ? delay.size() - 1 : idx - 1;
  }
  pos = (pos + 1) % delay.size();
  return acc;
}

}  // namespace

FirFilterF::FirFilterF(std::vector<float> taps)
    : taps_(std::move(taps)), delay_(taps_.empty() ? 1 : taps_.size(), 0.0f) {
  assert(!taps_.empty());
}

float FirFilterF::process(float x) {
  return fir_step(taps_, delay_, pos_, x);
}

void FirFilterF::process(std::span<const float> in, std::span<float> out) {
  assert(in.size() == out.size());
  for (std::size_t i = 0; i < in.size(); ++i) out[i] = process(in[i]);
}

void FirFilterF::reset() {
  std::fill(delay_.begin(), delay_.end(), 0.0f);
  pos_ = 0;
}

FirFilterC::FirFilterC(std::vector<float> taps)
    : taps_(std::move(taps)), delay_(taps_.empty() ? 1 : taps_.size()) {
  assert(!taps_.empty());
}

cf32 FirFilterC::process(cf32 x) { return fir_step(taps_, delay_, pos_, x); }

void FirFilterC::process(std::span<const cf32> in, std::span<cf32> out) {
  assert(in.size() == out.size());
  for (std::size_t i = 0; i < in.size(); ++i) out[i] = process(in[i]);
}

void FirFilterC::reset() {
  std::fill(delay_.begin(), delay_.end(), cf32{});
  pos_ = 0;
}

FirFilterCC::FirFilterCC(std::vector<cf32> taps)
    : taps_(std::move(taps)), delay_(taps_.empty() ? 1 : taps_.size()) {
  assert(!taps_.empty());
}

cf32 FirFilterCC::process(cf32 x) { return fir_step(taps_, delay_, pos_, x); }

void FirFilterCC::process(std::span<const cf32> in, std::span<cf32> out) {
  assert(in.size() == out.size());
  for (std::size_t i = 0; i < in.size(); ++i) out[i] = process(in[i]);
}

void FirFilterCC::reset() {
  std::fill(delay_.begin(), delay_.end(), cf32{});
  pos_ = 0;
}

std::vector<float> design_lowpass(double cutoff_norm, std::size_t num_taps,
                                  WindowType window) {
  assert(cutoff_norm > 0.0 && cutoff_norm < 0.5);
  assert(num_taps >= 1);
  const auto w = make_window(window, num_taps);
  std::vector<float> taps(num_taps);
  const double center = static_cast<double>(num_taps - 1) / 2.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < num_taps; ++i) {
    const double t = static_cast<double>(i) - center;
    const double x = 2.0 * std::numbers::pi * cutoff_norm * t;
    const double sinc = (std::abs(t) < 1e-12) ? 2.0 * cutoff_norm
                                              : std::sin(x) / (std::numbers::pi * t);
    taps[i] = static_cast<float>(sinc) * w[i];
    sum += taps[i];
  }
  for (auto& tap : taps) tap = static_cast<float>(tap / sum);
  return taps;
}

std::vector<float> design_highpass(double cutoff_norm, std::size_t num_taps,
                                   WindowType window) {
  assert(num_taps % 2 == 1 && "type-I (odd) length required for high-pass");
  auto taps = design_lowpass(cutoff_norm, num_taps, window);
  // Spectral inversion: delta at center minus low-pass.
  for (auto& tap : taps) tap = -tap;
  taps[(num_taps - 1) / 2] += 1.0f;
  return taps;
}

std::vector<float> design_boxcar(std::size_t n) {
  assert(n > 0);
  return std::vector<float>(n, 1.0f / static_cast<float>(n));
}

}  // namespace fdb::dsp
