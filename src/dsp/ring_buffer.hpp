// Fixed-capacity single-threaded ring buffer. The flowgraph scheduler and
// the streaming decoders use it to carry samples between stages without
// per-sample allocation.
#pragma once

#include <cassert>
#include <cstddef>
#include <vector>

namespace fdb::dsp {

template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity)
      : storage_(capacity + 1) {
    assert(capacity > 0);
  }

  std::size_t capacity() const { return storage_.size() - 1; }

  std::size_t size() const {
    return (head_ + storage_.size() - tail_) % storage_.size();
  }

  std::size_t free_space() const { return capacity() - size(); }
  bool empty() const { return head_ == tail_; }
  bool full() const { return free_space() == 0; }

  /// Pushes one element; returns false (drops) when full.
  bool push(const T& value) {
    if (full()) return false;
    storage_[head_] = value;
    head_ = (head_ + 1) % storage_.size();
    return true;
  }

  /// Pushes up to span.size() elements; returns how many fit.
  std::size_t push_many(const T* data, std::size_t n) {
    std::size_t pushed = 0;
    while (pushed < n && push(data[pushed])) ++pushed;
    return pushed;
  }

  /// Pops one element into `out`; returns false when empty.
  bool pop(T& out) {
    if (empty()) return false;
    out = storage_[tail_];
    tail_ = (tail_ + 1) % storage_.size();
    return true;
  }

  /// Pops up to n elements; returns how many were produced.
  std::size_t pop_many(T* out, std::size_t n) {
    std::size_t popped = 0;
    while (popped < n && pop(out[popped])) ++popped;
    return popped;
  }

  /// Reads element i (0 = oldest) without consuming. i < size().
  const T& peek(std::size_t i) const {
    assert(i < size());
    return storage_[(tail_ + i) % storage_.size()];
  }

  void clear() { head_ = tail_ = 0; }

 private:
  std::vector<T> storage_;
  std::size_t head_ = 0;
  std::size_t tail_ = 0;
};

}  // namespace fdb::dsp
