// Envelope detection — the only "RF" operation a passive backscatter
// receiver performs. A diode + RC network is modelled as magnitude
// extraction followed by a one-pole low-pass whose time constant is the
// RC product.
#pragma once

#include <span>

#include "dsp/iir.hpp"
#include "util/types.hpp"

namespace fdb::dsp {

class EnvelopeDetector {
 public:
  /// `rc_cutoff_hz` models the RC low-pass after the diode; it must pass
  /// the data rate but average out carrier structure.
  EnvelopeDetector(double rc_cutoff_hz, double sample_rate_hz);

  /// |x| -> RC smoothing. Output is a nonnegative envelope sample.
  float process(cf32 x);
  void process(std::span<const cf32> in, std::span<float> out);
  void reset();

 private:
  OnePole smoother_;
};

/// Square-law detector variant (|x|^2): closer to low-cost power
/// detectors; used by the energy-detection comparisons in tests.
class SquareLawDetector {
 public:
  SquareLawDetector(double rc_cutoff_hz, double sample_rate_hz);

  float process(cf32 x);
  void process(std::span<const cf32> in, std::span<float> out);
  void reset();

 private:
  OnePole smoother_;
};

}  // namespace fdb::dsp
