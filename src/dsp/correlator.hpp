// Sliding correlator for preamble detection on envelope streams.
//
// The pattern is a ±1 chip sequence; incoming envelope samples are
// mean-removed over the correlation window so the detector is invariant
// to the (large, slowly varying) ambient-carrier DC level.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

namespace fdb::dsp {

class SlidingCorrelator {
 public:
  /// `pattern` holds ±1 chips; `samples_per_chip` stretches each chip.
  SlidingCorrelator(std::vector<float> pattern, std::size_t samples_per_chip);

  /// Pushes one envelope sample; returns the normalised correlation in
  /// [-1, 1] once the window has filled (0 before that).
  float process(float x);

  /// True once the internal window is full and outputs are meaningful.
  bool warmed_up() const { return filled_ >= window_len_; }

  std::size_t window_length() const { return window_len_; }
  void reset();

 private:
  std::vector<float> stretched_;  // pattern expanded & mean-removed
  double pattern_energy_ = 0.0;
  std::size_t window_len_;
  std::vector<float> window_;
  std::size_t pos_ = 0;
  std::size_t filled_ = 0;
};

/// Peak picker: reports a detection when the correlation exceeds
/// `threshold` and is a local maximum within `lockout` samples.
class PeakDetector {
 public:
  PeakDetector(float threshold, std::size_t lockout);

  /// Pushes a correlation value. Returns the sample index (counted from
  /// the first process() call) at which a confirmed peak occurred, once
  /// the lockout has elapsed and the peak is finalised.
  std::optional<std::size_t> process(float corr);

  void reset();

 private:
  float threshold_;
  std::size_t lockout_;
  std::size_t index_ = 0;
  bool tracking_ = false;
  float best_ = 0.0f;
  std::size_t best_index_ = 0;
  std::size_t since_best_ = 0;
};

}  // namespace fdb::dsp
