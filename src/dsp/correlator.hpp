// Sliding correlator for preamble detection on envelope streams.
//
// The pattern is a ±1 chip sequence; incoming envelope samples are
// mean-removed over the correlation window so the detector is invariant
// to the (large, slowly varying) ambient-carrier DC level.
//
// Batch-first: the primary API is process(span, span), which keeps the
// window in a contiguous history buffer (no modulo indexing), tracks
// the window mean and energy incrementally, and computes the pattern
// dots through an output-blocked SIMD kernel (8-wide AVX-512 /
// 4-wide AVX2 FMA lanes when the build ISA has them, a scalar loop
// otherwise). process_scalar(span, span) is the bit-exact scalar
// reference the SIMD path is verified against; process(x) is a
// specialized single-sample path over the same arithmetic. All three
// are bit-identical for any chunking of the stream:
//
//   * every float×float product is exact in double (24+24 < 53 bits),
//     so vector FMA ≡ scalar multiply-then-add, and
//   * the dot's summation tree is fixed (four k-mod-4 partial sums
//     combined as (d0+d1)+(d2+d3), then a sequential tail) and each
//     SIMD lane reproduces that tree exactly, one output per lane.
//
// The TU is compiled with -ffp-contract=off so the genuinely
// contraction-sensitive double×double expressions (energy and
// mean-removal folds) round identically in every path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace fdb::dsp {

class SlidingCorrelator {
 public:
  /// `pattern` holds ±1 chips; `samples_per_chip` stretches each chip.
  SlidingCorrelator(std::vector<float> pattern, std::size_t samples_per_chip);

  /// Pushes one envelope sample; returns the normalised correlation in
  /// [-1, 1] once the window has filled (0 before that, including the
  /// samples leading up to — but not — the exact-fill sample).
  /// Specialized single-sample path (no span/loop overhead), same
  /// arithmetic as the batch kernels.
  float process(float x);

  /// Batch kernel: out[i] is the correlation after pushing in[i].
  /// Arbitrary span lengths; state carries across calls, so splitting a
  /// stream into chunks of any size yields bit-identical output. Pattern
  /// dots run through the output-blocked SIMD kernel when the build ISA
  /// provides one.
  void process(std::span<const float> in, std::span<float> out);

  /// Scalar determinism reference: the per-sample loop the SIMD path
  /// must match bit-for-bit (pinned by tests/dsp/batch_equivalence).
  /// Same state machine as process(span, span); only the dot kernel
  /// differs in shape, not in arithmetic.
  void process_scalar(std::span<const float> in, std::span<float> out);

  /// True once the internal window is full and outputs are meaningful.
  bool warmed_up() const { return total_ >= window_len_; }

  std::size_t window_length() const { return window_len_; }
  void reset();

 private:
  void compact();
  void refresh_sums(const float* window);

  /// Reference pattern dot over one window: four k-mod-4 partial sums
  /// combined (d0+d1)+(d2+d3) plus a sequential tail.
  double dot_one(const float* win) const;

  /// Same summation tree over an already float→double-widened window
  /// (the widening is exact, so the two are bit-identical).
  double dot_one_d(const double* win) const;

  /// Blocked dots over the widened window: dots[j] = dot of the window
  /// starting at first + j, for j in [0, n), with consecutive outputs
  /// mapped to SIMD lanes (each lane reproduces dot_one's tree exactly).
  void dot_block(const double* first, std::size_t n, double* dots) const;

  std::vector<float> stretched_;   // pattern expanded & mean-removed
  std::vector<double> pattern_d_;  // same taps widened once for the dot
  double pattern_energy_ = 0.0;
  double pattern_sum_ = 0.0;  // residual DC of the float-rounded pattern
  std::size_t window_len_ = 0;

  // Contiguous history: hist_[cursor_ - (window_len_-1) .. cursor_) holds
  // the most recent window_len_-1 samples; incoming blocks append at
  // cursor_ and the tail is memmoved back to the front only when the
  // buffer runs out (amortised O(1) per sample).
  std::vector<float> hist_;
  std::size_t cursor_ = 0;

  // Per-block scratch for the two-pass batch kernel (bookkeeping pass
  // records mean/denom per output, dot pass fills dots). Lazily sized to
  // the largest block processed so far.
  std::vector<double> mean_buf_;
  std::vector<double> denom_buf_;
  std::vector<double> dot_buf_;
  std::vector<double> win_d_;  // window widened to double once per block

  // Incremental window statistics (doubles: float inputs accumulate
  // exactly enough precision, and a periodic refresh re-derives them
  // from the window at fixed absolute sample counts to kill drift
  // without breaking chunk-size invariance).
  double sum_ = 0.0;
  double sumsq_ = 0.0;
  std::uint64_t total_ = 0;  // samples ever pushed (drives warm-up)
};

/// Peak picker: reports a detection when the correlation exceeds
/// `threshold` and is a local maximum within `lockout` samples.
class PeakDetector {
 public:
  PeakDetector(float threshold, std::size_t lockout);

  /// Pushes a correlation value. Returns the sample index (counted from
  /// the first process() call) at which a confirmed peak occurred, once
  /// the lockout has elapsed and the peak is finalised.
  std::optional<std::size_t> process(float corr);

  /// Bulk-advances the sample counter by `n` values without examining
  /// them. Only legal while !is_tracking() and when every skipped value
  /// is below threshold — i.e. when process() would have been a no-op
  /// for each. Lets batch callers pre-scan a block's maximum and skip
  /// the per-sample state machine over quiet stretches.
  void skip(std::size_t n);

  /// True while a candidate peak is being tracked (lockout running).
  bool is_tracking() const { return tracking_; }

  void reset();

 private:
  float threshold_;
  std::size_t lockout_;
  std::size_t index_ = 0;
  bool tracking_ = false;
  float best_ = 0.0f;
  std::size_t best_index_ = 0;
  std::size_t since_best_ = 0;
};

}  // namespace fdb::dsp
