// Sliding correlator for preamble detection on envelope streams.
//
// The pattern is a ±1 chip sequence; incoming envelope samples are
// mean-removed over the correlation window so the detector is invariant
// to the (large, slowly varying) ambient-carrier DC level.
//
// Batch-first: the primary API is process(span, span), which keeps the
// window in a contiguous history buffer (no modulo indexing) and tracks
// the window mean and energy incrementally — O(1) bookkeeping plus one
// contiguous, auto-vectorizable dot product per output sample. The
// scalar process(x) is a thin wrapper over the batch kernel, so chunked
// and sample-at-a-time feeding are bit-identical.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace fdb::dsp {

class SlidingCorrelator {
 public:
  /// `pattern` holds ±1 chips; `samples_per_chip` stretches each chip.
  SlidingCorrelator(std::vector<float> pattern, std::size_t samples_per_chip);

  /// Pushes one envelope sample; returns the normalised correlation in
  /// [-1, 1] once the window has filled (0 before that, including the
  /// samples leading up to — but not — the exact-fill sample).
  float process(float x);

  /// Batch kernel: out[i] is the correlation after pushing in[i].
  /// Arbitrary span lengths; state carries across calls, so splitting a
  /// stream into chunks of any size yields bit-identical output.
  void process(std::span<const float> in, std::span<float> out);

  /// True once the internal window is full and outputs are meaningful.
  bool warmed_up() const { return total_ >= window_len_; }

  std::size_t window_length() const { return window_len_; }
  void reset();

 private:
  void compact();
  void refresh_sums(const float* window);

  std::vector<float> stretched_;  // pattern expanded & mean-removed
  double pattern_energy_ = 0.0;
  double pattern_sum_ = 0.0;  // residual DC of the float-rounded pattern
  std::size_t window_len_ = 0;

  // Contiguous history: hist_[cursor_ - (window_len_-1) .. cursor_) holds
  // the most recent window_len_-1 samples; incoming blocks append at
  // cursor_ and the tail is memmoved back to the front only when the
  // buffer runs out (amortised O(1) per sample).
  std::vector<float> hist_;
  std::size_t cursor_ = 0;

  // Incremental window statistics (doubles: float inputs accumulate
  // exactly enough precision, and a periodic refresh re-derives them
  // from the window at fixed absolute sample counts to kill drift
  // without breaking chunk-size invariance).
  double sum_ = 0.0;
  double sumsq_ = 0.0;
  std::uint64_t total_ = 0;  // samples ever pushed (drives warm-up)
};

/// Peak picker: reports a detection when the correlation exceeds
/// `threshold` and is a local maximum within `lockout` samples.
class PeakDetector {
 public:
  PeakDetector(float threshold, std::size_t lockout);

  /// Pushes a correlation value. Returns the sample index (counted from
  /// the first process() call) at which a confirmed peak occurred, once
  /// the lockout has elapsed and the peak is finalised.
  std::optional<std::size_t> process(float corr);

  void reset();

 private:
  float threshold_;
  std::size_t lockout_;
  std::size_t index_ = 0;
  bool tracking_ = false;
  float best_ = 0.0f;
  std::size_t best_index_ = 0;
  std::size_t since_best_ = 0;
};

}  // namespace fdb::dsp
