#include "dsp/envelope.hpp"

#include <cassert>
#include <cmath>

namespace fdb::dsp {

EnvelopeDetector::EnvelopeDetector(double rc_cutoff_hz, double sample_rate_hz)
    : smoother_(OnePole::from_cutoff(rc_cutoff_hz, sample_rate_hz)) {}

float EnvelopeDetector::process(cf32 x) {
  float y = 0.0f;
  process(std::span<const cf32>(&x, 1), std::span<float>(&y, 1));
  return y;
}

void EnvelopeDetector::process(std::span<const cf32> in,
                               std::span<float> out) {
  assert(in.size() == out.size());
  // Two-pass batch kernel: the magnitude pass vectorizes (sqrt of
  // I^2+Q^2 over contiguous memory, staged through `out` so no scratch
  // buffer is needed), then the one-pole RC recurrence runs in place.
  for (std::size_t i = 0; i < in.size(); ++i) out[i] = std::abs(in[i]);
  smoother_.process(std::span<const float>(out.data(), out.size()), out);
}

void EnvelopeDetector::reset() { smoother_.reset(); }

SquareLawDetector::SquareLawDetector(double rc_cutoff_hz,
                                     double sample_rate_hz)
    : smoother_(OnePole::from_cutoff(rc_cutoff_hz, sample_rate_hz)) {}

float SquareLawDetector::process(cf32 x) {
  float y = 0.0f;
  process(std::span<const cf32>(&x, 1), std::span<float>(&y, 1));
  return y;
}

void SquareLawDetector::process(std::span<const cf32> in,
                                std::span<float> out) {
  assert(in.size() == out.size());
  for (std::size_t i = 0; i < in.size(); ++i) out[i] = std::norm(in[i]);
  smoother_.process(std::span<const float>(out.data(), out.size()), out);
}

void SquareLawDetector::reset() { smoother_.reset(); }

}  // namespace fdb::dsp
