#include "dsp/envelope.hpp"

#include <cassert>
#include <cmath>

namespace fdb::dsp {

EnvelopeDetector::EnvelopeDetector(double rc_cutoff_hz, double sample_rate_hz)
    : smoother_(OnePole::from_cutoff(rc_cutoff_hz, sample_rate_hz)) {}

float EnvelopeDetector::process(cf32 x) {
  return smoother_.process(std::abs(x));
}

void EnvelopeDetector::process(std::span<const cf32> in,
                               std::span<float> out) {
  assert(in.size() == out.size());
  for (std::size_t i = 0; i < in.size(); ++i) out[i] = process(in[i]);
}

void EnvelopeDetector::reset() { smoother_.reset(); }

SquareLawDetector::SquareLawDetector(double rc_cutoff_hz,
                                     double sample_rate_hz)
    : smoother_(OnePole::from_cutoff(rc_cutoff_hz, sample_rate_hz)) {}

float SquareLawDetector::process(cf32 x) {
  return smoother_.process(std::norm(x));
}

void SquareLawDetector::process(std::span<const cf32> in,
                                std::span<float> out) {
  assert(in.size() == out.size());
  for (std::size_t i = 0; i < in.size(); ++i) out[i] = process(in[i]);
}

void SquareLawDetector::reset() { smoother_.reset(); }

}  // namespace fdb::dsp
