#include "dsp/agc.hpp"

#include <cassert>
#include <cmath>

namespace fdb::dsp {

Agc::Agc(float target, float rate) : target_(target), rate_(rate) {
  assert(target > 0.0f && rate > 0.0f && rate <= 1.0f);
}

float Agc::process(float x) {
  float y = 0.0f;
  process(std::span<const float>(&x, 1), std::span<float>(&y, 1));
  return y;
}

cf32 Agc::process(cf32 x) {
  cf32 y{};
  process(std::span<const cf32>(&x, 1), std::span<cf32>(&y, 1));
  return y;
}

void Agc::process(std::span<const float> in, std::span<float> out) {
  assert(in.size() == out.size());
  // Batch kernel: the gain loop carries across the block in a register.
  float gain = gain_;
  for (std::size_t i = 0; i < in.size(); ++i) {
    const float y = in[i] * gain;
    const float err = target_ - std::abs(y);
    gain += rate_ * err;
    if (gain < 1e-6f) gain = 1e-6f;
    out[i] = y;
  }
  gain_ = gain;
}

void Agc::process(std::span<const cf32> in, std::span<cf32> out) {
  assert(in.size() == out.size());
  float gain = gain_;
  for (std::size_t i = 0; i < in.size(); ++i) {
    const cf32 y = in[i] * gain;
    const float err = target_ - std::abs(y);
    gain += rate_ * err;
    if (gain < 1e-6f) gain = 1e-6f;
    out[i] = y;
  }
  gain_ = gain;
}

void Agc::reset() { gain_ = 1.0f; }

}  // namespace fdb::dsp
