#include "dsp/agc.hpp"

#include <cassert>
#include <cmath>

namespace fdb::dsp {

Agc::Agc(float target, float rate) : target_(target), rate_(rate) {
  assert(target > 0.0f && rate > 0.0f && rate <= 1.0f);
}

float Agc::process(float x) {
  const float y = x * gain_;
  const float err = target_ - std::abs(y);
  gain_ += rate_ * err;
  if (gain_ < 1e-6f) gain_ = 1e-6f;
  return y;
}

cf32 Agc::process(cf32 x) {
  const cf32 y = x * gain_;
  const float err = target_ - std::abs(y);
  gain_ += rate_ * err;
  if (gain_ < 1e-6f) gain_ = 1e-6f;
  return y;
}

void Agc::process(std::span<const float> in, std::span<float> out) {
  assert(in.size() == out.size());
  for (std::size_t i = 0; i < in.size(); ++i) out[i] = process(in[i]);
}

void Agc::reset() { gain_ = 1.0f; }

}  // namespace fdb::dsp
