// Link-layer retransmission engines. Time is counted in data-stream
// bit-times so goodput is directly the fraction of airtime carrying
// novel payload, comparable to core/theory.hpp's closed forms.
//
//  * StopAndWaitArq        — the conventional backscatter baseline: send
//    the whole frame, stop, wait for a half-duplex ACK exchange, repeat
//    on failure.
//  * SelectiveRepeatArq    — pipelined frame-level baseline (optimistic:
//    turnaround hidden by the window).
//  * FullDuplexInstantArq  — the paper's protocol: per-block CRC verdicts
//    arrive on the concurrent feedback stream decode_delay slots after
//    the block; corrupted blocks are re-queued immediately and the frame
//    ends with a verification pass that catches false ACKs. No
//    turnaround is ever paid; an early-termination rule stops a frame as
//    soon as all blocks are acknowledged.
#pragma once

#include <cstddef>
#include <cstdint>

#include "mac/block_channel.hpp"

namespace fdb::mac {

struct ArqParams {
  std::size_t payload_bytes = 256;   // per frame
  std::size_t block_bytes = 8;       // FD-ARQ granularity
  std::size_t frame_overhead_bits = 32;
  std::size_t block_crc_bits = 8;
  std::size_t preamble_bits = 21;
  std::size_t ack_turnaround_bits = 64;  // half-duplex feedback cost
  std::size_t decode_delay_slots = 1;    // FD verdict latency
  std::size_t max_attempts = 64;         // per frame/block safety valve
};

struct ArqStats {
  std::uint64_t frames_attempted = 0;
  std::uint64_t frames_delivered = 0;
  std::uint64_t frames_failed = 0;      // gave up after max_attempts
  std::uint64_t blocks_sent = 0;
  std::uint64_t blocks_retransmitted = 0;
  std::uint64_t airtime_bits = 0;       // everything the link was busy
  std::uint64_t payload_bits_delivered = 0;
  std::uint64_t false_nacks = 0;
  std::uint64_t false_acks_caught = 0;

  /// Delivered payload bits per bit-time of airtime.
  double goodput() const {
    return airtime_bits
               ? static_cast<double>(payload_bits_delivered) /
                     static_cast<double>(airtime_bits)
               : 0.0;
  }

  /// Mean airtime to deliver one frame (bit-times).
  double mean_frame_latency_bits() const {
    return frames_delivered ? static_cast<double>(airtime_bits) /
                                  static_cast<double>(frames_delivered)
                            : 0.0;
  }
};

class ArqEngine {
 public:
  virtual ~ArqEngine() = default;

  /// Transfers `num_frames` frames over `channel`; returns statistics.
  virtual ArqStats run(std::size_t num_frames, BlockChannel& channel,
                       const ArqParams& params) = 0;

  virtual const char* name() const = 0;
};

class StopAndWaitArq final : public ArqEngine {
 public:
  ArqStats run(std::size_t num_frames, BlockChannel& channel,
               const ArqParams& params) override;
  const char* name() const override { return "stop_and_wait"; }
};

class SelectiveRepeatArq final : public ArqEngine {
 public:
  ArqStats run(std::size_t num_frames, BlockChannel& channel,
               const ArqParams& params) override;
  const char* name() const override { return "selective_repeat"; }
};

class FullDuplexInstantArq final : public ArqEngine {
 public:
  ArqStats run(std::size_t num_frames, BlockChannel& channel,
               const ArqParams& params) override;
  const char* name() const override { return "fd_instant"; }
};

}  // namespace fdb::mac
