#include "mac/collision.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace fdb::mac {
namespace {

struct Tag {
  enum class State { kBackoff, kTransmitting, kWaitingAck };
  State state = State::kBackoff;
  std::size_t counter = 0;       // slots remaining in current state
  std::size_t progress = 0;      // blocks transmitted of current frame
  std::size_t backoff_exponent = 0;
  std::uint64_t frame_start_slot = 0;
  bool collided = false;
};

}  // namespace

std::size_t beb_window(std::size_t min_slots, std::size_t exponent,
                       std::size_t max_exponent) {
  if (min_slots == 0) return 1;
  const std::size_t shift = std::min(exponent, max_exponent);
  constexpr std::size_t kBits = std::numeric_limits<std::size_t>::digits;
  constexpr std::size_t kMax = std::numeric_limits<std::size_t>::max();
  if (shift >= kBits || min_slots > (kMax >> shift)) return kMax;
  return min_slots << shift;
}

std::size_t draw_backoff(Rng& rng, std::size_t min_slots,
                         std::size_t exponent, std::size_t max_exponent) {
  const std::size_t window = beb_window(min_slots, exponent, max_exponent);
  return 1 + static_cast<std::size_t>(rng.uniform_int(window));
}

std::size_t notify_latency_slots(std::size_t base_delay_slots,
                                 double distance_m, double slots_per_m) {
  assert(distance_m >= 0.0 && slots_per_m >= 0.0);
  return base_delay_slots +
         static_cast<std::size_t>(std::llround(distance_m * slots_per_m));
}

std::size_t failover_holdoff_slots(Rng& rng, std::size_t base_slots,
                                   std::size_t switch_count,
                                   std::size_t max_exponent) {
  const std::size_t base = std::max<std::size_t>(base_slots, 1);
  const std::size_t holdoff = beb_window(base, switch_count, max_exponent);
  const std::size_t jitter_window = base * (switch_count + 1);
  return holdoff + static_cast<std::size_t>(rng.uniform_int(jitter_window));
}

CollisionStats run_collision_sim(MacKind kind,
                                 const CollisionSimParams& params) {
  if (kind == MacKind::kScheduled) {
    throw std::invalid_argument(
        "run_collision_sim models contention MACs only; the scheduled "
        "slotframe lives in the network engine (mac/schedule.hpp)");
  }
  assert(params.num_tags >= 1);
  Rng rng(params.seed);
  std::vector<Tag> tags(params.num_tags);
  for (auto& tag : tags) {
    tag.counter = draw_backoff(rng, params.backoff_min_slots, 0,
                               params.backoff_max_exponent);
  }

  CollisionStats stats;
  stats.slots_simulated = params.sim_slots;
  std::uint64_t idle_wait_slots = 0;  // all-quiet slots spent in timeouts

  for (std::uint64_t slot = 0; slot < params.sim_slots; ++slot) {
    std::size_t active = 0;
    bool any_waiting = false;
    for (const auto& tag : tags) {
      if (tag.state == Tag::State::kTransmitting) ++active;
      if (tag.state == Tag::State::kWaitingAck) any_waiting = true;
    }
    if (active > 0) {
      ++stats.busy_slots;
    } else if (any_waiting) {
      // Dead air: the channel idles while ACK timers run down.
      ++idle_wait_slots;
    }
    const bool collision_now = active >= 2;

    for (auto& tag : tags) {
      switch (tag.state) {
        case Tag::State::kBackoff: {
          // `counter == 0` can only happen via an inconsistent external
          // state; checking it first keeps the pre-decrement from
          // wrapping to SIZE_MAX and parking the tag forever.
          if (tag.counter == 0 || --tag.counter == 0) {
            tag.state = Tag::State::kTransmitting;
            tag.progress = 0;
            tag.collided = false;
            tag.frame_start_slot = slot;
          }
          break;
        }
        case Tag::State::kTransmitting: {
          if (collision_now) tag.collided = true;
          ++tag.progress;

          const bool fd = kind == MacKind::kCollisionNotify;
          if (fd && tag.collided &&
              tag.progress >= params.notify_delay_slots) {
            // Receiver's collision notification arrived: abort now.
            ++stats.collisions;
            ++tag.backoff_exponent;
            tag.state = Tag::State::kBackoff;
            tag.counter = draw_backoff(rng, params.backoff_min_slots,
                                       tag.backoff_exponent,
                                       params.backoff_max_exponent);
            break;
          }
          if (tag.progress >= params.frame_blocks) {
            if (kind == MacKind::kTimeout) {
              tag.state = Tag::State::kWaitingAck;
              tag.counter = params.timeout_slots;
            } else {
              // FD: verdicts already known at frame end.
              if (!tag.collided) {
                ++stats.frames_delivered;
                stats.useful_slots += params.frame_blocks;
                stats.total_delivery_latency_slots +=
                    static_cast<double>(slot - tag.frame_start_slot + 1);
                tag.backoff_exponent = 0;
              } else {
                ++stats.collisions;
                ++tag.backoff_exponent;
              }
              tag.state = Tag::State::kBackoff;
              tag.counter = draw_backoff(rng, params.backoff_min_slots,
                                       tag.backoff_exponent,
                                       params.backoff_max_exponent);
            }
          }
          break;
        }
        case Tag::State::kWaitingAck: {
          // timeout_slots == 0 enters this state with a zero counter; the
          // verdict then resolves on the next slot instead of underflowing
          // the pre-decrement.
          if (tag.counter == 0 || --tag.counter == 0) {
            if (!tag.collided) {
              ++stats.frames_delivered;
              stats.useful_slots += params.frame_blocks;
              stats.total_delivery_latency_slots +=
                  static_cast<double>(slot - tag.frame_start_slot + 1);
              tag.backoff_exponent = 0;
            } else {
              ++stats.collisions;
              ++tag.backoff_exponent;
            }
            tag.state = Tag::State::kBackoff;
            tag.counter = draw_backoff(rng, params.backoff_min_slots,
                                       tag.backoff_exponent,
                                       params.backoff_max_exponent);
          }
          break;
        }
      }
    }
  }
  // Channel-centric waste: busy airtime that never produced a delivered
  // frame, plus dead air spent running out ACK timers.
  stats.wasted_slots =
      (stats.busy_slots > stats.useful_slots
           ? stats.busy_slots - stats.useful_slots
           : 0) +
      idle_wait_slots;
  return stats;
}

}  // namespace fdb::mac
