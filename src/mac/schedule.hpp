// TSCH-style scheduled slotframe for the network engine's MAC policy
// layer (mac/policy.hpp). Slot time is divided into a repeating
// *slotframe* of fixed-width cells, each cell wide enough for one frame
// on air; ownership makes dedicated cells contention-free:
//
//   |  cell 0   |  cell 1   | ... | dedicated | shared 0 | shared 1 |
//   |<- span ->|                                        repeats ->
//
//  * Dedicated cells — one per tag when `dedicated_cells >= num_tags`
//    (the default; the factory sizes it off the deployment). A tag's
//    fresh frames go out in its own cell with no contention at all.
//  * Shared cells — Orchestra-style autonomous cells: a tag is hashed
//    (splitmix64 on its id) onto one of `shared_cells` slots it uses
//    for its FIRST retry after a loss — a fast lane that usually comes
//    sooner than the tag's own cell. Contention is possible there, but
//    only between tags whose hash collides AND which failed in the
//    same slotframe. A second consecutive loss retreats to the tag's
//    dedicated cell, which is contention-free by construction, so a
//    retry storm drains within one slotframe period. Without the
//    retreat, a mass-failure event such as a gateway outage would
//    leave every tag livelocked in the shared cells after the fault
//    clears: the schedule has no randomness to break the tie, and the
//    handful of shared cells cannot serialise a whole deployment.
//
// The schedule is pure arithmetic on (tag id, slot): no RNG, no state
// beyond the per-tag failure class in mac::TagMacState, so scheduled
// trials stay deterministic and mergeable exactly like contention ones.
#pragma once

#include <cstddef>
#include <cstdint>

#include "mac/policy.hpp"

namespace fdb::mac {

/// splitmix64 finalizer — the autonomous-cell hash. Stable across
/// platforms (pure 64-bit integer math), well mixed for consecutive
/// tag ids so neighbouring tags land in different shared cells.
std::uint64_t tag_hash(std::uint64_t tag_id);

/// The cell geometry: maps (tag, slot) to cell ownership and next
/// transmit opportunities. Immutable after construction.
class Slotframe {
 public:
  /// `cell_span_slots` must cover one frame on air (the network engine
  /// passes its frame_slots; the verdict drains during the next cell's
  /// first slot, while the owner is off air, so no drain pad is
  /// needed). Throws std::invalid_argument on a zero span or zero
  /// dedicated cells.
  Slotframe(std::size_t cell_span_slots, std::size_t dedicated_cells,
            std::size_t shared_cells);

  std::size_t cell_span_slots() const { return span_; }
  std::size_t dedicated_cells() const { return dedicated_; }
  std::size_t shared_cells() const { return shared_; }
  std::size_t num_cells() const { return dedicated_ + shared_; }
  /// Period of the schedule in slots.
  std::size_t slotframe_slots() const { return num_cells() * span_; }

  /// Dedicated cell owned by `tag` — a true private cell whenever
  /// dedicated_cells covers the deployment.
  std::size_t dedicated_cell(std::size_t tag) const {
    return tag % dedicated_;
  }

  /// Autonomous shared (retry) cell of `tag`, hash-keyed so no
  /// signalling is needed to agree on it. Only valid when
  /// shared_cells() > 0.
  std::size_t shared_cell(std::size_t tag) const {
    return dedicated_ + static_cast<std::size_t>(
                            tag_hash(tag) % static_cast<std::uint64_t>(shared_));
  }

  /// First slot of cell `cell`'s earliest occurrence starting at or
  /// after `from`.
  std::uint64_t next_cell_start(std::size_t cell, std::uint64_t from) const;

 private:
  std::size_t span_;
  std::size_t dedicated_;
  std::size_t shared_;
};

/// Schedule-driven MAC policy: fresh frames in the tag's dedicated
/// cell, the first retry (failure class 1) in its hash-keyed shared
/// cell, and every further consecutive loss back in the dedicated cell
/// (also the fallback when the slotframe has no shared cells).
/// Collision notifications are honoured — shared-cell collisions abort
/// early exactly like CollisionNotifyMac — and the verdict drains in
/// one slot; no draw is ever made from the MAC Rng.
class ScheduledMac final : public MacPolicy {
 public:
  explicit ScheduledMac(const Slotframe& frame) : frame_(frame) {}

  const char* name() const override { return "scheduled"; }
  MacKind kind() const override { return MacKind::kScheduled; }
  bool aborts_on_notify() const override { return true; }
  std::size_t verdict_wait_slots() const override { return 1; }

  std::size_t initial_wait(std::size_t tag, TagMacState& state,
                           Rng& rng) const override;
  std::size_t next_wait(std::size_t tag, std::uint64_t slot,
                        TagMacState& state, Rng& rng) const override;
  void on_outcome(std::size_t tag, bool delivered,
                  TagMacState& state) const override;
  void on_notify_abort(std::size_t tag, TagMacState& state) const override;

  const Slotframe& slotframe() const { return frame_; }

 private:
  /// The cell the tag's next attempt belongs in, given its failure
  /// class.
  std::size_t cell_for(std::size_t tag, const TagMacState& state) const;

  Slotframe frame_;
};

}  // namespace fdb::mac
