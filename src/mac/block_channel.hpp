// Link-layer channel abstraction. The ARQ engines run over this
// interface so they can be driven either by i.i.d. bit-error processes
// (fast protocol sweeps, E4-E6) or by verdict traces recorded from the
// sample-level PHY simulator (integration tests closing the loop).
#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.hpp"

namespace fdb::mac {

class BlockChannel {
 public:
  virtual ~BlockChannel() = default;

  /// Whether a data block of `bits` on-air bits arrives corrupted.
  virtual bool block_corrupted(std::size_t bits) = 0;

  /// Whether a single feedback verdict bit is flipped in transit.
  virtual bool feedback_flipped() = 0;
};

/// i.i.d. bit errors at fixed BERs — the analytic setting of
/// core/theory.hpp, so sim and model columns are directly comparable.
class IidBlockChannel final : public BlockChannel {
 public:
  IidBlockChannel(double data_ber, double feedback_ber, Rng rng);

  bool block_corrupted(std::size_t bits) override;
  bool feedback_flipped() override;

  double data_ber() const { return data_ber_; }
  double feedback_ber() const { return feedback_ber_; }

 private:
  double data_ber_;
  double feedback_ber_;
  Rng rng_;
};

/// Replays pre-recorded verdicts (e.g. produced by sim::LinkSimulator).
/// When a queue runs dry the channel repeats its last answer, keeping
/// long protocol runs well-defined; verdicts pushed after a dry spell
/// are consumed next, in push order.
///
/// Storage is an append-only vector walked by a cursor rather than a
/// deque: traces are pushed in bulk and consumed once, so the
/// pop-per-verdict deque paid per-node bookkeeping for flexibility this
/// access pattern never uses.
class TraceBlockChannel final : public BlockChannel {
 public:
  TraceBlockChannel() = default;

  void push_block_verdict(bool corrupted) { blocks_.push_back(corrupted); }
  void push_feedback_flip(bool flipped) { flips_.push_back(flipped); }

  bool block_corrupted(std::size_t bits) override;
  bool feedback_flipped() override;

 private:
  std::vector<bool> blocks_;
  std::vector<bool> flips_;
  std::size_t block_cursor_ = 0;
  std::size_t flip_cursor_ = 0;
  bool last_block_ = false;
  bool last_flip_ = false;
};

}  // namespace fdb::mac
