// MAC policy layer: the per-slot medium-access decisions of the
// network-scale simulator (sim/network_sim.hpp), pulled out of its slot
// loop into an interface. The simulator owns slot time, frame
// synthesis, verdicts and energy; a MacPolicy decides *when a tag may
// put a frame on air* and how it reacts to outcomes:
//
//  * TimeoutMac          — contention + BEB; collisions are only
//    discovered when the expected ACK never arrives, so a collided
//    frame burns its whole airtime plus the timeout window.
//  * CollisionNotifyMac  — contention + BEB; the full-duplex receiver
//    asserts a collision code on the feedback stream and the colliding
//    tags abort within the per-gateway notification latency.
//  * ScheduledMac        — TSCH-style slotframe (mac/schedule.hpp):
//    dedicated per-tag cells transmit without contention, hash-keyed
//    shared cells absorb retries; no backoff randomness at all.
//
// The contract is draw-exact: a policy makes the identical Rng draws,
// in the identical order, that the pre-extraction slot loop made — the
// hexfloat synthesis goldens and the e11/e12/e14 determinism gates pin
// the contention policies bit-for-bit against the inlined originals.
//
// Counter conventions (the slot loop ticks `counter == 0 ||
// --counter == 0` each slot, then starts a frame when it fires):
//   initial_wait  -> a counter of n fires in slot n-1,
//   next_wait     -> a counter of n drawn while processing slot s fires
//                    in slot s+n.
// Contention policies draw from [1, beb_window] so either convention is
// just "the historical draw"; the scheduled policy computes exact
// distances to its next owned cell under these conventions.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "mac/collision.hpp"
#include "util/rng.hpp"

namespace fdb::mac {

/// Per-tag MAC runtime state a policy evolves across one trial. Owned
/// by the simulator (one per tag per trial), mutated only through
/// policy hooks, so policies themselves stay immutable and shareable
/// across concurrently running trials.
struct TagMacState {
  /// Consecutive-failure class: the BEB exponent of the contention
  /// policies, the dedicated-vs-shared retry selector of the scheduled
  /// one. 0 after every delivered frame.
  std::size_t exponent = 0;
};

/// Knobs of the contention (timeout / collision-notify) policies;
/// mirrors the historical NetworkSimConfig fields.
struct ContentionParams {
  std::size_t timeout_slots = 8;         ///< ACK wait of TimeoutMac
  std::size_t backoff_min_slots = 4;     ///< initial BEB window
  std::size_t backoff_max_exponent = 6;  ///< BEB growth cap
};

/// The per-slot MAC decision surface of the network simulator. All
/// hooks are const: a policy is immutable after construction and safe
/// to share across threads; everything trial-varying lives in the
/// caller's TagMacState / Rng.
class MacPolicy {
 public:
  virtual ~MacPolicy() = default;

  /// Stable lowercase name for reports ("timeout", "notify",
  /// "scheduled").
  virtual const char* name() const = 0;
  virtual MacKind kind() const = 0;

  /// Whether collided frames abort when a gateway's collision
  /// notification arrives. The slot loop consults the per-tag
  /// notification latencies only when set.
  virtual bool aborts_on_notify() const = 0;

  /// Slots a tag idles in WaitVerdict once its frame leaves the air:
  /// one verdict-drain slot for the full-duplex policies, the ACK
  /// timeout for TimeoutMac. Always >= 1.
  virtual std::size_t verdict_wait_slots() const = 0;

  /// Trial-start wait of tag `tag` (counter n fires in slot n-1).
  virtual std::size_t initial_wait(std::size_t tag, TagMacState& state,
                                   Rng& rng) const = 0;

  /// Wait to the tag's next transmit opportunity, drawn while the slot
  /// loop processes `slot` — after a frame outcome, a notify abort, a
  /// mid-frame brownout, or an energy-gated start (counter n fires in
  /// slot `slot` + n).
  virtual std::size_t next_wait(std::size_t tag, std::uint64_t slot,
                                TagMacState& state, Rng& rng) const = 0;

  /// Frame-outcome bookkeeping: delivered clears the failure class,
  /// a loss escalates it.
  virtual void on_outcome(std::size_t tag, bool delivered,
                          TagMacState& state) const = 0;

  /// Collision-notification abort bookkeeping (only reachable when
  /// aborts_on_notify()).
  virtual void on_notify_abort(std::size_t tag, TagMacState& state) const = 0;
};

/// Shared BEB core of the two contention policies: both draw
/// mac::draw_backoff at the tag's current exponent and differ only in
/// how outcomes are learned (timeout vs notification).
class ContentionMacBase : public MacPolicy {
 public:
  explicit ContentionMacBase(const ContentionParams& params)
      : params_(params) {}

  std::size_t initial_wait(std::size_t tag, TagMacState& state,
                           Rng& rng) const override;
  std::size_t next_wait(std::size_t tag, std::uint64_t slot,
                        TagMacState& state, Rng& rng) const override;
  void on_outcome(std::size_t tag, bool delivered,
                  TagMacState& state) const override;
  void on_notify_abort(std::size_t tag, TagMacState& state) const override;

 protected:
  ContentionParams params_;
};

/// Conventional contention MAC: learns about losses from a missing ACK.
class TimeoutMac final : public ContentionMacBase {
 public:
  using ContentionMacBase::ContentionMacBase;
  const char* name() const override { return "timeout"; }
  MacKind kind() const override { return MacKind::kTimeout; }
  bool aborts_on_notify() const override { return false; }
  std::size_t verdict_wait_slots() const override;
};

/// Full-duplex contention MAC: the receiver's collision notification
/// aborts collided frames within the notification latency.
class CollisionNotifyMac final : public ContentionMacBase {
 public:
  using ContentionMacBase::ContentionMacBase;
  const char* name() const override { return "notify"; }
  MacKind kind() const override { return MacKind::kCollisionNotify; }
  bool aborts_on_notify() const override { return true; }
  std::size_t verdict_wait_slots() const override { return 1; }
};

/// Everything the factory needs to build any policy kind. The schedule
/// fields are consumed only by MacKind::kScheduled (see
/// mac/schedule.hpp for the slotframe model they parameterize).
struct MacPolicyParams {
  ContentionParams contention;
  std::size_t num_tags = 0;          ///< deployment size (scheduled)
  std::size_t frame_slots = 0;       ///< cell span in slots (scheduled)
  std::size_t dedicated_cells = 0;   ///< 0 = one per tag (scheduled)
  std::size_t shared_cells = 2;      ///< retry cells (scheduled)
};

/// Builds the policy for `kind`. Throws std::invalid_argument when the
/// scheduled parameters are inconsistent (zero frame span or tags).
std::unique_ptr<MacPolicy> make_mac_policy(MacKind kind,
                                           const MacPolicyParams& params);

}  // namespace fdb::mac
