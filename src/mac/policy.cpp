#include "mac/policy.hpp"

#include <stdexcept>

#include "mac/schedule.hpp"

namespace fdb::mac {

std::size_t ContentionMacBase::initial_wait(std::size_t /*tag*/,
                                            TagMacState& /*state*/,
                                            Rng& rng) const {
  // Exponent 0 regardless of carried state: a trial always opens with a
  // fresh minimum-window draw, exactly as the pre-extraction loop did.
  return draw_backoff(rng, params_.backoff_min_slots, 0,
                      params_.backoff_max_exponent);
}

std::size_t ContentionMacBase::next_wait(std::size_t /*tag*/,
                                         std::uint64_t /*slot*/,
                                         TagMacState& state, Rng& rng) const {
  return draw_backoff(rng, params_.backoff_min_slots, state.exponent,
                      params_.backoff_max_exponent);
}

void ContentionMacBase::on_outcome(std::size_t /*tag*/, bool delivered,
                                   TagMacState& state) const {
  if (delivered) {
    state.exponent = 0;
  } else {
    ++state.exponent;
  }
}

void ContentionMacBase::on_notify_abort(std::size_t /*tag*/,
                                        TagMacState& state) const {
  ++state.exponent;
}

std::size_t TimeoutMac::verdict_wait_slots() const {
  return params_.timeout_slots > 0 ? params_.timeout_slots : 1;
}

std::unique_ptr<MacPolicy> make_mac_policy(MacKind kind,
                                           const MacPolicyParams& params) {
  switch (kind) {
    case MacKind::kTimeout:
      return std::make_unique<TimeoutMac>(params.contention);
    case MacKind::kCollisionNotify:
      return std::make_unique<CollisionNotifyMac>(params.contention);
    case MacKind::kScheduled: {
      if (params.num_tags == 0) {
        throw std::invalid_argument(
            "scheduled MAC requires at least one tag");
      }
      if (params.frame_slots == 0) {
        throw std::invalid_argument(
            "scheduled MAC requires a nonzero frame span");
      }
      const std::size_t dedicated = params.dedicated_cells > 0
                                        ? params.dedicated_cells
                                        : params.num_tags;
      return std::make_unique<ScheduledMac>(
          Slotframe(params.frame_slots, dedicated, params.shared_cells));
    }
  }
  throw std::invalid_argument("unknown MAC kind");
}

}  // namespace fdb::mac
