// Multi-tag contention (experiment E6). Backscatter tags cannot carrier
// -sense each other's reflections reliably, so collisions are common;
// the question is how fast they are *detected*.
//
//  * TimeoutMac         — conventional: a collision is discovered only
//    when the expected ACK never arrives, wasting the entire frame plus
//    the timeout.
//  * CollisionNotifyMac — full-duplex: the receiver sees the corrupted
//    preamble/early blocks and immediately asserts a "collision" code on
//    the feedback stream; the colliding transmitters abort within
//    `notify_delay_slots` block-times and back off.
//
// The simulation is slotted in block-times, saturated traffic (every
// tag always has a frame), binary-exponential backoff.
//
// This file is the abstract (slot-level) contention model; the
// network-scale engine in sim/network_sim.hpp reuses the same slotted
// MAC timing but grounds delivery verdicts in synthesized sample
// streams.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace fdb::mac {

struct CollisionSimParams {
  std::size_t num_tags = 4;
  std::size_t frame_blocks = 32;        // frame length in block slots
  std::size_t timeout_slots = 8;        // ACK wait for TimeoutMac
  std::size_t notify_delay_slots = 2;   // FD collision detection latency
  std::size_t backoff_min_slots = 4;    // initial backoff window
  std::size_t backoff_max_exponent = 6; // BEB cap
  std::size_t sim_slots = 200'000;      // simulated time
  std::uint64_t seed = 1;
};

struct CollisionStats {
  std::uint64_t slots_simulated = 0;
  std::uint64_t busy_slots = 0;     // channel slots with >=1 transmitter
  std::uint64_t useful_slots = 0;   // slots inside cleanly delivered frames
  /// Channel-centric waste: busy slots that never became part of a
  /// delivered frame, plus dead-air slots where every tag sat in an ACK
  /// timeout. Always <= slots_simulated.
  std::uint64_t wasted_slots = 0;
  std::uint64_t frames_delivered = 0;
  std::uint64_t collisions = 0;
  double total_delivery_latency_slots = 0;  // arrival->delivery, delivered

  double wasted_airtime_fraction() const {
    return slots_simulated
               ? static_cast<double>(wasted_slots) /
                     static_cast<double>(slots_simulated)
               : 0.0;
  }
  double goodput_slots_fraction() const {
    return slots_simulated
               ? static_cast<double>(useful_slots) /
                     static_cast<double>(slots_simulated)
               : 0.0;
  }
  double mean_delivery_latency() const {
    return frames_delivered ? total_delivery_latency_slots /
                                  static_cast<double>(frames_delivered)
                            : 0.0;
  }
};

/// MAC families understood across the stack. The abstract contention
/// model below simulates the first two; kScheduled (TSCH-style
/// slotframes, mac/schedule.hpp) exists only as a network-engine policy
/// and is rejected by run_collision_sim.
enum class MacKind { kTimeout, kCollisionNotify, kScheduled };

/// Binary-exponential-backoff window size: `min_slots << min(exponent,
/// max_exponent)`, saturating instead of shifting past the word width and
/// clamped to >= 1 so the result is always a valid `Rng::uniform_int`
/// bound (min_slots == 0 would otherwise produce an empty window).
std::size_t beb_window(std::size_t min_slots, std::size_t exponent,
                       std::size_t max_exponent);

/// Draws a backoff duration uniformly from [1, beb_window(...)] slots.
/// Shared by this abstract contention model and the network-scale
/// engine so the two MAC layers stay distribution-identical.
std::size_t draw_backoff(Rng& rng, std::size_t min_slots,
                         std::size_t exponent, std::size_t max_exponent);

/// Collision-notification latency of one receiver: the base detection
/// delay plus a distance-scaled propagation/processing term, in block
/// slots. With several receive gateways a tag aborts on the earliest
/// notification, so the effective latency is the minimum of this over
/// the gateways — i.e. the closest one's. `slots_per_m == 0` keeps the
/// legacy distance-independent latency.
std::size_t notify_latency_slots(std::size_t base_delay_slots,
                                 double distance_m, double slots_per_m);

/// Dead-gateway failover holdoff: once a tag abandons a serving gateway
/// it blacklists it for `base_slots << min(switch_count, max_exponent)`
/// slots plus a jittered retry offset drawn uniformly from [0,
/// base_slots * (switch_count + 1)) — capped exponential growth so a
/// flapping gateway is retried ever more lazily, jitter so a fleet of
/// tags orphaned by the same outage does not retry in lockstep. Shared
/// by the network engine's failover state machine and its tests.
std::size_t failover_holdoff_slots(Rng& rng, std::size_t base_slots,
                                   std::size_t switch_count,
                                   std::size_t max_exponent);

/// Runs the slotted contention simulation for the selected MAC.
CollisionStats run_collision_sim(MacKind kind,
                                 const CollisionSimParams& params);

}  // namespace fdb::mac
