#include "mac/schedule.hpp"

#include <stdexcept>

namespace fdb::mac {

std::uint64_t tag_hash(std::uint64_t tag_id) {
  std::uint64_t z = tag_id + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Slotframe::Slotframe(std::size_t cell_span_slots, std::size_t dedicated_cells,
                     std::size_t shared_cells)
    : span_(cell_span_slots), dedicated_(dedicated_cells),
      shared_(shared_cells) {
  if (span_ == 0) {
    throw std::invalid_argument("slotframe cell span must be positive");
  }
  if (dedicated_ == 0) {
    throw std::invalid_argument(
        "slotframe needs at least one dedicated cell");
  }
}

std::uint64_t Slotframe::next_cell_start(std::size_t cell,
                                         std::uint64_t from) const {
  const std::uint64_t offset =
      static_cast<std::uint64_t>(cell) * static_cast<std::uint64_t>(span_);
  const std::uint64_t period =
      static_cast<std::uint64_t>(slotframe_slots());
  if (from <= offset) return offset;
  const std::uint64_t frames_ahead = (from - offset + period - 1) / period;
  return offset + frames_ahead * period;
}

std::size_t ScheduledMac::cell_for(std::size_t tag,
                                   const TagMacState& state) const {
  // Failure class 1 rides the shared fast lane; a deeper class means
  // the lane was contested (or the channel is bad), so retreat to the
  // tag's own contention-free cell — a retry storm of any size drains
  // within one slotframe period instead of livelocking in the handful
  // of shared cells.
  if (state.exponent == 1 && frame_.shared_cells() > 0) {
    return frame_.shared_cell(tag);
  }
  return frame_.dedicated_cell(tag);
}

std::size_t ScheduledMac::initial_wait(std::size_t tag, TagMacState& state,
                                       Rng& /*rng*/) const {
  // A counter of n fires in slot n-1, so +1 lands the start exactly on
  // the cell boundary (including cell 0 at slot 0).
  return static_cast<std::size_t>(
             frame_.next_cell_start(cell_for(tag, state), 0)) +
         1;
}

std::size_t ScheduledMac::next_wait(std::size_t tag, std::uint64_t slot,
                                    TagMacState& state, Rng& /*rng*/) const {
  // Strictly-future occurrence: a counter of n drawn in slot s fires in
  // slot s+n, and next_cell_start(cell, slot+1) > slot always, so the
  // wait is well-defined and >= 1.
  const std::uint64_t start =
      frame_.next_cell_start(cell_for(tag, state), slot + 1);
  return static_cast<std::size_t>(start - slot);
}

void ScheduledMac::on_outcome(std::size_t /*tag*/, bool delivered,
                              TagMacState& state) const {
  if (delivered) {
    state.exponent = 0;
  } else {
    ++state.exponent;
  }
}

void ScheduledMac::on_notify_abort(std::size_t /*tag*/,
                                   TagMacState& state) const {
  ++state.exponent;
}

}  // namespace fdb::mac
