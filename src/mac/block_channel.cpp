#include "mac/block_channel.hpp"

#include <cassert>
#include <cmath>

namespace fdb::mac {

IidBlockChannel::IidBlockChannel(double data_ber, double feedback_ber,
                                 Rng rng)
    : data_ber_(data_ber), feedback_ber_(feedback_ber), rng_(rng) {
  assert(data_ber >= 0.0 && data_ber <= 1.0);
  assert(feedback_ber >= 0.0 && feedback_ber <= 1.0);
}

bool IidBlockChannel::block_corrupted(std::size_t bits) {
  // P(any of `bits` i.i.d. errors) without looping over bits.
  const double p_ok = std::pow(1.0 - data_ber_, static_cast<double>(bits));
  return rng_.chance(1.0 - p_ok);
}

bool IidBlockChannel::feedback_flipped() {
  return rng_.chance(feedback_ber_);
}

bool TraceBlockChannel::block_corrupted(std::size_t) {
  if (block_cursor_ < blocks_.size()) {
    last_block_ = blocks_[block_cursor_++];
  }
  return last_block_;
}

bool TraceBlockChannel::feedback_flipped() {
  if (flip_cursor_ < flips_.size()) {
    last_flip_ = flips_[flip_cursor_++];
  }
  return last_flip_;
}

}  // namespace fdb::mac
