#include "mac/arq.hpp"

#include <cassert>
#include <deque>
#include <vector>

namespace fdb::mac {
namespace {

std::size_t num_blocks(const ArqParams& params) {
  return (params.payload_bytes + params.block_bytes - 1) / params.block_bytes;
}

std::size_t frame_bits(const ArqParams& params) {
  return params.payload_bytes * 8 + params.frame_overhead_bits;
}

std::size_t block_on_air_bits(const ArqParams& params) {
  return params.block_bytes * 8 + params.block_crc_bits;
}

}  // namespace

ArqStats StopAndWaitArq::run(std::size_t num_frames, BlockChannel& channel,
                             const ArqParams& params) {
  ArqStats stats;
  for (std::size_t f = 0; f < num_frames; ++f) {
    ++stats.frames_attempted;
    bool delivered = false;
    for (std::size_t attempt = 0; attempt < params.max_attempts; ++attempt) {
      stats.airtime_bits += params.preamble_bits + frame_bits(params) +
                            params.ack_turnaround_bits;
      if (!channel.block_corrupted(frame_bits(params))) {
        delivered = true;
        break;
      }
    }
    if (delivered) {
      ++stats.frames_delivered;
      stats.payload_bits_delivered += params.payload_bytes * 8;
    } else {
      ++stats.frames_failed;
    }
  }
  return stats;
}

ArqStats SelectiveRepeatArq::run(std::size_t num_frames,
                                 BlockChannel& channel,
                                 const ArqParams& params) {
  // Frame-level SR with a window deep enough to hide turnaround: each
  // attempt costs one frame slot; corrupted frames re-enter the queue.
  ArqStats stats;
  std::deque<std::size_t> queue;        // frame id -> remaining attempts
  std::vector<std::size_t> attempts(num_frames, 0);
  for (std::size_t f = 0; f < num_frames; ++f) queue.push_back(f);
  stats.frames_attempted = num_frames;

  while (!queue.empty()) {
    const std::size_t f = queue.front();
    queue.pop_front();
    stats.airtime_bits += params.preamble_bits + frame_bits(params);
    ++attempts[f];
    if (!channel.block_corrupted(frame_bits(params))) {
      ++stats.frames_delivered;
      stats.payload_bits_delivered += params.payload_bytes * 8;
    } else if (attempts[f] < params.max_attempts) {
      queue.push_back(f);
    } else {
      ++stats.frames_failed;
    }
  }
  return stats;
}

ArqStats FullDuplexInstantArq::run(std::size_t num_frames,
                                   BlockChannel& channel,
                                   const ArqParams& params) {
  ArqStats stats;
  const std::size_t blocks = num_blocks(params);
  const std::size_t bab = block_on_air_bits(params);

  for (std::size_t f = 0; f < num_frames; ++f) {
    ++stats.frames_attempted;
    // One preamble + frame header per frame — retransmissions ride the
    // same burst, which is the structural win over stop-and-wait.
    stats.airtime_bits += params.preamble_bits + params.frame_overhead_bits;

    // delivered_ok[b]: receiver holds a good copy. acked[b]: sender
    // *believes* it does (can diverge through feedback errors).
    std::vector<bool> delivered_ok(blocks, false);
    std::vector<bool> acked(blocks, false);
    std::vector<std::size_t> attempts(blocks, 0);

    // In-flight verdict pipeline: verdicts surface decode_delay_slots
    // block-times after transmission. Element = (block id, corrupted,
    // verdict_flipped).
    struct InFlight {
      std::size_t block;
      bool corrupted;
      bool flipped;
      std::size_t due;  // slot index when the verdict arrives
    };
    std::deque<InFlight> pipeline;
    std::deque<std::size_t> send_queue;
    for (std::size_t b = 0; b < blocks; ++b) send_queue.push_back(b);

    std::size_t slot = 0;
    bool frame_alive = true;
    while (frame_alive) {
      // Deliver due verdicts first.
      while (!pipeline.empty() && pipeline.front().due <= slot) {
        const InFlight v = pipeline.front();
        pipeline.pop_front();
        const bool receiver_ok = !v.corrupted;
        // The verdict bit the sender sees (ACK=1) may be flipped.
        const bool sender_sees_ok = v.flipped ? !receiver_ok : receiver_ok;
        if (receiver_ok) delivered_ok[v.block] = true;
        if (sender_sees_ok) {
          acked[v.block] = true;
          if (!receiver_ok) {
            // False ACK: sender moves on with a corrupt block; the
            // verification pass below catches it.
          }
        } else {
          if (receiver_ok) ++stats.false_nacks;
          if (attempts[v.block] < params.max_attempts) {
            send_queue.push_back(v.block);
          }
        }
      }

      if (!send_queue.empty()) {
        const std::size_t b = send_queue.front();
        send_queue.pop_front();
        if (acked[b]) {
          // A stale retransmission request (e.g. duplicate NACK); skip
          // without airtime.
          ++slot;
          continue;
        }
        ++attempts[b];
        ++stats.blocks_sent;
        if (attempts[b] > 1) ++stats.blocks_retransmitted;
        stats.airtime_bits += bab;
        const bool corrupted = channel.block_corrupted(bab);
        const bool flipped = channel.feedback_flipped();
        pipeline.push_back(
            InFlight{b, corrupted, flipped, slot + params.decode_delay_slots});
        ++slot;
        continue;
      }

      if (!pipeline.empty()) {
        // Nothing to send but verdicts outstanding: the data stream
        // idles for the remaining slots (airtime still passes — the
        // link is held). Early termination keeps this to at most
        // decode_delay_slots block-times.
        stats.airtime_bits += bab;
        ++slot;
        continue;
      }

      // Queue and pipeline drained: verification pass. The sender
      // believes every block is acked; verify against reality.
      bool all_ok = true;
      for (std::size_t b = 0; b < blocks; ++b) {
        if (!delivered_ok[b]) {
          all_ok = false;
          if (acked[b]) {
            ++stats.false_acks_caught;
            acked[b] = false;
          }
          if (attempts[b] < params.max_attempts) {
            send_queue.push_back(b);
          } else {
            // Unrecoverable block: the frame fails.
            frame_alive = false;
            ++stats.frames_failed;
            all_ok = false;
            send_queue.clear();
            break;
          }
        }
      }
      if (!frame_alive) break;
      if (all_ok) {
        ++stats.frames_delivered;
        stats.payload_bits_delivered += params.payload_bytes * 8;
        break;
      }
      // Otherwise loop continues with the re-queued blocks.
    }
  }
  return stats;
}

}  // namespace fdb::mac
