#include "util/bits.hpp"

#include <cassert>

namespace fdb {

std::vector<std::uint8_t> bytes_to_bits(std::span<const std::uint8_t> bytes) {
  std::vector<std::uint8_t> bits;
  bits.reserve(bytes.size() * 8);
  for (const std::uint8_t byte : bytes) {
    for (int bit = 7; bit >= 0; --bit) {
      bits.push_back(static_cast<std::uint8_t>((byte >> bit) & 1u));
    }
  }
  return bits;
}

std::vector<std::uint8_t> bits_to_bytes(std::span<const std::uint8_t> bits) {
  std::vector<std::uint8_t> bytes((bits.size() + 7) / 8, 0);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits[i]) {
      bytes[i / 8] |= static_cast<std::uint8_t>(1u << (7 - i % 8));
    }
  }
  return bytes;
}

std::size_t hamming_distance(std::span<const std::uint8_t> a,
                             std::span<const std::uint8_t> b) {
  assert(a.size() == b.size());
  std::size_t distance = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    distance += (a[i] != 0) != (b[i] != 0) ? 1 : 0;
  }
  return distance;
}

void append_bits(std::vector<std::uint8_t>& out, std::uint32_t value,
                 int nbits) {
  assert(nbits >= 0 && nbits <= 32);
  for (int bit = nbits - 1; bit >= 0; --bit) {
    out.push_back(static_cast<std::uint8_t>((value >> bit) & 1u));
  }
}

std::uint32_t read_bits(std::span<const std::uint8_t> bits, std::size_t offset,
                        int nbits) {
  assert(nbits >= 0 && nbits <= 32);
  assert(offset + static_cast<std::size_t>(nbits) <= bits.size());
  std::uint32_t value = 0;
  for (int i = 0; i < nbits; ++i) {
    value = (value << 1) | (bits[offset + static_cast<std::size_t>(i)] & 1u);
  }
  return value;
}

Lfsr16::Lfsr16(std::uint16_t seed) : state_(seed ? seed : 0xACE1u) {}

std::uint8_t Lfsr16::next_bit() {
  const std::uint16_t bit = static_cast<std::uint16_t>(
      ((state_ >> 0) ^ (state_ >> 2) ^ (state_ >> 3) ^ (state_ >> 5)) & 1u);
  state_ = static_cast<std::uint16_t>((state_ >> 1) | (bit << 15));
  return static_cast<std::uint8_t>(bit);
}

std::vector<std::uint8_t> Lfsr16::next_bits(std::size_t n) {
  std::vector<std::uint8_t> bits(n);
  for (auto& b : bits) b = next_bit();
  return bits;
}

}  // namespace fdb
