#include "util/crc.hpp"

#include <array>

namespace fdb {
namespace {

std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint8_t crc8(std::span<const std::uint8_t> data) {
  std::uint8_t crc = 0x00;
  for (const std::uint8_t byte : data) {
    crc ^= byte;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 0x80u) ? static_cast<std::uint8_t>((crc << 1) ^ 0x07)
                          : static_cast<std::uint8_t>(crc << 1);
    }
  }
  return crc;
}

std::uint16_t crc16(std::span<const std::uint8_t> data) {
  std::uint16_t crc = 0xFFFF;
  for (const std::uint8_t byte : data) {
    crc ^= static_cast<std::uint16_t>(byte) << 8;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 0x8000u) ? static_cast<std::uint16_t>((crc << 1) ^ 0x1021)
                            : static_cast<std::uint16_t>(crc << 1);
    }
  }
  return crc;
}

std::uint32_t crc32(std::span<const std::uint8_t> data) {
  static const auto table = make_crc32_table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const std::uint8_t byte : data) {
    crc = table[(crc ^ byte) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace fdb
