// Decibel / linear power conversions used throughout the channel and
// energy models. All power quantities in the library are linear watts
// unless the identifier says dB or dBm.
#pragma once

#include <cmath>

namespace fdb {

/// Power ratio -> decibels.
inline double lin_to_db(double linear) { return 10.0 * std::log10(linear); }

/// Decibels -> power ratio.
inline double db_to_lin(double db) { return std::pow(10.0, db / 10.0); }

/// Watts -> dBm.
inline double watt_to_dbm(double watts) {
  return 10.0 * std::log10(watts) + 30.0;
}

/// dBm -> watts.
inline double dbm_to_watt(double dbm) {
  return std::pow(10.0, (dbm - 30.0) / 10.0);
}

/// Field (amplitude) ratio -> decibels.
inline double amp_to_db(double amplitude) {
  return 20.0 * std::log10(amplitude);
}

/// Decibels -> field (amplitude) ratio.
inline double db_to_amp(double db) { return std::pow(10.0, db / 20.0); }

}  // namespace fdb
