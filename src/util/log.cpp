#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace fdb {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_mutex;

const char* prefix(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "[debug] ";
    case LogLevel::kInfo: return "[info ] ";
    case LogLevel::kWarn: return "[warn ] ";
    case LogLevel::kError: return "[error] ";
    case LogLevel::kOff: return "";
  }
  return "";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void log_message(LogLevel level, const std::string& msg) {
  if (level < g_level.load() || level == LogLevel::kOff) return;
  const std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "%s%s\n", prefix(level), msg.c_str());
}

void log_debug(const std::string& msg) { log_message(LogLevel::kDebug, msg); }
void log_info(const std::string& msg) { log_message(LogLevel::kInfo, msg); }
void log_warn(const std::string& msg) { log_message(LogLevel::kWarn, msg); }
void log_error(const std::string& msg) { log_message(LogLevel::kError, msg); }

}  // namespace fdb
