// Basic shared types for the fdb library: the complex baseband sample
// type every layer passes around, the real envelope sample type, and
// the Status enum used instead of exceptions on decode hot paths
// (a per-sample receive chain cannot afford unwinding, and "CRC
// mismatch" or "sync not found" are expected outcomes, not errors).
#pragma once

#include <complex>
#include <cstdint>

namespace fdb {

/// Complex baseband sample. Single precision: matches what an SDR front end
/// or fixed-point backscatter decoder would process, and halves memory
/// bandwidth relative to double in the sample-level simulator.
using cf32 = std::complex<float>;

/// Real sample (e.g. envelope-detector output).
using f32 = float;

/// Seconds, used for all simulator time arithmetic.
using Seconds = double;

/// Generic status for fallible operations on hot paths where exceptions
/// are not appropriate.
enum class Status : std::uint8_t {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kCrcMismatch,
  kSyncNotFound,
  kTruncated,
  kEnergyDepleted,
};

/// Human-readable name of a Status value.
constexpr const char* to_string(Status s) {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kInvalidArgument: return "invalid_argument";
    case Status::kOutOfRange: return "out_of_range";
    case Status::kCrcMismatch: return "crc_mismatch";
    case Status::kSyncNotFound: return "sync_not_found";
    case Status::kTruncated: return "truncated";
    case Status::kEnergyDepleted: return "energy_depleted";
  }
  return "unknown";
}

}  // namespace fdb
