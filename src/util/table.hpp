// Console table printer: the bench harnesses print the paper's
// tables/figure series as aligned text so runs are self-describing.
#pragma once

#include <string>
#include <vector>

namespace fdb {

/// Collects rows of string cells and renders an aligned ASCII table.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds a data row; must match the header arity.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with %.6g.
  void add_row_numeric(const std::vector<double>& cells);

  /// Renders with column alignment and a header rule.
  std::string render() const;

  /// Renders straight to stdout.
  void print() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double like printf %.6g (helper shared by benches).
std::string format_g(double v);

}  // namespace fdb
