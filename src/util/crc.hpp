// CRC checks used by the PHY framer. CRC-16/CCITT-FALSE matches what
// EPC Gen2 / low-power backscatter frames typically carry; CRC-8 guards
// the short frame header so a corrupted length field cannot desynchronise
// the deframer; CRC-32 is available for bulk payload integrity tests.
#pragma once

#include <cstdint>
#include <span>

namespace fdb {

/// CRC-8/ATM (poly 0x07, init 0x00).
std::uint8_t crc8(std::span<const std::uint8_t> data);

/// CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF).
std::uint16_t crc16(std::span<const std::uint8_t> data);

/// CRC-32 (IEEE 802.3, reflected, init/final 0xFFFFFFFF).
std::uint32_t crc32(std::span<const std::uint8_t> data);

}  // namespace fdb
