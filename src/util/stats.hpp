// Streaming statistics used by the Monte-Carlo harnesses. The benches
// run long trials and print mean ± CI columns, so everything here is
// single-pass and mergeable: Welford mean/variance (RunningStats), a
// binomial error-rate counter with confidence bounds for BER columns
// (ErrorRateCounter), and a fixed-bin histogram for latency quantiles.
// merge() exists so sharded/parallel trial runners can combine results
// without losing numerical stability.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace fdb {

/// Welford's online mean/variance with min/max tracking. Numerically
/// stable for long Monte-Carlo runs.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);
  void reset();

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  /// Half-width of the 95% normal-approximation confidence interval.
  double ci95_halfwidth() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Counter for bit- or block-error-rate estimation with a Wilson score
/// interval (robust for small error counts, which BER sweeps hit often).
class ErrorRateCounter {
 public:
  void add(bool error) {
    ++trials_;
    if (error) ++errors_;
  }
  void add(std::uint64_t errors, std::uint64_t trials) {
    errors_ += errors;
    trials_ += trials;
  }
  /// Combines with another counter (exact — integer sums), so sharded
  /// trial runners can merge per-worker counters in any grouping.
  void merge(const ErrorRateCounter& other) {
    errors_ += other.errors_;
    trials_ += other.trials_;
  }
  std::uint64_t errors() const { return errors_; }
  std::uint64_t trials() const { return trials_; }
  double rate() const {
    return trials_ ? static_cast<double>(errors_) / static_cast<double>(trials_)
                   : 0.0;
  }
  /// Wilson 95% interval bounds for the underlying error probability.
  double wilson_lower() const;
  double wilson_upper() const;

 private:
  std::uint64_t errors_ = 0;
  std::uint64_t trials_ = 0;
};

/// Fixed-bin histogram over [lo, hi); out-of-range samples clamp to the
/// edge bins so nothing is silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  /// Combines with another histogram over the same [lo, hi) range and
  /// bin count (asserted); counts add exactly.
  void merge(const Histogram& other);
  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;
  /// Empirical quantile q in [0,1], linear within the containing bin.
  double quantile(double q) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace fdb
