// Minimal leveled logger. Simulation workers log through this so verbosity
// can be raised for debugging without recompiling benches.
#pragma once

#include <cstdint>
#include <string>

namespace fdb {

enum class LogLevel : std::uint8_t { kDebug = 0, kInfo, kWarn, kError, kOff };

/// Sets the global threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits `msg` to stderr with a level prefix if `level` passes the
/// threshold. Thread-safe at the line level.
void log_message(LogLevel level, const std::string& msg);

void log_debug(const std::string& msg);
void log_info(const std::string& msg);
void log_warn(const std::string& msg);
void log_error(const std::string& msg);

}  // namespace fdb
