#include "util/table.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <sstream>

namespace fdb {

std::string format_g(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::add_row_numeric(const std::vector<double>& cells) {
  std::vector<std::string> row;
  row.reserve(cells.size());
  for (const double v : cells) row.push_back(format_g(v));
  add_row(std::move(row));
}

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c ? "  " : "") << row[c]
         << std::string(widths[c] - row[c].size(), ' ');
    }
    os << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (const auto w : widths) total += w;
  total += 2 * (widths.empty() ? 0 : widths.size() - 1);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

void Table::print() const { std::fputs(render().c_str(), stdout); }

}  // namespace fdb
