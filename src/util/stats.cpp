#include "util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace fdb {

void RunningStats::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::ci95_halfwidth() const {
  if (n_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(n_));
}

namespace {
// Wilson score bound; sign = -1 lower, +1 upper. z = 1.96 for 95%.
double wilson_bound(std::uint64_t errors, std::uint64_t trials, double sign) {
  if (trials == 0) return 0.0;
  const double z = 1.96;
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(errors) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = p + z2 / (2.0 * n);
  const double margin = z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n));
  return std::clamp((center + sign * margin) / denom, 0.0, 1.0);
}
}  // namespace

double ErrorRateCounter::wilson_lower() const {
  return wilson_bound(errors_, trials_, -1.0);
}

double ErrorRateCounter::wilson_upper() const {
  return wilson_bound(errors_, trials_, +1.0);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  assert(hi > lo && bins > 0);
}

void Histogram::add(double x) {
  const double frac = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::ptrdiff_t>(frac * static_cast<double>(counts_.size()));
  idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

void Histogram::merge(const Histogram& other) {
  const bool compatible = lo_ == other.lo_ && hi_ == other.hi_ &&
                          counts_.size() == other.counts_.size();
  assert(compatible);
  // Release builds compile the assert out; refuse the merge rather than
  // index past the smaller counts vector.
  if (!compatible) return;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  total_ += other.total_;
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t i) const { return bin_lo(i + 1); }

double Histogram::quantile(double q) const {
  if (total_ == 0) return lo_;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (next >= target) {
      const double within =
          counts_[i] ? (target - cum) / static_cast<double>(counts_[i]) : 0.0;
      return bin_lo(i) + within * (bin_hi(i) - bin_lo(i));
    }
    cum = next;
  }
  return hi_;
}

}  // namespace fdb
