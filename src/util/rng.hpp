// Deterministic, fast random number generation for simulation.
//
// Every stochastic component in the library takes an explicit Rng (or a
// seed) so that experiments are reproducible run-to-run and so that
// parameter sweeps can use common random numbers across arms.
#pragma once

#include <array>
#include <cstdint>

#include "util/types.hpp"

namespace fdb {

/// xoshiro256++ generator (Blackman & Vigna). Small, fast, and high quality
/// for Monte-Carlo use; satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit words of state from `seed` via splitmix64,
  /// which guarantees a non-zero, well-mixed initial state.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Next raw 64-bit output.
  result_type operator()();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Precondition: n > 0 — an empty range has
  /// no valid result. Violations abort with a message in every build
  /// mode (never silent UB; the bounded-integer reduction would divide
  /// by zero).
  std::uint64_t uniform_int(std::uint64_t n);

  /// Standard normal via Box-Muller (cached second deviate).
  double normal();

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Exponential with given mean (>0).
  double exponential(double mean);

  /// Rayleigh-distributed magnitude with E[X^2] = mean_square.
  double rayleigh(double mean_square);

  /// Circularly-symmetric complex Gaussian with E[|X|^2] = mean_square.
  cf32 cn(double mean_square);

  /// Bernoulli trial with probability p of true.
  bool chance(double p);

  /// Derives an independent child generator; useful for giving each
  /// simulated device its own stream from one experiment seed.
  Rng fork();

  /// Counter-based substream derivation: hashes (seed, stream) into a
  /// fresh, well-mixed state. Unlike fork(), the result depends only on
  /// the two inputs — substream(seed, i) is the same generator no matter
  /// which thread asks for it or in what order, which is what lets a
  /// parallel trial runner give trial i identical randomness at any job
  /// count. Adjacent stream indices are decorrelated by the hash.
  static Rng substream(std::uint64_t seed, std::uint64_t stream);

 private:
  std::array<std::uint64_t, 4> s_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace fdb
