// Bit-level helpers: the PHY works in bits while payloads live in
// bytes. MSB-first is the on-air order everywhere (framer, CRC,
// feedback words), so the pack/unpack pair here is the single place
// that convention is encoded. Hamming distance is the BER counter's
// primitive; append/read_bits build and parse the header fields of
// phy/framer.hpp without a bit-stream class.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace fdb {

/// Expands bytes to bits, MSB first ("on-air" order for the framer).
std::vector<std::uint8_t> bytes_to_bits(std::span<const std::uint8_t> bytes);

/// Packs bits (MSB first) into bytes. Trailing partial byte is
/// zero-padded in the low bits.
std::vector<std::uint8_t> bits_to_bytes(std::span<const std::uint8_t> bits);

/// Hamming distance between two equal-length bit vectors. Counts
/// positions where the (0/1) values differ.
std::size_t hamming_distance(std::span<const std::uint8_t> a,
                             std::span<const std::uint8_t> b);

/// Appends `value`'s low `nbits` bits, MSB first, to `out`.
void append_bits(std::vector<std::uint8_t>& out, std::uint32_t value,
                 int nbits);

/// Reads `nbits` bits MSB-first starting at `offset`. Returns the value;
/// caller must ensure offset+nbits <= bits.size().
std::uint32_t read_bits(std::span<const std::uint8_t> bits, std::size_t offset,
                        int nbits);

/// Pseudo-random bit sequence generator (Fibonacci LFSR, poly x^16+x^14+
/// x^13+x^11+1). Used for scrambling and test payloads; maximal length.
class Lfsr16 {
 public:
  explicit Lfsr16(std::uint16_t seed = 0xACE1u);
  std::uint8_t next_bit();
  std::vector<std::uint8_t> next_bits(std::size_t n);

 private:
  std::uint16_t state_;
};

}  // namespace fdb
