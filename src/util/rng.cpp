#include "util/rng.hpp"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <numbers>

namespace fdb {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_int(std::uint64_t n) {
  assert(n > 0);
  if (n == 0) {
    // An empty range has no valid result. Fail loudly in release builds
    // too: the `(-n) % n` below would otherwise be a division by zero
    // (undefined behaviour) that only a sanitizer run would catch.
    std::fputs("fdb::Rng::uniform_int: n must be > 0\n", stderr);
    std::abort();
  }
  // Lemire's nearly-divisionless bounded integers with rejection.
  const std::uint64_t threshold = (-n) % n;
  for (;;) {
    const std::uint64_t r = (*this)();
    const unsigned __int128 m = static_cast<unsigned __int128>(r) * n;
    if (static_cast<std::uint64_t>(m) >= threshold) {
      return static_cast<std::uint64_t>(m >> 64);
    }
  }
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 strictly positive to keep log() finite.
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::exponential(double mean) {
  assert(mean > 0.0);
  double u = 0.0;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::rayleigh(double mean_square) {
  // |CN(0, ms)| is Rayleigh with E[X^2] = ms.
  return std::abs(cn(mean_square));
}

cf32 Rng::cn(double mean_square) {
  const double sigma = std::sqrt(mean_square / 2.0);
  return {static_cast<float>(normal(0.0, sigma)),
          static_cast<float>(normal(0.0, sigma))};
}

bool Rng::chance(double p) { return uniform() < p; }

Rng Rng::fork() {
  // A fresh generator seeded from this one's output stream; streams are
  // independent for Monte-Carlo purposes.
  return Rng((*this)());
}

Rng Rng::substream(std::uint64_t seed, std::uint64_t stream) {
  // Two splitmix64 rounds with the counter folded in between: full
  // avalanche on both inputs, so stream 0 and stream 1 of the same seed
  // share no structure, and neither matches Rng(seed) itself.
  std::uint64_t x = seed;
  x = splitmix64(x) ^ stream;
  return Rng(splitmix64(x));
}

}  // namespace fdb
