#include "energy/harvester.hpp"

#include <gtest/gtest.h>

#include "util/db.hpp"

namespace fdb::energy {
namespace {

TEST(Harvester, BelowSensitivityHarvestsNothing) {
  Harvester h;
  EXPECT_DOUBLE_EQ(h.efficiency(dbm_to_watt(-40.0)), 0.0);
  EXPECT_DOUBLE_EQ(h.harvested_power(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.harvested_power(-1.0), 0.0);
}

TEST(Harvester, PeakEfficiencyAtSaturation) {
  Harvester h({.sensitivity_dbm = -24.0, .saturation_dbm = -4.0,
               .peak_efficiency = 0.35});
  EXPECT_DOUBLE_EQ(h.efficiency(dbm_to_watt(-4.0)), 0.35);
  EXPECT_DOUBLE_EQ(h.efficiency(dbm_to_watt(10.0)), 0.35);
}

TEST(Harvester, EfficiencyRampsMonotonically) {
  Harvester h;
  double prev = -1.0;
  for (double dbm = -24.0; dbm <= -4.0; dbm += 2.0) {
    const double eff = h.efficiency(dbm_to_watt(dbm));
    EXPECT_GE(eff, prev);
    prev = eff;
  }
}

TEST(Harvester, MidpointEfficiencyHalf) {
  Harvester h({.sensitivity_dbm = -20.0, .saturation_dbm = -10.0,
               .peak_efficiency = 0.4});
  EXPECT_NEAR(h.efficiency(dbm_to_watt(-15.0)), 0.2, 1e-9);
}

TEST(Harvester, EnergyIntegratesOverTime) {
  Harvester h({.sensitivity_dbm = -30.0, .saturation_dbm = -20.0,
               .peak_efficiency = 0.5});
  const double p_in = dbm_to_watt(-10.0);  // saturated: eff 0.5
  EXPECT_NEAR(h.harvest(p_in, 2.0), p_in * 0.5 * 2.0, 1e-15);
  EXPECT_DOUBLE_EQ(h.harvest(p_in, 0.0), 0.0);
}

}  // namespace
}  // namespace fdb::energy
