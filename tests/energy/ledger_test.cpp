#include "energy/ledger.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace fdb::energy {
namespace {

TEST(Ledger, AccumulatesPerState) {
  EnergyLedger ledger;
  ledger.spend(TagState::kListening, 2.0);
  ledger.spend(TagState::kListening, 1.0);
  ledger.spend(TagState::kIdle, 10.0);
  EXPECT_DOUBLE_EQ(ledger.time_in_state_s(TagState::kListening), 3.0);
  EXPECT_DOUBLE_EQ(ledger.time_in_state_s(TagState::kIdle), 10.0);
  EXPECT_DOUBLE_EQ(ledger.total_time_s(), 13.0);
}

TEST(Ledger, EnergyUsesProfilePowers) {
  PowerProfile profile;
  profile.listening_w = 1e-6;
  profile.idle_w = 1e-7;
  EnergyLedger ledger(profile);
  ledger.spend(TagState::kListening, 5.0);
  ledger.spend(TagState::kIdle, 10.0);
  EXPECT_NEAR(ledger.total_energy_j(), 5e-6 + 1e-6, 1e-15);
  EXPECT_NEAR(ledger.energy_in_state_j(TagState::kListening), 5e-6, 1e-15);
}

TEST(Ledger, BackscatterCostsMoreThanListening) {
  const PowerProfile profile;
  EXPECT_GT(profile.power(TagState::kBackscattering),
            profile.power(TagState::kListening));
  EXPECT_GT(profile.power(TagState::kListening),
            profile.power(TagState::kIdle));
}

TEST(Ledger, EnergyPerBit) {
  EnergyLedger ledger;
  ledger.spend(TagState::kListening, 1.0);
  const double total = ledger.total_energy_j();
  EXPECT_DOUBLE_EQ(ledger.energy_per_bit_j(1000), total / 1000.0);
  EXPECT_TRUE(std::isinf(ledger.energy_per_bit_j(0)));
}

TEST(Ledger, ResetZeroes) {
  EnergyLedger ledger;
  ledger.spend(TagState::kDecoding, 4.0);
  ledger.reset();
  EXPECT_DOUBLE_EQ(ledger.total_energy_j(), 0.0);
  EXPECT_DOUBLE_EQ(ledger.total_time_s(), 0.0);
}

}  // namespace
}  // namespace fdb::energy
