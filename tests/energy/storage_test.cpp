#include "energy/storage.hpp"

#include <gtest/gtest.h>

namespace fdb::energy {
namespace {

TEST(Storage, StartsAtInitialLevel) {
  Storage s({.capacity_j = 1e-4, .initial_j = 4e-5, .leakage_w = 0.0});
  EXPECT_DOUBLE_EQ(s.level_j(), 4e-5);
  EXPECT_FALSE(s.depleted());
}

TEST(Storage, ChargeClampsAtCapacity) {
  Storage s({.capacity_j = 1e-4, .initial_j = 9e-5, .leakage_w = 0.0});
  s.charge(5e-5);
  EXPECT_DOUBLE_EQ(s.level_j(), 1e-4);
}

TEST(Storage, DrawSucceedsWithinLevel) {
  Storage s({.capacity_j = 1e-4, .initial_j = 5e-5, .leakage_w = 0.0});
  EXPECT_TRUE(s.draw(2e-5));
  EXPECT_DOUBLE_EQ(s.level_j(), 3e-5);
  EXPECT_EQ(s.outages(), 0u);
}

TEST(Storage, OverdrawCountsOutageAndDrains) {
  Storage s({.capacity_j = 1e-4, .initial_j = 1e-5, .leakage_w = 0.0});
  EXPECT_FALSE(s.draw(5e-5));
  EXPECT_TRUE(s.depleted());
  EXPECT_EQ(s.outages(), 1u);
}

TEST(Storage, LeakageDischargesOverTime) {
  Storage s({.capacity_j = 1e-4, .initial_j = 1e-5, .leakage_w = 1e-6});
  s.tick(5.0);
  EXPECT_NEAR(s.level_j(), 1e-5 - 5e-6, 1e-12);
  s.tick(100.0);  // drains past zero -> clamps
  EXPECT_DOUBLE_EQ(s.level_j(), 0.0);
}

TEST(Storage, ResetRestoresInitialState) {
  Storage s({.capacity_j = 1e-4, .initial_j = 2e-5, .leakage_w = 0.0});
  s.draw(1e-4);
  s.reset();
  EXPECT_DOUBLE_EQ(s.level_j(), 2e-5);
  EXPECT_EQ(s.outages(), 0u);
}

TEST(Storage, HarvestDrawCycleSustains) {
  // Harvest covers load: no outages over many cycles.
  Storage s({.capacity_j = 1e-4, .initial_j = 1e-5, .leakage_w = 1e-9});
  for (int i = 0; i < 10000; ++i) {
    s.charge(2e-9);
    s.tick(1e-3);
    EXPECT_TRUE(s.draw(1e-9));
  }
  EXPECT_EQ(s.outages(), 0u);
}

}  // namespace
}  // namespace fdb::energy
