#include "channel/multipath.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace fdb::channel {
namespace {

TEST(Multipath, TapsHaveUnitExpectedPower) {
  Rng rng(1);
  const MultipathProfile profile{.num_taps = 6, .delay_spread_samples = 2.0};
  double total = 0.0;
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    const auto taps = draw_multipath_taps(profile, rng);
    for (const cf32 tap : taps) total += std::norm(tap);
  }
  EXPECT_NEAR(total / trials, 1.0, 0.03);
}

TEST(Multipath, PowerDecaysWithDelay) {
  Rng rng(2);
  const MultipathProfile profile{.num_taps = 5, .delay_spread_samples = 1.5};
  std::vector<double> tap_power(profile.num_taps, 0.0);
  const int trials = 30000;
  for (int t = 0; t < trials; ++t) {
    const auto taps = draw_multipath_taps(profile, rng);
    for (std::size_t k = 0; k < taps.size(); ++k) {
      tap_power[k] += std::norm(taps[k]);
    }
  }
  for (std::size_t k = 1; k < tap_power.size(); ++k) {
    EXPECT_LT(tap_power[k], tap_power[k - 1]);
  }
}

TEST(MultipathChannel, SingleTapEquivalentToScaling) {
  Rng rng(3);
  MultipathChannel channel({.num_taps = 1, .delay_spread_samples = 1.0}, rng);
  const cf32 tap = channel.taps()[0];
  const cf32 y = channel.process({1.0f, 0.0f});
  EXPECT_NEAR(y.real(), tap.real(), 1e-6f);
  EXPECT_NEAR(y.imag(), tap.imag(), 1e-6f);
}

TEST(MultipathChannel, RedrawChangesResponse) {
  Rng rng(4);
  MultipathChannel channel({.num_taps = 4, .delay_spread_samples = 2.0}, rng);
  const auto before = channel.taps();
  channel.redraw(rng);
  const auto after = channel.taps();
  EXPECT_NE(before[0], after[0]);
}

TEST(MultipathChannel, IntroducesIsi) {
  Rng rng(5);
  MultipathChannel channel({.num_taps = 3, .delay_spread_samples = 2.0}, rng);
  // An impulse spreads over num_taps outputs.
  const cf32 y0 = channel.process({1.0f, 0.0f});
  const cf32 y1 = channel.process({0.0f, 0.0f});
  const cf32 y2 = channel.process({0.0f, 0.0f});
  EXPECT_NEAR(y0.real(), channel.taps()[0].real(), 1e-6f);
  EXPECT_NEAR(y1.real(), channel.taps()[1].real(), 1e-6f);
  EXPECT_NEAR(y2.real(), channel.taps()[2].real(), 1e-6f);
}

}  // namespace
}  // namespace fdb::channel
