#include "channel/pathloss.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/db.hpp"

namespace fdb::channel {
namespace {

TEST(Friis, InverseWithDistance) {
  const double wl = wavelength_m(539e6);  // UHF TV band
  const double g1 = friis_amplitude_gain(1.0, wl);
  const double g2 = friis_amplitude_gain(2.0, wl);
  EXPECT_NEAR(g1 / g2, 2.0, 1e-9);
}

TEST(Wavelength, UhfTvBand) {
  EXPECT_NEAR(wavelength_m(539e6), 0.556, 0.01);
}

TEST(LogDistance, ReferenceLossApplied) {
  LogDistanceModel model{.reference_distance_m = 1.0,
                         .reference_loss_db = 30.0,
                         .exponent = 2.0,
                         .shadowing_sigma_db = 0.0};
  EXPECT_NEAR(lin_to_db(model.power_gain(1.0)), -30.0, 1e-9);
}

TEST(LogDistance, ExponentControlsSlope) {
  LogDistanceModel model{.reference_distance_m = 1.0,
                         .reference_loss_db = 30.0,
                         .exponent = 2.5,
                         .shadowing_sigma_db = 0.0};
  const double loss_10m = -lin_to_db(model.power_gain(10.0));
  EXPECT_NEAR(loss_10m, 30.0 + 25.0, 1e-9);  // +10*n dB per decade
}

TEST(LogDistance, AmplitudeIsSqrtPower) {
  LogDistanceModel model;
  const double d = 3.7;
  EXPECT_NEAR(model.amplitude_gain(d),
              std::sqrt(model.power_gain(d)), 1e-12);
}

TEST(LogDistance, BelowReferenceClamps) {
  LogDistanceModel model{.reference_distance_m = 1.0,
                         .reference_loss_db = 30.0,
                         .exponent = 2.0,
                         .shadowing_sigma_db = 0.0};
  EXPECT_DOUBLE_EQ(model.power_gain(0.2), model.power_gain(1.0));
}

TEST(LogDistance, ShadowingPerturbsGain) {
  LogDistanceModel model{.reference_distance_m = 1.0,
                         .reference_loss_db = 30.0,
                         .exponent = 2.0,
                         .shadowing_sigma_db = 8.0};
  Rng rng(5);
  const double base = model.power_gain(10.0);
  bool saw_different = false;
  for (int i = 0; i < 16; ++i) {
    if (std::abs(model.power_gain(10.0, &rng) - base) > base * 0.01) {
      saw_different = true;
    }
  }
  EXPECT_TRUE(saw_different);
}

TEST(LogDistance, ShadowingMeanIsUnbiasedInDb) {
  LogDistanceModel model{.reference_distance_m = 1.0,
                         .reference_loss_db = 30.0,
                         .exponent = 2.0,
                         .shadowing_sigma_db = 6.0};
  Rng rng(6);
  double sum_db = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum_db += lin_to_db(model.power_gain(10.0, &rng));
  }
  EXPECT_NEAR(sum_db / n, lin_to_db(model.power_gain(10.0)), 0.2);
}

TEST(Db, ConversionsRoundTrip) {
  EXPECT_NEAR(db_to_lin(lin_to_db(0.123)), 0.123, 1e-12);
  EXPECT_NEAR(dbm_to_watt(watt_to_dbm(0.05)), 0.05, 1e-12);
  EXPECT_NEAR(db_to_amp(amp_to_db(3.0)), 3.0, 1e-12);
  EXPECT_NEAR(watt_to_dbm(1.0), 30.0, 1e-12);
  EXPECT_NEAR(dbm_to_watt(0.0), 1e-3, 1e-15);
}

}  // namespace
}  // namespace fdb::channel
