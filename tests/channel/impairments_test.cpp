#include "channel/impairments.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace fdb::channel {
namespace {

TEST(ThermalNoise, ScalesWithBandwidth) {
  const double n1 = thermal_noise_power(1e6, 0.0);
  const double n2 = thermal_noise_power(2e6, 0.0);
  EXPECT_NEAR(n2 / n1, 2.0, 1e-9);
}

TEST(ThermalNoise, KtbAt290K) {
  // kTB for 1 Hz at 290 K is -174 dBm.
  const double p = thermal_noise_power(1.0, 0.0);
  EXPECT_NEAR(10.0 * std::log10(p * 1000.0), -174.0, 0.2);
}

TEST(Awgn, AddsConfiguredPower) {
  AwgnChannel awgn(0.25, Rng(7));
  double noise_power = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const cf32 y = awgn.process({0.0f, 0.0f});
    noise_power += std::norm(y);
  }
  EXPECT_NEAR(noise_power / n, 0.25, 0.01);
}

TEST(Awgn, ZeroPowerIsTransparent) {
  AwgnChannel awgn(0.0, Rng(8));
  const cf32 x{1.0f, -2.0f};
  const cf32 y = awgn.process(x);
  EXPECT_EQ(x, y);
}

TEST(Awgn, SignalPlusNoisePowerAdds) {
  AwgnChannel awgn(0.1, Rng(9));
  double total = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    total += std::norm(awgn.process({1.0f, 0.0f}));
  }
  EXPECT_NEAR(total / n, 1.1, 0.02);
}

TEST(Cfo, RotatesAtConfiguredRate) {
  const double fs = 1e6;
  const double offset = 1000.0;
  CfoRotator cfo(offset, fs);
  // After fs/offset/4 samples the phase should be 90 degrees.
  const int quarter = static_cast<int>(fs / offset / 4.0);
  cf32 y{};
  for (int i = 0; i <= quarter; ++i) y = cfo.process({1.0f, 0.0f});
  EXPECT_NEAR(std::arg(y), std::numbers::pi / 2.0, 0.02);
}

TEST(Cfo, ZeroOffsetIdentity) {
  CfoRotator cfo(0.0, 1e6);
  for (int i = 0; i < 100; ++i) {
    const cf32 y = cfo.process({1.0f, 1.0f});
    EXPECT_NEAR(y.real(), 1.0f, 1e-6f);
    EXPECT_NEAR(y.imag(), 1.0f, 1e-6f);
  }
}

TEST(Cfo, PreservesMagnitude) {
  CfoRotator cfo(12345.0, 1e6);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_NEAR(std::abs(cfo.process({0.0f, 3.0f})), 3.0f, 1e-4f);
  }
}

TEST(DelayLine, ZeroDelayPassthrough) {
  DelayLine delay(0);
  EXPECT_EQ(delay.process({5.0f, 0.0f}), (cf32{5.0f, 0.0f}));
}

TEST(DelayLine, DelaysBySamples) {
  DelayLine delay(3);
  EXPECT_EQ(delay.process({1.0f, 0.0f}), (cf32{0.0f, 0.0f}));
  EXPECT_EQ(delay.process({2.0f, 0.0f}), (cf32{0.0f, 0.0f}));
  EXPECT_EQ(delay.process({3.0f, 0.0f}), (cf32{0.0f, 0.0f}));
  EXPECT_EQ(delay.process({4.0f, 0.0f}), (cf32{1.0f, 0.0f}));
  EXPECT_EQ(delay.process({5.0f, 0.0f}), (cf32{2.0f, 0.0f}));
}

}  // namespace
}  // namespace fdb::channel
