#include "channel/fading.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace fdb::channel {
namespace {

TEST(StaticFading, AlwaysUnity) {
  StaticFading fading;
  Rng rng(1);
  for (int i = 0; i < 10; ++i) {
    fading.next_block(rng);
    EXPECT_FLOAT_EQ(fading.gain().real(), 1.0f);
    EXPECT_FLOAT_EQ(fading.gain().imag(), 0.0f);
  }
}

TEST(RayleighFading, UnitMeanSquare) {
  Rng rng(2);
  RayleighFading fading(rng);
  double ms = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    fading.next_block(rng);
    ms += std::norm(fading.gain());
  }
  EXPECT_NEAR(ms / n, 1.0, 0.03);
}

TEST(RayleighFading, BlocksAreIndependentDraws) {
  Rng rng(3);
  RayleighFading fading(rng);
  const cf32 g1 = fading.gain();
  fading.next_block(rng);
  const cf32 g2 = fading.gain();
  EXPECT_NE(g1, g2);
}

TEST(RicianFading, UnitMeanSquare) {
  Rng rng(4);
  RicianFading fading(6.0, rng);
  double ms = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    fading.next_block(rng);
    ms += std::norm(fading.gain());
  }
  EXPECT_NEAR(ms / n, 1.0, 0.03);
}

TEST(RicianFading, HighKApproachesLos) {
  Rng rng(5);
  RicianFading fading(1000.0, rng);
  // With K=1000 almost all power is LOS: gain near 1+0j every block.
  for (int i = 0; i < 20; ++i) {
    fading.next_block(rng);
    EXPECT_NEAR(std::abs(fading.gain()), 1.0, 0.15);
  }
}

TEST(RicianFading, LowKVariesLikeRayleigh) {
  Rng rng(6);
  RicianFading fading(0.01, rng);
  double min_mag = 1e9, max_mag = 0.0;
  for (int i = 0; i < 1000; ++i) {
    fading.next_block(rng);
    const double m = std::abs(fading.gain());
    min_mag = std::min(min_mag, m);
    max_mag = std::max(max_mag, m);
  }
  EXPECT_GT(max_mag / std::max(min_mag, 1e-12), 10.0);
}

TEST(MakeFading, FactorySelectsKinds) {
  Rng rng(7);
  EXPECT_STREQ(make_fading("static", rng)->name(), "static");
  EXPECT_STREQ(make_fading("rayleigh", rng)->name(), "rayleigh");
  EXPECT_STREQ(make_fading("rician", rng)->name(), "rician");
  EXPECT_STREQ(make_fading("unknown", rng)->name(), "static");
}

}  // namespace
}  // namespace fdb::channel
