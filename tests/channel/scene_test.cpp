#include "channel/scene.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace fdb::channel {
namespace {

TEST(Scene, DistanceMetric) {
  EXPECT_DOUBLE_EQ(distance_m({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(distance_m({1, 1}, {1, 1}), 0.0);
}

TEST(Scene, AddAndQueryDevices) {
  Scene scene;
  const auto tv = scene.add_device(
      {"tv", DeviceKind::kAmbientTx, {0.0, 0.0}});
  const auto tag = scene.add_device({"tag", DeviceKind::kTag, {5.0, 0.0}});
  EXPECT_EQ(scene.num_devices(), 2u);
  EXPECT_EQ(scene.device(tv).name, "tv");
  EXPECT_EQ(scene.device(tag).kind, DeviceKind::kTag);
}

TEST(Scene, GainFallsWithDistance) {
  Scene scene;
  const auto tx = scene.add_device(
      {"tx", DeviceKind::kAmbientTx, {0.0, 0.0}});
  const auto near = scene.add_device({"near", DeviceKind::kTag, {2.0, 0.0}});
  const auto far = scene.add_device({"far", DeviceKind::kTag, {20.0, 0.0}});
  EXPECT_GT(scene.power_gain(tx, near), scene.power_gain(tx, far));
}

TEST(Scene, GainSymmetric) {
  Scene scene;
  const auto a = scene.add_device({"a", DeviceKind::kTag, {0.0, 0.0}});
  const auto b = scene.add_device({"b", DeviceKind::kTag, {7.0, 3.0}});
  EXPECT_DOUBLE_EQ(scene.amplitude_gain(a, b), scene.amplitude_gain(b, a));
}

LogDistanceModel shadowed_model(double sigma_db) {
  LogDistanceModel model;
  model.shadowing_sigma_db = sigma_db;
  return model;
}

TEST(Scene, ShadowedGainIsReciprocal) {
  // The shadowing draw is keyed on the unordered pair, so links stay
  // reciprocal within a coherence block (the old per-call draw from a
  // shared RNG made gain(a,b) != gain(b,a)).
  Scene scene(shadowed_model(6.0), /*shadowing_seed=*/99);
  const auto a = scene.add_device({"a", DeviceKind::kTag, {0.0, 0.0}});
  const auto b = scene.add_device({"b", DeviceKind::kTag, {7.0, 3.0}});
  for (std::uint64_t block = 0; block < 4; ++block) {
    EXPECT_DOUBLE_EQ(scene.amplitude_gain(a, b, block),
                     scene.amplitude_gain(b, a, block));
    EXPECT_DOUBLE_EQ(scene.shadowing_db(a, b, block),
                     scene.shadowing_db(b, a, block));
  }
}

TEST(Scene, ShadowingRedrawsPerCoherenceBlock) {
  Scene scene(shadowed_model(6.0), 99);
  const auto a = scene.add_device({"a", DeviceKind::kTag, {0.0, 0.0}});
  const auto b = scene.add_device({"b", DeviceKind::kTag, {4.0, 0.0}});
  EXPECT_NE(scene.shadowing_db(a, b, 0), scene.shadowing_db(a, b, 1));
}

TEST(Scene, ShadowedGainDeterministicAndQueryOrderFree) {
  // Two scenes with the same seed agree; querying other pairs first
  // must not advance any hidden state (per-call draws used to).
  Scene s1(shadowed_model(6.0), 42);
  Scene s2(shadowed_model(6.0), 42);
  for (auto* s : {&s1, &s2}) {
    s->add_device({"a", DeviceKind::kTag, {0.0, 0.0}});
    s->add_device({"b", DeviceKind::kTag, {4.0, 0.0}});
    s->add_device({"c", DeviceKind::kTag, {0.0, 4.0}});
  }
  (void)s2.amplitude_gain(1, 2, 0);  // extra query before the probe
  (void)s2.amplitude_gain(0, 2, 7);
  EXPECT_DOUBLE_EQ(s1.amplitude_gain(0, 1, 3), s2.amplitude_gain(0, 1, 3));

  Scene s3(shadowed_model(6.0), 43);
  s3.add_device({"a", DeviceKind::kTag, {0.0, 0.0}});
  s3.add_device({"b", DeviceKind::kTag, {4.0, 0.0}});
  EXPECT_NE(s1.amplitude_gain(0, 1, 3), s3.amplitude_gain(0, 1, 3));
}

TEST(Scene, TagToTagLinksStayReciprocalAmongGatewayQueries) {
  // The relay fabric rides tag<->tag gains from the same scene that
  // serves the tag<->gateway links, so the pair-keyed shadowing must
  // hold up with both link classes interleaved: every tag-tag draw
  // reciprocal, and never perturbed by tag-gateway queries in between.
  Scene scene(shadowed_model(6.0), /*shadowing_seed=*/7);
  const auto tx = scene.add_device({"tv", DeviceKind::kAmbientTx, {-30, 0}});
  const auto gw = scene.add_device({"gw", DeviceKind::kReceiver, {0.0, 0.0}});
  const auto t0 = scene.add_device({"t0", DeviceKind::kTag, {5.0, 0.0}});
  const auto t1 = scene.add_device({"t1", DeviceKind::kTag, {11.0, 0.0}});
  const auto t2 = scene.add_device({"t2", DeviceKind::kTag, {17.0, 2.0}});

  for (std::uint64_t block = 0; block < 4; ++block) {
    // Interleave gateway-side queries between both directions of each
    // tag-tag probe: reciprocity must be a pure pair property.
    (void)scene.amplitude_gain(tx, t0, block);
    const double hop01 = scene.amplitude_gain(t0, t1, block);
    (void)scene.amplitude_gain(t1, gw, block);
    EXPECT_DOUBLE_EQ(hop01, scene.amplitude_gain(t1, t0, block));
    const double hop12 = scene.amplitude_gain(t1, t2, block);
    (void)scene.amplitude_gain(gw, t2, block);
    EXPECT_DOUBLE_EQ(hop12, scene.amplitude_gain(t2, t1, block));
    // Distinct pairs carry independent draws: the two hops of a relay
    // chain must not share one shadowing realisation.
    EXPECT_NE(scene.shadowing_db(t0, t1, block),
              scene.shadowing_db(t1, t2, block));
    EXPECT_NE(scene.shadowing_db(t0, t1, block),
              scene.shadowing_db(t1, gw, block));
  }
}

TEST(Scene, TagToTagShadowingRedrawsIndependentlyOfGatewayLinks) {
  // Per-block redraws are keyed on (pair, block): a tag-tag link must
  // change across coherence blocks, and its draw for a given block must
  // not depend on which other links were queried first.
  Scene s1(shadowed_model(6.0), 21);
  Scene s2(shadowed_model(6.0), 21);
  for (auto* s : {&s1, &s2}) {
    s->add_device({"gw", DeviceKind::kReceiver, {0.0, 0.0}});
    s->add_device({"t0", DeviceKind::kTag, {5.0, 0.0}});
    s->add_device({"t1", DeviceKind::kTag, {11.0, 0.0}});
  }
  EXPECT_NE(s1.shadowing_db(1, 2, 0), s1.shadowing_db(1, 2, 1));
  // s2 hammers gateway links first; the tag-tag draw is unmoved.
  for (std::uint64_t block = 0; block < 8; ++block) {
    (void)s2.amplitude_gain(0, 1, block);
    (void)s2.amplitude_gain(0, 2, block);
  }
  for (std::uint64_t block = 0; block < 4; ++block) {
    EXPECT_DOUBLE_EQ(s1.amplitude_gain(1, 2, block),
                     s2.amplitude_gain(1, 2, block));
  }
}

TEST(Scene, ShadowingDisabledMatchesPlainPathloss) {
  Scene scene;  // sigma = 0
  const auto a = scene.add_device({"a", DeviceKind::kTag, {0.0, 0.0}});
  const auto b = scene.add_device({"b", DeviceKind::kTag, {4.0, 0.0}});
  EXPECT_DOUBLE_EQ(scene.shadowing_db(a, b, 0), 0.0);
  EXPECT_DOUBLE_EQ(scene.power_gain(a, b),
                   scene.pathloss_model().power_gain(4.0));
}

TEST(Scene, CoincidentDevicesDoNotDivideByZero) {
  Scene scene;
  const auto a = scene.add_device({"a", DeviceKind::kTag, {1.0, 1.0}});
  const auto b = scene.add_device({"b", DeviceKind::kTag, {1.0, 1.0}});
  EXPECT_TRUE(std::isfinite(scene.amplitude_gain(a, b)));
}

TEST(Scene, FindFirstByKind) {
  Scene scene;
  scene.add_device({"t1", DeviceKind::kTag, {0, 0}});
  const auto tx = scene.add_device({"tv", DeviceKind::kAmbientTx, {0, 0}});
  EXPECT_EQ(scene.find_first(DeviceKind::kAmbientTx), tx);
  EXPECT_EQ(scene.find_first(DeviceKind::kReceiver), SIZE_MAX);
}

TEST(Scene, FindFirstOnEmptyScene) {
  const Scene scene;
  EXPECT_EQ(scene.num_devices(), 0u);
  EXPECT_EQ(scene.find_first(DeviceKind::kAmbientTx), SIZE_MAX);
  EXPECT_EQ(scene.find_first(DeviceKind::kTag), SIZE_MAX);
  EXPECT_EQ(scene.find_first(DeviceKind::kReceiver), SIZE_MAX);
}

}  // namespace
}  // namespace fdb::channel
