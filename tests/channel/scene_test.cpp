#include "channel/scene.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace fdb::channel {
namespace {

TEST(Scene, DistanceMetric) {
  EXPECT_DOUBLE_EQ(distance_m({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(distance_m({1, 1}, {1, 1}), 0.0);
}

TEST(Scene, AddAndQueryDevices) {
  Scene scene;
  const auto tv = scene.add_device(
      {"tv", DeviceKind::kAmbientTx, {0.0, 0.0}});
  const auto tag = scene.add_device({"tag", DeviceKind::kTag, {5.0, 0.0}});
  EXPECT_EQ(scene.num_devices(), 2u);
  EXPECT_EQ(scene.device(tv).name, "tv");
  EXPECT_EQ(scene.device(tag).kind, DeviceKind::kTag);
}

TEST(Scene, GainFallsWithDistance) {
  Scene scene;
  const auto tx = scene.add_device(
      {"tx", DeviceKind::kAmbientTx, {0.0, 0.0}});
  const auto near = scene.add_device({"near", DeviceKind::kTag, {2.0, 0.0}});
  const auto far = scene.add_device({"far", DeviceKind::kTag, {20.0, 0.0}});
  EXPECT_GT(scene.power_gain(tx, near), scene.power_gain(tx, far));
}

TEST(Scene, GainSymmetric) {
  Scene scene;
  const auto a = scene.add_device({"a", DeviceKind::kTag, {0.0, 0.0}});
  const auto b = scene.add_device({"b", DeviceKind::kTag, {7.0, 3.0}});
  EXPECT_DOUBLE_EQ(scene.amplitude_gain(a, b), scene.amplitude_gain(b, a));
}

TEST(Scene, CoincidentDevicesDoNotDivideByZero) {
  Scene scene;
  const auto a = scene.add_device({"a", DeviceKind::kTag, {1.0, 1.0}});
  const auto b = scene.add_device({"b", DeviceKind::kTag, {1.0, 1.0}});
  EXPECT_TRUE(std::isfinite(scene.amplitude_gain(a, b)));
}

TEST(Scene, FindFirstByKind) {
  Scene scene;
  scene.add_device({"t1", DeviceKind::kTag, {0, 0}});
  const auto tx = scene.add_device({"tv", DeviceKind::kAmbientTx, {0, 0}});
  EXPECT_EQ(scene.find_first(DeviceKind::kAmbientTx), tx);
  EXPECT_EQ(scene.find_first(DeviceKind::kReceiver), SIZE_MAX);
}

}  // namespace
}  // namespace fdb::channel
