#include "channel/ambient_source.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace fdb::channel {
namespace {

double mean_power(const std::vector<cf32>& samples) {
  double p = 0.0;
  for (const cf32 s : samples) p += std::norm(s);
  return p / static_cast<double>(samples.size());
}

TEST(CwSource, UnitConstantEnvelope) {
  CwSource src;
  std::vector<cf32> out;
  src.generate(1000, out);
  for (const cf32 s : out) {
    EXPECT_NEAR(std::abs(s), 1.0f, 1e-5f);
  }
}

TEST(CwSource, PhaseDriftRotates) {
  CwSource src(0.01);
  std::vector<cf32> out;
  src.generate(1000, out);
  // Envelope still unit, but phase moves.
  EXPECT_NEAR(std::abs(out.back()), 1.0f, 1e-4f);
  EXPECT_GT(std::abs(std::arg(out[500]) - std::arg(out[0])), 0.1);
}

TEST(CwSource, ResetRestoresPhase) {
  CwSource src(0.05);
  std::vector<cf32> a, b;
  src.generate(100, a);
  src.reset();
  src.generate(100, b);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_FLOAT_EQ(a[i].real(), b[i].real());
  }
}

TEST(OfdmTvSource, UnitAveragePower) {
  OfdmTvSource src({.fft_size = 256, .cp_len = 32, .occupancy = 0.8,
                    .seed = 7});
  std::vector<cf32> out;
  src.generate(100000, out);
  EXPECT_NEAR(mean_power(out), 1.0, 0.05);
}

TEST(OfdmTvSource, EnvelopeFluctuates) {
  // The whole point of the OFDM arm: per-sample envelope varies a lot,
  // unlike CW.
  OfdmTvSource src({.fft_size = 128, .cp_len = 16, .occupancy = 0.9,
                    .seed = 3});
  std::vector<cf32> out;
  src.generate(20000, out);
  double min_env = 1e9, max_env = 0.0;
  for (const cf32 s : out) {
    min_env = std::min(min_env, static_cast<double>(std::abs(s)));
    max_env = std::max(max_env, static_cast<double>(std::abs(s)));
  }
  EXPECT_GT(max_env / std::max(min_env, 1e-9), 5.0);
}

TEST(OfdmTvSource, DeterministicForSeed) {
  OfdmParams params{.fft_size = 64, .cp_len = 8, .occupancy = 0.5,
                    .seed = 11};
  OfdmTvSource a(params), b(params);
  std::vector<cf32> out_a, out_b;
  a.generate(500, out_a);
  b.generate(500, out_b);
  for (std::size_t i = 0; i < out_a.size(); ++i) {
    EXPECT_FLOAT_EQ(out_a[i].real(), out_b[i].real());
    EXPECT_FLOAT_EQ(out_a[i].imag(), out_b[i].imag());
  }
}

TEST(OfdmTvSource, GenerateAcrossSymbolBoundaries) {
  OfdmTvSource src({.fft_size = 64, .cp_len = 8, .occupancy = 0.7,
                    .seed = 5});
  // Request sizes that do not divide the symbol length.
  std::vector<cf32> a, b;
  src.generate(50, a);
  src.generate(100, b);
  EXPECT_EQ(a.size(), 50u);
  EXPECT_EQ(b.size(), 100u);
}

TEST(MakeAmbientSource, FactorySelectsKind) {
  EXPECT_STREQ(make_ambient_source("cw", 1)->name(), "cw");
  EXPECT_STREQ(make_ambient_source("ofdm_tv", 1)->name(), "ofdm_tv");
}

}  // namespace
}  // namespace fdb::channel
