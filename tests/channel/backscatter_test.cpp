#include "channel/backscatter.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace fdb::channel {
namespace {

TEST(ReflectionStates, OokMagnitudes) {
  const auto states = ReflectionStates::ook(0.49);
  EXPECT_NEAR(std::abs(states.gamma_absorb), 0.0f, 1e-6f);
  EXPECT_NEAR(std::abs(states.gamma_reflect), 0.7f, 1e-6f);
}

TEST(ReflectionStates, BpskOppositePhases) {
  const auto states = ReflectionStates::bpsk(0.25);
  EXPECT_NEAR(std::abs(states.gamma_absorb), 0.5f, 1e-6f);
  EXPECT_NEAR(std::abs(states.gamma_reflect), 0.5f, 1e-6f);
  EXPECT_NEAR(std::abs(states.gamma_reflect + states.gamma_absorb), 0.0f,
              1e-6f);
}

TEST(ReflectionStates, DifferentialAmplitude) {
  EXPECT_NEAR(ReflectionStates::ook(0.25).differential_amplitude(), 0.5f,
              1e-6f);
  EXPECT_NEAR(ReflectionStates::bpsk(0.25).differential_amplitude(), 1.0f,
              1e-6f);
}

TEST(BackscatterModulator, ReflectScalesIncident) {
  BackscatterModulator mod(ReflectionStates::ook(0.64));
  const cf32 incident{2.0f, 0.0f};
  EXPECT_NEAR(std::abs(mod.reflect(incident, true)), 1.6f, 1e-5f);
  EXPECT_NEAR(std::abs(mod.reflect(incident, false)), 0.0f, 1e-6f);
}

TEST(BackscatterModulator, BlockReflection) {
  BackscatterModulator mod(ReflectionStates::ook(1.0));
  const std::vector<cf32> incident(4, cf32{1.0f, 0.0f});
  const std::vector<std::uint8_t> states = {0, 1, 0, 1};
  std::vector<cf32> out(4);
  mod.reflect(incident, states, out);
  EXPECT_NEAR(std::abs(out[0]), 0.0f, 1e-6f);
  EXPECT_NEAR(std::abs(out[1]), 1.0f, 1e-6f);
  EXPECT_NEAR(std::abs(out[2]), 0.0f, 1e-6f);
  EXPECT_NEAR(std::abs(out[3]), 1.0f, 1e-6f);
}

TEST(BackscatterModulator, HarvestFractionComplementsReflection) {
  BackscatterModulator mod(ReflectionStates::ook(0.36));
  EXPECT_NEAR(mod.harvest_fraction(false), 1.0, 1e-9);   // absorbing
  EXPECT_NEAR(mod.harvest_fraction(true), 0.64, 1e-6);   // 1 - 0.36
}

TEST(BackscatterModulator, EnergyConservation) {
  // Reflected power + harvestable power <= incident power, all states.
  for (const double rho : {0.1, 0.5, 0.9, 1.0}) {
    BackscatterModulator mod(ReflectionStates::ook(rho));
    for (const bool state : {false, true}) {
      const double reflected =
          std::norm(mod.reflect({1.0f, 0.0f}, state));
      EXPECT_LE(reflected + mod.harvest_fraction(state), 1.0 + 1e-6);
    }
  }
}

}  // namespace
}  // namespace fdb::channel
