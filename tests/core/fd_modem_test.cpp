// Full-duplex modem tests on synthetic envelopes: both directions
// decoded from the same construction the link simulator uses, but with
// hand-controlled levels so failures localise.
#include "core/fd_modem.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace fdb::core {
namespace {

FdModemConfig small_config() {
  auto config = FdModemConfig::make(/*block_size_bytes=*/4,
                                    /*samples_per_chip=*/6);
  return config;
}

TEST(FdModemConfig, MakeIsConsistent) {
  const auto config = small_config();
  EXPECT_TRUE(config.consistent());
  EXPECT_EQ(config.block_bits(), 4u * 8u + 8u);
  EXPECT_EQ(config.data.rates.asymmetry, config.block_bits());
}

TEST(FdModemConfig, InconsistentWhenAsymmetryDiverges) {
  auto config = small_config();
  config.data.rates.asymmetry = 10;
  EXPECT_FALSE(config.consistent());
}

TEST(FdDataTransmitter, BurstLayout) {
  const auto config = small_config();
  FdDataTransmitter tx(config);
  const std::vector<std::uint8_t> payload(12, 0xC3);  // 3 blocks
  EXPECT_EQ(tx.num_blocks(12), 3u);
  const auto states = tx.modulate(payload);
  EXPECT_EQ(states.size(), tx.burst_samples(12));
  EXPECT_EQ(tx.preamble_samples(),
            phy::default_preamble_length() * 6u);
}

TEST(FdDataReceiver, HalfDuplexDecodeWithoutOwnStates) {
  const auto config = small_config();
  FdDataTransmitter tx(config);
  FdDataReceiver rx(config);
  Rng rng(3);
  std::vector<std::uint8_t> payload(16);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.uniform_int(256));

  const auto states = tx.modulate(payload);
  std::vector<float> env;
  env.insert(env.end(), 100, 1.0f);
  for (const auto s : states) env.push_back(s ? 1.5f : 1.0f);
  env.insert(env.end(), 100, 1.0f);

  const auto result = rx.demodulate(env, {}, payload.size());
  EXPECT_EQ(result.status, Status::kOk);
  EXPECT_EQ(result.blocks.blocks_failed, 0u);
  EXPECT_EQ(result.blocks.payload, payload);
}

TEST(FdDataReceiver, DecodesWhileTransmittingFeedback) {
  // B's own feedback modulation scales its received envelope; the
  // normaliser must remove it and the data must still decode.
  const auto config = small_config();
  FdDataTransmitter tx(config);
  FdDataReceiver rx(config);
  FeedbackEncoder fb_enc(config.data.rates, config.feedback);
  Rng rng(5);
  std::vector<std::uint8_t> payload(16);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.uniform_int(256));

  const auto states_a = tx.modulate(payload);
  std::vector<std::uint8_t> fb_bits(8);
  for (auto& b : fb_bits) b = rng.chance(0.5) ? 1 : 0;
  const auto fb_states_raw = fb_enc.encode(fb_bits);

  const std::size_t pad = 400;
  const std::size_t total = states_a.size() + 2 * pad;
  std::vector<std::uint8_t> own_states(total, 0);
  const std::size_t data_start = pad + tx.preamble_samples();
  for (std::size_t i = 0;
       i < fb_states_raw.size() && data_start + i < total; ++i) {
    own_states[data_start + i] = fb_states_raw[i];
  }

  std::vector<float> env(total);
  for (std::size_t i = 0; i < total; ++i) {
    const bool a_on =
        i >= pad && i < pad + states_a.size() && states_a[i - pad];
    double level = 1.0;
    if (a_on) level += 0.4;                  // A's data reflection
    if (own_states[i]) level *= 1.35;        // B's own reflection scales
    env[i] = static_cast<float>(level);
  }

  const auto result = rx.demodulate(env, own_states, payload.size());
  EXPECT_EQ(result.status, Status::kOk) << "blocks failed: "
                                        << result.blocks.blocks_failed;
  EXPECT_EQ(result.blocks.payload, payload);
}

TEST(FdFeedbackReceiver, DecodesFeedbackThroughOwnData) {
  const auto config = small_config();
  FdDataTransmitter tx(config);
  FdFeedbackReceiver fb_rx(config);
  FeedbackEncoder fb_enc(config.data.rates, config.feedback);
  Rng rng(7);

  std::vector<std::uint8_t> payload(16);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.uniform_int(256));
  const auto states_a = tx.modulate(payload);

  std::vector<std::uint8_t> fb_bits(6);
  for (auto& b : fb_bits) b = rng.chance(0.5) ? 1 : 0;
  const auto fb_states_raw = fb_enc.encode(fb_bits);

  // The capture must cover all six feedback slots; A idles (absorbing)
  // after its burst while the tail verdicts drain.
  const std::size_t data_start = tx.preamble_samples();
  const std::size_t total = data_start + fb_states_raw.size();
  std::vector<std::uint8_t> fb_states(total, 0);
  std::copy(fb_states_raw.begin(), fb_states_raw.end(),
            fb_states.begin() + static_cast<long>(data_start));
  std::vector<std::uint8_t> own(total, 0);
  std::copy(states_a.begin(), states_a.end(), own.begin());

  // A's antenna: own strong reflection + B's weak feedback reflection.
  std::vector<float> env(total);
  for (std::size_t i = 0; i < total; ++i) {
    double level = 1.0;
    if (own[i]) level += 0.6;        // own (huge relative to feedback)
    if (fb_states[i]) level += 0.08; // B's feedback
    env[i] = static_cast<float>(level);
  }

  const auto result = fb_rx.decode(env, own, data_start, fb_bits.size());
  ASSERT_GE(result.bits.size(), fb_bits.size());
  for (std::size_t i = 0; i < fb_bits.size(); ++i) {
    EXPECT_EQ(result.bits[i], fb_bits[i]) << "feedback bit " << i;
  }
}

TEST(FdDataReceiver, CorruptedBlockIsolated) {
  const auto config = small_config();
  FdDataTransmitter tx(config);
  FdDataReceiver rx(config);
  Rng rng(9);
  std::vector<std::uint8_t> payload(16);  // 4 blocks
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.uniform_int(256));

  const auto states = tx.modulate(payload);
  std::vector<float> env;
  env.insert(env.end(), 100, 1.0f);
  for (const auto s : states) env.push_back(s ? 1.5f : 1.0f);
  env.insert(env.end(), 100, 1.0f);

  // Destroy block 2's samples: preamble + 2 blocks in, flatten a block.
  const std::size_t spb = config.data.rates.samples_per_bit();
  const std::size_t block_samples = config.block_bits() * spb;
  const std::size_t block2_start =
      100 + tx.preamble_samples() + 2 * block_samples;
  for (std::size_t i = block2_start; i < block2_start + block_samples; ++i) {
    env[i] = 1.25f;  // midway: chips become noise
  }

  const auto result = rx.demodulate(env, {}, payload.size());
  EXPECT_EQ(result.status, Status::kCrcMismatch);
  ASSERT_EQ(result.blocks.block_ok.size(), 4u);
  EXPECT_TRUE(result.blocks.block_ok[0]);
  EXPECT_TRUE(result.blocks.block_ok[1]);
  EXPECT_FALSE(result.blocks.block_ok[2]);
  // Block 3 may or may not survive the slicer transient; block 0/1 must.
}

TEST(FdDataTransmitter, RetransmissionBurstContainsOnlyRequestedBlocks) {
  const auto config = small_config();
  FdDataTransmitter tx(config);
  const std::vector<std::uint8_t> payload(16, 0x11);
  const std::vector<std::size_t> wanted = {1, 3};
  const auto states = tx.modulate_blocks_raw(payload, 4, wanted);
  // Two blocks of (4*8+8) bits, 2 chips/bit, 6 samples/chip.
  EXPECT_EQ(states.size(), 2u * 40u * 2u * 6u);
}

}  // namespace
}  // namespace fdb::core
