#include "core/self_interference.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace fdb::core {
namespace {

TEST(Normalizer, RemovesKnownScaleChange) {
  // Envelope is 1.0 while own state is 0, and 1.4 while own state is 1
  // (own reflection raises the level). After warm-up the normalised
  // stream should be flat at ~1.0.
  SelfInterferenceNormalizer normalizer({.ema_samples = 64,
                                         .warmup_samples = 32});
  // Alternate states in runs of 16 samples.
  float last_state1_output = 0.0f;
  for (int i = 0; i < 4000; ++i) {
    const bool state = (i / 16) % 2 == 1;
    const float env = state ? 1.4f : 1.0f;
    const float y = normalizer.process(env, state);
    if (state && i > 3000) last_state1_output = y;
  }
  EXPECT_NEAR(last_state1_output, 1.0f, 0.02f);
  EXPECT_NEAR(normalizer.gain(), 1.0 / 1.4, 0.02);
}

TEST(Normalizer, PreservesDataModulationOnTop) {
  // Data signal (small swing d) rides on both own-state levels; after
  // normalisation the swing must survive in comparable size.
  SelfInterferenceNormalizer normalizer({.ema_samples = 256,
                                         .warmup_samples = 64});
  Rng rng(3);
  std::vector<float> out0, out1;
  for (int i = 0; i < 20000; ++i) {
    const bool own = (i / 64) % 2 == 1;
    const bool data = (i / 8) % 2 == 1;  // fast data toggling
    const float base = own ? 1.5f : 1.0f;
    const float env = base * (data ? 1.1f : 1.0f);
    const float y = normalizer.process(env, own);
    if (i > 15000) (data ? out1 : out0).push_back(y);
  }
  double m0 = 0.0, m1 = 0.0;
  for (const float v : out0) m0 += v;
  for (const float v : out1) m1 += v;
  m0 /= static_cast<double>(out0.size());
  m1 /= static_cast<double>(out1.size());
  // Data swing ~10% preserved after own-state normalisation.
  EXPECT_NEAR(m1 / m0, 1.1, 0.02);
}

TEST(Normalizer, UnityGainBeforeWarmup) {
  SelfInterferenceNormalizer normalizer({.ema_samples = 64,
                                         .warmup_samples = 1000});
  for (int i = 0; i < 100; ++i) {
    normalizer.process(2.0f, i % 2 == 1);
  }
  EXPECT_DOUBLE_EQ(normalizer.gain(), 1.0);
}

TEST(Normalizer, State0PassesThroughUnchanged) {
  SelfInterferenceNormalizer normalizer;
  for (int i = 0; i < 10; ++i) {
    EXPECT_FLOAT_EQ(normalizer.process(3.14f, false), 3.14f);
  }
}

TEST(Normalizer, BlockApiMatchesSampleApi) {
  SelfInterferenceNormalizer a({.ema_samples = 32, .warmup_samples = 8});
  SelfInterferenceNormalizer b({.ema_samples = 32, .warmup_samples = 8});
  Rng rng(5);
  std::vector<float> env(500);
  std::vector<std::uint8_t> states(500);
  for (std::size_t i = 0; i < env.size(); ++i) {
    env[i] = 1.0f + static_cast<float>(rng.uniform()) * 0.5f;
    states[i] = rng.chance(0.5) ? 1 : 0;
  }
  std::vector<float> block_out(500);
  a.process(env, states, block_out);
  for (std::size_t i = 0; i < env.size(); ++i) {
    EXPECT_FLOAT_EQ(b.process(env[i], states[i] != 0), block_out[i]);
  }
}

TEST(Normalizer, ResetClearsEstimates) {
  SelfInterferenceNormalizer normalizer({.ema_samples = 16,
                                         .warmup_samples = 4});
  for (int i = 0; i < 100; ++i) normalizer.process(2.0f, i % 2 == 1);
  normalizer.reset();
  EXPECT_DOUBLE_EQ(normalizer.gain(), 1.0);
  EXPECT_DOUBLE_EQ(normalizer.mean_state0(), 0.0);
}

TEST(Normalizer, TracksSlowChannelDrift) {
  // The per-state gain ratio stays correct while the overall level
  // drifts (fading within coherence limits).
  SelfInterferenceNormalizer normalizer({.ema_samples = 128,
                                         .warmup_samples = 32});
  float final_output = 0.0f;
  for (int i = 0; i < 30000; ++i) {
    const bool own = (i / 32) % 2 == 1;
    const float drift = 1.0f + 0.3f * static_cast<float>(i) / 30000.0f;
    const float env = drift * (own ? 1.25f : 1.0f);
    final_output = normalizer.process(env, own);
  }
  // At the end, normalised own-state output should track drift*1.0.
  EXPECT_NEAR(final_output, 1.3f, 0.05f);
}

}  // namespace
}  // namespace fdb::core
