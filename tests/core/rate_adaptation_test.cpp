#include "core/rate_adaptation.hpp"

#include <gtest/gtest.h>

#include "core/theory.hpp"
#include "util/rng.hpp"

namespace fdb::core {
namespace {

RateAdaptConfig fast_config() {
  RateAdaptConfig config;
  config.chip_ladder = {4, 8, 16, 32};
  config.window_blocks = 16;
  config.min_dwell_blocks = 16;
  config.initial_rung = 1;
  return config;
}

TEST(RateController, StartsAtInitialRung) {
  RateController controller(fast_config());
  EXPECT_EQ(controller.rung(), 1u);
  EXPECT_EQ(controller.samples_per_chip(), 8u);
}

TEST(RateController, CleanChannelClimbsToFastest) {
  RateController controller(fast_config());
  for (int i = 0; i < 200; ++i) controller.on_block_verdict(true);
  EXPECT_EQ(controller.rung(), 0u);
  EXPECT_EQ(controller.samples_per_chip(), 4u);
  EXPECT_GE(controller.upshifts(), 1u);
}

TEST(RateController, BadChannelRetreatsToSlowest) {
  RateController controller(fast_config());
  for (int i = 0; i < 400; ++i) controller.on_block_verdict(i % 2 == 0);
  EXPECT_EQ(controller.rung(), 3u);
  EXPECT_EQ(controller.samples_per_chip(), 32u);
  EXPECT_GE(controller.downshifts(), 2u);
}

TEST(RateController, DwellPreventsImmediateFlipFlop) {
  auto config = fast_config();
  config.min_dwell_blocks = 100;
  RateController controller(config);
  // 50 failures: window full but dwell not met -> no change yet.
  for (int i = 0; i < 50; ++i) controller.on_block_verdict(false);
  EXPECT_EQ(controller.rung(), 1u);
  for (int i = 0; i < 60; ++i) controller.on_block_verdict(false);
  EXPECT_EQ(controller.rung(), 2u);
}

TEST(RateController, MidLossRateDoesNotCollapse) {
  // 10% loss sits between the thresholds. Small windows occasionally
  // spike above the downshift threshold (P(>=4/16 at p=.1) ~ 7%), so
  // transient downshifts are expected — but the controller must hover
  // near the fast end, not sink to the slowest rung.
  RateController controller(fast_config());
  Rng rng(3);
  for (int i = 0; i < 64; ++i) controller.on_block_verdict(true);
  std::size_t slowest_visits = 0;
  for (int i = 0; i < 1000; ++i) {
    controller.on_block_verdict(!rng.chance(0.10));
    if (controller.rung() == controller.num_rungs() - 1) ++slowest_visits;
  }
  EXPECT_LT(slowest_visits, 100u);
  EXPECT_LE(controller.samples_per_chip(), 16u);
}

TEST(RateController, WindowLossRateTracksInput) {
  // 12.5% loss stays inside the hold band, so no shift resets the
  // window and the reported rate is exact.
  RateController controller(fast_config());
  for (int i = 0; i < 16; ++i) controller.on_block_verdict(i % 8 != 0);
  EXPECT_NEAR(controller.window_loss_rate(), 0.125, 1e-9);
}

TEST(RateController, ResetRestoresInitialState) {
  RateController controller(fast_config());
  for (int i = 0; i < 200; ++i) controller.on_block_verdict(false);
  controller.reset();
  EXPECT_EQ(controller.rung(), 1u);
  EXPECT_EQ(controller.upshifts(), 0u);
  EXPECT_EQ(controller.downshifts(), 0u);
}

TEST(RateController, ClosedLoopWithTheoryConvergesToViableRate) {
  // Channel: chip-BER derived from theory at each ladder rung. The
  // controller must settle at a rung whose block loss sits between the
  // thresholds (or the fastest viable rung).
  auto config = fast_config();
  RateController controller(config);
  Rng rng(7);
  const double delta = 0.05, sigma = 0.05;  // per-sample envelope stats
  const std::size_t block_bits = 72;
  for (int i = 0; i < 3000; ++i) {
    const double chip_ber = ook_envelope_ber(
        delta, sigma, controller.samples_per_chip());
    const double bler = block_error_rate(2.0 * chip_ber, block_bits);
    controller.on_block_verdict(!rng.chance(bler));
  }
  // At spc=4: chip BER ~ Q(1) = 0.16 -> bler ~ 1 (too fast).
  // At spc=16: chip BER ~ Q(2) = 0.023 -> bler ~ 0.96 still high...
  // At spc=32: chip BER ~ Q(2.8) = 2.5e-3 -> bler ~ 0.30.
  // The controller must end at the slowest rung here.
  EXPECT_EQ(controller.rung(), 3u);
}

TEST(RateController, SingleRungLadderNeverMoves) {
  RateAdaptConfig config;
  config.chip_ladder = {10};
  config.initial_rung = 0;
  config.window_blocks = 4;
  config.min_dwell_blocks = 4;
  RateController controller(config);
  for (int i = 0; i < 100; ++i) controller.on_block_verdict(false);
  EXPECT_EQ(controller.rung(), 0u);
  EXPECT_EQ(controller.samples_per_chip(), 10u);
}

}  // namespace
}  // namespace fdb::core
