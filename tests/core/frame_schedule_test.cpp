#include "core/frame_schedule.hpp"

#include <gtest/gtest.h>

namespace fdb::core {
namespace {

phy::RateConfig rates_with_asymmetry(std::size_t k) {
  phy::RateConfig rates;
  rates.samples_per_chip = 10;
  rates.asymmetry = k;
  return rates;
}

TEST(FrameSchedule, VerdictSlotOffsetsByDelay) {
  FrameSchedule schedule(rates_with_asymmetry(72), {.decode_delay_slots = 1});
  EXPECT_EQ(schedule.verdict_slot(0), 1u);
  EXPECT_EQ(schedule.verdict_slot(5), 6u);
}

TEST(FrameSchedule, LargerDelayShiftsAllVerdicts) {
  FrameSchedule schedule(rates_with_asymmetry(72), {.decode_delay_slots = 3});
  EXPECT_EQ(schedule.verdict_slot(0), 3u);
  EXPECT_EQ(schedule.verdict_slot(10), 13u);
}

TEST(FrameSchedule, SlotStartBitIsMultipleOfAsymmetry) {
  FrameSchedule schedule(rates_with_asymmetry(64));
  EXPECT_EQ(schedule.slot_start_bit(0), 0u);
  EXPECT_EQ(schedule.slot_start_bit(3), 192u);
}

TEST(FrameSchedule, SlotStartSampleConsistentWithRates) {
  const auto rates = rates_with_asymmetry(64);
  FrameSchedule schedule(rates);
  EXPECT_EQ(schedule.slot_start_sample(1),
            64u * rates.samples_per_bit());
}

TEST(FrameSchedule, SlotsForBlocksCoversLastVerdict) {
  FrameSchedule schedule(rates_with_asymmetry(72), {.decode_delay_slots = 2});
  EXPECT_EQ(schedule.slots_for_blocks(0), 0u);
  EXPECT_EQ(schedule.slots_for_blocks(1), 3u);   // verdict of block 0 in slot 2
  EXPECT_EQ(schedule.slots_for_blocks(4), 6u);
}

TEST(FrameSchedule, BitsPerSlotEqualsAsymmetry) {
  FrameSchedule schedule(rates_with_asymmetry(48));
  EXPECT_EQ(schedule.bits_per_slot(), 48u);
}

TEST(RateConfig, DerivedRatesConsistent) {
  phy::RateConfig rates;
  rates.sample_rate_hz = 2e6;
  rates.samples_per_chip = 20;
  rates.asymmetry = 16;
  EXPECT_EQ(rates.samples_per_bit(), 40u);
  EXPECT_EQ(rates.samples_per_feedback_bit(), 640u);
  EXPECT_DOUBLE_EQ(rates.data_rate_bps(), 50000.0);
  EXPECT_DOUBLE_EQ(rates.feedback_rate_bps(), 3125.0);
  EXPECT_DOUBLE_EQ(rates.data_rate_bps() / rates.feedback_rate_bps(), 16.0);
}

}  // namespace
}  // namespace fdb::core
