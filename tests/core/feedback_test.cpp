#include "core/feedback.hpp"

#include <gtest/gtest.h>

#include "phy/line_code.hpp"
#include "util/rng.hpp"

namespace fdb::core {
namespace {

phy::RateConfig small_rates() {
  phy::RateConfig rates;
  rates.samples_per_chip = 4;
  rates.asymmetry = 8;  // feedback bit = 8 data bits = 64 samples
  return rates;
}

// Builds the transmitter-side envelope: A's own FM0 data pattern rides
// at `data_swing` on top of a base level, and B's feedback adds
// `fb_swing` when B reflects. This is what A's antenna sees.
struct Waveform {
  std::vector<float> envelope;
  std::vector<std::uint8_t> own_states;
};

Waveform make_waveform(const phy::RateConfig& rates,
                       const std::vector<std::uint8_t>& fb_states,
                       Rng& rng, double data_swing, double fb_swing,
                       double noise_sigma) {
  // A transmits random FM0 data continuously.
  const std::size_t num_bits =
      fb_states.size() / rates.samples_per_bit() + 2;
  std::vector<std::uint8_t> data_bits(num_bits);
  for (auto& b : data_bits) b = rng.chance(0.5) ? 1 : 0;
  const auto chips = phy::encode(phy::LineCode::kFm0, data_bits);
  Waveform wf;
  for (const auto chip : chips) {
    for (std::size_t s = 0; s < rates.samples_per_chip; ++s) {
      wf.own_states.push_back(chip);
    }
  }
  wf.own_states.resize(fb_states.size());
  wf.envelope.resize(fb_states.size());
  for (std::size_t i = 0; i < fb_states.size(); ++i) {
    double env = 1.0;
    if (wf.own_states[i]) env += data_swing;   // own reflection
    if (fb_states[i]) env += fb_swing;         // B's feedback reflection
    env += rng.normal(0.0, noise_sigma);
    wf.envelope[i] = static_cast<float>(env);
  }
  return wf;
}

class FeedbackRoundTrip
    : public ::testing::TestWithParam<std::pair<FeedbackCoding,
                                                FeedbackAverage>> {};

TEST_P(FeedbackRoundTrip, CleanChannel) {
  const auto [coding, average] = GetParam();
  const auto rates = small_rates();
  FeedbackConfig config{.coding = coding, .average = average};
  FeedbackEncoder encoder(rates, config);
  FeedbackDecoder decoder(rates, config);
  Rng rng(7);

  std::vector<std::uint8_t> bits(24);
  for (auto& b : bits) b = rng.chance(0.5) ? 1 : 0;
  const auto fb_states = encoder.encode(bits);
  const auto wf = make_waveform(rates, fb_states, rng, /*data_swing=*/0.5,
                                /*fb_swing=*/0.2, /*noise=*/0.0);
  const auto result = decoder.decode(wf.envelope, wf.own_states,
                                     bits.size());
  ASSERT_EQ(result.bits.size(), bits.size());
  EXPECT_EQ(result.bits, bits);
}

TEST_P(FeedbackRoundTrip, SurvivesModerateNoise) {
  const auto [coding, average] = GetParam();
  const auto rates = small_rates();
  FeedbackConfig config{.coding = coding, .average = average};
  FeedbackEncoder encoder(rates, config);
  FeedbackDecoder decoder(rates, config);
  Rng rng(11);

  std::size_t errors = 0, total = 0;
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<std::uint8_t> bits(16);
    for (auto& b : bits) b = rng.chance(0.5) ? 1 : 0;
    const auto fb_states = encoder.encode(bits);
    const auto wf = make_waveform(rates, fb_states, rng, 0.5, 0.2, 0.05);
    const auto result =
        decoder.decode(wf.envelope, wf.own_states, bits.size());
    for (std::size_t i = 0; i < result.bits.size(); ++i) {
      ++total;
      if (result.bits[i] != bits[i]) ++errors;
    }
  }
  // Feedback averages over 32+ samples per decision: sigma_eff small.
  EXPECT_LT(static_cast<double>(errors) / static_cast<double>(total), 0.02);
}

INSTANTIATE_TEST_SUITE_P(
    CodingsAndAverages, FeedbackRoundTrip,
    ::testing::Values(
        std::make_pair(FeedbackCoding::kManchester,
                       FeedbackAverage::kSelfGated),
        std::make_pair(FeedbackCoding::kManchester, FeedbackAverage::kWindow),
        std::make_pair(FeedbackCoding::kNrz, FeedbackAverage::kSelfGated),
        std::make_pair(FeedbackCoding::kNrz, FeedbackAverage::kWindow)),
    [](const auto& info) {
      std::string name =
          info.param.first == FeedbackCoding::kManchester ? "manchester"
                                                          : "nrz";
      name += info.param.second == FeedbackAverage::kSelfGated
                  ? "_selfgated"
                  : "_window";
      return name;
    });

TEST(FeedbackEncoder, NrzPrependsCalibrationSlots) {
  const auto rates = small_rates();
  FeedbackEncoder encoder(rates, {.coding = FeedbackCoding::kNrz,
                                  .preamble_slots = 4});
  const std::vector<std::uint8_t> bits = {1, 0};
  const auto states = encoder.encode(bits);
  EXPECT_EQ(states.size(), (4 + 2) * rates.samples_per_feedback_bit());
  // Calibration slots alternate 0,1,0,1.
  const std::size_t w = rates.samples_per_feedback_bit();
  EXPECT_EQ(states[0], 0);
  EXPECT_EQ(states[w], 1);
  EXPECT_EQ(states[2 * w], 0);
}

TEST(FeedbackEncoder, ManchesterPrependsPilotAndSplitsWindows) {
  const auto rates = small_rates();
  FeedbackEncoder encoder(rates, {.coding = FeedbackCoding::kManchester,
                                  .pilot_slots = 1});
  const std::vector<std::uint8_t> bits = {0};
  const auto states = encoder.encode(bits);
  const std::size_t w = rates.samples_per_feedback_bit();
  ASSERT_EQ(states.size(), 2 * w);  // pilot + payload bit
  // Pilot is a '1': high half then low half.
  EXPECT_EQ(states[0], 1);
  EXPECT_EQ(states[w / 2], 0);
  // Payload '0' = low half then high half.
  EXPECT_EQ(states[w], 0);
  EXPECT_EQ(states[w + w / 2], 1);
}

TEST(FeedbackDecoder, PilotResolvesInvertedPolarity) {
  // Invert the whole waveform (destructive fading phase): the pilot
  // must flip the payload decisions back.
  const auto rates = small_rates();
  FeedbackConfig config{.coding = FeedbackCoding::kManchester,
                        .average = FeedbackAverage::kWindow};
  FeedbackEncoder encoder(rates, config);
  FeedbackDecoder decoder(rates, config);
  const std::vector<std::uint8_t> bits = {1, 0, 1, 1, 0, 0};
  const auto states = encoder.encode(bits);
  std::vector<float> envelope(states.size());
  for (std::size_t i = 0; i < states.size(); ++i) {
    envelope[i] = states[i] ? 0.9f : 1.1f;  // reflect DARKENS the env
  }
  const auto result = decoder.decode(envelope, {}, bits.size());
  ASSERT_EQ(result.bits.size(), bits.size());
  EXPECT_EQ(result.bits, bits);
}

TEST(FeedbackDecoder, NrzCalibrationResolvesInvertedPolarity) {
  const auto rates = small_rates();
  FeedbackConfig config{.coding = FeedbackCoding::kNrz,
                        .average = FeedbackAverage::kWindow,
                        .preamble_slots = 4};
  FeedbackEncoder encoder(rates, config);
  FeedbackDecoder decoder(rates, config);
  const std::vector<std::uint8_t> bits = {1, 0, 0, 1, 1, 0};
  const auto states = encoder.encode(bits);
  std::vector<float> envelope(states.size());
  for (std::size_t i = 0; i < states.size(); ++i) {
    envelope[i] = states[i] ? 0.8f : 1.2f;  // inverted channel
  }
  const auto result = decoder.decode(envelope, {}, bits.size());
  ASSERT_EQ(result.bits.size(), bits.size());
  EXPECT_EQ(result.bits, bits);
}

TEST(FeedbackDecoder, SelfGatedIgnoresOwnOnSamples) {
  // Construct a pathological case where own-state samples carry a huge
  // disturbance; the self-gated decoder must be immune.
  const auto rates = small_rates();
  FeedbackConfig config{.coding = FeedbackCoding::kManchester,
                        .average = FeedbackAverage::kSelfGated};
  FeedbackEncoder encoder(rates, config);
  FeedbackDecoder decoder(rates, config);
  Rng rng(13);

  std::vector<std::uint8_t> bits = {1, 0, 1, 1, 0};
  const auto fb_states = encoder.encode(bits);
  auto wf = make_waveform(rates, fb_states, rng, 0.5, 0.2, 0.0);
  // Blow up own-state samples by 10x.
  for (std::size_t i = 0; i < wf.envelope.size(); ++i) {
    if (wf.own_states[i]) wf.envelope[i] *= 10.0f;
  }
  const auto result = decoder.decode(wf.envelope, wf.own_states,
                                     bits.size());
  EXPECT_EQ(result.bits, bits);
}

TEST(FeedbackDecoder, TruncatedCaptureYieldsFewerBits) {
  const auto rates = small_rates();
  FeedbackConfig config{.coding = FeedbackCoding::kManchester};
  FeedbackEncoder encoder(rates, config);
  FeedbackDecoder decoder(rates, config);
  Rng rng(17);

  std::vector<std::uint8_t> bits(10, 1);
  const auto fb_states = encoder.encode(bits);
  const auto wf = make_waveform(rates, fb_states, rng, 0.5, 0.2, 0.0);
  // Give the decoder only half the capture.
  const std::span<const float> half(wf.envelope.data(),
                                    wf.envelope.size() / 2);
  const std::span<const std::uint8_t> half_states(wf.own_states.data(),
                                                  wf.own_states.size() / 2);
  const auto result = decoder.decode(half, half_states, bits.size());
  EXPECT_LT(result.bits.size(), bits.size());
  EXPECT_GT(result.bits.size(), 0u);
}

}  // namespace
}  // namespace fdb::core
