#include "core/theory.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace fdb::core {
namespace {

TEST(Qfunc, KnownValues) {
  EXPECT_NEAR(qfunc(0.0), 0.5, 1e-12);
  EXPECT_NEAR(qfunc(1.0), 0.158655, 1e-5);
  EXPECT_NEAR(qfunc(3.0), 0.00134990, 1e-7);
  EXPECT_NEAR(qfunc(-1.0), 1.0 - qfunc(1.0), 1e-12);
}

TEST(OokBer, MoreAveragingLowersBer) {
  const double b1 = ook_envelope_ber(0.1, 0.2, 1);
  const double b8 = ook_envelope_ber(0.1, 0.2, 8);
  const double b64 = ook_envelope_ber(0.1, 0.2, 64);
  EXPECT_GT(b1, b8);
  EXPECT_GT(b8, b64);
}

TEST(OokBer, LargerSwingLowersBer) {
  EXPECT_GT(ook_envelope_ber(0.05, 0.2, 4), ook_envelope_ber(0.2, 0.2, 4));
}

TEST(OokBer, ZeroSwingIsCoinFlip) {
  EXPECT_NEAR(ook_envelope_ber(0.0, 0.2, 16), 0.5, 1e-12);
}

TEST(FeedbackBer, LongerWindowLowersBer) {
  EXPECT_GT(feedback_ber(0.05, 0.2, 64, true),
            feedback_ber(0.05, 0.2, 512, true));
}

TEST(FeedbackBer, FeedbackBeatsDataAtSameSwing) {
  // The slow stream averages over far more samples than one chip.
  const double data = ook_envelope_ber(0.05, 0.2, 8);
  const double fb = feedback_ber(0.05, 0.2, 8 * 2 * 72, true);
  EXPECT_LT(fb, data);
}

TEST(BlockErrorRate, MatchesClosedForm) {
  EXPECT_NEAR(block_error_rate(0.01, 100), 1.0 - std::pow(0.99, 100), 1e-12);
  EXPECT_DOUBLE_EQ(block_error_rate(0.0, 1000), 0.0);
  EXPECT_NEAR(block_error_rate(1.0, 3), 1.0, 1e-12);
}

TEST(ArqModels, AllEqualAtZeroBer) {
  ArqModelParams params;
  const double sw = stop_and_wait_goodput(0.0, params);
  const double sr = selective_repeat_goodput(0.0, params);
  const double fd = fd_arq_goodput(0.0, 0.0, params);
  EXPECT_GT(sw, 0.5);
  EXPECT_GT(sr, sw);               // SR never pays turnaround
  EXPECT_GT(fd, 0.5);
  // All below 1 (overheads).
  EXPECT_LT(sw, 1.0);
  EXPECT_LT(sr, 1.0);
  EXPECT_LT(fd, 1.0);
}

TEST(ArqModels, FdWinsAtModerateBer) {
  // The paper's headline shape: at BERs where whole frames almost
  // always contain an error, block-level recovery keeps goodput up.
  ArqModelParams params;
  const double ber = 3e-3;  // FER ~ 1 for 2k-bit frames
  EXPECT_GT(fd_arq_goodput(ber, 0.0, params),
            5.0 * stop_and_wait_goodput(ber, params));
  EXPECT_GT(fd_arq_goodput(ber, 0.0, params),
            5.0 * selective_repeat_goodput(ber, params));
}

TEST(ArqModels, StopAndWaitDegradesWithBer) {
  ArqModelParams params;
  double prev = stop_and_wait_goodput(0.0, params);
  for (const double ber : {1e-4, 1e-3, 1e-2}) {
    const double g = stop_and_wait_goodput(ber, params);
    EXPECT_LT(g, prev);
    prev = g;
  }
}

TEST(ArqModels, FdDegradesGracefullyWithFeedbackErrors) {
  ArqModelParams params;
  const double clean = fd_arq_goodput(1e-3, 0.0, params);
  const double noisy = fd_arq_goodput(1e-3, 0.01, params);
  EXPECT_LT(noisy, clean);
  EXPECT_GT(noisy, clean * 0.9);  // 1% verdict errors cost little
}

TEST(ArqModels, EnergyPerBitInverseOfGoodput) {
  ArqModelParams params;
  const double ber = 1e-3;
  EXPECT_NEAR(stop_and_wait_energy_per_bit(ber, params) *
                  stop_and_wait_goodput(ber, params),
              1.0, 1e-9);
  EXPECT_NEAR(fd_arq_energy_per_bit(ber, 0.0, params) *
                  fd_arq_goodput(ber, 0.0, params),
              1.0, 1e-9);
}

TEST(ArqModels, FdEnergyAdvantageGrowsWithBer) {
  ArqModelParams params;
  const double ratio_low = stop_and_wait_energy_per_bit(1e-4, params) /
                           fd_arq_energy_per_bit(1e-4, 0.0, params);
  const double ratio_high = stop_and_wait_energy_per_bit(5e-3, params) /
                            fd_arq_energy_per_bit(5e-3, 0.0, params);
  EXPECT_GT(ratio_high, ratio_low);
}

// ---------------------------------------------------------------------
// Interference-aware envelope SINR helpers (the fleet engine's analytic
// fast path). Pinned to hand-evaluated closed forms so a refactor that
// shifts the verdict boundary fails loudly here, not in a Monte-Carlo
// tolerance band.
// ---------------------------------------------------------------------

TEST(QfuncInv, KnownValuesAndRoundtrip) {
  EXPECT_NEAR(qfunc_inv(0.5), 0.0, 1e-12);
  // Phi^-1(0.999): the 1e-3 anchor of the default analytic target BER.
  EXPECT_NEAR(qfunc_inv(1e-3), 3.0902323, 1e-5);
  EXPECT_NEAR(qfunc_inv(qfunc(1.0)), 1.0, 1e-9);
  for (const double x : {0.0, 0.25, 1.0, 2.5, 4.0}) {
    EXPECT_NEAR(qfunc_inv(qfunc(x)), x, 1e-8) << "x=" << x;
  }
}

TEST(EnvelopeSinr, NoiseOnlyClosedForm) {
  // (delta/2)^2 / (sigma^2/n): (0.1)^2 / (0.0025/4) = 16 exactly.
  EXPECT_NEAR(envelope_sinr(0.2, 0.0, 0.05, 4), 16.0, 1e-12);
  // Quadrupling the averaging quadruples the noise-only SINR.
  EXPECT_NEAR(envelope_sinr(0.2, 0.0, 0.05, 16), 64.0, 1e-12);
}

TEST(EnvelopeSinr, EqualPowerInterfererClosedForm) {
  // An equal-swing interferer adds (0.1)^2 to the denominator:
  // 0.01 / (0.01 + 0.000625) = 16/17 of unity.
  EXPECT_NEAR(envelope_sinr(0.2, 0.2, 0.05, 4), 0.01 / 0.010625, 1e-12);
  // Interference is worst-case coherent: it does NOT integrate down
  // with n_avg, so the interference-limited SINR barely moves.
  EXPECT_NEAR(envelope_sinr(0.2, 0.2, 0.05, 4096),
              envelope_sinr(0.2, 0.2, 0.05, 4096 * 4), 0.05);
}

TEST(EnvelopeSinr, DeepFadeCollapsesToZero) {
  // A faded tag with a thousandth of the nominal swing: SINR scales as
  // delta^2, six orders down, far below any plausible decode threshold.
  const double nominal = envelope_sinr(0.2, 0.0, 0.05, 4);
  const double faded = envelope_sinr(0.2e-3, 0.0, 0.05, 4);
  EXPECT_NEAR(faded, nominal * 1e-6, 1e-12);
  EXPECT_LT(faded, ook_required_sinr(1e-3) * 1e-4);
}

TEST(EnvelopeSinr, ZeroInterferenceMatchesOokBerIdentity) {
  // With no interference the statistic is exactly ook_envelope_ber's:
  // ber == Q(sqrt(SINR)) for any (delta, sigma, n).
  for (const double delta : {0.05, 0.2, 0.7}) {
    for (const std::size_t n : {std::size_t{1}, std::size_t{20}}) {
      const double ber = ook_envelope_ber(delta, 0.05, n);
      const double sinr = envelope_sinr(delta, 0.0, 0.05, n);
      EXPECT_NEAR(ber, qfunc(std::sqrt(sinr)), 1e-12)
          << "delta=" << delta << " n=" << n;
    }
  }
}

TEST(OokRequiredSinr, AnchorsTargetBer) {
  // qfunc_inv(1e-3)^2: the SINR at which Q(sqrt(SINR)) hits the target.
  const double required = ook_required_sinr(1e-3);
  EXPECT_NEAR(required, 9.54954, 1e-4);
  EXPECT_NEAR(qfunc(std::sqrt(required)), 1e-3, 1e-9);
  // Stricter targets demand more SINR.
  EXPECT_GT(ook_required_sinr(1e-6), required);
  EXPECT_LT(ook_required_sinr(1e-1), required);
}

TEST(SinrDb, ClosedForms) {
  EXPECT_NEAR(sinr_db(1.0, 0.0, 0.1), 10.0, 1e-9);
  EXPECT_NEAR(sinr_db(2.0, 1.0, 1.0), 0.0, 1e-9);
  EXPECT_NEAR(sinr_db(100.0, 0.5, 0.5), 20.0, 1e-9);
  EXPECT_TRUE(std::isinf(sinr_db(0.0, 1.0, 1.0)));
  EXPECT_LT(sinr_db(0.0, 1.0, 1.0), 0.0);
}

}  // namespace
}  // namespace fdb::core
