// Impairment arms of the link simulator: multipath, co-channel
// interference, CFO.
#include <gtest/gtest.h>

#include "sim/link_sim.hpp"

namespace fdb::sim {
namespace {

LinkSimConfig base() {
  LinkSimConfig config;
  config.modem = core::FdModemConfig::make(4, 6);
  config.carrier = "cw";
  config.fading = "static";
  config.seed = 5;
  return config;
}

TEST(LinkSimImpairments, MultipathBehavesLikeBlockFading) {
  // A CW carrier through independent multipath to each device is a
  // complex-scaled CW per receiver — but the *relative phase* between
  // the carrier at B and A's backscattered component is now random, so
  // the envelope swing scales with |cos φ| and some frames land near a
  // null. The outage rate must resemble the Rayleigh arm's, and the
  // frames that do acquire must decode cleanly (noise is thermal-tiny).
  auto config = base();
  config.multipath = true;
  config.multipath_profile = {.num_taps = 4, .delay_spread_samples = 2.0};
  LinkSimulator sim(config);
  sim.set_payload_bytes(12);
  const auto summary = sim.run(20);
  EXPECT_LT(summary.sync_failure_rate(), 0.8);
  EXPECT_GT(summary.data_aligned.trials(), 0u);
  EXPECT_LT(summary.aligned_data_ber(), 0.05);
}

TEST(LinkSimImpairments, MultipathChangesPerFrameOutcomes) {
  auto flat = base();
  auto selective = base();
  selective.multipath = true;
  selective.noise_power_override_w = 1e-9;
  flat.noise_power_override_w = 1e-9;
  LinkSimulator sim_flat(flat), sim_mp(selective);
  sim_flat.set_payload_bytes(8);
  sim_mp.set_payload_bytes(8);
  const auto s_flat = sim_flat.run(20);
  const auto s_mp = sim_mp.run(20);
  // Frequency selectivity cannot make the flat CW link *better* on
  // average; typically it adds occasional deep-fade frames.
  EXPECT_GE(s_mp.data.errors() + s_mp.sync_failures,
            s_flat.data.errors() + s_flat.sync_failures);
}

TEST(LinkSimImpairments, NearbyInterfererDegradesLink) {
  auto quiet = base();
  quiet.noise_power_override_w = 1e-10;
  auto noisy = quiet;
  noisy.interferer_distance_m = 1.0;  // as close as the intended tag
  LinkSimulator sim_quiet(quiet), sim_noisy(noisy);
  sim_quiet.set_payload_bytes(12);
  sim_noisy.set_payload_bytes(12);
  const auto s_quiet = sim_quiet.run(15);
  const auto s_noisy = sim_noisy.run(15);
  EXPECT_GT(s_noisy.data.errors() + s_noisy.sync_failures,
            s_quiet.data.errors() + s_quiet.sync_failures);
}

TEST(LinkSimImpairments, FarInterfererIsHarmless) {
  auto config = base();
  config.noise_power_override_w = 1e-10;
  config.interferer_distance_m = 50.0;  // 50x farther than the link
  LinkSimulator sim(config);
  sim.set_payload_bytes(12);
  const auto summary = sim.run(10);
  EXPECT_EQ(summary.data.errors(), 0u);
  EXPECT_EQ(summary.sync_failures, 0u);
}

TEST(LinkSimImpairments, SmallCfoTolerated) {
  // The envelope detector is magnitude-only; CFO rotates phase and
  // must be invisible to a clean CW link.
  auto config = base();
  config.cfo_hz = 5000.0;
  LinkSimulator sim(config);
  sim.set_payload_bytes(12);
  const auto summary = sim.run(8);
  EXPECT_EQ(summary.data.errors(), 0u);
  EXPECT_EQ(summary.feedback.errors(), 0u);
}

TEST(LinkSimImpairments, InterfererDwellControlsBurstiness) {
  // Longer interferer dwell = fewer, longer corruption bursts. Both
  // arms must at least run and produce consistent accounting.
  for (const std::size_t dwell : {8ul, 512ul}) {
    auto config = base();
    config.interferer_distance_m = 2.0;
    config.interferer_dwell_samples = dwell;
    LinkSimulator sim(config);
    sim.set_payload_bytes(8);
    const auto summary = sim.run(5);
    EXPECT_EQ(summary.trials, 5u);
    EXPECT_LE(summary.data.errors(), summary.data.trials());
  }
}

}  // namespace
}  // namespace fdb::sim
