// Cross-fidelity contract of the hybrid fleet engine (sim/fleet.hpp):
//
//  * statistically, kHybrid must track kWaveform on every registry
//    scenario — the escalation machinery may only reshuffle marginal
//    frames, never move the headline numbers;
//  * frame-for-frame, the analytic classifier must be one-sided-safe:
//    replayed against ground-truth synthesis (kWaveform +
//    record_frames runs both on identical trial state), every
//    clear-deliver frame really delivers and every clear-fail frame
//    really fails, across a randomized sweep of small deployments;
//  * the contested band must do actual work: it cannot swallow 100% of
//    frames, or the fast path would never fire.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "sim/fleet.hpp"
#include "sim/network_sim.hpp"
#include "sim/scenarios.hpp"
#include "util/rng.hpp"

namespace fdb::sim {
namespace {

NetworkSimSummary run(const NetworkSimConfig& config, std::size_t trials) {
  const NetworkSimulator sim(config);
  NetworkSimSummary summary;
  for (std::size_t t = 0; t < trials; ++t) summary.add(sim.run_trial(t));
  return summary;
}

double collision_rate(const NetworkSimSummary& s) {
  const std::uint64_t attempted = s.frames_attempted();
  return attempted ? static_cast<double>(s.collisions) /
                         static_cast<double>(attempted)
                   : 0.0;
}

// -------------------------------------------------------------------
// Registry-wide statistical agreement, kWaveform vs kHybrid.
// -------------------------------------------------------------------

TEST(CrossFidelity, HybridTracksWaveformOnEveryScenario) {
  // Verdict differences inside the contested band can nudge the MAC
  // onto a different backoff path, so the comparison is statistical,
  // not bit-exact: a handful of trials must agree within a few frames'
  // worth of ratio. (e13's agreement section pins the two fleet
  // scenarios at 100 tags; this sweep holds every registry entry.)
  constexpr std::size_t kTrials = 4;
  for (const std::string& name : scenario_names()) {
    auto scenario = make_scenario(name, 0, 3);

    auto waveform = scenario.config;
    waveform.fleet.fidelity = FidelityMode::kWaveform;
    const auto wf = run(waveform, kTrials);

    auto hybrid = scenario.config;
    hybrid.fleet.fidelity = FidelityMode::kHybrid;
    const auto hy = run(hybrid, kTrials);

    EXPECT_NEAR(hy.delivery_ratio(), wf.delivery_ratio(), 0.25) << name;
    EXPECT_NEAR(collision_rate(hy), collision_rate(wf), 0.25) << name;
    EXPECT_NEAR(hy.mean_detect_latency_slots(),
                wf.mean_detect_latency_slots(), 3.0)
        << name;
    // Hybrid must actually skip synthesis work somewhere; kWaveform by
    // definition synthesizes every gateway-slot.
    EXPECT_NEAR(wf.synthesized_slot_fraction(), 1.0, 1e-12) << name;
    EXPECT_LT(hy.synthesized_slot_fraction(), 1.0) << name;
  }
}

// -------------------------------------------------------------------
// One-sided safety, frame-for-frame, over randomized deployments.
// -------------------------------------------------------------------

// A small random deployment inside the engine's design envelope: CW
// ambient, static or Rayleigh-faded links, 1-6 tags within a 15 m cell
// of 1-2 gateways, noise spanning link budgets from trivially clean to
// hopeless (log-uniform over ~4.5 decades).
NetworkSimConfig random_config(std::uint64_t index) {
  Rng rng = Rng::substream(0xf1ee7c0de, index);
  NetworkSimConfig config;
  config.payload_bytes = 16;
  config.slots_per_trial = 64;
  config.seed = 1000 + index;
  config.ambient_position = {-rng.uniform(80.0, 400.0),
                             rng.uniform(-30.0, 30.0)};
  config.tx_power_w = rng.uniform(10.0, 1000.0);
  config.receiver_position = {0.0, 0.0};
  if (rng.chance(0.4)) {
    config.extra_gateways.push_back(
        {rng.uniform(4.0, 18.0), rng.uniform(-8.0, 8.0)});
  }
  config.combining = rng.chance(0.5) ? GatewayCombining::kAnyGateway
                                     : GatewayCombining::kBestGateway;
  const std::size_t num_tags = 1 + rng.uniform_int(5);
  for (std::size_t k = 0; k < num_tags; ++k) {
    config.tags.push_back({{rng.uniform(-15.0, 15.0),
                            rng.uniform(-15.0, 15.0)},
                           rng.uniform(0.2, 0.8)});
  }
  config.noise_power_override_w = std::pow(10.0, rng.uniform(-12.0, -7.5));
  if (rng.chance(0.5)) {
    config.fading = "rayleigh";
    config.pathloss.shadowing_sigma_db = rng.uniform(0.0, 3.0);
  }
  config.backoff_min_slots = std::size_t{8} << rng.uniform_int(4);
  if (rng.chance(0.5)) config.notify_slots_per_m = 0.1;
  config.fleet.fidelity = FidelityMode::kWaveform;
  config.fleet.record_frames = true;
  return config;
}

TEST(CrossFidelity, ClearVerdictsMatchSynthesisFrameForFrame) {
  // ~50 random deployments, each replayed in kWaveform mode with the
  // classifier running alongside: a clear verdict that disagrees with
  // the synthesized ground truth is a hard failure — that frame would
  // have been resolved wrongly (and silently) in kHybrid.
  constexpr std::uint64_t kConfigs = 50;
  constexpr std::size_t kTrials = 2;
  std::uint64_t total = 0, contested = 0, clear_deliver = 0, clear_fail = 0;
  for (std::uint64_t i = 0; i < kConfigs; ++i) {
    const auto config = random_config(i);
    const NetworkSimulator sim(config);
    for (std::size_t t = 0; t < kTrials; ++t) {
      const auto trial = sim.run_trial(t);
      for (const FrameRecord& frame : trial.frames) {
        ++total;
        std::ostringstream where;
        where << "config=" << i << " trial=" << t << " tag=" << frame.tag
              << " slot=" << frame.start_slot
              << " margin=" << frame.margin_db << " dB";
        switch (frame.analytic) {
          case LinkVerdict::kClearDeliver:
            ++clear_deliver;
            EXPECT_TRUE(frame.delivered) << where.str();
            break;
          case LinkVerdict::kClearFail:
            ++clear_fail;
            EXPECT_FALSE(frame.delivered) << where.str();
            break;
          case LinkVerdict::kContested:
            ++contested;
            break;
        }
      }
    }
  }
  ASSERT_GT(total, 100u) << "sweep produced too few resolved frames";
  // The band has to leave real work for the fast path: both clear
  // classes must appear, and contested frames must stay a fraction.
  EXPECT_GT(clear_deliver, 0u);
  EXPECT_GT(clear_fail, 0u);
  EXPECT_LT(contested, total);
  const double contested_fraction =
      static_cast<double>(contested) / static_cast<double>(total);
  RecordProperty("frames_total", static_cast<int>(total));
  RecordProperty("contested_fraction_percent",
                 static_cast<int>(100.0 * contested_fraction));
  std::cout << "[cross-fidelity] " << total << " frames: " << clear_deliver
            << " clear-deliver, " << clear_fail << " clear-fail, "
            << contested << " contested ("
            << 100.0 * contested_fraction << "%)\n";
}

TEST(CrossFidelity, ClearVerdictsSurviveFaultInjection) {
  // The fault engine feeds the same slot-domain schedule to synthesis
  // and to the analytic mirror; the split-band classifier brackets the
  // faulted frame with the window-worst and window-best signal scales,
  // and frames whose own tag is faulted are forced into the contested
  // band. Net contract: one-sided safety of clear verdicts holds under
  // fault injection exactly as it does clean.
  constexpr std::uint64_t kConfigs = 30;
  constexpr std::size_t kTrials = 2;
  std::uint64_t total = 0, contested = 0, clear_deliver = 0, clear_fail = 0;
  std::uint64_t faulted_frames = 0;
  for (std::uint64_t i = 0; i < kConfigs; ++i) {
    auto config = random_config(i);
    Rng rng = Rng::substream(0xfa17a2b5, i);
    config.faults.intensity = rng.uniform(0.2, 1.0);
    const NetworkSimulator sim(config);
    for (std::size_t t = 0; t < kTrials; ++t) {
      const auto trial = sim.run_trial(t);
      faulted_frames += trial.faulted_frames_attempted;
      for (const FrameRecord& frame : trial.frames) {
        ++total;
        std::ostringstream where;
        where << "config=" << i << " trial=" << t << " tag=" << frame.tag
              << " slot=" << frame.start_slot
              << " margin=" << frame.margin_db << " dB (faulted run)";
        switch (frame.analytic) {
          case LinkVerdict::kClearDeliver:
            ++clear_deliver;
            EXPECT_TRUE(frame.delivered) << where.str();
            break;
          case LinkVerdict::kClearFail:
            ++clear_fail;
            EXPECT_FALSE(frame.delivered) << where.str();
            break;
          case LinkVerdict::kContested:
            ++contested;
            break;
        }
      }
    }
  }
  ASSERT_GT(total, 60u) << "faulted sweep produced too few resolved frames";
  ASSERT_GT(faulted_frames, 0u) << "sweep never exposed a frame to a fault";
  EXPECT_GT(clear_deliver, 0u);
  EXPECT_GT(clear_fail, 0u);
  EXPECT_LT(contested, total);
  std::cout << "[cross-fidelity/faults] " << total << " frames: "
            << clear_deliver << " clear-deliver, " << clear_fail
            << " clear-fail, " << contested << " contested, "
            << faulted_frames << " fault-exposed\n";
}

// -------------------------------------------------------------------
// Frame recording must be a pure observer.
// -------------------------------------------------------------------

TEST(CrossFidelity, RecordFramesDoesNotChangeTheRun) {
  // The classifier runs alongside synthesis when record_frames is set;
  // it must not consume randomness or alter verdicts. Same config with
  // recording on and off -> identical statistics.
  auto scenario = make_scenario("multi-gateway-dense", 6, 11);
  auto plain = scenario.config;
  plain.fleet.record_frames = false;
  auto recorded = scenario.config;
  recorded.fleet.record_frames = true;

  const auto a = run(plain, 3);
  const auto b = run(recorded, 3);
  EXPECT_EQ(a.frames_attempted(), b.frames_attempted());
  EXPECT_EQ(a.frames_delivered(), b.frames_delivered());
  EXPECT_EQ(a.collisions, b.collisions);
  EXPECT_EQ(a.sync_failures, b.sync_failures);
  EXPECT_EQ(a.busy_slots, b.busy_slots);
  EXPECT_EQ(a.wasted_slots, b.wasted_slots);
  EXPECT_EQ(a.detect_latency_slots.mean(), b.detect_latency_slots.mean());
}

}  // namespace
}  // namespace fdb::sim
