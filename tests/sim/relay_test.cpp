// Tag-to-tag relaying (sim/relay.hpp + the network engine hooks): the
// BFS hop topology, the config coupling that pins relaying to the
// scheduled MAC, out-of-range delivery through the fabric, per-tag
// stats invariants under forwarding, job-count bit-identity, and
// ETX-driven re-parenting under a scripted gateway outage.
#include "sim/relay.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <stdexcept>

#include "sim/faults.hpp"
#include "sim/network_sim.hpp"
#include "sim/runner.hpp"
#include "sim/scenarios.hpp"

namespace fdb::sim {
namespace {

NetworkSimSummary run_with_runner(const NetworkSimulator& sim,
                                  std::size_t trials, std::size_t jobs) {
  const ExperimentRunner runner(jobs);
  return runner.run_chunked<NetworkSimSummary>(
      trials, [&sim](NetworkSimSummary& acc, std::size_t trial) {
        acc.add(sim.run_trial(trial));
      });
}

TEST(RelayConfigValidation, RejectsDegenerateKnobs) {
  RelayConfig config;
  config.enabled = true;
  config.validate();  // defaults are sane

  auto bad = config;
  bad.range_m = 0.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = config;
  bad.range_m = std::numeric_limits<double>::infinity();
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = config;
  bad.max_hops = 1;  // one hop is just the direct gateway link
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = config;
  bad.queue_capacity = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = config;
  bad.reparent_fail_streak = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = config;
  bad.min_margin_db = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(bad.validate(), std::invalid_argument);

  // Disabled relaying never rejects: the knobs are inert.
  bad.enabled = false;
  bad.validate();
}

TEST(RelayConfigValidation, RelayingRequiresScheduledMacAndFiniteCull) {
  auto config = make_scenario("corridor-multihop").config;
  (void)NetworkSimulator(config);  // the scenario itself is valid

  auto contention = config;
  contention.mac_kind = mac::MacKind::kCollisionNotify;
  EXPECT_THROW(NetworkSimulator{contention}, std::invalid_argument);

  auto uncullable = config;
  uncullable.fleet.cull_radius_m = std::numeric_limits<double>::infinity();
  EXPECT_THROW(NetworkSimulator{uncullable}, std::invalid_argument);
}

TEST(RelayTopology, CorridorLevelsAndCandidatesAreDeterministic) {
  // corridor-multihop (8 tags): line x = 5, 11, ..., 47 with the cull
  // radius at 30 m and a 14 m hop range — tags 0-4 in range, 5-6 one
  // hop out, 7 two hops out.
  const auto scenario = make_scenario("corridor-multihop", 8, 7);
  const NetworkSimulator sim(scenario.config);
  const RelayTopology& topo = sim.relay_topology();

  for (std::size_t k = 0; k <= 4; ++k) {
    EXPECT_EQ(topo.level(k), 0u) << k;
    EXPECT_TRUE(topo.candidates(k).empty()) << k;
  }
  EXPECT_EQ(topo.level(5), 1u);
  EXPECT_EQ(topo.level(6), 1u);
  EXPECT_EQ(topo.level(7), 2u);

  // Candidates are the previous level's neighbours, nearest first.
  ASSERT_EQ(topo.candidates(5).size(), 2u);
  EXPECT_EQ(topo.candidates(5)[0], 4u);  // 6 m beats 12 m
  EXPECT_EQ(topo.candidates(5)[1], 3u);
  ASSERT_EQ(topo.candidates(6).size(), 1u);
  EXPECT_EQ(topo.candidates(6)[0], 4u);
  ASSERT_EQ(topo.candidates(7).size(), 2u);
  EXPECT_EQ(topo.candidates(7)[0], 6u);  // level-1 neighbours of tag 7
  EXPECT_EQ(topo.candidates(7)[1], 5u);

  // relay_children: exactly the leveled culled tags, ascending.
  ASSERT_EQ(topo.relay_children().size(), 3u);
  EXPECT_EQ(topo.relay_children()[0], 5u);
  EXPECT_EQ(topo.relay_children()[2], 7u);
  EXPECT_EQ(topo.num_links(), 5u);

  // Identical construction twice — the topology is a pure function of
  // the deployment.
  const NetworkSimulator again(scenario.config);
  for (std::size_t k = 0; k < 8; ++k) {
    EXPECT_EQ(again.relay_topology().level(k), topo.level(k));
  }
}

TEST(RelayTopology, MaxHopsBoundsTheBfs) {
  auto config = make_scenario("corridor-multihop", 8, 7).config;
  config.relay.max_hops = 2;  // only one relay hop allowed
  const NetworkSimulator sim(config);
  EXPECT_EQ(sim.relay_topology().level(5), 1u);
  EXPECT_FALSE(sim.relay_topology().reachable(7));  // needed level 2
}

TEST(NetworkSimRelay, OutOfRangeTagsDeliverOnlyThroughTheFabric) {
  const auto scenario = make_scenario("corridor-multihop", 8, 7);

  auto off = scenario.config;
  off.relay.enabled = false;
  const NetworkSimulator sim_off(off);
  const auto s_off = sim_off.run(4);
  for (std::size_t k = 0; k < 8; ++k) {
    if (!sim_off.tag_culled(k)) continue;
    EXPECT_GT(s_off.tags[k].frames_attempted, 0u) << k;
    EXPECT_EQ(s_off.tags[k].frames_delivered, 0u) << k;
  }
  EXPECT_EQ(s_off.relayed_delivered, 0u);

  const NetworkSimulator sim_on(scenario.config);
  const auto s_on = sim_on.run(4);
  std::uint64_t culled_delivered = 0;
  for (std::size_t k = 0; k < 8; ++k) {
    if (sim_on.tag_culled(k)) culled_delivered += s_on.tags[k].frames_delivered;
  }
  EXPECT_GT(culled_delivered, 0u);
  EXPECT_GT(s_on.relayed_delivered, 0u);
  EXPECT_GT(s_on.relay_tx_frames, 0u);
  // Every delivered relayed frame took at least 2 and at most
  // max_hops hops.
  ASSERT_GT(s_on.relay_hops.count(), 0u);
  EXPECT_GE(s_on.relay_hops.min(), 2.0);
  EXPECT_LE(s_on.relay_hops.max(),
            static_cast<double>(scenario.config.relay.max_hops));
}

TEST(NetworkSimRelay, StatsStayInternallyConsistentUnderForwarding) {
  const NetworkSimulator sim(make_scenario("corridor-multihop", 8, 7).config);
  const auto s = sim.run(4);
  for (std::size_t k = 0; k < s.tags.size(); ++k) {
    EXPECT_LE(s.tags[k].frames_delivered + s.tags[k].frames_collided,
              s.tags[k].frames_attempted)
        << k;
  }
  // Every forward was popped from a queue, every queue entry came from
  // one received hop, and every relayed delivery rode one forward.
  EXPECT_LE(s.relay_tx_frames, s.relay_rx_frames);
  EXPECT_LE(s.relayed_delivered, s.relay_tx_frames);
  // rx counts per-hop enqueues (a 3-hop frame enqueues twice), and
  // every enqueued entry is eventually forwarded or left in a queue at
  // trial end (a subset of the drop counter).
  EXPECT_LE(s.relayed_delivered, s.relay_rx_frames);
  EXPECT_LE(s.relay_rx_frames, s.relay_tx_frames + s.relay_drops);
}

TEST(NetworkSimRelay, BitIdenticalAcrossJobCounts) {
  const NetworkSimulator sim(make_scenario("corridor-multihop", 8, 7).config);
  const auto j1 = run_with_runner(sim, 6, 1);
  const auto j8 = run_with_runner(sim, 6, 8);
  EXPECT_EQ(j1.relay_tx_frames, j8.relay_tx_frames);
  EXPECT_EQ(j1.relay_rx_frames, j8.relay_rx_frames);
  EXPECT_EQ(j1.relayed_delivered, j8.relayed_delivered);
  EXPECT_EQ(j1.relay_drops, j8.relay_drops);
  EXPECT_EQ(j1.relay_hops.count(), j8.relay_hops.count());
  EXPECT_EQ(j1.relay_hops.mean(), j8.relay_hops.mean());
  EXPECT_EQ(j1.failovers, j8.failovers);
  EXPECT_EQ(j1.useful_slots, j8.useful_slots);
  EXPECT_EQ(j1.wasted_slots, j8.wasted_slots);
  ASSERT_EQ(j1.tags.size(), j8.tags.size());
  for (std::size_t k = 0; k < j1.tags.size(); ++k) {
    EXPECT_EQ(j1.tags[k].frames_attempted, j8.tags[k].frames_attempted);
    EXPECT_EQ(j1.tags[k].frames_delivered, j8.tags[k].frames_delivered);
  }
}

TEST(NetworkSimRelay, GatewayOutageDrivesReparenting) {
  // Kill the corridor's only gateway for whole trials: every forward
  // dies at the final hop, the implicit end-to-end NACKs degrade each
  // child's current link ETX, and the streak machinery re-parents —
  // measured by the same failover/time-to-failover stats the gateway
  // machine feeds.
  auto config = make_scenario("corridor-multihop", 8, 7).config;
  config.faults.events.push_back(
      {FaultClass::kGatewayOutage, 0,
       static_cast<std::int64_t>(config.slots_per_trial), 0, 0.0});
  const NetworkSimulator sim(config);
  const auto s = sim.run(4);
  EXPECT_EQ(s.relayed_delivered, 0u);  // the fabric has nowhere to land
  EXPECT_GT(s.failovers, 0u);
  EXPECT_GT(s.time_to_failover_slots.count(), 0u);
  EXPECT_GE(s.time_to_failover_slots.min(), 1.0);
}

TEST(NetworkSimRelay, WarehouseMeshDrainsTheDeadHalf) {
  const auto scenario = make_scenario("warehouse-mesh", 24, 7);
  const NetworkSimulator sim(scenario.config);
  const RelayTopology& topo = sim.relay_topology();
  std::size_t leveled = 0;
  for (std::size_t k = 0; k < 24; ++k) {
    if (topo.reachable(k) && topo.level(k) >= 1) ++leveled;
  }
  EXPECT_GT(leveled, 0u);
  const auto s = sim.run(3);
  EXPECT_GT(s.relayed_delivered, 0u);
  EXPECT_GE(s.relay_hops.min(), 2.0);
}

}  // namespace
}  // namespace fdb::sim
