#include "sim/sweep.hpp"

#include <gtest/gtest.h>

namespace fdb::sim {
namespace {

TEST(Sweep, LogspaceEndpointsAndMonotone) {
  const auto v = logspace(1e-4, 1e-1, 4);
  ASSERT_EQ(v.size(), 4u);
  EXPECT_NEAR(v.front(), 1e-4, 1e-12);
  EXPECT_NEAR(v.back(), 1e-1, 1e-9);
  for (std::size_t i = 1; i < v.size(); ++i) EXPECT_GT(v[i], v[i - 1]);
  // Log spacing: constant ratio.
  EXPECT_NEAR(v[1] / v[0], v[2] / v[1], 1e-9);
}

TEST(Sweep, LinspaceEndpointsAndStep) {
  const auto v = linspace(0.0, 1.0, 5);
  ASSERT_EQ(v.size(), 5u);
  EXPECT_DOUBLE_EQ(v[0], 0.0);
  EXPECT_DOUBLE_EQ(v[2], 0.5);
  EXPECT_DOUBLE_EQ(v[4], 1.0);
}

TEST(Sweep, DegenerateSpacingEdgeCases) {
  // Regression: n == 0 and n == 1 used to hit the (n - 1) divisor —
  // n == 0 must return empty, n == 1 must return {lo} with no division.
  EXPECT_TRUE(linspace(0.0, 1.0, 0).empty());
  EXPECT_TRUE(logspace(1e-3, 1.0, 0).empty());

  const auto lin1 = linspace(2.5, 9.0, 1);
  ASSERT_EQ(lin1.size(), 1u);
  EXPECT_DOUBLE_EQ(lin1[0], 2.5);

  const auto log1 = logspace(1e-3, 1.0, 1);
  ASSERT_EQ(log1.size(), 1u);
  EXPECT_DOUBLE_EQ(log1[0], 1e-3);
}

TEST(Sweep, SweepBuildsTable) {
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  const auto table = sweep<double>(
      {"x", "x_squared"}, xs,
      [](const double& x) { return std::vector<double>{x, x * x}; });
  EXPECT_EQ(table.rows(), 3u);
  EXPECT_NE(table.render().find("x_squared"), std::string::npos);
  EXPECT_NE(table.render().find("9"), std::string::npos);
}

}  // namespace
}  // namespace fdb::sim
