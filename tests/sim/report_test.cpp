#include "sim/report.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

namespace fdb::sim {
namespace {

Report sample_report() {
  Report report("e_test");
  report.set_run_info(12, 4);
  auto& sec = report.section("main", {"x", "label", "y"});
  sec.add_row({1.5, "alpha", 0.25});
  sec.add_row({2.5, "beta", 1e-9});
  report.add_note("Shape check: y falls.");
  return report;
}

TEST(Report, TableRenderContainsColumnsAndCells) {
  const auto text = sample_report().render(ReportFormat::kTable);
  EXPECT_NE(text.find("e_test"), std::string::npos);
  EXPECT_NE(text.find("label"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("1e-09"), std::string::npos);
  EXPECT_NE(text.find("Shape check"), std::string::npos);
}

TEST(Report, CsvRenderHasHeaderAndRows) {
  const auto csv = sample_report().render(ReportFormat::kCsv);
  EXPECT_NE(csv.find("# e_test/main trials=12 jobs=4"), std::string::npos);
  EXPECT_NE(csv.find("x,label,y"), std::string::npos);
  EXPECT_NE(csv.find("1.5,alpha,0.25"), std::string::npos);
}

TEST(Report, CsvQuotesSeparatorsAndQuotes) {
  Report report("quoting");
  auto& sec = report.section("main", {"name"});
  sec.add_row({std::string("a,b")});
  sec.add_row({std::string("say \"hi\"")});
  const auto csv = report.render(ReportFormat::kCsv);
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Report, JsonRenderStructure) {
  const auto json = sample_report().render(ReportFormat::kJson);
  EXPECT_NE(json.find("\"experiment\":\"e_test\""), std::string::npos);
  EXPECT_NE(json.find("\"trials\":12"), std::string::npos);
  EXPECT_NE(json.find("\"jobs\":4"), std::string::npos);
  EXPECT_NE(json.find("\"columns\":[\"x\",\"label\",\"y\"]"),
            std::string::npos);
  EXPECT_NE(json.find("[1.5,\"alpha\",0.25]"), std::string::npos);
  EXPECT_NE(json.find("\"notes\":[\"Shape check: y falls.\"]"),
            std::string::npos);
}

TEST(Report, JsonEscapesStringsAndNonFinite) {
  Report report("esc \"quote\"\n");
  report.set_run_info(0, 1);
  auto& sec = report.section("main", {"v"});
  sec.add_row({std::numeric_limits<double>::infinity()});
  sec.add_row({std::string("tab\there")});
  const auto json = report.render(ReportFormat::kJson);
  EXPECT_NE(json.find("esc \\\"quote\\\"\\n"), std::string::npos);
  EXPECT_NE(json.find("[null]"), std::string::npos);  // inf -> null
  EXPECT_NE(json.find("tab\\there"), std::string::npos);
}

TEST(Report, JsonNumbersRoundTripFullPrecision) {
  Report report("prec");
  auto& sec = report.section("main", {"v"});
  const double v = 0.1234567890123456789;
  sec.add_row({v});
  const auto json = report.render(ReportFormat::kJson);
  // %.17g preserves the exact double.
  EXPECT_NE(json.find("0.12345678901234568"), std::string::npos);
}

TEST(Report, MultipleSectionsRenderInOrder) {
  Report report("two");
  report.section("first", {"a"}).add_row({1.0});
  report.section("second", {"b"}).add_row({2.0});
  const auto json = report.render(ReportFormat::kJson);
  const auto first = json.find("\"name\":\"first\"");
  const auto second = json.find("\"name\":\"second\"");
  ASSERT_NE(first, std::string::npos);
  ASSERT_NE(second, std::string::npos);
  EXPECT_LT(first, second);
}

TEST(ParseCli, DefaultsWhenNoFlags) {
  const char* argv[] = {"bench"};
  const auto cli = parse_cli(1, const_cast<char**>(argv), 60);
  EXPECT_EQ(cli.trials, 60u);
  EXPECT_EQ(cli.jobs, 0u);
  EXPECT_EQ(cli.format, ReportFormat::kTable);
  EXPECT_TRUE(cli.output_path.empty());
}

TEST(ParseCli, ParsesAllFlags) {
  const char* argv[] = {"bench", "--trials", "200", "--jobs", "8",
                        "--format", "json", "--output", "/tmp/out.json"};
  const auto cli = parse_cli(9, const_cast<char**>(argv), 60);
  EXPECT_EQ(cli.trials, 200u);
  EXPECT_EQ(cli.jobs, 8u);
  EXPECT_EQ(cli.format, ReportFormat::kJson);
  EXPECT_EQ(cli.output_path, "/tmp/out.json");
}

TEST(ParseCli, ExplicitZeroTrialsMeansBenchDefault) {
  const char* argv[] = {"bench", "--trials", "0"};
  const auto cli = parse_cli(3, const_cast<char**>(argv), 60);
  EXPECT_EQ(cli.trials, 60u);
}

TEST(ParseCli, CsvFormat) {
  const char* argv[] = {"bench", "--format", "csv"};
  const auto cli = parse_cli(3, const_cast<char**>(argv), 0);
  EXPECT_EQ(cli.format, ReportFormat::kCsv);
}

using ParseCliDeath = ::testing::Test;

TEST(ParseCliDeath, RejectsUnknownFlag) {
  const char* argv[] = {"bench", "--bogus"};
  EXPECT_EXIT(parse_cli(2, const_cast<char**>(argv), 0),
              ::testing::ExitedWithCode(2), "unknown flag");
}

TEST(ParseCliDeath, RejectsMalformedCount) {
  const char* argv[] = {"bench", "--trials", "abc"};
  EXPECT_EXIT(parse_cli(3, const_cast<char**>(argv), 0),
              ::testing::ExitedWithCode(2), "non-negative integer");
}

TEST(ParseCliDeath, RejectsNegativeCount) {
  // strtoull would silently wrap "-1" to ULLONG_MAX; must be refused.
  const char* argv[] = {"bench", "--trials", "-1"};
  EXPECT_EXIT(parse_cli(3, const_cast<char**>(argv), 0),
              ::testing::ExitedWithCode(2), "non-negative integer");
}

TEST(ParseCliDeath, RejectsUnknownFormat) {
  const char* argv[] = {"bench", "--format", "xml"};
  EXPECT_EXIT(parse_cli(3, const_cast<char**>(argv), 0),
              ::testing::ExitedWithCode(2), "unknown format");
}

TEST(ParseCliDeath, HelpExitsZero) {
  // Usage goes to stdout on --help (stderr stays empty), so only the
  // exit code is asserted here.
  const char* argv[] = {"bench", "--help"};
  EXPECT_EXIT(parse_cli(2, const_cast<char**>(argv), 0),
              ::testing::ExitedWithCode(0), "");
}

}  // namespace
}  // namespace fdb::sim
