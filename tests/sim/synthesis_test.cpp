// The waveform-synthesis engine's two contracts:
//
//  1. Equivalence — refactoring both simulators onto the shared
//     WaveformSynthesizer changed no results. The golden constants
//     below were captured from the pre-refactor simulators (hexfloat,
//     so the comparison is bit-exact, not approximate) and every trial
//     and runner-merged summary must still reproduce them, at --jobs 1
//     and --jobs 8 alike.
//
//  2. Zero steady-state allocation — the SynthArena only grows during
//     warm-up; once warm, its capacity is stable across trials, so the
//     synthesis hot path never touches the heap.
#include "sim/synthesis.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>

#include "sim/link_sim.hpp"
#include "sim/network_sim.hpp"
#include "sim/runner.hpp"
#include "sim/scenarios.hpp"

// The hexfloat golden pins below were captured on the portable build.
// Under -march=native the compiler contracts the simulators' double
// accumulation chains into FMAs, legitimately shifting a few of them by
// an ULP; the portable build stays the bit-exactness oracle, and the
// native build skips only those pins (everything behavioral still runs).
#if defined(FDB_NATIVE_BUILD)
#define FDB_SKIP_GOLDEN_ON_NATIVE()                                    \
  GTEST_SKIP() << "hexfloat golden pin is portable-build only "        \
                  "(-march=native FMA contraction shifts the "         \
                  "accumulator by an ULP)"
#else
#define FDB_SKIP_GOLDEN_ON_NATIVE() (void)0
#endif

namespace fdb::sim {
namespace {

// ---------------------------------------------------------------------
// SynthArena unit behaviour
// ---------------------------------------------------------------------

TEST(SynthArena, SpansAreCacheLineAligned) {
  SynthArena arena;
  const auto a = arena.alloc<float>(3);     // odd size on purpose
  const auto b = arena.alloc<cf32>(5);
  const auto c = arena.alloc<std::uint8_t>(1);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a.data()) % 64, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b.data()) % 64, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(c.data()) % 64, 0u);
}

TEST(SynthArena, AllocZeroedIsZeroEvenOnReusedMemory) {
  SynthArena arena;
  auto dirty = arena.alloc<float>(1024);
  for (auto& x : dirty) x = 1.0f;
  arena.reset();
  const auto clean = arena.alloc_zeroed<float>(1024);
  for (const float x : clean) ASSERT_EQ(x, 0.0f);
}

TEST(SynthArena, SpansSurviveOverflowWithinOneCycle) {
  SynthArena arena;
  // Force several growth chunks in one cycle; earlier spans must stay
  // addressable (the arena never reallocates mid-cycle).
  auto first = arena.alloc<std::uint64_t>(1000);
  first[0] = 42;
  first[999] = 43;
  for (int i = 0; i < 8; ++i) {
    auto more = arena.alloc<std::uint64_t>(100'000);
    more[0] = static_cast<std::uint64_t>(i);
  }
  EXPECT_EQ(first[0], 42u);
  EXPECT_EQ(first[999], 43u);
}

TEST(SynthArena, ResetCoalescesAndThenStaysPut) {
  SynthArena arena;
  for (int i = 0; i < 6; ++i) (void)arena.alloc<float>(50'000);
  arena.reset();  // coalesce
  const std::size_t warm = arena.capacity_bytes();
  for (int cycle = 0; cycle < 5; ++cycle) {
    for (int i = 0; i < 6; ++i) (void)arena.alloc<float>(50'000);
    arena.reset();
    EXPECT_EQ(arena.capacity_bytes(), warm) << "cycle " << cycle;
  }
  EXPECT_EQ(arena.used_bytes(), 0u);
}

// ---------------------------------------------------------------------
// Golden equivalence: LinkSimulator (pre-refactor captures, bit-exact)
// ---------------------------------------------------------------------

struct LinkTrialGold {
  bool sync_ok;
  bool sync_correct;
  std::size_t sync_sample;
  double sync_corr;
  std::size_t data_bits;
  std::size_t data_bit_errors;
  std::size_t feedback_bits;
  std::size_t feedback_bit_errors;
  double harvested_j;
  double incident_power_w;
  std::size_t num_blocks;
};

void expect_trial_matches(const LinkSimulator& sim, std::uint64_t trial,
                          const LinkTrialGold& gold) {
  const TrialResult r = sim.run_trial(trial);
  EXPECT_EQ(r.sync_ok, gold.sync_ok) << "trial " << trial;
  EXPECT_EQ(r.sync_correct, gold.sync_correct) << "trial " << trial;
  EXPECT_EQ(r.sync_sample, gold.sync_sample) << "trial " << trial;
  EXPECT_EQ(static_cast<double>(r.sync_corr), gold.sync_corr)
      << "trial " << trial;
  EXPECT_EQ(r.data_bits, gold.data_bits) << "trial " << trial;
  EXPECT_EQ(r.data_bit_errors, gold.data_bit_errors) << "trial " << trial;
  EXPECT_EQ(r.feedback_bits, gold.feedback_bits) << "trial " << trial;
  EXPECT_EQ(r.feedback_bit_errors, gold.feedback_bit_errors)
      << "trial " << trial;
  EXPECT_EQ(r.harvested_j, gold.harvested_j) << "trial " << trial;
  EXPECT_EQ(r.incident_power_w, gold.incident_power_w) << "trial " << trial;
  EXPECT_EQ(r.block_ok.size(), gold.num_blocks) << "trial " << trial;
}

struct LinkSummaryGold {
  std::uint64_t data_errors, data_bits;
  std::uint64_t aligned_errors, aligned_bits;
  std::uint64_t feedback_errors, feedback_bits;
  std::uint64_t sync_failures, false_syncs;
  double harvest_mean, harvest_variance;
};

void expect_summary_matches(const LinkSimConfig& config,
                            std::size_t payload_bytes, std::size_t trials,
                            const LinkSummaryGold& gold) {
  for (const std::size_t jobs : {1, 8}) {
    const ExperimentRunner runner(jobs);
    const LinkSimSummary s = runner.run(config, trials, payload_bytes);
    EXPECT_EQ(s.trials, trials) << "jobs " << jobs;
    EXPECT_EQ(s.data.errors(), gold.data_errors) << "jobs " << jobs;
    EXPECT_EQ(s.data.trials(), gold.data_bits) << "jobs " << jobs;
    EXPECT_EQ(s.data_aligned.errors(), gold.aligned_errors) << "jobs " << jobs;
    EXPECT_EQ(s.data_aligned.trials(), gold.aligned_bits) << "jobs " << jobs;
    EXPECT_EQ(s.feedback.errors(), gold.feedback_errors) << "jobs " << jobs;
    EXPECT_EQ(s.feedback.trials(), gold.feedback_bits) << "jobs " << jobs;
    EXPECT_EQ(s.sync_failures, gold.sync_failures) << "jobs " << jobs;
    EXPECT_EQ(s.false_syncs, gold.false_syncs) << "jobs " << jobs;
    EXPECT_EQ(s.harvested_per_frame_j.mean(), gold.harvest_mean)
        << "jobs " << jobs;
    EXPECT_EQ(s.harvested_per_frame_j.variance(), gold.harvest_variance)
        << "jobs " << jobs;
  }
}

TEST(LinkSimGolden, DefaultConfigBitIdenticalToPreRefactor) {
  const LinkSimConfig config;  // cw / static / feedback on, seed 1
  LinkSimulator sim(config);
  sim.set_payload_bytes(16);
  expect_trial_matches(sim, 0,
                       {true, true, 684, 0x1.b26a2p-1, 144, 0, 2, 0,
                        0x1.043b9ede20d3ap-26, 0x1.e66434p-16, 2});
  expect_trial_matches(sim, 1,
                       {true, true, 684, 0x1.b27492p-1, 144, 0, 2, 0,
                        0x1.043b9ede20d3ap-26, 0x1.e66434p-16, 2});
  expect_trial_matches(sim, 2,
                       {true, true, 684, 0x1.b264fep-1, 144, 0, 2, 0,
                        0x1.043b9ede20d3ap-26, 0x1.e66434p-16, 2});
  expect_summary_matches(config, 16, 5,
                         {0, 720, 0, 720, 0, 10, 0, 0,
                          0x1.043b9ede20d3ap-26, 0x0p+0});
}

TEST(LinkSimGolden, ImpairedConfigBitIdenticalToPreRefactor) {
  FDB_SKIP_GOLDEN_ON_NATIVE();
  // Every optional impairment at once: OFDM carrier, Rayleigh fading,
  // CFO, multipath, co-channel interferer — the widest synthesis path.
  LinkSimConfig config;
  config.carrier = "ofdm_tv";
  config.fading = "rayleigh";
  config.cfo_hz = 200.0;
  config.multipath = true;
  config.interferer_distance_m = 1.5;
  config.seed = 7;
  LinkSimulator sim(config);
  sim.set_payload_bytes(16);
  expect_trial_matches(sim, 0,
                       {false, false, 0, 0x0p+0, 144, 144, 2, 1,
                        0x1.990709c275557p-43, 0x1.5d7ccc8b88142p-21, 0});
  expect_trial_matches(sim, 1,
                       {false, false, 0, 0x0p+0, 144, 144, 2, 0,
                        0x1.960f4617b2f48p-26, 0x1.1e93f8c31fc2ep-15, 0});
  expect_trial_matches(sim, 2,
                       {false, false, 0, 0x0p+0, 144, 144, 2, 0,
                        0x1.8929f230dd223p-29, 0x1.28c72cd4d81e1p-17, 0});
  expect_summary_matches(config, 16, 5,
                         {720, 720, 0, 0, 3, 10, 5, 0,
                          0x1.4769aa196bb81p-27, 0x1.153f91a197802p-53});
}

TEST(LinkSimGolden, HalfDuplexConfigBitIdenticalToPreRefactor) {
  LinkSimConfig config;
  config.feedback_active = false;
  config.seed = 11;
  expect_summary_matches(config, 8, 5,
                         {0, 360, 0, 360, 0, 0, 0, 0,
                          0x1.e4019ee8f1509p-27, 0x0p+0});
}

// ---------------------------------------------------------------------
// Golden equivalence: NetworkSimulator (single-gateway = historical)
// ---------------------------------------------------------------------

struct NetTagGold {
  std::uint64_t attempted, delivered, collided, aborted, bits, outages;
  double harvested_j, spent_j;
};

struct NetSummaryGold {
  std::uint64_t slots, busy, useful, wasted, collisions, sync_failures;
  std::uint64_t latency_count;
  double latency_mean, latency_variance;
  std::vector<NetTagGold> tags;
};

NetworkSimConfig small4_config() {
  // Mirrors network_sim_test.cpp's small_config(4).
  NetworkSimConfig config;
  config.payload_bytes = 32;
  config.slots_per_trial = 96;
  config.ambient_position = {0.0, 0.0};
  config.receiver_position = {5.0, 0.0};
  for (std::size_t k = 0; k < 4; ++k) {
    NetworkTagConfig tag;
    tag.position = {5.0 + 1.0 * static_cast<double>(k % 3),
                    1.0 + 0.5 * static_cast<double>(k)};
    config.tags.push_back(tag);
  }
  config.seed = 5;
  return config;
}

void expect_network_matches(const NetworkSimConfig& config,
                            std::size_t trials, const NetSummaryGold& gold) {
  const NetworkSimulator sim(config);
  for (const std::size_t jobs : {1, 8}) {
    const ExperimentRunner runner(jobs);
    const auto s = runner.run_chunked<NetworkSimSummary>(
        trials, [&sim](NetworkSimSummary& acc, std::size_t t) {
          acc.add(sim.run_trial(t));
        });
    EXPECT_EQ(s.slots, gold.slots) << "jobs " << jobs;
    EXPECT_EQ(s.busy_slots, gold.busy) << "jobs " << jobs;
    EXPECT_EQ(s.useful_slots, gold.useful) << "jobs " << jobs;
    EXPECT_EQ(s.wasted_slots, gold.wasted) << "jobs " << jobs;
    EXPECT_EQ(s.collisions, gold.collisions) << "jobs " << jobs;
    EXPECT_EQ(s.sync_failures, gold.sync_failures) << "jobs " << jobs;
    EXPECT_EQ(s.detect_latency_slots.count(), gold.latency_count)
        << "jobs " << jobs;
    if (gold.latency_count > 0) {
      EXPECT_EQ(s.detect_latency_slots.mean(), gold.latency_mean)
          << "jobs " << jobs;
    }
    if (gold.latency_count > 1) {
      EXPECT_EQ(s.detect_latency_slots.variance(), gold.latency_variance)
          << "jobs " << jobs;
    }
    ASSERT_EQ(s.tags.size(), gold.tags.size());
    for (std::size_t k = 0; k < gold.tags.size(); ++k) {
      const auto& t = s.tags[k];
      const auto& g = gold.tags[k];
      EXPECT_EQ(t.frames_attempted, g.attempted) << "tag " << k;
      EXPECT_EQ(t.frames_delivered, g.delivered) << "tag " << k;
      EXPECT_EQ(t.frames_collided, g.collided) << "tag " << k;
      EXPECT_EQ(t.frames_aborted, g.aborted) << "tag " << k;
      EXPECT_EQ(t.payload_bits_delivered, g.bits) << "tag " << k;
      EXPECT_EQ(t.energy_outages, g.outages) << "tag " << k;
      EXPECT_EQ(t.harvested_j, g.harvested_j) << "tag " << k;
      EXPECT_EQ(t.spent_j, g.spent_j) << "tag " << k;
    }
  }
}

TEST(NetworkSimGolden, Small4BitIdenticalToPreRefactor) {
  FDB_SKIP_GOLDEN_ON_NATIVE();
  expect_network_matches(
      small4_config(), 3,
      {288, 162, 75, 98, 61, 0, 61, 0x1p+1, 0x0p+0,
       {{22, 7, 15, 15, 1792, 0, 0x1.a5297a291844dp-20, 0x0p+0},
        {14, 0, 14, 14, 0, 0, 0x1.c0dfe3040096p-21, 0x0p+0},
        {19, 4, 15, 15, 1024, 0, 0x1.ce0cc95d96d9ap-22, 0x0p+0},
        {21, 4, 17, 17, 1024, 0, 0x1.3935915ce18b6p-20, 0x0p+0}}});
}

TEST(NetworkSimGolden, FadingScenarioBitIdenticalToPreRefactor) {
  FDB_SKIP_GOLDEN_ON_NATIVE();
  auto scenario = make_scenario("fading-sweep", 6, 13);
  scenario.config.slots_per_trial = 96;
  expect_network_matches(
      scenario.config, 3,
      {288, 166, 36, 135, 88, 1, 88, 0x1p+1, 0x0p+0,
       {{14, 0, 14, 14, 0, 0, 0x1.57dd8a87166f5p-21, 0x0p+0},
        {15, 0, 14, 14, 0, 0, 0x1.ee1001ea7b5d2p-21, 0x0p+0},
        {15, 0, 15, 15, 0, 0, 0x1.61c9ebc341258p-18, 0x0p+0},
        {20, 3, 17, 17, 1536, 0, 0x1.16875a78f830dp-17, 0x0p+0},
        {15, 0, 15, 15, 0, 0, 0x1.1e4653865324ap-21, 0x0p+0},
        {14, 1, 13, 13, 512, 0, 0x0p+0, 0x0p+0}}});
}

TEST(NetworkSimGolden, EnergyStarvedTimeoutBitIdenticalToPreRefactor) {
  FDB_SKIP_GOLDEN_ON_NATIVE();
  auto scenario = make_scenario("energy-starved", 4, 9);
  scenario.config.slots_per_trial = 96;
  scenario.config.mac_kind = mac::MacKind::kTimeout;
  expect_network_matches(
      scenario.config, 2,
      {192, 110, 54, 125, 12, 0, 12, 0x1.c555555555556p+3,
       0x1.89b26c9b26c9cp+2,
       {{0, 0, 0, 0, 0, 64, 0x1.b88611611fd1bp-24, 0x1.643de477e1c33p-23},
        {4, 0, 4, 0, 0, 35, 0x1.85cce355608e5p-23, 0x1.85a3b1e31eedcp-23},
        {10, 6, 4, 0, 3072, 2, 0x1.6eabb215ac94ep-22, 0x1.b7bc6603faad2p-23},
        {4, 0, 4, 0, 0, 34, 0x1.85cce355608e5p-23,
         0x1.85a3b1e31eedcp-23}}});
}

// ---------------------------------------------------------------------
// Zero steady-state allocation
// ---------------------------------------------------------------------

TEST(SynthesisNoAlloc, LinkTrialArenaCapacityStableAfterWarmup) {
  LinkSimConfig config;
  config.multipath = true;  // widest scratch footprint
  config.cfo_hz = 100.0;
  config.interferer_distance_m = 1.0;
  const LinkSimulator sim(config);
  SynthArena arena;
  // Warm-up: first trial grows chunks, next reset coalesces them.
  (void)sim.run_trial(0, arena);
  (void)sim.run_trial(1, arena);
  const std::size_t warm = arena.capacity_bytes();
  EXPECT_GT(warm, 0u);
  for (std::uint64_t t = 2; t < 8; ++t) {
    (void)sim.run_trial(t, arena);
    EXPECT_EQ(arena.capacity_bytes(), warm) << "trial " << t;
  }
}

TEST(SynthesisNoAlloc, NetworkTrialArenaCapacityStableAfterWarmup) {
  auto scenario = make_scenario("multi-gateway-dense", 4, 3);
  scenario.config.slots_per_trial = 64;
  const NetworkSimulator sim(scenario.config);
  SynthArena arena;
  (void)sim.run_trial(0, arena);
  (void)sim.run_trial(1, arena);
  const std::size_t warm = arena.capacity_bytes();
  EXPECT_GT(warm, 0u);
  for (std::uint64_t t = 2; t < 6; ++t) {
    (void)sim.run_trial(t, arena);
    EXPECT_EQ(arena.capacity_bytes(), warm) << "trial " << t;
  }
}

TEST(SynthesisNoAlloc, HybridTrialArenaCapacityStableAfterWarmup) {
  // The hybrid escalation cache is chunk-lazy: a trial only carves the
  // esc_cache chunks its contested windows actually touch. Capacity
  // must still go flat once the deepest trial has been seen — chunks
  // are arena-backed, so reset() coalesces them like any other scratch.
  auto scenario = make_scenario("warehouse-10k", 200, 29);
  scenario.config.slots_per_trial = 48;
  scenario.config.fleet.fidelity = FidelityMode::kHybrid;
  const NetworkSimulator sim(scenario.config);
  SynthArena arena;
  std::size_t warm = 0;
  for (std::uint64_t t = 0; t < 4; ++t) {
    (void)sim.run_trial(t, arena);
    warm = std::max(warm, arena.capacity_bytes());
  }
  EXPECT_GT(warm, 0u);
  for (std::uint64_t t = 0; t < 4; ++t) {
    (void)sim.run_trial(t, arena);
    EXPECT_EQ(arena.capacity_bytes(), warm) << "replay trial " << t;
  }
}

TEST(SynthesisNoAlloc, ExplicitArenaMatchesThreadLocalPath) {
  const LinkSimulator sim(LinkSimConfig{});
  SynthArena arena;
  const TrialResult a = sim.run_trial(4, arena);
  const TrialResult b = sim.run_trial(4);  // thread-local arena overload
  EXPECT_EQ(a.data_bit_errors, b.data_bit_errors);
  EXPECT_EQ(a.harvested_j, b.harvested_j);
  EXPECT_EQ(static_cast<double>(a.sync_corr),
            static_cast<double>(b.sync_corr));
}

}  // namespace
}  // namespace fdb::sim
