// Bit-identity goldens for the active-set slot engine. run_trial()
// drives the wake-bucket/event-driven machinery; run_trial_reference()
// keeps the historical per-slot scans alive as the oracle. The two must
// produce EXPECT_EQ-identical summaries — not approximately equal —
// across scenario x MAC x fault x energy-gating configs, at --jobs 1
// and 8, because they share every RNG draw: a single divergent wake
// slot or draw-order swap shows up as a hard counter mismatch here.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <string>

#include "sim/network_sim.hpp"
#include "sim/runner.hpp"
#include "sim/scenarios.hpp"

namespace fdb::sim {
namespace {

NetworkSimSummary run_active(const NetworkSimulator& sim, std::size_t trials,
                             std::size_t jobs) {
  const ExperimentRunner runner(jobs);
  return runner.run_chunked<NetworkSimSummary>(
      trials, [&sim](NetworkSimSummary& acc, std::size_t trial) {
        acc.add(sim.run_trial(trial));
      });
}

NetworkSimSummary run_reference(const NetworkSimulator& sim,
                                std::size_t trials) {
  NetworkSimSummary acc;
  for (std::size_t t = 0; t < trials; ++t) {
    acc.add(sim.run_trial_reference(t));
  }
  return acc;
}

void expect_summaries_identical(const NetworkSimSummary& a,
                                const NetworkSimSummary& b) {
  ASSERT_EQ(a.tags.size(), b.tags.size());
  ASSERT_EQ(a.gateway_decodes.size(), b.gateway_decodes.size());
  for (std::size_t g = 0; g < a.gateway_decodes.size(); ++g) {
    EXPECT_EQ(a.gateway_decodes[g], b.gateway_decodes[g]);
  }
  EXPECT_EQ(a.trials, b.trials);
  EXPECT_EQ(a.slots, b.slots);
  EXPECT_EQ(a.busy_slots, b.busy_slots);
  EXPECT_EQ(a.useful_slots, b.useful_slots);
  EXPECT_EQ(a.wasted_slots, b.wasted_slots);
  EXPECT_EQ(a.collisions, b.collisions);
  EXPECT_EQ(a.sync_failures, b.sync_failures);
  EXPECT_EQ(a.frames_resolved_analytic, b.frames_resolved_analytic);
  EXPECT_EQ(a.frames_escalated, b.frames_escalated);
  EXPECT_EQ(a.frames_culled, b.frames_culled);
  EXPECT_EQ(a.faulted_frames_attempted, b.faulted_frames_attempted);
  EXPECT_EQ(a.faulted_frames_delivered, b.faulted_frames_delivered);
  EXPECT_EQ(a.frames_lost_outage, b.frames_lost_outage);
  EXPECT_EQ(a.frames_lost_sag, b.frames_lost_sag);
  EXPECT_EQ(a.frames_lost_interference, b.frames_lost_interference);
  EXPECT_EQ(a.frames_lost_tag_fault, b.frames_lost_tag_fault);
  EXPECT_EQ(a.relay_tx_frames, b.relay_tx_frames);
  EXPECT_EQ(a.relay_rx_frames, b.relay_rx_frames);
  EXPECT_EQ(a.relayed_delivered, b.relayed_delivered);
  EXPECT_EQ(a.detect_latency_slots.count(), b.detect_latency_slots.count());
  // Bit-identical, not approximately equal: the merge tree is fixed.
  EXPECT_EQ(a.detect_latency_slots.mean(), b.detect_latency_slots.mean());
  EXPECT_EQ(a.detect_latency_slots.variance(),
            b.detect_latency_slots.variance());
  for (std::size_t k = 0; k < a.tags.size(); ++k) {
    EXPECT_EQ(a.tags[k].frames_attempted, b.tags[k].frames_attempted)
        << "tag " << k;
    EXPECT_EQ(a.tags[k].frames_delivered, b.tags[k].frames_delivered)
        << "tag " << k;
    EXPECT_EQ(a.tags[k].frames_collided, b.tags[k].frames_collided)
        << "tag " << k;
    EXPECT_EQ(a.tags[k].frames_aborted, b.tags[k].frames_aborted)
        << "tag " << k;
    EXPECT_EQ(a.tags[k].payload_bits_delivered,
              b.tags[k].payload_bits_delivered)
        << "tag " << k;
    EXPECT_EQ(a.tags[k].energy_outages, b.tags[k].energy_outages)
        << "tag " << k;
    EXPECT_EQ(a.tags[k].harvested_j, b.tags[k].harvested_j) << "tag " << k;
    EXPECT_EQ(a.tags[k].spent_j, b.tags[k].spent_j) << "tag " << k;
  }
}

/// Runs the reference oracle serially and the active-set engine at
/// jobs 1 and 8, and pins all three summaries EXPECT_EQ-identical.
void expect_engines_agree(const NetworkSimConfig& config,
                          std::size_t trials = 3) {
  const NetworkSimulator sim(config);
  const auto ref = run_reference(sim, trials);
  {
    SCOPED_TRACE("active jobs=1 vs reference");
    expect_summaries_identical(run_active(sim, trials, 1), ref);
  }
  {
    SCOPED_TRACE("active jobs=8 vs reference");
    expect_summaries_identical(run_active(sim, trials, 8), ref);
  }
}

// ----- scenario x MAC x fault x energy-gating golden matrix ----------

TEST(ActiveSetEngine, EnergyStarvedGatedMatchesReference) {
  auto scenario = make_scenario("energy-starved", 12, 17);
  scenario.config.slots_per_trial = 128;
  ASSERT_TRUE(scenario.config.energy_gating)
      << "scenario should exercise the gated wake path";
  expect_engines_agree(scenario.config);
}

TEST(ActiveSetEngine, FadingSweepWithFaultsMatchesReference) {
  auto scenario = make_scenario("fading-sweep", 10, 23);
  scenario.config.slots_per_trial = 128;
  scenario.config.faults.intensity = 0.2;
  expect_engines_agree(scenario.config);
}

TEST(ActiveSetEngine, WarehouseMeshRelayScheduledMatchesReference) {
  auto scenario = make_scenario("warehouse-mesh", 24, 31);
  scenario.config.slots_per_trial = 160;
  ASSERT_TRUE(scenario.config.relay.enabled);
  ASSERT_EQ(scenario.config.mac_kind, mac::MacKind::kScheduled);
  expect_engines_agree(scenario.config);
}

TEST(ActiveSetEngine, DenseNotifyAbortMatchesReference) {
  auto scenario = make_scenario("dense-deployment", 16, 7);
  scenario.config.slots_per_trial = 128;
  scenario.config.mac_kind = mac::MacKind::kCollisionNotify;
  // Distance-dependent notification latency exercises the mid-frame
  // abort -> backoff reschedule transition under the wake buckets.
  scenario.config.notify_slots_per_m = 0.5;
  expect_engines_agree(scenario.config);
}

TEST(ActiveSetEngine, TimeoutMacMatchesReference) {
  auto scenario = make_scenario("near-far", 8, 11);
  scenario.config.slots_per_trial = 128;
  scenario.config.mac_kind = mac::MacKind::kTimeout;
  expect_engines_agree(scenario.config);
}

TEST(ActiveSetEngine, HybridAndAnalyticFleetModesMatchReference) {
  for (const FidelityMode mode :
       {FidelityMode::kAnalytic, FidelityMode::kHybrid}) {
    SCOPED_TRACE(fidelity_name(mode));
    auto scenario = make_scenario("warehouse-10k", 300, 29);
    scenario.config.slots_per_trial = 48;
    scenario.config.fleet.fidelity = mode;
    expect_engines_agree(scenario.config, 2);
  }
}

TEST(ActiveSetEngine, BestGatewayFailoverMatchesReference) {
  auto scenario = make_scenario("gateway-handoff-line", 10, 13);
  scenario.config.slots_per_trial = 160;
  scenario.config.combining = GatewayCombining::kBestGateway;
  scenario.config.failover_streak_frames = 2;
  scenario.config.faults.intensity = 0.3;  // make links actually die
  expect_engines_agree(scenario.config);
}

// ----- wake-bucket edge cases ----------------------------------------

/// Tight contention window: backoff_min_slots = 1 with a zero-exponent
/// cap makes every backoff draw land in {0}..{1}, so initial waits of 0
/// fire in slot 0 and whole cohorts wake in the same bucket.
TEST(ActiveSetEngine, ZeroWaitAndSimultaneousWakeStorm) {
  NetworkSimConfig config;
  config.payload_bytes = 32;
  config.slots_per_trial = 96;
  config.ambient_position = {0.0, 0.0};
  config.receiver_position = {5.0, 0.0};
  for (std::size_t k = 0; k < 12; ++k) {
    NetworkTagConfig tag;
    tag.position = {5.0 + 0.4 * static_cast<double>(k % 4),
                    0.5 + 0.3 * static_cast<double>(k)};
    config.tags.push_back(tag);
  }
  config.backoff_min_slots = 1;
  config.backoff_max_exponent = 0;
  config.seed = 41;
  for (const auto kind :
       {mac::MacKind::kTimeout, mac::MacKind::kCollisionNotify}) {
    SCOPED_TRACE(static_cast<int>(kind));
    config.mac_kind = kind;
    expect_engines_agree(config, 4);
  }
}

/// Immediate notifications force aborts right after frame start: the
/// active engine must cancel the stale verdict wake and reschedule the
/// tag's backoff wake without double-firing either event.
TEST(ActiveSetEngine, NotifyAbortRescheduleMatchesReference) {
  NetworkSimConfig config;
  config.payload_bytes = 32;
  config.slots_per_trial = 96;
  config.ambient_position = {0.0, 0.0};
  config.receiver_position = {5.0, 0.0};
  for (std::size_t k = 0; k < 8; ++k) {
    NetworkTagConfig tag;
    tag.position = {5.5, 0.5 + 0.25 * static_cast<double>(k)};
    config.tags.push_back(tag);
  }
  config.mac_kind = mac::MacKind::kCollisionNotify;
  config.notify_delay_slots = 1;  // abort in the first overlap slot
  config.backoff_min_slots = 2;
  config.seed = 43;
  expect_engines_agree(config, 4);
}

/// Trial-boundary parking: waits that cannot complete before the trial
/// ends park the tag (counter pinned past the horizon) instead of
/// scheduling a wake, and the end-of-trial energy fast-forward must
/// still account every idle slot.
TEST(ActiveSetEngine, EndOfTrialParkingMatchesReference) {
  NetworkSimConfig config;
  config.payload_bytes = 64;  // long frames vs a short horizon
  config.slots_per_trial = 24;
  config.ambient_position = {0.0, 0.0};
  config.receiver_position = {5.0, 0.0};
  for (std::size_t k = 0; k < 6; ++k) {
    NetworkTagConfig tag;
    tag.position = {6.0, 0.5 + 0.5 * static_cast<double>(k)};
    config.tags.push_back(tag);
  }
  config.backoff_min_slots = 8;
  config.backoff_max_exponent = 3;
  config.seed = 47;
  expect_engines_agree(config, 4);
}

}  // namespace
}  // namespace fdb::sim
