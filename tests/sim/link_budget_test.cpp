#include "sim/link_budget.hpp"

#include <gtest/gtest.h>

namespace fdb::sim {
namespace {

LinkSimConfig base_config() {
  LinkSimConfig config;
  config.modem = core::FdModemConfig::make(4, 6);
  config.carrier = "cw";
  config.fading = "static";
  return config;
}

TEST(LinkBudget, SwingShrinksWithBackscatterDistance) {
  auto near = base_config();
  auto far = base_config();
  far.a_to_b_m = 4.0;
  EXPECT_GT(compute_link_budget(near).delta_env_at_b,
            compute_link_budget(far).delta_env_at_b);
}

TEST(LinkBudget, SwingGrowsWithReflectivity) {
  auto low = base_config();
  low.reflection_rho = 0.1;
  auto high = base_config();
  high.reflection_rho = 0.9;
  EXPECT_GT(compute_link_budget(high).delta_env_at_b,
            compute_link_budget(low).delta_env_at_b);
}

TEST(LinkBudget, PredictedBerOrdering) {
  // The feedback stream averages far longer than a chip: its predicted
  // BER is never worse at equal swing.
  auto config = base_config();
  config.noise_power_override_w = 1e-9;
  const auto budget = compute_link_budget(config);
  EXPECT_LE(budget.predicted_feedback_ber, budget.predicted_data_ber + 1e-12);
}

TEST(LinkBudget, SimulationBeatsOrMatchesPrediction) {
  // The analytic model ignores the RC pre-filter, which only *removes*
  // noise: measured BER must not exceed the prediction by more than
  // Monte-Carlo slack, and should be nonzero at this operating point.
  auto config = base_config();
  config.noise_power_override_w = 8e-9;
  const auto budget = compute_link_budget(config);
  ASSERT_GT(budget.predicted_data_ber, 1e-4);
  ASSERT_LT(budget.predicted_data_ber, 0.4);

  LinkSimulator sim(config);
  sim.set_payload_bytes(16);
  const auto summary = sim.run(20);
  // Conditioned on correct acquisition (what the model predicts), the
  // measured BER must stay within small-multiple agreement; the model
  // ignores slicer threshold jitter, hence the factor.
  EXPECT_LT(summary.aligned_data_ber(),
            budget.predicted_data_ber * 4.0 + 0.02);
  EXPECT_GT(summary.data_aligned.trials(), 0u);
}

TEST(LinkBudget, HarvestRatePositiveAndScalesWithPower) {
  auto low = base_config();
  auto high = base_config();
  high.tx_power_w = 10.0;
  const auto b_low = compute_link_budget(low);
  const auto b_high = compute_link_budget(high);
  EXPECT_GE(b_high.harvested_per_second_j, b_low.harvested_per_second_j);
  EXPECT_GT(b_high.incident_at_b_w, b_low.incident_at_b_w);
}

TEST(LinkBudget, FeedbackInactiveHarvestsMore) {
  auto on = base_config();
  auto off = base_config();
  off.feedback_active = false;
  // When B never reflects it absorbs everything.
  EXPECT_GE(compute_link_budget(off).harvested_per_second_j,
            compute_link_budget(on).harvested_per_second_j);
}

}  // namespace
}  // namespace fdb::sim
