#include "sim/link_budget.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/theory.hpp"

namespace fdb::sim {
namespace {

LinkSimConfig base_config() {
  LinkSimConfig config;
  config.modem = core::FdModemConfig::make(4, 6);
  config.carrier = "cw";
  config.fading = "static";
  return config;
}

TEST(LinkBudget, SwingShrinksWithBackscatterDistance) {
  auto near = base_config();
  auto far = base_config();
  far.a_to_b_m = 4.0;
  EXPECT_GT(compute_link_budget(near).delta_env_at_b,
            compute_link_budget(far).delta_env_at_b);
}

TEST(LinkBudget, SwingGrowsWithReflectivity) {
  auto low = base_config();
  low.reflection_rho = 0.1;
  auto high = base_config();
  high.reflection_rho = 0.9;
  EXPECT_GT(compute_link_budget(high).delta_env_at_b,
            compute_link_budget(low).delta_env_at_b);
}

TEST(LinkBudget, PredictedBerOrdering) {
  // The feedback stream averages far longer than a chip: its predicted
  // BER is never worse at equal swing.
  auto config = base_config();
  config.noise_power_override_w = 1e-9;
  const auto budget = compute_link_budget(config);
  EXPECT_LE(budget.predicted_feedback_ber, budget.predicted_data_ber + 1e-12);
}

TEST(LinkBudget, SimulationBeatsOrMatchesPrediction) {
  // The analytic model ignores the RC pre-filter, which only *removes*
  // noise: measured BER must not exceed the prediction by more than
  // Monte-Carlo slack, and should be nonzero at this operating point.
  auto config = base_config();
  config.noise_power_override_w = 8e-9;
  const auto budget = compute_link_budget(config);
  ASSERT_GT(budget.predicted_data_ber, 1e-4);
  ASSERT_LT(budget.predicted_data_ber, 0.4);

  LinkSimulator sim(config);
  sim.set_payload_bytes(16);
  const auto summary = sim.run(20);
  // Conditioned on correct acquisition (what the model predicts), the
  // measured BER must stay within small-multiple agreement; the model
  // ignores slicer threshold jitter, hence the factor.
  EXPECT_LT(summary.aligned_data_ber(),
            budget.predicted_data_ber * 4.0 + 0.02);
  EXPECT_GT(summary.data_aligned.trials(), 0u);
}

TEST(LinkBudget, HarvestRatePositiveAndScalesWithPower) {
  auto low = base_config();
  auto high = base_config();
  high.tx_power_w = 10.0;
  const auto b_low = compute_link_budget(low);
  const auto b_high = compute_link_budget(high);
  EXPECT_GE(b_high.harvested_per_second_j, b_low.harvested_per_second_j);
  EXPECT_GT(b_high.incident_at_b_w, b_low.incident_at_b_w);
}

// ---------------------------------------------------------------------
// Fleet-engine analytic helpers: envelope_swing and analytic_margin_db
// pinned to hand-evaluated values (sigma = 0.05, n_avg = 4, target BER
// 1e-3 => required SINR = qfunc_inv(1e-3)^2 ~ 9.5495).
// ---------------------------------------------------------------------

TEST(FleetAnalytic, EnvelopeSwingInPhaseReflection) {
  // A reflection aligned with the carrier moves the envelope by its
  // full magnitude: |1 + 0.1| - |1 + 0| = 0.1.
  EXPECT_NEAR(envelope_swing({1.0f, 0.0f}, {0.1f, 0.0f}, {0.0f, 0.0f}),
              0.1, 1e-7);
  // Sign of the swing never matters (the slicer sees a level distance).
  EXPECT_NEAR(envelope_swing({1.0f, 0.0f}, {0.0f, 0.0f}, {0.1f, 0.0f}),
              0.1, 1e-7);
}

TEST(FleetAnalytic, EnvelopeSwingQuadratureReflectionBarelyMoves) {
  // In quadrature the envelope only grows second-order:
  // |1 + 0.1i| - 1 = sqrt(1.01) - 1 ~ 4.9876e-3 — twenty times less
  // than the in-phase swing. The phase projection emerges from the
  // complex arithmetic; nothing models it explicitly.
  EXPECT_NEAR(envelope_swing({1.0f, 0.0f}, {0.0f, 0.1f}, {0.0f, 0.0f}),
              std::sqrt(1.01) - 1.0, 1e-6);
}

TEST(FleetAnalytic, MarginNoiseOnlyHandValue) {
  // SINR = (0.1)^2/(0.0025/4) = 16 -> margin 10*log10(16/9.5495).
  EXPECT_NEAR(analytic_margin_db(0.2, 0.0, 0.05, 4, 1e-3), 2.2416, 2e-3);
  // 2.5x the swing: SINR 100 -> 10.2 dB over threshold (clear-deliver
  // at the default 6 dB band edge).
  EXPECT_NEAR(analytic_margin_db(0.5, 0.0, 0.05, 4, 1e-3), 10.2000, 2e-3);
}

TEST(FleetAnalytic, MarginEqualPowerInterfererHandValue) {
  // Equal-swing interferer drives SINR to 0.9412 -> -10.06 dB margin:
  // an optimistic +2.24 dB link turns pessimistically hopeless, i.e.
  // squarely contested under the default (6, 5) band.
  EXPECT_NEAR(analytic_margin_db(0.2, 0.2, 0.05, 4, 1e-3), -10.063, 5e-3);
}

TEST(FleetAnalytic, MarginDeadLinkIsMinusInfinity) {
  const double margin = analytic_margin_db(0.0, 0.0, 0.05, 4, 1e-3);
  EXPECT_TRUE(std::isinf(margin));
  EXPECT_LT(margin, 0.0);
}

TEST(FleetAnalytic, MarginConsistentWithTheoryClosedForms) {
  // analytic_margin_db is exactly the dB ratio of envelope_sinr to
  // ook_required_sinr — no hidden fudge factors.
  const double margin = analytic_margin_db(0.3, 0.1, 0.07, 20, 1e-3);
  const double expected =
      10.0 * std::log10(core::envelope_sinr(0.3, 0.1, 0.07, 20) /
                        core::ook_required_sinr(1e-3));
  EXPECT_NEAR(margin, expected, 1e-9);
}

TEST(LinkBudget, FeedbackInactiveHarvestsMore) {
  auto on = base_config();
  auto off = base_config();
  off.feedback_active = false;
  // When B never reflects it absorbs everything.
  EXPECT_GE(compute_link_budget(off).harvested_per_second_j,
            compute_link_budget(on).harvested_per_second_j);
}

}  // namespace
}  // namespace fdb::sim
