// The ExperimentRunner's load-bearing contract: trial-level determinism
// means the merged result is bit-identical at any job count. Everything
// downstream (comparable sweeps across machines, CI reproducibility,
// perf trajectories) leans on this, so the tests compare doubles with
// exact equality on purpose.
#include "sim/runner.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "sim/sweep.hpp"

namespace fdb::sim {
namespace {

LinkSimConfig fast_config(std::uint64_t seed = 42) {
  LinkSimConfig config;
  config.modem = core::FdModemConfig::make(/*block_size_bytes=*/4,
                                           /*samples_per_chip=*/6);
  config.carrier = "cw";
  config.fading = "static";
  config.noise_power_override_w = 3e-9;  // noisy: error counts vary by trial
  config.seed = seed;
  return config;
}

void expect_bit_identical(const LinkSimSummary& a, const LinkSimSummary& b) {
  EXPECT_EQ(a.trials, b.trials);
  EXPECT_EQ(a.sync_failures, b.sync_failures);
  EXPECT_EQ(a.false_syncs, b.false_syncs);
  EXPECT_EQ(a.data.errors(), b.data.errors());
  EXPECT_EQ(a.data.trials(), b.data.trials());
  EXPECT_EQ(a.data_aligned.errors(), b.data_aligned.errors());
  EXPECT_EQ(a.feedback.errors(), b.feedback.errors());
  EXPECT_EQ(a.feedback.trials(), b.feedback.trials());
  // Exact double equality: the merge tree must not depend on jobs.
  EXPECT_EQ(a.harvested_per_frame_j.count(), b.harvested_per_frame_j.count());
  EXPECT_EQ(a.harvested_per_frame_j.mean(), b.harvested_per_frame_j.mean());
  EXPECT_EQ(a.harvested_per_frame_j.variance(),
            b.harvested_per_frame_j.variance());
  EXPECT_EQ(a.harvested_per_frame_j.min(), b.harvested_per_frame_j.min());
  EXPECT_EQ(a.harvested_per_frame_j.max(), b.harvested_per_frame_j.max());
}

TEST(ExperimentRunner, BitIdenticalAcrossJobCounts) {
  // The headline contract from the refactor: jobs=1 and jobs=8 produce
  // bit-identical merged LinkStats for the same seed. 50 trials spans
  // several chunks so the work genuinely interleaves at jobs=8.
  const auto config = fast_config();
  const auto serial = ExperimentRunner(1).run(config, 50, 12);
  const auto parallel = ExperimentRunner(8).run(config, 50, 12);
  expect_bit_identical(serial, parallel);
  EXPECT_EQ(serial.trials, 50u);
  // The operating point must actually exercise non-trivial outcomes or
  // the comparison proves nothing.
  EXPECT_GT(serial.data.errors() + serial.sync_failures, 0u);
}

TEST(ExperimentRunner, BitIdenticalOnOddChunkBoundaries) {
  // Trial counts that don't divide into chunks evenly: partial last
  // chunk must land in the same merge slot at any parallelism.
  const auto config = fast_config(7);
  for (const std::size_t trials : {1ul, ExperimentRunner::kTrialsPerChunk - 1,
                                   ExperimentRunner::kTrialsPerChunk + 1,
                                   3 * ExperimentRunner::kTrialsPerChunk + 5}) {
    const auto a = ExperimentRunner(1).run(config, trials, 8);
    const auto b = ExperimentRunner(5).run(config, trials, 8);
    expect_bit_identical(a, b);
    EXPECT_EQ(a.trials, trials);
  }
}

TEST(ExperimentRunner, MatchesSerialSimulatorTrialForTrial) {
  // The runner runs exactly trials [0, n) of the same simulator — the
  // integer outcome counts must match the serial loop (the Welford
  // moments may differ in the last bit because the serial loop's
  // reduction tree is per-trial, not per-chunk).
  const auto config = fast_config(3);
  LinkSimulator sim(config);
  sim.set_payload_bytes(8);
  const auto serial = sim.run(40);
  const auto pooled = ExperimentRunner(4).run(config, 40, 8);
  EXPECT_EQ(serial.trials, pooled.trials);
  EXPECT_EQ(serial.sync_failures, pooled.sync_failures);
  EXPECT_EQ(serial.data.errors(), pooled.data.errors());
  EXPECT_EQ(serial.data.trials(), pooled.data.trials());
  EXPECT_EQ(serial.feedback.errors(), pooled.feedback.errors());
  EXPECT_NEAR(serial.harvested_per_frame_j.mean(),
              pooled.harvested_per_frame_j.mean(), 1e-15);
}

TEST(ExperimentRunner, RunTrialIsPure) {
  // Same index twice on one simulator, and the same index on a fresh
  // simulator, all produce the same outcome.
  LinkSimulator sim(fast_config(11));
  sim.set_payload_bytes(8);
  const auto a = sim.run_trial(17);
  const auto b = sim.run_trial(17);
  LinkSimulator sim2(fast_config(11));
  sim2.set_payload_bytes(8);
  const auto c = sim2.run_trial(17);
  EXPECT_EQ(a.data_bit_errors, b.data_bit_errors);
  EXPECT_EQ(a.harvested_j, b.harvested_j);
  EXPECT_EQ(a.data_bit_errors, c.data_bit_errors);
  EXPECT_EQ(a.harvested_j, c.harvested_j);
  EXPECT_EQ(a.sync_sample, c.sync_sample);
}

TEST(ExperimentRunner, TrialsDrawDistinctRandomness) {
  // Different trial indices must not repeat the same exchange.
  LinkSimulator sim(fast_config(13));
  sim.set_payload_bytes(8);
  const auto a = sim.run_trial(0);
  const auto b = sim.run_trial(1);
  EXPECT_TRUE(a.harvested_j != b.harvested_j ||
              a.sync_corr != b.sync_corr);
}

TEST(ExperimentRunner, BatchKeepsScenarioOrder) {
  std::vector<Scenario> scenarios;
  // Vary the ambient-to-B distance: incident power (and therefore
  // harvested energy) at B falls monotonically with it.
  for (const double d : {2.0, 5.0, 10.0}) {
    auto config = fast_config(9);
    config.ambient_to_b_m = d;
    scenarios.push_back({config, 10, 8});
  }
  const auto serial = ExperimentRunner(1).run_batch(scenarios);
  const auto parallel = ExperimentRunner(8).run_batch(scenarios);
  ASSERT_EQ(serial.size(), 3u);
  ASSERT_EQ(parallel.size(), 3u);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    expect_bit_identical(serial[i], parallel[i]);
  }
  // Harvested energy falls with distance — confirms slot i really holds
  // scenario i and not whichever finished first.
  EXPECT_GT(serial[0].harvested_per_frame_j.mean(),
            serial[2].harvested_per_frame_j.mean());
}

TEST(ExperimentRunner, RunSweepMapsAxisToScenarios) {
  const std::vector<double> axis = {2.0, 8.0};
  const ExperimentRunner runner(4);
  const auto summaries = runner.run_sweep<double>(
      axis, [](const double& d) {
        auto config = fast_config(21);
        config.ambient_to_b_m = d;
        return Scenario{config, 8, 8};
      });
  ASSERT_EQ(summaries.size(), 2u);
  EXPECT_EQ(summaries[0].trials, 8u);
  EXPECT_GT(summaries[0].harvested_per_frame_j.mean(),
            summaries[1].harvested_per_frame_j.mean());
}

TEST(ExperimentRunner, MapPreservesIndexOrder) {
  const ExperimentRunner runner(8);
  const auto out = runner.map(100, [](std::size_t i) { return 3 * i; });
  ASSERT_EQ(out.size(), 100u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], 3 * i);
}

TEST(ExperimentRunner, MapZeroItems) {
  const ExperimentRunner runner(4);
  EXPECT_TRUE(runner.map(0, [](std::size_t i) { return i; }).empty());
}

TEST(ExperimentRunner, RunZeroTrials) {
  const auto summary = ExperimentRunner(4).run(fast_config(), 0, 8);
  EXPECT_EQ(summary.trials, 0u);
  EXPECT_EQ(summary.data.trials(), 0u);
}

TEST(ExperimentRunner, PropagatesWorkerExceptions) {
  const ExperimentRunner runner(4);
  EXPECT_THROW(runner.map(64,
                          [](std::size_t i) -> int {
                            if (i == 40) throw std::runtime_error("boom");
                            return 0;
                          }),
               std::runtime_error);
}

struct SumAcc {
  std::uint64_t sum = 0;
  void merge(const SumAcc& other) { sum += other.sum; }
};

TEST(ExperimentRunner, RunChunkedAccumulates) {
  const ExperimentRunner runner(8);
  const auto acc = runner.run_chunked<SumAcc>(
      1000, [](SumAcc& a, std::size_t i) { a.sum += i; });
  EXPECT_EQ(acc.sum, 999u * 1000u / 2u);
}

TEST(ExperimentRunner, ZeroJobsSelectsHardware) {
  EXPECT_GE(ExperimentRunner(0).jobs(), 1u);
  EXPECT_EQ(ExperimentRunner(3).jobs(), 3u);
}

TEST(Sweep, ParallelSweepMatchesSerial) {
  // sweep() is rebuilt on the runner: rows must keep axis order and
  // match the serial rendering exactly for a pure row function.
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  const std::function<std::vector<double>(const double&)> row_fn =
      [](const double& x) { return std::vector<double>{x, x * x}; };
  const auto serial = sweep<double>({"x", "x2"}, xs, row_fn);
  const auto parallel =
      sweep<double>(ExperimentRunner(4), {"x", "x2"}, xs, row_fn);
  EXPECT_EQ(serial.render(), parallel.render());
}

}  // namespace
}  // namespace fdb::sim
