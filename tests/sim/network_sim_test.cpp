#include "sim/network_sim.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "sim/runner.hpp"
#include "sim/scenarios.hpp"

namespace fdb::sim {
namespace {

/// Small, fast config: 4 tags around the receiver, short trials.
NetworkSimConfig small_config(std::size_t num_tags = 4) {
  NetworkSimConfig config;
  config.payload_bytes = 32;  // 4 blocks -> 5-slot frames
  config.slots_per_trial = 96;
  config.ambient_position = {0.0, 0.0};
  config.receiver_position = {5.0, 0.0};
  config.tags.clear();
  for (std::size_t k = 0; k < num_tags; ++k) {
    NetworkTagConfig tag;
    tag.position = {5.0 + 1.0 * static_cast<double>(k % 3),
                    1.0 + 0.5 * static_cast<double>(k)};
    config.tags.push_back(tag);
  }
  config.seed = 5;
  return config;
}

NetworkSimSummary run_with_runner(const NetworkSimulator& sim,
                                  std::size_t trials, std::size_t jobs) {
  const ExperimentRunner runner(jobs);
  return runner.run_chunked<NetworkSimSummary>(
      trials, [&sim](NetworkSimSummary& acc, std::size_t trial) {
        acc.add(sim.run_trial(trial));
      });
}

void expect_summaries_identical(const NetworkSimSummary& a,
                                const NetworkSimSummary& b) {
  ASSERT_EQ(a.tags.size(), b.tags.size());
  ASSERT_EQ(a.gateway_decodes.size(), b.gateway_decodes.size());
  for (std::size_t g = 0; g < a.gateway_decodes.size(); ++g) {
    EXPECT_EQ(a.gateway_decodes[g], b.gateway_decodes[g]);
  }
  EXPECT_EQ(a.trials, b.trials);
  EXPECT_EQ(a.slots, b.slots);
  EXPECT_EQ(a.busy_slots, b.busy_slots);
  EXPECT_EQ(a.useful_slots, b.useful_slots);
  EXPECT_EQ(a.wasted_slots, b.wasted_slots);
  EXPECT_EQ(a.collisions, b.collisions);
  EXPECT_EQ(a.sync_failures, b.sync_failures);
  EXPECT_EQ(a.detect_latency_slots.count(), b.detect_latency_slots.count());
  // Bit-identical, not approximately equal: the merge tree is fixed.
  EXPECT_EQ(a.detect_latency_slots.mean(), b.detect_latency_slots.mean());
  EXPECT_EQ(a.detect_latency_slots.variance(),
            b.detect_latency_slots.variance());
  for (std::size_t k = 0; k < a.tags.size(); ++k) {
    EXPECT_EQ(a.tags[k].frames_attempted, b.tags[k].frames_attempted);
    EXPECT_EQ(a.tags[k].frames_delivered, b.tags[k].frames_delivered);
    EXPECT_EQ(a.tags[k].frames_collided, b.tags[k].frames_collided);
    EXPECT_EQ(a.tags[k].frames_aborted, b.tags[k].frames_aborted);
    EXPECT_EQ(a.tags[k].payload_bits_delivered,
              b.tags[k].payload_bits_delivered);
    EXPECT_EQ(a.tags[k].energy_outages, b.tags[k].energy_outages);
    EXPECT_EQ(a.tags[k].harvested_j, b.tags[k].harvested_j);
    EXPECT_EQ(a.tags[k].spent_j, b.tags[k].spent_j);
  }
}

TEST(NetworkSim, TrialIsPureAndDeterministic) {
  const NetworkSimulator sim(small_config());
  const auto a = sim.run_trial(3);
  const auto b = sim.run_trial(3);
  ASSERT_EQ(a.tags.size(), b.tags.size());
  EXPECT_EQ(a.busy_slots, b.busy_slots);
  EXPECT_EQ(a.useful_slots, b.useful_slots);
  EXPECT_EQ(a.wasted_slots, b.wasted_slots);
  EXPECT_EQ(a.collisions, b.collisions);
  for (std::size_t k = 0; k < a.tags.size(); ++k) {
    EXPECT_EQ(a.tags[k].frames_attempted, b.tags[k].frames_attempted);
    EXPECT_EQ(a.tags[k].frames_delivered, b.tags[k].frames_delivered);
    EXPECT_EQ(a.tags[k].harvested_j, b.tags[k].harvested_j);
  }
}

TEST(NetworkSim, BitIdenticalAcrossJobCounts) {
  const NetworkSimulator sim(small_config());
  const auto j1 = run_with_runner(sim, 5, 1);
  const auto j8 = run_with_runner(sim, 5, 8);
  expect_summaries_identical(j1, j8);
}

TEST(NetworkSim, SingleTagNeverCollides) {
  auto config = small_config(1);
  for (const auto kind :
       {mac::MacKind::kTimeout, mac::MacKind::kCollisionNotify}) {
    config.mac_kind = kind;
    const NetworkSimulator sim(config);
    const auto summary = sim.run(3);
    EXPECT_EQ(summary.collisions, 0u);
    EXPECT_EQ(summary.tags[0].frames_collided, 0u);
    EXPECT_GT(summary.frames_delivered(), 0u);
    // A lone tag in a clean static channel also decodes everything.
    EXPECT_EQ(summary.sync_failures, 0u);
  }
}

TEST(NetworkSim, StatsInternallyConsistent) {
  auto config = small_config(6);
  for (const auto kind :
       {mac::MacKind::kTimeout, mac::MacKind::kCollisionNotify}) {
    config.mac_kind = kind;
    const NetworkSimulator sim(config);
    const auto summary = sim.run(3);
    EXPECT_EQ(summary.trials, 3u);
    EXPECT_EQ(summary.slots, 3u * config.slots_per_trial);
    EXPECT_LE(summary.busy_slots, summary.slots);
    EXPECT_LE(summary.wasted_slots, summary.slots);
    EXPECT_LE(summary.wasted_airtime_fraction(), 1.0);
    for (const auto& tag : summary.tags) {
      // Every attempt resolves as at most one of delivered / collided
      // (aborts count as collided when overlapped).
      EXPECT_LE(tag.frames_delivered + tag.frames_collided,
                tag.frames_attempted);
      EXPECT_LE(tag.frames_delivered, tag.frames_attempted);
      EXPECT_EQ(tag.payload_bits_delivered,
                tag.frames_delivered * config.payload_bytes * 8);
      EXPECT_GT(tag.harvested_j, 0.0);
      EXPECT_EQ(tag.energy_outages, 0u);  // gating disabled here
    }
    if (summary.detect_latency_slots.count() > 0) {
      EXPECT_GE(summary.detect_latency_slots.min(), 1.0);
    }
  }
}

TEST(NetworkSim, NotifyBeatsTimeoutOnWasteInDenseScenario) {
  auto timeout_scenario = make_scenario("dense-deployment", 8, 3);
  timeout_scenario.config.slots_per_trial = 128;
  timeout_scenario.config.mac_kind = mac::MacKind::kTimeout;
  auto notify_scenario = timeout_scenario;
  notify_scenario.config.mac_kind = mac::MacKind::kCollisionNotify;

  const auto timeout = NetworkSimulator(timeout_scenario.config).run(2);
  const auto notify = NetworkSimulator(notify_scenario.config).run(2);
  EXPECT_LT(notify.wasted_airtime_fraction(),
            timeout.wasted_airtime_fraction());
  EXPECT_LT(notify.mean_detect_latency_slots(),
            timeout.mean_detect_latency_slots());
}

TEST(NetworkSim, EnergyGatingProducesOutagesWhenStarved) {
  auto scenario = make_scenario("energy-starved", 4, 9);
  scenario.config.slots_per_trial = 96;
  const NetworkSimulator gated(scenario.config);
  const auto starved = gated.run(2);
  EXPECT_GT(starved.energy_outages(), 0u);
  EXPECT_GT(starved.energy_outage_fraction(), 0.0);

  auto ungated_config = scenario.config;
  ungated_config.energy_gating = false;
  const NetworkSimulator ungated(ungated_config);
  EXPECT_EQ(ungated.run(2).energy_outages(), 0u);
}

TEST(NetworkSim, SummaryMergeMatchesSequentialAdd) {
  const NetworkSimulator sim(small_config());
  NetworkSimSummary whole;
  NetworkSimSummary first;
  NetworkSimSummary second;
  for (std::size_t t = 0; t < 4; ++t) {
    whole.add(sim.run_trial(t));
    (t < 2 ? first : second).add(sim.run_trial(t));
  }
  NetworkSimSummary merged;  // empty-adopts, then folds in order
  merged.merge(first);
  merged.merge(second);
  // Integer counters merge exactly; the Welford moments merge stably
  // (same values, different reduction tree -> compare approximately).
  EXPECT_EQ(whole.trials, merged.trials);
  EXPECT_EQ(whole.busy_slots, merged.busy_slots);
  EXPECT_EQ(whole.useful_slots, merged.useful_slots);
  EXPECT_EQ(whole.wasted_slots, merged.wasted_slots);
  EXPECT_EQ(whole.collisions, merged.collisions);
  EXPECT_EQ(whole.sync_failures, merged.sync_failures);
  EXPECT_EQ(whole.frames_attempted(), merged.frames_attempted());
  EXPECT_EQ(whole.bits_delivered(), merged.bits_delivered());
  EXPECT_EQ(whole.detect_latency_slots.count(),
            merged.detect_latency_slots.count());
  EXPECT_NEAR(whole.mean_detect_latency_slots(),
              merged.mean_detect_latency_slots(), 1e-12);
}

// ---------------------------------------------------------------------
// Config validation (used to fail silently)
// ---------------------------------------------------------------------

TEST(NetworkSimConfigValidation, RejectsEmptyTagSet) {
  auto config = small_config();
  config.tags.clear();
  EXPECT_THROW((void)NetworkSimulator(config), std::invalid_argument);
}

TEST(NetworkSimConfigValidation, RejectsNonPositiveTxPower) {
  auto config = small_config();
  config.tx_power_w = 0.0;
  EXPECT_THROW((void)NetworkSimulator(config), std::invalid_argument);
  config.tx_power_w = -1.0;
  EXPECT_THROW((void)NetworkSimulator(config), std::invalid_argument);
}

TEST(NetworkSimConfigValidation, RejectsZeroSlotsPerTrial) {
  // Was a debug-only assert in the simulator; now a first-class
  // rejection so Release builds fail loudly too.
  auto config = small_config();
  config.slots_per_trial = 0;
  EXPECT_THROW((void)NetworkSimulator(config), std::invalid_argument);
}

TEST(NetworkSimConfigValidation, RejectsNegativeNotifySlope) {
  auto config = small_config();
  config.notify_slots_per_m = -0.25;  // would underflow the latency
  EXPECT_THROW((void)NetworkSimulator(config), std::invalid_argument);
  config.notify_slots_per_m = 0.0;  // the legacy flat latency stays valid
  EXPECT_NO_THROW((void)NetworkSimulator(config));
}

TEST(NetworkSimConfigValidation, RejectsUnknownCarrierAndFading) {
  auto config = small_config();
  config.carrier = "wifi";  // the factory would silently pick ofdm_tv
  EXPECT_THROW((void)NetworkSimulator(config), std::invalid_argument);
  config.carrier = "cw";
  config.fading = "nakagami";  // the factory would silently pick static
  EXPECT_THROW((void)NetworkSimulator(config), std::invalid_argument);
  config.fading = "rician";  // all named arms stay accepted
  EXPECT_NO_THROW((void)NetworkSimulator(config));
}

// ---------------------------------------------------------------------
// Scheduled slotframe MAC (mac/schedule.hpp) under the network engine
// ---------------------------------------------------------------------

TEST(NetworkSimScheduled, DedicatedCellsNeverCollide) {
  // One dedicated cell per tag: fresh frames are contention-free by
  // construction, so a clean static channel delivers everything.
  auto config = small_config(6);
  config.mac_kind = mac::MacKind::kScheduled;
  const NetworkSimulator sim(config);
  const auto s = sim.run(3);
  EXPECT_EQ(s.collisions, 0u);
  EXPECT_GT(s.frames_delivered(), 0u);
  for (const auto& tag : s.tags) {
    EXPECT_EQ(tag.frames_collided, 0u);
    EXPECT_GT(tag.frames_attempted, 0u);
  }
}

TEST(NetworkSimScheduled, BitIdenticalAcrossJobCounts) {
  auto config = small_config(6);
  config.mac_kind = mac::MacKind::kScheduled;
  const NetworkSimulator sim(config);
  const auto j1 = run_with_runner(sim, 5, 1);
  const auto j8 = run_with_runner(sim, 5, 8);
  expect_summaries_identical(j1, j8);
}

TEST(NetworkSimScheduled, BeatsContentionOnWasteInDenseScenario) {
  // The schedule-vs-contention headline (gated again in e15): dense
  // deployments waste airtime on collisions and timers under contention;
  // the slotframe serializes them away.
  auto scheduled_scenario = make_scenario("dense-deployment", 8, 3);
  scheduled_scenario.config.slots_per_trial = 128;
  scheduled_scenario.config.mac_kind = mac::MacKind::kScheduled;
  auto notify_scenario = scheduled_scenario;
  notify_scenario.config.mac_kind = mac::MacKind::kCollisionNotify;

  const auto scheduled = NetworkSimulator(scheduled_scenario.config).run(2);
  const auto notify = NetworkSimulator(notify_scenario.config).run(2);
  EXPECT_LT(scheduled.wasted_airtime_fraction(),
            notify.wasted_airtime_fraction());
  EXPECT_EQ(scheduled.collisions, 0u);
  EXPECT_GT(scheduled.frames_delivered(), 0u);
}

TEST(NetworkSimScheduled, UndersizedDedicatedSetContendsInSharedCells) {
  // Fewer dedicated cells than tags: owners share cells, overlaps are
  // real, and the policy's notify-abort path must engage (kScheduled
  // honours collision notifications like the notify MAC).
  auto config = small_config(6);
  config.mac_kind = mac::MacKind::kScheduled;
  config.sched_dedicated_cells = 2;  // 6 tags -> 3 owners per cell
  config.sched_shared_cells = 1;
  const NetworkSimulator sim(config);
  const auto s = sim.run(3);
  EXPECT_GT(s.collisions, 0u);
}

// ---------------------------------------------------------------------
// Multi-gateway receive diversity
// ---------------------------------------------------------------------

TEST(NetworkSimGateways, SingleGatewayPolicyChoiceIsIrrelevant) {
  // With one gateway, "best" and "any" must be the same machine.
  auto config = small_config();
  config.combining = GatewayCombining::kAnyGateway;
  const auto any = NetworkSimulator(config).run(3);
  config.combining = GatewayCombining::kBestGateway;
  const auto best = NetworkSimulator(config).run(3);
  expect_summaries_identical(any, best);
  ASSERT_EQ(any.gateway_decodes.size(), 1u);
}

TEST(NetworkSimGateways, TwoGatewaysBitIdenticalAcrossJobCounts) {
  auto scenario = make_scenario("multi-gateway-dense", 4, 7);
  scenario.config.slots_per_trial = 96;
  const NetworkSimulator sim(scenario.config);
  const auto j1 = run_with_runner(sim, 5, 1);
  const auto j8 = run_with_runner(sim, 5, 8);
  expect_summaries_identical(j1, j8);
  ASSERT_EQ(j1.gateway_decodes.size(), 2u);
}

TEST(NetworkSimGateways, AnyCombiningDeliversAtLeastSingleReceiver) {
  // The e12 headline, as a regression gate: in the diversity scenario
  // a second gateway with any-combining must not deliver less than the
  // single-receiver baseline.
  auto scenario = make_scenario("multi-gateway-dense", 8, 17);
  auto single = scenario.config;
  single.extra_gateways.clear();
  const auto one = NetworkSimulator(single).run(2);
  const auto two = NetworkSimulator(scenario.config).run(2);
  EXPECT_GE(two.delivery_ratio(), one.delivery_ratio());
  // And the diversity is real: both gateways decode frames.
  ASSERT_EQ(two.gateway_decodes.size(), 2u);
  EXPECT_GT(two.gateway_decodes[0], 0u);
  EXPECT_GT(two.gateway_decodes[1], 0u);
}

TEST(NetworkSimGateways, DeliveredNeverExceedsPerGatewayDecodeTotal) {
  // Any-combining delivers only frames at least one gateway decoded.
  auto scenario = make_scenario("multi-gateway-dense", 4, 5);
  scenario.config.slots_per_trial = 96;
  const auto s = NetworkSimulator(scenario.config).run(3);
  std::uint64_t decode_total = 0;
  for (const auto d : s.gateway_decodes) decode_total += d;
  EXPECT_LE(s.frames_delivered(), decode_total);
}

TEST(NetworkSimGateways, NotifyLatencyReflectsClosestGateway) {
  // In the corridor, edge tags sit next to a gateway and hear the
  // notification at the base delay; mid-corridor tags pay the distance
  // term of whichever gateway is nearer.
  auto scenario = make_scenario("gateway-handoff-line", 8, 1);
  const NetworkSimulator sim(scenario.config);
  const std::size_t base = scenario.config.notify_delay_slots;
  EXPECT_EQ(sim.notify_latency_slots(0), base);
  EXPECT_EQ(sim.notify_latency_slots(7), base);
  EXPECT_GT(sim.notify_latency_slots(3), base);
  EXPECT_GT(sim.notify_latency_slots(4), base);
  // Symmetric corridor: latency profile mirrors around the middle.
  for (std::size_t k = 0; k < 4; ++k) {
    EXPECT_EQ(sim.notify_latency_slots(k), sim.notify_latency_slots(7 - k));
  }

  // The legacy distance-independent latency survives slope 0.
  auto legacy = scenario.config;
  legacy.notify_slots_per_m = 0.0;
  const NetworkSimulator flat(legacy);
  for (std::size_t k = 0; k < 8; ++k) {
    EXPECT_EQ(flat.notify_latency_slots(k), base);
  }
}

TEST(NetworkSimGateways, SceneContainsAllGatewayDevices) {
  auto scenario = make_scenario("multi-gateway-dense", 6, 2);
  const NetworkSimulator sim(scenario.config);
  EXPECT_EQ(sim.num_gateways(), 2u);
  EXPECT_EQ(sim.scene().num_devices(), 2u + 6u + 1u);
  EXPECT_EQ(sim.gateway_device(0), sim.receiver_device());
  EXPECT_EQ(sim.scene().device(sim.gateway_device(1)).kind,
            channel::DeviceKind::kReceiver);
  // Extra gateways append after the tags so single-gateway configs keep
  // every historical device index (and so every shadowing draw).
  EXPECT_GT(sim.gateway_device(1), sim.tag_device(5));
  // The scene can enumerate the receive diversity directly.
  const auto receivers =
      sim.scene().find_all(channel::DeviceKind::kReceiver);
  ASSERT_EQ(receivers.size(), 2u);
  EXPECT_EQ(receivers[0], sim.gateway_device(0));
  EXPECT_EQ(receivers[1], sim.gateway_device(1));
}

TEST(NetworkSim, SlotGeometryConsistent) {
  const NetworkSimulator sim(small_config());
  EXPECT_GT(sim.slot_samples(), 0u);
  EXPECT_GT(sim.frame_slots(), 0u);
  EXPECT_GT(sim.slot_seconds(), 0.0);
  EXPECT_GT(sim.frame_cost_j(), 0.0);
  // Scene was populated: ambient + receiver + tags.
  EXPECT_EQ(sim.scene().num_devices(), 2u + sim.num_tags());
  EXPECT_EQ(sim.scene().find_first(channel::DeviceKind::kAmbientTx),
            sim.ambient_device());
  EXPECT_EQ(sim.scene().find_first(channel::DeviceKind::kReceiver),
            sim.receiver_device());
}

}  // namespace
}  // namespace fdb::sim
