#include "sim/fleet.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "channel/scene.hpp"
#include "sim/network_sim.hpp"
#include "util/rng.hpp"

namespace fdb::sim {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// -------------------------------------------------------------------
// FleetConfig::validate — every rejection the header promises.
// -------------------------------------------------------------------

FleetConfig hybrid_config() {
  FleetConfig config;
  config.fidelity = FidelityMode::kHybrid;
  return config;
}

TEST(FleetConfigValidate, DefaultsAreValid) {
  EXPECT_NO_THROW(FleetConfig{}.validate());
  EXPECT_NO_THROW(hybrid_config().validate());
}

TEST(FleetConfigValidate, RejectsNegativeOrNonFiniteMargins) {
  for (const double bad : {-1.0, -1e-9, kInf,
                           std::numeric_limits<double>::quiet_NaN()}) {
    auto config = hybrid_config();
    config.deliver_margin_db = bad;
    EXPECT_THROW(config.validate(), std::invalid_argument)
        << "deliver_margin_db=" << bad;

    config = hybrid_config();
    config.fail_margin_db = bad;
    EXPECT_THROW(config.validate(), std::invalid_argument)
        << "fail_margin_db=" << bad;
  }
  // Zero-width band edges are legal (everything non-negative is
  // deliverable, everything non-positive failable).
  auto config = hybrid_config();
  config.deliver_margin_db = 0.0;
  config.fail_margin_db = 0.0;
  EXPECT_NO_THROW(config.validate());
}

TEST(FleetConfigValidate, RejectsNonPositiveCullRadius) {
  for (const double bad : {0.0, -5.0}) {
    auto config = hybrid_config();
    config.cull_radius_m = bad;
    EXPECT_THROW(config.validate(), std::invalid_argument)
        << "cull_radius_m=" << bad;
  }
  // Infinity is the documented "culling off" value, not an error.
  auto config = hybrid_config();
  config.cull_radius_m = kInf;
  EXPECT_NO_THROW(config.validate());
}

TEST(FleetConfigValidate, RejectsNonPositiveGridCell) {
  for (const double bad : {0.0, -1.0}) {
    auto config = hybrid_config();
    config.grid_cell_m = bad;
    EXPECT_THROW(config.validate(), std::invalid_argument)
        << "grid_cell_m=" << bad;
  }
}

TEST(FleetConfigValidate, RejectsInconsistentAnalyticTargetBer) {
  // A target BER of 0.6 has no required SINR (Q never exceeds 0.5), so
  // the clear-fail threshold would sit above clear-deliver — the
  // classifier's one-sided-safety contract is unsatisfiable. Rejected
  // whenever the analytic path actually runs.
  for (const auto mode : {FidelityMode::kHybrid, FidelityMode::kAnalytic}) {
    auto config = hybrid_config();
    config.fidelity = mode;
    config.analytic_target_ber = 0.6;
    EXPECT_THROW(config.validate(), std::invalid_argument)
        << fidelity_name(mode);
    config.analytic_target_ber = 0.0;
    EXPECT_THROW(config.validate(), std::invalid_argument)
        << fidelity_name(mode);
  }
  // Pure waveform mode never evaluates the threshold...
  FleetConfig config;
  config.fidelity = FidelityMode::kWaveform;
  config.analytic_target_ber = 0.6;
  EXPECT_NO_THROW(config.validate());
  // ...unless frame recording runs the classifier alongside it.
  config.record_frames = true;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(FleetConfigValidate, NetworkSimConfigRunsFleetValidation) {
  // The rejection must reach NetworkSimulator construction, not just
  // direct FleetConfig users.
  NetworkSimConfig config;
  config.tags.push_back({{2.0, 0.0}, 0.4});
  config.fleet.fidelity = FidelityMode::kHybrid;
  config.fleet.cull_radius_m = 0.0;
  EXPECT_THROW(NetworkSimulator{config}, std::invalid_argument);
}

// -------------------------------------------------------------------
// FleetResolver — band classification at hand-computed margins
// (sigma = 0.05, n_avg = 4, target BER 1e-3, default (6, 5) band).
// -------------------------------------------------------------------

FleetResolver default_resolver() {
  return FleetResolver(FleetConfig{}, 0.05, 4);
}

TEST(FleetResolver, RequiredSinrMatchesTarget) {
  EXPECT_NEAR(default_resolver().required_sinr(), 9.54954, 1e-3);
}

TEST(FleetResolver, StrongLinkIsClearDeliver) {
  // delta 0.5 -> SINR 100 -> +10.2 dB, above the +6 dB edge.
  const auto resolver = default_resolver();
  EXPECT_NEAR(resolver.margin_db(0.5, 0.0), 10.2000, 2e-3);
  EXPECT_EQ(resolver.classify(0.5, 0.0), LinkVerdict::kClearDeliver);
}

TEST(FleetResolver, MarginalLinkIsContested) {
  // delta 0.2 -> +2.24 dB: inside (-5, +6) with or without the equal
  // interferer that drags the pessimistic margin to -10 dB.
  const auto resolver = default_resolver();
  EXPECT_NEAR(resolver.margin_db(0.2, 0.0), 2.2416, 2e-3);
  EXPECT_EQ(resolver.classify(0.2, 0.0), LinkVerdict::kContested);
  EXPECT_NEAR(resolver.margin_db(0.2, 0.2), -10.063, 5e-3);
  EXPECT_EQ(resolver.classify(0.2, 0.2), LinkVerdict::kContested);
}

TEST(FleetResolver, InterferenceAloneNeverMakesClearFail) {
  // Clear-fail uses the *optimistic* margin: a strong link buried in
  // interference is contested (synthesis decides capture), never
  // written off analytically.
  const auto resolver = default_resolver();
  EXPECT_LT(resolver.margin_db(0.5, 2.0), -5.0);
  EXPECT_EQ(resolver.classify(0.5, 2.0), LinkVerdict::kContested);
}

TEST(FleetResolver, DeepFadeIsClearFail) {
  // delta 0.01 -> SINR 0.04 -> -23.8 dB, below the -5 dB edge.
  const auto resolver = default_resolver();
  EXPECT_NEAR(resolver.margin_db(0.01, 0.0), -23.78, 2e-2);
  EXPECT_EQ(resolver.classify(0.01, 0.0), LinkVerdict::kClearFail);
  // Zero swing is -inf margin.
  EXPECT_EQ(resolver.classify(0.0, 0.0), LinkVerdict::kClearFail);
}

// -------------------------------------------------------------------
// CullingGrid — exact agreement with brute force on random point sets.
// -------------------------------------------------------------------

std::vector<std::uint32_t> brute_force_within(
    const std::vector<channel::Vec2>& points, channel::Vec2 center,
    double radius) {
  std::vector<std::uint32_t> hits;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (channel::distance_m(points[i], center) <= radius) {
      hits.push_back(static_cast<std::uint32_t>(i));
    }
  }
  return hits;  // ascending by construction
}

TEST(CullingGrid, MatchesBruteForceOnRandomClouds) {
  Rng rng(0xc0ffee);
  for (int round = 0; round < 20; ++round) {
    const std::size_t n = 1 + rng.uniform_int(400);
    const double cell = rng.uniform(0.5, 20.0);
    std::vector<channel::Vec2> points(n);
    for (auto& p : points) {
      p = {rng.uniform(-60.0, 60.0), rng.uniform(-40.0, 40.0)};
    }
    const CullingGrid grid(points, cell);
    ASSERT_EQ(grid.num_points(), n);
    for (int q = 0; q < 10; ++q) {
      const channel::Vec2 center{rng.uniform(-80.0, 80.0),
                                 rng.uniform(-60.0, 60.0)};
      const double radius = rng.uniform(0.1, 70.0);
      EXPECT_EQ(grid.within(center, radius),
                brute_force_within(points, center, radius))
          << "round=" << round << " q=" << q << " cell=" << cell
          << " radius=" << radius;
    }
  }
}

TEST(CullingGrid, InfiniteRadiusReturnsEveryPointInOrder) {
  const std::vector<channel::Vec2> points{
      {3.0, 4.0}, {-10.0, 2.0}, {0.0, 0.0}, {55.0, -8.0}};
  const CullingGrid grid(points, 5.0);
  const auto all = grid.within({1000.0, -1000.0}, kInf);
  EXPECT_EQ(all, (std::vector<std::uint32_t>{0, 1, 2, 3}));
}

TEST(CullingGrid, BoundaryIsInclusive) {
  const std::vector<channel::Vec2> points{{3.0, 4.0}};
  const CullingGrid grid(points, 2.0);
  EXPECT_EQ(grid.within({0.0, 0.0}, 5.0).size(), 1u);
  EXPECT_TRUE(grid.within({0.0, 0.0}, 4.999).empty());
}

TEST(CullingGrid, EmptyPointSet) {
  const CullingGrid grid({}, 4.0);
  EXPECT_EQ(grid.num_points(), 0u);
  EXPECT_TRUE(grid.within({0.0, 0.0}, 100.0).empty());
  EXPECT_TRUE(grid.within({0.0, 0.0}, kInf).empty());
}

TEST(CullingGrid, WithinIntoMatchesWithinAndReusesBuffer) {
  Rng rng(0xfeed);
  std::vector<channel::Vec2> points(250);
  for (auto& p : points) {
    p = {rng.uniform(-60.0, 60.0), rng.uniform(-40.0, 40.0)};
  }
  const CullingGrid grid(points, 4.0);
  // One buffer across queries of wildly different sizes: within_into
  // must clear stale contents and produce exactly within()'s result,
  // including the infinite-radius and no-hit special cases.
  std::vector<std::uint32_t> buf{999, 999, 999};
  for (const double radius : {0.1, 5.0, 30.0, 200.0, kInf}) {
    for (int q = 0; q < 5; ++q) {
      const channel::Vec2 center{rng.uniform(-80.0, 80.0),
                                 rng.uniform(-60.0, 60.0)};
      grid.within_into(center, radius, buf);
      EXPECT_EQ(buf, grid.within(center, radius))
          << "radius=" << radius << " q=" << q;
    }
  }
  grid.within_into({1000.0, 1000.0}, 0.5, buf);
  EXPECT_TRUE(buf.empty());
  const CullingGrid empty_grid({}, 4.0);
  buf.assign(4, 7);
  empty_grid.within_into({0.0, 0.0}, kInf, buf);
  EXPECT_TRUE(buf.empty());
}

TEST(CullingGrid, ResultsIndependentOfCellSize) {
  // The cell size is a tiling knob only: any legal value yields the
  // same hit set.
  Rng rng(7);
  std::vector<channel::Vec2> points(120);
  for (auto& p : points) {
    p = {rng.uniform(0.0, 120.0), rng.uniform(0.0, 50.0)};
  }
  const channel::Vec2 center{40.0, 25.0};
  const auto reference = CullingGrid(points, 6.0).within(center, 30.0);
  EXPECT_FALSE(reference.empty());
  for (const double cell : {0.7, 3.0, 11.0, 200.0}) {
    EXPECT_EQ(CullingGrid(points, cell).within(center, 30.0), reference)
        << "cell=" << cell;
  }
}

}  // namespace
}  // namespace fdb::sim
