#include "sim/link_sim.hpp"

#include <gtest/gtest.h>

namespace fdb::sim {
namespace {

LinkSimConfig fast_config() {
  LinkSimConfig config;
  config.modem = core::FdModemConfig::make(/*block_size_bytes=*/4,
                                           /*samples_per_chip=*/6);
  config.carrier = "cw";
  config.fading = "static";
  config.seed = 42;
  return config;
}

TEST(LinkSim, CleanCwStaticIsErrorFree) {
  LinkSimulator sim(fast_config());
  sim.set_payload_bytes(12);
  const auto summary = sim.run(5);
  EXPECT_EQ(summary.sync_failures, 0u);
  EXPECT_EQ(summary.data.errors(), 0u);
  EXPECT_EQ(summary.feedback.errors(), 0u);
  EXPECT_GT(summary.data.trials(), 0u);
  EXPECT_GT(summary.feedback.trials(), 0u);
}

TEST(LinkSim, HarvestsEnergyEveryFrame) {
  LinkSimulator sim(fast_config());
  sim.set_payload_bytes(8);
  const auto summary = sim.run(3);
  EXPECT_GT(summary.harvested_per_frame_j.min(), 0.0);
}

TEST(LinkSim, StrongNoiseCausesErrors) {
  auto config = fast_config();
  // Envelope swing at B is ~1e-4; make per-sample noise comparable.
  config.noise_power_override_w = 1e-7;
  LinkSimulator sim(config);
  sim.set_payload_bytes(12);
  const auto summary = sim.run(10);
  EXPECT_GT(summary.data.errors() + summary.sync_failures, 0u);
}

TEST(LinkSim, DeterministicForSeed) {
  LinkSimConfig config = fast_config();
  config.noise_power_override_w = 1e-9;
  LinkSimulator a(config), b(config);
  a.set_payload_bytes(8);
  b.set_payload_bytes(8);
  const auto sa = a.run(5);
  const auto sb = b.run(5);
  EXPECT_EQ(sa.data.errors(), sb.data.errors());
  EXPECT_EQ(sa.feedback.errors(), sb.feedback.errors());
}

TEST(LinkSim, FeedbackOffStillDecodesData) {
  auto config = fast_config();
  config.feedback_active = false;
  LinkSimulator sim(config);
  sim.set_payload_bytes(12);
  const auto summary = sim.run(5);
  EXPECT_EQ(summary.data.errors(), 0u);
  EXPECT_EQ(summary.feedback.trials(), 0u);  // nothing to decode
}

TEST(LinkSim, ConcurrentFeedbackCostsLittleOnCleanChannel) {
  // The headline E1 claim in its cleanest form: with ample averaging,
  // data BER with feedback on equals data BER with feedback off.
  auto on = fast_config();
  on.noise_power_override_w = 1e-12;
  auto off = on;
  off.feedback_active = false;
  LinkSimulator sim_on(on), sim_off(off);
  sim_on.set_payload_bytes(12);
  sim_off.set_payload_bytes(12);
  const auto s_on = sim_on.run(10);
  const auto s_off = sim_off.run(10);
  EXPECT_NEAR(s_on.data_ber(), s_off.data_ber(), 0.01);
}

TEST(LinkSim, FartherLinkIsWorse) {
  auto near = fast_config();
  near.noise_power_override_w = 3e-9;
  auto far = near;
  far.a_to_b_m = 3.0;  // backscatter leg 3x longer
  LinkSimulator sim_near(near), sim_far(far);
  sim_near.set_payload_bytes(8);
  sim_far.set_payload_bytes(8);
  const auto s_near = sim_near.run(15);
  const auto s_far = sim_far.run(15);
  const double near_err =
      s_near.data_ber() + s_near.sync_failure_rate();
  const double far_err = s_far.data_ber() + s_far.sync_failure_rate();
  EXPECT_LE(near_err, far_err);
  EXPECT_GT(far_err, 0.0);
}

TEST(LinkSim, TxPowerScalesHarvest) {
  auto low = fast_config();
  auto high = fast_config();
  high.tx_power_w = 4.0;
  LinkSimulator sim_low(low), sim_high(high);
  sim_low.set_payload_bytes(8);
  sim_high.set_payload_bytes(8);
  const auto s_low = sim_low.run(3);
  const auto s_high = sim_high.run(3);
  EXPECT_GT(s_high.harvested_per_frame_j.mean(),
            s_low.harvested_per_frame_j.mean());
}

TEST(LinkSim, RayleighFadingDegradesLink) {
  auto faded = fast_config();
  faded.fading = "rayleigh";
  faded.noise_power_override_w = 1e-10;
  LinkSimulator sim(faded);
  sim.set_payload_bytes(8);
  const auto fadedsum = sim.run(30);
  // Fading produces occasional deep fades: some frames lost or errored.
  EXPECT_GT(fadedsum.data.errors() + fadedsum.sync_failures, 0u);
}

TEST(LinkSim, OfdmCarrierHarderThanCw) {
  auto cw = fast_config();
  cw.noise_power_override_w = 0.0;
  auto ofdm = cw;
  ofdm.carrier = "ofdm_tv";
  LinkSimulator sim_cw(cw), sim_ofdm(ofdm);
  sim_cw.set_payload_bytes(8);
  sim_ofdm.set_payload_bytes(8);
  const auto s_cw = sim_cw.run(8);
  const auto s_ofdm = sim_ofdm.run(8);
  const double cw_err = s_cw.data_ber() + s_cw.sync_failure_rate();
  const double ofdm_err = s_ofdm.data_ber() + s_ofdm.sync_failure_rate();
  EXPECT_LE(cw_err, ofdm_err);
}

TEST(LinkSim, TrialReportsBlockVerdicts) {
  LinkSimulator sim(fast_config());
  sim.set_payload_bytes(16);  // 4 blocks
  const auto trial = sim.run_trial(0);
  ASSERT_TRUE(trial.sync_ok);
  EXPECT_EQ(trial.block_ok.size(), 4u);
  for (const bool ok : trial.block_ok) EXPECT_TRUE(ok);
}

TEST(LinkSim, NoiseFigureRaisesDefaultNoise) {
  auto a = fast_config();
  a.noise_figure_db = 3.0;
  auto b = fast_config();
  b.noise_figure_db = 9.0;
  EXPECT_LT(a.noise_power_w(), b.noise_power_w());
}

}  // namespace
}  // namespace fdb::sim
