// Fault-injection engine contracts:
//
//  1. Validation — FaultConfig::validate() rejects every out-of-range
//     knob and malformed scripted event with a message naming the
//     offending field.
//  2. Determinism — plan(trial) is pure, fault randomness lives in a
//     salted side substream (enabling faults never perturbs fault-free
//     results), and faulted summaries merge bit-identically at any
//     --jobs.
//  3. Thinning — fault sets nest across intensities: every fault
//     present at low intensity is present at high intensity on the
//     same trial (the mechanism behind monotone degradation).
//  4. Injection — scripted events do what the taxonomy says, in both
//     the waveform and analytic fidelity paths, and the paired MAC
//     responses (dead-gateway failover) actually fire.
#include "sim/faults.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "sim/network_sim.hpp"
#include "sim/runner.hpp"

namespace fdb::sim {
namespace {

// ---------------------------------------------------------------------
// FaultConfig::validate() matrix
// ---------------------------------------------------------------------

TEST(FaultConfigValidate, DefaultAndFullIntensityAreValid) {
  FaultConfig config;
  EXPECT_NO_THROW(config.validate());
  EXPECT_FALSE(config.enabled());
  config.intensity = 1.0;
  EXPECT_NO_THROW(config.validate());
  EXPECT_TRUE(config.enabled());
}

TEST(FaultConfigValidate, RejectsOutOfRangeKnobs) {
  const auto expect_rejects = [](auto mutate) {
    FaultConfig config;
    mutate(config);
    EXPECT_THROW(config.validate(), std::invalid_argument);
  };
  expect_rejects([](FaultConfig& c) { c.intensity = -0.1; });
  expect_rejects([](FaultConfig& c) { c.intensity = 1.5; });
  expect_rejects([](FaultConfig& c) { c.intensity = std::nan(""); });
  expect_rejects([](FaultConfig& c) { c.gateway_outages_per_kslot = -1.0; });
  expect_rejects([](FaultConfig& c) { c.gateway_outage_mean_slots = 0.0; });
  expect_rejects([](FaultConfig& c) { c.gateway_outage_atten = 1.5; });
  expect_rejects([](FaultConfig& c) { c.carrier_sag_mean_slots = -2.0; });
  expect_rejects([](FaultConfig& c) { c.carrier_sag_floor = 1.0; });
  expect_rejects([](FaultConfig& c) { c.interferer_env_sigma = -1.0; });
  expect_rejects([](FaultConfig& c) { c.interferer_burst_mean_slots = 0.0; });
  expect_rejects([](FaultConfig& c) { c.tag_fault_fraction = 1.01; });
  expect_rejects([](FaultConfig& c) { c.tag_stuck_share = -0.5; });
  expect_rejects([](FaultConfig& c) { c.tag_drift_max_ppm = 2e5; });
}

TEST(FaultConfigValidate, RejectsMalformedScriptedEvents) {
  const auto expect_rejects = [](FaultEvent ev) {
    FaultConfig config;
    config.events.push_back(ev);
    EXPECT_THROW(config.validate(), std::invalid_argument);
  };
  expect_rejects({FaultClass::kGatewayOutage, -1, 10, 0, 0.0});
  expect_rejects({FaultClass::kGatewayOutage, 0, 0, 0, 0.0});
  expect_rejects({FaultClass::kGatewayOutage, 0, 10, 0, 1.5});
  expect_rejects({FaultClass::kCarrierSag, 0, 10, 0, 1.0});  // scale < 1
  expect_rejects({FaultClass::kBurstInterferer, 0, 10, 0, -3.0});
  expect_rejects({FaultClass::kTagStuck, 0, 10, 0, 0.5});  // not 0/1
  expect_rejects({FaultClass::kTagDrift, 0, 10, 0, 2e5});

  FaultConfig ok;
  ok.events.push_back({FaultClass::kGatewayOutage, 5, 20, 1, 0.25});
  ok.events.push_back({FaultClass::kCarrierSag, 0, 8, 0, 0.4});
  ok.events.push_back({FaultClass::kBurstInterferer, 3, 4, 0, 25.0});
  ok.events.push_back({FaultClass::kTagStuck, 10, 30, 2, 1.0});
  ok.events.push_back({FaultClass::kTagDrift, 0, 50, 3, -300.0});
  EXPECT_NO_THROW(ok.validate());
  EXPECT_TRUE(ok.enabled());
}

TEST(FaultConfigValidate, NetworkConfigValidatesFaultsAndFailover) {
  NetworkSimConfig config;
  config.tags.emplace_back();
  config.faults.intensity = 2.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.faults.intensity = 0.5;
  EXPECT_NO_THROW(config.validate());
  // Failover requires a serving gateway to abandon: kBestGateway only.
  config.failover_streak_frames = 3;
  config.combining = GatewayCombining::kAnyGateway;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.combining = GatewayCombining::kBestGateway;
  EXPECT_NO_THROW(config.validate());
}

// ---------------------------------------------------------------------
// FaultPlan realisation
// ---------------------------------------------------------------------

FaultInjector make_injector(const FaultConfig& config, std::uint64_t seed = 9,
                            std::size_t gateways = 2, std::size_t tags = 4,
                            std::size_t slots = 256) {
  return FaultInjector(config, seed, gateways, tags, slots,
                       /*slot_samples=*/640, /*samples_per_chip=*/20,
                       /*noise_sigma=*/1e-8);
}

TEST(FaultPlan, DisabledInjectorYieldsHealthyPlan) {
  const FaultInjector injector;  // default: disabled
  EXPECT_FALSE(injector.enabled());
  const auto plan = injector.plan(0);
  EXPECT_FALSE(plan.any());
  EXPECT_EQ(plan.gateway_atten(0, 0), 1.0f);
  EXPECT_EQ(plan.carrier_scale(0), 1.0f);
  EXPECT_EQ(plan.interferer_env(0, 0), 0.0f);
  EXPECT_EQ(plan.tag_fault(0), nullptr);
}

TEST(FaultPlan, PlanIsPureInTrial) {
  FaultConfig config;
  config.intensity = 0.7;
  const auto injector = make_injector(config);
  const auto a = injector.plan(11);
  const auto b = injector.plan(11);
  ASSERT_EQ(a.any(), b.any());
  for (std::size_t g = 0; g < 2; ++g) {
    for (std::size_t s = 0; s < a.slots(); ++s) {
      ASSERT_EQ(a.gateway_atten(g, s), b.gateway_atten(g, s));
      ASSERT_EQ(a.interferer_env(g, s), b.interferer_env(g, s));
    }
  }
  for (std::size_t s = 0; s < a.slots(); ++s) {
    ASSERT_EQ(a.carrier_scale(s), b.carrier_scale(s));
  }
}

TEST(FaultPlan, FaultSetsNestAcrossIntensities) {
  // Thinning contract: on the same trial, every slot degraded at
  // intensity 0.15 is at least as degraded at intensity 0.6.
  FaultConfig low;
  low.intensity = 0.15;
  FaultConfig high = low;
  high.intensity = 0.6;
  const auto low_inj = make_injector(low);
  const auto high_inj = make_injector(high);
  std::size_t degraded_slots = 0;
  for (std::uint64_t trial = 0; trial < 8; ++trial) {
    const auto lp = low_inj.plan(trial);
    const auto hp = high_inj.plan(trial);
    for (std::size_t g = 0; g < 2; ++g) {
      for (std::size_t s = 0; s < lp.slots(); ++s) {
        if (lp.gateway_atten(g, s) < 1.0f) {
          ++degraded_slots;
          ASSERT_LE(hp.gateway_atten(g, s), lp.gateway_atten(g, s))
              << "trial " << trial << " gw " << g << " slot " << s;
        }
        if (lp.interferer_env(g, s) > 0.0f) {
          ASSERT_GE(hp.interferer_env(g, s), lp.interferer_env(g, s));
        }
      }
    }
    for (std::size_t s = 0; s < lp.slots(); ++s) {
      if (lp.carrier_scale(s) < 1.0f) {
        ASSERT_LE(hp.carrier_scale(s), lp.carrier_scale(s));
      }
    }
    for (std::uint32_t k = 0; k < 4; ++k) {
      if (lp.tag_fault(k) != nullptr) {
        ASSERT_NE(hp.tag_fault(k), nullptr);
      }
    }
  }
  // The property must not pass vacuously.
  EXPECT_GT(degraded_slots, 0u);
}

TEST(FaultPlan, ScriptedEventsRealiseVerbatim) {
  FaultConfig config;  // intensity 0: only scripted events
  config.events.push_back({FaultClass::kGatewayOutage, 10, 20, 1, 0.0});
  config.events.push_back({FaultClass::kCarrierSag, 40, 8, 0, 0.5});
  config.events.push_back({FaultClass::kBurstInterferer, 60, 5, 0, 30.0});
  config.events.push_back({FaultClass::kTagStuck, 100, 50, 2, 1.0});
  config.events.push_back({FaultClass::kTagDrift, 0, 256, 3, -200.0});
  const auto injector = make_injector(config);
  const auto plan = injector.plan(3);
  ASSERT_TRUE(plan.any());

  // Outage: gateway 1 dead exactly in [10, 30).
  EXPECT_TRUE(plan.gateway_alive(1, 9));
  EXPECT_FALSE(plan.gateway_alive(1, 10));
  EXPECT_FALSE(plan.gateway_alive(1, 29));
  EXPECT_TRUE(plan.gateway_alive(1, 30));
  EXPECT_TRUE(plan.gateway_alive(0, 15));  // other gateway untouched
  EXPECT_TRUE(plan.window_has_outage(1, 0, 256));
  EXPECT_FALSE(plan.window_has_outage(0, 0, 256));

  // Sag: global carrier scale 0.5 in [40, 48).
  EXPECT_EQ(plan.carrier_scale(39), 1.0f);
  EXPECT_EQ(plan.carrier_scale(44), 0.5f);
  EXPECT_EQ(plan.signal_scale(0, 44), 0.5f);
  EXPECT_TRUE(plan.window_has_sag(40, 48));
  EXPECT_FALSE(plan.window_has_sag(48, 256));

  // Window reductions see the worst/best slot in range.
  EXPECT_EQ(plan.min_signal_scale(1, 0, 256), 0.0f);
  EXPECT_EQ(plan.max_signal_scale(1, 0, 256), 1.0f);
  EXPECT_EQ(plan.min_signal_scale(0, 44, 45), 0.5f);

  // Interferer: positive envelope at gateway 0 in [60, 65), and the
  // waveform hook writes real energy into a slot buffer.
  EXPECT_GT(plan.interferer_env(0, 60), 0.0f);
  EXPECT_EQ(plan.interferer_env(0, 65), 0.0f);
  EXPECT_EQ(plan.interferer_env(1, 60), 0.0f);
  std::vector<cf32> acc(640, cf32{0.0f, 0.0f});
  plan.add_interferers(0, 62, acc);
  double energy = 0.0;
  for (const cf32 x : acc) energy += std::norm(x);
  EXPECT_GT(energy, 0.0);
  std::vector<cf32> quiet(640, cf32{0.0f, 0.0f});
  plan.add_interferers(0, 70, quiet);
  for (const cf32 x : quiet) ASSERT_EQ(std::norm(x), 0.0f);

  // Tag faults.
  const TagFault* stuck = plan.tag_fault(2);
  ASSERT_NE(stuck, nullptr);
  EXPECT_TRUE(stuck->stuck);
  EXPECT_EQ(stuck->stuck_state, 1);
  EXPECT_TRUE(plan.stuck_in_window(2, 100, 150));
  EXPECT_FALSE(plan.stuck_in_window(2, 0, 100));
  EXPECT_EQ(plan.drift_shift_samples(2, 120), 0u);  // stuck, not drifting

  const TagFault* drift = plan.tag_fault(3);
  ASSERT_NE(drift, nullptr);
  EXPECT_FALSE(drift->stuck);
  EXPECT_EQ(drift->drift_ppm, -200.0);
  EXPECT_EQ(plan.drift_shift_samples(3, 0), 0u);  // no elapsed time yet
  // 200 ppm over 100 slots * 640 samples = 12.8 samples of skew.
  EXPECT_EQ(plan.drift_shift_samples(3, 100), 13u);
  EXPECT_GT(plan.drift_shift_samples(3, 200), plan.drift_shift_samples(3, 100));
  EXPECT_EQ(plan.tag_fault(0), nullptr);
  EXPECT_EQ(plan.drift_shift_samples(0, 50), 0u);
}

TEST(FaultPlan, OverlappingWindowsNormalize) {
  FaultConfig config;
  // Two overlapping outages on the same gateway: worst residual wins.
  config.events.push_back({FaultClass::kGatewayOutage, 0, 20, 0, 0.6});
  config.events.push_back({FaultClass::kGatewayOutage, 10, 20, 0, 0.2});
  // Two coincident interferer bursts superpose.
  config.events.push_back({FaultClass::kBurstInterferer, 50, 10, 0, 10.0});
  config.events.push_back({FaultClass::kBurstInterferer, 50, 10, 0, 10.0});
  // Two faults on one tag: the earliest onset wins.
  config.events.push_back({FaultClass::kTagDrift, 30, 10, 1, 100.0});
  config.events.push_back({FaultClass::kTagStuck, 5, 10, 1, 1.0});
  const auto injector = make_injector(config);
  const auto plan = injector.plan(0);

  EXPECT_EQ(plan.gateway_atten(0, 5), 0.6f);
  EXPECT_EQ(plan.gateway_atten(0, 15), 0.2f);  // min, not product
  EXPECT_EQ(plan.gateway_atten(0, 25), 0.2f);
  FaultConfig single;
  single.events.push_back({FaultClass::kBurstInterferer, 50, 10, 0, 10.0});
  const auto single_plan = make_injector(single).plan(0);
  EXPECT_EQ(plan.interferer_env(0, 55), 2.0f * single_plan.interferer_env(0, 55));
  EXPECT_EQ(plan.max_interferer_env(0, 50, 60), plan.interferer_env(0, 55));
  const TagFault* f = plan.tag_fault(1);
  ASSERT_NE(f, nullptr);
  EXPECT_TRUE(f->stuck);
  EXPECT_EQ(f->start_slot, 5);

  // Events past the trial end clamp instead of writing out of range.
  FaultConfig tail;
  tail.events.push_back({FaultClass::kGatewayOutage, 250, 100, 0, 0.0});
  const auto tail_plan = make_injector(tail).plan(0);
  EXPECT_FALSE(tail_plan.gateway_alive(0, 255));
  EXPECT_EQ(tail_plan.min_signal_scale(0, 250, 400), 0.0f);  // hi clamps
}

// ---------------------------------------------------------------------
// NetworkSimulator integration
// ---------------------------------------------------------------------

NetworkSimConfig faulted_small_config(std::size_t num_tags = 4) {
  NetworkSimConfig config;
  config.payload_bytes = 32;
  config.slots_per_trial = 96;
  config.ambient_position = {0.0, 0.0};
  config.receiver_position = {5.0, 0.0};
  for (std::size_t k = 0; k < num_tags; ++k) {
    NetworkTagConfig tag;
    tag.position = {5.0 + 1.0 * static_cast<double>(k % 3),
                    1.0 + 0.5 * static_cast<double>(k)};
    config.tags.push_back(tag);
  }
  config.seed = 5;
  return config;
}

void expect_trials_identical(const NetworkTrialResult& a,
                             const NetworkTrialResult& b) {
  EXPECT_EQ(a.busy_slots, b.busy_slots);
  EXPECT_EQ(a.useful_slots, b.useful_slots);
  EXPECT_EQ(a.wasted_slots, b.wasted_slots);
  EXPECT_EQ(a.collisions, b.collisions);
  EXPECT_EQ(a.sync_failures, b.sync_failures);
  ASSERT_EQ(a.tags.size(), b.tags.size());
  for (std::size_t k = 0; k < a.tags.size(); ++k) {
    EXPECT_EQ(a.tags[k].frames_attempted, b.tags[k].frames_attempted);
    EXPECT_EQ(a.tags[k].frames_delivered, b.tags[k].frames_delivered);
    EXPECT_EQ(a.tags[k].harvested_j, b.tags[k].harvested_j);
    EXPECT_EQ(a.tags[k].spent_j, b.tags[k].spent_j);
  }
}

TEST(NetworkSimFaults, ZeroIntensityIsBitIdenticalToFaultFree) {
  // The fault substream is salted away from the trial stream, and every
  // fault code path is gated: a config with intensity 0 must reproduce
  // the fault-free engine bit for bit.
  const NetworkSimulator clean(faulted_small_config());
  auto cfg = faulted_small_config();
  cfg.faults.intensity = 0.0;  // explicit no-op
  const NetworkSimulator zero(cfg);
  for (std::uint64_t trial = 0; trial < 4; ++trial) {
    expect_trials_identical(clean.run_trial(trial), zero.run_trial(trial));
  }
}

TEST(NetworkSimFaults, FullGatewayOutageKillsDeliveryAndIsClassified) {
  auto cfg = faulted_small_config();
  cfg.faults.events.push_back(
      {FaultClass::kGatewayOutage, 0,
       static_cast<std::int64_t>(cfg.slots_per_trial), 0, 0.0});
  const NetworkSimulator sim(cfg);
  const auto res = sim.run_trial(1);
  std::uint64_t attempted = 0, delivered = 0;
  for (const auto& t : res.tags) {
    attempted += t.frames_attempted;
    delivered += t.frames_delivered;
  }
  ASSERT_GT(attempted, 0u);
  EXPECT_EQ(delivered, 0u);
  EXPECT_EQ(res.faulted_frames_attempted, attempted);
  EXPECT_EQ(res.faulted_frames_delivered, 0u);
  EXPECT_EQ(res.frames_lost_outage, attempted);
}

TEST(NetworkSimFaults, StuckTagDeliversNothingAndOthersSurvive) {
  auto cfg = faulted_small_config();
  cfg.faults.events.push_back(
      {FaultClass::kTagStuck, 0,
       static_cast<std::int64_t>(cfg.slots_per_trial), 0, 1.0});
  const NetworkSimulator sim(cfg);
  std::uint64_t stuck_delivered = 0, healthy_delivered = 0;
  std::uint64_t lost_tag_fault = 0;
  for (std::uint64_t trial = 0; trial < 3; ++trial) {
    const auto res = sim.run_trial(trial);
    stuck_delivered += res.tags[0].frames_delivered;
    for (std::size_t k = 1; k < res.tags.size(); ++k) {
      healthy_delivered += res.tags[k].frames_delivered;
    }
    lost_tag_fault += res.frames_lost_tag_fault;
  }
  EXPECT_EQ(stuck_delivered, 0u);
  EXPECT_GT(healthy_delivered, 0u);
  EXPECT_GT(lost_tag_fault, 0u);
}

TEST(NetworkSimFaults, AnalyticAndHybridSeeTheSameOutage) {
  // The analytic mirror consumes the same slot-domain schedule: a dead
  // gateway kills delivery in every fidelity mode.
  for (const auto fidelity : {FidelityMode::kAnalytic, FidelityMode::kHybrid,
                              FidelityMode::kWaveform}) {
    auto cfg = faulted_small_config();
    cfg.fleet.fidelity = fidelity;
    cfg.faults.events.push_back(
        {FaultClass::kGatewayOutage, 0,
         static_cast<std::int64_t>(cfg.slots_per_trial), 0, 0.0});
    const NetworkSimulator sim(cfg);
    const auto res = sim.run_trial(0);
    std::uint64_t delivered = 0;
    for (const auto& t : res.tags) delivered += t.frames_delivered;
    EXPECT_EQ(delivered, 0u) << fidelity_name(fidelity);
  }
}

TEST(NetworkSimFaults, DeadGatewayFailoverFiresAndRecovers) {
  auto cfg = faulted_small_config();
  cfg.extra_gateways.push_back({9.0, 0.0});  // farther than the primary
  cfg.combining = GatewayCombining::kBestGateway;
  // Timeout MAC: collided frames run to completion, so failed frames
  // actually reach the failover streak (the notify MAC aborts them
  // early, and aborts deliberately do not feed the streak).
  cfg.mac_kind = mac::MacKind::kTimeout;
  cfg.failover_streak_frames = 2;
  cfg.failover_holdoff_slots = 16;
  // Primary gateway dead for the whole trial: every tag starts on it
  // (it is closer), streaks out, and fails over to gateway 1.
  cfg.faults.events.push_back(
      {FaultClass::kGatewayOutage, 0,
       static_cast<std::int64_t>(cfg.slots_per_trial), 0, 0.0});
  const NetworkSimulator sim(cfg);
  NetworkSimSummary summary;
  for (std::uint64_t trial = 0; trial < 4; ++trial) {
    summary.add(sim.run_trial(trial));
  }
  EXPECT_GT(summary.failovers, 0u);
  EXPECT_EQ(summary.time_to_failover_slots.count(), summary.failovers);
  EXPECT_GT(summary.mean_time_to_failover_slots(), 0.0);
  // Deliveries resume on the surviving gateway after the switch.
  ASSERT_EQ(summary.gateway_decodes.size(), 2u);
  EXPECT_GT(summary.gateway_decodes[1], 0u);
  EXPECT_EQ(summary.gateway_decodes[0], 0u);  // dead all trial
}

TEST(NetworkSimFaults, FaultedSummariesMergeBitIdenticallyAcrossJobs) {
  auto cfg = faulted_small_config(6);
  cfg.extra_gateways.push_back({9.0, 0.0});
  cfg.combining = GatewayCombining::kBestGateway;
  cfg.failover_streak_frames = 2;
  cfg.faults.intensity = 0.5;
  cfg.fleet.fidelity = FidelityMode::kHybrid;
  const NetworkSimulator sim(cfg);
  NetworkSimSummary merged[2];
  const std::size_t jobs[] = {1, 8};
  for (int i = 0; i < 2; ++i) {
    const ExperimentRunner runner(jobs[i]);
    merged[i] = runner.run_chunked<NetworkSimSummary>(
        12, [&sim](NetworkSimSummary& acc, std::size_t trial) {
          acc.add(sim.run_trial(trial));
        });
  }
  const auto& a = merged[0];
  const auto& b = merged[1];
  EXPECT_EQ(a.busy_slots, b.busy_slots);
  EXPECT_EQ(a.useful_slots, b.useful_slots);
  EXPECT_EQ(a.collisions, b.collisions);
  EXPECT_EQ(a.faulted_frames_attempted, b.faulted_frames_attempted);
  EXPECT_EQ(a.faulted_frames_delivered, b.faulted_frames_delivered);
  EXPECT_EQ(a.frames_lost_outage, b.frames_lost_outage);
  EXPECT_EQ(a.frames_lost_sag, b.frames_lost_sag);
  EXPECT_EQ(a.frames_lost_interference, b.frames_lost_interference);
  EXPECT_EQ(a.frames_lost_tag_fault, b.frames_lost_tag_fault);
  EXPECT_EQ(a.failovers, b.failovers);
  EXPECT_EQ(a.time_to_failover_slots.count(),
            b.time_to_failover_slots.count());
  EXPECT_EQ(a.time_to_failover_slots.mean(), b.time_to_failover_slots.mean());
  EXPECT_EQ(a.outage_delivery_ratio(), b.outage_delivery_ratio());
  ASSERT_EQ(a.tags.size(), b.tags.size());
  for (std::size_t k = 0; k < a.tags.size(); ++k) {
    EXPECT_EQ(a.tags[k].frames_delivered, b.tags[k].frames_delivered);
    EXPECT_EQ(a.tags[k].harvested_j, b.tags[k].harvested_j);
  }
  // The run was not degenerate: faults actually fired.
  EXPECT_GT(a.faulted_frames_attempted, 0u);
}

TEST(NetworkSimFaults, IntensityDegradesDeliveryMonotonically) {
  // Thinning + common random numbers: total delivery is non-increasing
  // across nested intensities on the same seeds.
  std::uint64_t delivered_at[3] = {0, 0, 0};
  const double intensities[3] = {0.0, 0.25, 0.9};
  for (int i = 0; i < 3; ++i) {
    auto cfg = faulted_small_config();
    cfg.faults.intensity = intensities[i];
    const NetworkSimulator sim(cfg);
    for (std::uint64_t trial = 0; trial < 6; ++trial) {
      const auto res = sim.run_trial(trial);
      for (const auto& t : res.tags) delivered_at[i] += t.frames_delivered;
    }
  }
  EXPECT_GE(delivered_at[0], delivered_at[1]);
  EXPECT_GE(delivered_at[1], delivered_at[2]);
  EXPECT_GT(delivered_at[0], 0u);
}

}  // namespace
}  // namespace fdb::sim
