#include "sim/scenarios.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "channel/scene.hpp"

namespace fdb::sim {
namespace {

TEST(Scenarios, RegistryListsAllScenarios) {
  const auto& names = scenario_names();
  ASSERT_GE(names.size(), 6u);
  EXPECT_EQ(names[0], "dense-deployment");
  EXPECT_NE(std::find(names.begin(), names.end(), "multi-gateway-dense"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "gateway-handoff-line"),
            names.end());
}

TEST(Scenarios, EveryNamedScenarioBuildsASimulator) {
  for (const auto& name : scenario_names()) {
    const auto scenario = make_scenario(name);
    EXPECT_EQ(scenario.name, name);
    EXPECT_FALSE(scenario.summary.empty());
    EXPECT_EQ(scenario.config.tags.size(), 8u) << name;
    // Constructible (asserts internally on inconsistent configs).
    const NetworkSimulator sim(scenario.config);
    EXPECT_EQ(sim.num_tags(), 8u);
  }
}

TEST(Scenarios, NumTagsOverrideAndSeedPropagate) {
  const auto scenario = make_scenario("dense-deployment", 12, 99);
  EXPECT_EQ(scenario.config.tags.size(), 12u);
  EXPECT_EQ(scenario.config.seed, 99u);
}

TEST(Scenarios, UnknownNameThrows) {
  EXPECT_THROW((void)make_scenario("no-such-scenario"),
               std::invalid_argument);
}

TEST(Scenarios, GeometryIsDeterministic) {
  const auto a = make_scenario("near-far", 8, 1);
  const auto b = make_scenario("near-far", 8, 1);
  for (std::size_t k = 0; k < a.config.tags.size(); ++k) {
    EXPECT_DOUBLE_EQ(a.config.tags[k].position.x, b.config.tags[k].position.x);
    EXPECT_DOUBLE_EQ(a.config.tags[k].position.y, b.config.tags[k].position.y);
  }
}

TEST(Scenarios, NearFarAlternatesDistances) {
  const auto scenario = make_scenario("near-far", 8);
  const auto& config = scenario.config;
  const double d0 =
      channel::distance_m(config.tags[0].position, config.receiver_position);
  const double d1 =
      channel::distance_m(config.tags[1].position, config.receiver_position);
  EXPECT_NEAR(d0, 0.8, 1e-9);
  EXPECT_NEAR(d1, 3.5, 1e-9);
}

TEST(Scenarios, EnergyStarvedEnablesGating) {
  const auto scenario = make_scenario("energy-starved");
  EXPECT_TRUE(scenario.config.energy_gating);
  EXPECT_LT(scenario.config.storage.capacity_j, 1e-6);
  EXPECT_FALSE(make_scenario("dense-deployment").config.energy_gating);
}

TEST(Scenarios, FadingSweepEnablesFadingAndShadowing) {
  const auto scenario = make_scenario("fading-sweep");
  EXPECT_EQ(scenario.config.fading, "rayleigh");
  EXPECT_GT(scenario.config.pathloss.shadowing_sigma_db, 0.0);
}

TEST(Scenarios, MultiGatewayDenseHasTwoGatewaysAnyCombining) {
  const auto scenario = make_scenario("multi-gateway-dense");
  EXPECT_EQ(scenario.config.num_gateways(), 2u);
  EXPECT_EQ(scenario.config.combining, GatewayCombining::kAnyGateway);
  EXPECT_GT(scenario.config.notify_slots_per_m, 0.0);
  const NetworkSimulator sim(scenario.config);
  EXPECT_EQ(sim.num_gateways(), 2u);
  // Gateways sit on opposite sides of the ring: every tag is strictly
  // closer to one of them than the ring centre is.
  EXPECT_EQ(sim.scene().num_devices(), 2u + 8u + 1u);
}

TEST(Scenarios, GatewayHandoffLineServesByPosition) {
  const auto scenario = make_scenario("gateway-handoff-line");
  EXPECT_EQ(scenario.config.num_gateways(), 2u);
  EXPECT_EQ(scenario.config.combining, GatewayCombining::kBestGateway);
  const NetworkSimulator sim(scenario.config);
  // Tags march from gateway 0 toward gateway 1, so the geometrically
  // nearest gateway must hand off exactly once along the line.
  EXPECT_EQ(sim.nearest_gateway(0), 0u);
  EXPECT_EQ(sim.nearest_gateway(sim.num_tags() - 1), 1u);
  bool handed_off = false;
  for (std::size_t k = 1; k < sim.num_tags(); ++k) {
    EXPECT_GE(sim.nearest_gateway(k), sim.nearest_gateway(k - 1));
    handed_off |= sim.nearest_gateway(k) != sim.nearest_gateway(k - 1);
  }
  EXPECT_TRUE(handed_off);
}

}  // namespace
}  // namespace fdb::sim
