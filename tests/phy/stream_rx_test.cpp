#include "phy/stream_rx.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <span>

#include "util/rng.hpp"

namespace fdb::phy {
namespace {

ModemConfig small_config() {
  ModemConfig config;
  config.rates.samples_per_chip = 8;
  config.rates.asymmetry = 8;
  return config;
}

std::vector<float> frame_waveform(const BackscatterTx& tx,
                                  std::span<const std::uint8_t> payload,
                                  float low, float high) {
  std::vector<float> env;
  for (const auto s : tx.modulate_frame(payload)) {
    env.push_back(s ? high : low);
  }
  return env;
}

TEST(StreamingReceiver, DecodesSingleFrameMidStream) {
  const auto config = small_config();
  BackscatterTx tx(config);
  Rng rng(3);
  std::vector<std::uint8_t> payload(20);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.uniform_int(256));

  std::vector<StreamFrame> frames;
  StreamingReceiver receiver(config,
                             [&](const StreamFrame& f) { frames.push_back(f); });

  std::vector<float> stream(3000, 1.0f);
  const auto burst = frame_waveform(tx, payload, 1.0f, 1.4f);
  stream.insert(stream.end(), burst.begin(), burst.end());
  stream.insert(stream.end(), 3000, 1.0f);

  receiver.process(stream);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].status, Status::kOk);
  EXPECT_EQ(frames[0].payload, payload);
}

TEST(StreamingReceiver, DecodesMultipleFramesBackToBack) {
  const auto config = small_config();
  BackscatterTx tx(config);
  Rng rng(5);

  std::vector<std::vector<std::uint8_t>> payloads;
  std::vector<float> stream(500, 1.0f);
  for (int f = 0; f < 5; ++f) {
    std::vector<std::uint8_t> payload(8 + f * 4);
    for (auto& b : payload) {
      b = static_cast<std::uint8_t>(rng.uniform_int(256));
    }
    payloads.push_back(payload);
    const auto burst = frame_waveform(tx, payload, 1.0f, 1.5f);
    stream.insert(stream.end(), burst.begin(), burst.end());
    stream.insert(stream.end(), 800, 1.0f);  // inter-frame gap
  }

  std::vector<StreamFrame> frames;
  StreamingReceiver receiver(config,
                             [&](const StreamFrame& f) { frames.push_back(f); });
  receiver.process(stream);

  ASSERT_EQ(frames.size(), payloads.size());
  for (std::size_t f = 0; f < frames.size(); ++f) {
    EXPECT_EQ(frames[f].status, Status::kOk) << "frame " << f;
    EXPECT_EQ(frames[f].payload, payloads[f]) << "frame " << f;
  }
  // Frames reported in stream order.
  for (std::size_t f = 1; f < frames.size(); ++f) {
    EXPECT_GT(frames[f].start_sample, frames[f - 1].start_sample);
  }
}

TEST(StreamingReceiver, ChunkedDeliveryMatchesWholeStream) {
  const auto config = small_config();
  BackscatterTx tx(config);
  const std::vector<std::uint8_t> payload(16, 0x3C);

  std::vector<float> stream(1000, 1.0f);
  const auto burst = frame_waveform(tx, payload, 1.0f, 1.3f);
  stream.insert(stream.end(), burst.begin(), burst.end());
  stream.insert(stream.end(), 1000, 1.0f);

  std::vector<StreamFrame> frames;
  StreamingReceiver receiver(config,
                             [&](const StreamFrame& f) { frames.push_back(f); });
  // Feed in awkward chunk sizes.
  std::size_t pos = 0;
  const std::size_t chunks[] = {1, 7, 64, 501, 3, 1000000};
  std::size_t c = 0;
  while (pos < stream.size()) {
    const std::size_t n = std::min(chunks[c % 6], stream.size() - pos);
    receiver.process(std::span<const float>(stream.data() + pos, n));
    pos += n;
    ++c;
  }
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].payload, payload);
}

TEST(StreamingReceiver, RandomChunkingIsBitIdenticalToWholeCapture) {
  // Multi-frame noisy stream fed (a) in one call and (b) in randomized
  // chunk sizes: every reported frame must match bit-for-bit — status,
  // payload, start position, and sync correlation. This pins the batch
  // receive chain's chunk-size invariance.
  const auto config = small_config();
  BackscatterTx tx(config);
  Rng rng(41);

  std::vector<float> stream(700, 1.0f);
  for (int f = 0; f < 4; ++f) {
    std::vector<std::uint8_t> payload(6 + f * 9);
    for (auto& b : payload) {
      b = static_cast<std::uint8_t>(rng.uniform_int(256));
    }
    const auto burst = frame_waveform(tx, payload, 1.0f, 1.4f);
    stream.insert(stream.end(), burst.begin(), burst.end());
    stream.insert(stream.end(), 600 + f * 37, 1.0f);
  }
  // Mild noise so correlations are not textbook-clean.
  for (auto& s : stream) s += 0.01f * static_cast<float>(rng.normal());

  std::vector<StreamFrame> whole_frames, chunk_frames;
  StreamingReceiver whole(
      config, [&](const StreamFrame& f) { whole_frames.push_back(f); });
  StreamingReceiver chunked(
      config, [&](const StreamFrame& f) { chunk_frames.push_back(f); });

  whole.process(stream);

  Rng chunk_rng(7);
  const std::size_t palette[] = {1, 2, 3, 7, 32, 63, 257, 1024, 5000};
  std::size_t pos = 0;
  while (pos < stream.size()) {
    const std::size_t n =
        std::min(palette[chunk_rng.uniform_int(std::size(palette))],
                 stream.size() - pos);
    chunked.process(std::span<const float>(stream.data() + pos, n));
    pos += n;
  }

  EXPECT_GE(whole_frames.size(), 4u);
  ASSERT_EQ(whole_frames.size(), chunk_frames.size());
  for (std::size_t f = 0; f < whole_frames.size(); ++f) {
    EXPECT_EQ(whole_frames[f].status, chunk_frames[f].status) << f;
    EXPECT_EQ(whole_frames[f].payload, chunk_frames[f].payload) << f;
    EXPECT_EQ(whole_frames[f].start_sample, chunk_frames[f].start_sample)
        << f;
    EXPECT_EQ(whole_frames[f].sync_corr, chunk_frames[f].sync_corr) << f;
  }
  EXPECT_EQ(whole.samples_processed(), chunked.samples_processed());
}

TEST(StreamingReceiver, PureNoiseProducesNoFrames) {
  const auto config = small_config();
  Rng rng(7);
  std::vector<float> stream(20000);
  for (auto& s : stream) {
    s = 1.0f + 0.005f * static_cast<float>(rng.normal());
  }
  std::size_t frames = 0;
  StreamingReceiver receiver(config, [&](const StreamFrame&) { ++frames; });
  receiver.process(stream);
  EXPECT_EQ(frames, 0u);
}

TEST(StreamingReceiver, InvertedPolarityFrameDecodes) {
  const auto config = small_config();
  BackscatterTx tx(config);
  const std::vector<std::uint8_t> payload(12, 0x77);
  std::vector<float> stream(1500, 1.5f);
  const auto burst = frame_waveform(tx, payload, 1.5f, 1.1f);  // darkens
  stream.insert(stream.end(), burst.begin(), burst.end());
  stream.insert(stream.end(), 1500, 1.5f);

  std::vector<StreamFrame> frames;
  StreamingReceiver receiver(config,
                             [&](const StreamFrame& f) { frames.push_back(f); });
  receiver.process(stream);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].status, Status::kOk);
  EXPECT_EQ(frames[0].payload, payload);
}

TEST(StreamingReceiver, ResetClearsPosition) {
  const auto config = small_config();
  StreamingReceiver receiver(config, [](const StreamFrame&) {});
  std::vector<float> noise(1000, 1.0f);
  receiver.process(noise);
  EXPECT_EQ(receiver.samples_processed(), 1000u);
  receiver.reset();
  EXPECT_EQ(receiver.samples_processed(), 0u);
}

TEST(StreamingReceiver, TruncatedFrameDoesNotWedgeTheReceiver) {
  // A burst cut off mid-body must not stall the state machine: a later
  // complete frame still decodes.
  const auto config = small_config();
  BackscatterTx tx(config);
  const std::vector<std::uint8_t> payload(32, 0xAB);
  auto burst = frame_waveform(tx, payload, 1.0f, 1.4f);
  burst.resize(burst.size() / 2);  // chop mid-frame

  std::vector<float> stream(500, 1.0f);
  stream.insert(stream.end(), burst.begin(), burst.end());
  stream.insert(stream.end(), 4000, 1.0f);  // silence (body never comes)
  const auto good = frame_waveform(tx, payload, 1.0f, 1.4f);
  stream.insert(stream.end(), good.begin(), good.end());
  stream.insert(stream.end(), 2000, 1.0f);

  std::vector<StreamFrame> frames;
  StreamingReceiver receiver(config,
                             [&](const StreamFrame& f) { frames.push_back(f); });
  receiver.process(stream);
  // The good frame must come through; the chopped one may surface as a
  // CRC failure or be dropped at the header stage.
  bool good_seen = false;
  for (const auto& f : frames) {
    if (f.status == Status::kOk && f.payload == payload) good_seen = true;
  }
  EXPECT_TRUE(good_seen);
}

// ---------------------------------------------------------------------
// Resync hardening: decode failures rewind instead of discarding the
// collected tail, so frames hiding inside a failed candidate's collect
// window survive corrupted input.
// ---------------------------------------------------------------------

TEST(StreamingReceiver, TruncatedFrameButtedAgainstSuccessorYieldsSuccessor) {
  // Frame 1 carries a valid header (full body length L) but dies
  // mid-body; frame 2 starts immediately after the corpse. The receiver
  // collects L samples for frame 1 — overrunning frame 2's preamble —
  // and the payload CRC fails. A tail-discarding resync would lose
  // frame 2; the bounded rewind re-scans the window and recovers it.
  const auto config = small_config();
  BackscatterTx tx(config);
  const std::vector<std::uint8_t> first(32, 0xAB);
  const std::vector<std::uint8_t> second(20, 0x5C);
  auto corpse = frame_waveform(tx, first, 1.0f, 1.4f);
  corpse.resize(corpse.size() * 3 / 5);  // header intact, body truncated
  const auto good = frame_waveform(tx, second, 1.0f, 1.4f);

  std::vector<float> stream(600, 1.0f);
  stream.insert(stream.end(), corpse.begin(), corpse.end());
  stream.insert(stream.end(), good.begin(), good.end());  // back-to-back
  stream.insert(stream.end(), 3000, 1.0f);

  std::vector<StreamFrame> frames;
  StreamingReceiver receiver(config,
                             [&](const StreamFrame& f) { frames.push_back(f); });
  receiver.process(stream);
  bool second_seen = false;
  for (const auto& f : frames) {
    if (f.status == Status::kOk && f.payload == second) second_seen = true;
  }
  EXPECT_TRUE(second_seen);
  EXPECT_EQ(receiver.samples_processed(), stream.size());
}

TEST(StreamingReceiver, BackToBackFramesFirstCrcFailSecondRecovered) {
  // Frame 1 is full-length but its payload chips are mangled (header
  // fine, payload CRC fails); frame 2 follows with no gap. Both must be
  // reported: the first as a CRC failure, the second clean.
  const auto config = small_config();
  BackscatterTx tx(config);
  const std::vector<std::uint8_t> first(24, 0x11);
  const std::vector<std::uint8_t> second(24, 0xEE);
  auto bad = frame_waveform(tx, first, 1.0f, 1.4f);
  // Invert a stretch of mid-body chips: length/header stay valid.
  for (std::size_t i = bad.size() / 2; i < bad.size() / 2 + 200; ++i) {
    bad[i] = bad[i] > 1.2f ? 1.0f : 1.4f;
  }
  const auto good = frame_waveform(tx, second, 1.0f, 1.4f);

  std::vector<float> stream(500, 1.0f);
  stream.insert(stream.end(), bad.begin(), bad.end());
  stream.insert(stream.end(), good.begin(), good.end());
  stream.insert(stream.end(), 3000, 1.0f);

  std::vector<StreamFrame> frames;
  StreamingReceiver receiver(config,
                             [&](const StreamFrame& f) { frames.push_back(f); });
  receiver.process(stream);

  bool crc_fail_seen = false, second_seen = false;
  for (const auto& f : frames) {
    if (f.status != Status::kOk) crc_fail_seen = true;
    if (f.status == Status::kOk && f.payload == second) second_seen = true;
  }
  EXPECT_TRUE(crc_fail_seen);
  EXPECT_TRUE(second_seen);
}

TEST(StreamingReceiver, FlippedHeaderBytesDoNotFabricateFramesOrWedge) {
  // Frame 1's header chips are inverted (header CRC cannot pass), a
  // clean frame follows later. The corrupted candidate must not surface
  // as a decoded frame, and the receiver must keep running.
  const auto config = small_config();
  BackscatterTx tx(config);
  const std::vector<std::uint8_t> payload(16, 0x3C);
  auto corrupt = frame_waveform(tx, payload, 1.0f, 1.4f);
  const std::size_t preamble =
      default_preamble_length() * config.rates.samples_per_chip;
  // Flatten (not invert) the header chips: FM0 carries bits in its
  // transitions, so a flat stretch reliably destroys them.
  for (std::size_t i = preamble;
       i < preamble + 24 * config.rates.samples_per_chip && i < corrupt.size();
       ++i) {
    corrupt[i] = 1.4f;
  }

  std::vector<float> stream(500, 1.0f);
  stream.insert(stream.end(), corrupt.begin(), corrupt.end());
  stream.insert(stream.end(), 2000, 1.0f);
  const auto good = frame_waveform(tx, payload, 1.0f, 1.4f);
  stream.insert(stream.end(), good.begin(), good.end());
  stream.insert(stream.end(), 1500, 1.0f);

  std::vector<StreamFrame> frames;
  StreamingReceiver receiver(config,
                             [&](const StreamFrame& f) { frames.push_back(f); });
  receiver.process(stream);

  std::size_t ok_frames = 0;
  for (const auto& f : frames) {
    if (f.status == Status::kOk) {
      ++ok_frames;
      EXPECT_EQ(f.payload, payload);
    }
  }
  EXPECT_EQ(ok_frames, 1u);
  EXPECT_EQ(receiver.samples_processed(), stream.size());
}

TEST(StreamingReceiver, ResyncPathIsChunkInvariantToo) {
  // The rewind machinery must preserve the chunk-size invariance pin:
  // a corrupted multi-frame stream fed whole and in random chunks
  // reports bit-identical frames.
  const auto config = small_config();
  BackscatterTx tx(config);
  Rng rng(23);

  std::vector<float> stream(650, 1.0f);
  for (int f = 0; f < 3; ++f) {
    std::vector<std::uint8_t> payload(10 + f * 7);
    for (auto& b : payload) {
      b = static_cast<std::uint8_t>(rng.uniform_int(256));
    }
    auto burst = frame_waveform(tx, payload, 1.0f, 1.4f);
    if (f == 1) burst.resize(burst.size() / 2);  // truncated corpse
    stream.insert(stream.end(), burst.begin(), burst.end());
    if (f != 1) stream.insert(stream.end(), 500 + f * 31, 1.0f);
  }
  stream.insert(stream.end(), 2500, 1.0f);
  for (auto& s : stream) s += 0.01f * static_cast<float>(rng.normal());

  std::vector<StreamFrame> whole_frames, chunk_frames;
  StreamingReceiver whole(
      config, [&](const StreamFrame& f) { whole_frames.push_back(f); });
  StreamingReceiver chunked(
      config, [&](const StreamFrame& f) { chunk_frames.push_back(f); });

  whole.process(stream);
  Rng chunk_rng(9);
  const std::size_t palette[] = {1, 3, 5, 17, 129, 777, 4096};
  std::size_t pos = 0;
  while (pos < stream.size()) {
    const std::size_t n =
        std::min(palette[chunk_rng.uniform_int(std::size(palette))],
                 stream.size() - pos);
    chunked.process(std::span<const float>(stream.data() + pos, n));
    pos += n;
  }

  ASSERT_EQ(whole_frames.size(), chunk_frames.size());
  for (std::size_t f = 0; f < whole_frames.size(); ++f) {
    EXPECT_EQ(whole_frames[f].status, chunk_frames[f].status) << f;
    EXPECT_EQ(whole_frames[f].payload, chunk_frames[f].payload) << f;
    EXPECT_EQ(whole_frames[f].start_sample, chunk_frames[f].start_sample) << f;
    EXPECT_EQ(whole_frames[f].sync_corr, chunk_frames[f].sync_corr) << f;
  }
  EXPECT_EQ(whole.samples_processed(), chunked.samples_processed());
  EXPECT_EQ(whole.samples_processed(), stream.size());
}

}  // namespace
}  // namespace fdb::phy
