#include "phy/preamble.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace fdb::phy {
namespace {

TEST(Preamble, Barker13Autocorrelation) {
  // Barker codes: off-peak aperiodic autocorrelation magnitude <= 1.
  const auto pattern = chips_to_pattern(barker13_chips());
  const int n = static_cast<int>(pattern.size());
  for (int shift = 1; shift < n; ++shift) {
    double corr = 0.0;
    for (int i = 0; i + shift < n; ++i) {
      corr += pattern[i] * pattern[i + shift];
    }
    EXPECT_LE(std::abs(corr), 1.0 + 1e-9) << "shift " << shift;
  }
}

TEST(Preamble, Barker11Autocorrelation) {
  const auto pattern = chips_to_pattern(barker11_chips());
  const int n = static_cast<int>(pattern.size());
  for (int shift = 1; shift < n; ++shift) {
    double corr = 0.0;
    for (int i = 0; i + shift < n; ++i) {
      corr += pattern[i] * pattern[i + shift];
    }
    EXPECT_LE(std::abs(corr), 1.0 + 1e-9);
  }
}

TEST(Preamble, PatternMapsChipsToSigns) {
  const std::vector<std::uint8_t> chips = {1, 0, 1};
  const auto pattern = chips_to_pattern(chips);
  const std::vector<float> expected = {1.0f, -1.0f, 1.0f};
  EXPECT_EQ(pattern, expected);
}

TEST(Preamble, DefaultPreambleLengthConsistent) {
  EXPECT_EQ(default_preamble_chips().size(), default_preamble_length());
}

TEST(Preamble, DefaultPreambleStartsAlternating) {
  const auto chips = default_preamble_chips();
  for (std::size_t i = 0; i + 1 < 8; ++i) {
    EXPECT_NE(chips[i], chips[i + 1]);
  }
}

TEST(Preamble, DefaultPreambleEndsWithBarker13) {
  const auto chips = default_preamble_chips();
  const auto barker = barker13_chips();
  ASSERT_GE(chips.size(), barker.size());
  for (std::size_t i = 0; i < barker.size(); ++i) {
    EXPECT_EQ(chips[chips.size() - barker.size() + i], barker[i]);
  }
}

}  // namespace
}  // namespace fdb::phy
