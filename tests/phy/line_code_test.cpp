#include "phy/line_code.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace fdb::phy {
namespace {

class LineCodeRoundTrip : public ::testing::TestWithParam<LineCode> {};

TEST_P(LineCodeRoundTrip, RandomBitsSurvive) {
  Rng rng(17);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::uint8_t> bits(1 + rng.uniform_int(200));
    for (auto& b : bits) b = rng.chance(0.5) ? 1 : 0;
    const auto chips = encode(GetParam(), bits);
    EXPECT_EQ(chips.size(), bits.size() * 2);
    const auto decoded = decode(GetParam(), chips);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, bits);
  }
}

TEST_P(LineCodeRoundTrip, EmptyInput) {
  const auto chips = encode(GetParam(), {});
  EXPECT_TRUE(chips.empty());
  const auto decoded = decode(GetParam(), chips);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->empty());
}

TEST_P(LineCodeRoundTrip, OddChipCountRejected) {
  const std::vector<std::uint8_t> chips = {1, 0, 1};
  EXPECT_FALSE(decode(GetParam(), chips).has_value());
}

INSTANTIATE_TEST_SUITE_P(AllCodes, LineCodeRoundTrip,
                         ::testing::Values(LineCode::kFm0,
                                           LineCode::kManchester,
                                           LineCode::kMiller2,
                                           LineCode::kNrz),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(Fm0, DcBalancedOverAnyBitPattern) {
  // The full-duplex feedback decoder depends on this invariant: every
  // FM0 bit contributes exactly one high chip and one low chip OR two
  // chips whose sum over consecutive bit pairs balances. Check that over
  // whole bits the chip average is pattern-independent to within one
  // chip.
  Rng rng(23);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<std::uint8_t> bits(64);
    for (auto& b : bits) b = rng.chance(0.5) ? 1 : 0;
    const auto chips = encode(LineCode::kFm0, bits);
    int sum = 0;
    for (const auto c : chips) sum += c ? 1 : -1;
    // FM0 guarantees |running disparity| <= 2 chips over any window.
    EXPECT_LE(std::abs(sum), 2);
  }
}

TEST(Fm0, BoundaryTransitionInvariant) {
  // The encoded level always flips between the last chip of bit i and
  // the first chip of bit i+1.
  const std::vector<std::uint8_t> bits = {1, 1, 0, 0, 1, 0, 1};
  const auto chips = encode(LineCode::kFm0, bits);
  for (std::size_t b = 1; b < bits.size(); ++b) {
    EXPECT_NE(chips[2 * b - 1], chips[2 * b]) << "boundary " << b;
  }
}

TEST(Fm0, KnownWaveform) {
  // Starting level 1: first boundary inverts to 0.
  // bit '1': hold -> chips 0,0.  bit '0': mid-flip -> chips 1,0.
  const auto chips = encode(LineCode::kFm0, std::vector<std::uint8_t>{1, 0});
  const std::vector<std::uint8_t> expected = {0, 0, 1, 0};
  EXPECT_EQ(chips, expected);
}

TEST(Manchester, AlwaysTransitionsMidBit) {
  Rng rng(29);
  std::vector<std::uint8_t> bits(128);
  for (auto& b : bits) b = rng.chance(0.5) ? 1 : 0;
  const auto chips = encode(LineCode::kManchester, bits);
  for (std::size_t b = 0; b < bits.size(); ++b) {
    EXPECT_NE(chips[2 * b], chips[2 * b + 1]);
  }
}

TEST(Manchester, InvalidSymbolDetected) {
  const std::vector<std::uint8_t> chips = {1, 1};  // no mid transition
  EXPECT_FALSE(decode(LineCode::kManchester, chips).has_value());
}

TEST(Fm0Soft, AgreesWithHardDecisionsWhenConfident) {
  Rng rng(31);
  std::vector<std::uint8_t> bits(64);
  for (auto& b : bits) b = rng.chance(0.5) ? 1 : 0;
  const auto chips = encode(LineCode::kFm0, bits);
  std::vector<float> probs;
  for (const auto c : chips) probs.push_back(c ? 0.95f : 0.05f);
  const auto soft = decode_fm0_soft(probs);
  const auto hard = decode(LineCode::kFm0, chips);
  ASSERT_TRUE(hard.has_value());
  EXPECT_EQ(soft, *hard);
}

TEST(Fm0Soft, ResolvesWeakChipByReliability) {
  // Bit with chips (0.9, 0.52): "equal" hypothesis more likely -> 1.
  const std::vector<float> probs = {0.9f, 0.52f};
  const auto bits = decode_fm0_soft(probs);
  ASSERT_EQ(bits.size(), 1u);
  EXPECT_EQ(bits[0], 1);
}

}  // namespace
}  // namespace fdb::phy
