// End-to-end flowgraph receive chain: IQ source -> envelope block ->
// frame sink. This is the library's "GNU Radio" face.
#include "phy/fg_blocks.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "flowgraph/blocks_std.hpp"
#include "flowgraph/graph.hpp"
#include "phy/modem.hpp"

namespace fdb::phy {
namespace {

TEST(FrameSinkBlock, DecodesFrameFromIqStream) {
  ModemConfig config;
  config.rates.samples_per_chip = 8;
  config.rates.sample_rate_hz = 2e6;
  BackscatterTx tx(config);
  const std::vector<std::uint8_t> payload(24, 0x42);

  // Complex IQ: carrier amplitude toggles with the antenna state.
  std::vector<cf32> iq(2000, cf32{1.0f, 0.0f});
  for (const auto s : tx.modulate_frame(payload)) {
    iq.push_back(cf32{s ? 1.4f : 1.0f, 0.0f});
  }
  iq.insert(iq.end(), 2000, cf32{1.0f, 0.0f});

  fg::Graph graph;
  auto source = std::make_shared<fg::VectorSourceC>(iq);
  auto envelope = std::make_shared<fg::EnvelopeBlock>(
      /*rc_cutoff_hz=*/400e3, config.rates.sample_rate_hz);
  auto sink = std::make_shared<FrameSinkBlock>(config);
  const auto s = graph.add(source);
  const auto e = graph.add(envelope);
  const auto k = graph.add(sink);
  ASSERT_TRUE(graph.connect(s, 0, e, 0));
  ASSERT_TRUE(graph.connect(e, 0, k, 0));
  graph.run();

  ASSERT_EQ(sink->frames().size(), 1u);
  EXPECT_EQ(sink->frames()[0].status, Status::kOk);
  EXPECT_EQ(sink->frames()[0].payload, payload);
}

TEST(FrameSinkBlock, EmptyStreamYieldsNothing) {
  ModemConfig config;
  config.rates.samples_per_chip = 8;
  fg::Graph graph;
  auto source =
      std::make_shared<fg::VectorSourceF>(std::vector<float>(5000, 1.0f));
  auto sink = std::make_shared<FrameSinkBlock>(config);
  const auto s = graph.add(source);
  const auto k = graph.add(sink);
  ASSERT_TRUE(graph.connect(s, 0, k, 0));
  graph.run();
  EXPECT_TRUE(sink->frames().empty());
}

}  // namespace
}  // namespace fdb::phy
