#include "phy/framer.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace fdb::phy {
namespace {

std::vector<std::uint8_t> random_payload(Rng& rng, std::size_t n) {
  std::vector<std::uint8_t> payload(n);
  for (auto& byte : payload) {
    byte = static_cast<std::uint8_t>(rng.uniform_int(256));
  }
  return payload;
}

TEST(Framer, RoundTrip) {
  Rng rng(3);
  for (const std::size_t n : {0ul, 1ul, 17ul, 255ul}) {
    const auto payload = random_payload(rng, n);
    const auto bits = frame_to_bits(payload);
    EXPECT_EQ(bits.size(), frame_bits_for_payload(n));
    const auto result = deframe_bits(bits);
    EXPECT_EQ(result.status, Status::kOk) << "payload size " << n;
    EXPECT_EQ(result.payload, payload);
    EXPECT_TRUE(result.header_ok);
    EXPECT_EQ(result.bits_consumed, bits.size());
  }
}

TEST(Framer, PayloadBitFlipCaughtByBodyCrc) {
  Rng rng(5);
  const auto payload = random_payload(rng, 32);
  auto bits = frame_to_bits(payload);
  bits[16 + 5] ^= 1;  // flip a payload bit
  const auto result = deframe_bits(bits);
  EXPECT_EQ(result.status, Status::kCrcMismatch);
  EXPECT_TRUE(result.header_ok);  // header intact -> length known
}

TEST(Framer, HeaderBitFlipCaughtByHeaderCrc) {
  Rng rng(7);
  const auto payload = random_payload(rng, 32);
  auto bits = frame_to_bits(payload);
  bits[3] ^= 1;  // flip a length bit
  const auto result = deframe_bits(bits);
  EXPECT_EQ(result.status, Status::kCrcMismatch);
  EXPECT_FALSE(result.header_ok);
}

TEST(Framer, TruncatedInput) {
  Rng rng(9);
  const auto payload = random_payload(rng, 32);
  auto bits = frame_to_bits(payload);
  bits.resize(bits.size() / 2);
  const auto result = deframe_bits(bits);
  EXPECT_EQ(result.status, Status::kTruncated);
}

TEST(Framer, TooShortForHeader) {
  const std::vector<std::uint8_t> bits(10, 0);
  EXPECT_EQ(deframe_bits(bits).status, Status::kTruncated);
}

TEST(Blocks, RoundTripAllBlocksOk) {
  Rng rng(11);
  const auto payload = random_payload(rng, 64);
  const auto bits = blocks_to_bits(payload, 8);
  EXPECT_EQ(bits.size(), block_bits_for_payload(64, 8));
  const auto result = decode_blocks(bits, 64, 8);
  EXPECT_EQ(result.blocks_failed, 0u);
  EXPECT_EQ(result.payload, payload);
  EXPECT_EQ(result.block_ok.size(), 8u);
}

TEST(Blocks, TailBlockShorter) {
  Rng rng(13);
  const auto payload = random_payload(rng, 20);  // 8+8+4
  const auto bits = blocks_to_bits(payload, 8);
  const auto result = decode_blocks(bits, 20, 8);
  EXPECT_EQ(result.blocks_failed, 0u);
  EXPECT_EQ(result.payload, payload);
  EXPECT_EQ(result.block_ok.size(), 3u);
}

TEST(Blocks, CorruptionLocalisedToOneBlock) {
  Rng rng(15);
  const auto payload = random_payload(rng, 64);
  auto bits = blocks_to_bits(payload, 8);
  // Flip a bit inside block 3 (each block is 72 bits on air).
  bits[3 * 72 + 10] ^= 1;
  const auto result = decode_blocks(bits, 64, 8);
  EXPECT_EQ(result.blocks_failed, 1u);
  ASSERT_EQ(result.block_ok.size(), 8u);
  for (std::size_t b = 0; b < 8; ++b) {
    EXPECT_EQ(result.block_ok[b], b != 3) << "block " << b;
  }
}

TEST(Blocks, TruncatedTailMarksRemainingFailed) {
  Rng rng(17);
  const auto payload = random_payload(rng, 32);
  auto bits = blocks_to_bits(payload, 8);
  bits.resize(bits.size() - 80);  // lose more than the last block
  const auto result = decode_blocks(bits, 32, 8);
  EXPECT_GE(result.blocks_failed, 1u);
  EXPECT_EQ(result.payload.size(), 32u);  // placeholder bytes filled
}

TEST(Blocks, BitsForPayloadFormula) {
  EXPECT_EQ(block_bits_for_payload(16, 8), 2u * 72u);
  EXPECT_EQ(block_bits_for_payload(17, 8), 2u * 72u + 16u);
  EXPECT_EQ(block_bits_for_payload(0, 8), 0u);
}

}  // namespace
}  // namespace fdb::phy
