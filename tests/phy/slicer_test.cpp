#include "phy/slicer.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace fdb::phy {
namespace {

TEST(IntegrateAndDump, AveragesChips) {
  IntegrateAndDump integrator(4);
  std::vector<float> chips;
  const std::vector<float> samples = {1, 1, 1, 1, 3, 3, 3, 3};
  integrator.process(samples, chips);
  ASSERT_EQ(chips.size(), 2u);
  EXPECT_FLOAT_EQ(chips[0], 1.0f);
  EXPECT_FLOAT_EQ(chips[1], 3.0f);
}

TEST(IntegrateAndDump, PartialChipHeldAcrossCalls) {
  IntegrateAndDump integrator(4);
  std::vector<float> chips;
  integrator.process(std::vector<float>{2, 2}, chips);
  EXPECT_TRUE(chips.empty());
  integrator.process(std::vector<float>{2, 2}, chips);
  ASSERT_EQ(chips.size(), 1u);
  EXPECT_FLOAT_EQ(chips[0], 2.0f);
}

TEST(IntegrateAndDump, ResetDropsPartial) {
  IntegrateAndDump integrator(4);
  std::vector<float> chips;
  integrator.process(std::vector<float>{100, 100, 100}, chips);
  integrator.reset();
  integrator.process(std::vector<float>{1, 1, 1, 1}, chips);
  ASSERT_EQ(chips.size(), 1u);
  EXPECT_FLOAT_EQ(chips[0], 1.0f);
}

TEST(AdaptiveSlicer, SeparatesTwoLevels) {
  AdaptiveSlicer slicer({.window_chips = 8});
  // Alternate levels so the window sees both.
  std::vector<std::uint8_t> decisions;
  for (int i = 0; i < 32; ++i) {
    decisions.push_back(slicer.decide(i % 2 ? 1.0f : 0.2f));
  }
  // Once warmed up, odd samples -> 1, even -> 0.
  for (int i = 8; i < 32; ++i) {
    EXPECT_EQ(decisions[static_cast<std::size_t>(i)], i % 2);
  }
}

TEST(AdaptiveSlicer, TracksDriftingBaseline) {
  AdaptiveSlicer slicer({.window_chips = 8});
  // Levels drift upward together; slicer threshold must follow.
  int errors = 0;
  for (int i = 0; i < 200; ++i) {
    const float base = 1.0f + 0.01f * static_cast<float>(i);
    const bool bit = i % 2 == 1;
    const float level = bit ? base + 0.5f : base;
    const auto d = slicer.decide(level);
    if (i > 16 && d != (bit ? 1 : 0)) ++errors;
  }
  EXPECT_EQ(errors, 0);
}

TEST(AdaptiveSlicer, SoftValueOrdering) {
  AdaptiveSlicer slicer({.window_chips = 4});
  slicer.decide(0.0f);
  slicer.decide(1.0f);
  slicer.decide(0.0f);
  slicer.decide(1.0f);
  slicer.decide(1.0f);
  const float high_soft = slicer.last_soft();
  slicer.decide(0.0f);
  const float low_soft = slicer.last_soft();
  EXPECT_GT(high_soft, 0.5f);
  EXPECT_LT(low_soft, 0.5f);
}

TEST(AdaptiveSlicer, HysteresisResistsNoiseNearThreshold) {
  AdaptiveSlicer with_hyst({.window_chips = 8, .hysteresis = 0.15f});
  AdaptiveSlicer without({.window_chips = 8, .hysteresis = 0.0f});
  Rng rng(41);
  // Signal sits just below midpoint with noise; hysteresis should hold
  // the previous decision more often (fewer toggles).
  auto count_toggles = [&](AdaptiveSlicer& slicer) {
    Rng local(99);
    // Prime with both levels.
    for (int i = 0; i < 8; ++i) slicer.decide(i % 2 ? 1.0f : 0.0f);
    int toggles = 0;
    std::uint8_t prev = slicer.decide(0.45f);
    for (int i = 0; i < 300; ++i) {
      const float x = 0.5f + static_cast<float>(local.normal(0.0, 0.02));
      const auto d = slicer.decide(x);
      if (d != prev) ++toggles;
      prev = d;
    }
    return toggles;
  };
  EXPECT_LT(count_toggles(with_hyst), count_toggles(without));
  (void)rng;
}

TEST(AdaptiveSlicer, ProcessBatchMatchesSingle) {
  AdaptiveSlicer a({.window_chips = 8}), b({.window_chips = 8});
  std::vector<float> chips;
  Rng rng(43);
  for (int i = 0; i < 100; ++i) {
    chips.push_back(rng.chance(0.5) ? 1.0f : 0.0f);
  }
  std::vector<std::uint8_t> batch;
  a.process(chips, batch);
  for (std::size_t i = 0; i < chips.size(); ++i) {
    EXPECT_EQ(b.decide(chips[i]), batch[i]);
  }
}

TEST(AdaptiveSlicer, ResetForgetsHistory) {
  AdaptiveSlicer slicer({.window_chips = 4});
  for (int i = 0; i < 10; ++i) slicer.decide(100.0f);
  slicer.reset();
  // Fresh history: a mid-scale value after two new levels slices fine.
  slicer.decide(0.0f);
  slicer.decide(1.0f);
  EXPECT_EQ(slicer.decide(0.9f), 1);
  EXPECT_EQ(slicer.decide(0.1f), 0);
}

}  // namespace
}  // namespace fdb::phy
