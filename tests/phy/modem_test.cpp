// End-to-end one-way modem tests over synthetic envelope waveforms: the
// transmit states are mapped to two envelope levels (what a clean CW
// channel produces) plus optional noise.
#include "phy/modem.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace fdb::phy {
namespace {

ModemConfig small_config() {
  ModemConfig config;
  config.rates.samples_per_chip = 8;
  config.rates.asymmetry = 8;
  return config;
}

std::vector<float> states_to_envelope(const std::vector<std::uint8_t>& states,
                                      float low, float high, Rng* rng,
                                      double noise_sigma,
                                      std::size_t pad = 200) {
  std::vector<float> env;
  env.reserve(states.size() + 2 * pad);
  auto emit = [&](float level) {
    const double noise = rng ? rng->normal(0.0, noise_sigma) : 0.0;
    env.push_back(level + static_cast<float>(noise));
  };
  for (std::size_t i = 0; i < pad; ++i) emit(low);
  for (const auto s : states) emit(s ? high : low);
  for (std::size_t i = 0; i < pad; ++i) emit(low);
  return env;
}

TEST(Modem, CleanChannelFrameRoundTrip) {
  const auto config = small_config();
  BackscatterTx tx(config);
  BackscatterRx rx(config);
  Rng rng(3);
  std::vector<std::uint8_t> payload(24);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.uniform_int(256));

  const auto states = tx.modulate_frame(payload);
  const auto env = states_to_envelope(states, 1.0f, 1.5f, nullptr, 0.0);
  const auto result = rx.demodulate_frame(env);
  EXPECT_EQ(result.status, Status::kOk);
  EXPECT_EQ(result.payload, payload);
  EXPECT_GT(result.diag.sync_corr, 0.9f);
}

TEST(Modem, ModerateNoiseStillDecodes) {
  const auto config = small_config();
  BackscatterTx tx(config);
  BackscatterRx rx(config);
  Rng rng(5);
  std::vector<std::uint8_t> payload(16);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.uniform_int(256));

  int ok = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const auto states = tx.modulate_frame(payload);
    // Swing 0.5, per-sample sigma 0.15 -> post-integration (8 samples)
    // effective sigma ~0.053, comfortably decodable.
    const auto env = states_to_envelope(states, 1.0f, 1.5f, &rng, 0.15);
    const auto result = rx.demodulate_frame(env);
    if (result.status == Status::kOk && result.payload == payload) ++ok;
  }
  EXPECT_GE(ok, 18);
}

TEST(Modem, NoSignalReportsSyncNotFound) {
  const auto config = small_config();
  BackscatterRx rx(config);
  Rng rng(7);
  std::vector<float> env(5000);
  for (auto& e : env) e = 1.0f + static_cast<float>(rng.normal(0.0, 0.01));
  const auto result = rx.demodulate_frame(env);
  EXPECT_EQ(result.status, Status::kSyncNotFound);
}

TEST(Modem, RawBitsRoundTrip) {
  const auto config = small_config();
  BackscatterTx tx(config);
  BackscatterRx rx(config);
  Rng rng(9);
  std::vector<std::uint8_t> bits(300);
  for (auto& b : bits) b = rng.chance(0.5) ? 1 : 0;

  const auto states = tx.modulate_bits(bits);
  const auto env = states_to_envelope(states, 2.0f, 2.6f, nullptr, 0.0);
  const auto decoded = rx.demodulate_bits(env, bits.size());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, bits);
}

TEST(Modem, InvertedPolarityStillDecodes) {
  // If "reflect" darkens the envelope (destructive backscatter phase),
  // the preamble correlation is negative. Acquisition matches on the
  // correlation magnitude and FM0 is equality-coded, so the frame
  // decodes anyway — no dead spot from polarity alone.
  const auto config = small_config();
  BackscatterTx tx(config);
  BackscatterRx rx(config);
  std::vector<std::uint8_t> payload(8, 0xAA);
  const auto states = tx.modulate_frame(payload);
  const auto env = states_to_envelope(states, 1.5f, 1.0f, nullptr, 0.0);
  const auto result = rx.demodulate_frame(env);
  EXPECT_EQ(result.status, Status::kOk);
  EXPECT_EQ(result.payload, payload);
}

TEST(Modem, FrameSamplesMatchesModulateLength) {
  const auto config = small_config();
  BackscatterTx tx(config);
  const std::vector<std::uint8_t> payload(33, 0x5A);
  EXPECT_EQ(tx.modulate_frame(payload).size(), tx.frame_samples(33));
}

TEST(Modem, LargePayloadNearLimit) {
  const auto config = small_config();
  BackscatterTx tx(config);
  BackscatterRx rx(config);
  Rng rng(11);
  std::vector<std::uint8_t> payload(255);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.uniform_int(256));
  const auto states = tx.modulate_frame(payload);
  const auto env = states_to_envelope(states, 1.0f, 1.4f, nullptr, 0.0);
  const auto result = rx.demodulate_frame(env);
  EXPECT_EQ(result.status, Status::kOk);
  EXPECT_EQ(result.payload, payload);
}

}  // namespace
}  // namespace fdb::phy
