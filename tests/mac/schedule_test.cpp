// Scheduled slotframe MAC (mac/schedule.hpp): cell geometry arithmetic,
// ownership maps, and the ScheduledMac policy's counter conventions —
// a counter of n from initial_wait fires in slot n-1, one from
// next_wait at slot s fires in slot s+n, and both must land starts
// exactly on owned cell boundaries without ever touching the Rng.
#include "mac/schedule.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "util/rng.hpp"

namespace fdb::mac {
namespace {

TEST(Slotframe, GeometryAndPeriod) {
  const Slotframe frame(/*cell_span_slots=*/9, /*dedicated_cells=*/5,
                        /*shared_cells=*/2);
  EXPECT_EQ(frame.num_cells(), 7u);
  EXPECT_EQ(frame.slotframe_slots(), 63u);
  EXPECT_THROW(Slotframe(0, 5, 2), std::invalid_argument);
  EXPECT_THROW(Slotframe(9, 0, 2), std::invalid_argument);
}

TEST(Slotframe, NextCellStartWrapsThePeriod) {
  const Slotframe frame(4, 3, 1);  // period 16, cell offsets 0,4,8,12
  EXPECT_EQ(frame.next_cell_start(1, 0), 4u);
  EXPECT_EQ(frame.next_cell_start(1, 4), 4u);   // inclusive at-or-after
  EXPECT_EQ(frame.next_cell_start(1, 5), 20u);  // next occurrence
  EXPECT_EQ(frame.next_cell_start(0, 1), 16u);
  EXPECT_EQ(frame.next_cell_start(3, 100), 108u);
}

TEST(Slotframe, OwnershipMapsAreStableAndInRange) {
  const Slotframe frame(9, 8, 3);
  for (std::size_t tag = 0; tag < 64; ++tag) {
    EXPECT_EQ(frame.dedicated_cell(tag), tag % 8);
    const std::size_t shared = frame.shared_cell(tag);
    EXPECT_GE(shared, 8u);
    EXPECT_LT(shared, 11u);
    EXPECT_EQ(shared, frame.shared_cell(tag));  // pure function of id
  }
  // The autonomous hash actually spreads consecutive ids.
  std::set<std::size_t> cells;
  for (std::size_t tag = 0; tag < 16; ++tag) cells.insert(frame.shared_cell(tag));
  EXPECT_GT(cells.size(), 1u);
}

TEST(TagHash, DeterministicAndMixed) {
  EXPECT_EQ(tag_hash(7), tag_hash(7));
  std::set<std::uint64_t> seen;
  for (std::uint64_t id = 0; id < 256; ++id) seen.insert(tag_hash(id));
  EXPECT_EQ(seen.size(), 256u);  // no collisions among small ids
}

TEST(ScheduledMac, StartsLandOnOwnedDedicatedCells) {
  const std::size_t span = 9;
  const std::size_t n_tags = 5;
  const ScheduledMac policy(Slotframe(span, n_tags, 2));
  Rng rng(1);
  for (std::size_t tag = 0; tag < n_tags; ++tag) {
    TagMacState st;
    // counter n fires in slot n-1: the first start is the tag's own
    // cell offset, so no two fresh tags ever share a slot.
    EXPECT_EQ(policy.initial_wait(tag, st, rng) - 1, tag * span);
    // A delivered frame's next start is the same cell one period later.
    const std::uint64_t slot = tag * span + span;  // verdict drain slot
    const std::size_t wait = policy.next_wait(tag, slot, st, rng);
    EXPECT_EQ(slot + wait, tag * span + policy.slotframe().slotframe_slots());
  }
}

TEST(ScheduledMac, RetriesMoveToTheSharedCellAndBack) {
  const std::size_t span = 4;
  const Slotframe frame(span, 3, 2);
  const ScheduledMac policy(frame);
  Rng rng(1);
  TagMacState st;
  const std::size_t tag = 1;

  policy.on_outcome(tag, /*delivered=*/false, st);
  ASSERT_EQ(st.exponent, 1u);
  const std::uint64_t slot = 10;
  const std::size_t wait = policy.next_wait(tag, slot, st, rng);
  const std::uint64_t start = slot + wait;
  // The retry start is an occurrence of the tag's hash-keyed shared
  // cell, strictly in the future.
  EXPECT_EQ(start % frame.slotframe_slots(),
            frame.shared_cell(tag) * span);
  EXPECT_GT(start, slot);

  policy.on_outcome(tag, /*delivered=*/true, st);
  EXPECT_EQ(st.exponent, 0u);
  const std::uint64_t fresh = slot + policy.next_wait(tag, slot, st, rng);
  EXPECT_EQ(fresh % frame.slotframe_slots(),
            frame.dedicated_cell(tag) * span);
}

TEST(ScheduledMac, RepeatLosersRetreatToTheirDedicatedCell) {
  // Two tags hashed onto the same shared cell that fail in lockstep
  // must not collide forever: the first retry rides the shared fast
  // lane, but a second consecutive loss retreats to the tag's own
  // contention-free cell, so a retry storm of any size drains within
  // one slotframe period. Without the retreat a mass-failure event
  // (e.g. a gateway outage) livelocks every loser in the shared cells
  // after the fault clears.
  const Slotframe frame(4, 8, 2);
  const ScheduledMac policy(frame);
  Rng rng(1);

  // Find a hash-colliding pair among small ids.
  std::size_t a = 0, b = 0;
  bool found_pair = false;
  for (std::size_t i = 0; i < 16 && !found_pair; ++i) {
    for (std::size_t j = i + 1; j < 16 && !found_pair; ++j) {
      if (frame.shared_cell(i) == frame.shared_cell(j)) {
        a = i;
        b = j;
        found_pair = true;
      }
    }
  }
  ASSERT_TRUE(found_pair);

  const std::uint64_t slot = 10;
  // First retry: both tags land on the same shared-cell occurrence —
  // the deterministic collision the retreat exists to break.
  TagMacState st_a{1};
  TagMacState st_b{1};
  EXPECT_EQ(slot + policy.next_wait(a, slot, st_a, rng),
            slot + policy.next_wait(b, slot, st_b, rng));

  // Second consecutive loss: each retreats to its own dedicated cell.
  for (std::size_t exponent = 2; exponent <= 4; ++exponent) {
    TagMacState deep_a{exponent};
    TagMacState deep_b{exponent};
    const std::uint64_t start_a =
        slot + policy.next_wait(a, slot, deep_a, rng);
    const std::uint64_t start_b =
        slot + policy.next_wait(b, slot, deep_b, rng);
    EXPECT_EQ(start_a % frame.slotframe_slots(),
              frame.dedicated_cell(a) * 4);
    EXPECT_EQ(start_b % frame.slotframe_slots(),
              frame.dedicated_cell(b) * 4);
    EXPECT_NE(start_a, start_b);  // distinct cells: the storm drains
  }
}

TEST(ScheduledMac, NoSharedCellsFallsBackToDedicated) {
  const Slotframe frame(4, 3, 0);
  const ScheduledMac policy(frame);
  Rng rng(1);
  TagMacState st;
  st.exponent = 3;
  const std::uint64_t start = 2 + policy.next_wait(2, 2, st, rng);
  EXPECT_EQ(start % frame.slotframe_slots(), frame.dedicated_cell(2) * 4);
}

TEST(ScheduledMac, NeverConsumesTheTrialRng) {
  const ScheduledMac policy(Slotframe(9, 4, 2));
  Rng used(42);
  Rng untouched(42);
  TagMacState st;
  (void)policy.initial_wait(3, st, used);
  st.exponent = 2;
  (void)policy.next_wait(3, 57, st, used);
  EXPECT_EQ(used(), untouched());  // identical residual stream
  EXPECT_TRUE(policy.aborts_on_notify());
  EXPECT_EQ(policy.verdict_wait_slots(), 1u);
}

}  // namespace
}  // namespace fdb::mac
