#include "mac/collision.hpp"

#include <gtest/gtest.h>

namespace fdb::mac {
namespace {

CollisionSimParams base_params(std::size_t tags) {
  CollisionSimParams params;
  params.num_tags = tags;
  params.sim_slots = 100000;
  params.seed = 7;
  return params;
}

TEST(Collision, SingleTagNeverCollides) {
  for (const auto kind : {MacKind::kTimeout, MacKind::kCollisionNotify}) {
    const auto stats = run_collision_sim(kind, base_params(1));
    EXPECT_EQ(stats.collisions, 0u);
    EXPECT_GT(stats.frames_delivered, 0u);
  }
}

TEST(Collision, NotifyReducesWastedAirtime) {
  const auto timeout =
      run_collision_sim(MacKind::kTimeout, base_params(6));
  const auto notify =
      run_collision_sim(MacKind::kCollisionNotify, base_params(6));
  EXPECT_LT(notify.wasted_airtime_fraction(),
            timeout.wasted_airtime_fraction());
}

TEST(Collision, NotifyImprovesGoodput) {
  const auto timeout =
      run_collision_sim(MacKind::kTimeout, base_params(6));
  const auto notify =
      run_collision_sim(MacKind::kCollisionNotify, base_params(6));
  EXPECT_GT(notify.goodput_slots_fraction(),
            timeout.goodput_slots_fraction());
}

TEST(Collision, WasteGrowsWithContention) {
  const auto few = run_collision_sim(MacKind::kTimeout, base_params(2));
  const auto many = run_collision_sim(MacKind::kTimeout, base_params(10));
  EXPECT_GT(many.wasted_airtime_fraction(), few.wasted_airtime_fraction());
}

TEST(Collision, DeterministicForSeed) {
  const auto a = run_collision_sim(MacKind::kCollisionNotify, base_params(4));
  const auto b = run_collision_sim(MacKind::kCollisionNotify, base_params(4));
  EXPECT_EQ(a.frames_delivered, b.frames_delivered);
  EXPECT_EQ(a.collisions, b.collisions);
  EXPECT_EQ(a.wasted_slots, b.wasted_slots);
}

TEST(Collision, StatsInternallyConsistent) {
  const auto stats =
      run_collision_sim(MacKind::kCollisionNotify, base_params(4));
  EXPECT_EQ(stats.slots_simulated, 100000u);
  EXPECT_LE(stats.useful_slots, stats.slots_simulated);
  EXPECT_LE(stats.wasted_airtime_fraction(), 1.0);
  EXPECT_GE(stats.mean_delivery_latency(),
            static_cast<double>(base_params(4).frame_blocks));
}

TEST(Collision, FasterNotificationHelps) {
  auto slow = base_params(6);
  slow.notify_delay_slots = 16;
  auto fast = base_params(6);
  fast.notify_delay_slots = 1;
  const auto slow_stats = run_collision_sim(MacKind::kCollisionNotify, slow);
  const auto fast_stats = run_collision_sim(MacKind::kCollisionNotify, fast);
  EXPECT_LE(fast_stats.wasted_airtime_fraction(),
            slow_stats.wasted_airtime_fraction() + 0.01);
}

}  // namespace
}  // namespace fdb::mac
