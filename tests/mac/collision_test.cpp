#include "mac/collision.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace fdb::mac {
namespace {

CollisionSimParams base_params(std::size_t tags) {
  CollisionSimParams params;
  params.num_tags = tags;
  params.sim_slots = 100000;
  params.seed = 7;
  return params;
}

TEST(Collision, SingleTagNeverCollides) {
  for (const auto kind : {MacKind::kTimeout, MacKind::kCollisionNotify}) {
    const auto stats = run_collision_sim(kind, base_params(1));
    EXPECT_EQ(stats.collisions, 0u);
    EXPECT_GT(stats.frames_delivered, 0u);
  }
}

TEST(Collision, NotifyReducesWastedAirtime) {
  const auto timeout =
      run_collision_sim(MacKind::kTimeout, base_params(6));
  const auto notify =
      run_collision_sim(MacKind::kCollisionNotify, base_params(6));
  EXPECT_LT(notify.wasted_airtime_fraction(),
            timeout.wasted_airtime_fraction());
}

TEST(Collision, NotifyImprovesGoodput) {
  const auto timeout =
      run_collision_sim(MacKind::kTimeout, base_params(6));
  const auto notify =
      run_collision_sim(MacKind::kCollisionNotify, base_params(6));
  EXPECT_GT(notify.goodput_slots_fraction(),
            timeout.goodput_slots_fraction());
}

TEST(Collision, WasteGrowsWithContention) {
  const auto few = run_collision_sim(MacKind::kTimeout, base_params(2));
  const auto many = run_collision_sim(MacKind::kTimeout, base_params(10));
  EXPECT_GT(many.wasted_airtime_fraction(), few.wasted_airtime_fraction());
}

TEST(Collision, DeterministicForSeed) {
  const auto a = run_collision_sim(MacKind::kCollisionNotify, base_params(4));
  const auto b = run_collision_sim(MacKind::kCollisionNotify, base_params(4));
  EXPECT_EQ(a.frames_delivered, b.frames_delivered);
  EXPECT_EQ(a.collisions, b.collisions);
  EXPECT_EQ(a.wasted_slots, b.wasted_slots);
}

TEST(Collision, StatsInternallyConsistent) {
  const auto stats =
      run_collision_sim(MacKind::kCollisionNotify, base_params(4));
  EXPECT_EQ(stats.slots_simulated, 100000u);
  EXPECT_LE(stats.useful_slots, stats.slots_simulated);
  EXPECT_LE(stats.wasted_airtime_fraction(), 1.0);
  EXPECT_GE(stats.mean_delivery_latency(),
            static_cast<double>(base_params(4).frame_blocks));
}

TEST(BebWindow, ClampsAndSaturates) {
  constexpr std::size_t kMax = std::numeric_limits<std::size_t>::max();
  // min_slots == 0 used to produce an empty window (-> uniform_int(0),
  // a release-mode division by zero); it must clamp to 1.
  EXPECT_EQ(beb_window(0, 0, 6), 1u);
  EXPECT_EQ(beb_window(0, 3, 6), 1u);
  EXPECT_EQ(beb_window(4, 0, 6), 4u);
  EXPECT_EQ(beb_window(4, 2, 6), 16u);
  EXPECT_EQ(beb_window(4, 10, 6), 4u << 6);  // exponent capped
  // Shifts at or past the word width used to be UB; they saturate now.
  EXPECT_EQ(beb_window(1, 64, 200), kMax);
  EXPECT_EQ(beb_window(1, 200, 200), kMax);
  EXPECT_EQ(beb_window(kMax, 1, 6), kMax);
  EXPECT_EQ(beb_window(2, 63, 63), kMax);
}

TEST(Collision, ZeroBackoffMinSlotsRuns) {
  // Regression: window clamped to >= 1 instead of drawing from an empty
  // range.
  auto params = base_params(4);
  params.backoff_min_slots = 0;
  params.sim_slots = 20000;
  for (const auto kind : {MacKind::kTimeout, MacKind::kCollisionNotify}) {
    const auto stats = run_collision_sim(kind, params);
    EXPECT_EQ(stats.slots_simulated, params.sim_slots);
    EXPECT_LE(stats.useful_slots + stats.wasted_slots, stats.slots_simulated);
  }
}

TEST(Collision, HugeBackoffExponentSaturates) {
  // Regression: exponents past the word width saturate instead of
  // shifting out of range.
  auto params = base_params(8);
  params.backoff_max_exponent = 500;
  params.sim_slots = 20000;
  const auto stats = run_collision_sim(MacKind::kCollisionNotify, params);
  EXPECT_EQ(stats.slots_simulated, params.sim_slots);
  EXPECT_GT(stats.collisions, 0u);
}

TEST(Collision, ZeroTimeoutSlotsRuns) {
  // Regression: timeout_slots == 0 entered kWaitingAck with a zero
  // counter and the pre-decrement wrapped to SIZE_MAX, parking every tag
  // forever after its first frame.
  auto params = base_params(2);
  params.timeout_slots = 0;
  params.sim_slots = 20000;
  const auto stats = run_collision_sim(MacKind::kTimeout, params);
  EXPECT_GT(stats.frames_delivered, 10u);
}

TEST(Collision, UsefulPlusWastedBounded) {
  for (const std::size_t tags : {1u, 3u, 8u}) {
    for (const auto kind : {MacKind::kTimeout, MacKind::kCollisionNotify}) {
      auto params = base_params(tags);
      params.sim_slots = 30000;
      const auto stats = run_collision_sim(kind, params);
      EXPECT_LE(stats.useful_slots + stats.wasted_slots,
                stats.slots_simulated)
          << "tags=" << tags;
      EXPECT_LE(stats.busy_slots, stats.slots_simulated);
    }
  }
}

TEST(Collision, DeterministicAcrossSeedsAndMacKinds) {
  for (const auto kind : {MacKind::kTimeout, MacKind::kCollisionNotify}) {
    for (const std::uint64_t seed : {1ull, 77ull}) {
      auto params = base_params(5);
      params.seed = seed;
      params.sim_slots = 30000;
      const auto a = run_collision_sim(kind, params);
      const auto b = run_collision_sim(kind, params);
      EXPECT_EQ(a.frames_delivered, b.frames_delivered);
      EXPECT_EQ(a.collisions, b.collisions);
      EXPECT_EQ(a.busy_slots, b.busy_slots);
      EXPECT_EQ(a.useful_slots, b.useful_slots);
      EXPECT_EQ(a.wasted_slots, b.wasted_slots);
      EXPECT_EQ(a.total_delivery_latency_slots,
                b.total_delivery_latency_slots);
    }
  }
}

TEST(Collision, FasterNotificationHelps) {
  auto slow = base_params(6);
  slow.notify_delay_slots = 16;
  auto fast = base_params(6);
  fast.notify_delay_slots = 1;
  const auto slow_stats = run_collision_sim(MacKind::kCollisionNotify, slow);
  const auto fast_stats = run_collision_sim(MacKind::kCollisionNotify, fast);
  EXPECT_LE(fast_stats.wasted_airtime_fraction(),
            slow_stats.wasted_airtime_fraction() + 0.01);
}

}  // namespace
}  // namespace fdb::mac
