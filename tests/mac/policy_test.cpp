// MAC policy layer (mac/policy.hpp): the extracted per-slot decision
// surface must be draw-exact against the historical inlined logic —
// same Rng calls, same order, same values — and the factory must map
// kinds faithfully.
#include "mac/policy.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "mac/collision.hpp"
#include "mac/schedule.hpp"
#include "util/rng.hpp"

namespace fdb::mac {
namespace {

ContentionParams params() {
  ContentionParams p;
  p.timeout_slots = 8;
  p.backoff_min_slots = 4;
  p.backoff_max_exponent = 6;
  return p;
}

TEST(MacPolicy, FactoryMapsKinds) {
  MacPolicyParams mp;
  mp.contention = params();
  mp.num_tags = 4;
  mp.frame_slots = 9;
  for (const auto kind : {MacKind::kTimeout, MacKind::kCollisionNotify,
                          MacKind::kScheduled}) {
    const auto policy = make_mac_policy(kind, mp);
    EXPECT_EQ(policy->kind(), kind);
  }
  EXPECT_STREQ(make_mac_policy(MacKind::kTimeout, mp)->name(), "timeout");
  EXPECT_STREQ(make_mac_policy(MacKind::kCollisionNotify, mp)->name(),
               "notify");
  EXPECT_STREQ(make_mac_policy(MacKind::kScheduled, mp)->name(), "scheduled");
}

TEST(MacPolicy, FactoryRejectsDegenerateSchedules) {
  MacPolicyParams mp;
  mp.num_tags = 0;
  mp.frame_slots = 9;
  EXPECT_THROW(make_mac_policy(MacKind::kScheduled, mp),
               std::invalid_argument);
  mp.num_tags = 4;
  mp.frame_slots = 0;
  EXPECT_THROW(make_mac_policy(MacKind::kScheduled, mp),
               std::invalid_argument);
  // The contention kinds ignore the schedule geometry entirely.
  EXPECT_NO_THROW(make_mac_policy(MacKind::kTimeout, mp));
  EXPECT_NO_THROW(make_mac_policy(MacKind::kCollisionNotify, mp));
}

// The contention policies must reproduce mac::draw_backoff exactly:
// initial wait at exponent 0, every later wait at the state's exponent,
// one draw per call.
TEST(MacPolicy, ContentionWaitsAreDrawExact) {
  const auto p = params();
  for (const auto kind : {MacKind::kTimeout, MacKind::kCollisionNotify}) {
    const auto policy = make_mac_policy(kind, {.contention = p});
    Rng via_policy(123);
    Rng reference(123);
    TagMacState st;

    EXPECT_EQ(policy->initial_wait(0, st, via_policy),
              draw_backoff(reference, p.backoff_min_slots, 0,
                           p.backoff_max_exponent));
    for (std::size_t exponent = 0; exponent < 9; ++exponent) {
      st.exponent = exponent;
      EXPECT_EQ(policy->next_wait(0, /*slot=*/17, st, via_policy),
                draw_backoff(reference, p.backoff_min_slots, exponent,
                             p.backoff_max_exponent));
    }
    // Identical residual streams: the policy consumed exactly one draw
    // per call.
    EXPECT_EQ(via_policy(), reference());
  }
}

TEST(MacPolicy, VerdictWaitMatchesHistoricalDrains) {
  auto p = params();
  const auto timeout = make_mac_policy(MacKind::kTimeout, {.contention = p});
  const auto notify =
      make_mac_policy(MacKind::kCollisionNotify, {.contention = p});
  EXPECT_EQ(timeout->verdict_wait_slots(), p.timeout_slots);
  EXPECT_EQ(notify->verdict_wait_slots(), 1u);
  EXPECT_FALSE(timeout->aborts_on_notify());
  EXPECT_TRUE(notify->aborts_on_notify());

  // timeout_slots == 0 historically clamped to a one-slot drain.
  p.timeout_slots = 0;
  const auto clamped = make_mac_policy(MacKind::kTimeout, {.contention = p});
  EXPECT_EQ(clamped->verdict_wait_slots(), 1u);
}

TEST(MacPolicy, OutcomeHooksEvolveExponentLikeBeb) {
  const auto policy =
      make_mac_policy(MacKind::kCollisionNotify, {.contention = params()});
  TagMacState st;
  policy->on_outcome(0, /*delivered=*/false, st);
  policy->on_outcome(0, /*delivered=*/false, st);
  EXPECT_EQ(st.exponent, 2u);
  policy->on_notify_abort(0, st);
  EXPECT_EQ(st.exponent, 3u);
  policy->on_outcome(0, /*delivered=*/true, st);
  EXPECT_EQ(st.exponent, 0u);
}

TEST(MacPolicy, AbstractContentionSimRejectsScheduled) {
  EXPECT_THROW(run_collision_sim(MacKind::kScheduled, {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace fdb::mac
