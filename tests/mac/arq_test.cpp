#include "mac/arq.hpp"

#include <gtest/gtest.h>

#include "core/theory.hpp"

namespace fdb::mac {
namespace {

ArqParams default_params() {
  ArqParams params;
  params.payload_bytes = 256;
  params.block_bytes = 8;
  return params;
}

TEST(StopAndWait, PerfectChannelDeliversEverything) {
  IidBlockChannel channel(0.0, 0.0, Rng(1));
  StopAndWaitArq arq;
  const auto stats = arq.run(100, channel, default_params());
  EXPECT_EQ(stats.frames_delivered, 100u);
  EXPECT_EQ(stats.frames_failed, 0u);
  EXPECT_EQ(stats.payload_bits_delivered, 100u * 256u * 8u);
  EXPECT_GT(stats.goodput(), 0.5);
  EXPECT_LT(stats.goodput(), 1.0);
}

TEST(FullDuplexInstant, PerfectChannelBeatsStopAndWaitOverhead) {
  IidBlockChannel ch1(0.0, 0.0, Rng(2));
  IidBlockChannel ch2(0.0, 0.0, Rng(2));
  StopAndWaitArq sw;
  FullDuplexInstantArq fd;
  const auto params = default_params();
  const auto sw_stats = sw.run(50, ch1, params);
  const auto fd_stats = fd.run(50, ch2, params);
  // FD pays per-block CRCs but no turnaround; on a clean channel the two
  // are close; FD must at least deliver everything.
  EXPECT_EQ(fd_stats.frames_delivered, 50u);
  EXPECT_EQ(fd_stats.blocks_retransmitted, 0u);
  EXPECT_GT(fd_stats.goodput(), 0.8);
  EXPECT_GT(sw_stats.goodput(), 0.8);
}

TEST(FullDuplexInstant, ModerateBerAdvantage) {
  // Headline experiment shape: at BER where whole frames nearly always
  // fail, FD-ARQ sustains goodput, stop-and-wait collapses.
  const double ber = 2e-3;  // 2k-bit frame FER ~ 0.98
  IidBlockChannel ch_sw(ber, 0.0, Rng(3));
  IidBlockChannel ch_sr(ber, 0.0, Rng(4));
  IidBlockChannel ch_fd(ber, 0.0, Rng(5));
  StopAndWaitArq sw;
  SelectiveRepeatArq sr;
  FullDuplexInstantArq fd;
  const auto params = default_params();
  const auto sw_stats = sw.run(200, ch_sw, params);
  const auto sr_stats = sr.run(200, ch_sr, params);
  const auto fd_stats = fd.run(200, ch_fd, params);
  EXPECT_GT(fd_stats.goodput(), 3.0 * sw_stats.goodput());
  EXPECT_GT(fd_stats.goodput(), 3.0 * sr_stats.goodput());
}

TEST(FullDuplexInstant, AgreesWithClosedFormModel) {
  const double ber = 1e-3;
  IidBlockChannel channel(ber, 0.0, Rng(6));
  FullDuplexInstantArq fd;
  const auto params = default_params();
  const auto stats = fd.run(500, channel, params);

  core::ArqModelParams model;
  model.payload_bits = params.payload_bytes * 8;
  model.block_bits = params.block_bytes * 8;
  model.block_overhead_bits = params.block_crc_bits;
  model.frame_overhead_bits = params.frame_overhead_bits;
  model.preamble_bits = params.preamble_bits;
  const double predicted = core::fd_arq_goodput(ber, 0.0, model);
  EXPECT_NEAR(stats.goodput(), predicted, predicted * 0.15);
}

TEST(StopAndWait, AgreesWithClosedFormModel) {
  const double ber = 5e-4;
  IidBlockChannel channel(ber, 0.0, Rng(7));
  StopAndWaitArq sw;
  const auto params = default_params();
  const auto stats = sw.run(500, channel, params);

  core::ArqModelParams model;
  model.payload_bits = params.payload_bytes * 8;
  model.frame_overhead_bits = params.frame_overhead_bits;
  model.preamble_bits = params.preamble_bits;
  model.ack_turnaround_bits = params.ack_turnaround_bits;
  const double predicted = core::stop_and_wait_goodput(ber, model);
  EXPECT_NEAR(stats.goodput(), predicted, predicted * 0.15);
}

TEST(FullDuplexInstant, FeedbackErrorsHandled) {
  // With verdict errors the protocol must still deliver correct frames
  // (false ACKs are caught by the verification pass).
  IidBlockChannel channel(1e-3, 0.02, Rng(8));
  FullDuplexInstantArq fd;
  const auto stats = fd.run(200, channel, default_params());
  EXPECT_EQ(stats.frames_delivered + stats.frames_failed, 200u);
  EXPECT_GT(stats.frames_delivered, 195u);
  // Accounting: false NACKs recorded when they occur.
  EXPECT_GT(stats.false_nacks + stats.false_acks_caught, 0u);
}

TEST(FullDuplexInstant, RetransmitsOnlyCorruptedShare) {
  const double ber = 1e-3;  // block (72b) error rate ~ 7%
  IidBlockChannel channel(ber, 0.0, Rng(9));
  FullDuplexInstantArq fd;
  const auto stats = fd.run(300, channel, default_params());
  const double retx_fraction =
      static_cast<double>(stats.blocks_retransmitted) /
      static_cast<double>(stats.blocks_sent);
  EXPECT_GT(retx_fraction, 0.02);
  EXPECT_LT(retx_fraction, 0.15);
}

TEST(SelectiveRepeat, BetterThanStopAndWaitAlways) {
  // Common random numbers: the same error sequence drives both
  // protocols, making the comparison deterministic.
  for (const double ber : {0.0, 1e-4, 1e-3}) {
    IidBlockChannel ch_sw(ber, 0.0, Rng(10));
    IidBlockChannel ch_sr(ber, 0.0, Rng(10));
    StopAndWaitArq sw;
    SelectiveRepeatArq sr;
    const auto params = default_params();
    EXPECT_GE(sr.run(100, ch_sr, params).goodput(),
              sw.run(100, ch_sw, params).goodput());
  }
}

TEST(Arq, ExtremeBerGivesUpGracefully) {
  IidBlockChannel channel(0.2, 0.0, Rng(12));
  ArqParams params = default_params();
  params.max_attempts = 4;
  StopAndWaitArq sw;
  const auto stats = sw.run(10, channel, params);
  EXPECT_EQ(stats.frames_delivered + stats.frames_failed, 10u);
  EXPECT_GT(stats.frames_failed, 0u);
}

TEST(ArqStats, LatencyAccounting) {
  IidBlockChannel channel(0.0, 0.0, Rng(13));
  FullDuplexInstantArq fd;
  const auto stats = fd.run(10, channel, default_params());
  EXPECT_GT(stats.mean_frame_latency_bits(), 0.0);
  EXPECT_NEAR(stats.mean_frame_latency_bits() * 10.0,
              static_cast<double>(stats.airtime_bits), 1.0);
}

}  // namespace
}  // namespace fdb::mac
