#include "mac/block_channel.hpp"

#include <gtest/gtest.h>

namespace fdb::mac {
namespace {

TEST(IidBlockChannel, ZeroBerNeverCorrupts) {
  IidBlockChannel channel(0.0, 0.0, Rng(1));
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(channel.block_corrupted(100));
    EXPECT_FALSE(channel.feedback_flipped());
  }
}

TEST(IidBlockChannel, CertainBerAlwaysCorrupts) {
  IidBlockChannel channel(1.0, 1.0, Rng(2));
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(channel.block_corrupted(1));
    EXPECT_TRUE(channel.feedback_flipped());
  }
}

TEST(IidBlockChannel, BlockErrorRateMatchesClosedForm) {
  const double ber = 0.002;
  const std::size_t bits = 72;
  IidBlockChannel channel(ber, 0.0, Rng(3));
  int corrupted = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    corrupted += channel.block_corrupted(bits) ? 1 : 0;
  }
  const double expected = 1.0 - std::pow(1.0 - ber, bits);
  EXPECT_NEAR(static_cast<double>(corrupted) / n, expected, 0.005);
}

TEST(IidBlockChannel, FeedbackFlipRate) {
  IidBlockChannel channel(0.0, 0.05, Rng(4));
  int flips = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) flips += channel.feedback_flipped() ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(flips) / n, 0.05, 0.005);
}

TEST(IidBlockChannel, LongerBlocksCorruptMoreOften) {
  IidBlockChannel a(0.001, 0.0, Rng(5));
  IidBlockChannel b(0.001, 0.0, Rng(5));
  int corrupt_short = 0, corrupt_long = 0;
  for (int i = 0; i < 50000; ++i) {
    corrupt_short += a.block_corrupted(50) ? 1 : 0;
    corrupt_long += b.block_corrupted(500) ? 1 : 0;
  }
  EXPECT_GT(corrupt_long, corrupt_short);
}

TEST(TraceBlockChannel, ReplaysVerdictsInOrder) {
  TraceBlockChannel channel;
  channel.push_block_verdict(false);
  channel.push_block_verdict(true);
  channel.push_block_verdict(false);
  EXPECT_FALSE(channel.block_corrupted(10));
  EXPECT_TRUE(channel.block_corrupted(10));
  EXPECT_FALSE(channel.block_corrupted(10));
}

TEST(TraceBlockChannel, RepeatsLastWhenDrained) {
  TraceBlockChannel channel;
  channel.push_block_verdict(true);
  EXPECT_TRUE(channel.block_corrupted(1));
  EXPECT_TRUE(channel.block_corrupted(1));  // repeats
  channel.push_feedback_flip(false);
  EXPECT_FALSE(channel.feedback_flipped());
  EXPECT_FALSE(channel.feedback_flipped());
}

// Regression for the deque -> vector+cursor change: a dry queue must
// keep repeating the last consumed verdict indefinitely, and verdicts
// pushed after the dry spell are consumed next, in push order.
TEST(TraceBlockChannel, DryQueueRepeatsThenConsumesRefill) {
  TraceBlockChannel channel;
  channel.push_block_verdict(true);
  channel.push_block_verdict(false);
  EXPECT_TRUE(channel.block_corrupted(8));
  EXPECT_FALSE(channel.block_corrupted(8));
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(channel.block_corrupted(8)) << "dry repeat " << i;
  }
  channel.push_block_verdict(true);   // refill after running dry
  channel.push_block_verdict(false);
  EXPECT_TRUE(channel.block_corrupted(8));
  EXPECT_FALSE(channel.block_corrupted(8));
  EXPECT_FALSE(channel.block_corrupted(8));  // dry again: repeats last

  channel.push_feedback_flip(true);
  EXPECT_TRUE(channel.feedback_flipped());
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(channel.feedback_flipped()) << "dry repeat " << i;
  }
  channel.push_feedback_flip(false);
  EXPECT_FALSE(channel.feedback_flipped());
}

TEST(TraceBlockChannel, FreshChannelDefaultsToClean) {
  TraceBlockChannel channel;
  // Never-filled queues answer "no corruption / no flip".
  EXPECT_FALSE(channel.block_corrupted(1));
  EXPECT_FALSE(channel.feedback_flipped());
}

}  // namespace
}  // namespace fdb::mac
