#include "flowgraph/graph.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "flowgraph/blocks_std.hpp"

namespace fdb::fg {
namespace {

TEST(Graph, SourceToSinkMovesAllData) {
  Graph graph;
  std::vector<float> data(10000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<float>(i);
  }
  auto source = std::make_shared<VectorSourceF>(data);
  auto sink = std::make_shared<VectorSinkF>();
  const auto s = graph.add(source);
  const auto k = graph.add(sink);
  ASSERT_TRUE(graph.connect(s, 0, k, 0));
  EXPECT_GT(graph.run(), 0u);
  EXPECT_EQ(sink->data(), data);
}

TEST(Graph, SmallBuffersStillDrainEverything) {
  Graph graph(/*default_buffer_items=*/7);  // far below payload size
  std::vector<float> data(1000, 1.5f);
  auto source = std::make_shared<VectorSourceF>(data);
  auto sink = std::make_shared<VectorSinkF>();
  const auto s = graph.add(source);
  const auto k = graph.add(sink);
  ASSERT_TRUE(graph.connect(s, 0, k, 0));
  graph.run();
  EXPECT_EQ(sink->data().size(), 1000u);
}

TEST(Graph, TypeMismatchRejected) {
  Graph graph;
  auto source = std::make_shared<VectorSourceC>(std::vector<cf32>{});
  auto sink = std::make_shared<VectorSinkF>();
  const auto s = graph.add(source);
  const auto k = graph.add(sink);
  EXPECT_FALSE(graph.connect(s, 0, k, 0));
}

TEST(Graph, DoubleWiringRejected) {
  Graph graph;
  auto source = std::make_shared<VectorSourceF>(std::vector<float>{1.0f});
  auto sink1 = std::make_shared<VectorSinkF>();
  auto sink2 = std::make_shared<VectorSinkF>();
  const auto s = graph.add(source);
  const auto k1 = graph.add(sink1);
  const auto k2 = graph.add(sink2);
  EXPECT_TRUE(graph.connect(s, 0, k1, 0));
  EXPECT_FALSE(graph.connect(s, 0, k2, 0));
}

TEST(Graph, ValidateFlagsUnwiredPorts) {
  Graph graph;
  graph.add(std::make_shared<VectorSinkF>());
  EXPECT_FALSE(graph.validate().empty());
  EXPECT_EQ(graph.run(), 0u);  // refuses to run an invalid graph
}

TEST(Graph, PipelineWithTransform) {
  Graph graph;
  auto source = std::make_shared<VectorSourceF>(
      std::vector<float>{1.0f, 2.0f, 3.0f});
  auto doubler = std::make_shared<FunctionBlockF>(
      "double", [](float x) { return 2.0f * x; });
  auto sink = std::make_shared<VectorSinkF>();
  const auto s = graph.add(source);
  const auto d = graph.add(doubler);
  const auto k = graph.add(sink);
  ASSERT_TRUE(graph.connect(s, 0, d, 0));
  ASSERT_TRUE(graph.connect(d, 0, k, 0));
  graph.run();
  const std::vector<float> expected = {2.0f, 4.0f, 6.0f};
  EXPECT_EQ(sink->data(), expected);
}

TEST(Graph, FanInWithAdd) {
  Graph graph;
  auto a = std::make_shared<VectorSourceF>(std::vector<float>{1, 2, 3});
  auto b = std::make_shared<VectorSourceF>(std::vector<float>{10, 20, 30});
  auto add = std::make_shared<AddBlockF>();
  auto sink = std::make_shared<VectorSinkF>();
  const auto ia = graph.add(a);
  const auto ib = graph.add(b);
  const auto iadd = graph.add(add);
  const auto ik = graph.add(sink);
  ASSERT_TRUE(graph.connect(ia, 0, iadd, 0));
  ASSERT_TRUE(graph.connect(ib, 0, iadd, 1));
  ASSERT_TRUE(graph.connect(iadd, 0, ik, 0));
  graph.run();
  const std::vector<float> expected = {11, 22, 33};
  EXPECT_EQ(sink->data(), expected);
}

TEST(Graph, ProbeAccumulatesStats) {
  Graph graph;
  auto source = std::make_shared<VectorSourceF>(
      std::vector<float>(500, 3.0f));
  auto probe = std::make_shared<ProbeStatsF>();
  const auto s = graph.add(source);
  const auto p = graph.add(probe);
  ASSERT_TRUE(graph.connect(s, 0, p, 0));
  graph.run();
  EXPECT_EQ(probe->stats().count(), 500u);
  EXPECT_DOUBLE_EQ(probe->stats().mean(), 3.0);
}

}  // namespace
}  // namespace fdb::fg
