#include "flowgraph/blocks_std.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "flowgraph/graph.hpp"

namespace fdb::fg {
namespace {

// Helper: run src -> block -> sink, return sink contents.
std::vector<float> run_through(BlockPtr block, std::vector<float> input) {
  Graph graph;
  auto source = std::make_shared<VectorSourceF>(std::move(input));
  auto sink = std::make_shared<VectorSinkF>();
  const auto s = graph.add(source);
  const auto b = graph.add(std::move(block));
  const auto k = graph.add(sink);
  EXPECT_TRUE(graph.connect(s, 0, b, 0));
  EXPECT_TRUE(graph.connect(b, 0, k, 0));
  graph.run();
  return sink->data();
}

TEST(Blocks, KeepOneInNDecimates) {
  auto out = run_through(std::make_shared<KeepOneInN>(3),
                         {0, 1, 2, 3, 4, 5, 6, 7, 8});
  const std::vector<float> expected = {0, 3, 6};
  EXPECT_EQ(out, expected);
}

TEST(Blocks, MovingAverageBlockSmoothes) {
  auto out = run_through(std::make_shared<MovingAverageBlockF>(2),
                         {2.0f, 4.0f, 6.0f});
  ASSERT_EQ(out.size(), 3u);
  EXPECT_FLOAT_EQ(out[0], 2.0f);   // warm-up: single sample
  EXPECT_FLOAT_EQ(out[1], 3.0f);
  EXPECT_FLOAT_EQ(out[2], 5.0f);
}

TEST(Blocks, AgcBlockMatchesBareKernel) {
  std::vector<float> input(500, 0.1f);
  dsp::Agc reference(1.0f, 0.01f);
  std::vector<float> expected(input.size());
  reference.process(input, expected);
  const auto out =
      run_through(std::make_shared<AgcBlockF>(1.0f, 0.01f), input);
  ASSERT_EQ(out.size(), expected.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], expected[i]) << i;
  }
}

TEST(Blocks, CorrelatorBlockMatchesBareKernel) {
  std::vector<float> pattern = {1.0f, -1.0f, 1.0f};
  std::vector<float> input;
  for (int r = 0; r < 40; ++r) {
    input.push_back(static_cast<float>(r % 5));
  }
  dsp::SlidingCorrelator reference(pattern, 2);
  std::vector<float> expected(input.size());
  reference.process(input, expected);
  const auto out =
      run_through(std::make_shared<CorrelatorBlockF>(pattern, 2), input);
  ASSERT_EQ(out.size(), expected.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], expected[i]) << i;
  }
}

TEST(Blocks, FirBlockFiltersImpulse) {
  auto out = run_through(std::make_shared<FirBlockF>(
                             std::vector<float>{0.25f, 0.75f}),
                         {1.0f, 0.0f, 0.0f});
  ASSERT_EQ(out.size(), 3u);
  EXPECT_FLOAT_EQ(out[0], 0.25f);
  EXPECT_FLOAT_EQ(out[1], 0.75f);
  EXPECT_FLOAT_EQ(out[2], 0.0f);
}

TEST(Blocks, NullSinkCounts) {
  Graph graph;
  auto source = std::make_shared<VectorSourceF>(std::vector<float>(123, 1.0f));
  auto sink = std::make_shared<NullSinkF>();
  const auto s = graph.add(source);
  const auto k = graph.add(sink);
  ASSERT_TRUE(graph.connect(s, 0, k, 0));
  graph.run();
  EXPECT_EQ(sink->consumed(), 123u);
}

TEST(Blocks, EnvelopeBlockOutputsMagnitude) {
  Graph graph;
  std::vector<cf32> carrier(20000, cf32{0.0f, 2.0f});
  auto source = std::make_shared<VectorSourceC>(carrier);
  auto env = std::make_shared<EnvelopeBlock>(1000.0, 100000.0);
  auto sink = std::make_shared<VectorSinkF>();
  const auto s = graph.add(source);
  const auto e = graph.add(env);
  const auto k = graph.add(sink);
  ASSERT_TRUE(graph.connect(s, 0, e, 0));
  ASSERT_TRUE(graph.connect(e, 0, k, 0));
  graph.run();
  ASSERT_EQ(sink->data().size(), carrier.size());
  EXPECT_NEAR(sink->data().back(), 2.0f, 1e-2f);
}

TEST(Blocks, MultiplyBlockMixesStreams) {
  Graph graph;
  auto a = std::make_shared<VectorSourceC>(
      std::vector<cf32>{{1, 0}, {0, 1}});
  auto b = std::make_shared<VectorSourceC>(
      std::vector<cf32>{{2, 0}, {0, 2}});
  auto mul = std::make_shared<MultiplyBlockC>();
  auto sink = std::make_shared<VectorSinkC>();
  const auto ia = graph.add(a);
  const auto ib = graph.add(b);
  const auto im = graph.add(mul);
  const auto ik = graph.add(sink);
  ASSERT_TRUE(graph.connect(ia, 0, im, 0));
  ASSERT_TRUE(graph.connect(ib, 0, im, 1));
  ASSERT_TRUE(graph.connect(im, 0, ik, 0));
  graph.run();
  ASSERT_EQ(sink->data().size(), 2u);
  EXPECT_FLOAT_EQ(sink->data()[0].real(), 2.0f);
  EXPECT_FLOAT_EQ(sink->data()[1].real(), -2.0f);  // j * 2j = -2
}

TEST(Blocks, CallbackSourceProducesUntilFalse) {
  Graph graph;
  int calls = 0;
  auto source = std::make_shared<CallbackSourceC>(
      [&calls](std::vector<cf32>& out) {
        out.assign(100, cf32{1.0f, 0.0f});
        return ++calls < 5;
      });
  auto sink = std::make_shared<VectorSinkC>();
  const auto s = graph.add(source);
  const auto k = graph.add(sink);
  ASSERT_TRUE(graph.connect(s, 0, k, 0));
  graph.run();
  EXPECT_EQ(sink->data().size(), 500u);
}

}  // namespace
}  // namespace fdb::fg
