#include "flowgraph/stream.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace fdb::fg {
namespace {

TEST(StreamBuffer, ItemSizes) {
  EXPECT_EQ(item_size(ItemType::kF32), sizeof(float));
  EXPECT_EQ(item_size(ItemType::kCF32), sizeof(cf32));
  EXPECT_EQ(item_size(ItemType::kU8), 1u);
}

TEST(StreamBuffer, WriteReadRoundTrip) {
  StreamBuffer buf(ItemType::kF32, 16);
  const std::vector<float> in = {1.0f, 2.0f, 3.0f};
  EXPECT_EQ(buf.write_items(std::span<const float>(in)), 3u);
  EXPECT_EQ(buf.readable(), 3u);
  std::vector<float> out(3);
  EXPECT_EQ(buf.peek_items(std::span<float>(out)), 3u);
  EXPECT_EQ(out, in);
  buf.consume(3);
  EXPECT_EQ(buf.readable(), 0u);
}

TEST(StreamBuffer, BackpressureAtCapacity) {
  StreamBuffer buf(ItemType::kF32, 4);
  const std::vector<float> in(10, 1.0f);
  EXPECT_EQ(buf.write_items(std::span<const float>(in)), 4u);
  EXPECT_EQ(buf.writable(), 0u);
  buf.consume(2);
  EXPECT_EQ(buf.writable(), 2u);
}

TEST(StreamBuffer, WrapAroundPreservesData) {
  StreamBuffer buf(ItemType::kF32, 4);
  std::vector<float> out(2);
  for (float round = 0; round < 20; ++round) {
    const std::vector<float> in = {round, round + 0.5f};
    ASSERT_EQ(buf.write_items(std::span<const float>(in)), 2u);
    ASSERT_EQ(buf.peek_items(std::span<float>(out)), 2u);
    EXPECT_FLOAT_EQ(out[0], round);
    EXPECT_FLOAT_EQ(out[1], round + 0.5f);
    buf.consume(2);
  }
}

TEST(StreamBuffer, AbsoluteCountersAdvance) {
  StreamBuffer buf(ItemType::kU8, 8);
  const std::vector<std::uint8_t> in = {1, 2, 3};
  buf.write_items(std::span<const std::uint8_t>(in));
  buf.consume(2);
  EXPECT_EQ(buf.items_written(), 3u);
  EXPECT_EQ(buf.items_read(), 2u);
}

TEST(StreamBuffer, TagsVisibleInReadRange) {
  StreamBuffer buf(ItemType::kF32, 16);
  const std::vector<float> in(8, 0.0f);
  buf.write_items(std::span<const float>(in));
  buf.add_tag({5, "frame_start", 1.0});
  const auto tags = buf.tags_in_read_range(8);
  ASSERT_EQ(tags.size(), 1u);
  EXPECT_EQ(tags[0].key, "frame_start");
  EXPECT_EQ(tags[0].offset, 5u);
}

TEST(StreamBuffer, TagsDroppedOnceConsumed) {
  StreamBuffer buf(ItemType::kF32, 16);
  const std::vector<float> in(8, 0.0f);
  buf.write_items(std::span<const float>(in));
  buf.add_tag({2, "old", 0.0});
  buf.consume(4);
  EXPECT_TRUE(buf.tags_in_read_range(4).empty());
}

TEST(StreamBuffer, CloseMarksEndOfStream) {
  StreamBuffer buf(ItemType::kF32, 4);
  EXPECT_FALSE(buf.closed());
  buf.close();
  EXPECT_TRUE(buf.closed());
}

}  // namespace
}  // namespace fdb::fg
