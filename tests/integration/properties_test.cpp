// Parameterised property sweeps over the end-to-end system: invariants
// that must hold across whole parameter ranges, not just single points.
#include <gtest/gtest.h>

#include "core/theory.hpp"
#include "mac/arq.hpp"
#include "sim/link_budget.hpp"
#include "sim/link_sim.hpp"

namespace fdb {
namespace {

sim::LinkSimConfig prop_config() {
  sim::LinkSimConfig config;
  config.modem = core::FdModemConfig::make(4, 6);
  config.carrier = "cw";
  config.fading = "static";
  config.seed = 11;
  return config;
}

// ---- Budget properties over distance -------------------------------

class BudgetOverDistance : public ::testing::TestWithParam<double> {};

TEST_P(BudgetOverDistance, SwingAndHarvestFinitePositive) {
  auto config = prop_config();
  config.a_to_b_m = GetParam();
  const auto budget = sim::compute_link_budget(config);
  EXPECT_GT(budget.delta_env_at_b, 0.0);
  EXPECT_GT(budget.incident_at_b_w, 0.0);
  EXPECT_GE(budget.predicted_data_ber, 0.0);
  EXPECT_LE(budget.predicted_data_ber, 0.5);
}

TEST_P(BudgetOverDistance, FeedbackNeverWorseThanData) {
  auto config = prop_config();
  config.a_to_b_m = GetParam();
  config.noise_power_override_w = 1e-9;
  const auto budget = sim::compute_link_budget(config);
  EXPECT_LE(budget.predicted_feedback_ber,
            budget.predicted_data_ber + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Distances, BudgetOverDistance,
                         ::testing::Values(0.5, 1.0, 1.5, 2.0, 3.0, 5.0));

// ---- ARQ model properties over BER ----------------------------------

class ArqOverBer : public ::testing::TestWithParam<double> {};

TEST_P(ArqOverBer, GoodputsInUnitInterval) {
  const double ber = GetParam();
  core::ArqModelParams params;
  for (const double g :
       {core::stop_and_wait_goodput(ber, params),
        core::selective_repeat_goodput(ber, params),
        core::fd_arq_goodput(ber, 0.0, params)}) {
    EXPECT_GE(g, 0.0);
    EXPECT_LE(g, 1.0);
  }
}

TEST_P(ArqOverBer, FdNeverLosesBadly) {
  // FD-ARQ pays per-block CRC overhead, so at very low BER the frame
  // baselines can edge it out — but never by more than the CRC overhead
  // ratio; and with rising BER FD must win.
  const double ber = GetParam();
  core::ArqModelParams params;
  const double fd = core::fd_arq_goodput(ber, 0.0, params);
  const double sr = core::selective_repeat_goodput(ber, params);
  const double overhead =
      static_cast<double>(params.block_bits) /
      static_cast<double>(params.block_bits + params.block_overhead_bits);
  EXPECT_GE(fd, sr * overhead * 0.95);
}

TEST_P(ArqOverBer, SimulationTracksModel) {
  const double ber = GetParam();
  if (ber > 5e-3) GTEST_SKIP() << "sim too slow at extreme BER";
  mac::IidBlockChannel channel(ber, 0.0, Rng(21));
  mac::FullDuplexInstantArq arq;
  mac::ArqParams params;
  const auto stats = arq.run(200, channel, params);
  core::ArqModelParams model;
  model.payload_bits = params.payload_bytes * 8;
  model.block_bits = params.block_bytes * 8;
  model.block_overhead_bits = params.block_crc_bits;
  model.frame_overhead_bits = params.frame_overhead_bits;
  model.preamble_bits = params.preamble_bits;
  const double predicted = core::fd_arq_goodput(ber, 0.0, model);
  EXPECT_NEAR(stats.goodput(), predicted,
              std::max(predicted * 0.2, 0.02));
}

INSTANTIATE_TEST_SUITE_P(Bers, ArqOverBer,
                         ::testing::Values(0.0, 1e-4, 5e-4, 1e-3, 5e-3,
                                           2e-2));

// ---- Reflectivity trade-off ------------------------------------------

class RhoTradeoff : public ::testing::TestWithParam<double> {};

TEST_P(RhoTradeoff, HarvestFractionComplements) {
  const double rho = GetParam();
  const channel::BackscatterModulator mod(
      channel::ReflectionStates::ook(rho));
  EXPECT_NEAR(mod.harvest_fraction(true), 1.0 - rho, 1e-6);
  EXPECT_NEAR(mod.harvest_fraction(false), 1.0, 1e-6);
}

TEST_P(RhoTradeoff, BudgetSwingMonotoneInRho) {
  auto lo = prop_config();
  lo.reflection_rho = GetParam();
  auto hi = lo;
  hi.reflection_rho = std::min(1.0, GetParam() + 0.1);
  EXPECT_LE(sim::compute_link_budget(lo).delta_env_at_b,
            sim::compute_link_budget(hi).delta_env_at_b + 1e-15);
}

INSTANTIATE_TEST_SUITE_P(Rhos, RhoTradeoff,
                         ::testing::Values(0.1, 0.3, 0.5, 0.7, 0.9));

// ---- Rate asymmetry property -----------------------------------------

class AsymmetrySweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AsymmetrySweep, FeedbackWindowGrowsWithBlockSize) {
  const std::size_t block_bytes = GetParam();
  const auto config = core::FdModemConfig::make(block_bytes, 6);
  EXPECT_TRUE(config.consistent());
  EXPECT_EQ(config.data.rates.samples_per_feedback_bit(),
            config.block_bits() * config.data.rates.samples_per_bit());
  // Theoretical feedback BER improves with the window.
  const double small_window = core::feedback_ber(0.01, 0.1, 64, true);
  const double this_window = core::feedback_ber(
      0.01, 0.1, config.data.rates.samples_per_feedback_bit(), true);
  if (config.data.rates.samples_per_feedback_bit() > 64) {
    EXPECT_LE(this_window, small_window);
  }
}

INSTANTIATE_TEST_SUITE_P(BlockSizes, AsymmetrySweep,
                         ::testing::Values(2u, 4u, 8u, 16u, 32u));

}  // namespace
}  // namespace fdb
