// End-to-end closed loop: A's frame decoded at B while B's feedback is
// decoded at A, over the full sample-level channel — then the verdicts
// B computed are the bits A recovers.
#include <gtest/gtest.h>

#include "core/fd_modem.hpp"
#include "core/frame_schedule.hpp"
#include "sim/link_sim.hpp"

namespace fdb {
namespace {

sim::LinkSimConfig loop_config() {
  sim::LinkSimConfig config;
  config.modem = core::FdModemConfig::make(4, 6);
  config.carrier = "cw";
  config.fading = "static";
  config.seed = 77;
  return config;
}

TEST(FdEndToEnd, VerdictsTravelBackIntact) {
  // Stage 1: run a data frame A->B and collect B's per-block verdicts.
  auto config = loop_config();
  sim::LinkSimulator sim(config);
  sim.set_payload_bytes(16);  // 4 blocks
  const auto trial = sim.run_trial(0);
  ASSERT_TRUE(trial.sync_ok);
  ASSERT_EQ(trial.block_ok.size(), 4u);

  // Stage 2: encode the verdicts as feedback bits and run them over the
  // reverse channel while A keeps transmitting — done inside run_trial
  // for random bits; here we verify the dedicated encoder/decoder pair
  // over a synthetic capture consistent with the channel gains.
  core::FeedbackEncoder encoder(config.modem.data.rates,
                                config.modem.feedback);
  core::FeedbackDecoder decoder(config.modem.data.rates,
                                config.modem.feedback);
  std::vector<std::uint8_t> verdict_bits;
  for (const bool ok : trial.block_ok) verdict_bits.push_back(ok ? 1 : 0);
  const auto states = encoder.encode(verdict_bits);

  // Feedback swing relative to A's own signal mirrors the link budget.
  std::vector<float> envelope(states.size());
  std::vector<std::uint8_t> own(states.size());
  for (std::size_t i = 0; i < states.size(); ++i) {
    own[i] = (i / 12) % 2;  // A's chips keep toggling
    double level = 1.0;
    if (own[i]) level += 0.5;
    if (states[i]) level += 0.05;
    envelope[i] = static_cast<float>(level);
  }
  const auto decoded = decoder.decode(envelope, own, verdict_bits.size());
  ASSERT_EQ(decoded.bits.size(), verdict_bits.size());
  EXPECT_EQ(decoded.bits, verdict_bits);
}

TEST(FdEndToEnd, ScheduleAlignsVerdictsWithinFrame) {
  // The verdict for the last block must arrive before the frame ends
  // plus the scheduled drain slots — early termination depends on it.
  const auto config = loop_config();
  core::FrameSchedule schedule(config.modem.data.rates,
                               config.modem.schedule);
  const std::size_t blocks = 4;
  const std::size_t slots = schedule.slots_for_blocks(blocks);
  EXPECT_EQ(slots, blocks + config.modem.schedule.decode_delay_slots);
  // Sample positions are within the burst extended by drain slots.
  core::FdDataTransmitter tx(config.modem);
  const std::size_t burst = tx.burst_samples(16);
  const std::size_t last_verdict_sample =
      tx.preamble_samples() +
      schedule.slot_start_sample(schedule.verdict_slot(blocks - 1));
  const std::size_t drain =
      config.modem.schedule.decode_delay_slots *
      config.modem.data.rates.samples_per_feedback_bit();
  EXPECT_LE(last_verdict_sample, burst + drain);
}

TEST(FdEndToEnd, BothDirectionsSimultaneouslyClean) {
  auto config = loop_config();
  sim::LinkSimulator sim(config);
  sim.set_payload_bytes(16);
  const auto summary = sim.run(10);
  EXPECT_EQ(summary.data.errors(), 0u);
  EXPECT_EQ(summary.feedback.errors(), 0u);
  EXPECT_EQ(summary.sync_failures, 0u);
}

TEST(FdEndToEnd, HalfDuplexAblationMatchesFullDuplex) {
  // Removing the concurrent feedback must not change data performance
  // in the clean regime (E1's flat line).
  auto fd = loop_config();
  auto hd = loop_config();
  hd.feedback_active = false;
  sim::LinkSimulator sim_fd(fd), sim_hd(hd);
  sim_fd.set_payload_bytes(16);
  sim_hd.set_payload_bytes(16);
  EXPECT_EQ(sim_fd.run(5).data.errors(), sim_hd.run(5).data.errors());
}

}  // namespace
}  // namespace fdb
