// Failure injection / fuzz-style robustness: malformed, truncated and
// adversarial inputs must produce sane statuses — never crashes, hangs
// or bogus "ok" results.
#include <gtest/gtest.h>

#include "phy/framer.hpp"
#include "phy/line_code.hpp"
#include "phy/modem.hpp"
#include "phy/stream_rx.hpp"
#include "util/rng.hpp"

namespace fdb {
namespace {

TEST(Fuzz, DeframeRandomBitsNeverFalselyAccepts) {
  // With random input, header CRC8 passes ~1/256 of the time and the
  // body CRC16 then passes ~1/65536 — over 2000 trials a false kOk is
  // a ~3% tail event; assert it stays rare and statuses stay sane.
  Rng rng(101);
  int false_ok = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<std::uint8_t> bits(rng.uniform_int(600));
    for (auto& b : bits) b = rng.chance(0.5) ? 1 : 0;
    const auto result = phy::deframe_bits(bits);
    switch (result.status) {
      case Status::kOk:
        ++false_ok;
        break;
      case Status::kCrcMismatch:
      case Status::kTruncated:
        break;
      default:
        FAIL() << "unexpected status " << to_string(result.status);
    }
  }
  EXPECT_LE(false_ok, 2);
}

TEST(Fuzz, DecodeBlocksArbitraryLengthsSafe) {
  Rng rng(103);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<std::uint8_t> bits(rng.uniform_int(400));
    for (auto& b : bits) b = rng.chance(0.5) ? 1 : 0;
    const std::size_t payload = rng.uniform_int(64);
    const std::size_t block = 1 + rng.uniform_int(16);
    const auto result = phy::decode_blocks(bits, payload, block);
    EXPECT_EQ(result.payload.size(), payload);
    EXPECT_EQ(result.block_ok.size(),
              payload == 0 ? 0 : (payload + block - 1) / block);
  }
}

TEST(Fuzz, LineCodesRejectOrRoundTripArbitraryChips) {
  Rng rng(107);
  for (const auto code :
       {phy::LineCode::kFm0, phy::LineCode::kManchester,
        phy::LineCode::kMiller2, phy::LineCode::kNrz}) {
    for (int trial = 0; trial < 200; ++trial) {
      std::vector<std::uint8_t> chips(rng.uniform_int(100));
      for (auto& c : chips) c = rng.chance(0.5) ? 1 : 0;
      const auto bits = phy::decode(code, chips);
      if (bits.has_value()) {
        EXPECT_EQ(bits->size(), chips.size() / 2);
      }
    }
  }
}

TEST(Fuzz, ModemSurvivesPathologicalEnvelopes) {
  phy::ModemConfig config;
  config.rates.samples_per_chip = 8;
  phy::BackscatterRx rx(config);
  Rng rng(109);

  // Constant, ramp, impulse train, huge dynamic range, denormal-small.
  std::vector<std::vector<float>> cases;
  cases.emplace_back(5000, 1.0f);
  {
    std::vector<float> ramp(5000);
    for (std::size_t i = 0; i < ramp.size(); ++i) {
      ramp[i] = static_cast<float>(i) * 1e-3f;
    }
    cases.push_back(std::move(ramp));
  }
  {
    std::vector<float> impulses(5000, 0.0f);
    for (std::size_t i = 0; i < impulses.size(); i += 97) {
      impulses[i] = 1e6f;
    }
    cases.push_back(std::move(impulses));
  }
  cases.emplace_back(5000, 1e-30f);
  {
    std::vector<float> noise(5000);
    for (auto& x : noise) x = static_cast<float>(rng.uniform(0.0, 1e9));
    cases.push_back(std::move(noise));
  }

  for (const auto& env : cases) {
    const auto result = rx.demodulate_frame(env);
    // Any status is acceptable except a successful decode of garbage.
    EXPECT_NE(result.status, Status::kOk);
  }
}

TEST(Fuzz, StreamingReceiverSurvivesRandomChunks) {
  phy::ModemConfig config;
  config.rates.samples_per_chip = 8;
  std::size_t frames = 0;
  phy::StreamingReceiver receiver(
      config, [&](const phy::StreamFrame&) { ++frames; });
  Rng rng(113);
  for (int round = 0; round < 50; ++round) {
    std::vector<float> chunk(rng.uniform_int(2048));
    for (auto& x : chunk) {
      x = static_cast<float>(rng.uniform(0.0, 2.0));
    }
    receiver.process(chunk);
  }
  // Uniform noise should essentially never assemble a CRC-valid frame.
  EXPECT_LE(frames, 50u);  // handler may fire on CRC-failed candidates
}

TEST(Fuzz, BitErrorInjectionAlwaysCaughtOrCorrectPayload) {
  // Flip 1..8 random chips of a valid frame: the decoder must either
  // return the exact payload (error landed in padding / got absorbed)
  // or flag a CRC failure — never a wrong payload marked kOk.
  phy::ModemConfig config;
  config.rates.samples_per_chip = 8;
  phy::BackscatterTx tx(config);
  phy::BackscatterRx rx(config);
  Rng rng(127);
  std::vector<std::uint8_t> payload(24);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.uniform_int(256));

  for (int trial = 0; trial < 60; ++trial) {
    auto states = tx.modulate_frame(payload);
    const std::size_t flips = 1 + rng.uniform_int(8);
    for (std::size_t f = 0; f < flips; ++f) {
      // Flip one whole chip (all its samples) inside the data section.
      const std::size_t preamble =
          phy::default_preamble_length() * config.rates.samples_per_chip;
      const std::size_t chip_count =
          (states.size() - preamble) / config.rates.samples_per_chip;
      const std::size_t chip = rng.uniform_int(chip_count);
      for (std::size_t s = 0; s < config.rates.samples_per_chip; ++s) {
        states[preamble + chip * config.rates.samples_per_chip + s] ^= 1u;
      }
    }
    std::vector<float> env(200, 1.0f);
    for (const auto s : states) env.push_back(s ? 1.4f : 1.0f);
    env.insert(env.end(), 200, 1.0f);
    const auto result = rx.demodulate_frame(env);
    if (result.status == Status::kOk) {
      EXPECT_EQ(result.payload, payload);
    }
  }
}

}  // namespace
}  // namespace fdb
