// Couples the sample-level PHY to the link-layer ARQ engines: block
// verdicts recorded from LinkSimulator trials drive a TraceBlockChannel,
// so the protocol sees the *actual* error process of the simulated
// channel (bursty under fading) instead of an i.i.d. abstraction.
#include <gtest/gtest.h>

#include "mac/arq.hpp"
#include "mac/block_channel.hpp"
#include "sim/link_sim.hpp"

namespace fdb {
namespace {

mac::TraceBlockChannel record_trace(const sim::LinkSimConfig& config,
                                    std::size_t frames,
                                    std::size_t payload_bytes) {
  sim::LinkSimulator sim(config);
  sim.set_payload_bytes(payload_bytes);
  mac::TraceBlockChannel trace;
  for (std::size_t f = 0; f < frames; ++f) {
    const auto trial = sim.run_trial(f);
    if (!trial.sync_ok) {
      // Whole frame lost: every block corrupted.
      const std::size_t blocks =
          payload_bytes / config.modem.block_size_bytes;
      for (std::size_t b = 0; b < blocks; ++b) {
        trace.push_block_verdict(true);
        trace.push_feedback_flip(false);
      }
      continue;
    }
    std::size_t fb_index = 0;
    for (const bool ok : trial.block_ok) {
      trace.push_block_verdict(!ok);
      // Use measured feedback errors as flip events, cycling through.
      const bool flip = fb_index < trial.feedback_bit_errors;
      trace.push_feedback_flip(flip);
      ++fb_index;
    }
  }
  return trace;
}

sim::LinkSimConfig coupling_config(double noise) {
  sim::LinkSimConfig config;
  config.modem = core::FdModemConfig::make(4, 6);
  config.carrier = "cw";
  config.fading = "static";
  config.noise_power_override_w = noise;
  config.seed = 99;
  return config;
}

TEST(ArqPhyCoupling, CleanChannelDeliversAllFrames) {
  auto trace = record_trace(coupling_config(0.0), 20, 16);
  mac::FullDuplexInstantArq arq;
  mac::ArqParams params;
  params.payload_bytes = 16;
  params.block_bytes = 4;
  const auto stats = arq.run(20, trace, params);
  EXPECT_EQ(stats.frames_delivered, 20u);
  EXPECT_EQ(stats.blocks_retransmitted, 0u);
}

TEST(ArqPhyCoupling, NoisyChannelStillDeliversWithRetransmissions) {
  auto trace = record_trace(coupling_config(2e-9), 40, 16);
  mac::FullDuplexInstantArq arq;
  mac::ArqParams params;
  params.payload_bytes = 16;
  params.block_bytes = 4;
  const auto stats = arq.run(40, trace, params);
  EXPECT_EQ(stats.frames_delivered + stats.frames_failed, 40u);
  EXPECT_GT(stats.frames_delivered, 30u);
  EXPECT_GT(stats.goodput(), 0.0);
  EXPECT_LE(stats.goodput(), 1.0);
}

TEST(ArqPhyCoupling, FdBeatsStopAndWaitOnMeasuredChannel) {
  // Same measured trace driving both protocols: the FD advantage holds
  // on the real error process, not just the i.i.d. abstraction.
  const auto config = coupling_config(3e-9);
  auto trace_fd = record_trace(config, 60, 16);
  auto trace_sw = record_trace(config, 60, 16);
  mac::ArqParams params;
  params.payload_bytes = 16;
  params.block_bytes = 4;
  mac::FullDuplexInstantArq fd;
  mac::StopAndWaitArq sw;
  const auto fd_stats = fd.run(60, trace_fd, params);
  const auto sw_stats = sw.run(60, trace_sw, params);
  EXPECT_GE(fd_stats.goodput(), sw_stats.goodput() * 0.9);
}

}  // namespace
}  // namespace fdb
