#include "dsp/envelope.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

namespace fdb::dsp {
namespace {

TEST(EnvelopeDetector, ConstantCarrierSettlesToMagnitude) {
  EnvelopeDetector env(1000.0, 100000.0);
  float y = 0.0f;
  for (int i = 0; i < 20000; ++i) y = env.process({3.0f, 4.0f});
  EXPECT_NEAR(y, 5.0f, 1e-3f);  // |3+4j| = 5
}

TEST(EnvelopeDetector, TracksAmplitudeStep) {
  EnvelopeDetector env(5000.0, 100000.0);
  for (int i = 0; i < 5000; ++i) env.process({1.0f, 0.0f});
  float y = 0.0f;
  for (int i = 0; i < 5000; ++i) y = env.process({2.0f, 0.0f});
  EXPECT_NEAR(y, 2.0f, 1e-2f);
}

TEST(EnvelopeDetector, PhaseInvariant) {
  // Rotating carrier with constant magnitude -> constant envelope.
  EnvelopeDetector env(1000.0, 100000.0);
  float min_y = 1e9f, max_y = -1e9f;
  for (int i = 0; i < 50000; ++i) {
    const double angle = 2.0 * std::numbers::pi * 0.01 * i;
    const float y = env.process({static_cast<float>(std::cos(angle)),
                                 static_cast<float>(std::sin(angle))});
    if (i > 10000) {
      min_y = std::min(min_y, y);
      max_y = std::max(max_y, y);
    }
  }
  EXPECT_NEAR(min_y, 1.0f, 1e-3f);
  EXPECT_NEAR(max_y, 1.0f, 1e-3f);
}

TEST(EnvelopeDetector, BlockApiMatches) {
  EnvelopeDetector a(2000.0, 100000.0), b(2000.0, 100000.0);
  std::vector<cf32> in(100, cf32{1.0f, 1.0f});
  std::vector<float> out(100);
  a.process(in, out);
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_FLOAT_EQ(b.process(in[i]), out[i]);
  }
}

TEST(SquareLawDetector, SettlesToPower) {
  SquareLawDetector det(1000.0, 100000.0);
  float y = 0.0f;
  for (int i = 0; i < 20000; ++i) y = det.process({3.0f, 4.0f});
  EXPECT_NEAR(y, 25.0f, 1e-2f);  // |3+4j|^2 = 25
}

TEST(EnvelopeDetector, ResetForgetsState) {
  EnvelopeDetector env(1000.0, 100000.0);
  for (int i = 0; i < 1000; ++i) env.process({10.0f, 0.0f});
  env.reset();
  const float y = env.process({1.0f, 0.0f});
  EXPECT_LT(y, 1.0f);  // fresh RC ramping from zero, no residue of 10
}

}  // namespace
}  // namespace fdb::dsp
