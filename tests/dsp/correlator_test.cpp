#include "dsp/correlator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <vector>

#include "phy/preamble.hpp"
#include "util/rng.hpp"

namespace fdb::dsp {
namespace {

std::vector<float> stretch(const std::vector<float>& pattern,
                           std::size_t spc, float high, float low) {
  std::vector<float> out;
  for (const float chip : pattern) {
    for (std::size_t s = 0; s < spc; ++s) {
      out.push_back(chip > 0 ? high : low);
    }
  }
  return out;
}

TEST(SlidingCorrelator, PeaksAtAlignedPattern) {
  const auto pattern = phy::chips_to_pattern(phy::barker13_chips());
  const std::size_t spc = 4;
  SlidingCorrelator corr(pattern, spc);

  // Noise-free: pattern embedded after some offset.
  std::vector<float> signal(40, 0.5f);
  const auto burst = stretch(pattern, spc, 1.0f, 0.0f);
  signal.insert(signal.end(), burst.begin(), burst.end());
  signal.insert(signal.end(), 40, 0.5f);

  float best = -2.0f;
  std::size_t best_idx = 0;
  for (std::size_t i = 0; i < signal.size(); ++i) {
    const float c = corr.process(signal[i]);
    if (c > best) {
      best = c;
      best_idx = i;
    }
  }
  EXPECT_GT(best, 0.99f);
  // Peak at the last sample of the embedded pattern.
  EXPECT_EQ(best_idx, 40 + burst.size() - 1);
}

TEST(SlidingCorrelator, InvariantToDcOffset) {
  const auto pattern = phy::chips_to_pattern(phy::barker11_chips());
  SlidingCorrelator corr_lo(pattern, 2), corr_hi(pattern, 2);
  const auto burst_lo = stretch(pattern, 2, 1.0f, 0.0f);
  const auto burst_hi = stretch(pattern, 2, 101.0f, 100.0f);
  float peak_lo = -2.0f, peak_hi = -2.0f;
  for (std::size_t i = 0; i < burst_lo.size(); ++i) {
    peak_lo = std::max(peak_lo, corr_lo.process(burst_lo[i]));
    peak_hi = std::max(peak_hi, corr_hi.process(burst_hi[i]));
  }
  EXPECT_NEAR(peak_lo, peak_hi, 1e-4f);
}

TEST(SlidingCorrelator, LowOnRandomNoise) {
  const auto pattern = phy::chips_to_pattern(phy::barker13_chips());
  SlidingCorrelator corr(pattern, 4);
  Rng rng(5);
  float peak = -2.0f;
  for (int i = 0; i < 5000; ++i) {
    peak = std::max(peak, corr.process(static_cast<float>(rng.uniform())));
  }
  EXPECT_LT(peak, 0.6f);
}

TEST(SlidingCorrelator, NotWarmedUpReturnsZero) {
  SlidingCorrelator corr({1.0f, -1.0f}, 4);
  EXPECT_FLOAT_EQ(corr.process(1.0f), 0.0f);
  EXPECT_FALSE(corr.warmed_up());
}

TEST(SlidingCorrelator, ExactFillSampleProducesCorrelation) {
  // The sample that completes the window must yield a real correlation,
  // not a second warm-up zero: with pattern {+1,-1} at 2 samples/chip
  // (window 4), the aligned input {1,1,0,0} correlates to exactly 1.0
  // on the fourth sample.
  SlidingCorrelator corr({1.0f, -1.0f}, 2);
  EXPECT_FLOAT_EQ(corr.process(1.0f), 0.0f);
  EXPECT_FLOAT_EQ(corr.process(1.0f), 0.0f);
  EXPECT_FLOAT_EQ(corr.process(0.0f), 0.0f);
  EXPECT_FALSE(corr.warmed_up());
  EXPECT_NEAR(corr.process(0.0f), 1.0f, 1e-6f);
  EXPECT_TRUE(corr.warmed_up());
}

TEST(SlidingCorrelator, BatchMatchesScalarAcrossSeams) {
  // The batch kernel must be seamless across calls: correlate a signal
  // split at awkward boundaries and compare to one whole-capture call.
  const auto pattern = phy::chips_to_pattern(phy::barker13_chips());
  SlidingCorrelator whole(pattern, 3), split(pattern, 3);
  Rng rng(17);
  std::vector<float> signal(2000);
  for (auto& s : signal) s = static_cast<float>(rng.uniform());
  std::vector<float> ref(signal.size()), out(signal.size());
  whole.process(signal, ref);
  const std::size_t cuts[] = {1, 38, 39, 500, 1};
  std::size_t pos = 0, c = 0;
  while (pos < signal.size()) {
    const std::size_t n = std::min(cuts[c % 5], signal.size() - pos);
    split.process(std::span<const float>(signal.data() + pos, n),
                  std::span<float>(out.data() + pos, n));
    pos += n;
    ++c;
  }
  for (std::size_t i = 0; i < signal.size(); ++i) {
    ASSERT_EQ(ref[i], out[i]) << "seam divergence at " << i;
  }
}

TEST(SlidingCorrelator, ResetRestartsWarmup) {
  const auto pattern = phy::chips_to_pattern(phy::barker11_chips());
  SlidingCorrelator corr(pattern, 2);
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    corr.process(static_cast<float>(rng.uniform()));
  }
  EXPECT_TRUE(corr.warmed_up());
  corr.reset();
  EXPECT_FALSE(corr.warmed_up());
  EXPECT_FLOAT_EQ(corr.process(0.7f), 0.0f);
}

TEST(PeakDetector, ReportsPeakAfterLockout) {
  PeakDetector det(0.5f, 3);
  EXPECT_FALSE(det.process(0.2f).has_value());
  EXPECT_FALSE(det.process(0.7f).has_value());  // starts tracking at idx 1
  EXPECT_FALSE(det.process(0.9f).has_value());  // new best at idx 2
  EXPECT_FALSE(det.process(0.6f).has_value());
  EXPECT_FALSE(det.process(0.4f).has_value());
  const auto peak = det.process(0.3f);  // 3 samples past best -> report
  ASSERT_TRUE(peak.has_value());
  EXPECT_EQ(*peak, 2u);
}

TEST(PeakDetector, IgnoresSubThreshold) {
  PeakDetector det(0.8f, 2);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(det.process(0.5f).has_value());
  }
}

TEST(PeakDetector, ResetsForNextPeak) {
  PeakDetector det(0.5f, 2);
  det.process(0.9f);
  det.process(0.1f);
  auto first = det.process(0.1f);
  ASSERT_TRUE(first.has_value());
  // A later, separate peak is also found.
  det.process(0.95f);
  det.process(0.1f);
  const auto second = det.process(0.1f);
  ASSERT_TRUE(second.has_value());
  EXPECT_GT(*second, *first);
}

}  // namespace
}  // namespace fdb::dsp
