#include "dsp/goertzel.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

namespace fdb::dsp {
namespace {

std::vector<float> real_tone(double freq, double fs, std::size_t n) {
  std::vector<float> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = static_cast<float>(
        std::sin(2.0 * std::numbers::pi * freq * i / fs));
  }
  return x;
}

TEST(Goertzel, DetectsMatchingTone) {
  const double fs = 8000.0;
  Goertzel g(1000.0, fs, 200);
  const auto on = g.process_block(real_tone(1000.0, fs, 200));
  const auto off = g.process_block(real_tone(2500.0, fs, 200));
  EXPECT_GT(on, off * 100.0);
}

TEST(Goertzel, EnergyScalesWithAmplitude) {
  const double fs = 8000.0;
  Goertzel g(500.0, fs, 160);
  auto tone = real_tone(500.0, fs, 160);
  const double e1 = g.process_block(tone);
  for (auto& x : tone) x *= 2.0f;
  const double e2 = g.process_block(tone);
  EXPECT_NEAR(e2 / e1, 4.0, 0.01);  // power scales with amplitude^2
}

TEST(Goertzel, ComplexToneDetection) {
  const double fs = 8000.0;
  const std::size_t n = 256;
  Goertzel g(750.0, fs, n);
  std::vector<cf32> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double angle = 2.0 * std::numbers::pi * 750.0 * i / fs;
    x[i] = {static_cast<float>(std::cos(angle)),
            static_cast<float>(std::sin(angle))};
  }
  const double on = g.process_block(std::span<const cf32>(x));
  // A tone at a different frequency barely registers.
  for (std::size_t i = 0; i < n; ++i) {
    const double angle = 2.0 * std::numbers::pi * 2000.0 * i / fs;
    x[i] = {static_cast<float>(std::cos(angle)),
            static_cast<float>(std::sin(angle))};
  }
  const double off = g.process_block(std::span<const cf32>(x));
  EXPECT_GT(on, off * 50.0);
}

TEST(Goertzel, BlockLengthAccessor) {
  Goertzel g(100.0, 1000.0, 64);
  EXPECT_EQ(g.block_length(), 64u);
}

}  // namespace
}  // namespace fdb::dsp
