#include "dsp/ring_buffer.hpp"

#include <gtest/gtest.h>

namespace fdb::dsp {
namespace {

TEST(RingBuffer, StartsEmpty) {
  RingBuffer<int> rb(4);
  EXPECT_TRUE(rb.empty());
  EXPECT_FALSE(rb.full());
  EXPECT_EQ(rb.size(), 0u);
  EXPECT_EQ(rb.capacity(), 4u);
}

TEST(RingBuffer, PushPopFifoOrder) {
  RingBuffer<int> rb(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(rb.push(i));
  EXPECT_TRUE(rb.full());
  int v = -1;
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(rb.pop(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_TRUE(rb.empty());
}

TEST(RingBuffer, PushWhenFullFails) {
  RingBuffer<int> rb(2);
  EXPECT_TRUE(rb.push(1));
  EXPECT_TRUE(rb.push(2));
  EXPECT_FALSE(rb.push(3));
}

TEST(RingBuffer, PopWhenEmptyFails) {
  RingBuffer<int> rb(2);
  int v;
  EXPECT_FALSE(rb.pop(v));
}

TEST(RingBuffer, WrapAroundPreservesOrder) {
  RingBuffer<int> rb(3);
  int v;
  for (int round = 0; round < 10; ++round) {
    EXPECT_TRUE(rb.push(round * 2));
    EXPECT_TRUE(rb.push(round * 2 + 1));
    EXPECT_TRUE(rb.pop(v));
    EXPECT_EQ(v, round * 2);
    EXPECT_TRUE(rb.pop(v));
    EXPECT_EQ(v, round * 2 + 1);
  }
}

TEST(RingBuffer, PushManyPopMany) {
  RingBuffer<int> rb(8);
  const int data[5] = {1, 2, 3, 4, 5};
  EXPECT_EQ(rb.push_many(data, 5), 5u);
  int out[5] = {};
  EXPECT_EQ(rb.pop_many(out, 5), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(out[i], data[i]);
}

TEST(RingBuffer, PushManyPartialWhenNearlyFull) {
  RingBuffer<int> rb(3);
  const int data[5] = {1, 2, 3, 4, 5};
  EXPECT_EQ(rb.push_many(data, 5), 3u);
}

TEST(RingBuffer, PeekDoesNotConsume) {
  RingBuffer<int> rb(4);
  rb.push(10);
  rb.push(20);
  EXPECT_EQ(rb.peek(0), 10);
  EXPECT_EQ(rb.peek(1), 20);
  EXPECT_EQ(rb.size(), 2u);
}

TEST(RingBuffer, ClearResets) {
  RingBuffer<int> rb(4);
  rb.push(1);
  rb.clear();
  EXPECT_TRUE(rb.empty());
}

}  // namespace
}  // namespace fdb::dsp
