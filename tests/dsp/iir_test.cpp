#include "dsp/iir.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

namespace fdb::dsp {
namespace {

TEST(OnePole, ConvergesToDcInput) {
  OnePole lp(0.1);
  float y = 0.0f;
  for (int i = 0; i < 500; ++i) y = lp.process(2.0f);
  EXPECT_NEAR(y, 2.0f, 1e-4f);
}

TEST(OnePole, AlphaOneIsPassthrough) {
  OnePole lp(1.0);
  EXPECT_FLOAT_EQ(lp.process(3.5f), 3.5f);
  EXPECT_FLOAT_EQ(lp.process(-1.0f), -1.0f);
}

TEST(OnePole, FromCutoffTracksSpeed) {
  // A higher cutoff converges faster.
  auto settle_steps = [](double cutoff) {
    OnePole lp = OnePole::from_cutoff(cutoff, 1000.0);
    int steps = 0;
    float y = 0.0f;
    while (y < 0.95f && steps < 100000) {
      y = lp.process(1.0f);
      ++steps;
    }
    return steps;
  };
  EXPECT_LT(settle_steps(100.0), settle_steps(10.0));
}

TEST(OnePole, ResetToValue) {
  OnePole lp(0.5);
  lp.process(10.0f);
  lp.reset(1.0f);
  EXPECT_FLOAT_EQ(lp.value(), 1.0f);
}

TEST(Biquad, LowpassPassesDcBlocksHigh) {
  auto tone_gain = [](Biquad filter, double freq, double fs) {
    double in_power = 0.0, out_power = 0.0;
    for (int i = 0; i < 4000; ++i) {
      const float x =
          std::sin(2.0 * std::numbers::pi * freq * i / fs);
      const float y = filter.process(x);
      if (i > 500) {
        in_power += x * x;
        out_power += y * y;
      }
    }
    return out_power / in_power;
  };
  EXPECT_GT(tone_gain(Biquad::lowpass(100.0, 8000.0), 10.0, 8000.0), 0.9);
  EXPECT_LT(tone_gain(Biquad::lowpass(100.0, 8000.0), 3000.0, 8000.0), 1e-3);
  EXPECT_LT(tone_gain(Biquad::highpass(1000.0, 8000.0), 20.0, 8000.0), 1e-2);
  EXPECT_GT(tone_gain(Biquad::highpass(1000.0, 8000.0), 3500.0, 8000.0), 0.8);
}

TEST(Biquad, DcBlockerRemovesOffset) {
  Biquad dc = Biquad::dc_blocker(8000.0);
  float y = 1.0f;
  for (int i = 0; i < 50000; ++i) y = dc.process(5.0f);
  EXPECT_NEAR(y, 0.0f, 1e-3f);
}

TEST(Biquad, ResetClearsState) {
  Biquad lp = Biquad::lowpass(100.0, 8000.0);
  for (int i = 0; i < 100; ++i) lp.process(1.0f);
  lp.reset();
  // After reset the first output should match a fresh filter.
  Biquad fresh = Biquad::lowpass(100.0, 8000.0);
  EXPECT_FLOAT_EQ(lp.process(1.0f), fresh.process(1.0f));
}

TEST(Biquad, BlockApiMatchesSampleApi) {
  Biquad a = Biquad::lowpass(200.0, 8000.0);
  Biquad b = Biquad::lowpass(200.0, 8000.0);
  std::vector<float> in(256), out(256);
  for (std::size_t i = 0; i < in.size(); ++i) {
    in[i] = std::cos(0.05f * static_cast<float>(i));
  }
  a.process(in, out);
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_FLOAT_EQ(b.process(in[i]), out[i]);
  }
}

}  // namespace
}  // namespace fdb::dsp
