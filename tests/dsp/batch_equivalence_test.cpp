// Batch-vs-scalar equivalence for every dsp kernel: feeding one stream
// sample-at-a-time through process(x) and feeding the identical stream
// through process(span) in randomized chunk sizes (including chunk==1
// and chunk > window/taps) must produce bit-identical outputs. The
// scalar paths are thin wrappers over the batch kernels, and the batch
// kernels key any internal bookkeeping (history compaction, accumulator
// refresh) to absolute sample counts, so this holds exactly — no ulp
// tolerance needed.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <iterator>
#include <span>
#include <vector>

#include "dsp/agc.hpp"
#include "dsp/correlator.hpp"
#include "dsp/envelope.hpp"
#include "dsp/fir.hpp"
#include "dsp/goertzel.hpp"
#include "dsp/iir.hpp"
#include "dsp/moving_average.hpp"
#include "phy/preamble.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace fdb::dsp {
namespace {

/// Random chunk sizes covering the edge cases: lots of 1s, sizes below
/// and above typical window/tap counts, and a jumbo chunk bigger than
/// the kernels' internal 4096-sample blocks.
std::vector<std::size_t> random_chunks(std::size_t total, Rng& rng) {
  static constexpr std::size_t kPalette[] = {1,  1,  2,  3,   5,   17,
                                             64, 91, 256, 1024, 5000};
  std::vector<std::size_t> chunks;
  std::size_t left = total;
  while (left > 0) {
    std::size_t n = kPalette[rng.uniform_int(std::size(kPalette))];
    n = std::min(n, left);
    chunks.push_back(n);
    left -= n;
  }
  return chunks;
}

std::vector<float> random_stream(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> x(n);
  for (auto& v : x) v = 1.0f + 0.25f * static_cast<float>(rng.normal());
  return x;
}

std::vector<cf32> random_stream_c(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<cf32> x(n);
  for (auto& v : x) v = rng.cn(1.0);
  return x;
}

/// Drives two identically-constructed kernels over the same float
/// stream — one scalar, one chunked — and asserts bit-identity.
template <typename Kernel>
void expect_float_kernel_equivalent(Kernel scalar_k, Kernel batch_k,
                                    std::size_t total, std::uint64_t seed) {
  const auto in = random_stream(total, seed);
  std::vector<float> ref(total), out(total);
  for (std::size_t i = 0; i < total; ++i) ref[i] = scalar_k.process(in[i]);
  Rng chunk_rng(seed ^ 0xc0ffee);
  std::size_t pos = 0;
  for (const std::size_t n : random_chunks(total, chunk_rng)) {
    batch_k.process(std::span<const float>(in.data() + pos, n),
                    std::span<float>(out.data() + pos, n));
    pos += n;
  }
  for (std::size_t i = 0; i < total; ++i) {
    ASSERT_EQ(ref[i], out[i]) << "diverged at sample " << i;
  }
}

TEST(BatchEquivalence, MovingAverageFloat) {
  expect_float_kernel_equivalent(MovingAverage<float>(17),
                                 MovingAverage<float>(17), 6000, 11);
}

TEST(BatchEquivalence, MovingAverageDouble) {
  MovingAverage<double> scalar(64), batch(64);
  const auto inf = random_stream(5000, 12);
  std::vector<double> in(inf.begin(), inf.end());
  std::vector<double> ref(in.size()), out(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) ref[i] = scalar.process(in[i]);
  Rng chunk_rng(99);
  std::size_t pos = 0;
  for (const std::size_t n : random_chunks(in.size(), chunk_rng)) {
    batch.process(std::span<const double>(in.data() + pos, n),
                  std::span<double>(out.data() + pos, n));
    pos += n;
  }
  for (std::size_t i = 0; i < in.size(); ++i) ASSERT_EQ(ref[i], out[i]);
}

TEST(BatchEquivalence, OnePole) {
  expect_float_kernel_equivalent(OnePole(0.05), OnePole(0.05), 6000, 13);
}

TEST(BatchEquivalence, Biquad) {
  expect_float_kernel_equivalent(Biquad::lowpass(500.0, 48000.0),
                                 Biquad::lowpass(500.0, 48000.0), 6000, 14);
}

TEST(BatchEquivalence, Agc) {
  expect_float_kernel_equivalent(Agc(1.0f, 0.01f), Agc(1.0f, 0.01f), 6000,
                                 15);
}

TEST(BatchEquivalence, FirFilterF) {
  const auto taps = design_lowpass(0.2, 63);
  expect_float_kernel_equivalent(FirFilterF(taps), FirFilterF(taps), 9000,
                                 16);
}

TEST(BatchEquivalence, SlidingCorrelator) {
  // Long enough to cross the correlator's internal accumulator-refresh
  // boundary (2^15 samples) and several history compactions.
  const auto pattern = phy::chips_to_pattern(phy::barker13_chips());
  expect_float_kernel_equivalent(SlidingCorrelator(pattern, 4),
                                 SlidingCorrelator(pattern, 4), 70000, 17);
}

TEST(BatchEquivalence, EnvelopeDetector) {
  EnvelopeDetector scalar(100e3, 2e6), batch(100e3, 2e6);
  const auto in = random_stream_c(6000, 18);
  std::vector<float> ref(in.size()), out(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) ref[i] = scalar.process(in[i]);
  Rng chunk_rng(18);
  std::size_t pos = 0;
  for (const std::size_t n : random_chunks(in.size(), chunk_rng)) {
    batch.process(std::span<const cf32>(in.data() + pos, n),
                  std::span<float>(out.data() + pos, n));
    pos += n;
  }
  for (std::size_t i = 0; i < in.size(); ++i) ASSERT_EQ(ref[i], out[i]);
}

TEST(BatchEquivalence, SquareLawDetector) {
  SquareLawDetector scalar(100e3, 2e6), batch(100e3, 2e6);
  const auto in = random_stream_c(6000, 19);
  std::vector<float> ref(in.size()), out(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) ref[i] = scalar.process(in[i]);
  Rng chunk_rng(19);
  std::size_t pos = 0;
  for (const std::size_t n : random_chunks(in.size(), chunk_rng)) {
    batch.process(std::span<const cf32>(in.data() + pos, n),
                  std::span<float>(out.data() + pos, n));
    pos += n;
  }
  for (std::size_t i = 0; i < in.size(); ++i) ASSERT_EQ(ref[i], out[i]);
}

TEST(BatchEquivalence, AgcComplex) {
  Agc scalar(1.0f, 0.01f), batch(1.0f, 0.01f);
  const auto in = random_stream_c(6000, 20);
  std::vector<cf32> ref(in.size()), out(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) ref[i] = scalar.process(in[i]);
  Rng chunk_rng(20);
  std::size_t pos = 0;
  for (const std::size_t n : random_chunks(in.size(), chunk_rng)) {
    batch.process(std::span<const cf32>(in.data() + pos, n),
                  std::span<cf32>(out.data() + pos, n));
    pos += n;
  }
  for (std::size_t i = 0; i < in.size(); ++i) {
    ASSERT_EQ(ref[i].real(), out[i].real()) << i;
    ASSERT_EQ(ref[i].imag(), out[i].imag()) << i;
  }
}

TEST(BatchEquivalence, FirFilterC) {
  const auto taps = design_lowpass(0.15, 31);
  FirFilterC scalar(taps), batch(taps);
  const auto in = random_stream_c(6000, 21);
  std::vector<cf32> ref(in.size()), out(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) ref[i] = scalar.process(in[i]);
  Rng chunk_rng(21);
  std::size_t pos = 0;
  for (const std::size_t n : random_chunks(in.size(), chunk_rng)) {
    batch.process(std::span<const cf32>(in.data() + pos, n),
                  std::span<cf32>(out.data() + pos, n));
    pos += n;
  }
  for (std::size_t i = 0; i < in.size(); ++i) {
    ASSERT_EQ(ref[i].real(), out[i].real()) << i;
    ASSERT_EQ(ref[i].imag(), out[i].imag()) << i;
  }
}

TEST(BatchEquivalence, FirFilterCC) {
  Rng tap_rng(22);
  std::vector<cf32> taps(9);
  for (auto& t : taps) t = tap_rng.cn(0.5);
  FirFilterCC scalar(taps), batch(taps);
  const auto in = random_stream_c(6000, 23);
  std::vector<cf32> ref(in.size()), out(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) ref[i] = scalar.process(in[i]);
  Rng chunk_rng(23);
  std::size_t pos = 0;
  for (const std::size_t n : random_chunks(in.size(), chunk_rng)) {
    batch.process(std::span<const cf32>(in.data() + pos, n),
                  std::span<cf32>(out.data() + pos, n));
    pos += n;
  }
  for (std::size_t i = 0; i < in.size(); ++i) {
    ASSERT_EQ(ref[i].real(), out[i].real()) << i;
    ASSERT_EQ(ref[i].imag(), out[i].imag()) << i;
  }
}

TEST(BatchEquivalence, GoertzelBlocks) {
  const double fs = 8000.0;
  const std::size_t block = 160;
  const std::size_t nblocks = 25;
  Goertzel a(500.0, fs, block), b(500.0, fs, block);
  const auto in = random_stream(block * nblocks, 24);
  std::vector<double> ref(nblocks), out(nblocks);
  for (std::size_t k = 0; k < nblocks; ++k) {
    ref[k] = a.process_block(
        std::span<const float>(in.data() + k * block, block));
  }
  b.process_blocks(in, out);
  for (std::size_t k = 0; k < nblocks; ++k) ASSERT_EQ(ref[k], out[k]);
}

}  // namespace
}  // namespace fdb::dsp
