// Batch-vs-scalar equivalence for every dsp kernel: feeding one stream
// sample-at-a-time through process(x) and feeding the identical stream
// through process(span) in randomized chunk sizes (including chunk==1
// and chunk > window/taps) must produce bit-identical outputs. The
// scalar paths are thin wrappers over the batch kernels, and the batch
// kernels key any internal bookkeeping (history compaction, accumulator
// refresh) to absolute sample counts, so this holds exactly — no ulp
// tolerance needed.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <iterator>
#include <span>
#include <vector>

#include "dsp/agc.hpp"
#include "dsp/correlator.hpp"
#include "dsp/envelope.hpp"
#include "dsp/fir.hpp"
#include "dsp/goertzel.hpp"
#include "dsp/iir.hpp"
#include "dsp/moving_average.hpp"
#include "phy/preamble.hpp"
#include "phy/slicer.hpp"
#include "sim/synthesis.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace fdb::dsp {
namespace {

/// Random chunk sizes covering the edge cases: lots of 1s, sizes below
/// and above typical window/tap counts, and a jumbo chunk bigger than
/// the kernels' internal 4096-sample blocks.
std::vector<std::size_t> random_chunks(std::size_t total, Rng& rng) {
  static constexpr std::size_t kPalette[] = {1,  1,  2,  3,   5,    7,  17,
                                             64, 91, 256, 1024, 5000};
  std::vector<std::size_t> chunks;
  std::size_t left = total;
  while (left > 0) {
    std::size_t n = kPalette[rng.uniform_int(std::size(kPalette))];
    n = std::min(n, left);
    chunks.push_back(n);
    left -= n;
  }
  return chunks;
}

std::vector<float> random_stream(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> x(n);
  for (auto& v : x) v = 1.0f + 0.25f * static_cast<float>(rng.normal());
  return x;
}

std::vector<cf32> random_stream_c(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<cf32> x(n);
  for (auto& v : x) v = rng.cn(1.0);
  return x;
}

/// Drives two identically-constructed kernels over the same float
/// stream — one scalar, one chunked — and asserts bit-identity.
template <typename Kernel>
void expect_float_kernel_equivalent(Kernel scalar_k, Kernel batch_k,
                                    std::size_t total, std::uint64_t seed) {
  const auto in = random_stream(total, seed);
  std::vector<float> ref(total), out(total);
  for (std::size_t i = 0; i < total; ++i) ref[i] = scalar_k.process(in[i]);
  Rng chunk_rng(seed ^ 0xc0ffee);
  std::size_t pos = 0;
  for (const std::size_t n : random_chunks(total, chunk_rng)) {
    batch_k.process(std::span<const float>(in.data() + pos, n),
                    std::span<float>(out.data() + pos, n));
    pos += n;
  }
  for (std::size_t i = 0; i < total; ++i) {
    ASSERT_EQ(ref[i], out[i]) << "diverged at sample " << i;
  }
}

TEST(BatchEquivalence, MovingAverageFloat) {
  expect_float_kernel_equivalent(MovingAverage<float>(17),
                                 MovingAverage<float>(17), 6000, 11);
}

TEST(BatchEquivalence, MovingAverageDouble) {
  MovingAverage<double> scalar(64), batch(64);
  const auto inf = random_stream(5000, 12);
  std::vector<double> in(inf.begin(), inf.end());
  std::vector<double> ref(in.size()), out(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) ref[i] = scalar.process(in[i]);
  Rng chunk_rng(99);
  std::size_t pos = 0;
  for (const std::size_t n : random_chunks(in.size(), chunk_rng)) {
    batch.process(std::span<const double>(in.data() + pos, n),
                  std::span<double>(out.data() + pos, n));
    pos += n;
  }
  for (std::size_t i = 0; i < in.size(); ++i) ASSERT_EQ(ref[i], out[i]);
}

TEST(BatchEquivalence, OnePole) {
  expect_float_kernel_equivalent(OnePole(0.05), OnePole(0.05), 6000, 13);
}

TEST(BatchEquivalence, Biquad) {
  expect_float_kernel_equivalent(Biquad::lowpass(500.0, 48000.0),
                                 Biquad::lowpass(500.0, 48000.0), 6000, 14);
}

TEST(BatchEquivalence, Agc) {
  expect_float_kernel_equivalent(Agc(1.0f, 0.01f), Agc(1.0f, 0.01f), 6000,
                                 15);
}

TEST(BatchEquivalence, FirFilterF) {
  const auto taps = design_lowpass(0.2, 63);
  expect_float_kernel_equivalent(FirFilterF(taps), FirFilterF(taps), 9000,
                                 16);
}

TEST(BatchEquivalence, SlidingCorrelator) {
  // Long enough to cross the correlator's internal accumulator-refresh
  // boundary (2^15 samples) and several history compactions.
  const auto pattern = phy::chips_to_pattern(phy::barker13_chips());
  expect_float_kernel_equivalent(SlidingCorrelator(pattern, 4),
                                 SlidingCorrelator(pattern, 4), 70000, 17);
}

TEST(BatchEquivalence, SlidingCorrelatorSimdDispatch) {
  // Three-way pin with the full 34-chip frame preamble (the window the
  // streaming receiver actually runs): per-sample process(x), the
  // scalar batch reference process_scalar(span), and the dispatched
  // process(span) — which routes to the SIMD dot kernel when the build
  // ISA has AVX2+FMA or AVX-512 — must agree bit-for-bit. The SIMD
  // kernel owes this to the exact-product theorem (float-valued
  // operands multiply exactly in double, so FMA cannot round
  // differently) plus the pinned 4-partial summation tree; chunk sizes
  // differ between the two batch drives so block boundaries, history
  // compaction, and the widened-window scratch refill all land at
  // different offsets.
  const auto pattern = phy::chips_to_pattern(phy::default_preamble_chips());
  const std::size_t total = 70000;
  const auto in = random_stream(total, 42);
  SlidingCorrelator by_sample(pattern, 6);
  SlidingCorrelator scalar_batch(pattern, 6);
  SlidingCorrelator dispatched(pattern, 6);
  std::vector<float> ref(total), scalar_out(total), simd_out(total);
  for (std::size_t i = 0; i < total; ++i) ref[i] = by_sample.process(in[i]);
  Rng chunk_a(424242);
  std::size_t pos = 0;
  for (const std::size_t n : random_chunks(total, chunk_a)) {
    scalar_batch.process_scalar(std::span<const float>(in.data() + pos, n),
                                std::span<float>(scalar_out.data() + pos, n));
    pos += n;
  }
  Rng chunk_b(777);
  pos = 0;
  for (const std::size_t n : random_chunks(total, chunk_b)) {
    dispatched.process(std::span<const float>(in.data() + pos, n),
                       std::span<float>(simd_out.data() + pos, n));
    pos += n;
  }
  for (std::size_t i = 0; i < total; ++i) {
    ASSERT_EQ(ref[i], scalar_out[i]) << "scalar batch diverged at " << i;
    ASSERT_EQ(ref[i], simd_out[i]) << "dispatched batch diverged at " << i;
  }
}

TEST(BatchEquivalence, AdaptiveSlicerBatch) {
  // The slicer's batch path swaps the per-chip O(window) min/max rescan
  // for monotonic-deque rolling extremes; window extremes involve no FP
  // accumulation, so decisions, soft values, and threshold state must
  // match decide() exactly — with and without hysteresis, across chunk
  // splits that straddle the window wrap.
  for (const float hysteresis : {0.0f, 0.08f}) {
    phy::SlicerConfig cfg;
    cfg.window_chips = 32;
    cfg.hysteresis = hysteresis;
    phy::AdaptiveSlicer scalar(cfg), batch(cfg);
    const std::size_t total = 4000;
    Rng rng(31 + static_cast<std::uint64_t>(hysteresis * 100));
    std::vector<float> chips(total);
    for (auto& c : chips) {
      const bool on = rng.uniform() < 0.5;
      c = (on ? 1.3f : 1.0f) + 0.05f * static_cast<float>(rng.normal());
    }
    std::vector<std::uint8_t> ref_bits, out_bits;
    std::vector<float> ref_soft, out_soft;
    for (const float c : chips) {
      ref_bits.push_back(scalar.decide(c));
      ref_soft.push_back(scalar.last_soft());
    }
    Rng chunk_rng(55);
    std::size_t pos = 0;
    for (const std::size_t n : random_chunks(total, chunk_rng)) {
      batch.process(std::span<const float>(chips.data() + pos, n), out_bits,
                    &out_soft);
      pos += n;
    }
    ASSERT_EQ(ref_bits.size(), out_bits.size());
    for (std::size_t i = 0; i < total; ++i) {
      ASSERT_EQ(ref_bits[i], out_bits[i]) << "decision diverged at " << i;
      ASSERT_EQ(ref_soft[i], out_soft[i]) << "soft diverged at " << i;
    }
    ASSERT_EQ(scalar.threshold(), batch.threshold());
  }
}

TEST(BatchEquivalence, SlotGatewayFused) {
  // The fused per-gateway slot kernel must reproduce its per-sample
  // reference exactly: both sum the selected coupling coefficients
  // before the single carrier multiply, so the only question is whether
  // vectorization/alignment perturbs rounding — it must not, including
  // on spans deliberately offset from the allocation base (misaligned
  // relative to any vector width).
  constexpr std::size_t kEntities = 7;
  constexpr std::size_t kSamples = 3001;  // odd on purpose
  Rng rng(91);
  std::vector<cf32> carrier_buf(kSamples + 3);
  for (auto& c : carrier_buf) c = rng.cn(1.0);
  std::vector<std::vector<std::uint8_t>> mask_store(kEntities);
  std::vector<const std::uint8_t*> masks(kEntities);
  std::vector<cf32> c_on(kEntities), c_off(kEntities);
  for (std::size_t e = 0; e < kEntities; ++e) {
    mask_store[e].resize(kSamples + 3);
    for (auto& m : mask_store[e]) {
      m = rng.uniform() < 0.5 ? std::uint8_t{1} : std::uint8_t{0};
    }
    c_on[e] = rng.cn(1e-3);
    c_off[e] = rng.cn(1e-4);
  }
  const cf32 leak = rng.cn(1e-2);
  for (const std::size_t offset : {std::size_t{0}, std::size_t{1},
                                   std::size_t{3}}) {
    const std::span<const cf32> carrier(carrier_buf.data() + offset,
                                        kSamples);
    for (std::size_t e = 0; e < kEntities; ++e) {
      masks[e] = mask_store[e].data() + offset;
    }
    std::vector<cf32> scratch(kSamples), fused(kSamples), ref(kSamples);
    sim::WaveformSynthesizer::synthesize_slot_gateway(
        carrier, leak, masks, c_on, c_off, scratch, fused);
    sim::WaveformSynthesizer::synthesize_slot_gateway_reference(
        carrier, leak, masks, c_on, c_off, ref);
    for (std::size_t i = 0; i < kSamples; ++i) {
      ASSERT_EQ(ref[i].real(), fused[i].real())
          << "offset " << offset << " sample " << i;
      ASSERT_EQ(ref[i].imag(), fused[i].imag())
          << "offset " << offset << " sample " << i;
    }
    // Aliasing contract: out may alias carrier.
    std::vector<cf32> in_place(carrier.begin(), carrier.end());
    sim::WaveformSynthesizer::synthesize_slot_gateway(
        in_place, leak, masks, c_on, c_off, scratch, in_place);
    for (std::size_t i = 0; i < kSamples; ++i) {
      ASSERT_EQ(ref[i].real(), in_place[i].real()) << i;
      ASSERT_EQ(ref[i].imag(), in_place[i].imag()) << i;
    }
  }
}

TEST(BatchEquivalence, EnvelopeDetector) {
  EnvelopeDetector scalar(100e3, 2e6), batch(100e3, 2e6);
  const auto in = random_stream_c(6000, 18);
  std::vector<float> ref(in.size()), out(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) ref[i] = scalar.process(in[i]);
  Rng chunk_rng(18);
  std::size_t pos = 0;
  for (const std::size_t n : random_chunks(in.size(), chunk_rng)) {
    batch.process(std::span<const cf32>(in.data() + pos, n),
                  std::span<float>(out.data() + pos, n));
    pos += n;
  }
  for (std::size_t i = 0; i < in.size(); ++i) ASSERT_EQ(ref[i], out[i]);
}

TEST(BatchEquivalence, SquareLawDetector) {
  SquareLawDetector scalar(100e3, 2e6), batch(100e3, 2e6);
  const auto in = random_stream_c(6000, 19);
  std::vector<float> ref(in.size()), out(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) ref[i] = scalar.process(in[i]);
  Rng chunk_rng(19);
  std::size_t pos = 0;
  for (const std::size_t n : random_chunks(in.size(), chunk_rng)) {
    batch.process(std::span<const cf32>(in.data() + pos, n),
                  std::span<float>(out.data() + pos, n));
    pos += n;
  }
  for (std::size_t i = 0; i < in.size(); ++i) ASSERT_EQ(ref[i], out[i]);
}

TEST(BatchEquivalence, AgcComplex) {
  Agc scalar(1.0f, 0.01f), batch(1.0f, 0.01f);
  const auto in = random_stream_c(6000, 20);
  std::vector<cf32> ref(in.size()), out(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) ref[i] = scalar.process(in[i]);
  Rng chunk_rng(20);
  std::size_t pos = 0;
  for (const std::size_t n : random_chunks(in.size(), chunk_rng)) {
    batch.process(std::span<const cf32>(in.data() + pos, n),
                  std::span<cf32>(out.data() + pos, n));
    pos += n;
  }
  for (std::size_t i = 0; i < in.size(); ++i) {
    ASSERT_EQ(ref[i].real(), out[i].real()) << i;
    ASSERT_EQ(ref[i].imag(), out[i].imag()) << i;
  }
}

TEST(BatchEquivalence, FirFilterC) {
  const auto taps = design_lowpass(0.15, 31);
  FirFilterC scalar(taps), batch(taps);
  const auto in = random_stream_c(6000, 21);
  std::vector<cf32> ref(in.size()), out(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) ref[i] = scalar.process(in[i]);
  Rng chunk_rng(21);
  std::size_t pos = 0;
  for (const std::size_t n : random_chunks(in.size(), chunk_rng)) {
    batch.process(std::span<const cf32>(in.data() + pos, n),
                  std::span<cf32>(out.data() + pos, n));
    pos += n;
  }
  for (std::size_t i = 0; i < in.size(); ++i) {
    ASSERT_EQ(ref[i].real(), out[i].real()) << i;
    ASSERT_EQ(ref[i].imag(), out[i].imag()) << i;
  }
}

TEST(BatchEquivalence, FirFilterCC) {
  Rng tap_rng(22);
  std::vector<cf32> taps(9);
  for (auto& t : taps) t = tap_rng.cn(0.5);
  FirFilterCC scalar(taps), batch(taps);
  const auto in = random_stream_c(6000, 23);
  std::vector<cf32> ref(in.size()), out(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) ref[i] = scalar.process(in[i]);
  Rng chunk_rng(23);
  std::size_t pos = 0;
  for (const std::size_t n : random_chunks(in.size(), chunk_rng)) {
    batch.process(std::span<const cf32>(in.data() + pos, n),
                  std::span<cf32>(out.data() + pos, n));
    pos += n;
  }
  for (std::size_t i = 0; i < in.size(); ++i) {
    ASSERT_EQ(ref[i].real(), out[i].real()) << i;
    ASSERT_EQ(ref[i].imag(), out[i].imag()) << i;
  }
}

TEST(BatchEquivalence, GoertzelBlocks) {
  const double fs = 8000.0;
  const std::size_t block = 160;
  const std::size_t nblocks = 25;
  Goertzel a(500.0, fs, block), b(500.0, fs, block);
  const auto in = random_stream(block * nblocks, 24);
  std::vector<double> ref(nblocks), out(nblocks);
  for (std::size_t k = 0; k < nblocks; ++k) {
    ref[k] = a.process_block(
        std::span<const float>(in.data() + k * block, block));
  }
  b.process_blocks(in, out);
  for (std::size_t k = 0; k < nblocks; ++k) ASSERT_EQ(ref[k], out[k]);
}

}  // namespace
}  // namespace fdb::dsp
