#include "dsp/resample.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace fdb::dsp {
namespace {

TEST(Decimator, OutputCountIsInputOverFactor) {
  Decimator dec(4);
  std::vector<float> in(400, 1.0f), out;
  dec.process(in, out);
  EXPECT_EQ(out.size(), 100u);
}

TEST(Decimator, DcPreserved) {
  Decimator dec(5);
  std::vector<float> in(1000, 2.0f), out;
  dec.process(in, out);
  // After the filter transient the decimated signal equals DC level.
  EXPECT_NEAR(out.back(), 2.0f, 1e-3f);
}

TEST(Decimator, RejectsAliasingTone) {
  // A tone above the post-decimation Nyquist must be attenuated.
  const std::size_t factor = 4;
  Decimator dec(factor, 127);
  std::vector<float> in(4000), out;
  for (std::size_t i = 0; i < in.size(); ++i) {
    in[i] = std::sin(2.0 * std::numbers::pi * 0.4 * i);  // 0.4 fs
  }
  dec.process(in, out);
  float peak = 0.0f;
  for (std::size_t i = out.size() / 2; i < out.size(); ++i) {
    peak = std::max(peak, std::abs(out[i]));
  }
  EXPECT_LT(peak, 0.01f);
}

TEST(Interpolator, OutputCountIsInputTimesFactor) {
  Interpolator interp(3);
  std::vector<float> in(100, 1.0f), out;
  interp.process(in, out);
  EXPECT_EQ(out.size(), 300u);
}

TEST(Interpolator, DcGainRestored) {
  Interpolator interp(4);
  std::vector<float> in(500, 1.5f), out;
  interp.process(in, out);
  EXPECT_NEAR(out.back(), 1.5f, 2e-2f);
}

TEST(HoldInterpolator, RepeatsEachSample) {
  HoldInterpolator hold(3);
  std::vector<float> in = {1.0f, 2.0f}, out;
  hold.process(in, out);
  const std::vector<float> expected = {1, 1, 1, 2, 2, 2};
  EXPECT_EQ(out, expected);
}

TEST(DecimatorInterpolator, RoundTripPreservesSlowSignal) {
  const std::size_t factor = 4;
  Interpolator up(factor, 127);
  Decimator down(factor, 127);
  std::vector<float> in(2000), mid, out;
  for (std::size_t i = 0; i < in.size(); ++i) {
    in[i] = std::sin(2.0 * std::numbers::pi * 0.01 * i);
  }
  up.process(in, mid);
  down.process(mid, out);
  // Compare late (post-transient) portions; group delay shifts by
  // ~(taps-1)/2 at the high rate per filter = ~31.5 low-rate samples.
  ASSERT_GT(out.size(), 500u);
  double err = 0.0;
  int count = 0;
  const std::size_t delay = 32;
  for (std::size_t i = 500; i + delay < out.size() && i < in.size(); ++i) {
    err += std::abs(out[i + delay] - in[i]);
    ++count;
  }
  EXPECT_LT(err / count, 0.05);
}

}  // namespace
}  // namespace fdb::dsp
