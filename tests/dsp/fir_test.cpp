#include "dsp/fir.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

namespace fdb::dsp {
namespace {

TEST(FirFilterF, ImpulseResponseEqualsTaps) {
  const std::vector<float> taps = {0.5f, 0.25f, 0.125f};
  FirFilterF fir(taps);
  std::vector<float> out;
  out.push_back(fir.process(1.0f));
  out.push_back(fir.process(0.0f));
  out.push_back(fir.process(0.0f));
  for (std::size_t i = 0; i < taps.size(); ++i) {
    EXPECT_FLOAT_EQ(out[i], taps[i]);
  }
}

TEST(FirFilterF, BlockMatchesSampleBySample) {
  const auto taps = design_lowpass(0.2, 21);
  FirFilterF a(taps), b(taps);
  std::vector<float> in(100), out_block(100);
  for (std::size_t i = 0; i < in.size(); ++i) {
    in[i] = std::sin(0.3f * static_cast<float>(i));
  }
  a.process(in, out_block);
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_FLOAT_EQ(b.process(in[i]), out_block[i]);
  }
}

TEST(FirFilterF, StreamingSeamAcrossBlocks) {
  const auto taps = design_lowpass(0.1, 15);
  FirFilterF whole(taps), split(taps);
  std::vector<float> in(64);
  for (std::size_t i = 0; i < in.size(); ++i) in[i] = static_cast<float>(i % 7);
  std::vector<float> out1(64), out2a(32), out2b(32);
  whole.process(in, out1);
  split.process(std::span<const float>(in.data(), 32), out2a);
  split.process(std::span<const float>(in.data() + 32, 32), out2b);
  for (std::size_t i = 0; i < 32; ++i) {
    EXPECT_FLOAT_EQ(out1[i], out2a[i]);
    EXPECT_FLOAT_EQ(out1[32 + i], out2b[i]);
  }
}

TEST(FirFilterF, ResetClearsHistory) {
  FirFilterF fir({1.0f, 1.0f});
  fir.process(5.0f);
  fir.reset();
  EXPECT_FLOAT_EQ(fir.process(1.0f), 1.0f);  // no leftover 5.0
}

TEST(DesignLowpass, UnityDcGain) {
  const auto taps = design_lowpass(0.1, 51);
  float sum = 0.0f;
  for (const float t : taps) sum += t;
  EXPECT_NEAR(sum, 1.0f, 1e-5f);
}

TEST(DesignLowpass, AttenuatesHighFrequency) {
  const auto taps = design_lowpass(0.1, 101);
  FirFilterF fir(taps);
  // Drive with a high-frequency tone (0.4 of fs) and compare output
  // power to a low-frequency tone (0.02 of fs).
  auto tone_gain = [&](double freq_norm) {
    FirFilterF f(taps);
    double in_power = 0.0, out_power = 0.0;
    for (int i = 0; i < 2000; ++i) {
      const float x = std::sin(2.0 * std::numbers::pi * freq_norm * i);
      const float y = f.process(x);
      if (i > 200) {  // skip transient
        in_power += x * x;
        out_power += y * y;
      }
    }
    return out_power / in_power;
  };
  EXPECT_GT(tone_gain(0.02), 0.9);
  EXPECT_LT(tone_gain(0.4), 1e-3);
}

TEST(DesignHighpass, BlocksDcPassesHigh) {
  const auto taps = design_highpass(0.1, 101);
  float dc_gain = 0.0f;
  for (const float t : taps) dc_gain += t;
  EXPECT_NEAR(dc_gain, 0.0f, 1e-4f);
}

TEST(DesignBoxcar, AveragesExactly) {
  const auto taps = design_boxcar(4);
  FirFilterF fir(taps);
  fir.process(4.0f);
  fir.process(8.0f);
  fir.process(12.0f);
  EXPECT_FLOAT_EQ(fir.process(16.0f), 10.0f);
}

TEST(FirFilterC, ComplexImpulse) {
  FirFilterC fir({0.5f, 0.5f});
  const cf32 y0 = fir.process({1.0f, 1.0f});
  EXPECT_FLOAT_EQ(y0.real(), 0.5f);
  EXPECT_FLOAT_EQ(y0.imag(), 0.5f);
  const cf32 y1 = fir.process({0.0f, 0.0f});
  EXPECT_FLOAT_EQ(y1.real(), 0.5f);
}

TEST(FirFilterCC, ComplexTapsRotate) {
  // Single tap j: output = j * input.
  FirFilterCC fir({cf32{0.0f, 1.0f}});
  const cf32 y = fir.process({1.0f, 0.0f});
  EXPECT_NEAR(y.real(), 0.0f, 1e-6f);
  EXPECT_NEAR(y.imag(), 1.0f, 1e-6f);
}

}  // namespace
}  // namespace fdb::dsp
