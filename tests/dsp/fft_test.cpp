#include "dsp/fft.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "util/rng.hpp"

namespace fdb::dsp {
namespace {

TEST(Fft, IsPow2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(256));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_FALSE(is_pow2(100));
}

TEST(Fft, DeltaTransformsToFlat) {
  std::vector<cf32> x(8, cf32{});
  x[0] = {1.0f, 0.0f};
  fft(x);
  for (const cf32 v : x) {
    EXPECT_NEAR(v.real(), 1.0f, 1e-5f);
    EXPECT_NEAR(v.imag(), 0.0f, 1e-5f);
  }
}

TEST(Fft, SingleToneLandsInOneBin) {
  const std::size_t n = 64;
  const std::size_t k = 5;
  std::vector<cf32> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double angle = 2.0 * std::numbers::pi * k * i / n;
    x[i] = {static_cast<float>(std::cos(angle)),
            static_cast<float>(std::sin(angle))};
  }
  fft(x);
  for (std::size_t i = 0; i < n; ++i) {
    if (i == k) {
      EXPECT_NEAR(std::abs(x[i]), static_cast<float>(n), 1e-2f);
    } else {
      EXPECT_NEAR(std::abs(x[i]), 0.0f, 1e-2f);
    }
  }
}

TEST(Fft, IfftInvertsFft) {
  Rng rng(3);
  std::vector<cf32> x(128);
  for (auto& v : x) v = rng.cn(1.0);
  const auto original = x;
  fft(x);
  ifft(x);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(x[i].real(), original[i].real(), 1e-4f);
    EXPECT_NEAR(x[i].imag(), original[i].imag(), 1e-4f);
  }
}

TEST(Fft, ParsevalHolds) {
  Rng rng(4);
  std::vector<cf32> x(256);
  for (auto& v : x) v = rng.cn(1.0);
  double time_energy = 0.0;
  for (const cf32 v : x) time_energy += std::norm(v);
  fft(x);
  double freq_energy = 0.0;
  for (const cf32 v : x) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / x.size(), time_energy, time_energy * 1e-4);
}

TEST(Fft, FftShiftSwapsHalves) {
  std::vector<cf32> x = {{0, 0}, {1, 0}, {2, 0}, {3, 0}};
  fftshift(x);
  EXPECT_FLOAT_EQ(x[0].real(), 2.0f);
  EXPECT_FLOAT_EQ(x[1].real(), 3.0f);
  EXPECT_FLOAT_EQ(x[2].real(), 0.0f);
  EXPECT_FLOAT_EQ(x[3].real(), 1.0f);
}

TEST(PowerSpectrum, ToneBinDominates) {
  const std::size_t n = 128;
  std::vector<cf32> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double angle = 2.0 * std::numbers::pi * 10.0 * i / n;
    x[i] = {static_cast<float>(std::cos(angle)),
            static_cast<float>(std::sin(angle))};
  }
  const auto ps = power_spectrum(x);
  std::size_t argmax = 0;
  for (std::size_t i = 1; i < ps.size(); ++i) {
    if (ps[i] > ps[argmax]) argmax = i;
  }
  EXPECT_EQ(argmax, 10u);
}

}  // namespace
}  // namespace fdb::dsp
