#include "dsp/moving_average.hpp"

#include <gtest/gtest.h>

#include <iterator>
#include <span>

namespace fdb::dsp {
namespace {

TEST(MovingAverage, WarmupAveragesPartialWindow) {
  MovingAverage<float> ma(4);
  EXPECT_FLOAT_EQ(ma.process(4.0f), 4.0f);
  EXPECT_FLOAT_EQ(ma.process(8.0f), 6.0f);
  EXPECT_FALSE(ma.warmed_up());
}

TEST(MovingAverage, FullWindowAverage) {
  MovingAverage<float> ma(4);
  ma.process(1.0f);
  ma.process(2.0f);
  ma.process(3.0f);
  EXPECT_FLOAT_EQ(ma.process(4.0f), 2.5f);
  EXPECT_TRUE(ma.warmed_up());
}

TEST(MovingAverage, SlidesCorrectly) {
  MovingAverage<float> ma(2);
  ma.process(1.0f);
  ma.process(3.0f);
  EXPECT_FLOAT_EQ(ma.process(5.0f), 4.0f);  // (3+5)/2
  EXPECT_FLOAT_EQ(ma.process(7.0f), 6.0f);  // (5+7)/2
}

TEST(MovingAverage, ValueWithoutPush) {
  MovingAverage<float> ma(3);
  EXPECT_FLOAT_EQ(ma.value(), 0.0f);
  ma.process(6.0f);
  EXPECT_FLOAT_EQ(ma.value(), 6.0f);
}

TEST(MovingAverage, ResetClears) {
  MovingAverage<float> ma(3);
  ma.process(9.0f);
  ma.reset();
  EXPECT_EQ(ma.filled(), 0u);
  EXPECT_FLOAT_EQ(ma.process(2.0f), 2.0f);
}

TEST(MovingAverage, DoubleTypeLongRunStable) {
  MovingAverage<double> ma(100);
  for (int i = 0; i < 100000; ++i) ma.process(1.0);
  EXPECT_NEAR(ma.value(), 1.0, 1e-9);
}

TEST(MovingAverage, BatchKernelMatchesScalarThroughWarmup) {
  // One chunk straddling the warm-up boundary: the prologue averages
  // over the partial fill, the steady-state loop over the full window.
  MovingAverage<float> scalar(4), batch(4);
  const float in[] = {4.0f, 8.0f, 6.0f, 2.0f, 10.0f, 0.0f, 4.0f};
  float out[std::size(in)] = {};
  batch.process(std::span<const float>(in, std::size(in)),
                std::span<float>(out, std::size(in)));
  for (std::size_t i = 0; i < std::size(in); ++i) {
    EXPECT_FLOAT_EQ(out[i], scalar.process(in[i])) << i;
  }
  EXPECT_FLOAT_EQ(out[0], 4.0f);
  EXPECT_FLOAT_EQ(out[1], 6.0f);
  EXPECT_FLOAT_EQ(out[3], 5.0f);  // (4+8+6+2)/4
}

TEST(WindowedMinMax, TracksWindow) {
  WindowedMinMax<float> mm(3);
  mm.push(5.0f);
  mm.push(1.0f);
  mm.push(3.0f);
  EXPECT_FLOAT_EQ(mm.min(), 1.0f);
  EXPECT_FLOAT_EQ(mm.max(), 5.0f);
  mm.push(4.0f);  // evicts 5
  EXPECT_FLOAT_EQ(mm.max(), 4.0f);
  EXPECT_FLOAT_EQ(mm.min(), 1.0f);
  mm.push(2.0f);  // evicts 1
  EXPECT_FLOAT_EQ(mm.min(), 2.0f);
}

TEST(WindowedMinMax, SizeCapped) {
  WindowedMinMax<int> mm(2);
  mm.push(1);
  mm.push(2);
  mm.push(3);
  EXPECT_EQ(mm.size(), 2u);
}

}  // namespace
}  // namespace fdb::dsp
