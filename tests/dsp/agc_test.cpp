#include "dsp/agc.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace fdb::dsp {
namespace {

TEST(Agc, ConvergesToTargetLevel) {
  Agc agc(1.0f, 0.01f);
  float y = 0.0f;
  for (int i = 0; i < 10000; ++i) y = agc.process(0.1f);
  EXPECT_NEAR(std::abs(y), 1.0f, 0.05f);
}

TEST(Agc, HandlesLargeInput) {
  Agc agc(1.0f, 0.01f);
  float y = 0.0f;
  for (int i = 0; i < 10000; ++i) y = agc.process(50.0f);
  EXPECT_NEAR(std::abs(y), 1.0f, 0.05f);
}

TEST(Agc, GainStaysPositive) {
  Agc agc(1.0f, 1.0f);
  for (int i = 0; i < 100; ++i) agc.process(1000.0f);
  EXPECT_GT(agc.gain(), 0.0f);
}

TEST(Agc, ComplexPathPreservesPhase) {
  Agc agc(1.0f, 0.005f);
  cf32 y{};
  for (int i = 0; i < 20000; ++i) y = agc.process(cf32{0.3f, 0.3f});
  // Magnitude near target, phase preserved at 45 degrees.
  EXPECT_NEAR(std::abs(y), 1.0f, 0.05f);
  EXPECT_NEAR(std::arg(y), std::atan2(1.0, 1.0), 1e-3);
}

TEST(Agc, ResetRestoresUnityGain) {
  Agc agc(1.0f, 0.1f);
  for (int i = 0; i < 100; ++i) agc.process(10.0f);
  agc.reset();
  EXPECT_FLOAT_EQ(agc.gain(), 1.0f);
}

}  // namespace
}  // namespace fdb::dsp
