#include "util/crc.hpp"

#include <gtest/gtest.h>

#include <string_view>
#include <vector>

namespace fdb {
namespace {

std::vector<std::uint8_t> bytes_of(std::string_view s) {
  return {s.begin(), s.end()};
}

TEST(Crc, Crc16CheckValue) {
  // CRC-16/CCITT-FALSE("123456789") = 0x29B1 (standard check value).
  const auto data = bytes_of("123456789");
  EXPECT_EQ(crc16(data), 0x29B1);
}

TEST(Crc, Crc32CheckValue) {
  // CRC-32/IEEE("123456789") = 0xCBF43926.
  const auto data = bytes_of("123456789");
  EXPECT_EQ(crc32(data), 0xCBF43926u);
}

TEST(Crc, Crc8CheckValue) {
  // CRC-8/ATM ("123456789") = 0xF4.
  const auto data = bytes_of("123456789");
  EXPECT_EQ(crc8(data), 0xF4);
}

TEST(Crc, EmptyInput) {
  EXPECT_EQ(crc8({}), 0x00);
  EXPECT_EQ(crc16({}), 0xFFFF);
  EXPECT_EQ(crc32({}), 0x00000000u);
}

TEST(Crc, SingleBitFlipDetected) {
  auto data = bytes_of("full duplex backscatter");
  const auto original16 = crc16(data);
  const auto original32 = crc32(data);
  for (std::size_t byte = 0; byte < data.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      data[byte] ^= static_cast<std::uint8_t>(1u << bit);
      EXPECT_NE(crc16(data), original16) << "byte " << byte << " bit " << bit;
      EXPECT_NE(crc32(data), original32) << "byte " << byte << " bit " << bit;
      data[byte] ^= static_cast<std::uint8_t>(1u << bit);
    }
  }
}

TEST(Crc, DifferentMessagesDiffer) {
  EXPECT_NE(crc16(bytes_of("block-0")), crc16(bytes_of("block-1")));
  EXPECT_NE(crc8(bytes_of("a")), crc8(bytes_of("b")));
}

}  // namespace
}  // namespace fdb
