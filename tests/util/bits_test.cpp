#include "util/bits.hpp"

#include <gtest/gtest.h>

namespace fdb {
namespace {

TEST(Bits, BytesToBitsMsbFirst) {
  const std::vector<std::uint8_t> bytes = {0xA5};  // 1010 0101
  const auto bits = bytes_to_bits(bytes);
  const std::vector<std::uint8_t> expected = {1, 0, 1, 0, 0, 1, 0, 1};
  EXPECT_EQ(bits, expected);
}

TEST(Bits, RoundTrip) {
  const std::vector<std::uint8_t> bytes = {0x00, 0xFF, 0x3C, 0x81};
  EXPECT_EQ(bits_to_bytes(bytes_to_bits(bytes)), bytes);
}

TEST(Bits, PartialByteZeroPadded) {
  const std::vector<std::uint8_t> bits = {1, 1, 1};  // 1110 0000
  const auto bytes = bits_to_bytes(bits);
  ASSERT_EQ(bytes.size(), 1u);
  EXPECT_EQ(bytes[0], 0xE0);
}

TEST(Bits, HammingDistance) {
  const std::vector<std::uint8_t> a = {1, 0, 1, 1, 0};
  const std::vector<std::uint8_t> b = {1, 1, 1, 0, 0};
  EXPECT_EQ(hamming_distance(a, b), 2u);
  EXPECT_EQ(hamming_distance(a, a), 0u);
}

TEST(Bits, HammingTreatsNonzeroAsOne) {
  const std::vector<std::uint8_t> a = {2, 0};
  const std::vector<std::uint8_t> b = {1, 0};
  EXPECT_EQ(hamming_distance(a, b), 0u);
}

TEST(Bits, AppendAndReadBits) {
  std::vector<std::uint8_t> bits;
  append_bits(bits, 0xAB, 8);
  append_bits(bits, 0x3, 2);
  ASSERT_EQ(bits.size(), 10u);
  EXPECT_EQ(read_bits(bits, 0, 8), 0xABu);
  EXPECT_EQ(read_bits(bits, 8, 2), 0x3u);
}

TEST(Bits, ReadBitsMidStream) {
  std::vector<std::uint8_t> bits;
  append_bits(bits, 0xDEAD, 16);
  EXPECT_EQ(read_bits(bits, 4, 8), 0xEAu);
}

TEST(Lfsr16, MaximalLengthPeriod) {
  Lfsr16 lfsr(0x1);
  // The taps give a maximal-length sequence: no all-zero lock-up and a
  // long period. Check the first 65535 bits contain both values.
  std::size_t ones = 0;
  const std::size_t n = 65535;
  for (std::size_t i = 0; i < n; ++i) ones += lfsr.next_bit();
  // Balanced to within a percent.
  EXPECT_NEAR(static_cast<double>(ones) / n, 0.5, 0.01);
}

TEST(Lfsr16, ZeroSeedIsRemapped) {
  Lfsr16 lfsr(0);
  // Must not be stuck emitting zeros.
  int ones = 0;
  for (int i = 0; i < 64; ++i) ones += lfsr.next_bit();
  EXPECT_GT(ones, 0);
}

TEST(Lfsr16, NextBitsLength) {
  Lfsr16 lfsr;
  EXPECT_EQ(lfsr.next_bits(100).size(), 100u);
}

}  // namespace
}  // namespace fdb
