#include "util/stats.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace fdb {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownSequence) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of this classic sequence is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeMatchesCombined) {
  Rng rng(5);
  RunningStats a, b, combined;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    (i % 2 ? a : b).add(x);
    combined.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_NEAR(a.mean(), combined.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), combined.variance(), 1e-9);
}

TEST(RunningStats, MergeOfHalvesMatchesConcatenatedStream) {
  // The contract the sharded trial runner leans on: feeding the first
  // half into one accumulator, the second half into another, and
  // merging equals one accumulator fed the concatenated stream —
  // mean/var to 1e-12, min/max/count exact.
  Rng rng(41);
  RunningStats first_half, second_half, concatenated;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(-1.0, 5.0);
    (i < n / 2 ? first_half : second_half).add(x);
    concatenated.add(x);
  }
  first_half.merge(second_half);
  EXPECT_EQ(first_half.count(), concatenated.count());
  EXPECT_NEAR(first_half.mean(), concatenated.mean(), 1e-12);
  EXPECT_NEAR(first_half.variance(), concatenated.variance(), 1e-12);
  EXPECT_EQ(first_half.min(), concatenated.min());
  EXPECT_EQ(first_half.max(), concatenated.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
}

TEST(RunningStats, Ci95ShrinksWithSamples) {
  Rng rng(6);
  RunningStats small, large;
  for (int i = 0; i < 100; ++i) small.add(rng.normal());
  for (int i = 0; i < 10000; ++i) large.add(rng.normal());
  EXPECT_GT(small.ci95_halfwidth(), large.ci95_halfwidth());
}

TEST(ErrorRateCounter, RateAndBounds) {
  ErrorRateCounter counter;
  for (int i = 0; i < 100; ++i) counter.add(i < 10);
  EXPECT_DOUBLE_EQ(counter.rate(), 0.1);
  EXPECT_LT(counter.wilson_lower(), 0.1);
  EXPECT_GT(counter.wilson_upper(), 0.1);
  EXPECT_GE(counter.wilson_lower(), 0.0);
  EXPECT_LE(counter.wilson_upper(), 1.0);
}

TEST(ErrorRateCounter, ZeroErrorsHasInformativeUpperBound) {
  ErrorRateCounter counter;
  counter.add(0, 1000);
  EXPECT_DOUBLE_EQ(counter.rate(), 0.0);
  EXPECT_DOUBLE_EQ(counter.wilson_lower(), 0.0);
  EXPECT_GT(counter.wilson_upper(), 0.0);
  EXPECT_LT(counter.wilson_upper(), 0.01);
}

TEST(ErrorRateCounter, BulkAdd) {
  ErrorRateCounter counter;
  counter.add(5, 50);
  counter.add(5, 50);
  EXPECT_EQ(counter.errors(), 10u);
  EXPECT_EQ(counter.trials(), 100u);
}

TEST(ErrorRateCounter, MergeIsExact) {
  ErrorRateCounter a, b, combined;
  a.add(3, 40);
  b.add(7, 60);
  combined.add(3, 40);
  combined.add(7, 60);
  a.merge(b);
  EXPECT_EQ(a.errors(), combined.errors());
  EXPECT_EQ(a.trials(), combined.trials());
  EXPECT_DOUBLE_EQ(a.rate(), 0.1);
  // Merging an empty counter changes nothing.
  a.merge(ErrorRateCounter{});
  EXPECT_EQ(a.errors(), 10u);
  EXPECT_EQ(a.trials(), 100u);
}

TEST(Histogram, MergeAddsCounts) {
  Histogram a(0.0, 10.0, 10), b(0.0, 10.0, 10);
  a.add(1.5);
  a.add(2.5);
  b.add(2.5);
  b.add(9.5);
  a.merge(b);
  EXPECT_EQ(a.total(), 4u);
  EXPECT_EQ(a.bin_count(1), 1u);
  EXPECT_EQ(a.bin_count(2), 2u);
  EXPECT_EQ(a.bin_count(9), 1u);
}

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.5);
  h.add(-100.0);  // clamps to first bin
  h.add(100.0);   // clamps to last bin
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(9), 2u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, QuantileOfUniformFill) {
  Histogram h(0.0, 1.0, 100);
  Rng rng(8);
  for (int i = 0; i < 100000; ++i) h.add(rng.uniform());
  EXPECT_NEAR(h.quantile(0.5), 0.5, 0.02);
  EXPECT_NEAR(h.quantile(0.9), 0.9, 0.02);
  EXPECT_NEAR(h.quantile(0.1), 0.1, 0.02);
}

TEST(Histogram, BinEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
}

}  // namespace
}  // namespace fdb
