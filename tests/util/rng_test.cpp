#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <complex>

namespace fdb {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntBounded) {
  Rng rng(9);
  std::array<int, 7> counts{};
  for (int i = 0; i < 14000; ++i) {
    const auto v = rng.uniform_int(7);
    ASSERT_LT(v, 7u);
    ++counts[v];
  }
  // Each bucket should land near 2000.
  for (const int c : counts) {
    EXPECT_GT(c, 1700);
    EXPECT_LT(c, 2300);
  }
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(11);
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, NormalScaledMoments) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(Rng, ComplexNormalMeanSquare) {
  Rng rng(19);
  double power = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) power += std::norm(rng.cn(2.0));
  EXPECT_NEAR(power / n, 2.0, 0.05);
}

TEST(Rng, RayleighMeanSquare) {
  Rng rng(23);
  double ms = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double r = rng.rayleigh(4.0);
    EXPECT_GE(r, 0.0);
    ms += r * r;
  }
  EXPECT_NEAR(ms / n, 4.0, 0.1);
}

TEST(Rng, ChanceProbability) {
  Rng rng(29);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, SubstreamIsPositionIndependent) {
  // Counter-based derivation: the generator for (seed, stream) depends
  // only on those two values — no ordering, no shared state. This is
  // what lets a parallel runner hand trial i the same randomness on any
  // thread.
  Rng a = Rng::substream(99, 5);
  Rng b = Rng::substream(99, 5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, SubstreamsDiverge) {
  // Adjacent stream indices and adjacent seeds must share no structure.
  Rng s0 = Rng::substream(7, 0);
  Rng s1 = Rng::substream(7, 1);
  Rng other_seed = Rng::substream(8, 0);
  int same01 = 0, same_seed = 0;
  for (int i = 0; i < 64; ++i) {
    const auto v0 = s0();
    if (v0 == s1()) ++same01;
    if (v0 == other_seed()) ++same_seed;
  }
  EXPECT_EQ(same01, 0);
  EXPECT_EQ(same_seed, 0);
}

TEST(Rng, SubstreamDiffersFromPlainSeed) {
  Rng plain(7);
  Rng sub = Rng::substream(7, 0);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (plain() == sub()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngDeathTest, UniformIntZeroFailsLoudly) {
  // Precondition n > 0 must fail with a message in every build mode —
  // release builds used to reach a division by zero (UB) instead.
  Rng rng(3);
  EXPECT_DEATH(rng.uniform_int(0), "n must be > 0|n > 0");
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.fork();
  // Child stream should not reproduce the parent stream.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent() == child()) ++same;
  }
  EXPECT_EQ(same, 0);
}

}  // namespace
}  // namespace fdb
