#include "util/table.hpp"

#include <gtest/gtest.h>

namespace fdb {
namespace {

TEST(Table, RendersHeaderAndRows) {
  Table t({"x", "y"});
  t.add_row({"1", "2"});
  t.add_row({"10", "20"});
  const auto out = t.render();
  EXPECT_NE(out.find("x"), std::string::npos);
  EXPECT_NE(out.find("10"), std::string::npos);
  EXPECT_NE(out.find("20"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, NumericRowFormatting) {
  Table t({"value"});
  t.add_row_numeric({0.000123456});
  EXPECT_NE(t.render().find("0.000123456"), std::string::npos);
}

TEST(Table, ColumnsAligned) {
  Table t({"a", "bbbb"});
  t.add_row({"wide-cell", "1"});
  const auto out = t.render();
  // Header line and data line must be equally long lines (alignment).
  const auto first_newline = out.find('\n');
  const auto header = out.substr(0, first_newline);
  EXPECT_GE(header.size(), std::string("a  bbbb").size());
}

TEST(FormatG, CompactDoubles) {
  EXPECT_EQ(format_g(1.0), "1");
  EXPECT_EQ(format_g(0.5), "0.5");
  EXPECT_EQ(format_g(1e-9), "1e-09");
}

}  // namespace
}  // namespace fdb
