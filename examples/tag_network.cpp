// Scenario: a warehouse aisle of battery-free inventory tags around one
// reader, all lit by the same TV tower. The demo runs the dense
// deployment through the sample-level network simulator twice — once
// with a conventional timeout MAC, once with the paper's full-duplex
// collision notification — and shows what the channel time was spent on.
#include <cstdio>

#include "sim/network_sim.hpp"
#include "sim/scenarios.hpp"

int main() {
  std::puts("Warehouse aisle: 8 battery-free tags, one reader, one ambient"
            " carrier.\nEvery frame is synthesized at sample level; verdicts"
            " come from the real\nreceive chain, so collisions corrupt actual"
            " envelopes.\n");

  constexpr std::size_t kTrials = 4;
  std::printf("%-8s %9s %9s %10s %12s %14s\n", "mac", "attempts",
              "delivered", "goodput", "waste_frac", "detect_slots");
  for (const auto kind : {fdb::mac::MacKind::kTimeout,
                          fdb::mac::MacKind::kCollisionNotify}) {
    auto scenario = fdb::sim::make_scenario("dense-deployment", 8, 23);
    scenario.config.mac_kind = kind;
    const fdb::sim::NetworkSimulator sim(scenario.config);
    const auto summary = sim.run(kTrials);
    std::printf("%-8s %9llu %9llu %9.3f%% %12.3f %14.1f\n",
                kind == fdb::mac::MacKind::kTimeout ? "timeout" : "notify",
                static_cast<unsigned long long>(summary.frames_attempted()),
                static_cast<unsigned long long>(summary.frames_delivered()),
                100.0 * summary.goodput_slots_fraction(),
                summary.wasted_airtime_fraction(),
                summary.mean_detect_latency_slots());
  }

  std::puts("\nWith full-duplex notification a collision costs ~2 block-times"
            " instead of a\nwhole frame plus an ACK timeout: the channel"
            " spends its slots on delivered\nframes instead of dead air.");

  // Second act: the same aisle lit so weakly that clean frames sit at
  // the fading margin — where a second reader at the far end of the
  // aisle rescues frames the first one loses.
  std::puts("\nNow dim the tower (multi-gateway-dense scenario) and add a"
            " second reader at\nthe other end of the aisle:\n");
  std::printf("%-18s %9s %9s %12s %14s\n", "receivers", "attempts",
              "delivered", "ratio", "detect_slots");
  for (const bool diversity : {false, true}) {
    auto scenario = fdb::sim::make_scenario("multi-gateway-dense", 8, 23);
    if (!diversity) scenario.config.extra_gateways.clear();
    const fdb::sim::NetworkSimulator sim(scenario.config);
    const auto summary = sim.run(kTrials);
    std::printf("%-18s %9llu %9llu %12.3f %14.1f\n",
                diversity ? "two (any-gw)" : "one",
                static_cast<unsigned long long>(summary.frames_attempted()),
                static_cast<unsigned long long>(summary.frames_delivered()),
                summary.delivery_ratio(),
                summary.mean_detect_latency_slots());
  }

  std::puts("\nEvery gateway runs its own receive chain over the same tag"
            " reflections;\nany-gateway combining delivers whatever either"
            " chain decodes, and the\nnearest gateway's collision"
            " notification arrives first.");
  return 0;
}
