// Quickstart: one full-duplex backscatter exchange, end to end.
//
//   1. Device A modulates a payload onto its RF switch (no radio!).
//   2. The sample-level channel carries it past ambient illumination.
//   3. Device B decodes the data *while* backscattering feedback.
//   4. Device A reads the feedback through its own transmission.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "sim/link_budget.hpp"
#include "sim/link_sim.hpp"

int main() {
  // A link: ambient TV tower 5 m away, devices 1 m apart, CW carrier.
  fdb::sim::LinkSimConfig config;
  config.modem = fdb::core::FdModemConfig::make(/*block_size_bytes=*/8,
                                                /*samples_per_chip=*/20);
  config.carrier = "cw";
  config.fading = "static";
  config.a_to_b_m = 1.0;
  config.seed = 1;

  const auto budget = fdb::sim::compute_link_budget(config);
  std::printf("Link budget:\n");
  std::printf("  incident RF at B       : %.3g uW\n",
              budget.incident_at_b_w * 1e6);
  std::printf("  envelope swing at B    : %.3g (data)\n",
              budget.delta_env_at_b);
  std::printf("  envelope swing at A    : %.3g (feedback)\n",
              budget.delta_env_at_a);
  std::printf("  harvest rate at B      : %.3g uW\n",
              budget.harvested_per_second_j * 1e6);

  const auto& rates = config.modem.data.rates;
  std::printf("Rates: data %.1f kbps, feedback %.1f bps (asymmetry %zu)\n",
              rates.data_rate_bps() / 1e3, rates.feedback_rate_bps(),
              rates.asymmetry);

  fdb::sim::LinkSimulator sim(config);
  sim.set_payload_bytes(64);
  const auto trial = sim.run_trial(0);

  std::printf("\nOne frame exchange (64-byte payload, 8 blocks):\n");
  std::printf("  sync acquired          : %s (corr %.2f)\n",
              trial.sync_ok ? "yes" : "no", trial.sync_corr);
  std::printf("  data bits              : %zu, errors %zu\n",
              trial.data_bits, trial.data_bit_errors);
  std::printf("  block verdicts         : ");
  for (const bool ok : trial.block_ok) std::printf("%c", ok ? '+' : 'x');
  std::printf("\n");
  std::printf("  feedback bits decoded  : %zu, errors %zu\n",
              trial.feedback_bits, trial.feedback_bit_errors);
  std::printf("  energy harvested at B  : %.3g uJ\n",
              trial.harvested_j * 1e6);

  const auto summary = sim.run(20);
  std::printf("\n20 more frames: data BER %.2g, feedback BER %.2g,"
              " sync failures %llu\n",
              summary.data_ber(), summary.feedback_ber(),
              static_cast<unsigned long long>(summary.sync_failures));
  return 0;
}
