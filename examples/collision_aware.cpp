// Scenario: a checkout lane of battery-free price tags all want to
// talk at once. The demo compares the timeout MAC (collisions found by
// silence) with the full-duplex MAC (receiver notifies colliders within
// two block-times) as the lane gets busier.
#include <cstdio>
#include <vector>

#include "mac/collision.hpp"
#include "sim/runner.hpp"

int main() {
  std::puts("Checkout-lane contention: timeout MAC vs FD collision"
            " notification\n");
  std::printf("%5s  %22s  %22s\n", "tags", "timeout (waste/goodput)",
              "notify (waste/goodput)");
  // Both MAC arms of every contention level fan out across the
  // experiment runner; results come back in axis order.
  const std::vector<std::size_t> tag_counts = {2, 4, 8};
  const fdb::sim::ExperimentRunner runner;
  struct Row {
    fdb::mac::CollisionStats timeout;
    fdb::mac::CollisionStats notify;
  };
  const auto rows = runner.map(tag_counts.size(), [&](std::size_t i) {
    fdb::mac::CollisionSimParams params;
    params.num_tags = tag_counts[i];
    params.sim_slots = 200000;
    params.seed = 5;
    return Row{
        fdb::mac::run_collision_sim(fdb::mac::MacKind::kTimeout, params),
        fdb::mac::run_collision_sim(fdb::mac::MacKind::kCollisionNotify,
                                    params)};
  });
  for (std::size_t i = 0; i < tag_counts.size(); ++i) {
    std::printf("%5zu  %10.3f / %-9.3f  %10.3f / %-9.3f\n", tag_counts[i],
                rows[i].timeout.wasted_airtime_fraction(),
                rows[i].timeout.goodput_slots_fraction(),
                rows[i].notify.wasted_airtime_fraction(),
                rows[i].notify.goodput_slots_fraction());
  }
  std::puts("\nWith notification, a collision costs ~2 block-times instead"
            " of a\nwhole frame plus timeout — the channel stays usable even"
            " when busy.");
  return 0;
}
