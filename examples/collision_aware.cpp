// Scenario: a checkout lane of battery-free price tags all want to
// talk at once. The demo compares the timeout MAC (collisions found by
// silence) with the full-duplex MAC (receiver notifies colliders within
// two block-times) as the lane gets busier.
#include <cstdio>

#include "mac/collision.hpp"

int main() {
  std::puts("Checkout-lane contention: timeout MAC vs FD collision"
            " notification\n");
  std::printf("%5s  %22s  %22s\n", "tags", "timeout (waste/goodput)",
              "notify (waste/goodput)");
  for (const std::size_t tags : {2ul, 4ul, 8ul}) {
    fdb::mac::CollisionSimParams params;
    params.num_tags = tags;
    params.sim_slots = 200000;
    params.seed = 5;
    const auto timeout =
        fdb::mac::run_collision_sim(fdb::mac::MacKind::kTimeout, params);
    const auto notify = fdb::mac::run_collision_sim(
        fdb::mac::MacKind::kCollisionNotify, params);
    std::printf("%5zu  %10.3f / %-9.3f  %10.3f / %-9.3f\n", tags,
                timeout.wasted_airtime_fraction(),
                timeout.goodput_slots_fraction(),
                notify.wasted_airtime_fraction(),
                notify.goodput_slots_fraction());
  }
  std::puts("\nWith notification, a collision costs ~2 block-times instead"
            " of a\nwhole frame plus timeout — the channel stays usable even"
            " when busy.");
  return 0;
}
