// Flowgraph demo: wire the GNU-Radio-style engine into a small receive
// chain — ambient OFDM source -> envelope detector -> moving average ->
// stats probe — and print what a tag's detector actually sees, plus the
// carrier's power spectrum.
#include <cstdio>
#include <memory>

#include "channel/ambient_source.hpp"
#include "dsp/fft.hpp"
#include "flowgraph/blocks_std.hpp"
#include "flowgraph/graph.hpp"

int main() {
  using namespace fdb;

  // Generate 64k samples of the TV-style carrier.
  channel::OfdmTvSource source({.fft_size = 256, .cp_len = 32,
                                .occupancy = 0.8, .seed = 42});
  std::vector<cf32> carrier;
  source.generate(65536, carrier);

  // Spectrum of the first 4096 samples.
  const auto spectrum = dsp::power_spectrum(
      std::span<const cf32>(carrier.data(), 4096));
  double occupied = 0.0;
  double peak = 0.0;
  for (const float bin : spectrum) {
    if (bin > 1e-6) occupied += 1.0;
    peak = std::max(peak, static_cast<double>(bin));
  }
  std::printf("Carrier spectrum: %.0f%% of bins occupied, peak bin %.3g\n",
              100.0 * occupied / static_cast<double>(spectrum.size()), peak);

  // Flowgraph: carrier -> envelope -> moving average -> stats probe.
  fg::Graph graph;
  auto src = std::make_shared<fg::VectorSourceC>(carrier);
  auto env = std::make_shared<fg::EnvelopeBlock>(400e3, 2e6);
  auto avg = std::make_shared<fg::MovingAverageBlockF>(64);
  auto avg_probe = std::make_shared<fg::ProbeStatsF>();

  const auto i_src = graph.add(src);
  const auto i_env = graph.add(env);
  const auto i_avg = graph.add(avg);
  const auto i_p2 = graph.add(avg_probe);
  graph.connect(i_src, 0, i_env, 0);
  graph.connect(i_env, 0, i_avg, 0);
  graph.connect(i_avg, 0, i_p2, 0);
  graph.run();

  dsp::EnvelopeDetector direct(400e3, 2e6);
  RunningStats raw_stats;
  for (const cf32 s : carrier) raw_stats.add(direct.process(s));

  const auto& smooth = avg_probe->stats();
  std::printf("Envelope, raw      : mean %.3f  stddev %.3f"
              "  (fluctuation %.0f%%)\n",
              raw_stats.mean(), raw_stats.stddev(),
              100.0 * raw_stats.stddev() / raw_stats.mean());
  std::printf("Envelope, averaged : mean %.3f  stddev %.3f"
              "  (fluctuation %.0f%%)\n",
              smooth.mean(), smooth.stddev(),
              100.0 * smooth.stddev() / smooth.mean());
  std::puts("\nThis is why ambient backscatter integrates many samples per"
            " chip:\nthe raw OFDM envelope swings wildly, the averaged one"
            " is stable\nenough to slice a 1-2% backscatter swing on top.");
  return 0;
}
