// Scenario: a wearable tag walks through a building; its channel to the
// reader alternates between good and bad. Instantaneous per-block
// feedback lets the transmitter's rate controller react within tens of
// blocks — watch it ride the chip-length ladder.
#include <cstdio>

#include "core/rate_adaptation.hpp"
#include "core/theory.hpp"
#include "util/rng.hpp"

int main() {
  std::puts("Rate adaptation on instantaneous feedback\n");

  fdb::core::RateAdaptConfig config;
  config.chip_ladder = {4, 8, 16, 32, 64};
  config.window_blocks = 24;
  config.min_dwell_blocks = 32;
  config.initial_rung = 2;
  fdb::core::RateController controller(config);

  fdb::Rng rng(9);
  const std::size_t block_bits = 72;

  struct Phase {
    const char* name;
    double delta;
    std::size_t blocks;
  };
  const Phase walk[] = {
      {"desk (good)", 0.10, 400},
      {"hallway (fair)", 0.05, 400},
      {"stairwell (bad)", 0.025, 400},
      {"lab (good)", 0.10, 400},
  };

  std::printf("%-18s %-10s %-12s %-10s\n", "phase", "chip_len",
              "loss_window", "rate_kbps");
  for (const auto& phase : walk) {
    for (std::size_t b = 0; b < phase.blocks; ++b) {
      const double chip_ber = fdb::core::ook_envelope_ber(
          phase.delta, 0.05, controller.samples_per_chip());
      const double bler =
          fdb::core::block_error_rate(2.0 * chip_ber, block_bits);
      controller.on_block_verdict(!rng.chance(bler));
      if (b % 100 == 99) {
        // 2 MHz sample rate, 2 chips/bit.
        const double rate_kbps =
            2e6 / (2.0 * controller.samples_per_chip()) / 1e3;
        std::printf("%-18s %-10zu %-12.3f %-10.1f\n", phase.name,
                    controller.samples_per_chip(),
                    controller.window_loss_rate(), rate_kbps);
      }
    }
  }
  std::printf("\ntotal: %llu upshifts, %llu downshifts\n",
              static_cast<unsigned long long>(controller.upshifts()),
              static_cast<unsigned long long>(controller.downshifts()));
  std::puts("The controller converges within ~1 window per phase change —"
            " block-scale\nreaction that half-duplex feedback (one verdict"
            " per frame exchange) cannot match.");
  return 0;
}
