// Scenario: a battery-free sensor streams readings to a nearby reader
// over a lossy backscatter link. With instantaneous feedback, only
// corrupted blocks are re-sent inside the same burst; the conventional
// design re-sends whole frames after a timeout. The example couples the
// sample-level PHY (for the measured error process) to both link-layer
// engines and prints the delivery report + energy bill.
#include <cstdio>

#include "energy/ledger.hpp"
#include "mac/arq.hpp"
#include "mac/block_channel.hpp"
#include "sim/link_sim.hpp"

namespace {

// Records per-block verdicts from the PHY simulation into a trace the
// ARQ engines can replay.
fdb::mac::TraceBlockChannel record(const fdb::sim::LinkSimConfig& config,
                                   std::size_t frames,
                                   std::size_t payload_bytes) {
  fdb::sim::LinkSimulator sim(config);
  sim.set_payload_bytes(payload_bytes);
  fdb::mac::TraceBlockChannel trace;
  const std::size_t blocks_per_frame =
      payload_bytes / config.modem.block_size_bytes;
  for (std::size_t f = 0; f < frames; ++f) {
    const auto trial = sim.run_trial(f);
    for (std::size_t b = 0; b < blocks_per_frame; ++b) {
      const bool corrupted =
          !trial.sync_ok || b >= trial.block_ok.size() || !trial.block_ok[b];
      trace.push_block_verdict(corrupted);
      trace.push_feedback_flip(b < trial.feedback_bit_errors);
    }
  }
  return trace;
}

void report(const char* name, const fdb::mac::ArqStats& stats,
            double bit_time_s) {
  fdb::energy::EnergyLedger ledger;
  ledger.spend(fdb::energy::TagState::kBackscattering,
               static_cast<double>(stats.airtime_bits) * bit_time_s);
  std::printf("  %-12s goodput %.3f  frames %llu/%llu  retx-blocks %llu"
              "  energy %.1f pJ/bit\n",
              name, stats.goodput(),
              static_cast<unsigned long long>(stats.frames_delivered),
              static_cast<unsigned long long>(stats.frames_attempted),
              static_cast<unsigned long long>(stats.blocks_retransmitted),
              ledger.energy_per_bit_j(stats.payload_bits_delivered) * 1e12);
}

}  // namespace

int main() {
  std::puts("Sensor streaming over a noisy backscatter link");
  std::puts("(64-byte readings, 4-byte blocks, measured PHY error trace)\n");

  fdb::sim::LinkSimConfig config;
  config.modem = fdb::core::FdModemConfig::make(4, 6);
  config.carrier = "cw";
  config.fading = "static";
  config.noise_power_override_w = 5e-9;  // a marginal link on purpose
  config.seed = 3;

  const std::size_t frames = 60;
  const std::size_t payload = 64;
  fdb::mac::ArqParams params;
  params.payload_bytes = payload;
  params.block_bytes = config.modem.block_size_bytes;

  const double bit_time_s =
      1.0 / config.modem.data.rates.data_rate_bps();

  auto fd_trace = record(config, frames, payload);
  auto sw_trace = record(config, frames, payload);

  fdb::mac::FullDuplexInstantArq fd;
  fdb::mac::StopAndWaitArq sw;
  std::puts("Delivery report:");
  report("fd-instant", fd.run(frames, fd_trace, params), bit_time_s);
  report("stop-wait", sw.run(frames, sw_trace, params), bit_time_s);

  std::puts("\nThe instant-NACK engine repairs corrupted blocks inside the"
            " burst;\nthe stop-and-wait baseline re-sends whole frames and"
            " pays a turnaround\nevery time, which shows up directly in"
            " energy per delivered bit.");
  return 0;
}
