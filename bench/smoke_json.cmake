# Runs one bench binary in smoke mode (--trials 2 --jobs 2 --format json)
# and validates that its stdout parses as JSON. Invoked by ctest with
# -DBENCH_BIN=<path> -DPYTHON3=<path>.
execute_process(
  COMMAND "${BENCH_BIN}" --trials 2 --jobs 2 --format json
  OUTPUT_VARIABLE bench_output
  RESULT_VARIABLE bench_status)
if(NOT bench_status EQUAL 0)
  message(FATAL_ERROR "${BENCH_BIN} exited with status ${bench_status}")
endif()

# Feed the captured output through python's JSON parser via a temp file
# (execute_process has no stdin-from-variable).
get_filename_component(bench_name "${BENCH_BIN}" NAME)
set(tmp "$ENV{TMPDIR}")
if(NOT tmp)
  set(tmp "/tmp")
endif()
set(tmp "${tmp}/fdb_${bench_name}_smoke.json")
file(WRITE "${tmp}" "${bench_output}")
execute_process(
  COMMAND "${PYTHON3}" -c "import json, sys; json.load(open(sys.argv[1]))" "${tmp}"
  RESULT_VARIABLE json_status
  ERROR_VARIABLE json_error)
file(REMOVE "${tmp}")
if(NOT json_status EQUAL 0)
  message(FATAL_ERROR
    "${BENCH_BIN} --format json did not emit valid JSON: ${json_error}")
endif()
