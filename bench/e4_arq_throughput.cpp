// E4 — The headline result: goodput of instant-feedback FD-ARQ vs the
// half-duplex baselines as the channel BER rises, with the closed-form
// models printed alongside. The paper's claim is a widening gap: at
// BERs where almost every frame contains an error, per-block recovery
// keeps the pipe full while whole-frame ARQ collapses.
#include <vector>

#include "core/theory.hpp"
#include "mac/arq.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"
#include "sim/sweep.hpp"

namespace {

fdb::mac::ArqParams params() {
  fdb::mac::ArqParams p;
  p.payload_bytes = 256;
  p.block_bytes = 8;
  return p;
}

fdb::core::ArqModelParams model_params() {
  const auto p = params();
  fdb::core::ArqModelParams m;
  m.payload_bits = p.payload_bytes * 8;
  m.block_bits = p.block_bytes * 8;
  m.block_overhead_bits = p.block_crc_bits;
  m.frame_overhead_bits = p.frame_overhead_bits;
  m.preamble_bits = p.preamble_bits;
  m.ack_turnaround_bits = p.ack_turnaround_bits;
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  const auto cli = fdb::sim::parse_cli(argc, argv, /*default_trials=*/400,
                                       "ARQ frames per BER point");
  const fdb::sim::ExperimentRunner runner(cli.jobs);
  const std::size_t frames = cli.trials;

  const auto bers = fdb::sim::logspace(1e-4, 3e-2, 9);
  // Each BER point is a self-contained cell (own channels, own seeds),
  // so the grid fans out through the runner's index-ordered map.
  const auto rows = runner.map(bers.size(), [&](std::size_t i) {
    const double ber = bers[i];
    fdb::mac::IidBlockChannel ch_fd(ber, 0.0, fdb::Rng(1));
    fdb::mac::IidBlockChannel ch_sw(ber, 0.0, fdb::Rng(1));
    fdb::mac::IidBlockChannel ch_sr(ber, 0.0, fdb::Rng(1));
    fdb::mac::FullDuplexInstantArq fd;
    fdb::mac::StopAndWaitArq sw;
    fdb::mac::SelectiveRepeatArq sr;
    const auto p = params();
    const double g_fd = fd.run(frames, ch_fd, p).goodput();
    const double g_sw = sw.run(frames, ch_sw, p).goodput();
    const double g_sr = sr.run(frames, ch_sr, p).goodput();
    const auto m = model_params();
    return std::vector<double>{
        ber, g_fd, g_sw, g_sr, fdb::core::fd_arq_goodput(ber, 0.0, m),
        fdb::core::stop_and_wait_goodput(ber, m),
        fdb::core::selective_repeat_goodput(ber, m),
        g_sw > 0 ? g_fd / g_sw : 0.0};
  });

  fdb::sim::Report report("e4_arq_throughput");
  report.set_run_info(frames, runner.jobs());
  auto& sec = report.section(
      "goodput vs channel BER (256B frames, 8B blocks)",
      {"ber", "fd_instant", "stop_wait", "sel_repeat", "fd_model", "sw_model",
       "sr_model", "fd_gain_x"});
  for (const auto& row : rows) sec.add_row_numeric(row);
  report.add_note("Shape check: fd_instant degrades gently; stop_wait and"
                  " sel_repeat collapse near BER ~ 1/frame_bits; fd_gain_x"
                  " grows with BER.");
  return report.emit(cli) ? 0 : 1;
}
