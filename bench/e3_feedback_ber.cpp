// E3 — Reliability of the feedback channel itself: BER of the slow
// stream vs distance and vs the averaging mode / coding, decoded at the
// data transmitter *through its own transmission*.
#include <vector>

#include "sim/link_budget.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"
#include "sim/sweep.hpp"

namespace {

fdb::sim::LinkSimConfig arm(double distance_m,
                            fdb::core::FeedbackAverage average,
                            fdb::core::FeedbackCoding coding) {
  fdb::sim::LinkSimConfig config;
  config.modem = fdb::core::FdModemConfig::make(4, 6);
  config.modem.feedback.average = average;
  config.modem.feedback.coding = coding;
  config.carrier = "cw";
  config.fading = "static";
  config.noise_power_override_w = 2e-8;  // stress the slow stream
  config.a_to_b_m = distance_m;
  config.seed = 31;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  using fdb::core::FeedbackAverage;
  using fdb::core::FeedbackCoding;
  const auto cli = fdb::sim::parse_cli(argc, argv, /*default_trials=*/50);
  const fdb::sim::ExperimentRunner runner(cli.jobs);

  const auto distances = fdb::sim::linspace(0.5, 3.0, 6);
  // Three decoder arms per distance, flattened into one batch.
  std::vector<fdb::sim::Scenario> scenarios;
  for (const double d : distances) {
    scenarios.push_back(
        {arm(d, FeedbackAverage::kSelfGated, FeedbackCoding::kManchester),
         cli.trials, 16});
    scenarios.push_back(
        {arm(d, FeedbackAverage::kWindow, FeedbackCoding::kManchester),
         cli.trials, 16});
    scenarios.push_back(
        {arm(d, FeedbackAverage::kSelfGated, FeedbackCoding::kNrz),
         cli.trials, 16});
  }
  const auto summaries = runner.run_batch(scenarios);

  fdb::sim::Report report("e3_feedback_ber");
  report.set_run_info(cli.trials, runner.jobs());
  auto& sec = report.section(
      "feedback BER vs distance, by averaging mode and coding"
      " (CW, static, noise 2e-8 W)",
      {"distance_m", "manch_selfgated", "manch_window", "nrz_selfgated",
       "theory_manch"});
  for (std::size_t i = 0; i < distances.size(); ++i) {
    const auto budget =
        fdb::sim::compute_link_budget(scenarios[3 * i].config);
    sec.add_row({distances[i], summaries[3 * i].feedback_ber(),
                 summaries[3 * i + 1].feedback_ber(),
                 summaries[3 * i + 2].feedback_ber(),
                 budget.predicted_feedback_ber});
  }
  report.add_note("Shape check: feedback BER grows with distance;"
                  " self-gated averaging is never worse than plain window"
                  " averaging.");
  return report.emit(cli) ? 0 : 1;
}
