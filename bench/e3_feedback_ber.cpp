// E3 — Reliability of the feedback channel itself: BER of the slow
// stream vs distance and vs the averaging mode / coding, decoded at the
// data transmitter *through its own transmission*.
#include <cstdio>

#include "sim/link_budget.hpp"
#include "sim/link_sim.hpp"
#include "sim/sweep.hpp"
#include "util/table.hpp"

namespace {

fdb::sim::LinkSimConfig arm(double distance_m,
                            fdb::core::FeedbackAverage average,
                            fdb::core::FeedbackCoding coding) {
  fdb::sim::LinkSimConfig config;
  config.modem = fdb::core::FdModemConfig::make(4, 6);
  config.modem.feedback.average = average;
  config.modem.feedback.coding = coding;
  config.carrier = "cw";
  config.fading = "static";
  config.noise_power_override_w = 2e-8;  // stress the slow stream
  config.a_to_b_m = distance_m;
  config.seed = 31;
  return config;
}

double measure(const fdb::sim::LinkSimConfig& config, std::size_t trials) {
  fdb::sim::LinkSimulator sim(config);
  sim.set_payload_bytes(16);
  return sim.run(trials).feedback_ber();
}

}  // namespace

int main() {
  using fdb::core::FeedbackAverage;
  using fdb::core::FeedbackCoding;
  std::puts("E3: feedback BER vs distance, by averaging mode and coding"
            " (CW, static, noise 2e-8 W)");
  fdb::Table table({"distance_m", "manch_selfgated", "manch_window",
                    "nrz_selfgated", "theory_manch"});
  const std::size_t trials = 50;
  for (const double d : fdb::sim::linspace(0.5, 3.0, 6)) {
    const auto base = arm(d, FeedbackAverage::kSelfGated,
                          FeedbackCoding::kManchester);
    const auto budget = fdb::sim::compute_link_budget(base);
    table.add_row_numeric(
        {d, measure(base, trials),
         measure(arm(d, FeedbackAverage::kWindow,
                     FeedbackCoding::kManchester),
                 trials),
         measure(arm(d, FeedbackAverage::kSelfGated, FeedbackCoding::kNrz),
                 trials),
         budget.predicted_feedback_ber});
  }
  table.print();
  std::puts("\nShape check: feedback BER grows with distance; self-gated"
            " averaging is never worse than plain window averaging.");
  return 0;
}
