// E12 — Multi-gateway receive diversity. A backscatter uplink is only
// as good as its one receiver — unless there is more than one. This
// experiment runs the multi-gateway-dense scenario three ways (the
// single-receiver baseline, two gateways with any-gateway
// macro-diversity, two gateways with best-gateway selection) and shows
// the delivery-ratio gain a second receive chain buys when weak
// illumination puts clean frames at the fading margin. A second
// section walks the gateway-handoff-line corridor and reports which
// gateway serves each tag.
#include <string>
#include <vector>

#include "channel/scene.hpp"
#include "sim/network_sim.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"
#include "sim/scenarios.hpp"

namespace {

struct Arm {
  const char* label;
  bool two_gateways;
  fdb::sim::GatewayCombining combining;
};

}  // namespace

int main(int argc, char** argv) {
  const auto cli = fdb::sim::parse_cli(argc, argv, /*default_trials=*/12,
                                       "network trials per diversity arm");
  const fdb::sim::ExperimentRunner runner(cli.jobs);
  const std::size_t num_tags = 8;
  const std::uint64_t seed = 17;

  fdb::sim::Report report("e12_gateway_diversity");
  report.set_run_info(cli.trials, runner.jobs());
  auto& sec = report.section(
      "multi-gateway-dense: single receiver vs 2-gateway diversity"
      " (8 tags, per-gateway receive chains, sample-level verdicts)",
      {"arm", "gateways", "combining", "attempted", "delivered",
       "delivery_ratio", "goodput_kbps", "collisions", "sync_failures",
       "detect_latency", "gw0_decodes", "gw1_decodes"});

  const Arm arms[] = {
      {"single-receiver", false, fdb::sim::GatewayCombining::kAnyGateway},
      {"2gw-any", true, fdb::sim::GatewayCombining::kAnyGateway},
      {"2gw-best", true, fdb::sim::GatewayCombining::kBestGateway},
  };

  double baseline_ratio = 0.0;
  double diversity_ratio = 0.0;
  double baseline_latency = 0.0;
  double diversity_latency = 0.0;
  for (const Arm& arm : arms) {
    auto scenario =
        fdb::sim::make_scenario("multi-gateway-dense", num_tags, seed);
    if (!arm.two_gateways) scenario.config.extra_gateways.clear();
    scenario.config.combining = arm.combining;
    const fdb::sim::NetworkSimulator sim(scenario.config);
    const auto summary = runner.run_chunked<fdb::sim::NetworkSimSummary>(
        cli.trials,
        [&sim](fdb::sim::NetworkSimSummary& acc, std::size_t trial) {
          acc.add(sim.run_trial(trial));
        });
    const double seconds =
        static_cast<double>(summary.slots) * sim.slot_seconds();
    const double goodput_kbps =
        seconds > 0.0
            ? static_cast<double>(summary.bits_delivered()) / seconds / 1e3
            : 0.0;
    sec.add_row({arm.label, sim.num_gateways(),
                 arm.combining == fdb::sim::GatewayCombining::kAnyGateway
                     ? "any"
                     : "best",
                 summary.frames_attempted(), summary.frames_delivered(),
                 summary.delivery_ratio(), goodput_kbps, summary.collisions,
                 summary.sync_failures, summary.mean_detect_latency_slots(),
                 summary.gateway_decodes.at(0),
                 summary.gateway_decodes.size() > 1
                     ? fdb::sim::ReportCell(summary.gateway_decodes[1])
                     : fdb::sim::ReportCell("-")});
    if (std::string(arm.label) == "single-receiver") {
      baseline_ratio = summary.delivery_ratio();
      baseline_latency = summary.mean_detect_latency_slots();
    } else if (std::string(arm.label) == "2gw-any") {
      diversity_ratio = summary.delivery_ratio();
      diversity_latency = summary.mean_detect_latency_slots();
    }
  }

  // Corridor handoff picture: which gateway serves each tag, and what
  // each tag actually delivered under best-gateway selection.
  {
    auto scenario =
        fdb::sim::make_scenario("gateway-handoff-line", num_tags, seed);
    const fdb::sim::NetworkSimulator sim(scenario.config);
    const auto summary = runner.run_chunked<fdb::sim::NetworkSimSummary>(
        cli.trials,
        [&sim](fdb::sim::NetworkSimSummary& acc, std::size_t trial) {
          acc.add(sim.run_trial(trial));
        });
    auto& hand = report.section(
        "gateway-handoff-line per-tag (best-gateway selection)",
        {"tag", "dist_gw0_m", "dist_gw1_m", "nearest_gw", "notify_slots",
         "attempted", "delivered", "delivery_rate"});
    const auto& scene = sim.scene();
    for (std::size_t k = 0; k < summary.tags.size(); ++k) {
      const auto& t = summary.tags[k];
      const auto& tag_pos = scene.device(sim.tag_device(k)).position;
      const double d0 = fdb::channel::distance_m(
          tag_pos, scene.device(sim.gateway_device(0)).position);
      const double d1 = fdb::channel::distance_m(
          tag_pos, scene.device(sim.gateway_device(1)).position);
      const double rate =
          t.frames_attempted
              ? static_cast<double>(t.frames_delivered) /
                    static_cast<double>(t.frames_attempted)
              : 0.0;
      hand.add_row_numeric({static_cast<double>(k), d0, d1,
                            static_cast<double>(sim.nearest_gateway(k)),
                            static_cast<double>(sim.notify_latency_slots(k)),
                            static_cast<double>(t.frames_attempted),
                            static_cast<double>(t.frames_delivered), rate});
    }
  }

  report.add_note(
      "Shape check: any-gateway macro-diversity lifts the dense-scenario"
      " delivery ratio from " + std::to_string(baseline_ratio) + " to " +
      std::to_string(diversity_ratio) +
      " — frames the marginal single receiver loses to independent"
      " Rayleigh/shadowing draws decode at the other gateway. Collision"
      " notifications also arrive sooner (mean detect latency " +
      std::to_string(baseline_latency) + " -> " +
      std::to_string(diversity_latency) +
      " slots) because the earliest — closest — gateway notifies.");
  report.add_note(
      "Every gateway runs its own AWGN fork, RC envelope state and"
      " batched FdDataReceiver over the shared per-slot tag reflections"
      " synthesized by the arena-backed WaveformSynthesizer; the"
      " combining policy only decides which decodes count.");
  return report.emit(cli) ? 0 : 1;
}
