// E6 — Collision handling. Full-duplex feedback lets the receiver shout
// "collision!" within a couple of block-times; timeout MACs burn the
// whole frame plus the ACK wait before anyone notices. Sweep contention.
#include <vector>

#include "mac/collision.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"

int main(int argc, char** argv) {
  const auto cli = fdb::sim::parse_cli(argc, argv, /*default_trials=*/300000,
                                       "simulated slots per contention"
                                       " point");
  const fdb::sim::ExperimentRunner runner(cli.jobs);

  const std::vector<std::size_t> tag_counts = {1, 2, 4, 6, 8, 12};
  const auto rows = runner.map(tag_counts.size(), [&](std::size_t i) {
    fdb::mac::CollisionSimParams params;
    params.num_tags = tag_counts[i];
    params.sim_slots = cli.trials;
    params.seed = 11;
    const auto timeout =
        fdb::mac::run_collision_sim(fdb::mac::MacKind::kTimeout, params);
    const auto notify = fdb::mac::run_collision_sim(
        fdb::mac::MacKind::kCollisionNotify, params);
    return std::vector<double>{static_cast<double>(tag_counts[i]),
                               timeout.wasted_airtime_fraction(),
                               notify.wasted_airtime_fraction(),
                               timeout.goodput_slots_fraction(),
                               notify.goodput_slots_fraction(),
                               timeout.mean_delivery_latency(),
                               notify.mean_delivery_latency()};
  });

  fdb::sim::Report report("e6_collision");
  report.set_run_info(cli.trials, runner.jobs());
  auto& sec = report.section(
      "contention: timeout MAC vs full-duplex collision notification"
      " (32-block frames, saturated tags)",
      {"tags", "waste_timeout", "waste_notify", "goodput_timeout",
       "goodput_notify", "latency_timeout", "latency_notify"});
  for (const auto& row : rows) sec.add_row_numeric(row);
  report.add_note("Shape check: wasted airtime grows with contention for"
                  " both MACs but stays far lower with notification;"
                  " goodput and latency follow.");
  return report.emit(cli) ? 0 : 1;
}
